let () =
  Alcotest.run "fcsl"
    [
      ("pcm", Test_pcm.suite);
      ("heap-graph", Test_heap.suite);
      ("core", Test_core.suite);
      ("span", Test_span.suite);
      ("locks", Test_locks.suite);
      ("snapshot", Test_snapshot.suite);
      ("treiber", Test_treiber.suite);
      ("flatcombiner", Test_fc.suite);
      ("lang", Test_lang.suite);
      ("extract", Test_extract.suite);
      ("rules", Test_rules.suite);
      ("semantics", Test_semantics.suite);
      ("explore-dedup", Test_explore_dedup.suite);
      ("assertions", Test_assrt.suite);
      ("infra", Test_infra.suite);
      ("misc", Test_misc.suite);
      ("report", Test_report.suite);
      ("analysis", Test_analysis.suite);
      ("deadlock", Test_deadlock.suite);
      ("robust", Test_robust.suite);
      ("journal", Test_journal.suite);
      ("por", Test_por.suite);
      ("repr", Test_repr.suite);
      ("service", Test_service.suite);
    ]
