(* Deadlock & progress analysis: the lock-order graph machinery, the
   registry rows' static cleanliness, both injected scenarios flagged by
   the static pass AND the scheduler's stuck-state detector with
   matching located lock names, the registry-wide static/dynamic
   soundness differential (under 1 and 4 domains), the certified-order
   consistency property, and the CLI's exit-code taxonomy. *)

open Fcsl_core
open Fcsl_analysis
module Registry = Fcsl_report.Registry

let check = Alcotest.(check bool)

let mk_lock ?(acquires = []) ?(releases = []) name =
  {
    Deadlock.lk_label = Label.make ("dl_t_" ^ name);
    lk_name = name;
    lk_conc = "CLock";
    lk_acquires = acquires;
    lk_releases = releases;
  }

let script thread ?(exit = Deadlock.Returns) steps =
  { Deadlock.sc_thread = thread; sc_steps = steps; sc_exit = exit }

(* ------------------------------------------------------------------ *)
(* The graph machinery on declared scripts.                           *)
(* ------------------------------------------------------------------ *)

let test_graph_machinery () =
  let locks = [ mk_lock "A"; mk_lock "B" ] in
  (* Nested same-order acquisition: acyclic, order certified. *)
  let v =
    Deadlock.analyze_scripts ~case:"nested" ~locks
      [
        script "t0"
          [ S_acquire "A"; S_acquire "B"; S_release "B"; S_release "A" ];
        script "t1"
          [ S_acquire "A"; S_acquire "B"; S_release "B"; S_release "A" ];
      ]
  in
  check "nested same-order is clean" true (Deadlock.clean v);
  Alcotest.(check (option (list string)))
    "order A < B" (Some [ "A"; "B" ]) v.Deadlock.v_order;
  check "no cycles" true (v.Deadlock.v_cycles = []);
  (* AB/BA inversion: one cycle, no certified order. *)
  let v =
    Deadlock.analyze_scripts ~case:"inverted" ~locks
      [
        script "t0"
          [ S_acquire "A"; S_acquire "B"; S_release "B"; S_release "A" ];
        script "t1"
          [ S_acquire "B"; S_acquire "A"; S_release "A"; S_release "B" ];
      ]
  in
  check "inversion flagged" false (Deadlock.clean v);
  Alcotest.(check (list (list string)))
    "the AB/BA cycle" [ [ "A"; "B" ] ] v.Deadlock.v_cycles;
  check "no order under a cycle" true (v.Deadlock.v_order = None);
  (* Non-reentrant re-acquisition: a length-1 cycle. *)
  let v =
    Deadlock.analyze_scripts ~case:"reentry" ~locks
      [ script "t0" [ S_acquire "A"; S_acquire "A" ] ]
  in
  check "re-entry is a self-cycle" true
    (List.mem [ "A" ] v.Deadlock.v_cycles);
  (* Leak through a hide-scope exit: must-release. *)
  let v =
    Deadlock.analyze_scripts ~case:"leak" ~locks
      [ script "t0" ~exit:Deadlock.Hide_exit [ S_acquire "A" ] ]
  in
  check "leak flagged" false (Deadlock.clean v);
  check "must-release rule fired" true
    (List.exists
       (fun (f : Diag.finding) -> f.Diag.f_rule = Deadlock.rule_must_release)
       v.Deadlock.v_findings);
  (* Balanced release: clean again. *)
  let v =
    Deadlock.analyze_scripts ~case:"balanced" ~locks
      [ script "t0" [ S_acquire "A"; S_release "A" ] ]
  in
  check "balanced is clean" true (Deadlock.clean v)

(* The Prog walk: visible spine classified, opaque continuations mark
   the path incomplete (so no must-release false positives). *)
let test_prog_walk () =
  let locks =
    [ mk_lock ~acquires:[ "take_A" ] ~releases:[ "drop_A" ] "A" ]
  in
  let act name =
    Prog.act
      (Action.make ~name
         ~safe:(fun _ -> true)
         ~step:(fun st -> ((), st))
         ~phys:(fun _ -> Action.Id)
         ())
  in
  let paths =
    Deadlock.paths_of_prog ~locks ~name:"w"
      (Prog.seq (act "take_A") (act "drop_A"))
  in
  check "one path" true (List.length paths = 1);
  let p = List.hd paths in
  check "bind makes the path incomplete" false p.Deadlock.th_complete;
  check "visible acquire classified" true
    (List.exists
       (fun e -> Deadlock.event_lock e = "A")
       p.Deadlock.th_events);
  (* par forks one path per arm *)
  let paths =
    Deadlock.paths_of_prog ~locks ~name:"w"
      (Prog.par (act "take_A") (act "other"))
  in
  check "par forks two paths" true (List.length paths = 2)

(* ------------------------------------------------------------------ *)
(* All Table 1 rows statically deadlock-clean, orders certified.      *)
(* ------------------------------------------------------------------ *)

let test_rows_clean () =
  let vs = Deadlock.analyze_all () in
  Alcotest.(check int) "eleven rows" 11 (List.length vs);
  List.iter
    (fun (v : Deadlock.verdict) ->
      check (v.Deadlock.v_case ^ " is deadlock-clean") true (Deadlock.clean v);
      check (v.Deadlock.v_case ^ " certifies a total order") true
        (v.Deadlock.v_order <> None))
    vs

(* ------------------------------------------------------------------ *)
(* Injected scenarios: static verdicts.                               *)
(* ------------------------------------------------------------------ *)

let test_inversion_static () =
  let v = Injected.deadlock_verdict Injected.lock_inversion_scenario in
  check "inversion flagged" false (Deadlock.clean v);
  Alcotest.(check (list (list string)))
    "the located cycle" [ [ "A"; "B" ] ] v.Deadlock.v_cycles;
  check "lock-cycle rule fired" true
    (List.exists
       (fun (f : Diag.finding) -> f.Diag.f_rule = Deadlock.rule_cycle)
       v.Deadlock.v_findings);
  (* The cycle's lock names are exactly what the dynamic witness must
     also report. *)
  Alcotest.(check (list string))
    "cycle locks match the scenario's expectation"
    Injected.lock_inversion_scenario.Injected.dl_expect_locks
    (List.sort_uniq String.compare (List.concat v.Deadlock.v_cycles))

let test_leaked_static () =
  let v = Injected.deadlock_verdict Injected.leaked_lock_scenario in
  check "leak flagged" false (Deadlock.clean v);
  check "no cycle in the leak scenario" true (v.Deadlock.v_cycles = []);
  let mr =
    List.filter
      (fun (f : Diag.finding) -> f.Diag.f_rule = Deadlock.rule_must_release)
      v.Deadlock.v_findings
  in
  check "must-release rule fired" true (mr <> []);
  check "the finding locates the leaker thread" true
    (List.exists (fun (f : Diag.finding) ->
         let has_sub sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub "leaker" f.Diag.f_loc && has_sub "lock A" f.Diag.f_msg)
       mr)

(* ------------------------------------------------------------------ *)
(* Injected scenarios: the scheduler's stuck-state witness.           *)
(* ------------------------------------------------------------------ *)

let test_inversion_dynamic () =
  let crashes = Injected.explore_scenario Injected.lock_inversion_scenario in
  check "exploration reaches the stuck state" true (crashes <> []);
  List.iter
    (fun c ->
      Alcotest.(check string)
        "witness kind is deadlock" "deadlock"
        (Crash.kind_name (Crash.kind c));
      Alcotest.(check (list string))
        "held locks of the cross configuration" [ "A"; "B" ]
        (Deadlock.held_of_witness c);
      Alcotest.(check (list string))
        "witness lock names match the static cycle"
        Injected.lock_inversion_scenario.Injected.dl_expect_locks
        (Deadlock.witness_locks c))
    crashes

let test_leaked_dynamic () =
  let crashes = Injected.explore_scenario Injected.leaked_lock_scenario in
  check "the leaked lock starves the neighbour" true (crashes <> []);
  List.iter
    (fun c ->
      Alcotest.(check (list string))
        "witness names the leaked lock"
        Injected.leaked_lock_scenario.Injected.dl_expect_locks
        (Deadlock.witness_locks c))
    crashes

(* ------------------------------------------------------------------ *)
(* Registry-wide static/dynamic soundness differential.               *)
(* ------------------------------------------------------------------ *)

(* A statically clean row must never hit a dynamic stuck state: its
   full verification run may fail for other reasons (it doesn't — the
   rows verify), but no failure may carry the Deadlock kind.  Run under
   1 and 4 domains: the stuck-state detector sits inside the per-state
   exploration, so domain fan-out must not change its verdicts. *)
let registry_differential ~jobs () =
  let static = Deadlock.analyze_all () in
  Verify.with_engine ~jobs @@ fun () ->
  List.iter
    (fun (c : Registry.case) ->
      let statically_clean =
        match
          List.find_opt
            (fun (v : Deadlock.verdict) ->
              v.Deadlock.v_case = c.Registry.c_name)
            static
        with
        | Some v -> Deadlock.clean v
        | None -> true
      in
      let reports = c.Registry.c_verify () in
      let dynamic_deadlocks =
        List.concat_map
          (fun (r : Verify.report) ->
            List.filter
              (fun (f : Verify.failure) ->
                Crash.kind f.Verify.crash = Crash.Deadlock)
              r.Verify.failures)
          reports
      in
      check
        (Fmt.str "%s: static clean (%b) implies no dynamic stuck state"
           c.Registry.c_name statically_clean)
        true
        ((not statically_clean) || dynamic_deadlocks = []))
    Registry.all

let test_differential_j1 () = registry_differential ~jobs:1 ()
let test_differential_j4 () = registry_differential ~jobs:4 ()

(* ------------------------------------------------------------------ *)
(* QCheck: a certified order is consistent with every path.           *)
(* ------------------------------------------------------------------ *)

let qc_locks = List.map mk_lock [ "A"; "B"; "C" ]

let gen_scripts =
  QCheck2.Gen.(
    let step =
      map2
        (fun acq l ->
          if acq then Deadlock.S_acquire l else Deadlock.S_release l)
        bool
        (oneofl [ "A"; "B"; "C" ])
    in
    map
      (List.mapi (fun i steps ->
           {
             Deadlock.sc_thread = Fmt.str "t%d" i;
             sc_steps = steps;
             sc_exit = Deadlock.Returns;
           }))
      (list_size (int_range 1 3) (list_size (int_range 1 6) step)))

(* Replay each path's held multiset; every acquisition made while
   holding [h] must come after [h] in the certified order. *)
let order_consistent order paths =
  let pos l =
    let rec go i = function
      | [] -> None
      | x :: _ when String.equal x l -> Some i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  List.for_all
    (fun (p : Deadlock.path) ->
      let ok, _ =
        List.fold_left
          (fun (ok, held) ev ->
            match ev with
            | Deadlock.Acquire { e_lock; _ } ->
              let ok' =
                List.for_all
                  (fun h ->
                    String.equal h e_lock
                    ||
                    match (pos h, pos e_lock) with
                    | Some i, Some j -> i < j
                    | _ -> false)
                  held
              in
              (ok && ok', e_lock :: held)
            | Deadlock.Release { e_lock; _ } ->
              let rec drop = function
                | [] -> []
                | h :: tl when String.equal h e_lock -> tl
                | h :: tl -> h :: drop tl
              in
              (ok, drop held))
          (true, []) p.Deadlock.th_events
      in
      ok)
    paths

let prop_certified_order_consistent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"a certified lock order is consistent with every acquisition path"
       gen_scripts
       (fun scripts ->
         let v = Deadlock.analyze_scripts ~case:"qc" ~locks:qc_locks scripts in
         match v.Deadlock.v_order with
         | None ->
           (* refusing to certify is only allowed under a cycle *)
           v.Deadlock.v_cycles <> []
         | Some order ->
           v.Deadlock.v_cycles = []
           && order_consistent order (Deadlock.paths_of_scripts scripts)))

(* ------------------------------------------------------------------ *)
(* CLI exit codes follow the Verify taxonomy.                         *)
(* ------------------------------------------------------------------ *)

(* Under [dune runtest] the cwd is _build/default/test (the dune deps
   pull the CLI in next door); under [dune exec] from the workspace
   root it is the root itself. *)
let cli =
  List.find_opt Sys.file_exists
    [ "../bin/fcsl_cli.exe"; "_build/default/bin/fcsl_cli.exe" ]

let run_cli args =
  match cli with
  | None -> Alcotest.fail "fcsl CLI binary not found"
  | Some cli -> Sys.command (Fmt.str "%s %s >/dev/null 2>&1" cli args)

let test_cli_exit_codes () =
  if cli = None then Alcotest.skip () (* CLI not built in this context *)
  else begin
    Alcotest.(check int)
      "clean deadlock pass exits 0" Verify.exit_ok
      (run_cli "analyze --deadlock");
    (* A racy surface file is a verification failure: exit 1. *)
    let racy = Filename.temp_file "fcsl_racy" ".fcsl" in
    let oc = open_out racy in
    output_string oc Injected.span_nocas_source;
    close_out oc;
    Alcotest.(check int)
      "race findings exit 1" Verify.exit_failed
      (run_cli (Fmt.str "analyze %s --no-self-test" (Filename.quote racy)));
    Sys.remove racy;
    (* An unparseable input means the analysis never ran: exit 3. *)
    let garbage = Filename.temp_file "fcsl_garbage" ".fcsl" in
    let oc = open_out garbage in
    output_string oc "this is not a surface program {";
    close_out oc;
    Alcotest.(check int)
      "unanalyzable input exits 3" Verify.exit_internal
      (run_cli (Fmt.str "analyze %s --no-self-test" (Filename.quote garbage)));
    Sys.remove garbage
  end

let suite =
  [
    Alcotest.test_case "lock-order graph machinery" `Quick
      test_graph_machinery;
    Alcotest.test_case "prog walk: visible spine, opaque rest" `Quick
      test_prog_walk;
    Alcotest.test_case "all Table 1 rows deadlock-clean" `Quick
      test_rows_clean;
    Alcotest.test_case "lock inversion flagged statically" `Quick
      test_inversion_static;
    Alcotest.test_case "leaked lock flagged statically" `Quick
      test_leaked_static;
    Alcotest.test_case "lock inversion: dynamic stuck-state witness" `Quick
      test_inversion_dynamic;
    Alcotest.test_case "leaked lock: dynamic stuck-state witness" `Quick
      test_leaked_dynamic;
    Alcotest.test_case "static/dynamic differential (-j 1)" `Slow
      test_differential_j1;
    Alcotest.test_case "static/dynamic differential (-j 4)" `Slow
      test_differential_j4;
    prop_certified_order_consistent;
    Alcotest.test_case "CLI exit-code taxonomy" `Quick test_cli_exit_codes;
  ]
