(* Sleep-set partial-order reduction is invisible in verdicts: for every
   Table 1 row the [--por] engine returns the same per-spec ok/failure
   answers as full exploration, the analyzer's rule-2 certificates
   survive QCheck sampling on random coherent states, and a forged
   certificate (an action whose declared footprint hides its writes)
   demotes the run to full exploration with a located [Analyzer_lie]
   diagnostic instead of changing any answer. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Registry = Fcsl_report.Registry
module Independence = Fcsl_analysis.Independence

let check = Alcotest.(check bool)
let p = Ptr.of_int

(* ------------------------------------------------------------------ *)
(* Registry-wide differential: POR on/off agree on every verdict.     *)
(* ------------------------------------------------------------------ *)

let verdicts reports =
  List.map
    (fun r -> (r.Verify.spec_name, Verify.ok r, r.Verify.complete))
    reports

let pp_verdicts vs =
  Fmt.str "%a"
    Fmt.(list ~sep:(any "; ") (fun ppf (n, ok, c) -> pf ppf "%s:%b/%b" n ok c))
    vs

let test_registry_differential () =
  let certs = Independence.certs_all () in
  List.iter
    (fun (c : Registry.case) ->
      let full =
        Verify.with_engine ~dedup:true ~por:false (fun () -> c.Registry.c_verify ())
      in
      let por =
        Verify.with_engine ~dedup:true ~por:true ~por_certs:certs (fun () ->
            c.Registry.c_verify ())
      in
      Alcotest.(check string)
        (c.Registry.c_name ^ " verdicts")
        (pp_verdicts (verdicts full))
        (pp_verdicts (verdicts por)))
    Registry.all

(* With memoization off the reduction is visible in the raw counts:
   same verdicts, strictly fewer explored configurations.  (With dedup
   on the memo table is already the per-configuration lower bound, so
   the bench compares both arms un-memoized — see bench --por-only.) *)
let test_states_shrink () =
  let case =
    match Registry.find "FC-stack" with
    | Some c -> c
    | None -> Alcotest.fail "FC-stack not in registry"
  in
  let states reports =
    List.fold_left (fun acc r -> acc + r.Verify.states) 0 reports
  in
  let full =
    Verify.with_engine ~dedup:false ~por:false (fun () -> case.Registry.c_verify ())
  in
  let por =
    Verify.with_engine ~dedup:false ~por:true
      ~por_certs:(Independence.certs_all ())
      (fun () -> case.Registry.c_verify ())
  in
  Alcotest.(check string)
    "verdicts unchanged"
    (pp_verdicts (verdicts full))
    (pp_verdicts (verdicts por));
  check "POR explores strictly fewer configurations" true
    (states por < states full)

(* The certificate table is shared across verification domains; its
   first forcing must be safe when the forcers race (a plain [lazy]
   raises [CamlinternalLazy.Undefined] here on OCaml 5). *)
let test_parallel_certs () =
  let case =
    match Registry.find "CG increment" with
    | Some c -> c
    | None -> Alcotest.fail "CG increment not in registry"
  in
  let full =
    Verify.with_engine ~dedup:true ~por:false (fun () -> case.Registry.c_verify ())
  in
  let por =
    Verify.with_engine ~dedup:true ~jobs:4 ~por:true
      ~por_certs:(Independence.certs_all ())
      (fun () -> case.Registry.c_verify ())
  in
  Alcotest.(check string)
    "verdicts unchanged under jobs=4"
    (pp_verdicts (verdicts full))
    (pp_verdicts (verdicts por))

(* ------------------------------------------------------------------ *)
(* Certified pairs really commute: QCheck over the coherent states.   *)
(* ------------------------------------------------------------------ *)

(* Each certified case paired with its name-indexed action inventory:
   the sampling domain for the commutation property. *)
let certed_cases =
  lazy
    (List.filter_map
       (fun (m : Independence.matrix) ->
         if m.Independence.x_certs = [] then None
         else
           match Independence.inventory_of_case m.Independence.x_case with
           | None -> None
           | Some inv ->
             let by_name =
               List.map
                 (function
                   | Independence.Any a as any -> (Action.name a, any))
                 inv.Independence.i_actions
             in
             Some (m, inv.Independence.i_states, by_name))
       (Independence.analyze_all ()))

let prop_certs_commute =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"certified pairs commute on coherent states"
       QCheck2.Gen.(triple (int_range 0 10_000) (int_range 0 10_000) (int_range 0 10_000))
       (fun (ci, pi, si) ->
         match Lazy.force certed_cases with
         | [] -> QCheck2.Test.fail_report "no certified cases in the registry"
         | cases ->
           let m, states, by_name = List.nth cases (ci mod List.length cases) in
           let certs = m.Independence.x_certs in
           let a_name, b_name = List.nth certs (pi mod List.length certs) in
           let st = List.nth states (si mod List.length states) in
           let act n =
             match List.assoc_opt n by_name with
             | Some a -> a
             | None ->
               Alcotest.failf "%s: certified name %s not in inventory"
                 m.Independence.x_case n
           in
           (match Independence.commute_sample (act a_name) (act b_name) st with
           | Independence.Refuted why ->
             QCheck2.Test.fail_reportf "%s: certified pair (%s, %s) refuted: %s"
               m.Independence.x_case a_name b_name why
           | Independence.Pass | Independence.Skip -> ());
           true))

(* The certificate's own bar: every certified pair has at least
   [min_witnesses] Pass states in its case's enumeration. *)
let test_cert_witnesses () =
  List.iter
    (fun (m, states, by_name) ->
      List.iter
        (fun (a_name, b_name) ->
          let a = List.assoc a_name by_name and b = List.assoc b_name by_name in
          let passes =
            List.fold_left
              (fun acc st ->
                match Independence.commute_sample a b st with
                | Independence.Pass -> acc + 1
                | Independence.Skip -> acc
                | Independence.Refuted why ->
                  Alcotest.failf "%s: (%s, %s) refuted: %s"
                    m.Independence.x_case a_name b_name why)
              0 states
          in
          check
            (Fmt.str "%s: (%s, %s) has >= %d witnesses" m.Independence.x_case
               a_name b_name Independence.min_witnesses)
            true
            (passes >= Independence.min_witnesses))
        m.Independence.x_certs)
    (Lazy.force certed_cases)

(* ------------------------------------------------------------------ *)
(* Injected analyzer lie: demotion, diagnostic, unchanged verdict.    *)
(* ------------------------------------------------------------------ *)

let span_setup triples =
  let sp = Label.make "por_lie_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of triples in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  (sp, w, st)

(* A real trymark wearing a false envelope: it declares no effects at
   all, so its very first step mutates a label outside the declared
   footprint and the POR soundness monitor must catch it. *)
let lying_trymark sp x =
  let real = Span.trymark sp x in
  Action.make ~name:"lying_trymark"
    ~enabled:(Action.enabled real)
    ~fp:Footprint.bot
    ~safe:(Action.safe real)
    ~step:(Action.step_exn real)
    ~phys:(Action.phys real) ()

let canon_set (outs : (bool * bool) Sched.outcome list) =
  List.sort_uniq String.compare
    (List.map
       (function
         | Sched.Finished ((a, b), st) -> Fmt.str "F|(%b,%b)|%a" a b State.pp st
         | Sched.Crashed c -> Fmt.str "C|%a" Crash.pp c
         | Sched.Diverged -> "D")
       outs)

let test_analyzer_lie () =
  let sp, w, st =
    span_setup
      [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  let prog () =
    Prog.par
      (Prog.act (lying_trymark sp (p 2)))
      (Prog.act (Span.trymark sp (p 3)))
  in
  let explore ?por () =
    let genv, mine = Sched.genv_of_state w st in
    Sched.explore ~fuel:12 ~interference:false ?por genv mine (prog ())
  in
  let reference, c_ref = explore () in
  let por = Por.make ~extra:(fun _ _ -> true) () in
  let reduced, c_por = explore ~por () in
  (* The lie was caught: one demotion, a located diagnostic naming the
     lying move, and the re-run reproduced the full answer. *)
  Alcotest.(check int) "one demotion" 1 (Por.demotions por);
  (match Por.lies por with
  | [] -> Alcotest.fail "no analyzer-lie diagnostic recorded"
  | c :: _ ->
    let msg = Fmt.str "%a" Crash.pp c in
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check "diagnostic names the move" true (contains "lying_trymark" msg);
    check "diagnostic says analyzer lie" true (contains "analyzer lie" msg));
  check "completeness unchanged" c_ref c_por;
  Alcotest.(check (list string))
    "outcome sets unchanged" (canon_set reference) (canon_set reduced)

(* An honest oracle on the same program records no lies and loses no
   outcomes. *)
let test_honest_oracle () =
  let sp, w, st =
    span_setup
      [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  let prog () =
    Prog.par
      (Prog.act (Span.trymark sp (p 2)))
      (Prog.act (Span.trymark sp (p 3)))
  in
  let explore ?por () =
    let genv, mine = Sched.genv_of_state w st in
    Sched.explore ~fuel:12 ~interference:false ?por genv mine (prog ())
  in
  let reference, _ = explore () in
  let por = Por.make () in
  let reduced, _ = explore ~por () in
  Alcotest.(check int) "no demotions" 0 (Por.demotions por);
  check "no lies" true (Por.lies por = []);
  Alcotest.(check (list string))
    "outcome sets unchanged" (canon_set reference) (canon_set reduced)

(* ------------------------------------------------------------------ *)
(* Footprint algebra: canonical of_list, hide-under-par, join laws.   *)
(* ------------------------------------------------------------------ *)

let test_of_list_canonical () =
  let l = Label.make "por_fp_a" and l2 = Label.make "por_fp_b" in
  check "empty access list is bot" true
    (Footprint.equal (Footprint.of_list [ (l, []) ]) Footprint.bot);
  check "phantom label absent" false
    (Footprint.mem (Footprint.of_list [ (l, []); (l2, [ Footprint.Read ]) ]) l);
  check "repeated labels join" true
    (Footprint.equal
       (Footprint.of_list [ (l, [ Footprint.Read ]); (l, [ Footprint.Write ]) ])
       (Footprint.of_list [ (l, [ Footprint.Read; Footprint.Write ]) ]))

(* Regression: a [hide] nested under [par] scopes its installed label
   away from the join, and the result is structurally canonical — equal
   to building the same envelope directly. *)
let test_hide_under_par () =
  let hidden = Label.make "por_fp_hidden" in
  let outer = Label.make "por_fp_outer" in
  let priv = Label.make "por_fp_priv" in
  let hs : Prog.hide_spec =
    {
      hs_priv = priv;
      hs_conc = Span.concurroid hidden;
      hs_decor = Fun.id;
      hs_init = Aux.set Ptr.Set.empty;
      hs_jaux = Aux.set Ptr.Set.empty;
    }
  in
  let body = Prog.act (Span.trymark hidden (p 1)) in
  let peer = Prog.act (Span.trymark outer (p 2)) in
  let fp = Prog.footprint (Prog.par (Prog.hide hs body) peer) in
  check "hidden label scoped away" false (Footprint.mem fp hidden);
  check "peer label survives" true (Footprint.mem fp outer);
  check "donating private label touched" true (Footprint.mem fp priv);
  check "equals the directly built envelope" true
    (Footprint.equal fp
       (Footprint.join (Footprint.writes priv)
          (Footprint.join
             (Footprint.remove (Prog.footprint body) hidden)
             (Prog.footprint peer))));
  (* and the par join is symmetric *)
  check "par join symmetric" true
    (Footprint.equal fp
       (Prog.footprint (Prog.par peer (Prog.hide hs body))))

let fp_pool = lazy (Array.init 4 (fun i -> Label.make (Fmt.str "por_fp_p%d" i)))

let gen_fp =
  let open QCheck2.Gen in
  let accesses =
    oneofl
      [
        [];
        [ Footprint.Read ];
        [ Footprint.Read; Footprint.Write ];
        [ Footprint.Read; Footprint.Cas ];
        [ Footprint.Read; Footprint.Write; Footprint.Cas ];
      ]
  in
  list_size (int_range 0 4) (pair (int_range 0 3) accesses) >|= fun bindings ->
  let pool = Lazy.force fp_pool in
  Footprint.of_list (List.map (fun (i, a) -> (pool.(i), a)) bindings)

let prop_join_laws =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"footprint join commutative + idempotent"
       QCheck2.Gen.(triple gen_fp gen_fp gen_fp)
       (fun (a, b, c) ->
         Footprint.equal (Footprint.join a b) (Footprint.join b a)
         && Footprint.equal (Footprint.join a a) a
         && Footprint.equal
              (Footprint.join a (Footprint.join b c))
              (Footprint.join (Footprint.join a b) c)
         && Bool.equal (Footprint.commutes a b) (Footprint.commutes b a)))

let suite =
  [
    Alcotest.test_case "registry: POR on/off verdicts agree" `Slow
      test_registry_differential;
    Alcotest.test_case "FC-stack: POR shrinks un-memoized states" `Quick
      test_states_shrink;
    Alcotest.test_case "certificate table races safely across domains" `Quick
      test_parallel_certs;
    prop_certs_commute;
    Alcotest.test_case "certificates have enough witnesses" `Quick
      test_cert_witnesses;
    Alcotest.test_case "forged certificate demotes with diagnostic" `Quick
      test_analyzer_lie;
    Alcotest.test_case "honest oracle: no lies, same outcomes" `Quick
      test_honest_oracle;
    Alcotest.test_case "of_list is canonical" `Quick test_of_list_canonical;
    Alcotest.test_case "hide under par scopes the label away" `Quick
      test_hide_under_par;
    prop_join_laws;
  ]
