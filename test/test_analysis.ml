(* The static analyzer: footprint inference over the DSL, the surface
   race detector, the spec/concurroid lints, and soundness of
   footprint-based env-step pruning (differential against the unpruned
   engine, plus the envelope monitor catching a lying annotation). *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
open Fcsl_analysis
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let has_substr ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- The footprint domain. --- *)

let l1 = Label.make "an_t_l1"
let l2 = Label.make "an_t_l2"

let test_footprint_domain () =
  let fp_eq = Alcotest.(check bool) in
  fp_eq "bot is unit" true
    (Footprint.equal (Footprint.join Footprint.bot (Footprint.reads l1))
       (Footprint.reads l1));
  fp_eq "top absorbs" true
    (Footprint.is_top (Footprint.join Footprint.top (Footprint.writes l1)));
  fp_eq "top subsumes everything" true
    (Footprint.subsumes Footprint.top (Footprint.touches l1));
  fp_eq "touches subsumes reads" true
    (Footprint.subsumes (Footprint.touches l1) (Footprint.reads l1));
  fp_eq "reads does not subsume writes" false
    (Footprint.subsumes (Footprint.reads l1) (Footprint.writes l1));
  fp_eq "remove deletes the label" true
    (Footprint.equal
       (Footprint.remove
          (Footprint.join (Footprint.touches l1) (Footprint.reads l2))
          l1)
       (Footprint.reads l2));
  (match Footprint.labels (Footprint.join (Footprint.reads l1) (Footprint.writes l2)) with
  | Some ls ->
    fp_eq "labels of a join" true
      (Label.Set.equal ls (Label.Set.of_list [ l1; l2 ]))
  | None -> Alcotest.fail "expected a known label set");
  fp_eq "top has no label set" true (Footprint.labels Footprint.top = None);
  fp_eq "mem" true (Footprint.mem (Footprint.cases l1) l1);
  fp_eq "mem misses" false (Footprint.mem (Footprint.cases l1) l2)

(* --- Inference over the DSL spine. --- *)

let idle_act ?(fp = Footprint.top) name =
  Action.make ~name ~fp
    ~safe:(fun _ -> true)
    ~step:(fun st -> ((), st))
    ~phys:(fun _ -> Action.Id)
    ()

let test_prog_footprint () =
  let r1 = Prog.act (idle_act ~fp:(Footprint.reads l1) "r1") in
  let w2 = Prog.act (idle_act ~fp:(Footprint.writes l2) "w2") in
  check "action leaf carries its envelope" true
    (Footprint.equal (Prog.footprint r1) (Footprint.reads l1));
  check "par joins the arms" true
    (Footprint.equal
       (Prog.footprint (Prog.par r1 w2))
       (Footprint.join (Footprint.reads l1) (Footprint.writes l2)));
  check "bind is opaque" true
    (Footprint.is_top (Prog.footprint (Prog.bind r1 (fun () -> w2))));
  check "annot overrides" true
    (Footprint.equal
       (Prog.footprint
          (Prog.annot (Footprint.reads l1) (Prog.bind r1 (fun () -> w2))))
       (Footprint.reads l1));
  (* The annotated case studies expose their envelopes. *)
  check "span's program envelope" true
    (Footprint.equal
       (Prog.footprint (Span.span l1 (p 1)))
       (Footprint.touches l1));
  check "read_pair's program envelope" true
    (Footprint.equal
       (Prog.footprint (Snapshot.read_pair l1))
       (Footprint.reads l1));
  check "span's spec envelope" true
    (Footprint.equal (Spec.footprint (Span.span_spec l1 (p 1)))
       (Footprint.touches l1))

let test_annot_checker () =
  check "honest annotations pass" true
    (Dsl.check_annots ~loc:"span" (Span.span l1 (p 1)) = []);
  let lying =
    Prog.annot (Footprint.reads l1)
      (Prog.act (idle_act ~fp:(Footprint.writes l2) "w2"))
  in
  match Dsl.check_annots ~loc:"liar" lying with
  | [ f ] ->
    Alcotest.(check string) "rule" "annot-narrowing" f.Diag.f_rule;
    check "is an error" true (f.Diag.f_severity = Diag.Error)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* --- The surface race detector. --- *)

let test_surface_clean () =
  List.iter
    (fun (name, src) ->
      match Surface.analyze_source ~name src with
      | Ok [] -> ()
      | Ok fs ->
        Alcotest.failf "%s: unexpected findings:@.%a" name Diag.pp_list fs
      | Error msg -> Alcotest.failf "%s: %s" name msg)
    [
      ("span", Fcsl_lang.Examples.span_source);
      ("mark_children", Fcsl_lang.Examples.mark_children_source);
    ]

let test_surface_race () =
  match Injected.span_nocas_findings () with
  | [] -> Alcotest.fail "span_nocas not flagged"
  | fs ->
    List.iter
      (fun f ->
        Alcotest.(check string) "rule" "par-race" f.Diag.f_rule;
        check "locates the par" true (has_substr ~sub:"span_nocas" f.Diag.f_loc);
        check "names both arms" true (List.length f.Diag.f_detail >= 3))
      fs

(* --- Injected variants and registered case studies. --- *)

let test_injected_all_flagged () =
  List.iter
    (fun (name, fs) ->
      check (name ^ " flagged") true (Diag.has_errors fs))
    (Injected.all_variants ())

let test_cases_clean () =
  List.iter
    (fun (name, fs) ->
      if fs <> [] then
        Alcotest.failf "%s: unexpected findings:@.%a" name Diag.pp_list fs)
    (Cases.analyze_all ());
  Alcotest.(check int) "eleven rows" 11 (List.length (Cases.analyze_all ()))

(* --- Lints. --- *)

let test_dead_labels () =
  let w =
    World.of_list [ Snapshot.concurroid l1; Span.concurroid l2 ]
  in
  match Lint.dead_labels w ~used:(Footprint.reads l1) with
  | [ f ] ->
    Alcotest.(check string) "rule" "dead-label" f.Diag.f_rule;
    check "names the dead label" true (has_substr ~sub:"an_t_l2" f.Diag.f_loc)
  | fs -> Alcotest.failf "expected one dead label, got %d" (List.length fs)

let test_hide_lints () =
  let pv = Label.make "an_t_pv" and sp = Label.make "an_t_sp" in
  let prog = Span.span_root ~pv ~sp (p 1) in
  let clean_w = World.of_list [ Priv.make pv ] in
  check "fresh hide label is clean of collisions" true
    (List.for_all
       (fun f -> f.Diag.f_rule <> "hide-label-collision")
       (Lint.hide_lints ~loc:"span_root" clean_w prog));
  let clash_w = World.of_list [ Priv.make pv; Span.concurroid sp ] in
  check "ambient label collision detected" true
    (List.exists
       (fun f -> f.Diag.f_rule = "hide-label-collision")
       (Lint.hide_lints ~loc:"span_root" clash_w prog))

(* --- Pruning soundness. --- *)

(* Same triple, pruned and unpruned: identical verdict and failure set
   (outcome counts may shrink under pruning, never grow). *)
let same_verdict name (base : Verify.report) (pruned : Verify.report) =
  Alcotest.(check string) (name ^ " spec") base.Verify.spec_name
    pruned.Verify.spec_name;
  check (name ^ " verdict") (Verify.ok base) (Verify.ok pruned);
  check (name ^ " outcomes never grow") true
    (pruned.Verify.outcomes <= base.Verify.outcomes)

(* Single-label world: pruning is the identity. *)
let test_prune_single_label () =
  let w = Snapshot.world () and init = Snapshot.init_states () in
  let run prune =
    Verify.check_triple ~fuel:14 ~env_budget:2 ~prune ~world:w ~init
      (Snapshot.read_pair Snapshot.sp_label)
      (Snapshot.read_pair_spec Snapshot.sp_label)
  in
  let base = run false and pruned = run true in
  same_verdict "snapshot" base pruned;
  check "snapshot verifies" true (Verify.ok pruned);
  Alcotest.(check int) "single label: outcome counts identical"
    base.Verify.outcomes pruned.Verify.outcomes

(* An entangled two-concurroid world: a snapshot client running next to
   an (untouched) spanning-tree concurroid.  Pruning skips every env
   step at the tree label and must not change any verdict. *)
let entangled () =
  let sp = Label.make "an_ent_span" in
  let w =
    World.of_list
      [ Snapshot.concurroid Snapshot.sp_label; Span.concurroid sp ]
  in
  let g = Graph_catalog.graph_of [ (p 1, p 2, Ptr.null); (p 2, Ptr.null, Ptr.null) ] in
  let span_slice =
    Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
      ~other:(Aux.set Ptr.Set.empty)
  in
  let init = List.map (State.add sp span_slice) (Snapshot.init_states ()) in
  (w, init)

let test_prune_entangled () =
  let w, init = entangled () in
  let run ?(env_budget = 1) prune prog =
    Verify.check_triple ~fuel:12 ~env_budget ~prune ~world:w ~init prog
      (Snapshot.read_pair_spec Snapshot.sp_label)
  in
  let base = run false (Snapshot.read_pair Snapshot.sp_label) in
  let pruned = run true (Snapshot.read_pair Snapshot.sp_label) in
  same_verdict "entangled snapshot" base pruned;
  check "verifies under both" true (Verify.ok base && Verify.ok pruned);
  check "pruning actually cuts outcomes" true
    (pruned.Verify.outcomes < base.Verify.outcomes);
  (* the refutation of the unchecked read survives pruning (the
     destabilizing write needs two env steps, as in refute_unchecked) *)
  let base_r =
    run ~env_budget:2 false (Snapshot.read_pair_unchecked Snapshot.sp_label)
  in
  let pruned_r =
    run ~env_budget:2 true (Snapshot.read_pair_unchecked Snapshot.sp_label)
  in
  check "refuted under both" true
    ((not (Verify.ok base_r)) && not (Verify.ok pruned_r))

(* The whole registry, pruned vs unpruned: identical verdict multiset. *)
let test_prune_registry () =
  let module Registry = Fcsl_report.Registry in
  let verdicts () =
    List.concat_map
      (fun c ->
        List.map
          (fun r -> (r.Verify.spec_name, Verify.ok r))
          (c.Registry.c_verify ()))
      Registry.all
  in
  let base = Verify.with_engine ~prune:false verdicts in
  let pruned = Verify.with_engine ~prune:true verdicts in
  Alcotest.(check (list (pair string bool)))
    "registry verdict multisets agree" base pruned

(* A lying annotation must not yield silent unsoundness: the envelope
   monitor converts it into an explicit failure. *)
let test_envelope_monitor () =
  let sn2 = Label.make "an_liar_snap" in
  let w =
    World.of_list
      [ Snapshot.concurroid Snapshot.sp_label; Snapshot.concurroid sn2 ]
  in
  (* re-key each known-good snapshot slice at the second label *)
  let init =
    List.map
      (fun st ->
        State.add sn2 (Option.get (State.find Snapshot.sp_label st)) st)
      (Snapshot.init_states ())
  in
  (* claims to only read the first snapshot, actually writes the second *)
  let liar =
    Prog.annot
      (Footprint.reads Snapshot.sp_label)
      (Prog.act (Snapshot.write_cell sn2 Snapshot.x_cell 3))
  in
  let spec =
    Spec.with_fp
      (Footprint.reads Snapshot.sp_label)
      (Spec.make ~name:"liar"
         ~pre:(fun _ -> true)
         ~post:(fun _ _ _ -> true))
  in
  let run prune =
    Verify.check_triple ~fuel:8 ~env_budget:1 ~prune ~world:w ~init liar spec
  in
  check "trivial post passes unpruned" true (Verify.ok (run false));
  let pruned = run true in
  check "monitor fails the lying envelope" false (Verify.ok pruned);
  check "failure names the violation" true
    (List.exists
       (fun f ->
         has_substr ~sub:"envelope violation"
           (Crash.message f.Verify.crash)
         && Crash.kind f.Verify.crash = Crash.Envelope_violation)
       pruned.Verify.failures)

let suite =
  [
    Alcotest.test_case "footprint domain" `Quick test_footprint_domain;
    Alcotest.test_case "DSL footprint inference" `Quick test_prog_footprint;
    Alcotest.test_case "annotation narrowing lint" `Quick test_annot_checker;
    Alcotest.test_case "surface: shipped sources clean" `Quick
      test_surface_clean;
    Alcotest.test_case "surface: span without CAS flagged" `Quick
      test_surface_race;
    Alcotest.test_case "all injected variants flagged" `Quick
      test_injected_all_flagged;
    Alcotest.test_case "all Table 1 rows clean" `Quick test_cases_clean;
    Alcotest.test_case "dead-label lint" `Quick test_dead_labels;
    Alcotest.test_case "hide lints" `Quick test_hide_lints;
    Alcotest.test_case "prune: single-label identity" `Quick
      test_prune_single_label;
    Alcotest.test_case "prune: entangled world, same verdicts" `Quick
      test_prune_entangled;
    Alcotest.test_case "prune: registry verdicts unchanged" `Quick
      test_prune_registry;
    Alcotest.test_case "prune: envelope monitor catches lies" `Quick
      test_envelope_monitor;
  ]
