(* The write-ahead journal (docs/ROBUSTNESS.md, "Durability"): framing
   and checksums, record round-trips, torn-write recovery by truncation
   at every possible cut point, corrupt-byte recovery, compaction, and
   the resume property itself — a journaled verification replays to
   verdicts identical to an uninterrupted run's. *)

open Fcsl_core
open Fcsl_casestudies

let check = Alcotest.(check bool)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fcsl-test-journal-%d-%d" (Unix.getpid ()) !n)
    in
    (* discard any leftover from a previous run of the same pid *)
    Journal.close (Journal.openj ~resume:false d);
    d

let crash ?(trace = []) kind msg = Crash.make ~trace kind msg

let sample_records =
  [
    Journal.Spec_begin { spec = "spec-a"; params = "p1" };
    Journal.Tier_begin { spec = "spec-a"; tier = "exhaustive"; seed = None };
    Journal.Frontier { spec = "spec-a"; tier = "exhaustive"; states = 512 };
    Journal.Counterexample
      {
        spec = "spec-a";
        crash =
          crash ~trace:[ "L"; "R"; "env@x" ] Crash.Unsafe_action
            "write to freed cell";
      };
    Journal.State_done
      {
        spec = "spec-a";
        tier = "exhaustive";
        index = 3;
        state =
          {
            Journal.si_outcomes = 17;
            si_diverged = 2;
            si_complete = true;
            si_states = 340;
            si_failures = [ crash Crash.Postcondition "post failed" ];
          };
      };
    Journal.Spec_done
      {
        Journal.ri_spec = "spec-a";
        ri_params = "p1";
        ri_tier = "pruned";
        ri_seed = Some 42;
        ri_initial_states = 7;
        ri_outcomes = 1234;
        ri_diverged = 5;
        ri_complete = false;
        ri_states = 8080;
        ri_failures = [ (3, crash Crash.Postcondition "post failed") ];
        ri_worker_crashes = [ (1, crash Crash.Internal_error "worker died") ];
        ri_budget =
          Some
            {
              Journal.bi_elapsed_s = 0.25;
              bi_states = 9001;
              bi_major_words = 4096;
              bi_tripped = Some "state-ceiling";
            };
      };
  ]

(* Structural record equality for tests: traces matter here (the wire
   format round-trips them), so compare pp renderings, which include
   every field. *)
let record_str r = Fmt.str "%a" Journal.pp_record r

let records_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> record_str x = record_str y) a b

(* --- framing --------------------------------------------------------- *)

let test_crc32 () =
  (* the IEEE 802.3 check value: CRC-32 of "123456789" *)
  Alcotest.(check int32) "crc32 check value" 0xCBF43926l
    (Journal.crc32 "123456789");
  Alcotest.(check int32) "crc32 of empty" 0l (Journal.crc32 "");
  check "crc32 detects a flip" false
    (Journal.crc32 "123456789" = Journal.crc32 "123456788")

let test_round_trip () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  List.iter (Journal.append j) sample_records;
  Journal.close j;
  let read_back, torn = Journal.read d in
  Alcotest.(check int) "no torn bytes" 0 torn;
  (* openj writes a Meta record first *)
  match read_back with
  | Journal.Meta { version; _ } :: rest ->
    Alcotest.(check int) "version" 2 version;
    check "records round-trip" true (records_equal sample_records rest)
  | _ -> Alcotest.fail "journal does not start with Meta"

let test_resume_sees_records () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  List.iter (Journal.append j) sample_records;
  Journal.close j;
  let j = Journal.openj ~resume:true d in
  check "spec verdict recovered" true
    (Journal.find_spec_done j ~spec:"spec-a" ~params:"p1" <> None);
  check "unit recovered" true
    (Journal.find_state_done j ~spec:"spec-a" ~tier:"exhaustive" ~index:3
    <> None);
  check "wrong params see nothing" true
    (Journal.find_spec_done j ~spec:"spec-a" ~params:"p2" = None);
  check "counterexample recovered" true
    (Journal.counterexamples j ~spec:"spec-a" <> []);
  (match Journal.last_tier j ~spec:"spec-a" with
  | Some ("exhaustive", None) -> ()
  | _ -> Alcotest.fail "last_tier not recovered");
  Journal.close j;
  (* without ~resume the same directory starts fresh *)
  let j = Journal.openj ~resume:false d in
  check "no resume discards" true
    (Journal.find_spec_done j ~spec:"spec-a" ~params:"p1" = None);
  Journal.close j

let test_params_change_invalidates_units () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  Journal.append j (Journal.Spec_begin { spec = "s"; params = "p1" });
  Journal.append j
    (Journal.State_done
       {
         spec = "s";
         tier = "exhaustive";
         index = 0;
         state =
           {
             Journal.si_outcomes = 1;
             si_diverged = 0;
             si_complete = true;
             si_states = 1;
             si_failures = [];
           };
       });
  check "unit visible under p1" true
    (Journal.find_state_done j ~spec:"s" ~tier:"exhaustive" ~index:0 <> None);
  (* a re-begin under different engine parameters must drop the unit *)
  Journal.append j (Journal.Spec_begin { spec = "s"; params = "p2" });
  check "unit invalidated by params change" true
    (Journal.find_state_done j ~spec:"s" ~tier:"exhaustive" ~index:0 = None);
  Journal.close j

(* --- torn-write recovery -------------------------------------------- *)

let file_bytes path =
  let ic = In_channel.open_bin path in
  let s = In_channel.input_all ic in
  In_channel.close ic;
  s

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd len;
  Unix.close fd

(* Truncate a valid journal at EVERY byte offset of its final record:
   recovery must drop exactly that record (and report the torn bytes),
   never raise, and never surface a half-record. *)
let test_torn_tail_every_offset () =
  let d = tmp_dir () in
  let j = Journal.openj ~fsync:Journal.Never d in
  List.iter (Journal.append j) sample_records;
  Journal.close j;
  let wal = Journal.wal_path d in
  let whole = file_bytes wal in
  let full_len = String.length whole in
  (* locate the final record's frame by reading all-but-last prefix:
     scan lengths from the header *)
  let all, _ = Journal.read d in
  let n_all = List.length all in
  (* byte offset where the last record's frame begins: re-scan frames *)
  let rec frame_end off k =
    if k = 0 then off
    else
      let len =
        Int32.to_int (String.get_int32_le whole off) land 0xffffffff
      in
      frame_end (off + 8 + len) (k - 1)
  in
  let last_start = frame_end (String.length Journal.magic) (n_all - 1) in
  check "last frame is at the tail" true (last_start < full_len);
  let expected_prefix = List.filteri (fun i _ -> i < n_all - 1) all in
  for cut = last_start to full_len - 1 do
    truncate_file wal full_len;
    let oc = open_out_gen [ Open_binary; Open_wronly ] 0o644 wal in
    output_string oc whole;
    close_out oc;
    truncate_file wal cut;
    (* pure read first: reports the cut as torn bytes *)
    let rs, torn = Journal.read d in
    check
      (Printf.sprintf "cut@%d: read drops only the torn record" cut)
      true
      (records_equal rs expected_prefix);
    Alcotest.(check int)
      (Printf.sprintf "cut@%d: torn byte count" cut)
      (cut - last_start) torn;
    (* then a recovering open: truncates physically, keeps the prefix *)
    let j = Journal.openj ~resume:true d in
    check
      (Printf.sprintf "cut@%d: recovery keeps the prefix" cut)
      true
      (records_equal (Journal.recovered j) expected_prefix);
    Alcotest.(check int)
      (Printf.sprintf "cut@%d: truncated bytes" cut)
      (cut - last_start)
      (Journal.truncated_bytes j);
    (* physical truncation happens at open; the close below appends
       this generation's Meta record after the surviving prefix *)
    check
      (Printf.sprintf "cut@%d: WAL physically truncated" cut)
      true
      ((Unix.stat wal).Unix.st_size = last_start);
    Journal.close j
  done

let test_corrupt_byte_mid_file () =
  let d = tmp_dir () in
  let j = Journal.openj ~fsync:Journal.Never d in
  List.iter (Journal.append j) sample_records;
  Journal.close j;
  let wal = Journal.wal_path d in
  let whole = file_bytes wal in
  (* flip one payload byte somewhere after the magic: everything from
     the corrupted record on is dropped, the prefix survives *)
  let pos = String.length Journal.magic + 24 in
  let corrupted = Bytes.of_string whole in
  Bytes.set corrupted pos (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0x40));
  let oc = open_out_gen [ Open_binary; Open_wronly; Open_trunc ] 0o644 wal in
  output_string oc (Bytes.to_string corrupted);
  close_out oc;
  let rs, torn = Journal.read d in
  check "corruption drops a suffix, keeps a prefix" true
    (List.length rs < List.length sample_records + 1);
  check "torn bytes reported" true (torn > 0);
  let j = Journal.openj ~resume:true d in
  check "recovery after corruption does not raise" true
    (List.length (Journal.recovered j) = List.length rs);
  Journal.close j

(* --- compaction ------------------------------------------------------ *)

let test_compaction_preserves_lookups () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  List.iter (Journal.append j) sample_records;
  let units_before = Journal.completed_units j in
  Journal.compact j;
  check "snapshot exists" true (Sys.file_exists (Journal.snapshot_path d));
  check "WAL truncated to header" true
    ((Unix.stat (Journal.wal_path d)).Unix.st_size
    = String.length Journal.magic);
  check "lookup after compaction" true
    (Journal.find_spec_done j ~spec:"spec-a" ~params:"p1" <> None);
  check "units monotone across compaction" true
    (Journal.completed_units j >= units_before);
  Journal.close j;
  (* and across a close/recover cycle *)
  let j = Journal.openj ~resume:true d in
  check "lookup after compaction + reopen" true
    (Journal.find_spec_done j ~spec:"spec-a" ~params:"p1" <> None
    && Journal.find_state_done j ~spec:"spec-a" ~tier:"exhaustive" ~index:3
       <> None);
  check "units monotone across reopen" true
    (Journal.completed_units j >= units_before);
  Journal.close j

let test_auto_compaction () =
  let d = tmp_dir () in
  let j = Journal.openj ~compact_every:32 d in
  for i = 1 to 200 do
    Journal.append j
      (Journal.Frontier { spec = "s"; tier = "exhaustive"; states = i })
  done;
  Journal.close j;
  (* superseded frontiers are dropped: far fewer than 200 live records *)
  let rs, _ = Journal.read d in
  check "auto-compaction bounds the journal" true (List.length rs < 50)

(* --- jobs ------------------------------------------------------------ *)

let test_jobs_statuses () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  List.iter (Journal.append j) sample_records;
  (* a second spec left in flight *)
  Journal.append j (Journal.Spec_begin { spec = "spec-b"; params = "p" });
  Journal.append j
    (Journal.Tier_begin { spec = "spec-b"; tier = "sampled"; seed = Some 7 });
  Journal.close j;
  let rs, _ = Journal.read d in
  let jobs = Journal.jobs_of_records rs in
  Alcotest.(check int) "two jobs" 2 (List.length jobs);
  let find s = List.find (fun jb -> jb.Journal.j_spec = s) jobs in
  check "spec-a failed (has failures)" true
    ((find "spec-a").Journal.j_status = `Failed);
  check "spec-b in flight" true ((find "spec-b").Journal.j_status = `In_flight);
  check "spec-b tier recorded" true
    ((find "spec-b").Journal.j_tier = Some "sampled");
  check "spec-a counts its units" true ((find "spec-a").Journal.j_units >= 1)

(* --- the resume property itself -------------------------------------- *)

let snapshot_triple () =
  Verify.check_triple
    ~world:(Snapshot.world ())
    ~init:(Snapshot.init_states ())
    (Snapshot.read_pair Snapshot.sp_label)
    (Snapshot.read_pair_spec Snapshot.sp_label)

let canon (r : Verify.report) =
  Fmt.str "%s|%b|%s|%d|%d|%d|%b" r.Verify.spec_name (Verify.ok r)
    (Verify.tier_name r.Verify.tier)
    r.Verify.initial_states r.Verify.outcomes r.Verify.diverged
    r.Verify.complete

let test_journaled_verdict_identical () =
  let bare = snapshot_triple () in
  let d = tmp_dir () in
  let j = Journal.openj d in
  let journaled =
    Verify.with_engine ~journal:(Some j) (fun () -> snapshot_triple ())
  in
  Journal.close j;
  Alcotest.(check string)
    "journal-armed run: verdict identical" (canon bare) (canon journaled);
  (* a resumed run replays the journaled verdict wholesale *)
  let j = Journal.openj ~resume:true d in
  let replayed =
    Verify.with_engine ~journal:(Some j) (fun () -> snapshot_triple ())
  in
  Journal.close j;
  Alcotest.(check string)
    "resumed run: verdict identical" (canon bare) (canon replayed)

let test_resume_skips_completed_units () =
  let d = tmp_dir () in
  let j = Journal.openj d in
  let _ = Verify.with_engine ~journal:(Some j) (fun () -> snapshot_triple ()) in
  let units = Journal.completed_units j in
  Journal.close j;
  check "run journaled units" true (units > 0);
  let j = Journal.openj ~resume:true d in
  let _ = Verify.with_engine ~journal:(Some j) (fun () -> snapshot_triple ()) in
  check "replay adds no new units" true (Journal.completed_units j = units);
  Journal.close j

let suite =
  [
    Alcotest.test_case "crc32: check value" `Quick test_crc32;
    Alcotest.test_case "records round-trip through the WAL" `Quick
      test_round_trip;
    Alcotest.test_case "resume recovers lookups; fresh open discards" `Quick
      test_resume_sees_records;
    Alcotest.test_case "a params change invalidates units" `Quick
      test_params_change_invalidates_units;
    Alcotest.test_case "torn tail: truncation at every byte offset" `Quick
      test_torn_tail_every_offset;
    Alcotest.test_case "corrupt byte mid-file: prefix survives" `Quick
      test_corrupt_byte_mid_file;
    Alcotest.test_case "compaction preserves lookups and units" `Quick
      test_compaction_preserves_lookups;
    Alcotest.test_case "auto-compaction bounds the journal" `Quick
      test_auto_compaction;
    Alcotest.test_case "jobs: statuses from records" `Quick test_jobs_statuses;
    Alcotest.test_case "resume property: verdicts identical" `Quick
      test_journaled_verdict_identical;
    Alcotest.test_case "resume replays instead of re-exploring" `Quick
      test_resume_skips_completed_units;
  ]
