(* The verification service (docs/SERVICE.md): the wire JSON layer,
   protocol parsing (malformed frames are structured protocol-error
   crashes, never exceptions), the journal's read-only digest lookup —
   including the torn-tail case, which must forget the verdict rather
   than serve a stale one — and the daemon end to end: cold vs
   memoized verdicts, concurrent same-digest dedup (one exploration, N
   identical verdicts), queue shedding, graceful drain, disconnect
   cancellation, and crash-safe resume of in-flight ledger jobs. *)

open Fcsl_core
module Json = Fcsl_service.Json
module Protocol = Fcsl_service.Protocol
module Server = Fcsl_service.Server
module Client = Fcsl_service.Client

let check = Alcotest.(check bool)

let tmp_base =
  let n = ref 0 in
  fun tag ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fcsl-test-service-%s-%d-%d" tag (Unix.getpid ()) !n)

let fresh_dir tag =
  let d = tmp_base tag in
  (* discard any leftover from a previous run of the same pid *)
  Journal.close (Journal.openj ~resume:false d);
  d

(* An in-process daemon on a fresh (or given) journal.  [jobs] stays 1:
   the service suite must not be the reason the test binary spawns
   domains. *)
let with_server ?(resume = false) ?queue_bound ?(job_delay_s = 0.)
    ?overload_high ?overload_low ?rate ?dir ~tag f =
  let dir = match dir with Some d -> d | None -> fresh_dir tag in
  let socket = tmp_base (tag ^ "-sock") ^ ".sock" in
  let cfg =
    Server.config ~resume ?queue_bound ~jobs:1 ~signals:false ~job_delay_s
      ?overload_high ?overload_low ?rate ~socket ~journal_dir:dir ()
  in
  let t = Server.create cfg in
  let th = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
    (fun () ->
      check "daemon answers ping" true (Client.wait_ready ~socket ());
      f ~socket ~dir)

let failf fmt = Alcotest.failf fmt

(* --- wire JSON ------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Arr [ Json.Null; Json.Bool false; Json.Str "x\n\"\\y" ]);
        ("c", Json.Float 1.5);
        ("d", Json.Obj [ ("nested", Json.Int (-7)) ]);
        ("e", Json.Str "caf\xc3\xa9");
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check "parse inverts to_string" true (v = v')
  | Error e -> failf "round-trip failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> failf "parsed garbage %S" s
      | Error _ -> ())
    [
      ""; "{"; "[1, 2"; "tru"; "\"unterminated"; "{\"a\": }"; "{} trailing";
      "{'single': 1}"; "[1,]";
    ]

(* --- protocol requests ----------------------------------------------- *)

let test_request_round_trip () =
  List.iter
    (fun r ->
      let line = Json.to_string (Protocol.request_to_json r) in
      match Protocol.parse_request line with
      | Ok r' -> check "request round-trips" true (r = r')
      | Error c -> failf "parse of %s failed: %s" line (Crash.message c))
    [
      Protocol.Ping;
      Protocol.Status;
      Protocol.Drain;
      Protocol.Health;
      Protocol.Ready;
      Protocol.Cancel 7;
      Protocol.Submit { case = "CAS-lock"; qos = Protocol.Silver };
      Protocol.Submit { case = "Treiber stack"; qos = Protocol.Gold };
    ]

let test_request_malformed () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Ok _ -> failf "parsed malformed frame %S" line
      | Error c ->
        check "malformed frame is a protocol-error" true
          (Crash.kind c = Crash.Protocol_error))
    [
      "{"; "[1]"; "42"; "{\"op\": \"zap\"}"; "{\"op\": \"submit\"}";
      "{\"op\": \"submit\", \"case\": \"x\", \"qos\": \"pewter\"}";
      "{\"op\": \"cancel\"}"; "{\"no\": \"op\"}";
    ]

let test_digest () =
  let d = Protocol.digest ~case:"Treiber stack" ~qos:Protocol.Bronze in
  check "case recovered" true
    (Protocol.case_of_digest d = Some "Treiber stack");
  check "qos recovered" true (Protocol.qos_of_digest d = Some Protocol.Bronze);
  check "gold is unbounded" true
    (Budget.is_unlimited (Protocol.qos_limits Protocol.Gold));
  check "bronze is bounded" false
    (Budget.is_unlimited (Protocol.qos_limits Protocol.Bronze))

(* --- budget cancel probe --------------------------------------------- *)

let test_budget_cancel_probe () =
  let flag = ref false in
  let b = Budget.arm (Budget.limits ~cancel:(fun () -> !flag) ()) in
  Budget.tick b;
  check "not tripped while the probe is false" true (Budget.tripped b = None);
  flag := true;
  Budget.tick b;
  check "tripped on the next tick" true
    (Budget.tripped b = Some Budget.Cancelled);
  flag := false;
  Budget.tick b;
  check "the trip is sticky" true (Budget.tripped b = Some Budget.Cancelled)

(* --- journal digest lookup ------------------------------------------- *)

let ledger_image ?(tier = "service") ~spec ~params () =
  {
    Journal.ri_spec = spec;
    ri_params = params;
    ri_tier = tier;
    ri_seed = None;
    ri_initial_states = 1;
    ri_outcomes = 2;
    ri_diverged = 0;
    ri_complete = true;
    ri_states = 3;
    ri_failures = [];
    ri_worker_crashes = [];
    ri_budget = None;
  }

let test_verdict_of_digest () =
  let dir = fresh_dir "vod" in
  let digest = "case=X;qos=gold" in
  let j = Journal.openj ~resume:false dir in
  Journal.append j (Journal.Spec_begin { spec = "job/X"; params = digest });
  Journal.append j
    (Journal.Spec_done (ledger_image ~spec:"job/X" ~params:digest ()));
  Journal.flush j;
  (match Journal.verdict_of_digest j ~digest with
  | Some ri -> check "tier preserved" true (ri.Journal.ri_tier = "service")
  | None -> failf "journaled digest not found");
  check "other digests miss" true
    (Journal.verdict_of_digest j ~digest:"case=X;qos=bronze" = None);
  Journal.close j;
  (* reopen and look up again: the memo must survive a restart *)
  let j = Journal.openj ~resume:true dir in
  check "memo survives a restart" true
    (Option.is_some (Journal.verdict_of_digest j ~digest));
  Journal.close j

(* A torn tail that eats the verdict record must make the lookup return
   [None] — re-exploration — never the stale (now non-durable) verdict. *)
let test_verdict_of_digest_torn_tail () =
  let dir = fresh_dir "torn" in
  let digest = "case=Y;qos=gold" in
  let j = Journal.openj ~resume:false dir in
  Journal.append j (Journal.Spec_begin { spec = "job/Y"; params = digest });
  Journal.flush j;
  let before = (Unix.stat (Journal.wal_path dir)).Unix.st_size in
  Journal.append j
    (Journal.Spec_done (ledger_image ~spec:"job/Y" ~params:digest ()));
  Journal.flush j;
  Journal.close j;
  (* tear the verdict record: cut a few bytes into it *)
  let fd = Unix.openfile (Journal.wal_path dir) [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (before + 4);
  Unix.close fd;
  let j = Journal.openj ~resume:true dir in
  check "torn verdict is forgotten, not served" true
    (Journal.verdict_of_digest j ~digest = None);
  Journal.close j

(* --- jobs-status JSON (the shared renderer) -------------------------- *)

let test_jobs_json_schema () =
  let records =
    [
      Journal.Spec_begin { spec = "done-spec"; params = "p1" };
      Journal.Spec_done (ledger_image ~tier:"exhaustive" ~spec:"done-spec"
                           ~params:"p1" ());
      Journal.Spec_begin { spec = "wip-spec"; params = "p2" };
    ]
  in
  let jobs = Journal.jobs_of_records records in
  match Json.parse (Protocol.jobs_to_json jobs) with
  | Error e -> failf "jobs JSON does not parse: %s" e
  | Ok v -> (
    check "schema_version" true
      (Option.bind (Json.member "schema_version" v) Json.to_int
      = Some Protocol.schema_version);
    match Option.bind (Json.member "jobs" v) Json.to_list with
    | Some ([ _; _ ] as js) ->
      let field k j = Option.bind (Json.member k j) Json.to_str in
      let row spec =
        match List.find_opt (fun j -> field "spec" j = Some spec) js with
        | Some j -> j
        | None -> failf "no job row for %s" spec
      in
      check "complete status" true
        (field "status" (row "done-spec") = Some "complete");
      check "in-flight status" true
        (field "status" (row "wip-spec") = Some "in-flight");
      check "units field present" true
        (Option.bind (Json.member "units" (row "done-spec")) Json.to_int
        <> None)
    | _ -> failf "expected exactly two job rows")

(* --- the daemon end to end ------------------------------------------- *)

let test_serve_cold_then_memo () =
  with_server ~tag:"memo" (fun ~socket ~dir:_ ->
      let cn = Client.connect ~socket in
      (match Client.submit cn ~case:"CAS-lock" with
      | Ok v ->
        check "cold verdict is not a memo" false v.Client.v_memo;
        check "cold run adds durable units" true (v.Client.v_fresh_units > 0);
        check "verdict ok" true (v.Client.v_status = 0)
      | Error e -> failf "cold submit: %a" Client.pp_submit_error e);
      (match Client.submit cn ~case:"CAS-lock" with
      | Ok v ->
        check "second submission is memoized" true v.Client.v_memo;
        check "memoized verdict adds no units" true
          (v.Client.v_fresh_units = 0)
      | Error e -> failf "memo submit: %a" Client.pp_submit_error e);
      (match Client.status cn with
      | Ok v ->
        check "status carries the schema version" true
          (Option.bind (Json.member "schema_version" v) Json.to_int
          = Some Protocol.schema_version);
        check "status carries the drain flag" true
          (Option.bind (Json.member "draining" v) Json.to_bool = Some false)
      | Error e -> failf "status: %a" Client.pp_submit_error e);
      Client.close cn)

(* M clients race the same digest: exactly one exploration runs and all
   M get the identical verdict. *)
let test_concurrent_same_digest () =
  with_server ~tag:"dedup" ~job_delay_s:0.3 (fun ~socket ~dir ->
      let m = 4 in
      let results = Array.make m (Error (Client.Transport "unset")) in
      let threads =
        List.init m (fun i ->
            Thread.create
              (fun () ->
                let cn = Client.connect ~socket in
                results.(i) <- Client.submit cn ~case:"CAS-lock";
                Client.close cn)
              ())
      in
      List.iter Thread.join threads;
      let canons =
        Array.to_list results
        |> List.map (function
             | Ok v ->
               Json.to_string (Protocol.canonical_verdict v.Client.v_frame)
             | Error e -> failf "concurrent submit: %a" Client.pp_submit_error e)
      in
      (match canons with
      | c0 :: rest ->
        check "all clients got the identical verdict" true
          (List.for_all (String.equal c0) rest)
      | [] -> ());
      (* exactly one exploration: one service ledger verdict, and no
         underlying spec verified twice *)
      let records, _ = Journal.read dir in
      let spec_dones =
        List.filter_map
          (function Journal.Spec_done ri -> Some ri.Journal.ri_spec | _ -> None)
          records
      in
      check "one job ledger verdict" true
        (List.length (List.filter (String.equal "job/CAS-lock") spec_dones)
        = 1);
      let explored =
        List.filter (fun s -> s <> "job/CAS-lock") spec_dones
      in
      check "exactly one exploration ran" true
        (explored <> []
        && List.length explored
           = List.length (List.sort_uniq compare explored)))

let test_shed_past_queue_bound () =
  with_server ~tag:"shed" ~queue_bound:1 ~job_delay_s:0.8
    (fun ~socket ~dir:_ ->
      let submit_bg case res =
        Thread.create
          (fun () ->
            let cn = Client.connect ~socket in
            res := Some (Client.submit cn ~case);
            Client.close cn)
          ()
      in
      let r1 = ref None and r2 = ref None in
      let t1 = submit_bg "CAS-lock" r1 in
      Thread.delay 0.2;
      (* the first job is running its pre-exploration delay *)
      let t2 = submit_bg "Treiber stack" r2 in
      Thread.delay 0.2;
      (* the cold queue now holds one job: the bound *)
      let cn = Client.connect ~socket in
      (match Client.submit cn ~case:"Ticketed lock" with
      | Error (Client.Shed reason) ->
        check "shed reason" true (reason = "queue-full")
      | Ok _ -> failf "submission past the bound was not shed"
      | Error e -> failf "wanted a shed, got %a" Client.pp_submit_error e);
      Client.close cn;
      Thread.join t1;
      Thread.join t2;
      match (!r1, !r2) with
      | Some (Ok _), Some (Ok _) -> ()
      | _ -> failf "accepted submissions did not complete")

let test_drain_finishes_then_sheds () =
  with_server ~tag:"drain" ~job_delay_s:0.5 (fun ~socket ~dir:_ ->
      let r1 = ref None in
      let t1 =
        Thread.create
          (fun () ->
            let cn = Client.connect ~socket in
            r1 := Some (Client.submit cn ~case:"CAS-lock");
            Client.close cn)
          ()
      in
      Thread.delay 0.15;
      let cn = Client.connect ~socket in
      (match Client.drain cn with
      | Ok () -> ()
      | Error e -> failf "drain: %a" Client.pp_submit_error e);
      (match Client.submit cn ~case:"Treiber stack" with
      | Error (Client.Shed reason) ->
        check "post-drain submissions shed" true (reason = "draining")
      | Ok _ -> failf "post-drain submission was accepted"
      | Error e -> failf "wanted a draining shed, got %a" Client.pp_submit_error e);
      Client.close cn;
      Thread.join t1;
      match !r1 with
      | Some (Ok v) ->
        check "in-flight work still completed" true (v.Client.v_status = 0)
      | _ -> failf "the draining daemon dropped in-flight work")

let test_disconnect_cancels () =
  with_server ~tag:"cancel" ~job_delay_s:0.5 (fun ~socket ~dir ->
      let c1 = Client.connect ~socket in
      Client.send c1 (Protocol.Submit { case = "CAS-lock"; qos = Protocol.Gold });
      (match Client.read_frame ~timeout_s:10. c1 with
      | Ok _ack -> ()
      | Error e -> failf "no ack: %s" e);
      Client.abandon c1;
      (* the orphan settles as cancelled in the ledger *)
      let deadline = Unix.gettimeofday () +. 15. in
      let rec tier () =
        let records, _ = Journal.read dir in
        match
          List.filter_map
            (function
              | Journal.Spec_done ri when ri.Journal.ri_spec = "job/CAS-lock"
                ->
                Some ri.Journal.ri_tier
              | _ -> None)
            records
        with
        | t :: _ -> Some t
        | [] ->
          if Unix.gettimeofday () > deadline then None
          else begin
            Thread.delay 0.05;
            tier ()
          end
      in
      (match tier () with
      | Some t -> check "settled as cancelled, not memoizable" true
          (t = "service-cancelled")
      | None -> failf "orphaned job never settled");
      (* a fresh client re-explores to a real verdict *)
      let c2 = Client.connect ~socket in
      (match Client.submit c2 ~case:"CAS-lock" with
      | Ok v ->
        check "resubmission re-explores" false v.Client.v_memo;
        check "resubmission verdict ok" true (v.Client.v_status = 0)
      | Error e -> failf "resubmit: %a" Client.pp_submit_error e);
      Client.close c2)

(* A daemon restarted with [--resume] re-runs the ledger's in-flight
   jobs without any client asking. *)
let test_resume_requeues_in_flight () =
  let dir = fresh_dir "resume" in
  let j = Journal.openj ~resume:true dir in
  Journal.append j
    (Journal.Spec_begin
       { spec = "job/CAS-lock"; params = "case=CAS-lock;qos=gold" });
  Journal.flush j;
  Journal.close j;
  with_server ~resume:true ~dir ~tag:"resume" (fun ~socket ~dir ->
      let deadline = Unix.gettimeofday () +. 60. in
      let rec wait () =
        let records, _ = Journal.read dir in
        let finished =
          List.exists
            (function
              | Journal.Spec_done ri ->
                ri.Journal.ri_spec = "job/CAS-lock"
                && ri.Journal.ri_tier = "service"
              | _ -> false)
            records
        in
        finished
        || Unix.gettimeofday () < deadline
           && begin
                Thread.delay 0.05;
                wait ()
              end
      in
      check "the in-flight ledger job re-ran to a verdict" true (wait ());
      (* and a client is now served from the memo *)
      let cn = Client.connect ~socket in
      (match Client.submit cn ~case:"CAS-lock" with
      | Ok v ->
        check "served from the memo" true
          (v.Client.v_memo && v.Client.v_fresh_units = 0)
      | Error e -> failf "post-resume submit: %a" Client.pp_submit_error e);
      Client.close cn)

(* --- health, readiness, overload, rate limits, retries --------------- *)

let test_health_and_ready () =
  with_server ~tag:"health" (fun ~socket ~dir:_ ->
      let cn = Client.connect ~socket in
      (match Client.health cn with
      | Error e -> failf "health: %a" Client.pp_submit_error e
      | Ok frame ->
        let int_field k = Option.bind (Json.member k frame) Json.to_int in
        check "uptime present and sane" true
          (match Option.bind (Json.member "uptime_s" frame) Json.to_float with
          | Some u -> u >= 0.
          | None -> false);
        check "queue empty" true (int_field "queue_depth" = Some 0);
        check "nothing in flight" true (int_field "inflight" = Some 0);
        check "nothing shed" true (int_field "shed_total" = Some 0);
        check "overload state is normal" true
          (Option.bind (Json.member "overload_state" frame) Json.to_str
          = Some "normal");
        check "journal lag present" true
          (match int_field "journal_lag_bytes" with
          | Some n -> n >= 0
          | None -> false);
        check "healthy journal: null fault" true
          (Json.member "journal_fault" frame = Some Json.Null));
      (match Client.ready cn with
      | Ok r -> check "fresh daemon is ready" true r
      | Error e -> failf "ready: %a" Client.pp_submit_error e);
      (match Client.drain cn with
      | Ok () -> ()
      | Error e -> failf "drain: %a" Client.pp_submit_error e);
      (match Client.ready cn with
      | Ok r -> check "a draining daemon is alive but not ready" false r
      | Error e -> failf "ready while draining: %a" Client.pp_submit_error e);
      Client.close cn)

(* Overload: past the high watermark bronze sheds, gold is admitted but
   demoted one rung with the verdict marked degraded — and the demoted
   verdict is never served from the memo (no phantom full-QoS verdict). *)
let test_overload_demotes_and_sheds () =
  with_server ~tag:"overload" ~job_delay_s:0.4 ~queue_bound:8
    ~overload_high:1 ~overload_low:0 (fun ~socket ~dir ->
      (* two bronze fillers: one runs, one queues past the watermark *)
      let fillers =
        List.map
          (fun case ->
            let cn = Client.connect ~socket in
            Client.send cn
              (Protocol.Submit { case; qos = Protocol.Bronze });
            (match Client.read_frame ~timeout_s:10. cn with
            | Ok _ack -> ()
            | Error e -> failf "filler ack: %s" e);
            cn)
          [ "Ticketed lock"; "Pair snapshot" ]
      in
      (* bronze under pressure has no lower rung: structured shed *)
      let shed_cn = Client.connect ~socket in
      (match Client.submit ~qos:Protocol.Bronze shed_cn ~case:"CAS-lock" with
      | Error (Client.Shed reason) ->
        check "bronze shed with the overload reason" true (reason = "overload")
      | Ok _ -> failf "bronze was admitted past the watermark"
      | Error e -> failf "wanted an overload shed, got %a" Client.pp_submit_error e);
      Client.close shed_cn;
      (* gold under pressure: admitted, demoted, marked degraded *)
      let gold_cn = Client.connect ~socket in
      (match Client.submit ~timeout_s:60. gold_cn ~case:"CAS-lock" with
      | Error e -> failf "gold under overload: %a" Client.pp_submit_error e
      | Ok v ->
        check "demoted verdict still ok" true (v.Client.v_status = 0);
        check "verdict carries degraded=true" true
          (Option.bind (Json.member "degraded" v.Client.v_frame) Json.to_bool
          = Some true));
      Client.close gold_cn;
      List.iter Client.close fillers;
      (* the phantom-verdict guard: a fresh gold submission re-explores
         at full QoS instead of reusing the demoted verdict *)
      let fresh_cn = Client.connect ~socket in
      (match Client.submit ~timeout_s:60. fresh_cn ~case:"CAS-lock" with
      | Error e -> failf "post-overload gold: %a" Client.pp_submit_error e
      | Ok v ->
        check "demoted verdict is not a memo hit" false v.Client.v_memo;
        check "full-QoS verdict not marked degraded" true
          (Option.bind (Json.member "degraded" v.Client.v_frame) Json.to_bool
          = Some false));
      (* shed decisions are journaled (and survive as ledger records) *)
      let records, _ = Journal.read dir in
      check "the shed was journaled" true
        (List.exists
           (function
             | Journal.Spec_done ri -> ri.Journal.ri_tier = "service-shed"
             | _ -> false)
           records);
      (* and surfaced in health *)
      (match Client.health fresh_cn with
      | Ok frame ->
        check "health counts the shed" true
          (match Option.bind (Json.member "shed_total" frame) Json.to_int with
          | Some n -> n >= 1
          | None -> false)
      | Error e -> failf "health after overload: %a" Client.pp_submit_error e);
      Client.close fresh_cn)

(* The per-client token bucket: a client past its burst is answered
   with structured rate-limited sheds, not queue pressure. *)
let test_rate_limit_sheds () =
  with_server ~tag:"rate" ~job_delay_s:0.3 ~rate:(0.1, 2)
    (fun ~socket ~dir:_ ->
      let cn = Client.connect ~socket in
      List.iter
        (fun case -> Client.send cn (Protocol.Submit { case; qos = Protocol.Gold }))
        [ "CAS-lock"; "Ticketed lock"; "Pair snapshot"; "CG increment" ];
      let frame_type f =
        match Option.bind (Json.member "type" f) Json.to_str with
        | Some t -> t
        | None -> "?"
      in
      let frames =
        List.init 4 (fun i ->
            match Client.read_frame ~timeout_s:10. cn with
            | Ok f -> f
            | Error e -> failf "reply %d: %s" i e)
      in
      (match List.map frame_type frames with
      | [ "ack"; "ack"; "shed"; "shed" ] -> ()
      | ts -> failf "wanted ack,ack,shed,shed; got %s" (String.concat "," ts));
      List.iter
        (fun f ->
          if frame_type f = "shed" then
            check "shed reason is rate-limited" true
              (Option.bind (Json.member "reason" f) Json.to_str
              = Some "rate-limited"))
        frames;
      Client.abandon cn)

let test_submit_retry_first_attempt () =
  with_server ~tag:"retry" (fun ~socket ~dir:_ ->
      (match
         Client.submit_retry ~retries:2 ~backoff_base_s:0.05 ~socket
           ~case:"CAS-lock" ()
       with
      | Ok rv ->
        check "one attempt sufficed" true (rv.Client.rv_attempts = 1);
        check "no backoff slept" true (rv.Client.rv_backoff_s = 0.);
        check "verdict ok" true (rv.Client.rv_verdict.Client.v_status = 0)
      | Error e -> failf "submit_retry: %a" Client.pp_submit_error e);
      (* deterministic server errors fail fast, no retries burned *)
      let t0 = Unix.gettimeofday () in
      match
        Client.submit_retry ~retries:3 ~backoff_base_s:0.5 ~socket
          ~case:"No Such Case" ()
      with
      | Error (Client.Server_error c) ->
        check "structured protocol error" true
          (Crash.kind c = Crash.Protocol_error);
        check "failed fast, without backoff" true
          (Unix.gettimeofday () -. t0 < 0.5)
      | Error e -> failf "wanted a server error, got %a" Client.pp_submit_error e
      | Ok _ -> failf "an unknown case produced a verdict")

(* --- journal syscall faults ------------------------------------------ *)

(* The wounded-journal contract at unit scale: the first injected write
   fault flips [io_failure] to a structured [Io_fault], later appends
   are disk no-ops that never raise, and in-memory lookups keep
   answering for this process. *)
let test_journal_wounded_by_enospc () =
  let dir = fresh_dir "wound" in
  let budget = ref 512 in
  let io =
    {
      Journal.io_write =
        (fun fd s pos len ->
          if !budget - len < 0 then
            raise (Unix.Unix_error (Unix.ENOSPC, "write", "test"))
          else begin
            let k = Journal.real_io.Journal.io_write fd s pos len in
            budget := !budget - k;
            k
          end);
      io_fsync = Journal.real_io.Journal.io_fsync;
      io_rename = Journal.real_io.Journal.io_rename;
    }
  in
  let j = Journal.openj ~io ~fsync:Journal.Always ~resume:false dir in
  let n = ref 0 in
  while Journal.io_failure j = None && !n < 100 do
    Journal.append j
      (Journal.Spec_done
         (ledger_image
            ~spec:(Printf.sprintf "job/w%d" !n)
            ~params:(Printf.sprintf "digest-w%d" !n)
            ()));
    incr n
  done;
  (match Journal.io_failure j with
  | Some c ->
    check "wounded with a structured io-fault" true
      (Crash.kind c = Crash.Io_fault)
  | None -> failf "the write fault never wounded the journal");
  (* appends after the wound: no exception, index still answers *)
  Journal.append j
    (Journal.Spec_done (ledger_image ~spec:"job/after" ~params:"digest-after" ()));
  check "post-wound append is visible in memory" true
    (Option.is_some (Journal.verdict_of_digest j ~digest:"digest-after"));
  Journal.flush j;
  Journal.close j;
  (* a real-io reopen recovers a clean prefix and forgets the rest *)
  let j2 = Journal.openj ~resume:true dir in
  check "the post-wound record was never persisted" true
    (Journal.verdict_of_digest j2 ~digest:"digest-after" = None);
  check "a persisted prefix survived" true
    (Option.is_some (Journal.verdict_of_digest j2 ~digest:"digest-w0"));
  Journal.close j2

let suite =
  [
    Alcotest.test_case "json: parse inverts to_string" `Quick
      test_json_round_trip;
    Alcotest.test_case "json: garbage rejected" `Quick test_json_rejects_garbage;
    Alcotest.test_case "protocol: requests round-trip" `Quick
      test_request_round_trip;
    Alcotest.test_case "protocol: malformed frames are protocol-errors" `Quick
      test_request_malformed;
    Alcotest.test_case "protocol: digest and QoS ladder" `Quick test_digest;
    Alcotest.test_case "budget: cancel probe trips sticky" `Quick
      test_budget_cancel_probe;
    Alcotest.test_case "journal: verdict_of_digest lookup" `Quick
      test_verdict_of_digest;
    Alcotest.test_case "journal: torn tail forgets the verdict" `Quick
      test_verdict_of_digest_torn_tail;
    Alcotest.test_case "jobs: one JSON renderer, versioned schema" `Quick
      test_jobs_json_schema;
    Alcotest.test_case "serve: cold then memoized verdict" `Quick
      test_serve_cold_then_memo;
    Alcotest.test_case "serve: M clients, one exploration" `Quick
      test_concurrent_same_digest;
    Alcotest.test_case "serve: shed past the queue bound" `Quick
      test_shed_past_queue_bound;
    Alcotest.test_case "serve: drain finishes work, sheds intake" `Quick
      test_drain_finishes_then_sheds;
    Alcotest.test_case "serve: disconnect cancels, never memoizes" `Quick
      test_disconnect_cancels;
    Alcotest.test_case "serve: resume requeues in-flight ledger jobs" `Quick
      test_resume_requeues_in_flight;
    Alcotest.test_case "serve: health fields and readiness flip" `Quick
      test_health_and_ready;
    Alcotest.test_case "serve: overload demotes gold, sheds bronze" `Quick
      test_overload_demotes_and_sheds;
    Alcotest.test_case "serve: per-client token bucket sheds" `Quick
      test_rate_limit_sheds;
    Alcotest.test_case "client: submit_retry first attempt and fail-fast"
      `Quick test_submit_retry_first_attempt;
    Alcotest.test_case "journal: wounded by ENOSPC, degrades honestly" `Quick
      test_journal_wounded_by_enospc;
  ]
