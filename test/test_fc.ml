(* Flat combiner / FC-stack: laws, helping-specific stability lemmas,
   the flat_combine triples, explicit helping witnesses (a schedule
   where the other thread executes my operation and the effect is still
   ascribed to me), and failure injection. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex
module Hist = Fcsl_pcm.Hist
module Fc = Flatcombiner

let check = Alcotest.(check bool)
let cfg = Fc_stack.cfg
let so = Fc_stack.seq_stack

let setup () =
  let l = Label.make "tf_fc" in
  let c = Fc.concurroid so cfg ~depth:2 l in
  let states = List.map (fun s -> State.singleton l s) (Concurroid.enum c) in
  (l, c, World.of_list [ c ], states)

let test_laws () =
  let _, c, _, _ = setup () in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) (Concurroid.check_laws c))

let test_action_laws () =
  let l, _, w, states = setup () in
  let actions =
    [
      ( "publish",
        Fc.publish_act so cfg l ~slot:0 "push" (Value.int 1) );
      ("poll", Action.map ignore (Fc.poll_act cfg l ~slot:0));
      ("try_lock", Action.map ignore (Fc.try_lock_act cfg l));
      ("unlock", Fc.unlock_act cfg l);
      ("read_slot", Action.map ignore (Fc.read_slot_act cfg l 0));
      ("apply", Fc.apply_act so cfg l 0);
      ("respond", Fc.respond_act cfg l 0);
      ("claim", Action.map ignore (Fc.claim_act cfg l ~slot:0));
    ]
  in
  List.iter
    (fun (name, a) ->
      Alcotest.(check (list string))
        (name ^ " laws") []
        (List.map (Fmt.str "%a" Action.pp_violation)
           (Action.check_laws w a ~states)))
    actions

let test_stability () =
  let l, _, w, states = setup () in
  let stable p = Stability.is_stable (Stability.check w ~states p) in
  check "slot token is mine forever" true
    (stable (Fc.assert_token l cfg ~slot:0));
  check "Done result preserved until claim" true
    (stable (Fc.assert_done_preserved l cfg ~slot:0 Value.unit));
  check "claimed history permanent" true
    (stable
       (Fc.assert_hist_owned l
          (Hist.add 1 (Hist.entry ~state:(Value.pair (Value.int 1) Value.Unit) "push") Hist.empty)));
  (* negative control: the combiner lock being free is unstable *)
  check "lock freeness unstable" false
    (stable (fun st ->
         match State.find l st with
         | Some s -> Fc.lock_bit cfg (Slice.joint s) = Some false
         | None -> false))

let test_triples () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Fc_stack.verify ())

let test_pair () =
  let r = Fc_stack.verify_pair () in
  check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r)

(* An explicit helping witness: drive a deterministic schedule where the
   *other* thread (the combiner) executes my pop, and my history still
   receives the entry. *)
let test_helping_witness () =
  let fc = Fc_stack.fc_label in
  let w = Fc_stack.world () in
  let init =
    List.filter
      (fun st ->
        match State.find fc st with
        | Some s -> (
          match Fc.split_aux (Slice.self s) with
          | Some (Mutex.Not_own, tokens, hist) ->
            Ptr.Set.equal tokens (Ptr.Set.of_list cfg.Fc.slots)
            && Hist.is_empty hist
            && Fc.slot_state cfg (Slice.joint s) 0 = Some `Empty
            && Fc.slot_state cfg (Slice.joint s) 1 = Some `Empty
          | _ -> false)
        | None -> false)
      (Fc_stack.init_states ())
  in
  match init with
  | [] -> Alcotest.fail "no initial state"
  | st :: _ ->
    let genv, mine = Sched.genv_of_state w st in
    (* left = requester (slot 0, push 1); right = combiner (slot 1, pop).
       Schedule: let the requester publish first, then starve it until
       the combiner has combined both slots, then let it claim. *)
    let split : Prog.split =
     fun mine ->
      match Fc.split_aux (Contrib.get fc mine) with
      | Some (Mutex.Not_own, _, hist) ->
        let s0 = List.nth cfg.Fc.slots 0 and s1 = List.nth cfg.Fc.slots 1 in
        Some
          ( Contrib.set fc (Fc.pack_aux Mutex.Not_own Ptr.Set.empty hist) mine,
            Contrib.set fc
              (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s0) Hist.empty)
              Contrib.empty,
            Contrib.set fc
              (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s1) Hist.empty)
              Contrib.empty )
      | _ -> None
    in
    let prog =
      Prog.par_split split (Fc_stack.fc_push ~slot:0 1) (Fc_stack.fc_pop ~slot:1)
    in
    (* chooser: prefer the right thread's moves (the combiner does all
       the work); the requester only publishes and finally claims. *)
    let choose ~step:_ names =
      let prefer pred =
        let rec idx i = function
          | [] -> None
          | n :: rest -> if pred n then Some i else idx (i + 1) rest
        in
        idx 0 names
      in
      match prefer (fun n -> n = "fc_publish(0,push)") with
      | Some i -> i
      | None -> (
        (* let the combiner (slot-1 thread) run: its actions mention
           slot 1, the lock, applies and responds *)
        match
          prefer (fun n ->
              String.length n >= 3
              && (String.sub n 0 3 = "fc_" && n <> "fc_poll(0)" && n <> "fc_claim(0)"))
        with
        | Some i -> i
        | None -> 0)
    in
    (match Sched.run_with_chooser ~choose genv mine prog with
    | Sched.Finished ((pushres, popres), final) ->
      check "push returned unit" true (Value.equal pushres Value.unit);
      (* the pop (executed on the combined stack after push 1) got 1 *)
      check "pop result" true
        (Value.equal popres (Value.int 1) || Value.equal popres (Value.int (-1)));
      (* my (root) history holds both entries after the join *)
      (match State.find fc final with
      | Some s -> (
        match Fc.split_aux (Slice.self s) with
        | Some (_, _, hist) ->
          check "both effects ascribed" true (Hist.cardinal hist = 2)
        | None -> Alcotest.fail "bad final aux")
      | None -> Alcotest.fail "no final slice")
    | Sched.Crashed c -> Alcotest.failf "crashed: %a" Crash.pp c
    | Sched.Diverged -> Alcotest.fail "diverged")

(* Failure injection: a combiner that writes a response without applying
   the operation (no linearization, no pending entry) is unsafe. *)
let test_premature_respond_refuted () =
  let l, _, w, states = setup () in
  let rogue : unit Action.t =
    Action.make ~name:"rogue_respond"
      ~safe:(fun st ->
        match State.find l st with
        | Some s -> (
          match
            (Fc.split_aux (Slice.self s), Fc.slot_state cfg (Slice.joint s) 0)
          with
          | Some (Mutex.Own, _, _), Some (`Request _) -> true
          | _ -> false)
        | None -> false)
      ~step:(fun st ->
        let s = State.find_exn l st in
        ( (),
          State.add l
            (Slice.with_joint
               (Heap.update (List.nth cfg.Fc.slots 0)
                  (Fc.slot_done Value.unit) (Slice.joint s))
               s)
            st ))
      ~phys:(fun _ ->
        Action.Write (List.nth cfg.Fc.slots 0, Fc.slot_done Value.unit))
      ()
  in
  check "premature respond refuted" true
    (Action.check_laws w rogue ~states <> [])

let suite =
  [
    Alcotest.test_case "concurroid laws" `Slow test_laws;
    Alcotest.test_case "action laws" `Slow test_action_laws;
    Alcotest.test_case "stability lemmas" `Slow test_stability;
    Alcotest.test_case "flat_combine triples" `Quick test_triples;
    Alcotest.test_case "two clients in parallel" `Quick test_pair;
    Alcotest.test_case "helping witness schedule" `Quick test_helping_witness;
    Alcotest.test_case "injected: premature respond refuted" `Quick
      test_premature_respond_refuted;
  ]
