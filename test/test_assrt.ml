(* Footprint-based stability automation: self-only assertions are stable
   by construction; the syntactic fast path never disagrees with the
   semantic checker (validated over the SpanTree universe). *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let sp = Label.make "ta_span"
let conc = Span.concurroid sp
let world = World.of_list [ conc ]

let states () =
  List.map (fun s -> State.singleton sp s) (Concurroid.enum conc)

let test_footprint_fast_path () =
  (* self-membership: discharged with no enumeration at all *)
  let a = Assrt.self_contains sp (p 1) in
  (match Assrt.check_auto world ~states:[] a with
  | Assrt.Stable_by_footprint -> ()
  | v -> Alcotest.failf "expected footprint verdict, got %a" Assrt.pp_verdict v);
  (* conjunction of self-only assertions stays in the fast path *)
  let b = Assrt.conj a (Assrt.neg (Assrt.self_is_unit sp)) in
  check "conj stays syntactic" true
    (match Assrt.check_auto world ~states:[] b with
    | Assrt.Stable_by_footprint -> true
    | _ -> false)

let test_joint_needs_semantics () =
  (* a joint-reading assertion leaves the fast path; markedness is
     semantically stable, a pinned cell value is not *)
  let marked =
    Assrt.on_joint sp "x1 marked" (fun joint _ ->
        match Graph.of_heap joint with
        | Some g -> Graph.mark g (p 1)
        | None -> false)
  in
  (match Assrt.check_auto world ~states:(states ()) marked with
  | Assrt.Stable_checked -> ()
  | v -> Alcotest.failf "expected semantic stable, got %a" Assrt.pp_verdict v);
  let unmarked = Assrt.neg marked in
  check "negation re-checked, found unstable" true
    (match
       Assrt.check_auto world
         ~states:
           (List.filter
              (fun st ->
                match State.find sp st with
                | Some s -> Heap.mem (p 1) (Slice.joint s)
                | None -> false)
              (states ()))
         (Assrt.conj unmarked
            (Assrt.on_joint sp "x1 present" (fun joint _ -> Heap.mem (p 1) joint)))
     with
    | Assrt.Unstable _ -> true
    | _ -> false)

let test_absent_label_vacuous () =
  let ghost_label = Label.make "ta_ghost" in
  let a =
    Assrt.on_joint ghost_label "reads absent label" (fun _ _ -> true)
  in
  check "absent label is vacuously stable" true
    (match Assrt.check_auto world ~states:(states ()) a with
    | Assrt.Stable_by_footprint -> true
    | _ -> false)

(* Soundness of the fast path: for randomly assembled self-only
   assertions, the semantic checker agrees they are stable. *)
let prop_fast_path_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"footprint fast path agrees with semantics"
       QCheck2.Gen.(list_size (int_range 1 4) (int_range 1 3))
       (fun nodes ->
         let atoms =
           List.map (fun n -> Assrt.self_contains sp (p n)) nodes
         in
         let a = Assrt.conj_all atoms in
         match Assrt.check_auto world ~states:(states ()) a with
         | Assrt.Stable_by_footprint ->
           (* semantic agreement *)
           Stability.is_stable
             (Stability.check world ~states:(states ()) (Assrt.holds a))
         | _ -> false))

(* The same soundness property over arbitrary assertion trees mixing
   self-only and joint-reading atoms through all the connectives: the
   syntactic fast path fires exactly on self-only footprints, and when
   it fires the semantic checker agrees the assertion is stable. *)
let gen_mixed_assrt =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        map (fun n -> Assrt.self_contains sp (p n)) (int_range 1 3);
        return (Assrt.self_is_unit sp);
        map (fun b -> Assrt.pure "const" b) bool;
        map
          (fun n ->
            Assrt.on_joint sp
              (Fmt.str "joint has x%d" n)
              (fun joint _ -> Heap.mem (p n) joint))
          (int_range 1 3);
      ]
  in
  let rec go n =
    if n = 0 then atom
    else
      oneof
        [
          atom;
          map2 Assrt.conj (go (n - 1)) (go (n - 1));
          map2 Assrt.disj (go (n - 1)) (go (n - 1));
          map Assrt.neg (go (n - 1));
        ]
  in
  go 2

let prop_mixed_fast_path_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150
       ~name:"mixed assertions: fast path iff self-only, and then semantically stable"
       gen_mixed_assrt
       (fun a ->
         match Assrt.check_auto world ~states:(states ()) a with
         | Assrt.Stable_by_footprint ->
           Assrt.self_only a
           && Stability.is_stable
                (Stability.check world ~states:(states ()) (Assrt.holds a))
         | Assrt.Stable_checked | Assrt.Unstable _ -> not (Assrt.self_only a)))

let suite =
  [
    Alcotest.test_case "self-only fast path" `Quick test_footprint_fast_path;
    Alcotest.test_case "joint assertions re-checked" `Quick
      test_joint_needs_semantics;
    Alcotest.test_case "absent labels vacuous" `Quick test_absent_label_vacuous;
    prop_fast_path_sound;
    prop_mixed_fast_path_sound;
  ]
