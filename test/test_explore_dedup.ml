(* Memoized exploration is exact: [Sched.explore ~dedup:true] reports
   the same outcome multiset, completeness verdict, and crash set as the
   naive search (crash messages may differ only in their first-discovery
   schedule annotation), configuration keys identify the diamonds of
   commuting steps, and [Verify.check_triple ~jobs] reproduces the
   sequential report. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

(* Crash messages carry " [schedule: ...]" annotations whose text keeps
   the first-discovery trace under memoization; strip them before
   comparing crash sets. *)
let strip_sched msg =
  let marker = " [schedule:" in
  let ml = String.length marker in
  let n = String.length msg in
  let rec find i =
    if i + ml > n then msg
    else if String.sub msg i ml = marker then String.sub msg 0 i
    else find (i + 1)
  in
  find 0

(* Canonical multiset of outcomes: a sorted list of rendered outcomes
   (final subjective states render semantically via [State.pp]). *)
let canon show (outs : 'a Sched.outcome list) : string list =
  List.sort String.compare
    (List.map
       (function
         | Sched.Finished (r, st) -> Fmt.str "F|%s|%a" (show r) State.pp st
         | Sched.Crashed c -> "C|" ^ strip_sched (Fmt.str "%a" Crash.pp c)
         | Sched.Diverged -> "D")
       outs)

(* Explore twice — naive and memoized — and demand identical canonical
   multisets and completeness. *)
let equiv ?(fuel = 12) ?(env_budget = 1) ~interference ~show w st prog =
  let interfere = World.labels w in
  let genv, mine = Sched.genv_of_state ~interfere w st in
  let naive, c_naive =
    Sched.explore ~fuel ~interference ~env_budget ~dedup:false genv mine prog
  in
  let genv, mine = Sched.genv_of_state ~interfere w st in
  let memo, c_memo =
    Sched.explore ~fuel ~interference ~env_budget ~dedup:true genv mine prog
  in
  Alcotest.(check bool) "completeness agrees" c_naive c_memo;
  Alcotest.(check (list string))
    "outcome multisets agree" (canon show naive) (canon show memo)

(* Spanning-tree trymark races, with and without interference. *)

let span_setup triples =
  let sp = Label.make "dedup_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of triples in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  (sp, w, st)

let test_span_race () =
  let sp, w, st = span_setup [ (p 1, Ptr.null, Ptr.null) ] in
  let race =
    Prog.par (Prog.act (Span.trymark sp (p 1))) (Prog.act (Span.trymark sp (p 1)))
  in
  let show (a, b) = Fmt.str "(%b,%b)" a b in
  equiv ~fuel:16 ~interference:false ~show w st race;
  equiv ~fuel:8 ~env_budget:1 ~interference:true ~show w st race

let test_span_program () =
  let sp, w, st =
    span_setup [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  equiv ~fuel:14 ~interference:false ~show:string_of_bool w st (Span.span sp (p 1))

(* CG increment (CAS lock): the lock/read/write/unlock cycles generate
   deep commuting diamonds under interference. *)
let test_cg_incr () =
  let module C = Cg_incr.Cas in
  let w = C.world () in
  let show ((), ()) = "((),())" in
  List.iter
    (fun st ->
      equiv ~fuel:10 ~env_budget:1 ~interference:true ~show w st
        (C.incr_pair C.label))
    (C.init_states ())

(* Pair snapshot: histories + versioned cells through Hist/Aux hashing. *)
let test_snapshot () =
  let w = Snapshot.world () in
  let show (a, b) = Fmt.str "(%d,%d)" a b in
  List.iter
    (fun st ->
      equiv ~fuel:12 ~env_budget:2 ~interference:true ~show w st
        (Snapshot.read_pair Snapshot.sp_label))
    (Snapshot.init_states ())

(* Crash paths: the unchecked snapshot read must be refuted identically
   by both engines — same failure count, same stripped crash reasons,
   same accounting. *)
let test_crash_set () =
  let rn =
    Verify.with_engine ~dedup:false (fun () -> Snapshot.refute_unchecked ())
  in
  let rm =
    Verify.with_engine ~dedup:true (fun () -> Snapshot.refute_unchecked ())
  in
  check "naive refutes" false (Verify.ok rn);
  check "memo refutes" false (Verify.ok rm);
  Alcotest.(check int) "initial states" rn.Verify.initial_states
    rm.Verify.initial_states;
  Alcotest.(check int) "outcomes" rn.Verify.outcomes rm.Verify.outcomes;
  Alcotest.(check int) "diverged" rn.Verify.diverged rm.Verify.diverged;
  check "complete" rn.Verify.complete rm.Verify.complete;
  let reasons r =
    List.sort String.compare
      (List.map
         (fun f -> strip_sched (Fmt.str "%a" Crash.pp f.Verify.crash))
         r.Verify.failures)
  in
  Alcotest.(check (list string)) "crash reasons" (reasons rn) (reasons rm)

(* The diamond itself: stepping two commuting trymarks in either order
   reaches configurations with equal keys under one keyer. *)
let test_config_key_diamond () =
  let sp, w, st =
    span_setup
      [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  let prog =
    Prog.par (Prog.act (Span.trymark sp (p 2))) (Prog.act (Span.trymark sp (p 3)))
  in
  let genv, mine = Sched.genv_of_state w st in
  let step (genv, mine, rt) name =
    match Sched.normalize genv mine rt with
    | Sched.Norm_crash c -> Alcotest.failf "unexpected crash: %a" Crash.pp c
    | Sched.Norm (genv, mine, rt) -> (
      let mvs = Sched.moves genv Contrib.empty mine rt in
      match List.find_opt (fun mv -> Sched.move_name mv = name) mvs with
      | None -> Alcotest.failf "move %s not enabled" name
      | Some mv -> (
        match Sched.move_next mv with
        | Ok c -> c
        | Error c -> Alcotest.failf "move %s failed: %a" name Crash.pp c))
  in
  let start = (genv, mine, Sched.inject prog) in
  let g1, m1, rt1 = step (step start "trymark(x2)") "trymark(x3)" in
  let g2, m2, rt2 = step (step start "trymark(x3)") "trymark(x2)" in
  let keyer = Sched.new_keyer () in
  let k1 = Sched.config_key keyer g1 m1 rt1 in
  let k2 = Sched.config_key keyer g2 m2 rt2 in
  check "diamond keys equal" true (Sched.config_key_equal k1 k2);
  Alcotest.(check int) "diamond hashes equal" (Sched.config_key_hash k1)
    (Sched.config_key_hash k2);
  Alcotest.(check int) "fingerprints equal"
    (Sched.fingerprint keyer g1 m1 rt1)
    (Sched.fingerprint keyer g2 m2 rt2)

(* Parallel verification returns the sequential report, bit for bit. *)
let test_jobs_equal () =
  let same_report name (seq : Verify.report) (par : Verify.report) =
    Alcotest.(check string) (name ^ " spec") seq.Verify.spec_name par.Verify.spec_name;
    Alcotest.(check int) (name ^ " initial") seq.Verify.initial_states
      par.Verify.initial_states;
    Alcotest.(check int) (name ^ " outcomes") seq.Verify.outcomes par.Verify.outcomes;
    Alcotest.(check int) (name ^ " diverged") seq.Verify.diverged par.Verify.diverged;
    check (name ^ " complete") seq.Verify.complete par.Verify.complete;
    Alcotest.(check (list string))
      (name ^ " failures")
      (List.map
         (fun f -> Fmt.str "%a" Crash.pp f.Verify.crash)
         seq.Verify.failures)
      (List.map
         (fun f -> Fmt.str "%a" Crash.pp f.Verify.crash)
         par.Verify.failures)
  in
  let module C = Cg_incr.Cas in
  let w = C.world () and init = C.init_states () in
  let run jobs =
    Verify.check_triple ~fuel:12 ~env_budget:1 ~jobs ~world:w ~init
      (C.incr_pair C.label) (C.incr_pair_spec C.label)
  in
  same_report "cg_incr" (run 1) (run 4);
  let w = Snapshot.world () and init = Snapshot.init_states () in
  let run jobs =
    Verify.check_triple ~fuel:14 ~env_budget:2 ~jobs ~world:w ~init
      (Snapshot.read_pair Snapshot.sp_label)
      (Snapshot.read_pair_spec Snapshot.sp_label)
  in
  same_report "snapshot" (run 1) (run 4);
  (* and on a refuted spec: the early-stop accounting must also agree *)
  let run jobs =
    Verify.check_triple ~fuel:14 ~env_budget:2 ~jobs ~world:w ~init
      (Snapshot.read_pair_unchecked Snapshot.sp_label)
      (Snapshot.read_pair_spec Snapshot.sp_label)
  in
  same_report "snapshot-refute" (run 1) (run 4)

(* Random fuel / budget / initial state: memoized snapshot reads always
   agree with the naive search. *)
let prop_random_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"random dedup equivalence"
       QCheck2.Gen.(triple (int_range 4 12) (int_range 0 2) (int_range 0 1000))
       (fun (fuel, env_budget, seed) ->
         let w = Snapshot.world () in
         let init = Snapshot.init_states () in
         let st = List.nth init (seed mod List.length init) in
         let show (a, b) = Fmt.str "(%d,%d)" a b in
         equiv ~fuel ~env_budget ~interference:true ~show w st
           (Snapshot.read_pair Snapshot.sp_label);
         true))

let suite =
  [
    Alcotest.test_case "span race: dedup = naive" `Quick test_span_race;
    Alcotest.test_case "span program: dedup = naive" `Quick test_span_program;
    Alcotest.test_case "cg-incr: dedup = naive" `Quick test_cg_incr;
    Alcotest.test_case "snapshot: dedup = naive" `Quick test_snapshot;
    Alcotest.test_case "crash sets agree" `Quick test_crash_set;
    Alcotest.test_case "commuting-diamond keys" `Quick test_config_key_diamond;
    Alcotest.test_case "check_triple jobs=4 = sequential" `Quick test_jobs_equal;
    prop_random_equiv;
  ]
