(* Resilience machinery (docs/ROBUSTNESS.md): budgets trip exactly and
   stickily, crashes are structured values, the supervised pool retries
   then quarantines without losing sibling results, the degradation
   ladder always terminates with an explicit tier — never a hang — and
   seeded sampled verdicts replay bit-identically.  The expensive cases
   run under a hard [Unix.alarm] watchdog: if the engine hangs, the
   alarm converts the hang into a test failure. *)

open Fcsl_core
open Fcsl_casestudies

let check = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A hang anywhere in the budgeted engine is the one bug this suite
   exists to catch; the alarm turns it into a loud failure instead of a
   stuck CI job. *)
let with_watchdog secs f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> failwith "watchdog: engine hung"))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* --- Budget ---------------------------------------------------------- *)

let test_budget_state_ceiling () =
  check "no_limits is unlimited" true (Budget.is_unlimited Budget.no_limits);
  check "a tick hook arms the budget" false
    (Budget.is_unlimited (Budget.limits ~tick_hook:(fun () -> ()) ()));
  let b = Budget.arm (Budget.limits ~max_states:5 ()) in
  for _ = 1 to 4 do
    Budget.tick b
  done;
  check "under the ceiling: no trip" true (Budget.tripped b = None);
  Budget.tick b;
  check "at the ceiling: tripped" true
    (Budget.tripped b = Some Budget.State_ceiling);
  Alcotest.(check int) "states charged" 5 (Budget.states b);
  (* sticky: later ticks cannot clear or change the reason *)
  for _ = 1 to 20 do
    Budget.tick b
  done;
  check "trip is sticky" true (Budget.tripped b = Some Budget.State_ceiling);
  let s = Budget.stats b in
  Alcotest.(check (option string))
    "stats record the reason" (Some "state-ceiling") s.Budget.st_tripped;
  match Budget.crash b with
  | Some c ->
    check "crash kind" true (Crash.kind c = Crash.Budget_exhausted)
  | None -> Alcotest.fail "tripped budget has no crash"

let test_budget_deadline () =
  (* an attempt armed past its (ladder-shared) absolute deadline must
     fall through on its very first tick *)
  let b =
    Budget.arm ~deadline_at:(Unix.gettimeofday () -. 1.0) Budget.no_limits
  in
  Budget.tick b;
  check "expired deadline trips on first tick" true
    (Budget.tripped b = Some Budget.Deadline)

let test_budget_hook () =
  let fired = ref 0 in
  let b = Budget.arm (Budget.limits ~tick_hook:(fun () -> incr fired) ()) in
  for _ = 1 to 3 do
    Budget.tick b
  done;
  Alcotest.(check int) "hook runs on every tick" 3 !fired;
  check "hook alone never trips" true (Budget.tripped b = None)

(* --- Crash ----------------------------------------------------------- *)

let test_crash_values () =
  let c = Crash.of_exn (Crash.Injected "boom") in
  check "Injected maps to Injected_fault" true
    (Crash.kind c = Crash.Injected_fault);
  check "message is prefixed" true
    (Crash.message c = "injected fault: boom");
  let i = Crash.of_exn (Failure "bad") in
  check "other exceptions map to Internal_error" true
    (Crash.kind i = Crash.Internal_error);
  (* equality ignores the discovering schedule: memoized replay may
     discover the same crash along a different first trace *)
  let a = Crash.make ~trace:[ "s1"; "s2" ] Crash.Unsafe_action "m" in
  let b = Crash.make ~trace:[ "t9" ] Crash.Unsafe_action "m" in
  check "equal ignores traces" true (Crash.equal a b);
  check "equal respects kind" false
    (Crash.equal a (Crash.make Crash.Postcondition "m"));
  let j = Fmt.str "%s" (Crash.to_json a) in
  check "json carries kind" true
    (contains j "\"unsafe-action\"");
  check "json carries schedule" true
    (contains j "\"s1\"");
  let rendered = Fmt.str "%a" Crash.pp a in
  check "pp carries schedule" true
    (contains rendered "[schedule: s1 ; s2]")

(* --- Pool ------------------------------------------------------------ *)

exception Boom of int

let test_pool_retry_absorbs () =
  (* each item fails on its first attempt only: the retry must absorb
     every failure and return a full, ordered result list *)
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let mu = Mutex.create () in
  let flaky x =
    let first =
      Mutex.lock mu;
      let f = not (Hashtbl.mem seen x) in
      if f then Hashtbl.add seen x ();
      Mutex.unlock mu;
      f
    in
    if first then raise (Boom x) else x * 10
  in
  let rs = Pool.map_result ~jobs:4 flaky [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check (list int))
    "all items recovered, in order"
    [ 10; 20; 30; 40; 50; 60; 70; 80 ]
    (List.map (function Ok v -> v | Error _ -> -1) rs)

let test_pool_quarantine () =
  let f x = if x = 3 then raise (Boom x) else x + 100 in
  let rs = Pool.map_result ~jobs:3 f [ 1; 2; 3; 4 ] in
  (match rs with
  | [ Ok 101; Ok 102; Error e; Ok 104 ] ->
    check "quarantined exception" true (e.Pool.e_exn = Boom 3);
    Alcotest.(check int) "attempts = 1 + retries" 2 e.Pool.e_attempts;
    check "quarantine records the backoff slept" true (e.Pool.e_backoff_s > 0.);
    check "pp_error mentions the backoff" true
      (contains (Fmt.str "%a" Pool.pp_error e) "backoff")
  | _ -> Alcotest.fail "sibling results were lost or reordered");
  (* the all-or-nothing wrapper re-raises instead of dropping results *)
  match Pool.map ~jobs:2 f [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "Pool.map must re-raise"
  | exception Boom 3 -> ()

let test_pool_backoff () =
  (* the jittered exponential schedule is deterministic in (seed, item,
     attempt), grows with the attempt, and stays within [0.5x, 1.5x] of
     the exponential base *)
  let d1 = Pool.backoff_delay ~seed:0 ~base:0.01 5 2 in
  let d1' = Pool.backoff_delay ~seed:0 ~base:0.01 5 2 in
  Alcotest.(check (float 0.)) "deterministic in (seed, item, attempt)" d1 d1';
  check "different items draw different jitter" true
    (d1 <> Pool.backoff_delay ~seed:0 ~base:0.01 6 2);
  check "different seeds draw different jitter" true
    (d1 <> Pool.backoff_delay ~seed:1 ~base:0.01 5 2);
  List.iter
    (fun k ->
      let d = Pool.backoff_delay ~seed:3 ~base:0.01 0 k in
      let expo = 0.01 *. (2. ** float_of_int (k - 2)) in
      check
        (Printf.sprintf "attempt %d within jitter band" k)
        true
        (d >= 0.5 *. expo && d <= 1.5 *. expo))
    [ 2; 3; 4; 5 ];
  (* retried-then-succeeded work still returns Ok and slept the delay *)
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let once_flaky x =
    if Hashtbl.mem seen x then x
    else begin
      Hashtbl.add seen x ();
      raise (Boom x)
    end
  in
  let t0 = Unix.gettimeofday () in
  let rs = Pool.map_result ~jobs:1 ~backoff_s:0.02 ~backoff_seed:5 once_flaky [ 9 ] in
  let dt = Unix.gettimeofday () -. t0 in
  check "retry succeeded" true (rs = [ Ok 9 ]);
  check "the retry actually slept" true
    (dt >= Pool.backoff_delay ~seed:5 ~base:0.02 0 2 *. 0.9)

(* --- The degradation ladder ------------------------------------------ *)

(* An exploration far larger than the ceiling: the ladder must walk
   exhaustive -> pruned -> sampled and stop with an explicit degraded
   verdict, promptly. *)
let test_ladder_degrades () =
  with_watchdog 60 (fun () ->
      let module C = Cg_incr.Cas in
      let r =
        Verify.check_triple ~fuel:12 ~env_budget:1
          ~budget:(Budget.limits ~max_states:8 ~deadline_s:20.0 ())
          ~seed:7 ~world:(C.world ()) ~init:(C.init_states ())
          (C.incr_pair C.label)
          (C.incr_pair_spec C.label)
      in
      check "no spurious failure" true (r.Verify.failures = []);
      check "no worker crash" true (r.Verify.worker_crashes = []);
      check "tier fell to sampled" true (r.Verify.tier = Verify.Sampled);
      check "sampling cannot prove" false r.Verify.complete;
      Alcotest.(check (option int)) "seed recorded" (Some 7) r.Verify.seed;
      check "budget stats present" true (r.Verify.budget <> None);
      check "report is degraded, not ok-silent" true (Verify.degraded r);
      Alcotest.(check int) "exit code: degraded" Verify.exit_degraded
        (Verify.exit_code [ r ]))

(* Counterexamples found before the trip are sound: a budgeted run of a
   refuted spec must still report failures and exit 1, not 2. *)
let test_failures_beat_degradation () =
  with_watchdog 60 (fun () ->
      let r =
        Verify.with_engine
          ~budget:(Budget.limits ~deadline_s:20.0 ())
          (fun () -> Snapshot.refute_unchecked ())
      in
      check "refutation survives the budget" false (Verify.ok r);
      Alcotest.(check int) "exit code: failed" Verify.exit_failed
        (Verify.exit_code [ r ]))

let test_exit_code_priority () =
  let base =
    {
      Verify.spec_name = "synthetic";
      tier = Verify.Exhaustive;
      seed = None;
      initial_states = 1;
      outcomes = 1;
      diverged = 0;
      complete = true;
      states = 1;
      failures = [];
      worker_crashes = [];
      budget = None;
      expl = None;
    }
  in
  let failure =
    { Verify.initial = State.empty; crash = Crash.make Crash.Postcondition "x" }
  in
  let tripped_stats =
    {
      Budget.st_elapsed_s = 0.1;
      st_states = 8;
      st_major_words = 0;
      st_tripped = Some "state-ceiling";
    }
  in
  let degraded =
    { base with Verify.tier = Verify.Sampled; complete = false;
      budget = Some tripped_stats }
  in
  let failed = { base with Verify.failures = [ failure ] } in
  let crashed = { base with Verify.worker_crashes = [ failure ] } in
  Alcotest.(check int) "ok" Verify.exit_ok (Verify.exit_code [ base ]);
  Alcotest.(check int) "degraded" Verify.exit_degraded
    (Verify.exit_code [ base; degraded ]);
  Alcotest.(check int) "crashes beat degradation" Verify.exit_internal
    (Verify.exit_code [ degraded; crashed ]);
  Alcotest.(check int) "failures beat everything" Verify.exit_failed
    (Verify.exit_code [ degraded; crashed; failed ])

(* --- Cancel racing the deadline -------------------------------------- *)

(* Both trip causes live at once, hammered from several threads: the
   sticky compare-and-set must record exactly one cause, every observer
   must agree on it, and later ticks under both still-live conditions
   must never change it. *)
let test_cancel_deadline_race () =
  let b =
    Budget.arm (Budget.limits ~deadline_s:0. ~cancel:(fun () -> true) ())
  in
  let m = 4 in
  let seen = Array.make m None in
  let threads =
    List.init m (fun i ->
        Thread.create
          (fun () ->
            for _ = 1 to 500 do
              Budget.tick b
            done;
            seen.(i) <- Budget.tripped b)
          ())
  in
  List.iter Thread.join threads;
  let final = Budget.tripped b in
  check "the race tripped" true (Option.is_some final);
  check "the cause is one of the racers" true
    (final = Some Budget.Deadline || final = Some Budget.Cancelled);
  Array.iter
    (fun s -> check "every thread observed the same single cause" true
        (s = final))
    seen;
  for _ = 1 to 100 do
    Budget.tick b
  done;
  check "the cause is sticky with both conditions still live" true
    (Budget.tripped b = final)

(* A cancel trip mid-exhaustive aborts the ladder at its current rung:
   no pruned or sampled attempt may run after the trip, so a cancelled
   job can never surface a lower-rung verdict that could be mistaken
   for honest degradation. *)
let test_cancel_aborts_ladder () =
  with_watchdog 60 (fun () ->
      let module C = Cg_incr.Cas in
      let n = ref 0 in
      let r =
        Verify.check_triple ~fuel:12 ~env_budget:1
          ~budget:
            (Budget.limits
               ~tick_hook:(fun () -> incr n)
               ~cancel:(fun () -> !n > 30)
               ~deadline_s:20.0 ())
          ~seed:7 ~world:(C.world ()) ~init:(C.init_states ())
          (C.incr_pair C.label)
          (C.incr_pair_spec C.label)
      in
      check "ladder stopped at the rung the cancel hit" true
        (r.Verify.tier = Verify.Exhaustive);
      check "no sampled rung ran after the trip" true (r.Verify.seed = None);
      check "cancellation cannot prove" false r.Verify.complete;
      check "no spurious failure" true (r.Verify.failures = []);
      match r.Verify.budget with
      | Some st ->
        Alcotest.(check (option string))
          "exactly the cancel cause recorded" (Some "cancelled")
          st.Budget.st_tripped
      | None -> Alcotest.fail "no budget stats on a cancelled report")

(* --- Seeded replay --------------------------------------------------- *)

(* Everything a sampled report promises, rendered canonically; budget
   stats are excluded (wall-clock and heap words are not replayable). *)
let canon_report (r : Verify.report) =
  Fmt.str "%s|%s|%a|%d|%d|%d|%b|%a|%a" r.Verify.spec_name
    (Verify.tier_name r.Verify.tier)
    Fmt.(option int)
    r.Verify.seed r.Verify.initial_states r.Verify.outcomes r.Verify.diverged
    r.Verify.complete
    Fmt.(list ~sep:comma Crash.pp)
    (List.map (fun f -> f.Verify.crash) r.Verify.failures)
    Fmt.(list ~sep:comma Crash.pp)
    (List.map (fun f -> f.Verify.crash) r.Verify.worker_crashes)

let prop_seeded_replay =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15 ~name:"seeded sampled runs replay"
       QCheck2.Gen.(pair (int_range 0 10_000) (int_range 6 14))
       (fun (seed, fuel) ->
         let run () =
           Verify.check_triple_random ~fuel ~trials:20 ~seed
             ~world:(Snapshot.world ())
             ~init:(Snapshot.init_states ())
             (Snapshot.read_pair Snapshot.sp_label)
             (Snapshot.read_pair_spec Snapshot.sp_label)
         in
         let a = run () and b = run () in
         if canon_report a <> canon_report b then
           QCheck2.Test.fail_reportf "reports differ:@.%s@.%s" (canon_report a)
             (canon_report b);
         a.Verify.seed = Some seed && a.Verify.tier = Verify.Sampled))

(* --- Crash JSON round-trip ------------------------------------------- *)

(* [Crash.of_json] inverts [Crash.to_json] for arbitrary kinds,
   messages and schedules — including the characters the JSON escape
   layer has to work for (quotes, backslashes, newlines, control
   bytes).  Equality is [Crash.equal] (kind + message) plus exact trace
   equality, which [to_json] serializes and [equal] deliberately
   ignores. *)
let prop_crash_json_round_trip =
  let all_kinds =
    [
      Crash.Unsafe_action; Crash.Ghost_algebra; Crash.Envelope_violation;
      Crash.Postcondition; Crash.Budget_exhausted; Crash.Injected_fault;
      Crash.Internal_error; Crash.Analyzer_lie; Crash.Deadlock;
      Crash.Protocol_error; Crash.Io_fault;
    ]
  in
  let gen =
    QCheck2.Gen.(
      triple (oneofl all_kinds) string (list_size (int_range 0 5) string))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"of_json inverts to_json" gen
       (fun (kind, msg, trace) ->
         let c = Crash.make ~trace kind msg in
         match Crash.of_json (Crash.to_json c) with
         | Ok c' -> Crash.equal c c' && Crash.trace c' = Crash.trace c
         | Error e ->
           QCheck2.Test.fail_reportf "of_json failed on %s: %s"
             (Crash.to_json c) e))

let test_crash_json_errors () =
  let bad s =
    match Crash.of_json s with Ok _ -> false | Error _ -> true
  in
  check "empty input" true (bad "");
  check "not an object" true (bad "[1,2]");
  check "missing kind" true (bad {|{"msg": "m", "schedule": []}|});
  check "unknown kind" true
    (bad {|{"kind": "novel-disaster", "msg": "m", "schedule": []}|});
  check "trailing garbage" true
    (bad ({|{"kind": "unsafe-action", "msg": "m", "schedule": []}|} ^ "xx"));
  check "bad escape" true (bad {|{"kind": "unsafe-action", "msg": "\q"}|});
  (* unknown keys are skipped, not errors *)
  match
    Crash.of_json
      {|{"kind": "unsafe-action", "extra": {"deep": [1, "x"]}, "msg": "m", "schedule": ["a"]}|}
  with
  | Ok c ->
    check "unknown keys skipped" true
      (Crash.kind c = Crash.Unsafe_action
      && Crash.message c = "m"
      && Crash.trace c = [ "a" ])
  | Error e -> Alcotest.failf "unknown keys should be skipped: %s" e

(* --- Chaos (cheap subset) -------------------------------------------- *)

(* The full registry sweep runs in CI ([fcsl chaos --registry]); here a
   cheap row exercises every mode end to end. *)
let test_chaos_subset () =
  with_watchdog 240 (fun () ->
      let outs = Fcsl_analysis.Chaos.run_all ~cases:[ "CAS-lock" ] () in
      check "every mode produced outcomes" true
        (List.length outs >= List.length Fcsl_analysis.Chaos.all_modes);
      List.iter
        (fun o ->
          if not o.Fcsl_analysis.Chaos.o_passed then
            Alcotest.failf "injection not survived: %a"
              Fcsl_analysis.Chaos.pp_outcome o)
        outs)

let suite =
  [
    Alcotest.test_case "budget: state ceiling, sticky trip" `Quick
      test_budget_state_ceiling;
    Alcotest.test_case "budget: expired deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget: tick hook" `Quick test_budget_hook;
    Alcotest.test_case "crash: structured values" `Quick test_crash_values;
    Alcotest.test_case "pool: retry absorbs transient faults" `Quick
      test_pool_retry_absorbs;
    Alcotest.test_case "pool: quarantine keeps siblings" `Quick
      test_pool_quarantine;
    Alcotest.test_case "pool: jittered exponential backoff" `Quick
      test_pool_backoff;
    Alcotest.test_case "ladder: tiny budget degrades to sampled" `Quick
      test_ladder_degrades;
    Alcotest.test_case "ladder: found failures beat degradation" `Quick
      test_failures_beat_degradation;
    Alcotest.test_case "budget: cancel racing deadline, one sticky cause"
      `Quick test_cancel_deadline_race;
    Alcotest.test_case "ladder: cancel aborts at the tripped rung" `Quick
      test_cancel_aborts_ladder;
    Alcotest.test_case "exit codes: priority" `Quick test_exit_code_priority;
    prop_seeded_replay;
    prop_crash_json_round_trip;
    Alcotest.test_case "crash json: malformed inputs are errors" `Quick
      test_crash_json_errors;
    Alcotest.test_case "chaos: cheap registry row survives all modes" `Quick
      test_chaos_subset;
  ]
