(* The dense representations behind the POR hot path (DESIGN.md
   Section 14) are exact: sleep-set bitsets agree with a reference
   set model and are canonical under permutation, the move interner is
   idempotent and its precomputed adjacency agrees with the footprint
   rule, the incremental genv hash equals the from-scratch fold at
   every reachable configuration, and the whole registry's verdicts
   AND explored-state counts are bit-identical to the pre-rewrite
   engine (the PR that introduced POR), with POR on and off, under
   -j 1 and -j 4. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Registry = Fcsl_report.Registry
module Independence = Fcsl_analysis.Independence
module Sleepset = Por.Sleepset

let check = Alcotest.(check bool)
let p = Ptr.of_int

(* ------------------------------------------------------------------ *)
(* Sleepset vs the reference model: an int Set.                       *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

let prop_sleepset_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500
       ~name:"Sleepset agrees with the Set model and is canonical"
       QCheck2.Gen.(
         pair (list_size (0 -- 40) (0 -- 300)) (list_size (0 -- 10) (0 -- 300)))
       (fun (adds, probes) ->
         let s = List.fold_left Sleepset.add Sleepset.empty adds in
         let m = IntSet.of_list adds in
         (* membership, cardinal, ascending elements *)
         List.for_all (fun i -> Sleepset.mem s i = IntSet.mem i m) (adds @ probes)
         && Sleepset.cardinal s = IntSet.cardinal m
         && Sleepset.elements s = IntSet.elements m
         && Sleepset.is_empty s = IntSet.is_empty m
         (* canonical under permutation: reversed and sorted insertion
            orders produce equal sets with equal hashes *)
         &&
         let rev = List.fold_left Sleepset.add Sleepset.empty (List.rev adds) in
         let srt =
           Sleepset.of_list (List.sort compare adds)
         in
         Sleepset.equal s rev && Sleepset.equal s srt
         && Sleepset.hash s = Sleepset.hash rev
         && Sleepset.hash s = Sleepset.hash srt
         (* fold visits each member exactly once *)
         && Sleepset.fold (fun i acc -> IntSet.add i acc) s IntSet.empty
            |> IntSet.equal m))

let test_sleepset_functional () =
  let s0 = Sleepset.of_list [ 1; 33; 64 ] in
  let s1 = Sleepset.add s0 200 in
  check "add is functional: original unchanged" false (Sleepset.mem s0 200);
  check "add is functional: new set extended" true (Sleepset.mem s1 200);
  check "empty is empty" true (Sleepset.is_empty Sleepset.empty);
  check "distinct sets differ" false (Sleepset.equal s0 s1)

(* ------------------------------------------------------------------ *)
(* The move interner: idempotent ids, faithful adjacency.             *)
(* ------------------------------------------------------------------ *)

let la = Label.make "repr_a"
let lb = Label.make "repr_b"

let fp_pool =
  [ Footprint.bot; Footprint.reads la; Footprint.writes la; Footprint.cases la;
    Footprint.touches la; Footprint.reads lb; Footprint.writes lb;
    Footprint.touches lb;
    Footprint.join (Footprint.reads la) (Footprint.writes lb); Footprint.top ]

let prop_interner =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"interner: idempotent ids, adjacency = footprint rule"
       QCheck2.Gen.(
         list_size (1 -- 12)
           (triple (1 -- 6) (0 -- 3) (0 -- (List.length fp_pool - 1))))
       (fun moves ->
         let por = Por.make () in
         let ids =
           List.map
             (fun (path, n, f) ->
               let name = Printf.sprintf "act%d" n in
               let fp = List.nth fp_pool f in
               (Por.intern_prog por ~path ~name ~fp, fp))
             moves
         in
         (* re-interning every move returns the same id *)
         List.for_all2
           (fun (path, n, f) (id, _) ->
             Por.intern_prog por ~path ~name:(Printf.sprintf "act%d" n)
               ~fp:(List.nth fp_pool f)
             = id)
           moves ids
         (* no extra certificates: declared independence is exactly
            footprint commutation, and symmetric *)
         && List.for_all
              (fun (i, fpi) ->
                List.for_all
                  (fun (j, fpj) ->
                    Por.independent por i j = Footprint.commutes fpi fpj
                    && Por.independent por i j = Por.independent por j i)
                  ids)
              ids))

let test_interner_roundtrip () =
  let por = Por.make () in
  let id1 = Por.intern_prog por ~path:2 ~name:"push" ~fp:(Footprint.cases la) in
  let id2 = Por.intern_prog por ~path:3 ~name:"push" ~fp:(Footprint.cases la) in
  let id3 = Por.intern_prog por ~path:2 ~name:"pop" ~fp:(Footprint.cases la) in
  check "same class, distinct positions: distinct ids" true (id1 <> id2);
  check "distinct names: distinct ids" true (id1 <> id3);
  Alcotest.(check string) "name round-trips" "push" (Por.move_name por id2);
  check "fp round-trips" true
    (Footprint.equal (Por.move_fp por id1) (Footprint.cases la));
  let e1 =
    Por.intern_env por ~label:la ~trans:"tick" ~index:0 ~name:(lazy "env@a")
  in
  let e1' =
    Por.intern_env por ~label:la ~trans:"tick" ~index:0 ~name:(lazy "env@a")
  in
  let e2 =
    Por.intern_env por ~label:la ~trans:"tick" ~index:1 ~name:(lazy "env@a")
  in
  let e3 =
    Por.intern_env por ~label:lb ~trans:"tick" ~index:0 ~name:(lazy "env@b")
  in
  check "env intern is idempotent" true (e1 = e1');
  check "distinct branch index: distinct ids" true (e1 <> e2);
  check "env move shares its class name across branches" true
    (Por.move_name por e1 = Por.move_name por e2);
  check "env envelope is touches(label)" true
    (Footprint.equal (Por.move_fp por e1) (Footprint.touches la));
  (* env moves at distinct labels are independent (rule 3); program
     moves confined to a commute with env moves at b but not at a *)
  check "env@a indep env@b" true (Por.independent por e1 e3);
  check "env@a not indep env@a'" false (Por.independent por e1 e2);
  check "write@a not indep env@a" false (Por.independent por id1 e1);
  check "write@a indep env@b" true (Por.independent por id1 e3);
  (* restrict keeps exactly the independent slept moves *)
  let sleep = Sleepset.of_list [ id1; id3; e3 ] in
  let kept = Por.restrict por sleep ~executed:e1 in
  check "restrict drops dependent moves" true
    (Sleepset.elements kept = [ e3 ])

let test_certs_symmetric () =
  (* The extra-certificate hook is consulted once per ordered class
     pair, so a one-sided table still certifies both orders through the
     adjacency matrix. *)
  let extra a b = a = "foo" && b = "bar" in
  let por = Por.make ~extra () in
  let f = Por.intern_prog por ~path:2 ~name:"foo" ~fp:(Footprint.writes la) in
  let b = Por.intern_prog por ~path:3 ~name:"bar" ~fp:(Footprint.writes la) in
  check "certified pair independent" true (Por.independent por f b);
  check "certified pair independent (swapped)" true (Por.independent por b f);
  (* and the analyzer's own tables answer symmetrically after the
     build-time closure *)
  let certs = Independence.certs_all () in
  List.iter
    (fun (m : Independence.matrix) ->
      List.iter
        (fun (a, b) ->
          check
            (Printf.sprintf "%s: cert (%s,%s) symmetric" m.Independence.x_case
               a b)
            true
            (certs a b && certs b a))
        m.Independence.x_certs)
    (Independence.analyze_all ())

(* ------------------------------------------------------------------ *)
(* Sleep-set permutation: equal config keys.                          *)
(* ------------------------------------------------------------------ *)

let span_setup triples =
  let sp = Label.make "repr_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of triples in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  (sp, w, st)

let test_sleep_permutation_key () =
  let sp, w, st = span_setup [ (p 1, Ptr.null, Ptr.null) ] in
  let genv, mine = Sched.genv_of_state ~interfere:(World.labels w) w st in
  let rt =
    Sched.inject
      (Prog.par
         (Prog.act (Span.trymark sp (p 1)))
         (Prog.act (Span.trymark sp (p 1))))
  in
  let keyer = Sched.new_keyer () in
  let key ids =
    Sched.config_key_sleep keyer genv mine rt
      (List.fold_left Sleepset.add Sleepset.empty ids)
  in
  let k1 = key [ 3; 17; 42 ] and k2 = key [ 42; 3; 17 ] in
  check "permuted sleep sets: equal keys" true (Sched.config_key_equal k1 k2);
  check "permuted sleep sets: equal hashes" true
    (Sched.config_key_hash k1 = Sched.config_key_hash k2);
  let k3 = key [ 3; 17 ] in
  check "different sleep sets: unequal keys" false
    (Sched.config_key_equal k1 k3);
  let k0 = key [] in
  check "empty sleep set: the plain key" true
    (Sched.config_key_equal k0 (Sched.config_key keyer genv mine rt))

(* ------------------------------------------------------------------ *)
(* The incremental genv hash is the from-scratch fold, everywhere.    *)
(* ------------------------------------------------------------------ *)

(* Bounded DFS over the real step relation (program moves and env
   moves), checking [ghash = recompute_ghash] at every configuration
   reached — the invariant every XOR patch in Sched must preserve. *)
let check_ghash_reachable ~fuel genv mine rt =
  let checked = ref 0 in
  let rec go fuel genv mine rt =
    Alcotest.(check int)
      (Printf.sprintf "ghash invariant (config %d)" !checked)
      (Sched.recompute_ghash genv) genv.Sched.ghash;
    incr checked;
    if fuel > 0 then
      match Sched.normalize genv mine rt with
      | Sched.Norm_crash _ -> ()
      | Sched.Norm (genv, mine, rt) -> (
        match Sched.as_ret rt with
        | Some _ -> ()
        | None ->
          List.iter
            (fun mv ->
              match Sched.move_next mv with
              | Ok (genv', mine', rt') -> go (fuel - 1) genv' mine' rt'
              | Error _ -> ())
            (Sched.moves genv Contrib.empty mine rt);
          List.iter
            (fun (_, genv') -> go (fuel - 1) genv' mine rt)
            (Sched.env_moves genv mine rt))
  in
  go fuel genv mine rt;
  check "explored some configurations" true (!checked > 1)

let test_ghash_span () =
  let sp, w, st = span_setup [ (p 1, p 2, Ptr.null); (p 2, Ptr.null, Ptr.null) ] in
  let genv, mine = Sched.genv_of_state ~interfere:(World.labels w) w st in
  check_ghash_reachable ~fuel:4 genv mine
    (Sched.inject
       (Prog.par
          (Prog.act (Span.trymark sp (p 1)))
          (Prog.act (Span.trymark sp (p 2)))))

let test_ghash_snapshot () =
  (* Histories and versioned cells: the Aux-heavy jaux path. *)
  let w = Snapshot.world () in
  List.iter
    (fun st ->
      let genv, mine = Sched.genv_of_state ~interfere:(World.labels w) w st in
      check_ghash_reachable ~fuel:3 genv mine
        (Sched.inject (Snapshot.read_pair Snapshot.sp_label)))
    (Snapshot.init_states ())

(* ------------------------------------------------------------------ *)
(* Registry differential against the pre-rewrite engine.              *)
(* ------------------------------------------------------------------ *)

(* Explored-state counts recorded by the PR that introduced sleep-set
   POR (BENCH_por.json of that revision), un-memoized, sequential.
   The representation rewrite must not move a single count: move
   identity, sleep semantics, and iteration order are preserved
   exactly, only their encoding changed. *)
let baseline =
  [
    ("CAS-lock", 960, 960);
    ("Ticketed lock", 27472, 22288);
    ("CG increment", 28432, 23248);
    ("CG allocator", 104904, 66558);
    ("Pair snapshot", 53355, 53355);
    ("Treiber stack", 583938, 53541);
    ("Spanning tree", 9172, 5551);
    ("Flat combiner", 86990, 44218);
    ("Seq. stack", 16, 16);
    ("FC-stack", 53624, 10852);
    ("Prod/Cons", 547, 88);
  ]

let verdicts reports =
  List.map (fun r -> (r.Verify.spec_name, Verify.ok r)) reports

let states reports =
  List.fold_left (fun acc r -> acc + r.Verify.states) 0 reports

let test_baseline_differential () =
  let certs = Independence.certs_all () in
  List.iter
    (fun jobs ->
      List.iter
        (fun (name, full_expected, por_expected) ->
          let case =
            match Registry.find name with
            | Some c -> c
            | None -> Alcotest.fail (name ^ " not in registry")
          in
          let full =
            Verify.with_engine ~dedup:false ~jobs ~por:false (fun () ->
                case.Registry.c_verify ())
          in
          let por =
            Verify.with_engine ~dedup:false ~jobs ~por:true ~por_certs:certs
              (fun () -> case.Registry.c_verify ())
          in
          check
            (Printf.sprintf "%s (-j %d): all verdicts ok" name jobs)
            true
            (List.for_all (fun (_, ok) -> ok) (verdicts full));
          Alcotest.(check (list (pair string bool)))
            (Printf.sprintf "%s (-j %d): POR verdicts identical" name jobs)
            (verdicts full) (verdicts por);
          Alcotest.(check int)
            (Printf.sprintf "%s (-j %d): full states = baseline" name jobs)
            full_expected (states full);
          Alcotest.(check int)
            (Printf.sprintf "%s (-j %d): POR states = baseline" name jobs)
            por_expected (states por))
        baseline)
    [ 1; 4 ]

let suite =
  [
    prop_sleepset_model;
    Alcotest.test_case "Sleepset add is functional" `Quick
      test_sleepset_functional;
    prop_interner;
    Alcotest.test_case "interner round-trips names, fps, env classes" `Quick
      test_interner_roundtrip;
    Alcotest.test_case "certificates answer symmetrically" `Quick
      test_certs_symmetric;
    Alcotest.test_case "permuted sleep sets produce equal config keys" `Quick
      test_sleep_permutation_key;
    Alcotest.test_case "ghash invariant on span configurations" `Quick
      test_ghash_span;
    Alcotest.test_case "ghash invariant on snapshot configurations" `Quick
      test_ghash_snapshot;
    Alcotest.test_case "registry states identical to pre-rewrite engine" `Slow
      test_baseline_differential;
  ]
