(* Surface language: lexing, parsing (including that Figure 1 parses to
   the canonical AST), printing round-trips, interpreter runs, and the
   differential test against the embedded DSL's span. *)

open Fcsl_heap
open Fcsl_lang
open Fcsl_casestudies
module Core = Fcsl_core
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let test_lexer () =
  let toks = Lexer.tokenize "if x == null then return false" in
  Alcotest.(check int) "token count" 8 (List.length toks);
  check "keywords" true
    (toks
    = Token.[ KW_IF; IDENT "x"; EQEQ; KW_NULL; KW_THEN; KW_RETURN; KW_FALSE; EOF ]);
  let toks = Lexer.tokenize "b <- CAS(x->m, 0, 1); x->l := null" in
  check "operators" true (List.mem Token.LARROW toks && List.mem Token.ASSIGN toks);
  check "comments skipped" true
    (Lexer.tokenize "(* hi (* nested *) *) x // trailing\n"
     = Token.[ IDENT "x"; EOF ])

let test_lexer_error () =
  check "bad char rejected" true
    (try
       ignore (Lexer.tokenize "x # y");
       false
     with Lexer.Error _ -> true)

let test_parse_span () =
  let prog = Parser.parse_program Examples.span_source in
  Alcotest.(check int) "one procedure" 1 (List.length prog);
  check "parses to the canonical Figure 1 AST" true
    (Ast.equal_proc (List.hd prog) Ast.span_ast)

let test_parse_errors () =
  let fails src =
    try
      ignore (Parser.parse_program src);
      false
    with Parser.Parse_error _ | Lexer.Error _ -> true
  in
  check "missing brace" true (fails "f (x : ptr) : bool { return true");
  check "bad statement" true (fails "f () : bool { x + }");
  check "CAS needs field" true (fails "f (x : ptr) : bool { b <- CAS(x, 0, 1); return b }")

let test_roundtrip () =
  List.iter
    (fun src ->
      let prog = Parser.parse_program src in
      let printed = Pp.program_to_string prog in
      let reparsed = Parser.parse_program printed in
      check "print/parse round-trip" true (Ast.equal_program prog reparsed))
    [ Examples.span_source; Examples.mark_children_source ]

(* Every shipped .fcsl example round-trips through the printer (the
   directory is a dune dep of this test, so new examples are covered
   automatically). *)
let examples_dir = "../examples"

let example_files () =
  Sys.readdir examples_dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fcsl")
  |> List.sort String.compare
  |> List.map (Filename.concat examples_dir)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_roundtrip_example_files () =
  let files = example_files () in
  check "at least two example files" true (List.length files >= 2);
  List.iter
    (fun path ->
      let prog = Parser.parse_program (read_file path) in
      let printed = Pp.program_to_string prog in
      let reparsed = Parser.parse_program printed in
      check (path ^ " round-trips") true (Ast.equal_program prog reparsed))
    files

(* Property: round-trip on randomly generated commands. *)
let gen_expr_leaf =
  QCheck2.Gen.oneofl
    Ast.[ Null; Bool true; Bool false; Var "x"; Var "y"; Field (Var "x", Left) ]

let rec gen_cmd_sized n =
  let open QCheck2.Gen in
  if n = 0 then
    oneof
      [
        return Ast.Skip;
        map (fun e -> Ast.Return e) gen_expr_leaf;
        map (fun e -> Ast.Assign (Var "x", Ast.Left, e)) gen_expr_leaf;
      ]
  else
    oneof
      [
        gen_cmd_sized 0;
        map2 (fun a b -> Ast.Seq (a, b)) (gen_cmd_sized (n - 1)) (gen_cmd_sized (n - 1));
        map3
          (fun e t f -> Ast.If (e, t, f))
          gen_expr_leaf (gen_cmd_sized (n - 1)) (gen_cmd_sized (n - 1));
        map2
          (fun r k -> Ast.BindCmd (Pvar "b", r, k))
          (oneof
             [
               map (fun e -> Ast.Expr e) gen_expr_leaf;
               return (Ast.Cas (Var "x", Ast.Mark, Bool false, Bool true));
               return (Ast.Call ("f", [ Ast.Var "x" ]));
               return
                 (Ast.Par
                    ( Ast.Call ("f", [ Ast.Field (Var "x", Left) ]),
                      Ast.Call ("f", [ Ast.Field (Var "x", Right) ]) ));
             ])
          (gen_cmd_sized (n - 1));
      ]

let print_cmd cmd =
  Pp.proc_to_string
    Ast.
      { p_name = "f"; p_params = [ ("x", "ptr") ]; p_return = "bool";
        p_body = cmd }

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"random cmd round-trips"
       ~print:print_cmd (gen_cmd_sized 3)
       (fun cmd ->
         let proc =
           Ast.
             { p_name = "f"; p_params = [ ("x", "ptr") ]; p_return = "bool";
               p_body = cmd }
         in
         let printed = Pp.proc_to_string proc in
         match Parser.parse_proc_string printed with
         | reparsed ->
           Ast.equal_cmd
             (Ast.normalize reparsed.Ast.p_body)
             (Ast.normalize cmd)
         | exception _ -> false))

(* Interpreter: running span on the Figure 2 graph yields a spanning
   tree (all schedules sampled randomly). *)
let test_interp_span () =
  let prog = Parser.parse_program Examples.span_source in
  let g0 = Graph_catalog.fig2_graph () in
  for seed = 1 to 25 do
    let h, v =
      Interp.run ~seed prog ~proc:"span"
        ~args:[ Value.ptr (p 1) ]
        (Graph.to_heap g0)
    in
    check "returns true" true (Value.equal v (Value.bool true));
    match Graph.of_heap h with
    | Some g ->
      check "spanning tree" true
        (Graph.spanning g0 g (p 1) (Graph.dom_set g))
    | None -> Alcotest.fail "final heap not a graph"
  done

(* Differential test: the surface interpreter and the embedded DSL agree
   on span over random connected graphs. *)
let prop_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"surface vs DSL span agree"
       QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 8))
       (fun (seed, n) ->
         let rng = Random.State.make [| seed |] in
         let g0 = Graph_catalog.random_connected_graph ~rng n in
         (* surface run *)
         let prog = Parser.parse_program Examples.span_source in
         let h_surface, v_surface =
           Interp.run ~seed prog ~proc:"span"
             ~args:[ Value.ptr (p 1) ]
             (Graph.to_heap g0)
         in
         (* DSL run *)
         let pv = Core.Label.make "diff_priv" in
         let sp = Core.Label.make "diff_span" in
         let w = Core.World.of_list [ Core.Priv.make pv ] in
         let st =
           Core.State.singleton pv
             (Core.Slice.make
                ~self:(Aux.heap (Graph.to_heap g0))
                ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
         in
         let genv, mine = Core.Sched.genv_of_state w st in
         match
           Core.Sched.run_random ~seed ~fuel:100_000 genv mine
             (Span.span_root ~pv ~sp (p 1))
         with
         | Core.Sched.Finished (v_dsl, final) -> (
           let h_dsl = Core.Priv.pv_self pv final in
           (* both yield spanning trees of g0; the particular tree may
              differ (schedules differ), but the verdicts agree and both
              heaps are spanning trees *)
           Value.equal v_surface (Value.bool v_dsl)
           &&
           match (Graph.of_heap h_surface, Graph.of_heap h_dsl) with
           | Some gs, Some gd ->
             Graph.spanning g0 gs (p 1) (Graph.dom_set gs)
             && Graph.spanning g0 gd (p 1) (Graph.dom_set gd)
           | _ -> false)
         | _ -> false))

let test_interp_mark_children () =
  let prog = Parser.parse_program Examples.mark_children_source in
  let g =
    Graph_catalog.graph_of
      [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  let h, v =
    Interp.run ~seed:5 prog ~proc:"mark_children"
      ~args:[ Value.ptr (p 1) ]
      (Graph.to_heap g)
  in
  check "both children marked" true (Value.equal v (Value.bool true));
  let g' = Graph.of_heap_exn h in
  check "marks placed" true (Graph.mark g' (p 2) && Graph.mark g' (p 3));
  check "root unmarked" false (Graph.mark g' (p 1))

let test_interp_errors () =
  let prog = Parser.parse_program Examples.span_source in
  check "null arg returns false" true
    (let _, v =
       Interp.run prog ~proc:"span" ~args:[ Value.ptr Ptr.null ] Heap.empty
     in
     Value.equal v (Value.bool false));
  check "unknown proc rejected" true
    (try
       ignore (Interp.run prog ~proc:"nope" ~args:[] Heap.empty);
       false
     with Interp.Runtime_error _ -> true);
  check "arity mismatch rejected" true
    (try
       ignore (Interp.run prog ~proc:"span" ~args:[] Heap.empty);
       false
     with Interp.Runtime_error _ -> true)

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer errors" `Quick test_lexer_error;
    Alcotest.test_case "Figure 1 parses to canonical AST" `Quick
      test_parse_span;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "examples/*.fcsl round-trip" `Quick
      test_roundtrip_example_files;
    prop_roundtrip;
    Alcotest.test_case "interpreter: span on Figure 2" `Quick test_interp_span;
    prop_differential;
    Alcotest.test_case "interpreter: parallel marking" `Quick
      test_interp_mark_children;
    Alcotest.test_case "interpreter errors" `Quick test_interp_errors;
  ]
