(* Infrastructure edge cases: worlds, contributions, hide failure modes,
   fork-split failures, the randomized checker, pointer supplies, and
   counterexample traces. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let contains s needle =
  let n = String.length needle and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* Ptr supply and edge cases. *)

let test_ptr () =
  let s = Ptr.Supply.create () in
  let a = Ptr.Supply.fresh s and b = Ptr.Supply.fresh s in
  check "fresh distinct" false (Ptr.equal a b);
  check "never null" true (not (Ptr.is_null a) && not (Ptr.is_null b));
  Alcotest.(check int) "fresh_many" 5 (List.length (Ptr.Supply.fresh_many s 5));
  check "of_int negative rejected" true
    (try
       ignore (Ptr.of_int (-1));
       false
     with Invalid_argument _ -> true);
  check "null printable" true (String.equal (Ptr.to_string Ptr.null) "null")

(* World construction. *)

let test_world () =
  let l = Label.make "ti_span" in
  let c = Span.concurroid l in
  check "duplicate labels rejected" true
    (try
       ignore (World.of_list [ c; c ]);
       false
     with Invalid_argument _ -> true);
  let w = World.of_list [ c ] in
  check "find" true (Option.is_some (World.find w l));
  check "mem other" false (World.mem w (Label.make "ti_none"));
  (* a state with an extra label is incoherent for the world *)
  let good = State.singleton l (List.hd (Concurroid.enum c)) in
  check "coh ok" true (World.coh w good);
  let extra =
    State.add (Label.make "ti_extra") Slice.empty good
  in
  check "extra label rejected" false (World.coh w extra);
  check "missing label rejected" false (World.coh w State.empty)

(* Contributions. *)

let test_contrib () =
  let l1 = Label.make "ti_l1" and l2 = Label.make "ti_l2" in
  let c1 = Contrib.of_list [ (l1, Aux.nat 2) ] in
  let c2 = Contrib.of_list [ (l1, Aux.nat 3); (l2, Aux.own) ] in
  let j = Option.get (Contrib.join c1 c2) in
  check "pointwise join" true (Aux.equal (Contrib.get l1 j) (Aux.nat 5));
  check "absent label = unit" true (Aux.is_unit (Contrib.get l1 Contrib.empty));
  check "own+own incompatible" true
    (Contrib.join (Contrib.of_list [ (l2, Aux.own) ]) c2 = None);
  check "is_empty on units" true
    (Contrib.is_empty (Contrib.of_list [ (l1, Aux.nat 0) ]))

(* Hide failure modes: each is a crash with a reported reason, not a
   silent wrong answer. *)

let hide_crash_reason prog st w =
  let genv, mine = Sched.genv_of_state w st in
  let outs, _ = Sched.explore ~interference:false genv mine prog in
  List.find_map
    (function Sched.Crashed c -> Some (Crash.message c) | _ -> None)
    outs

let test_hide_bad_decoration () =
  let pv = Label.make "ti_priv1" in
  let sp = Label.make "ti_hspan1" in
  let w = World.of_list [ Priv.make pv ] in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  (* decoration demands a cell the private heap does not have *)
  let hs : Prog.hide_spec =
    {
      hs_priv = pv;
      hs_conc = Span.concurroid sp;
      hs_decor = (fun _ -> Heap.singleton (p 99) Value.unit);
      hs_init = Aux.set Ptr.Set.empty;
      hs_jaux = Aux.Unit;
    }
  in
  match hide_crash_reason (Prog.hide hs (Prog.ret ())) st w with
  | Some msg ->
    check "reason mentions decoration" true
      (String.length msg > 0)
  | None -> Alcotest.fail "bad decoration not caught"

let test_hide_incoherent_init () =
  let pv = Label.make "ti_priv2" in
  let sp = Label.make "ti_hspan2" in
  let w = World.of_list [ Priv.make pv ] in
  (* donate a non-graph heap to the SpanTree concurroid *)
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Heap.singleton (p 1) (Value.int 7)))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let hs : Prog.hide_spec =
    {
      hs_priv = pv;
      hs_conc = Span.concurroid sp;
      hs_decor = Fun.id;
      hs_init = Aux.set Ptr.Set.empty;
      hs_jaux = Aux.Unit;
    }
  in
  match hide_crash_reason (Prog.hide hs (Prog.ret ())) st w with
  | Some msg -> check "incoherent install caught" true (String.length msg > 0)
  | None -> Alcotest.fail "incoherent install not caught"

(* Fork-split failure: requesting a cell the parent does not hold. *)
let test_par_split_failure () =
  let pv = Label.make "ti_priv3" in
  let w = World.of_list [ Priv.make pv ] in
  let st =
    State.singleton pv
      (Slice.make ~self:(Aux.heap Heap.empty) ~joint:Heap.empty
         ~other:(Aux.heap Heap.empty))
  in
  let prog =
    Prog.par_split
      (Prog.split_cells ~pv ~to_left:[ p 42 ] ~to_right:[])
      (Prog.ret ()) (Prog.ret ())
  in
  match hide_crash_reason prog st w with
  | Some msg ->
    check "split failure reported" true (String.length msg > 0)
  | None -> Alcotest.fail "impossible split not caught"

(* Counterexample traces: a refuted program's failure carries the
   offending schedule. *)
let test_counterexample_trace () =
  let sp = Label.make "ti_trace" in
  let c = Span.concurroid sp in
  let w = World.of_list [ c ] in
  let init = List.map (fun s -> State.singleton sp s) (Concurroid.enum c) in
  (* nullify without owning: unsafe; the trace should name it *)
  let report =
    Verify.check_triple ~interference:false ~world:w ~init
      (Prog.act (Span.nullify sp (p 1) Graph.Left))
      (Spec.make ~name:"bad"
         ~pre:(fun st ->
           Span.assert_in_dom sp (p 1) st
           && not (Span.assert_in_self sp (p 1) st))
         ~post:(fun _ _ _ -> true))
  in
  check "refuted" false (Verify.ok report);
  match report.Verify.failures with
  | f :: _ ->
    check "reason names the action" true
      (contains (Crash.message f.Verify.crash) "nullify")
  | [] -> Alcotest.fail "no failure recorded"

(* The randomized checker agrees with the exhaustive one on span_root. *)
let test_random_checker () =
  let pv = Label.make "ti_priv4" and sp = Label.make "ti_hspan4" in
  let w = World.of_list [ Priv.make pv ] in
  let g = Graph_catalog.fig2_graph () in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let r =
    Verify.check_triple_random ~fuel:1000 ~trials:30 ~world:w ~init:[ st ]
      (Span.span_root ~pv ~sp (p 1))
      (Span.span_root_spec ~pv (p 1))
  in
  check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r);
  Alcotest.(check int) "30 trials ran" 30 r.Verify.outcomes

(* max_outcomes caps exploration and clears the completeness flag. *)
let test_outcome_cap () =
  let sp = Label.make "ti_cap" in
  let c = Span.concurroid sp in
  let w = World.of_list [ c ] in
  let g =
    Graph_catalog.graph_of
      [ (p 1, p 2, p 3); (p 2, Ptr.null, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
  in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let outs, complete =
    Sched.explore ~interference:false ~max_outcomes:3 genv mine
      (Span.span sp (p 1))
  in
  check "capped" false complete;
  Alcotest.(check int) "exactly the cap" 3 (List.length outs)

let suite =
  [
    Alcotest.test_case "pointer supply" `Quick test_ptr;
    Alcotest.test_case "world construction" `Quick test_world;
    Alcotest.test_case "contributions" `Quick test_contrib;
    Alcotest.test_case "hide: bad decoration" `Quick test_hide_bad_decoration;
    Alcotest.test_case "hide: incoherent install" `Quick
      test_hide_incoherent_init;
    Alcotest.test_case "par: impossible split" `Quick test_par_split_failure;
    Alcotest.test_case "counterexample traces" `Quick
      test_counterexample_trace;
    Alcotest.test_case "randomized checker" `Quick test_random_checker;
    Alcotest.test_case "outcome cap" `Quick test_outcome_cap;
  ]
