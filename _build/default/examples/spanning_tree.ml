(* The paper's running example, end to end (Figures 1-4):

   1. replay the exact staging of Figure 2 on its five-node graph,
      printing the mark/edge state after every atomic step;
   2. exhaustively verify span_tp (open world, full interference) and
      span_root_tp (closed world via hide) on the small-graph catalogue;
   3. run the *extracted* span with real parallelism on a larger random
      graph.

     dune exec examples/spanning_tree.exe *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let node_name p =
  match
    List.find_opt (fun (_, q) -> Ptr.equal p q) Graph_catalog.fig2_nodes
  with
  | Some (n, _) -> n
  | None -> Ptr.to_string p

let show_stage sp n step genv =
  match Label.Map.find_opt sp genv.Sched.joints with
  | Some joint -> (
    match Graph.of_heap joint with
    | Some g ->
      let marked =
        String.concat ""
          (List.filter_map
             (fun x -> if Graph.mark g x then Some (node_name x) else None)
             (Graph.dom g))
      in
      let survivors =
        List.concat_map
          (fun x ->
            List.filter_map
              (fun y ->
                if Graph.edge g x y then
                  Some (node_name x ^ "->" ^ node_name y)
                else None)
              (Graph.dom g))
          (Graph.dom g)
      in
      Fmt.pr "  stage %-2d after %-20s marked {%s}, edges: %s@." n step marked
        (String.concat " " survivors)
    | None -> ())
  | None -> ()

let figure2 () =
  Fmt.pr "== Figure 2: staged execution on the graph a->{b,c}, b->{d,e}, \
          c->{e,c} ==@.";
  let pv = Label.make "ex_fig2_priv" and sp = Label.make "ex_fig2_span" in
  let g0 = Graph_catalog.fig2_graph () in
  let w = World.of_list [ Priv.make pv ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g0))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let n = ref 0 in
  let observe genv' _ name =
    incr n;
    show_stage sp !n name genv'
  in
  match
    Sched.run_with_chooser
      ~choose:(fun ~step:_ _ -> 0)
      ~observe genv mine
      (Span.span_root ~pv ~sp (Ptr.of_int 1))
  with
  | Sched.Finished (true, final) ->
    let g = Graph.of_heap_exn (Priv.pv_self pv final) in
    Fmt.pr "  result: spanning tree rooted at a? %b@.@."
      (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g))
  | _ -> Fmt.pr "  unexpected outcome@.@."

let verify () =
  Fmt.pr "== Mechanized verification ==@.";
  Fmt.pr "span_tp (Figure 4), open world, exhaustive with interference:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.pp_report r)
    (Span.verify_span ~max_nodes:2 ());
  Fmt.pr "span_root_tp, closed world via hide:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.pp_report r)
    (Span.verify_span_root ());
  Fmt.pr "@."

let extracted () =
  Fmt.pr "== Extraction: real domains on a 200-node random graph ==@.";
  let rng = Random.State.make [| 11 |] in
  let g0 = Graph_catalog.random_connected_graph ~rng 200 in
  let prog = Fcsl_lang.Parser.parse_program Fcsl_lang.Examples.span_source in
  let t0 = Unix.gettimeofday () in
  let h, v =
    Fcsl_extract.Extract.run ~domain_budget:4 prog ~proc:"span"
      ~args:[ Value.ptr (Ptr.of_int 1) ]
      (Graph.to_heap g0)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let g = Graph.of_heap_exn h in
  Fmt.pr "  returned %a in %.1fms; spanning: %b@." Value.pp v (dt *. 1000.)
    (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g))

let () =
  figure2 ();
  verify ();
  extracted ()
