(* Coarse-grained clients over the abstract lock interface (paper,
   Section 6, Figure 5): the same CG-increment and CG-allocator code is
   verified against both the CAS spinlock and the ticketed lock — the
   "3L" interchangeability of Table 2.

     dune exec examples/lock_clients.exe *)

open Fcsl_core
open Fcsl_casestudies

let show title reports =
  Fmt.pr "%s:@." title;
  List.iter (fun r -> Fmt.pr "  %a@." Verify.pp_report r) reports

let () =
  Fmt.pr "== Coarse-grained clients, parametric in the lock ==@.@.";
  show "CG increment  [CAS spinlock]" (Cg_incr.Cas.verify ());
  show "CG increment  [ticketed lock]" (Cg_incr.Ticketed.verify ());
  show "CG allocator  [CAS spinlock]" (Cg_alloc.Cas.verify ());
  show "CG allocator  [ticketed lock]" (Cg_alloc.Ticketed.verify ());
  Fmt.pr "@.";
  Fmt.pr
    "The client modules are functors over LOCK (lib/casestudies/lock_intf.ml):@.";
  Fmt.pr
    "the verification above ran the *same* client code and specs against@.";
  Fmt.pr "two different lock protocols, reasoning only from the interface.@."
