examples/interleavings.ml: Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fmt Graph Graph_catalog Label List Prog Ptr Sched Slice Span State String Tree World
