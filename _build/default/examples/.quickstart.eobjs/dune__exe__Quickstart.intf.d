examples/quickstart.mli:
