examples/lock_clients.mli:
