examples/flat_combining.ml: Contrib Fc_stack Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Flatcombiner Fmt List Prog Ptr Sched Slice State String Value Verify
