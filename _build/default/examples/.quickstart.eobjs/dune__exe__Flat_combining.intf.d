examples/flat_combining.mli:
