examples/producer_consumer.ml: Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap List Priv Sched Stack_clients Treiber Verify
