examples/quickstart.ml: Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fmt Graph Graph_catalog Heap Label List Priv Ptr Sched Slice Span State Verify World
