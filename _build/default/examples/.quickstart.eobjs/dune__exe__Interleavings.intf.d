examples/interleavings.mli:
