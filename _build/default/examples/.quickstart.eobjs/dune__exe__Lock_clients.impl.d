examples/lock_clients.ml: Cg_alloc Cg_incr Fcsl_casestudies Fcsl_core Fmt List Verify
