lib/pcm/instances.ml: Fcsl_heap Fmt Heap Int Pcm Ptr
