lib/pcm/pcm.ml: Format List Option
