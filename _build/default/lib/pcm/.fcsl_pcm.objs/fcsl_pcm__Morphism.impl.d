lib/pcm/morphism.ml: Fcsl_heap Fun Heap Hist Pcm Ptr
