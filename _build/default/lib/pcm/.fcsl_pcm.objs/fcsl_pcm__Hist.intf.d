lib/pcm/hist.mli: Fcsl_heap Format Pcm Value
