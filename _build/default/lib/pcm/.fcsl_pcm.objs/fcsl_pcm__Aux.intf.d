lib/pcm/aux.mli: Fcsl_heap Format Heap Hist Instances Pcm Ptr
