lib/pcm/hist.ml: Fcsl_heap Fmt Int List Map Pcm String Value
