lib/pcm/aux.ml: Fcsl_heap Fmt Heap Hist Instances List Option Pcm Ptr
