(* Partial commutative monoids (paper, Section 2.2.1): a carrier with a
   partial, associative, commutative join and a unit.  PCMs give the
   uniform algebra of thread-owned state: [self] and [other] components
   of every concurroid are PCM elements, and parallel composition splits
   and rejoins them via the join. *)

module type S = sig
  type t

  val unit : t
  val join : t -> t -> t option
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(* Derived operations over any PCM. *)
module Ops (P : S) = struct
  let defined a b = Option.is_some (P.join a b)

  let join_exn a b =
    match P.join a b with
    | Some c -> c
    | None -> invalid_arg "Pcm.join_exn: undefined join"

  let join_all xs =
    List.fold_left
      (fun acc x -> Option.bind acc (fun a -> P.join a x))
      (Some P.unit) xs

  let is_unit x = P.equal x P.unit

  (* [precise a b]: [a] is a sub-element of [b], i.e. some frame [f]
     satisfies [a • f = b].  Only decidable by search in general; PCM
     instances override it where a direct test exists. *)
  let valid_triple a b c =
    match P.join a b with Some ab -> defined ab c | None -> false
end

(* Law checkers, used by the property-test suites.  Each returns [true]
   when the law holds on the supplied elements. *)
module Laws (P : S) = struct
  let opt_equal a b =
    match (a, b) with
    | Some x, Some y -> P.equal x y
    | None, None -> true
    | Some _, None | None, Some _ -> false

  let commutative a b = opt_equal (P.join a b) (P.join b a)

  let associative a b c =
    let left = Option.bind (P.join a b) (fun ab -> P.join ab c) in
    let right = Option.bind (P.join b c) (fun bc -> P.join a bc) in
    opt_equal left right

  let unit_law a = opt_equal (P.join a P.unit) (Some a)

  (* Validity is downward closed: if a • b is defined then so is a • unit
     (trivially) — the interesting instance is cancellativity-adjacent:
     if (a • b) • c is defined then b • c is defined. *)
  let validity_monotone a b c =
    match Option.bind (P.join a b) (fun ab -> P.join ab c) with
    | Some _ -> Option.is_some (P.join b c)
    | None -> true
end
