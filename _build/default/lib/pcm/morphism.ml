(* PCM morphisms: structure-preserving maps between PCMs, part of the
   FCSL algebraic vocabulary (the Coq development uses them to relate
   client ghosts to library ghosts; here they are first-class values
   with executable law checks, exercised by the property suite). *)

type ('a, 'b) t = {
  m_name : string;
  m_map : 'a -> 'b;
}

let make name f = { m_name = name; m_map = f }
let apply m x = m.m_map x
let name m = m.m_name

let compose g f =
  { m_name = f.m_name ^ ";" ^ g.m_name; m_map = (fun x -> g.m_map (f.m_map x)) }

let id name = { m_name = "id_" ^ name; m_map = Fun.id }

(* Law checkers for a morphism between two first-class PCMs:
   unit preservation and join preservation (on defined joins; a
   morphism may *undefine* a join only if it is partial — these
   are total morphisms, so defined joins must map to defined joins). *)
module Laws (A : Pcm.S) (B : Pcm.S) = struct
  let preserves_unit (m : (A.t, B.t) t) = B.equal (m.m_map A.unit) B.unit

  let preserves_join (m : (A.t, B.t) t) a1 a2 =
    match A.join a1 a2 with
    | None -> true (* nothing to preserve *)
    | Some a -> (
      match B.join (m.m_map a1) (m.m_map a2) with
      | Some b -> B.equal (m.m_map a) b
      | None -> false)
end

(* Stock morphisms used by the case studies. *)

open Fcsl_heap

(* The cardinality morphism: pointer sets to naturals — maps the
   spanning tree's marked-set ghost to a counting ghost. *)
let card : (Ptr.Set.t, int) t = make "card" Ptr.Set.cardinal

(* The domain morphism: heaps to pointer sets. *)
let dom : (Heap.t, Ptr.Set.t) t = make "dom" Heap.dom_set

(* The length morphism: histories to naturals. *)
let hist_length : (Hist.t, int) t = make "length" Hist.cardinal

(* Forgetting the second component of a product. *)
let fst_morphism name : ('a * 'b, 'a) t = make ("fst_" ^ name) fst
let snd_morphism name : ('a * 'b, 'b) t = make ("snd_" ^ name) snd
