(* Pointers are abstract names for heap cells.  [null] is a distinguished
   pointer that never belongs to any heap domain; fresh pointers are drawn
   from a strictly positive supply, so [null] can be used as the "no
   successor" marker in heap-represented graphs (paper, Section 2.1). *)

type t = int

let null : t = 0
let is_null p = p = 0

let of_int n =
  if n < 0 then invalid_arg "Ptr.of_int: negative pointer" else n

let to_int p = p
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (p : t) = Hashtbl.hash p

let pp ppf p =
  if is_null p then Fmt.string ppf "null" else Fmt.pf ppf "x%d" p

let to_string p = Fmt.str "%a" pp p

(* A deterministic supply of fresh pointers, used by allocators and by
   test-state generators.  Supplies are first-class so that independent
   verification runs do not interfere. *)
module Supply = struct
  type t = { mutable next : int }

  let create ?(from = 1) () =
    if from < 1 then invalid_arg "Ptr.Supply.create: from must be >= 1";
    { next = from }

  let fresh s =
    let p = s.next in
    s.next <- s.next + 1;
    p

  let fresh_many s n = List.init n (fun _ -> fresh s)
  let peek s = s.next
end

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) (elements s)
end

module Map = struct
  include Map.Make (Ord)

  let keys m = List.map fst (bindings m)

  let pp pp_v ppf m =
    let pp_binding ppf (k, v) = Fmt.pf ppf "%a %a" pp k pp_v v in
    Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp_binding) (bindings m)
end
