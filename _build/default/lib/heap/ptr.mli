(** Pointers: abstract names for heap cells.

    [null] is a distinguished pointer that never belongs to a heap domain.
    Fresh pointers are strictly positive, so [null] doubles as the "no
    successor" marker in heap-represented graphs. *)

type t

val null : t
val is_null : t -> bool

val of_int : int -> t
(** [of_int n] is the pointer named [n].  Raises [Invalid_argument] when
    [n < 0]; [of_int 0] is [null]. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A deterministic supply of fresh (never-null) pointers. *)
module Supply : sig
  type ptr := t
  type t

  val create : ?from:int -> unit -> t
  (** [create ?from ()] starts the supply at [from] (default 1, must be
      [>= 1]). *)

  val fresh : t -> ptr
  val fresh_many : t -> int -> ptr list
  val peek : t -> int
end

(** Finite sets of pointers. *)
module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
end

(** Finite maps keyed by pointers. *)
module Map : sig
  include Map.S with type key = t

  val keys : 'a t -> key list
  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end
