lib/heap/ptr.ml: Fmt Hashtbl Int List Map Set
