lib/heap/value.ml: Bool Fmt Int Ptr
