lib/heap/graph.ml: Fmt Heap List Ptr Value
