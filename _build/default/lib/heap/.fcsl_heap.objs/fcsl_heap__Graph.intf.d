lib/heap/graph.mli: Format Heap Ptr
