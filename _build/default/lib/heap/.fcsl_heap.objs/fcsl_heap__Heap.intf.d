lib/heap/heap.mli: Format Ptr Value
