lib/heap/value.mli: Format Ptr
