lib/heap/heap.ml: Fmt List Ptr Value
