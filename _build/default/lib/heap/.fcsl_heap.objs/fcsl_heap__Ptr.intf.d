lib/heap/ptr.mli: Format Map Set
