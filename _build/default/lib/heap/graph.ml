(* Heap-represented binary directed graphs (paper, Sections 2.1 and 3.2).

   A heap [h] represents a graph when every cell stores a triple
   (marked-bit, left successor, right successor) and both successors are
   null or in [h]'s domain.  Mirroring the Coq development's
   [g : graph h] proof witnesses, [t] packages a heap together with a
   check of the graph shape: constructing a [t] validates the shape, and
   all accessors below are the paper's partial functions [mark], [edgl],
   [edgr], [cont], total on a validated graph (defaulting to
   [false]/[null] outside the domain, exactly as in Section 3.2). *)

type t = { heap : Heap.t }

let well_formed_cell h _p v =
  match Value.as_node v with
  | None -> false
  | Some (_, l, r) ->
    let ok q = Ptr.is_null q || Heap.mem q h in
    ok l && ok r

(* The paper's [graph h] predicate. *)
let well_formed (h : Heap.t) = Heap.for_all (well_formed_cell h) h

let of_heap h = if well_formed h then Some { heap = h } else None

let of_heap_exn h =
  match of_heap h with
  | Some g -> g
  | None -> invalid_arg "Graph.of_heap_exn: heap is not graph-shaped"

let to_heap g = g.heap
let dom g = Heap.dom g.heap
let dom_set g = Heap.dom_set g.heap
let mem p g = Heap.mem p g.heap
let size g = Heap.cardinal g.heap

(* Accessors: [cont g x] is the triple stored at [x]; [mark], [edgl],
   [edgr] project it.  Default (false, null, null) outside the domain. *)

let cont g x =
  match Heap.find x g.heap with
  | Some v -> (
    match Value.as_node v with
    | Some triple -> triple
    | None -> (false, Ptr.null, Ptr.null))
  | None -> (false, Ptr.null, Ptr.null)

let mark g x =
  let m, _, _ = cont g x in
  m

let edgl g x =
  let _, l, _ = cont g x in
  l

let edgr g x =
  let _, _, r = cont g x in
  r

let succs g x =
  let _, l, r = cont g x in
  List.filter (fun q -> not (Ptr.is_null q)) [ l; r ]

(* The incidence relation [edge g x y] (Section 3.2): [y] is a non-null
   successor of a node [x] in the domain. *)
let edge g x y =
  mem x g && (not (Ptr.is_null y)) && (Ptr.equal y (edgl g x) || Ptr.equal y (edgr g x))

(* Physical updates, as used by the SpanTree transitions. *)

(* [mark_node g x] sets the mark bit of [x]. *)
let mark_node g x =
  let m, l, r = cont g x in
  if not (mem x g) then invalid_arg "Graph.mark_node: node not in graph"
  else begin
    ignore m;
    { heap = Heap.update x (Value.node ~marked:true ~left:l ~right:r) g.heap }
  end

type side = Left | Right

let pp_side ppf = function
  | Left -> Fmt.string ppf "Left"
  | Right -> Fmt.string ppf "Right"

(* [null_edge g side x] severs the [side] successor of [x]. *)
let null_edge g side x =
  let m, l, r = cont g x in
  if not (mem x g) then invalid_arg "Graph.null_edge: node not in graph"
  else
    let l, r = match side with Left -> (Ptr.null, r) | Right -> (l, Ptr.null) in
    { heap = Heap.update x (Value.node ~marked:m ~left:l ~right:r) g.heap }

let child g side x = match side with Left -> edgl g x | Right -> edgr g x

let marked_nodes g =
  List.filter (fun x -> mark g x) (dom g)

let unmarked_nodes g =
  List.filter (fun x -> not (mark g x)) (dom g)

(* Paths.  [path g x p] holds when the list of nodes [p] is traversable
   from [x] via [edge] links; [last x p] is the endpoint. *)

let rec path g x p =
  match p with
  | [] -> true
  | y :: rest -> edge g x y && path g y rest

let last x p = match List.rev p with [] -> x | y :: _ -> y

(* Reachability: nodes reachable from [x] (via any path, [x] included
   when in the domain). *)
let reachable g x =
  let rec go visited = function
    | [] -> visited
    | y :: frontier when Ptr.Set.mem y visited -> go visited frontier
    | y :: frontier ->
      if mem y g then go (Ptr.Set.add y visited) (succs g y @ frontier)
      else go visited frontier
  in
  go Ptr.Set.empty [ x ]

(* [connected g x] (Section 3.2): every node in the graph is reachable
   from [x]. *)
let connected g x = Ptr.Set.equal (reachable g x) (dom_set g)

(* Path enumeration within a node set, used by the [tree] predicate: all
   simple paths from [x] to [y] whose nodes stay inside [t]. *)
let paths_within g t x y =
  let rec go current seen acc =
    List.fold_left
      (fun acc next ->
        if not (Ptr.Set.mem next t) then acc
        else
          let acc =
            if Ptr.equal next y then List.rev (next :: seen) :: acc else acc
          in
          if List.exists (Ptr.equal next) seen || Ptr.equal next x then acc
          else go next (next :: seen) acc)
      acc (succs g current)
  in
  if Ptr.Set.mem x t then
    let base = if Ptr.equal x y then [ [] ] else [] in
    go x [] base
  else []

(* [tree g x t] (Section 3.2): [t] contains [x], and every node of [t] is
   reached from [x] by a unique path lying within [t].  (For [y = x] the
   unique path is the empty one; a cycle back to [x] would add a second.) *)
let tree g x t =
  Ptr.Set.mem x t
  && Ptr.Set.for_all
       (fun y ->
         let ps = paths_within g t x y in
         List.length ps = 1)
       t

(* [front g t t'] (Section 3.2): every node of [t], and every node
   immediately reachable from [t], is in [t']. *)
let front g t t' =
  Ptr.Set.subset t t'
  && Ptr.Set.for_all
       (fun x ->
         List.for_all
           (fun y -> (not (edge g x y)) || Ptr.Set.mem y t')
           (succs g x))
       t

(* [maximal g t]: [t] includes its own front — no edge leaves [t]. *)
let maximal g t = front g t t

(* [subgraph g1 g2] (Section 3.2, restricted to its graph components):
   same nodes, unmarked nodes untouched, and edges only nullified. *)
let subgraph g1 g2 =
  Ptr.Set.equal (dom_set g1) (dom_set g2)
  && List.for_all
       (fun y -> if not (mark g2 y) then cont g1 y = cont g2 y else true)
       (dom g1)
  && List.for_all
       (fun x ->
         let l2 = edgl g2 x and r2 = edgr g2 x in
         (Ptr.is_null l2 || Ptr.equal l2 (edgl g1 x))
         && (Ptr.is_null r2 || Ptr.equal r2 (edgr g1 x)))
       (dom g1)

(* [spanning g1 g2 x t]: in the final graph [g2], [t] is a tree rooted at
   [x] covering all nodes, and [g2] refines [g1] by edge removal only —
   the paper's [span_root_tp] postcondition. *)
let spanning g1 g2 x t =
  subgraph g1 g2 && tree g2 x t && Ptr.Set.equal t (dom_set g2)

(* Lemma [max_tree2] (Section 3.2) as a checkable implication: if x's
   successor set is {y1, y2}, ty1/ty2 are disjoint maximal trees rooted at
   y1/y2, then #x ∪ ty1 ∪ ty2 is a tree rooted at x. *)
let max_tree2 g x y1 y2 ty1 ty2 =
  let hypotheses =
    (not (Ptr.is_null y1))
    && (not (Ptr.is_null y2))
    && edge g x y1 && edge g x y2
    && tree g y1 ty1 && maximal g ty1
    && tree g y2 ty2 && maximal g ty2
    && Ptr.Set.is_empty (Ptr.Set.inter ty1 ty2)
    && (not (Ptr.Set.mem x ty1))
    && not (Ptr.Set.mem x ty2)
  in
  if not hypotheses then true
  else tree g x (Ptr.Set.add x (Ptr.Set.union ty1 ty2))

(* Construction helpers. *)

let of_adjacency nodes =
  let heap =
    List.fold_left
      (fun h (x, l, r) -> Heap.add x (Value.node ~marked:false ~left:l ~right:r) h)
      Heap.empty nodes
  in
  of_heap heap

let of_adjacency_exn nodes =
  match of_adjacency nodes with
  | Some g -> g
  | None -> invalid_arg "Graph.of_adjacency_exn: dangling successor"

let equal g1 g2 = Heap.equal g1.heap g2.heap

let pp ppf g =
  let pp_node ppf x =
    let m, l, r = cont g x in
    Fmt.pf ppf "%a%s -> (%a, %a)" Ptr.pp x (if m then "*" else "") Ptr.pp l
      Ptr.pp r
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_node) (dom g)

let to_string g = Fmt.str "%a" pp g
