(** Heap-represented binary directed graphs (paper, Sections 2.1 and 3.2).

    A value of type {!t} packages a heap with a validated graph shape:
    every cell stores a (marked, left, right) triple whose successors are
    null or in the domain.  The accessors are the paper's partial
    functions [mark]/[edgl]/[edgr]/[cont], total on validated graphs. *)

type t

val well_formed : Heap.t -> bool
(** The paper's [graph h] predicate. *)

val of_heap : Heap.t -> t option
val of_heap_exn : Heap.t -> t
val to_heap : t -> Heap.t

val dom : t -> Ptr.t list
val dom_set : t -> Ptr.Set.t
val mem : Ptr.t -> t -> bool
val size : t -> int

val cont : t -> Ptr.t -> bool * Ptr.t * Ptr.t
(** The triple stored at a node; [(false, null, null)] outside the
    domain. *)

val mark : t -> Ptr.t -> bool
val edgl : t -> Ptr.t -> Ptr.t
val edgr : t -> Ptr.t -> Ptr.t

val succs : t -> Ptr.t -> Ptr.t list
(** Non-null successors. *)

val edge : t -> Ptr.t -> Ptr.t -> bool
(** The incidence relation of Section 3.2. *)

val mark_node : t -> Ptr.t -> t
(** Set the mark bit; the physical effect of [marknode_trans]. *)

type side = Left | Right

val pp_side : Format.formatter -> side -> unit

val null_edge : t -> side -> Ptr.t -> t
(** Sever one successor edge; the physical effect of [nullify_trans]. *)

val child : t -> side -> Ptr.t -> Ptr.t

val marked_nodes : t -> Ptr.t list
val unmarked_nodes : t -> Ptr.t list

val path : t -> Ptr.t -> Ptr.t list -> bool
(** [path g x p]: [p] is traversable from [x] via [edge] links. *)

val last : Ptr.t -> Ptr.t list -> Ptr.t

val reachable : t -> Ptr.t -> Ptr.Set.t
val connected : t -> Ptr.t -> bool

val paths_within : t -> Ptr.Set.t -> Ptr.t -> Ptr.t -> Ptr.t list list
(** All simple paths from [x] to [y] whose nodes stay inside the set. *)

val tree : t -> Ptr.t -> Ptr.Set.t -> bool
(** [tree g x t]: unique in-set paths from [x] to every node of [t]. *)

val front : t -> Ptr.Set.t -> Ptr.Set.t -> bool
(** [front g t t']: [t] and its one-step successors are inside [t']. *)

val maximal : t -> Ptr.Set.t -> bool
(** No edge leaves [t]. *)

val subgraph : t -> t -> bool
(** Same nodes; unmarked nodes untouched; edges only nullified. *)

val spanning : t -> t -> Ptr.t -> Ptr.Set.t -> bool
(** The [span_root_tp] postcondition: [t] is a spanning tree of the
    final graph rooted at [x], refining the initial graph. *)

val max_tree2 : t -> Ptr.t -> Ptr.t -> Ptr.t -> Ptr.Set.t -> Ptr.Set.t -> bool
(** The paper's lemma [max_tree2] as a checkable implication. *)

val of_adjacency : (Ptr.t * Ptr.t * Ptr.t) list -> t option
(** Build an unmarked graph from (node, left, right) rows. *)

val of_adjacency_exn : (Ptr.t * Ptr.t * Ptr.t) list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
