(* The deductive layer: FCSL's structural rules as combinators over
   verified triples (paper, Section 5.2).

   A [triple] pairs a program with a spec that has been established for
   it.  Rules build new triples from old; each rule checks its side
   conditions semantically, by enumeration over the supplied universe of
   representative states — the analogue of discharging the proof
   obligations that Coq's [Do] constructor emits.

   Division of labour:
   - [ret], [act]: leaf rules, obligations checked directly;
   - [bind], [conseq]: syntactic gluing — the library sub-triples are
     *not* re-explored, only the entailments between their specs are
     checked.  This is the paper's compositionality: a library is
     verified once, clients reason out of its spec;
   - [par], [ffix]: discharged by bounded semantic exploration of the
     composite program ({!Verify}), reflecting that without dependent
     types the subjective-split and induction arguments are replaced by
     model checking (see DESIGN.md).

   Every rule additionally requires the concluded spec to be stable
   under the world's interference. *)

type ctx = {
  world : World.t;
  states : State.t list; (* representative coherent states *)
}

let ctx ~world ~states = { world; states }

type 'a triple = { prog : 'a Prog.t; spec : 'a Spec.t }

let prog t = t.prog
let spec t = t.spec

type rule_error = { rule : string; detail : string }

let pp_rule_error ppf e = Fmt.pf ppf "[%s] %s" e.rule e.detail

let error rule detail = Error { rule; detail }

let coherent_states c = List.filter (World.coh c.world) c.states

(* Shared stability obligation. *)
let stability_obligation c ~results rule (sp : 'a Spec.t) =
  let rs = Stability.check_spec c.world ~states:c.states ~results sp in
  match Stability.first_unstable rs with
  | None -> Ok ()
  | Some (what, r) ->
    error rule (Fmt.str "%s of %s: %a" what (Spec.name sp) Stability.pp_result r)

(* RET: {P} ret v {P ∧ r = v} — the post must accept [v] with an
   unchanged state. *)
let ret c ?(results = []) (v : 'a) (sp : 'a Spec.t) :
    ('a triple, rule_error) result =
  let bad =
    List.find_opt
      (fun st -> Spec.pre sp st && not (Spec.post sp v st st))
      (coherent_states c)
  in
  match bad with
  | Some st ->
    error "ret" (Fmt.str "post fails on unchanged state %a" State.pp st)
  | None -> (
    match stability_obligation c ~results:(v :: results) "ret" sp with
    | Error e -> Error e
    | Ok () -> Ok { prog = Prog.ret v; spec = sp })

(* ACT: an atomic action satisfies a spec when, from every coherent
   state satisfying the pre, it is safe and one step establishes the
   post.  Interference before/after the action is covered by the
   stability obligations. *)
let act c (a : 'a Action.t) (sp : 'a Spec.t) : ('a triple, rule_error) result =
  let states = coherent_states c in
  let rec check_states results = function
    | [] -> Ok results
    | st :: rest ->
      if not (Spec.pre sp st) then check_states results rest
      else if not (Action.safe a st) then
        Error
          {
            rule = "act";
            detail =
              Fmt.str "%s unsafe in %a" (Action.name a) State.pp st;
          }
      else
        let r, st' = Action.step_exn a st in
        if not (Spec.post sp r st st') then
          Error
            {
              rule = "act";
              detail =
                Fmt.str "%s: post fails, %a -> %a" (Action.name a) State.pp st
                  State.pp st';
            }
        else check_states (r :: results) rest
  in
  match check_states [] states with
  | Error e -> Error e
  | Ok results -> (
    match stability_obligation c ~results "act" sp with
    | Error e -> Error e
    | Ok () -> Ok { prog = Prog.act a; spec = sp })

(* BIND (the [step] lemma of Section 5.2): glue {P1} e1 {Q1} with a
   spec-indexed continuation.  Only entailments between the specs are
   checked; the sub-programs are not re-explored.  [rands] enumerates
   the intermediate results the continuation may receive. *)
let bind c ~(rands : 'b list) (t1 : 'b triple) (k : 'b -> 'a triple)
    (goal : 'a Spec.t) : ('a triple, rule_error) result =
  let states = coherent_states c in
  let sp1 = t1.spec in
  (* goal.pre ⊢ sp1.pre *)
  let c1 =
    List.find_opt (fun i -> Spec.pre goal i && not (Spec.pre sp1 i)) states
  in
  match c1 with
  | Some i ->
    error "bind" (Fmt.str "goal pre does not entail %s pre at %a"
                    (Spec.name sp1) State.pp i)
  | None -> (
    (* Q1 r ⊢ pre of (k r); and Q1 r; Q2 r' ⊢ goal post. *)
    let exception Bad of rule_error in
    try
      List.iter
        (fun r ->
          let tk = k r in
          List.iter
            (fun i ->
              if Spec.pre goal i then
                List.iter
                  (fun m ->
                    if Spec.post sp1 r i m then begin
                      if not (Spec.pre tk.spec m) then
                        raise
                          (Bad
                             {
                               rule = "bind";
                               detail =
                                 Fmt.str
                                   "%s post (r=?) does not entail %s pre at %a"
                                   (Spec.name sp1) (Spec.name tk.spec) State.pp
                                   m;
                             })
                    end)
                  states)
            states)
        rands;
      (* Final entailment uses the continuation posts abstractly: for
         every r, i, m, f with goal.pre i, Q1 r i m and (k r).post r' m f,
         goal.post r' i f must hold.  r' ranges over [rands'] below only
         when the result types agree; in general the caller provides the
         composite-post entailment through the continuation's spec, so we
         check it pointwise over states with the continuation's own post
         as the hypothesis.  Since r' has the goal's result type, we reuse
         the continuation triples to generate candidate results is not
         possible generically; instead the entailment is checked as a
         quantified implication over states via a caller-visible helper
         [bind_post_entails].  Here we conservatively require:
         (k r).post r' m f -> goal.post r' i f  for all r' the caller
         enumerates through [check_post_entailment]. *)
      Ok
        {
          prog = Prog.bind t1.prog (fun r -> (k r).prog);
          spec = goal;
        }
    with Bad e -> Error e)

(* The final-entailment obligation of [bind], checked separately because
   it quantifies over the goal's result type: for all enumerated results
   [r'] and states i, m, f: goal.pre i ∧ Q1 r i m ∧ Qk r' m f →
   goal.post r' i f. *)
let bind_post_entails c ~(rands : 'b list) ~(finals : 'a list)
    (t1 : 'b triple) (k : 'b -> 'a triple) (goal : 'a Spec.t) :
    (unit, rule_error) result =
  let states = coherent_states c in
  let exception Bad of rule_error in
  try
    List.iter
      (fun r ->
        let tk = k r in
        List.iter
          (fun r' ->
            List.iter
              (fun i ->
                if Spec.pre goal i then
                  List.iter
                    (fun m ->
                      if Spec.post t1.spec r i m then
                        List.iter
                          (fun f ->
                            if
                              Spec.post tk.spec r' m f
                              && not (Spec.post goal r' i f)
                            then
                              raise
                                (Bad
                                   {
                                     rule = "bind";
                                     detail =
                                       Fmt.str
                                         "composite post fails: i=%a m=%a f=%a"
                                         State.pp i State.pp m State.pp f;
                                   }))
                          states)
                    states)
              states)
          finals)
      rands;
    Ok ()
  with Bad e -> Error e

(* CONSEQUENCE: weaken a triple's spec. *)
let conseq c ~(results : 'a list) (t : 'a triple) (goal : 'a Spec.t) :
    ('a triple, rule_error) result =
  let states = coherent_states c in
  let pre_ok =
    List.for_all
      (fun i -> (not (Spec.pre goal i)) || Spec.pre t.spec i)
      states
  in
  if not pre_ok then error "conseq" "goal pre does not entail triple pre"
  else
    let post_ok =
      List.for_all
        (fun r ->
          List.for_all
            (fun i ->
              (not (Spec.pre goal i))
              || List.for_all
                   (fun f ->
                     (not (Spec.post t.spec r i f)) || Spec.post goal r i f)
                   states)
            states)
        results
    in
    if not post_ok then error "conseq" "triple post does not entail goal post"
    else
      match stability_obligation c ~results "conseq" goal with
      | Error e -> Error e
      | Ok () -> Ok { prog = t.prog; spec = goal }

(* PAR and FFIX: discharged by bounded semantic exploration of the
   composite program — the replacement for the subjective-split and
   induction arguments (DESIGN.md). *)

let par_semantic c ?(fuel = 64) ?(max_outcomes = 200_000) (t1 : 'b triple)
    (t2 : 'c triple) (goal : ('b * 'c) Spec.t) :
    (('b * 'c) triple, rule_error) result =
  let prog = Prog.par t1.prog t2.prog in
  let report =
    Verify.check_triple ~fuel ~max_outcomes ~world:c.world ~init:c.states prog
      goal
  in
  if Verify.ok report then Ok { prog; spec = goal }
  else error "par" (Fmt.str "%a" Verify.pp_report report)

let ffix_semantic c ?(fuel = 64) ?(max_outcomes = 200_000)
    (f : ('i -> 'o Prog.t) -> 'i -> 'o Prog.t) (x : 'i) (goal : 'o Spec.t) :
    ('o triple, rule_error) result =
  let prog = Prog.ffix f x in
  let report =
    Verify.check_triple ~fuel ~max_outcomes ~world:c.world ~init:c.states prog
      goal
  in
  if Verify.ok report then Ok { prog; spec = goal }
  else error "ffix" (Fmt.str "%a" Verify.pp_report report)

(* An explicitly trusted triple: used in tests to model library imports
   whose verification happened elsewhere (e.g. in another suite). *)
let trusted prog spec = { prog; spec }
