(* Assertion combinators with declared footprints: the analogue of the
   paper's planned "proof automation for stability-related facts via
   lemma overloading" (Section 7).

   An assertion built from these combinators carries a footprint — which
   components of which labels it reads.  Environment steps never change
   a thread's [self] components (that is the other-fixity law, checked
   for every concurroid), so an assertion whose footprint is
   self-only is stable *by construction*: no enumeration needed.
   Assertions touching [joint] or [other] components fall back to the
   semantic checker.  [check_auto] implements this dispatch; the test
   suite validates that the syntactic fast path never disagrees with
   semantic checking. *)

module Aux = Fcsl_pcm.Aux
open Fcsl_heap

type component = Cself | Cjoint | Cother

type footprint = (Label.t * component) list

type t = {
  a_name : string;
  a_pred : State.t -> bool;
  a_fp : footprint;
}

let name a = a.a_name
let holds a st = a.a_pred st
let footprint a = a.a_fp

(* Primitive assertions: each reads exactly one component of one
   label.  A missing label falsifies the assertion. *)

let pure name b = { a_name = name; a_pred = (fun _ -> b); a_fp = [] }

let on_self l name f =
  {
    a_name = name;
    a_pred =
      (fun st ->
        match State.find l st with
        | Some s -> f (Slice.self s)
        | None -> false);
    a_fp = [ (l, Cself) ];
  }

let on_joint l name f =
  {
    a_name = name;
    a_pred =
      (fun st ->
        match State.find l st with
        | Some s -> f (Slice.joint s) (Slice.jaux s)
        | None -> false);
    a_fp = [ (l, Cjoint) ];
  }

let on_other l name f =
  {
    a_name = name;
    a_pred =
      (fun st ->
        match State.find l st with
        | Some s -> f (Slice.other s)
        | None -> false);
    a_fp = [ (l, Cother) ];
  }

(* Connectives: footprints accumulate. *)

let merge_fp a b =
  List.sort_uniq Stdlib.compare (a @ b)

let conj a b =
  {
    a_name = Fmt.str "(%s /\\ %s)" a.a_name b.a_name;
    a_pred = (fun st -> a.a_pred st && b.a_pred st);
    a_fp = merge_fp a.a_fp b.a_fp;
  }

let disj a b =
  {
    a_name = Fmt.str "(%s \\/ %s)" a.a_name b.a_name;
    a_pred = (fun st -> a.a_pred st || b.a_pred st);
    a_fp = merge_fp a.a_fp b.a_fp;
  }

(* Negation preserves the footprint (it reads the same components). *)
let neg a =
  {
    a_name = Fmt.str "~%s" a.a_name;
    a_pred = (fun st -> not (a.a_pred st));
    a_fp = a.a_fp;
  }

let conj_all = function
  | [] -> pure "true" true
  | a :: rest -> List.fold_left conj a rest

(* Convenience primitives. *)

let self_contains l x =
  on_self l
    (Fmt.str "%a in self(%a)" Ptr.pp x Label.pp l)
    (fun a ->
      match Aux.as_set a with Some s -> Ptr.Set.mem x s | None -> false)

let self_is_unit l =
  on_self l (Fmt.str "self(%a) = unit" Label.pp l) Aux.is_unit

let self_heap_has l p =
  on_self l
    (Fmt.str "%a in pv_self(%a)" Ptr.pp p Label.pp l)
    (fun a -> match Aux.as_heap a with Some h -> Heap.mem p h | None -> false)

let joint_cell_is l p v =
  on_joint l
    (Fmt.str "%a :-> %a @@ %a" Ptr.pp p Value.pp v Label.pp l)
    (fun joint _ ->
      match Heap.find p joint with Some w -> Value.equal v w | None -> false)

(* Stability dispatch. *)

type verdict =
  | Stable_by_footprint
      (* self-only footprint: stable by other-fixity, no search *)
  | Stable_checked (* semantic check ran and succeeded *)
  | Unstable of Stability.result

let self_only a =
  List.for_all (fun (_, c) -> c = Cself) a.a_fp

(* Interference can also only come from labels the world actually
   contains; reads of absent labels are vacuously stable. *)
let check_auto (w : World.t) ~states (a : t) : verdict =
  let touched_interferable =
    List.exists
      (fun (l, c) -> c <> Cself && World.mem w l)
      a.a_fp
  in
  if (not touched_interferable) || self_only a then Stable_by_footprint
  else
    match Stability.check w ~states a.a_pred with
    | Stability.Stable -> Stable_checked
    | Stability.Unstable _ as r -> Unstable r

let is_stable = function
  | Stable_by_footprint | Stable_checked -> true
  | Unstable _ -> false

let pp_verdict ppf = function
  | Stable_by_footprint -> Fmt.string ppf "stable (by footprint)"
  | Stable_checked -> Fmt.string ppf "stable (checked)"
  | Unstable r -> Stability.pp_result ppf r
