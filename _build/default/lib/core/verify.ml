(* The verifier: discharges a Hoare triple {pre} prog {post} against a
   world of concurroids by exhaustive exploration of schedules and
   environment interference from every supplied initial state.

   This is the semantic replacement for Coq type checking (see
   DESIGN.md): the same obligations FCSL discharges by dependent types —
   safety of every atomic action, the postcondition in every terminal
   state, under every admissible interference — are established by
   enumeration over finite configurations. *)

type failure = {
  initial : State.t;
  reason : string;
}

type report = {
  spec_name : string;
  initial_states : int; (* initial states satisfying the precondition *)
  outcomes : int; (* terminal outcomes examined *)
  diverged : int; (* paths cut by fuel (partial correctness: not failures) *)
  complete : bool; (* exploration exhausted every path *)
  failures : failure list;
}

let ok r = r.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "@[<v2>from %a:@ %s@]" State.pp f.initial f.reason

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "%s: OK (%d initial states, %d outcomes%s%s)" r.spec_name
      r.initial_states r.outcomes
      (if r.diverged > 0 then Fmt.str ", %d fuel-cut" r.diverged else "")
      (if r.complete then "" else ", exploration capped")
  else
    Fmt.pf ppf "@[<v2>%s: FAILED (%d failures)@ %a@]" r.spec_name
      (List.length r.failures)
      Fmt.(list ~sep:cut pp_failure)
      (List.filteri (fun i _ -> i < 3) r.failures)

(* [check_triple ~world ~init prog spec] explores every schedule of
   [prog] (with environment interference at all world labels unless
   [interference] is [false]) from every coherent initial state in
   [init] satisfying the precondition. *)
let check_triple ?(fuel = 64) ?(max_outcomes = 200_000) ?(interference = true)
    ?(env_budget = max_int) ?(max_failures = 5) ~(world : World.t)
    ~(init : State.t list) (prog : 'a Prog.t) (spec : 'a Spec.t) : report =
  let interfere = if interference then World.labels world else [] in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let complete = ref true in
  let failures = ref [] in
  let add_failure st reason =
    if List.length !failures < max_failures then
      failures := { initial = st; reason } :: !failures
  in
  List.iter
    (fun st ->
      if World.coh world st && Spec.pre spec st && !failures = [] then begin
        incr initial_states;
        let genv, mine = Sched.genv_of_state ~interfere world st in
        let outs, compl =
          Sched.explore ~fuel ~max_outcomes ~interference ~env_budget genv mine
            prog
        in
        if not compl then complete := false;
        List.iter
          (fun out ->
            incr outcomes;
            match out with
            | Sched.Finished (r, final) ->
              if not (Spec.post spec r st final) then
                add_failure st
                  (Fmt.str "postcondition violated in final state %a" State.pp
                     final)
            | Sched.Crashed msg -> add_failure st ("crash: " ^ msg)
            | Sched.Diverged -> incr diverged)
          outs
      end)
    init;
  {
    spec_name = Spec.name spec;
    initial_states = !initial_states;
    outcomes = !outcomes;
    diverged = !diverged;
    complete = !complete;
    failures = List.rev !failures;
  }

(* Randomized checking for configurations too large to exhaust: [trials]
   random schedules per initial state. *)
let check_triple_random ?(fuel = 2000) ?(trials = 100) ?(interference = false)
    ?(max_failures = 5) ~(world : World.t) ~(init : State.t list)
    (prog : 'a Prog.t) (spec : 'a Spec.t) : report =
  let interfere = if interference then World.labels world else [] in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let failures = ref [] in
  let add_failure st reason =
    if List.length !failures < max_failures then
      failures := { initial = st; reason } :: !failures
  in
  List.iter
    (fun st ->
      if World.coh world st && Spec.pre spec st then begin
        incr initial_states;
        let genv, mine = Sched.genv_of_state ~interfere world st in
        for seed = 1 to trials do
          incr outcomes;
          match Sched.run_random ~fuel ~interference ~seed genv mine prog with
          | Sched.Finished (r, final) ->
            if not (Spec.post spec r st final) then
              add_failure st
                (Fmt.str "postcondition violated (seed %d) in %a" seed State.pp
                   final)
          | Sched.Crashed msg -> add_failure st ("crash: " ^ msg)
          | Sched.Diverged -> incr diverged
        done
      end)
    init;
  {
    spec_name = Spec.name spec;
    initial_states = !initial_states;
    outcomes = !outcomes;
    diverged = !diverged;
    complete = false;
    failures = List.rev !failures;
  }
