(** The concurroid of thread-private state (paper, Sections 3.5 and
    4.1): [self] and [other] are the private real heaps of the observing
    thread and its environment, the joint component is empty.

    The semantic transition relation lets a thread rewrite the contents
    of its own cells at will (the paper's quantified Priv transitions);
    growth and shrinkage of private heaps go through communicating
    actions (e.g. the allocator's transfer). *)

open Fcsl_heap

val coh : Slice.t -> bool

val justifies : Slice.t -> Slice.t -> bool
(** Own-cell mutation: other and joint fixed, self heap same-domain. *)

val make : ?enum:(unit -> Slice.t list) -> Label.t -> Concurroid.t
(** Build a Priv instance; case studies pass an enumeration matching
    their own private-heap shapes. *)

val enum_default : unit -> Slice.t list

val pv_self : Label.t -> State.t -> Heap.t
(** The paper's [pv_self] projection.  Raises on non-heap aux. *)

val pv_other : Label.t -> State.t -> Heap.t
