(** Action trees (paper, Section 5.1): finite partial approximations of
    program behaviour, a structured version of Brookes's action traces.

    The denotation of a program in a configuration is its bounded
    unfolding: internal nodes are the enabled atomic actions (and
    environment steps), leaves are outcomes.  Adequacy — flattening the
    tree yields exactly the scheduler's outcomes — is checked by the
    test suite. *)

type 'a t =
  | Leaf of 'a Sched.outcome
  | Node of (string * 'a t) list
      (** enabled moves: action name (or "env:..." label) and the
          subtree after taking it *)

val denote :
  ?fuel:int ->
  ?interference:bool ->
  ?env_budget:int ->
  Sched.genv ->
  Contrib.t ->
  'a Prog.t ->
  'a t

val size : 'a t -> int
val depth : 'a t -> int

val outcomes : 'a t -> 'a Sched.outcome list
(** Leaf outcomes, in depth-first traversal order. *)

val traces : 'a t -> (string list * 'a Sched.outcome) list
(** All root-to-leaf action traces. *)

val agrees_with_explore :
  result_equal:('a -> 'a -> bool) -> 'a t -> 'a Sched.outcome list -> bool
(** Adequacy against {!Sched.explore} (same depth-first order). *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
