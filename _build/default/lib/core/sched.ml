(* Operational semantics of the DSL: a small-step interleaving scheduler
   over configurations, with optional environment interference.

   A configuration is a global environment (the shared joint heaps, the
   external environment's contribution, and the ambient world of
   concurroids) plus a tree of running threads.  Each [Par] node carries
   the PCM contributions of its two children; a thread's subjective view
   of label [l] is

     self  = its own contribution at l
     joint = the shared joint heap at l
     other = external contribution • all sibling contributions at l

   which is exactly FCSL's subjective split.  Forked children start with
   unit contributions and fold their earnings back into the parent on
   join.

   Administrative steps (monad laws, recursion unfolding, hide
   installation, joins) are performed eagerly — they commute with every
   other thread's steps — so scheduling choice points are exactly the
   atomic actions and (when enabled) environment interference, keeping
   exhaustive exploration tractable. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

type genv = {
  joints : Heap.t Label.Map.t;
  jauxs : Contrib.t; (* per-label joint auxiliary state *)
  ext_other : Contrib.t;
  world : World.t; (* ambient + dynamically installed concurroids *)
  interfere : Label.Set.t; (* labels open to environment interference *)
}

(* Runtime thread trees. *)
type _ rt =
  | RRet : 'a -> 'a rt
  | RBind : 'b rt * ('b -> 'a Prog.t) -> 'a rt
  | RAct : 'a Action.t -> 'a rt
  | RPar : 'b rt * Contrib.t * 'c rt * Contrib.t -> ('b * 'c) rt
  | RParP : Prog.split * 'b Prog.t * 'c Prog.t -> ('b * 'c) rt
      (* pending fork split *)
  | RHideP : Prog.hide_spec * 'a Prog.t -> 'a rt (* pending installation *)
  | RHideI : Prog.hide_spec * 'a rt -> 'a rt (* installed, body running *)

let rec inject : type a. a Prog.t -> a rt = function
  | Prog.Ret v -> RRet v
  | Prog.Bind (p, k) -> RBind (inject p, k)
  | Prog.Act a -> RAct a
  | Prog.Par (p, q) -> RPar (inject p, Contrib.empty, inject q, Contrib.empty)
  | Prog.ParSplit (split, p, q) -> RParP (split, p, q)
  | Prog.Ffix (f, x) -> inject (Prog.unfold_ffix f x)
  | Prog.Hide (spec, body) -> RHideP (spec, body)

(* The sum of all contributions held inside a thread tree (excluding the
   root's own contribution, which the caller holds). *)
let rec inner_contribs : type a. a rt -> Contrib.t option = function
  | RRet _ | RAct _ -> Some Contrib.empty
  | RBind (p, _) -> inner_contribs p
  | RParP _ -> Some Contrib.empty
  | RHideP _ -> Some Contrib.empty
  | RHideI (_, body) -> inner_contribs body
  | RPar (l, cl, r, cr) ->
    Option.bind (inner_contribs l) (fun il ->
        Option.bind (inner_contribs r) (fun ir ->
            Contrib.join_all [ cl; cr; il; ir ]))

(* The subjective state a thread with contribution [mine] and sibling
   contributions [around] sees. *)
let view genv ~around ~mine : State.t option =
  Label.Map.fold
    (fun l joint acc ->
      Option.bind acc (fun st ->
          Option.map
            (fun other ->
              State.add l
                (Slice.make_jaux
                   ~jaux:(Contrib.get l genv.jauxs)
                   ~self:(Contrib.get l mine) ~joint ~other)
                st)
            (Aux.join (Contrib.get l around) (Contrib.get l genv.ext_other))))
    genv.joints (Some State.empty)

(* Decompose an action's output state back into joints and self
   contributions. *)
let unview st ~(genv : genv) ~(mine : Contrib.t) =
  let joints =
    List.fold_left
      (fun j l -> Label.Map.add l (State.joint l st) j)
      genv.joints (State.labels st)
  in
  let jauxs =
    List.fold_left
      (fun c l -> Contrib.set l (State.jaux l st) c)
      genv.jauxs (State.labels st)
  in
  let mine =
    List.fold_left (fun c l -> Contrib.set l (State.self l st) c) mine
      (State.labels st)
  in
  ({ genv with joints; jauxs }, mine)

let as_ret : type a. a rt -> a option = function
  | RRet v -> Some v
  | RBind _ | RAct _ | RPar _ | RParP _ | RHideP _ | RHideI _ -> None

type 'a norm = Norm of genv * Contrib.t * 'a rt | Norm_crash of string

(* Eager administrative reduction: monadic redexes, joins, hide
   installation/uninstallation.  Returns a tree whose every leaf is an
   [RAct] (or the whole tree is [RRet]). *)
let rec normalize : type a. genv -> Contrib.t -> a rt -> a norm =
 fun genv mine rt ->
  match rt with
  | RRet _ -> Norm (genv, mine, rt)
  | RAct _ -> Norm (genv, mine, rt)
  | RBind (p, k) -> (
    match normalize genv mine p with
    | Norm_crash _ as c -> c
    | Norm (genv, mine, RRet v) -> normalize genv mine (inject (k v))
    | Norm (genv, mine, p') -> Norm (genv, mine, RBind (p', k)))
  | RPar (l, cl, r, cr) -> (
    match normalize genv cl l with
    | Norm_crash _ as c -> c
    | Norm (genv, cl, l') -> (
      match normalize genv cr r with
      | Norm_crash _ as c -> c
      | Norm (genv, cr, r') -> (
        match (l', r') with
        | RRet vl, RRet vr -> (
          match Contrib.join_all [ mine; cl; cr ] with
          | Some mine -> Norm (genv, mine, RRet (vl, vr))
          | None -> Norm_crash "par join: incompatible contributions")
        | _ -> Norm (genv, mine, RPar (l', cl, r', cr)))))
  | RParP (split, p, q) -> (
    match split mine with
    | None -> Norm_crash "par: requested fork split unavailable"
    | Some (reserve, cl, cr) -> (
      match Contrib.join_all [ reserve; cl; cr ] with
      | Some total when Contrib.equal total mine ->
        normalize genv reserve (RPar (inject p, cl, inject q, cr))
      | Some _ | None -> Norm_crash "par: fork split does not rejoin"))
  | RHideP (spec, body) -> install genv mine spec body
  | RHideI (spec, body) -> (
    match normalize genv mine body with
    | Norm_crash _ as c -> c
    | Norm (genv, mine, RRet v) -> uninstall genv mine spec v
    | Norm (genv, mine, body') -> Norm (genv, mine, RHideI (spec, body')))

(* Installation (Section 3.5): carve the decorated subheap out of this
   thread's private heap and erect the new concurroid's slice over it,
   with the given initial [self] and unit [other] (no interference). *)
and install : type a. genv -> Contrib.t -> Prog.hide_spec -> a Prog.t -> a norm
    =
 fun genv mine spec body ->
  let l = Concurroid.label spec.hs_conc in
  if Label.Map.mem l genv.joints then
    Norm_crash
      (Fmt.str "hide: label %a already installed" Label.pp l)
  else
    match Aux.as_heap (Contrib.get spec.hs_priv mine) with
    | None -> Norm_crash "hide: private contribution is not a heap"
    | Some priv_heap ->
      let donated = spec.hs_decor priv_heap in
      if not (Heap.subheap donated priv_heap) then
        Norm_crash "hide: decoration selects outside the private heap"
      else
        let slice =
          Slice.make_jaux ~jaux:spec.hs_jaux ~self:spec.hs_init ~joint:donated
            ~other:Aux.Unit
        in
        if not (Concurroid.coh spec.hs_conc slice) then
          Norm_crash
            (Fmt.str "hide: initial %s slice incoherent"
               (Concurroid.name spec.hs_conc))
        else
          let remaining = Heap.diff priv_heap donated in
          let genv =
            {
              genv with
              joints = Label.Map.add l donated genv.joints;
              jauxs = Contrib.set l spec.hs_jaux genv.jauxs;
              world = World.entangle genv.world (World.of_list [ spec.hs_conc ]);
            }
          in
          let mine =
            mine
            |> Contrib.set spec.hs_priv (Aux.heap remaining)
            |> Contrib.set l spec.hs_init
          in
          normalize genv mine (RHideI (spec, inject body))

(* Uninstallation: return the hidden label's real heap (joint plus any
   heap-sorted auxiliaries) to the thread's private heap and retract the
   concurroid from the world. *)
and uninstall : type a. genv -> Contrib.t -> Prog.hide_spec -> a -> a norm =
 fun genv mine spec v ->
  let l = Concurroid.label spec.hs_conc in
  let joint = Option.value (Label.Map.find_opt l genv.joints) ~default:Heap.empty in
  let self_aux = Contrib.get l mine in
  let other_aux = Contrib.get l genv.ext_other in
  match (State.heap_part self_aux, State.heap_part other_aux) with
  | Some hs, Some ho -> (
    match
      Option.bind (Heap.union joint hs) (fun h -> Heap.union h ho)
    with
    | None -> Norm_crash "unhide: colliding heaps"
    | Some returned -> (
      match Aux.as_heap (Contrib.get spec.hs_priv mine) with
      | None -> Norm_crash "unhide: private contribution is not a heap"
      | Some priv_heap -> (
        match Heap.union priv_heap returned with
        | None -> Norm_crash "unhide: returned heap collides with private"
        | Some priv' ->
          let genv =
            {
              genv with
              joints = Label.Map.remove l genv.joints;
              jauxs = Contrib.remove l genv.jauxs;
              ext_other = Contrib.remove l genv.ext_other;
              world =
                World.of_list
                  (List.filter
                     (fun c -> not (Label.equal (Concurroid.label c) l))
                     (World.concurroids genv.world));
            }
          in
          let mine =
            mine |> Contrib.remove l |> Contrib.set spec.hs_priv (Aux.heap priv')
          in
          Norm (genv, mine, RRet v))))
  | _ -> Norm_crash "unhide: auxiliary state has no heap erasure"

(* One scheduling move: an atomic action at some leaf.  Returns all
   enabled moves as continuations, or a crash witness if some enabled
   leaf is unsafe (a verification failure). *)
type 'a move = { mv_name : string; mv_next : (genv * Contrib.t * 'a rt, string) result }

let move_name mv = mv.mv_name
let move_next mv = mv.mv_next

let rec moves : type a. genv -> Contrib.t -> Contrib.t -> a rt -> a move list =
 fun genv around mine rt ->
  match rt with
  | RRet _ -> []
  | RParP _ -> [] (* eliminated by normalize *)
  | RHideP _ -> [] (* eliminated by normalize *)
  | RAct a -> (
    match view genv ~around ~mine with
    | None ->
      [ { mv_name = Action.name a; mv_next = Error "invalid subjective view" } ]
    | Some st ->
      if not (Action.safe a st) then
        [
          {
            mv_name = Action.name a;
            mv_next =
              Error (Fmt.str "action %s unsafe in %a" (Action.name a) State.pp st);
          };
        ]
      else if not (Action.enabled a st) then [] (* blocked, not crashed *)
      else
        let r, st' = Action.step_exn a st in
        let genv', mine' = unview st' ~genv ~mine in
        [ { mv_name = Action.name a; mv_next = Ok (genv', mine', RRet r) } ])
  | RBind (p, k) ->
    List.map
      (fun mv ->
        {
          mv with
          mv_next =
            Result.map (fun (g, m, p') -> (g, m, RBind (p', k))) mv.mv_next;
        })
      (moves genv around mine p)
  | RHideI (spec, body) ->
    List.map
      (fun mv ->
        {
          mv with
          mv_next =
            Result.map (fun (g, m, b') -> (g, m, RHideI (spec, b'))) mv.mv_next;
        })
      (moves genv around mine body)
  | RPar (l, cl, r, cr) ->
    let around_of sibling_contrib sibling_tree =
      Option.bind (inner_contribs sibling_tree) (fun inner ->
          Contrib.join_all [ around; mine; sibling_contrib; inner ])
    in
    let left =
      match around_of cr r with
      | None -> [ { mv_name = "par"; mv_next = Error "incompatible contributions" } ]
      | Some around_l ->
        List.map
          (fun mv ->
            {
              mv with
              mv_next =
                Result.map
                  (fun (g, m_l, l') -> (g, mine, RPar (l', m_l, r, cr)))
                  mv.mv_next;
            })
          (moves genv around_l cl l)
    in
    let right =
      match around_of cl l with
      | None -> [ { mv_name = "par"; mv_next = Error "incompatible contributions" } ]
      | Some around_r ->
        List.map
          (fun mv ->
            {
              mv with
              mv_next =
                Result.map
                  (fun (g, m, r') -> (g, mine, RPar (l, cl, r', m)))
                  mv.mv_next;
            })
          (moves genv around_r cr r)
    in
    left @ right

(* Environment interference: at any label open to interference, the
   environment may take any transition of that label's concurroid from
   its own viewpoint ([self] = external contribution, [other] = the sum
   of all our threads' contributions).  From the program's side this
   changes [joint] and the external contribution, never our selves. *)
let env_moves : type a. genv -> Contrib.t -> a rt -> (string * genv) list =
 fun genv mine rt ->
  match Option.bind (inner_contribs rt) (Contrib.join mine) with
  | None -> []
  | Some ours ->
    List.concat_map
      (fun c ->
        let l = Concurroid.label c in
        if not (Label.Set.mem l genv.interfere) then []
        else
          match Label.Map.find_opt l genv.joints with
          | None -> []
          | Some joint ->
            let env_slice =
              Slice.make_jaux
                ~jaux:(Contrib.get l genv.jauxs)
                ~self:(Contrib.get l genv.ext_other)
                ~joint ~other:(Contrib.get l ours)
            in
            List.map
              (fun (n, s') ->
                ( Fmt.str "env:%s.%s" (Concurroid.name c) n,
                  {
                    genv with
                    joints = Label.Map.add l (Slice.joint s') genv.joints;
                    jauxs = Contrib.set l (Slice.jaux s') genv.jauxs;
                    ext_other =
                      Contrib.set l (Slice.self s') genv.ext_other;
                  } ))
              (Concurroid.steps c env_slice))
      (World.concurroids genv.world)

(* Exploration. *)

type 'a outcome =
  | Finished of 'a * State.t (* result and final subjective root view *)
  | Crashed of string
  | Diverged (* fuel exhausted along this path *)

let pp_outcome pp_res ppf = function
  | Finished (r, st) -> Fmt.pf ppf "finished %a in %a" pp_res r State.pp st
  | Crashed msg -> Fmt.pf ppf "CRASH: %s" msg
  | Diverged -> Fmt.string ppf "diverged (out of fuel)"

exception Stop

(* Depth-first exploration of all interleavings (and, when [interference]
   holds, all environment-step insertions), up to [fuel] steps per path
   and at most [max_outcomes] recorded outcomes.  Returns the recorded
   outcomes and a completeness flag. *)
(* Render a schedule prefix for counterexample reports (most recent
   last). *)
let pp_trace trace =
  String.concat " ; " (List.rev trace)

let explore ?(fuel = 64) ?(max_outcomes = 200_000) ?(interference = true)
    ?(env_budget = max_int) (genv0 : genv) (mine0 : Contrib.t)
    (prog : 'a Prog.t) : 'a outcome list * bool =
  let outcomes = ref [] in
  let count = ref 0 in
  let record o =
    outcomes := o :: !outcomes;
    incr count;
    if !count >= max_outcomes then raise Stop
  in
  let rec go : genv -> Contrib.t -> 'a rt -> int -> int -> string list -> unit
      =
   fun genv mine rt depth budget trace ->
    match normalize genv mine rt with
    | Norm_crash msg ->
      record (Crashed (Fmt.str "%s [schedule: %s]" msg (pp_trace trace)))
    | Norm (genv, mine, RRet v) -> (
      match view genv ~around:Contrib.empty ~mine with
      | Some st -> record (Finished (v, st))
      | None -> record (Crashed "final view invalid"))
    | Norm (genv, mine, rt) ->
      if depth >= fuel then record Diverged
      else begin
        let mvs = moves genv Contrib.empty mine rt in
        let envs =
          if interference && budget > 0 then env_moves genv mine rt else []
        in
        if mvs = [] && envs = [] then
          (* every thread blocked on a disabled action: divergence *)
          record Diverged
        else begin
          List.iter
            (fun mv ->
              match mv.mv_next with
              | Error msg ->
                record
                  (Crashed
                     (Fmt.str "%s [schedule: %s]" msg
                        (pp_trace (mv.mv_name :: trace))))
              | Ok (genv', mine', rt') ->
                go genv' mine' rt' (depth + 1) budget (mv.mv_name :: trace))
            mvs;
          List.iter
            (fun (n, genv') ->
              go genv' mine rt (depth + 1) (budget - 1) (n :: trace))
            envs
        end
      end
  in
  let complete =
    match go genv0 mine0 (inject prog) 0 env_budget [] with
    | () -> true
    | exception Stop -> false
  in
  (List.rev !outcomes, complete)

(* Run a single schedule chosen by [choose] (given the enabled move
   names, return the index to take); environment moves are not injected.
   Used for deterministic replays such as the Figure 2 staging. *)
let run_with_chooser ?(fuel = 1000)
    ~(choose : step:int -> string list -> int)
    ?(observe : genv -> Contrib.t -> string -> unit = fun _ _ _ -> ())
    (genv0 : genv) (mine0 : Contrib.t) (prog : 'a Prog.t) : 'a outcome =
  let rec go genv mine rt depth =
    match normalize genv mine rt with
    | Norm_crash msg -> Crashed msg
    | Norm (genv, mine, RRet v) -> (
      match view genv ~around:Contrib.empty ~mine with
      | Some st -> Finished (v, st)
      | None -> Crashed "final view invalid")
    | Norm (genv, mine, rt) ->
      if depth >= fuel then Diverged
      else
        let mvs = moves genv Contrib.empty mine rt in
        if mvs = [] then Diverged
        else
          let names = List.map (fun mv -> mv.mv_name) mvs in
          let i = choose ~step:depth names in
          let mv = List.nth mvs (i mod List.length mvs) in
          (match mv.mv_next with
          | Error msg -> Crashed msg
          | Ok (genv', mine', rt') ->
            observe genv' mine' mv.mv_name;
            go genv' mine' rt' (depth + 1))
  in
  go genv0 mine0 (inject prog) 0

(* Run one pseudo-random schedule; with [interference], environment
   steps are inserted with probability ~1/4 at each point. *)
let run_random ?(fuel = 1000) ?(interference = false) ~seed (genv0 : genv)
    (mine0 : Contrib.t) (prog : 'a Prog.t) : 'a outcome =
  let rng = Random.State.make [| seed |] in
  let rec go genv mine rt depth =
    match normalize genv mine rt with
    | Norm_crash msg -> Crashed msg
    | Norm (genv, mine, RRet v) -> (
      match view genv ~around:Contrib.empty ~mine with
      | Some st -> Finished (v, st)
      | None -> Crashed "final view invalid")
    | Norm (genv, mine, rt) ->
      if depth >= fuel then Diverged
      else begin
        let envs = if interference then env_moves genv mine rt else [] in
        if envs <> [] && Random.State.int rng 4 = 0 then
          let _, genv' = List.nth envs (Random.State.int rng (List.length envs)) in
          go genv' mine rt (depth + 1)
        else
          let mvs = moves genv Contrib.empty mine rt in
          if mvs = [] then Diverged
          else
            let mv = List.nth mvs (Random.State.int rng (List.length mvs)) in
            match mv.mv_next with
            | Error msg -> Crashed msg
            | Ok (genv', mine', rt') -> go genv' mine' rt' (depth + 1)
      end
  in
  go genv0 mine0 (inject prog) 0

(* Helpers for setting up configurations from a subjective initial
   state: the state's selves seed the root thread's contribution, the
   others seed the external environment. *)
let genv_of_state ?(interfere = []) (w : World.t) (st : State.t) :
    genv * Contrib.t =
  let joints =
    List.fold_left
      (fun j l -> Label.Map.add l (State.joint l st) j)
      Label.Map.empty (State.labels st)
  in
  let jauxs =
    List.fold_left
      (fun c l -> Contrib.set l (State.jaux l st) c)
      Contrib.empty (State.labels st)
  in
  let ext_other =
    List.fold_left
      (fun c l -> Contrib.set l (State.other l st) c)
      Contrib.empty (State.labels st)
  in
  let mine =
    List.fold_left
      (fun c l -> Contrib.set l (State.self l st) c)
      Contrib.empty (State.labels st)
  in
  ( {
      joints;
      jauxs;
      ext_other;
      world = w;
      interfere = Label.Set.of_list interfere;
    },
    mine )
