(* The concurroid of thread-private state (paper, Sections 3.5 and 4.1):
   [self] and [other] are the private real heaps of the observing thread
   and its environment, the [joint] component is empty.

   A thread changes its own private heap through atomic actions (reads,
   writes, allocation hand-off), never through shared-protocol
   transitions; the environment's interference is limited to rearranging
   its *own* private heap, which the observing thread cannot see.  The
   [resize_other] transition below models exactly that: it replaces the
   environment's heap with arbitrary other disjoint heaps drawn from a
   perturbation scheme, so stability checking genuinely exercises "the
   other threads' private state changed under us". *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

let coh s =
  Heap.is_empty (Slice.joint s)
  && Option.is_some (Aux.as_heap (Slice.self s))
  && Option.is_some (Aux.as_heap (Slice.other s))
  && Slice.valid s

(* Perturbations of the environment's private heap: grow by a fresh
   cell, shrink by one cell, overwrite one cell.  These generate the
   orbit of "other changed arbitrarily" sufficiently for stability
   checking (any predicate invariant under these three is invariant
   under their compositions, and coherent predicates may not inspect
   the contents anyway). *)
let perturb_other self_heap other_heap =
  let total = Heap.union_exn self_heap other_heap in
  let fresh = Heap.fresh_ptr total in
  let grown = Heap.add fresh (Value.int 0) other_heap in
  let shrunk =
    match Heap.dom other_heap with
    | [] -> []
    | p :: _ -> [ Heap.free p other_heap ]
  in
  let mutated =
    match Heap.dom other_heap with
    | [] -> []
    | p :: _ -> [ Heap.update p (Value.int 42) other_heap ]
  in
  grown :: (shrunk @ mutated)

let resize_other_tr =
  {
    Concurroid.tr_name = "priv_resize";
    tr_external = false;
    tr_step =
      (fun s ->
        (* As a *self* step (stability transposes it): the stepping
           thread rearranges its own heap.  [other] stays fixed per the
           other-fixity law. *)
        match (Aux.as_heap (Slice.self s), Aux.as_heap (Slice.other s)) with
        | Some mine, Some env ->
          perturb_other env mine
          |> List.filter_map (fun mine' ->
                 (* Footprint preservation exempts Priv: private heaps
                    really do grow and shrink via allocation.  To respect
                    the transition laws checked uniformly, keep only the
                    same-footprint mutation here; growth/shrinkage happens
                    through communicating actions. *)
                 if Ptr.Set.equal (Heap.dom_set mine') (Heap.dom_set mine)
                 then Some (Slice.with_self (Aux.heap mine') s)
                 else None)
        | _ -> []);
  }

let enum_default () =
  let p1 = Ptr.of_int 101 and p2 = Ptr.of_int 102 in
  let h0 = Heap.empty in
  let h1 = Heap.singleton p1 (Value.int 7) in
  let h2 = Heap.of_list [ (p1, Value.int 7); (p2, Value.bool true) ] in
  let heaps = [ h0; h1; h2 ] in
  List.concat_map
    (fun self_h ->
      List.filter_map
        (fun other_h ->
          if Heap.disjoint self_h other_h then
            Some
              (Slice.make ~self:(Aux.heap self_h) ~joint:Heap.empty
                 ~other:(Aux.heap other_h))
          else None)
        [ Heap.empty; Heap.singleton (Ptr.of_int 103) (Value.int 9) ])
    heaps

(* The semantic transition relation of Priv: a thread may rewrite the
   contents of its own cells at will (the [self]-quantified transitions
   of the paper's Priv concurroid); the footprint, joint and other stay
   fixed.  Growth and shrinkage happen through communicating actions. *)
let justifies s s' =
  match (Aux.as_heap (Slice.self s), Aux.as_heap (Slice.self s')) with
  | Some h, Some h' ->
    Aux.equal (Slice.other s) (Slice.other s')
    && Heap.equal (Slice.joint s) (Slice.joint s')
    && Ptr.Set.equal (Heap.dom_set h) (Heap.dom_set h')
  | _ -> false

(* [make ?enum label] builds a Priv concurroid instance.  Case studies
   pass an enumeration matching their own private-heap shapes. *)
let make ?(enum = enum_default) label =
  Concurroid.make ~justifies ~label ~name:"Priv" ~coh
    ~transitions:[ resize_other_tr ]
    ~enum ()

(* Projections pv_self / pv_other of the paper. *)
let pv_self l st =
  match Aux.as_heap (State.self l st) with
  | Some h -> h
  | None -> invalid_arg "Priv.pv_self: not a heap"

let pv_other l st =
  match Aux.as_heap (State.other l st) with
  | Some h -> h
  | None -> invalid_arg "Priv.pv_other: not a heap"
