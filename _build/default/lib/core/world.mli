(** Worlds: entangled compositions of concurroids (paper, Section 4.1).
    A world is a label-distinct list of concurroids; coherence and
    interference lift pointwise, and heap exchange happens through
    communicating actions. *)

type t

val of_list : Concurroid.t list -> t
(** Raises [Invalid_argument] on duplicate labels. *)

val entangle : t -> t -> t
val labels : t -> Label.t list
val concurroids : t -> Concurroid.t list
val find : t -> Label.t -> Concurroid.t option
val find_exn : t -> Label.t -> Concurroid.t
val mem : t -> Label.t -> bool

val coh : t -> State.t -> bool
(** The state has exactly the world's labels, each slice coherent and
    valid. *)

val env_steps : t -> State.t -> (string * State.t) list
(** One environment step of the entangled world: some component label
    takes an env transition, the rest idle. *)

val enum : ?cap:int -> t -> State.t list
(** The (capped) product of component enumerations: representative
    coherent states for law and stability checking. *)

val pp : Format.formatter -> t -> unit
