(* Stability (paper, Sections 1 and 2.2.3): an assertion about a shared
   resource must remain valid under any interference the protocol allows
   the environment, i.e. under [env_steps] of the governing world.

   Stability is checked semantically: over a supplied universe of
   representative coherent states, every state satisfying the assertion
   must keep satisfying it after every single environment step (single
   steps suffice — invariance under one step gives invariance under the
   closure). *)

type result = Stable | Unstable of { state : State.t; step : string; after : State.t }

let pp_result ppf = function
  | Stable -> Fmt.string ppf "stable"
  | Unstable { state; step; after } ->
    Fmt.pf ppf "unstable under %s:@ %a@ ~>@ %a" step State.pp state State.pp
      after

let is_stable = function Stable -> true | Unstable _ -> false

(* [check w ~states p]: stability of the unary assertion [p]. *)
let check (w : World.t) ~(states : State.t list) (p : State.t -> bool) : result
    =
  let exception Found of result in
  try
    List.iter
      (fun st ->
        if World.coh w st && p st then
          List.iter
            (fun (step, st') ->
              if not (p st') then
                raise (Found (Unstable { state = st; step; after = st' })))
            (World.env_steps w st))
      states;
    Stable
  with Found r -> r

(* Stability of a spec: its precondition, and its postcondition for each
   fixed result drawn from [results] and each initial state (the
   postcondition must be stable in its final-state argument: the
   environment may keep running after the program finishes). *)
let check_spec (w : World.t) ~(states : State.t list) ~(results : 'a list)
    (spec : 'a Spec.t) : (string * result) list =
  let pre = ("pre", check w ~states (Spec.pre spec)) in
  let posts =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun i ->
            if World.coh w i && Spec.pre spec i then
              Some
                ( Fmt.str "post(%s)" (Spec.name spec),
                  check w ~states (fun f -> Spec.post spec r i f) )
            else None)
          states)
      results
  in
  pre :: posts

let all_stable rs = List.for_all (fun (_, r) -> is_stable r) rs

let first_unstable rs =
  List.find_opt (fun (_, r) -> not (is_stable r)) rs
