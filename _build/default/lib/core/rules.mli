(** The deductive layer: FCSL's structural rules as combinators over
    verified triples (paper, Section 5.2).

    [ret]/[act] are leaf rules whose obligations are checked directly;
    [bind]/[conseq] glue triples by checking only spec entailments (the
    paper's compositionality: a library is verified once, clients reason
    from its spec); [par]/[ffix] are discharged by bounded semantic
    exploration (DESIGN.md explains why).  Every rule also requires the
    concluded spec to be stable under the world's interference. *)

type ctx

val ctx : world:World.t -> states:State.t list -> ctx

type 'a triple

val prog : 'a triple -> 'a Prog.t
val spec : 'a triple -> 'a Spec.t

type rule_error = { rule : string; detail : string }

val pp_rule_error : Format.formatter -> rule_error -> unit

val ret :
  ctx -> ?results:'a list -> 'a -> 'a Spec.t -> ('a triple, rule_error) result

val act : ctx -> 'a Action.t -> 'a Spec.t -> ('a triple, rule_error) result

val bind :
  ctx ->
  rands:'b list ->
  'b triple ->
  ('b -> 'a triple) ->
  'a Spec.t ->
  ('a triple, rule_error) result
(** [rands] enumerates the intermediate results the continuation may
    receive; only spec entailments are checked, the sub-programs are not
    re-explored. *)

val bind_post_entails :
  ctx ->
  rands:'b list ->
  finals:'a list ->
  'b triple ->
  ('b -> 'a triple) ->
  'a Spec.t ->
  (unit, rule_error) result
(** The final entailment of [bind], quantified over the goal's result
    type via [finals]. *)

val conseq :
  ctx ->
  results:'a list ->
  'a triple ->
  'a Spec.t ->
  ('a triple, rule_error) result

val par_semantic :
  ctx ->
  ?fuel:int ->
  ?max_outcomes:int ->
  'b triple ->
  'c triple ->
  ('b * 'c) Spec.t ->
  (('b * 'c) triple, rule_error) result

val ffix_semantic :
  ctx ->
  ?fuel:int ->
  ?max_outcomes:int ->
  (('i -> 'o Prog.t) -> 'i -> 'o Prog.t) ->
  'i ->
  'o Spec.t ->
  ('o triple, rule_error) result

val trusted : 'a Prog.t -> 'a Spec.t -> 'a triple
(** An explicitly trusted triple (library import whose verification
    happened elsewhere). *)
