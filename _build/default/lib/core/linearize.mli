(** Linearizability support for history-based specs (paper, Section 6).

    A {!seq_spec} is a sequential object; a stamped history is legal
    when replaying its entries in timestamp order reproduces every
    recorded result and state.  For unstamped observation multisets,
    {!linearizable_multiset} searches for a legal order. *)

open Fcsl_heap
module Hist := Fcsl_pcm.Hist

type seq_spec = {
  init : Value.t;
  step : string -> Value.t -> Value.t -> (Value.t * Value.t) option;
      (** op -> arg -> state -> (result, state') *)
}

val replay : seq_spec -> Hist.t -> Value.t option
(** [Some final_state] iff the stamped history is legal. *)

val legal : seq_spec -> Hist.t -> bool

val permutations : 'a list -> 'a list list

val linearizable_multiset :
  seq_spec -> (string * Value.t * Value.t) list -> bool
(** Does some order of the (op, arg, res) observations replay legally?
    Brute force; raises [Invalid_argument] beyond 8 observations. *)

val observations : Hist.t -> (string * Value.t * Value.t) list

(** {1 Standard sequential objects} *)

val counter_spec : seq_spec
val stack_spec : seq_spec
val register_pair_spec : seq_spec
