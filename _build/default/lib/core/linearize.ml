(* Linearizability support for history-based specs (paper, Section 6:
   "given specs via a PCM of time-stamped action histories in the spirit
   of linearizability").

   A [seq_spec] is a sequential object: an initial abstract state and a
   step function.  A stamped history is *legal* when replaying its
   entries in timestamp order through the object reproduces every
   recorded result and state — the check the stack/snapshot coherence
   predicates build on.  For unstamped entry multisets,
   [linearizable_multiset] searches for some legal order (brute force;
   intended for the small histories produced by verification runs). *)

open Fcsl_heap
module Hist = Fcsl_pcm.Hist

type seq_spec = {
  init : Value.t;
  step : string -> Value.t -> Value.t -> (Value.t * Value.t) option;
      (* op -> arg -> state -> (result, state') *)
}

(* Replay a stamped history; [Some final_state] iff legal. *)
let replay (spec : seq_spec) (h : Hist.t) : Value.t option =
  let rec go ts state =
    if ts > Hist.last_ts h then Some state
    else
      match Hist.find ts h with
      | None -> None
      | Some e -> (
        match spec.step e.Hist.op e.Hist.arg state with
        | Some (res, state')
          when Value.equal res e.Hist.res && Value.equal state' e.Hist.state ->
          go (ts + 1) state'
        | Some _ | None -> None)
  in
  if Hist.continuous h then go 1 spec.init else None

let legal spec h = Option.is_some (replay spec h)

(* All interleavings-respecting insertions for the permutation search. *)
let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: rest -> (x :: y :: rest) :: List.map (fun l -> y :: l) (insertions x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insertions x) (permutations rest)

(* Does some order of the given (op, arg, res) observations replay
   legally?  States are recomputed, so observations need not carry
   them. *)
let linearizable_multiset (spec : seq_spec)
    (obs : (string * Value.t * Value.t) list) : bool =
  if List.length obs > 8 then
    invalid_arg "Linearize.linearizable_multiset: history too large";
  let replay_order order =
    let rec go state = function
      | [] -> true
      | (op, arg, res) :: rest -> (
        match spec.step op arg state with
        | Some (res', state') when Value.equal res res' -> go state' rest
        | Some _ | None -> false)
    in
    go spec.init order
  in
  List.exists replay_order (permutations obs)

(* The observations recorded in a stamped history. *)
let observations (h : Hist.t) : (string * Value.t * Value.t) list =
  List.map (fun e -> (e.Hist.op, e.Hist.arg, e.Hist.res)) (Hist.entries h)

(* Standard sequential objects. *)

let counter_spec : seq_spec =
  {
    init = Value.int 0;
    step =
      (fun op arg state ->
        match (op, arg, state) with
        | "incr", Value.Int n, Value.Int c ->
          Some (Value.int c, Value.int (c + n))
        | "read", Value.Unit, Value.Int c -> Some (Value.int c, state)
        | _ -> None);
  }

let stack_spec : seq_spec =
  {
    init = Value.Unit;
    step =
      (fun op arg state ->
        match op with
        | "push" -> Some (Value.unit, Value.Pair (arg, state))
        | "pop" -> (
          match state with
          | Value.Pair (v, rest) -> Some (v, rest)
          | _ -> None)
        | _ -> None);
  }

let register_pair_spec : seq_spec =
  {
    init = Value.pair (Value.int 0) (Value.int 0);
    step =
      (fun op arg state ->
        match (op, state) with
        | "wx", Value.Pair (_, y) ->
          let state' = Value.Pair (arg, y) in
          Some (Value.unit, state')
        | "wy", Value.Pair (x, _) ->
          let state' = Value.Pair (x, arg) in
          Some (Value.unit, state')
        | "read", Value.Pair _ -> Some (state, state)
        | _ -> None);
  }
