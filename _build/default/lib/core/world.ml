(* Worlds: entangled compositions of concurroids (paper, Section 4.1).

   Entangling concurroids yields a new concurroid whose states are maps
   over the component labels; since our states are label-indexed already,
   a world is a label-distinct list of concurroids.  Coherence and
   interference lift pointwise; heap exchange between components is
   performed by communicating atomic actions (Section 4.1), which step
   several labels at once. *)

type t = Concurroid.t list

let of_list cs : t =
  let labels = List.map Concurroid.label cs in
  let distinct =
    List.length labels = List.length (List.sort_uniq Label.compare labels)
  in
  if distinct then cs else invalid_arg "World.of_list: duplicate labels"

let entangle (w1 : t) (w2 : t) = of_list (w1 @ w2)
let labels (w : t) = List.map Concurroid.label w
let concurroids (w : t) = w

let find (w : t) l =
  List.find_opt (fun c -> Label.equal (Concurroid.label c) l) w

let find_exn w l =
  match find w l with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "World.find_exn: no label %a" Label.pp l)

let mem w l = Option.is_some (find w l)

(* A state is coherent for a world when it has exactly the world's
   labels, each slice is coherent for its concurroid, and each slice's
   self/other contributions are compatible. *)
let coh (w : t) (st : State.t) =
  List.for_all
    (fun c ->
      match State.find (Concurroid.label c) st with
      | Some s -> Slice.valid s && Concurroid.coh c s
      | None -> false)
    w
  && List.for_all (fun l -> mem w l) (State.labels st)

(* One environment step of the entangled world: some component label
   takes an env transition, the rest idle. *)
let env_steps (w : t) (st : State.t) : (string * State.t) list =
  List.concat_map
    (fun c ->
      let l = Concurroid.label c in
      match State.find l st with
      | None -> []
      | Some s ->
        List.map
          (fun (n, s') ->
            (Fmt.str "%s.%s" (Concurroid.name c) n, State.add l s' st))
          (Concurroid.env_steps c s))
    w

(* The product enumeration of representative coherent states, used for
   law and stability checking.  Bounded: the cross product of component
   enumerations can be large, so a cap keeps checking tractable; checks
   additionally run on case-study-supplied initial states. *)
let enum ?(cap = 20_000) (w : t) : State.t list =
  let rec go = function
    | [] -> [ State.empty ]
    | c :: rest ->
      let tails = go rest in
      let slices = List.filter (Concurroid.coh c) (Concurroid.enum c) in
      let products =
        List.concat_map
          (fun s ->
            List.map (fun st -> State.add (Concurroid.label c) s st) tails)
          slices
      in
      if List.length products > cap then
        List.filteri (fun i _ -> i < cap) products
      else products
  in
  go w

let pp ppf (w : t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Concurroid.pp) w
