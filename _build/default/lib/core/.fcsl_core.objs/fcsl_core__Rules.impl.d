lib/core/rules.ml: Action Fmt List Prog Spec Stability State Verify World
