lib/core/verify.mli: Format Prog Spec State World
