lib/core/linearize.ml: Fcsl_heap Fcsl_pcm List Option Value
