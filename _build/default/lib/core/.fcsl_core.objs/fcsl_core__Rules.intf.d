lib/core/rules.mli: Action Format Prog Spec State World
