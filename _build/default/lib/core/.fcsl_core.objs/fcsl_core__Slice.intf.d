lib/core/slice.mli: Fcsl_heap Fcsl_pcm Format Heap
