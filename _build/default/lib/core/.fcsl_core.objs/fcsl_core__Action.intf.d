lib/core/action.mli: Fcsl_heap Format Heap Ptr State Value World
