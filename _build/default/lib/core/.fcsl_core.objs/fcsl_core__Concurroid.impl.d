lib/core/concurroid.ml: Fcsl_heap Fcsl_pcm Fmt Heap Label List Option Ptr Set Slice State
