lib/core/priv.ml: Concurroid Fcsl_heap Fcsl_pcm Heap List Option Ptr Slice State Value
