lib/core/slice.ml: Fcsl_heap Fcsl_pcm Fmt Heap Stdlib
