lib/core/world.ml: Concurroid Fmt Label List Option Slice State
