lib/core/action.ml: Concurroid Fcsl_heap Fcsl_pcm Fmt Heap List Option Ptr Slice State Value World
