lib/core/world.mli: Concurroid Format Label State
