lib/core/spec.mli: Format State
