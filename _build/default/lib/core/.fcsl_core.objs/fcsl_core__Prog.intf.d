lib/core/prog.mli: Action Concurroid Contrib Fcsl_heap Fcsl_pcm Format Heap Label Ptr
