lib/core/spec.ml: Fmt List State
