lib/core/concurroid.mli: Format Label Slice
