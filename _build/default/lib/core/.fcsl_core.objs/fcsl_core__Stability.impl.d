lib/core/stability.ml: Fmt List Spec State World
