lib/core/linearize.mli: Fcsl_heap Fcsl_pcm Value
