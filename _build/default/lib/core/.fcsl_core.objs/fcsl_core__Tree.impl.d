lib/core/tree.ml: Contrib Fmt List Prog Sched State String
