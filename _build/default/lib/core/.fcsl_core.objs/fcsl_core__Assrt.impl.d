lib/core/assrt.ml: Fcsl_heap Fcsl_pcm Fmt Heap Label List Ptr Slice Stability State Stdlib Value World
