lib/core/sched.ml: Action Concurroid Contrib Fcsl_heap Fcsl_pcm Fmt Heap Label List Option Prog Random Result Slice State String World
