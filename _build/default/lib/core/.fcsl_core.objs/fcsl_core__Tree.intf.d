lib/core/tree.mli: Contrib Format Prog Sched
