lib/core/sched.mli: Contrib Fcsl_heap Format Heap Label Prog State World
