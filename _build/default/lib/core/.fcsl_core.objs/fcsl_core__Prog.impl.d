lib/core/prog.ml: Action Concurroid Contrib Fcsl_heap Fcsl_pcm Fmt Format Heap Label List Option
