lib/core/state.ml: Fcsl_heap Fcsl_pcm Fmt Heap Label Option Slice
