lib/core/verify.ml: Fmt List Prog Sched Spec State World
