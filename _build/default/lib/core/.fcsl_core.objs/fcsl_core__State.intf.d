lib/core/state.mli: Fcsl_heap Fcsl_pcm Format Heap Label Slice
