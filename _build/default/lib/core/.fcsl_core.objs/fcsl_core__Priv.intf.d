lib/core/priv.mli: Concurroid Fcsl_heap Heap Label Slice State
