lib/core/label.ml: Fmt Hashtbl Int List Map Set
