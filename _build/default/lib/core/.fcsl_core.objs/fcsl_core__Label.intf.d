lib/core/label.mli: Format Map Set
