lib/core/contrib.mli: Fcsl_pcm Format Label
