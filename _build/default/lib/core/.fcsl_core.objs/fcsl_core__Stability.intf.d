lib/core/stability.mli: Format Spec State World
