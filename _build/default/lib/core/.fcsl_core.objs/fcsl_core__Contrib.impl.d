lib/core/contrib.ml: Fcsl_pcm Label List Option
