lib/core/assrt.mli: Fcsl_heap Fcsl_pcm Format Heap Label Ptr Stability State Value World
