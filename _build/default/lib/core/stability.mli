(** Stability (paper, Sections 1 and 2.2.3): an assertion must remain
    valid under any environment interference the protocol allows.
    Checked semantically over a universe of representative coherent
    states; single env steps suffice (invariance under one step gives
    invariance under the closure). *)

type result =
  | Stable
  | Unstable of { state : State.t; step : string; after : State.t }
      (** a counterexample: the state, the offending environment
          transition, and the state it leads to *)

val pp_result : Format.formatter -> result -> unit
val is_stable : result -> bool

val check : World.t -> states:State.t list -> (State.t -> bool) -> result
(** Stability of a unary assertion. *)

val check_spec :
  World.t ->
  states:State.t list ->
  results:'a list ->
  'a Spec.t ->
  (string * result) list
(** Stability of a spec: its pre, and its post for each result in
    [results] and each initial state (the environment may keep running
    after the program finishes). *)

val all_stable : (string * result) list -> bool
val first_unstable : (string * result) list -> (string * result) option
