(** Assertion combinators with declared footprints: the analogue of the
    paper's planned stability-proof automation (Section 7).

    An assertion whose footprint reads only [self] components is stable
    by construction (environment steps fix [self] — the other-fixity
    law); other assertions fall back to the semantic checker.  The test
    suite validates that the fast path never disagrees with semantic
    checking. *)

open Fcsl_heap
module Aux := Fcsl_pcm.Aux

type component = Cself | Cjoint | Cother
type footprint = (Label.t * component) list
type t

val name : t -> string
val holds : t -> State.t -> bool
val footprint : t -> footprint

(** {1 Primitive assertions} *)

val pure : string -> bool -> t
val on_self : Label.t -> string -> (Aux.t -> bool) -> t
val on_joint : Label.t -> string -> (Heap.t -> Aux.t -> bool) -> t
val on_other : Label.t -> string -> (Aux.t -> bool) -> t

(** {1 Connectives (footprints accumulate)} *)

val conj : t -> t -> t
val disj : t -> t -> t
val neg : t -> t
val conj_all : t list -> t

(** {1 Convenience} *)

val self_contains : Label.t -> Ptr.t -> t
val self_is_unit : Label.t -> t
val self_heap_has : Label.t -> Ptr.t -> t
val joint_cell_is : Label.t -> Ptr.t -> Value.t -> t

(** {1 Stability dispatch} *)

type verdict =
  | Stable_by_footprint  (** self-only footprint: no search needed *)
  | Stable_checked  (** semantic check ran and succeeded *)
  | Unstable of Stability.result

val self_only : t -> bool
val check_auto : World.t -> states:State.t list -> t -> verdict
val is_stable : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
