(** A real shared-memory heap: each cell is an [Atomic.t], so extracted
    programs run genuine compare-and-swap on OCaml 5 domains. *)

open Fcsl_heap

type t

val create : unit -> t
val of_heap : Heap.t -> t

val to_heap : t -> Heap.t
(** Snapshot back into a functional heap (quiescent use only). *)

val read : t -> Ptr.t -> Value.t
val write : t -> Ptr.t -> Value.t -> unit

val cas : t -> Ptr.t -> expect:Value.t -> replace:Value.t -> bool
(** One structural CAS attempt: compare the witnessed read structurally,
    swing on physical equality of the witness — the standard idiom. *)

val faa : t -> Ptr.t -> int -> int
(** Fetch-and-add on an integer cell (internal retry loop). *)

val alloc : t -> Value.t -> Ptr.t
(** Thread-safe allocation of a fresh cell. *)

val mem : t -> Ptr.t -> bool
val size : t -> int
