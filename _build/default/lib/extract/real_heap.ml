(* A real shared-memory heap: each cell is an [Atomic.t], so the
   extracted programs run with genuine compare-and-swap on OCaml 5
   domains.  This realizes the paper's future-work item of a program
   extraction mechanism (Section 7, [32]): auxiliary state is erased and
   the physical operations execute on actual parallel hardware.

   Structural CAS: OCaml's [Atomic.compare_and_set] compares physically,
   so the structural CAS reads the current (boxed) value, compares it
   structurally, and swings on physical equality of the witnessed read —
   the standard idiom, with retry pushed to the caller (exactly how the
   fine-grained algorithms use it). *)

open Fcsl_heap

type t = {
  cells : (Ptr.t, Value.t Atomic.t) Hashtbl.t;
  lock : Mutex.t; (* protects the table structure only, never cell data *)
}

let create () = { cells = Hashtbl.create 64; lock = Mutex.create () }

let of_heap (h : Heap.t) : t =
  let rh = create () in
  Heap.iter (fun p v -> Hashtbl.replace rh.cells p (Atomic.make v)) h;
  rh

(* Snapshot back into a functional heap (quiescent use only). *)
let to_heap (rh : t) : Heap.t =
  Hashtbl.fold (fun p cell h -> Heap.add p (Atomic.get cell) h) rh.cells
    Heap.empty

let cell rh p =
  match Hashtbl.find_opt rh.cells p with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Real_heap: %a unbound" Ptr.pp p)

let read rh p = Atomic.get (cell rh p)
let write rh p v = Atomic.set (cell rh p) v

(* One structural CAS attempt: true iff the cell held a value
   structurally equal to [expect] and the swing landed. *)
let cas rh p ~expect ~replace =
  let c = cell rh p in
  let current = Atomic.get c in
  Value.equal current expect && Atomic.compare_and_set c current replace

(* Fetch-and-add on an integer cell. *)
let faa rh p n =
  let c = cell rh p in
  let rec go () =
    let current = Atomic.get c in
    match Value.as_int current with
    | Some k ->
      if Atomic.compare_and_set c current (Value.int (k + n)) then k else go ()
    | None -> invalid_arg "Real_heap.faa: not an integer cell"
  in
  go ()

(* Allocation: thread-safe insertion of a fresh cell. *)
let alloc rh v =
  Mutex.lock rh.lock;
  let p =
    let top =
      Hashtbl.fold (fun p _ acc -> max acc (Ptr.to_int p)) rh.cells 0
    in
    Ptr.of_int (top + 1)
  in
  Hashtbl.replace rh.cells p (Atomic.make v);
  Mutex.unlock rh.lock;
  p

let mem rh p = Hashtbl.mem rh.cells p
let size rh = Hashtbl.length rh.cells
