(** Program extraction: compile surface-language procedures into
    directly executable code on the real atomic heap, with parallel
    composition realized by OCaml 5 domains — the paper's future-work
    extraction mechanism (Section 7, [32]).  All auxiliary state is
    erased; only the physical operations run. *)

open Fcsl_heap

exception Extraction_error of string

val run :
  ?domain_budget:int ->
  Fcsl_lang.Ast.program ->
  proc:string ->
  args:Value.t list ->
  Heap.t ->
  Heap.t * Value.t
(** Run [proc] with real parallelism ([domain_budget] bounds the fork
    depth that spawns domains; deeper forks run sequentially, which is
    one of the admissible schedules).  Returns the final heap snapshot
    and the result. *)
