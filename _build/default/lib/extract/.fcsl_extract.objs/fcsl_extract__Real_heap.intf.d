lib/extract/real_heap.mli: Fcsl_heap Heap Ptr Value
