lib/extract/extract.mli: Fcsl_heap Fcsl_lang Heap Value
