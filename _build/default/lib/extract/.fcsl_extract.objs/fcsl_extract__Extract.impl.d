lib/extract/extract.ml: Domain Fcsl_heap Fcsl_lang Fmt Heap List Ptr Real_heap String Value
