lib/extract/real_heap.ml: Atomic Fcsl_heap Fmt Hashtbl Heap Mutex Ptr Value
