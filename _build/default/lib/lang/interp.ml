(* A definitional interpreter for the surface language: programs run
   against a heap of graph nodes with a randomized interleaving
   scheduler.  It is intentionally independent of the embedded DSL — the
   test suite runs the parsed Figure 1 [span] here and the Figure 3 DSL
   [span] on the core scheduler and cross-checks the results
   (differential testing of the two semantics).

   Granularity: CAS and assignment are atomic, as in the DSL; expression
   evaluation (which may read several fields) is also performed in one
   step, which is harmless for the span-shaped programs this interpreter
   is used on (their expressions read fields of nodes the thread owns). *)

open Fcsl_heap
open Ast

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type env = (string * Value.t) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> error "unbound variable %s" x

let as_ptr = function
  | Value.Ptr p -> p
  | v -> error "expected pointer, got %a" Value.pp v

let as_bool = function
  | Value.Bool b -> b
  | v -> error "expected boolean, got %a" Value.pp v

let read_field h p f =
  if Ptr.is_null p then error "null dereference"
  else
    match Option.bind (Heap.find p h) Value.as_node with
    | Some (m, l, r) -> (
      match f with
      | Mark -> Value.bool m
      | Left -> Value.ptr l
      | Right -> Value.ptr r)
    | None -> error "%a is not a graph node" Ptr.pp p

let write_field h p f v =
  if Ptr.is_null p then error "null dereference"
  else
    match Option.bind (Heap.find p h) Value.as_node with
    | Some (m, l, r) ->
      let m, l, r =
        match (f, v) with
        | Mark, Value.Bool b -> (b, l, r)
        | Left, Value.Ptr q -> (m, q, r)
        | Right, Value.Ptr q -> (m, l, q)
        | _ -> error "ill-typed field write"
      in
      Heap.update p (Value.node ~marked:m ~left:l ~right:r) h
    | None -> error "%a is not a graph node" Ptr.pp p

let rec eval h env = function
  | Null -> Value.ptr Ptr.null
  | Bool b -> Value.bool b
  | Int n -> Value.int n
  | Var x -> lookup env x
  | Field (e, f) -> read_field h (as_ptr (eval h env e)) f
  | Eq (a, b) -> Value.bool (Value.equal (eval h env a) (eval h env b))
  | Not e -> Value.bool (not (as_bool (eval h env e)))
  | And (a, b) -> Value.bool (as_bool (eval h env a) && as_bool (eval h env b))
  | Or (a, b) -> Value.bool (as_bool (eval h env a) || as_bool (eval h env b))
  | Pair_fst e -> (
    match eval h env e with
    | Value.Pair (a, _) -> a
    | v -> error "expected pair, got %a" Value.pp v)
  | Pair_snd e -> (
    match eval h env e with
    | Value.Pair (_, b) -> b
    | v -> error "expected pair, got %a" Value.pp v)

(* Task trees: the running configuration of one program.  [TAtomic] is a
   scheduling point. *)
type task =
  | TDone of Value.t
  | TAtomic of string * (Heap.t -> Heap.t * task)
  | TPar of task * task * (Value.t -> Value.t -> task)

let procs_find procs name =
  match List.find_opt (fun p -> String.equal p.p_name name) procs with
  | Some p -> p
  | None -> error "unknown procedure %s" name

let rec exec procs env cmd ~(kret : Value.t -> task) ~(knext : env -> task) :
    task =
  match cmd with
  | Skip -> knext env
  | Return e ->
    TAtomic ("return", fun h -> (h, kret (eval h env e)))
  | Seq (a, b) ->
    exec procs env a ~kret ~knext:(fun env ->
        exec procs env b ~kret ~knext)
  | If (e, t, f) ->
    TAtomic
      ( "if",
        fun h ->
          let branch = if as_bool (eval h env e) then t else f in
          (h, exec procs env branch ~kret ~knext) )
  | Assign (e, f, v) ->
    TAtomic
      ( "assign",
        fun h ->
          let p = as_ptr (eval h env e) in
          let value = eval h env v in
          (write_field h p f value, knext env) )
  | BindCmd (pat, rhs, k) ->
    eval_rhs procs env rhs (fun v ->
        let env =
          match (pat, v) with
          | Pvar x, v -> (x, v) :: env
          | Ppair (a, b), Value.Pair (va, vb) -> (a, va) :: (b, vb) :: env
          | Ppair _, v -> error "pattern expects a pair, got %a" Value.pp v
        in
        exec procs env k ~kret ~knext)

and eval_rhs procs env rhs (kv : Value.t -> task) : task =
  match rhs with
  | Expr e -> TAtomic ("eval", fun h -> (h, kv (eval h env e)))
  | Cas (e, f, old_v, new_v) ->
    TAtomic
      ( "cas",
        fun h ->
          let p = as_ptr (eval h env e) in
          let current = read_field h p f in
          let expected = eval h env old_v in
          if Value.equal current expected then
            (write_field h p f (eval h env new_v), kv (Value.bool true))
          else (h, kv (Value.bool false)) )
  | Call (name, args) ->
    TAtomic
      ( "call:" ^ name,
        fun h ->
          let p = procs_find procs name in
          if List.length args <> List.length p.p_params then
            error "%s: arity mismatch" name;
          let env0 =
            List.map2
              (fun (param, _) arg -> (param, eval h env arg))
              p.p_params args
          in
          ( h,
            exec procs env0 p.p_body ~kret:kv
              ~knext:(fun _ -> kv Value.unit) ) )
  | Par (r1, r2) ->
    TPar
      ( eval_rhs procs env r1 (fun v -> TDone v),
        eval_rhs procs env r2 (fun v -> TDone v),
        fun v1 v2 -> kv (Value.pair v1 v2) )

(* The randomized interleaving scheduler. *)

let rec schedule rng h task =
  match task with
  | TDone v -> (h, v)
  | TAtomic (_, step) ->
    let h, task = step h in
    schedule rng h task
  | TPar (l, r, join) -> (
    match (l, r) with
    | TDone v1, TDone v2 -> schedule rng h (join v1 v2)
    | TDone _, _ ->
      let h, r = step_one rng h r in
      schedule rng h (TPar (l, r, join))
    | _, TDone _ ->
      let h, l = step_one rng h l in
      schedule rng h (TPar (l, r, join))
    | _, _ ->
      if Random.State.bool rng then
        let h, l = step_one rng h l in
        schedule rng h (TPar (l, r, join))
      else
        let h, r = step_one rng h r in
        schedule rng h (TPar (l, r, join)))

and step_one rng h task =
  match task with
  | TDone _ -> (h, task)
  | TAtomic (_, step) -> step h
  | TPar (l, r, join) -> (
    match (l, r) with
    | TDone v1, TDone v2 -> (h, join v1 v2)
    | TDone _, _ ->
      let h, r = step_one rng h r in
      (h, TPar (l, r, join))
    | _, TDone _ ->
      let h, l = step_one rng h l in
      (h, TPar (l, r, join))
    | _, _ ->
      if Random.State.bool rng then
        let h, l = step_one rng h l in
        (h, TPar (l, r, join))
      else
        let h, r = step_one rng h r in
        (h, TPar (l, r, join)))

(* Run a procedure call under a random schedule. *)
let run ?(seed = 1) (procs : program) ~proc ~(args : Value.t list)
    (heap : Heap.t) : Heap.t * Value.t =
  let rng = Random.State.make [| seed |] in
  let p = procs_find procs proc in
  if List.length args <> List.length p.p_params then
    error "%s: arity mismatch" proc;
  let env0 = List.map2 (fun (param, _) v -> (param, v)) p.p_params args in
  let task =
    exec procs env0 p.p_body
      ~kret:(fun v -> TDone v)
      ~knext:(fun _ -> TDone Value.unit)
  in
  schedule rng heap task
