(* Tokens of the surface language. *)

type t =
  | IDENT of string
  | INT of int
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_SKIP
  | KW_CAS
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | ARROW (* -> *)
  | LARROW (* <- *)
  | ASSIGN (* := *)
  | EQEQ (* == *)
  | BANG (* ! *)
  | ANDAND (* && *)
  | OROR (* || as boolean; also used for par in rhs position *)
  | DOT1 (* .1 *)
  | DOT2 (* .2 *)
  | EOF

let to_string = function
  | IDENT s -> Fmt.str "ident %S" s
  | INT n -> Fmt.str "int %d" n
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_RETURN -> "return"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_SKIP -> "skip"
  | KW_CAS -> "CAS"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | ARROW -> "->"
  | LARROW -> "<-"
  | ASSIGN -> ":="
  | EQEQ -> "=="
  | BANG -> "!"
  | ANDAND -> "&&"
  | OROR -> "||"
  | DOT1 -> ".1"
  | DOT2 -> ".2"
  | EOF -> "<eof>"
