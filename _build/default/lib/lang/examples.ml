(* Surface-language sources shipped with the library.  [span_source] is
   the program of the paper's Figure 1, in our concrete syntax. *)

let span_source =
  {|
span (x : ptr) : bool {
  if x == null then return false
  else {
    b <- CAS(x->m, false, true);
    if b then {
      (rl, rr) <- (span(x->l) || span(x->r));
      if !rl then x->l := null;
      if !rr then x->r := null;
      return true
    }
    else return false
  }
}
|}

(* A two-procedure program: mark both successors of a node in
   parallel. *)
let mark_children_source =
  {|
mark (x : ptr) : bool {
  if x == null then return false
  else {
    b <- CAS(x->m, false, true);
    return b
  }
}

mark_children (x : ptr) : bool {
  (rl, rr) <- (mark(x->l) || mark(x->r));
  return rl && rr
}
|}
