(* Recursive-descent parser for the FCSL surface language.  (Menhir is
   not available in the sealed build environment, so the grammar is
   implemented by hand over the ocamllex token stream; the grammar is
   LL with one backtracking point, the parenthesised parallel
   composition in bind position.) *)

open Ast

exception Parse_error of string

type state = { toks : Token.t array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Token.EOF

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Fmt.str "%s (at token %s, position %d)" msg
          (Token.to_string (peek st))
          st.pos))

let expect st tok =
  if peek st = tok then advance st
  else fail st (Fmt.str "expected %s" (Token.to_string tok))

let ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let field_of_ident st =
  match ident st with
  | "m" -> Mark
  | "l" -> Left
  | "r" -> Right
  | s -> fail st (Fmt.str "expected field m/l/r, got %s" s)

(* Expressions. *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OROR then begin
    advance st;
    Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Token.ANDAND then begin
    advance st;
    And (lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_unary st in
  if peek st = Token.EQEQ then begin
    advance st;
    Eq (lhs, parse_unary st)
  end
  else lhs

and parse_unary st =
  match peek st with
  | Token.BANG ->
    advance st;
    Not (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.ARROW ->
      advance st;
      go (Field (e, field_of_ident st))
    | Token.DOT1 ->
      advance st;
      go (Pair_fst e)
    | Token.DOT2 ->
      advance st;
      go (Pair_snd e)
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Token.KW_NULL ->
    advance st;
    Null
  | Token.KW_TRUE ->
    advance st;
    Bool true
  | Token.KW_FALSE ->
    advance st;
    Bool false
  | Token.INT n ->
    advance st;
    Int n
  | Token.IDENT s ->
    advance st;
    Var s
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | _ -> fail st "expected expression"

(* Right-hand sides of binds. *)

let rec parse_rhs st =
  match peek st with
  | Token.KW_CAS ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    let e, f =
      match e with
      | Field (b, f) -> (b, f)
      | _ -> fail st "CAS expects a field location"
    in
    expect st Token.COMMA;
    let old_v = parse_expr st in
    expect st Token.COMMA;
    let new_v = parse_expr st in
    expect st Token.RPAREN;
    Cas (e, f, old_v, new_v)
  | Token.IDENT _ when peek2 st = Token.LPAREN -> parse_call st
  | Token.LPAREN ->
    (* backtracking point: '(' rhs '||' rhs ')' is parallel composition;
       otherwise re-parse as an expression *)
    let saved = st.pos in
    advance st;
    (try
       let lhs = parse_rhs st in
       if peek st = Token.OROR then begin
         advance st;
         let rhs = parse_rhs st in
         expect st Token.RPAREN;
         Par (lhs, rhs)
       end
       else raise Exit
     with Exit | Parse_error _ ->
       st.pos <- saved;
       Expr (parse_expr st))
  | _ -> Expr (parse_expr st)

and parse_call st =
  let name = ident st in
  expect st Token.LPAREN;
  let rec args acc =
    if peek st = Token.RPAREN then List.rev acc
    else
      let a = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        args (a :: acc)
      end
      else List.rev (a :: acc)
  in
  let arguments = args [] in
  expect st Token.RPAREN;
  Call (name, arguments)

(* Statements and command sequences. *)

type stmt = Sbind of pattern * rhs | Splain of cmd

let rec parse_block st =
  if peek st = Token.LBRACE then begin
    advance st;
    let c = parse_cmd st in
    expect st Token.RBRACE;
    c
  end
  else
    match parse_stmt st with
    | Sbind (p, r) -> BindCmd (p, r, Skip)
    | Splain c -> c

and parse_stmt st : stmt =
  match peek st with
  | Token.KW_SKIP ->
    advance st;
    Splain Skip
  | Token.KW_RETURN ->
    advance st;
    Splain (Return (parse_expr st))
  | Token.KW_IF ->
    advance st;
    let cond = parse_expr st in
    expect st Token.KW_THEN;
    let then_branch = parse_block st in
    let else_branch =
      if peek st = Token.KW_ELSE then begin
        advance st;
        parse_block st
      end
      else Skip
    in
    Splain (If (cond, then_branch, else_branch))
  | Token.LPAREN
    when (match peek2 st with Token.IDENT _ -> true | _ -> false)
         && st.pos + 2 < Array.length st.toks
         && st.toks.(st.pos + 2) = Token.COMMA ->
    (* (a, b) <- rhs *)
    advance st;
    let a = ident st in
    expect st Token.COMMA;
    let b = ident st in
    expect st Token.RPAREN;
    expect st Token.LARROW;
    Sbind (Ppair (a, b), parse_rhs st)
  | Token.IDENT _ when peek2 st = Token.LARROW ->
    let x = ident st in
    expect st Token.LARROW;
    Sbind (Pvar x, parse_rhs st)
  | _ -> (
    (* assignment: expr -> field := expr *)
    let e = parse_expr st in
    match e with
    | Field (base, f) when peek st = Token.ASSIGN ->
      advance st;
      Splain (Assign (base, f, parse_expr st))
    | _ -> fail st "expected a statement")

and parse_cmd st : cmd =
  let s = parse_stmt st in
  let more =
    if peek st = Token.SEMI then begin
      advance st;
      match peek st with
      | Token.RBRACE | Token.EOF -> None
      | _ -> Some (parse_cmd st)
    end
    else None
  in
  match (s, more) with
  | Sbind (p, r), Some k -> BindCmd (p, r, k)
  | Sbind (p, r), None -> BindCmd (p, r, Skip)
  | Splain c, Some k -> Seq (c, k)
  | Splain c, None -> c

(* Procedures and programs. *)

let parse_proc st : proc =
  let name = ident st in
  expect st Token.LPAREN;
  let rec params acc =
    match peek st with
    | Token.RPAREN -> List.rev acc
    | Token.IDENT _ ->
      let p = ident st in
      expect st Token.COLON;
      let ty = ident st in
      if peek st = Token.COMMA then begin
        advance st;
        params ((p, ty) :: acc)
      end
      else List.rev ((p, ty) :: acc)
    | _ -> fail st "expected parameter"
  in
  let ps = params [] in
  expect st Token.RPAREN;
  expect st Token.COLON;
  let ret = ident st in
  expect st Token.LBRACE;
  let body = parse_cmd st in
  expect st Token.RBRACE;
  { p_name = name; p_params = ps; p_return = ret; p_body = body }

let parse_program_tokens toks : program =
  let st = { toks = Array.of_list toks; pos = 0 } in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc else go (parse_proc st :: acc)
  in
  go []

let parse_program (src : string) : program =
  parse_program_tokens (Lexer.tokenize src)

let parse_proc_string (src : string) : proc =
  match parse_program src with
  | [ p ] -> p
  | _ -> raise (Parse_error "expected exactly one procedure")
