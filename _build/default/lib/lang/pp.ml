(* Pretty-printer for the surface language, reproducing the layout of
   the paper's Figure 1.  Printing a parsed program and re-parsing it
   yields the same AST (the round-trip property tested in the suite). *)

open Ast

let rec pp_expr ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Var x -> Fmt.string ppf x
  | Field (e, f) -> Fmt.pf ppf "%a->%a" pp_atom e pp_field f
  | Eq (a, b) -> Fmt.pf ppf "%a == %a" pp_atom a pp_atom b
  | Not e -> Fmt.pf ppf "!%a" pp_atom e
  | And (a, b) -> Fmt.pf ppf "%a && %a" pp_atom a pp_atom b
  | Or (a, b) -> Fmt.pf ppf "%a || %a" pp_atom a pp_atom b
  | Pair_fst e -> Fmt.pf ppf "%a.1" pp_atom e
  | Pair_snd e -> Fmt.pf ppf "%a.2" pp_atom e

and pp_atom ppf e =
  match e with
  | Null | Bool _ | Int _ | Var _ | Field _ | Not _ | Pair_fst _ | Pair_snd _
    ->
    pp_expr ppf e
  | Eq _ | And _ | Or _ -> Fmt.pf ppf "(%a)" pp_expr e

let rec pp_rhs ppf = function
  | Expr e -> pp_expr ppf e
  | Cas (e, f, old_v, new_v) ->
    Fmt.pf ppf "CAS(%a->%a, %a, %a)" pp_atom e pp_field f pp_expr old_v
      pp_expr new_v
  | Call (name, args) ->
    Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp_expr) args
  | Par (a, b) -> Fmt.pf ppf "(%a || %a)" pp_rhs a pp_rhs b

let pp_pattern ppf = function
  | Pvar x -> Fmt.string ppf x
  | Ppair (a, b) -> Fmt.pf ppf "(%s, %s)" a b

let rec pp_cmd ppf = function
  | Skip -> Fmt.string ppf "skip"
  | Return e -> Fmt.pf ppf "return %a" pp_expr e
  | Seq (a, b) -> Fmt.pf ppf "%a;@ %a" pp_cmd a pp_cmd b
  | BindCmd (p, r, Skip) -> Fmt.pf ppf "%a <- %a" pp_pattern p pp_rhs r
  | BindCmd (p, r, k) ->
    Fmt.pf ppf "%a <- %a;@ %a" pp_pattern p pp_rhs r pp_cmd k
  | If (e, t, Skip) -> Fmt.pf ppf "if %a then %a" pp_expr e pp_block t
  | If (e, t, f) ->
    Fmt.pf ppf "if %a then %a@ else %a" pp_expr e pp_block t pp_block f
  | Assign (e, f, v) ->
    Fmt.pf ppf "%a->%a := %a" pp_atom e pp_field f pp_expr v

and pp_block ppf c =
  match c with
  | Skip | Return _ | Assign _ -> pp_cmd ppf c
  | If _ | Seq _ | BindCmd _ ->
    Fmt.pf ppf "{@;<1 2>@[<v>%a@]@ }" pp_cmd c

let pp_proc ppf p =
  let pp_param ppf (name, ty) = Fmt.pf ppf "%s : %s" name ty in
  Fmt.pf ppf "@[<v>%s (%a) : %s {@;<1 2>@[<v>%a@]@ }@]" p.p_name
    Fmt.(list ~sep:(any ", ") pp_param)
    p.p_params p.p_return pp_cmd p.p_body

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@ @ ") pp_proc) prog

let proc_to_string p = Fmt.str "%a" pp_proc p
let program_to_string p = Fmt.str "%a" pp_program p
