(* Lexer for the FCSL surface language (ocamllex; menhir is not
   available in the sealed environment, so parsing is recursive
   descent over this token stream — see DESIGN.md). *)

{
open Token

exception Error of string * int (* message, line *)

let line = ref 1
}

let ident = ['a'-'z' 'A'-'Z' '_'] ['a'-'z' 'A'-'Z' '0'-'9' '_' '\'']*
let digits = ['0'-'9']+

rule token = parse
  | [' ' '\t' '\r'] { token lexbuf }
  | '\n'            { incr line; token lexbuf }
  | "(*"            { comment 0 lexbuf }
  | "//" [^ '\n']*  { token lexbuf }
  | "->"            { ARROW }
  | "<-"            { LARROW }
  | ":="            { ASSIGN }
  | "=="            { EQEQ }
  | "&&"            { ANDAND }
  | "||"            { OROR }
  | ".1"            { DOT1 }
  | ".2"            { DOT2 }
  | "("             { LPAREN }
  | ")"             { RPAREN }
  | "{"             { LBRACE }
  | "}"             { RBRACE }
  | ","             { COMMA }
  | ";"             { SEMI }
  | ":"             { COLON }
  | "!"             { BANG }
  | "CAS"           { KW_CAS }
  | "if"            { KW_IF }
  | "then"          { KW_THEN }
  | "else"          { KW_ELSE }
  | "return"        { KW_RETURN }
  | "true"          { KW_TRUE }
  | "false"         { KW_FALSE }
  | "null"          { KW_NULL }
  | "skip"          { KW_SKIP }
  | digits as n     { INT (int_of_string n) }
  | ident as s      { IDENT s }
  | eof             { EOF }
  | _ as c          { raise (Error (Printf.sprintf "unexpected character %C" c, !line)) }

and comment depth = parse
  | "(*"  { comment (depth + 1) lexbuf }
  | "*)"  { if depth = 0 then token lexbuf else comment (depth - 1) lexbuf }
  | '\n'  { incr line; comment depth lexbuf }
  | eof   { raise (Error ("unterminated comment", !line)) }
  | _     { comment depth lexbuf }

{
let tokenize src =
  line := 1;
  let lexbuf = Lexing.from_string src in
  let rec go acc =
    match token lexbuf with
    | EOF -> List.rev (EOF :: acc)
    | t -> go (t :: acc)
  in
  go []
}
