lib/lang/examples.ml:
