lib/lang/pp.ml: Ast Fmt
