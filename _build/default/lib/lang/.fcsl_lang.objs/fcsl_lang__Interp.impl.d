lib/lang/interp.ml: Ast Fcsl_heap Fmt Heap List Option Ptr Random String Value
