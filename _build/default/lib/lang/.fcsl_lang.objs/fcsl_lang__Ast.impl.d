lib/lang/ast.ml: Fmt List String
