lib/lang/interp.mli: Ast Fcsl_heap Heap Value
