(** Recursive-descent parser for the FCSL surface language (menhir is
    unavailable in the sealed environment; the grammar is LL with one
    backtracking point, the parenthesised parallel composition). *)

exception Parse_error of string

val parse_program_tokens : Token.t list -> Ast.program
val parse_program : string -> Ast.program

val parse_proc_string : string -> Ast.proc
(** Raises {!Parse_error} unless the source holds exactly one
    procedure. *)
