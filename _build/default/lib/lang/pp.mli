(** Pretty-printer for the surface language, reproducing the layout of
    the paper's Figure 1.  Printing then re-parsing yields the same AST
    (up to sequencing normal form — see {!Ast.normalize}). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_rhs : Format.formatter -> Ast.rhs -> unit
val pp_pattern : Format.formatter -> Ast.pattern -> unit
val pp_cmd : Format.formatter -> Ast.cmd -> unit
val pp_proc : Format.formatter -> Ast.proc -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val proc_to_string : Ast.proc -> string
val program_to_string : Ast.program -> string
