(** A definitional interpreter for the surface language: programs run
    against a heap of graph nodes with a randomized interleaving
    scheduler.  Independent of the embedded DSL, so the two semantics
    can be tested against each other. *)

open Fcsl_heap

exception Runtime_error of string

val run :
  ?seed:int ->
  Ast.program ->
  proc:string ->
  args:Value.t list ->
  Heap.t ->
  Heap.t * Value.t
(** Run [proc] on [args] under one pseudo-random schedule; returns the
    final heap and the procedure's result.  Raises {!Runtime_error} on
    unbound procedures, arity mismatches, null dereferences and
    ill-typed field access. *)
