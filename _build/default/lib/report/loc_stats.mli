(** Line counting for the Table 1 reproduction: case-study sources carry
    the region markers [(*!Libs*)], [(*!Conc*)], [(*!Acts*)],
    [(*!Stab*)], [(*!Main*)], [(*!End*)]; a region runs to the next
    marker; counts are non-blank physical lines. *)

type component = Libs | Conc | Acts | Stab | Main

val components : component list
val component_name : component -> string

type counts = { libs : int; conc : int; acts : int; stab : int; main : int }

val zero : counts
val get : counts -> component -> int
val total : counts -> int
val add : counts -> counts -> counts

val repo_root : unit -> string option
(** Probe for dune-project upwards from cwd and the executable. *)

val count_file : string -> counts option
val count_whole : string -> component -> counts option
val counts_of_case : Registry.case -> counts
