(** The case-study registry: one entry per Table 1 row — where the
    implementation lives (line-count columns), which primitive
    concurroids it uses (Table 2), its dependencies (Figure 5), and how
    to verify it (the Build-time analogue). *)

open Fcsl_core

type concurroid_use =
  | Priv
  | CLock
  | TLock
  | Lock_interface  (** either lock, through the interface: "3L" *)
  | Read_pair
  | Treiber
  | Span_tree
  | Flat_combine

val pp_concurroid_use : Format.formatter -> concurroid_use -> unit

type case = {
  c_name : string;
  c_file : string;  (** tagged source file, relative to the repo root *)
  c_extra_libs : string list;  (** whole files counted as Libs *)
  c_uses : concurroid_use list;
  c_deps : string list;  (** Figure 5 edges *)
  c_verify : unit -> Verify.report list;
}

val all : case list
val find : string -> case option
val interface_edges : (string * string) list

val transitive_uses : case -> concurroid_use list
(** Direct usage plus what a case inherits through its dependencies
    (the paper's matrix is transitive). *)
