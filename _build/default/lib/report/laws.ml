(* The metatheory-law registry: every concurroid instance and every
   atomic action of the case-study suite, with their law checks — the
   obligations the FCSL metatheory imposes (paper, Sections 3.3 and
   3.4), runnable in one sweep from the CLI and the test suite. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

type entry = {
  l_name : string;
  l_check : unit -> string list; (* violation descriptions; [] = all laws hold *)
}

let concurroid_entry name c =
  {
    l_name = Fmt.str "concurroid %s" name;
    l_check =
      (fun () ->
        List.map
          (Fmt.str "%a" Concurroid.pp_violation)
          (Concurroid.check_laws c));
  }

let action_entry name w a ~states =
  {
    l_name = Fmt.str "action %s" name;
    l_check =
      (fun () ->
        List.map (Fmt.str "%a" Action.pp_violation)
          (Action.check_laws w a ~states));
  }

let counter_resource : Lock_intf.resource =
  {
    r_name = "counter";
    r_inv =
      (fun h total ->
        match (Heap.find (Ptr.of_int 50) h, Aux.as_nat total) with
        | Some v, Some n -> Value.equal v (Value.int n)
        | _ -> false);
    r_heaps =
      (fun () ->
        List.init 3 (fun n -> Heap.singleton (Ptr.of_int 50) (Value.int n)));
    r_ghosts = (fun () -> List.init 3 (fun n -> Aux.nat n));
  }

let all () : entry list =
  (* SpanTree *)
  let sp = Label.make "laws_span" in
  let span_c = Span.concurroid sp in
  let span_w = World.of_list [ span_c ] in
  let span_states =
    List.map (fun s -> State.singleton sp s) (Concurroid.enum span_c)
  in
  (* Priv *)
  let pv = Label.make "laws_priv" in
  let priv_c = Priv.make pv in
  (* CAS lock *)
  let cl = Label.make "laws_clock" in
  let ccfg = Caslock.default_config in
  let clock_c = Caslock.concurroid ~label:cl ccfg counter_resource in
  let clock_w = World.of_list [ clock_c ] in
  let clock_states =
    List.map (fun s -> State.singleton cl s) (Concurroid.enum clock_c)
  in
  (* Ticketed lock *)
  let tl = Label.make "laws_tlock" in
  let tcfg = Ticketlock.default_config in
  let tlock_c = Ticketlock.concurroid ~label:tl tcfg counter_resource in
  let tlock_w = World.of_list [ tlock_c ] in
  let tlock_states =
    List.map (fun s -> State.singleton tl s) (Concurroid.enum tlock_c)
  in
  (* Snapshot *)
  let sn = Label.make "laws_snapshot" in
  let snap_c = Snapshot.concurroid sn in
  let snap_w = World.of_list [ snap_c ] in
  let snap_states =
    List.map (fun s -> State.singleton sn s) (Concurroid.enum snap_c)
  in
  (* Treiber (entangled with Priv for the communicating push) *)
  let treiber_c = Treiber.concurroid (Label.make "laws_treiber") in
  let treiber_w = Treiber.world () in
  let treiber_states = Treiber.init_states () in
  (* Flat combiner *)
  let fc = Label.make "laws_fc" in
  let fc_c = Flatcombiner.concurroid Fc_stack.seq_stack Fc_stack.cfg fc in
  let fc_w = World.of_list [ fc_c ] in
  let fc_states =
    List.map (fun s -> State.singleton fc s) (Concurroid.enum fc_c)
  in
  [
    concurroid_entry "SpanTree" span_c;
    concurroid_entry "Priv" priv_c;
    concurroid_entry "CLock" clock_c;
    concurroid_entry "TLock" tlock_c;
    concurroid_entry "ReadPair" snap_c;
    concurroid_entry "Treiber" treiber_c;
    concurroid_entry "FlatCombine" fc_c;
    action_entry "trymark" span_w
      (Action.map ignore (Span.trymark sp (Ptr.of_int 1)))
      ~states:span_states;
    action_entry "read_child" span_w
      (Action.map ignore (Span.read_child sp (Ptr.of_int 1) Graph.Left))
      ~states:span_states;
    action_entry "nullify" span_w
      (Span.nullify sp (Ptr.of_int 1) Graph.Left)
      ~states:span_states;
    action_entry "try_lock" clock_w
      (Action.map ignore (Caslock.try_lock cl ccfg))
      ~states:clock_states;
    action_entry "cl_unlock" clock_w
      (Caslock.unlock_act cl ccfg counter_resource ~delta:(Aux.nat 1))
      ~states:clock_states;
    action_entry "take_ticket" tlock_w
      (Action.map ignore (Ticketlock.take_ticket tl tcfg))
      ~states:tlock_states;
    action_entry "tl_unlock" tlock_w
      (Ticketlock.unlock_act tl tcfg counter_resource ~delta:(Aux.nat 1))
      ~states:tlock_states;
    action_entry "write_x" snap_w
      (Snapshot.write_cell sn Snapshot.x_cell 1)
      ~states:snap_states;
    action_entry "read_cell" snap_w
      (Action.map ignore (Snapshot.read_cell sn Snapshot.x_cell))
      ~states:snap_states;
    action_entry "cas_push" treiber_w
      (Action.map ignore
         (Treiber.cas_push Treiber.tb_label Treiber.pv_label Treiber.node1 1
            Ptr.null))
      ~states:treiber_states;
    action_entry "cas_pop" treiber_w
      (Action.map ignore (Treiber.cas_pop Treiber.tb_label Treiber.node1 Ptr.null))
      ~states:treiber_states;
    action_entry "fc_apply" fc_w
      (Flatcombiner.apply_act Fc_stack.seq_stack Fc_stack.cfg fc 0)
      ~states:fc_states;
    action_entry "fc_claim" fc_w
      (Action.map ignore (Flatcombiner.claim_act Fc_stack.cfg fc ~slot:0))
      ~states:fc_states;
  ]

(* Run everything; true iff every law of every entry holds. *)
let run_all ?(pp = Fmt.pr) () : bool =
  List.fold_left
    (fun ok e ->
      match e.l_check () with
      | [] ->
        pp "  %-28s all laws hold@." e.l_name;
        ok
      | violations ->
        pp "  %-28s VIOLATIONS:@." e.l_name;
        List.iter (fun v -> pp "    %s@." v) violations;
        false)
    true (all ())
