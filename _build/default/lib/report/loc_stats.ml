(* Line counting for the Table 1 reproduction.  Case-study sources carry
   region markers on their own lines:

     (*!Libs*)  (*!Conc*)  (*!Acts*)  (*!Stab*)  (*!Main*)  (*!End*)

   A region runs from its marker to the next marker (or end of file);
   untagged text (module headers) is not counted.  Counts are non-blank
   physical lines, like coqwc's treatment in the paper. *)

type component = Libs | Conc | Acts | Stab | Main

let components = [ Libs; Conc; Acts; Stab; Main ]

let component_name = function
  | Libs -> "Libs"
  | Conc -> "Conc"
  | Acts -> "Acts"
  | Stab -> "Stab"
  | Main -> "Main"

type counts = {
  libs : int;
  conc : int;
  acts : int;
  stab : int;
  main : int;
}

let zero = { libs = 0; conc = 0; acts = 0; stab = 0; main = 0 }

let get c = function
  | Libs -> c.libs
  | Conc -> c.conc
  | Acts -> c.acts
  | Stab -> c.stab
  | Main -> c.main

let bump c n = function
  | Libs -> { c with libs = c.libs + n }
  | Conc -> { c with conc = c.conc + n }
  | Acts -> { c with acts = c.acts + n }
  | Stab -> { c with stab = c.stab + n }
  | Main -> { c with main = c.main + n }

let total c = c.libs + c.conc + c.acts + c.stab + c.main

let add a b =
  {
    libs = a.libs + b.libs;
    conc = a.conc + b.conc;
    acts = a.acts + b.acts;
    stab = a.stab + b.stab;
    main = a.main + b.main;
  }

(* Locate the repository root by probing for dune-project upwards from
   the working directory and from the executable's location. *)
let repo_root () =
  let exists_in dir = Sys.file_exists (Filename.concat dir "dune-project") in
  let rec up dir n =
    if n = 0 then None
    else if exists_in dir then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (n - 1)
  in
  match up (Sys.getcwd ()) 8 with
  | Some d -> Some d
  | None -> up (Filename.dirname Sys.executable_name) 8

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let marker_of line =
  match String.trim line with
  | "(*!Libs*)" -> Some (Some Libs)
  | "(*!Conc*)" -> Some (Some Conc)
  | "(*!Acts*)" -> Some (Some Acts)
  | "(*!Stab*)" -> Some (Some Stab)
  | "(*!Main*)" -> Some (Some Main)
  | "(*!End*)" -> Some None
  | _ -> None

let nonblank line = String.trim line <> ""

(* Count the tagged regions of one file. *)
let count_file path : counts option =
  match repo_root () with
  | None -> None
  | Some root ->
    let full = Filename.concat root path in
    if not (Sys.file_exists full) then None
    else
      let _, counts =
        List.fold_left
          (fun (current, counts) line ->
            match marker_of line with
            | Some next -> (next, counts)
            | None -> (
              match current with
              | Some comp when nonblank line -> (current, bump counts 1 comp)
              | _ -> (current, counts)))
          (None, zero) (read_lines full)
      in
      Some counts

(* Count a whole untagged file into one component. *)
let count_whole path comp : counts option =
  match repo_root () with
  | None -> None
  | Some root ->
    let full = Filename.concat root path in
    if not (Sys.file_exists full) then None
    else
      let n = List.length (List.filter nonblank (read_lines full)) in
      Some (bump zero n comp)

let counts_of_case (c : Registry.case) : counts =
  let base = Option.value (count_file c.c_file) ~default:zero in
  List.fold_left
    (fun acc f ->
      match count_whole f Libs with Some x -> add acc x | None -> acc)
    base c.c_extra_libs
