lib/report/registry.mli: Fcsl_core Format Verify
