lib/report/loc_stats.mli: Registry
