lib/report/tables.mli: Fcsl_core Format Loc_stats Registry
