lib/report/loc_stats.ml: Filename List Option Registry String Sys
