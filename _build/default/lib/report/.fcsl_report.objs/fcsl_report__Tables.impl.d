lib/report/tables.ml: Fcsl_core Fmt List Loc_stats Registry Stdlib String Unix Verify
