lib/report/registry.ml: Cg_alloc Cg_incr Fc_stack Fcsl_casestudies Fcsl_core Fmt List Snapshot Span Stack_clients State Stdlib String Treiber Treiber_alloc Verify
