(* Coarse-grained concurrent increment (paper, Section 6, Table 1 row
   "CG increment"): the classic subjective-auxiliary-state example of
   Ley-Wild & Nanevski.  A shared counter cell protected by a lock; the
   client ghost PCM is natural numbers under addition; the resource
   invariant ties the counter's value to the total contribution.

   The whole client is a functor over the abstract lock interface — the
   same code and spec are verified against the CAS lock and the ticketed
   lock (Table 2's "3L" interchangeability); no new concurroid, actions
   or stability lemmas are needed (the "-" entries of Table 1). *)

open Fcsl_heap
open Fcsl_core
open Lock_intf
module Aux = Fcsl_pcm.Aux

module Make (L : LOCK) = struct
  (*!Main*)
  let x_cell = Ptr.of_int 50

  (* I(h, total): the counter holds exactly the total contribution. *)
  let resource =
    {
      r_name = "counter";
      r_inv =
        (fun h total ->
          match (Heap.find x_cell h, Aux.as_nat total) with
          | Some v, Some n -> Value.equal v (Value.int n)
          | _ -> false);
      r_heaps =
        (fun () ->
          List.init 4 (fun n -> Heap.singleton x_cell (Value.int n)));
      r_ghosts = (fun () -> List.init 4 (fun n -> Aux.nat n));
    }

  let cfg = L.default_config
  let concurroid ~label = L.concurroid ~label cfg resource

  (* incr: lock; x := !x + n; unlock crediting n. *)
  let incr l ?(n = 1) () : unit Prog.t =
    let open Prog in
    let* () = L.lock l cfg in
    let* v = act (L.read l cfg x_cell) in
    let v = Option.value (Value.as_int v) ~default:0 in
    let* () = act (L.write l cfg x_cell (Value.int (v + n))) in
    L.unlock l cfg resource ~delta:(Aux.nat n)

  (* The subjective spec: my contribution grows by exactly n, no matter
     what the other threads add. *)
  let incr_spec l ?(n = 1) () : unit Spec.t =
    Spec.make
      ~name:(Fmt.str "%s_incr(+%d)" L.impl_name n)
      ~pre:(fun st ->
        (not (L.holds cfg l st)) && Aux.is_unit (L.self_ghost cfg l st))
      ~post:(fun () _i f ->
        Aux.as_nat (L.self_ghost cfg l f) = Some n && not (L.holds cfg l f))

  (* Two parallel increments: contributions add up. *)
  let incr_pair l : (unit * unit) Prog.t = Prog.par (incr l ()) (incr l ())

  let incr_pair_spec l : (unit * unit) Spec.t =
    Spec.make
      ~name:(Fmt.str "%s_incr||incr" L.impl_name)
      ~pre:(fun st ->
        (not (L.holds cfg l st)) && Aux.is_unit (L.self_ghost cfg l st))
      ~post:(fun ((), ()) _i f -> Aux.as_nat (L.self_ghost cfg l f) = Some 2)

  let label = Label.make (L.impl_name ^ "_incr")

  let world () = World.of_list [ concurroid ~label ]

  let init_states () =
    List.map (fun s -> State.singleton label s) (Concurroid.enum (concurroid ~label))

  (* With full interference the environment may hold the lock
     indefinitely, so some schedules are fuel-cut; the verifier treats
     them as partial-correctness divergence, and every terminating path
     must satisfy the spec. *)
  let verify ?(fuel = 16) ?(env_budget = 2) ?(max_outcomes = 400_000) () :
      Verify.report list =
    let w = world () in
    let init = init_states () in
    [
      Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
        (incr label ()) (incr_spec label ());
      Verify.check_triple ~fuel ~env_budget:(env_budget - 1) ~max_outcomes
        ~world:w ~init (incr_pair label) (incr_pair_spec label);
    ]
  (*!End*)
end

module Cas = Make (Caslock)
module Ticketed = Make (Ticketlock)
