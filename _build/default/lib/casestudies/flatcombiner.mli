(** The flat combiner of Hendler et al. (paper, Section 4.2): a
    universal construction turning a sequential object into a concurrent
    one via publication slots and a combiner lock — the helping pattern.

    Ascription works as in FCSL: the combiner stamps a helped
    operation's history entry into the *joint auxiliary* pending map
    (one cell per slot); the requester later claims it into its own
    [self] history.  Slot ownership is a token in the owner's self, so
    effects cannot be stolen. *)

open Fcsl_heap
open Fcsl_core
module Aux := Fcsl_pcm.Aux
module Mutex := Fcsl_pcm.Instances.Mutex
module Hist := Fcsl_pcm.Hist

(** The sequential object a flat combiner wraps. *)
type seq_object = {
  so_name : string;
  so_init : Value.t;
  so_apply : string -> Value.t -> Value.t -> (Value.t * Value.t) option;
      (** op -> arg -> state -> (result, new state) *)
  so_ops : (string * Value.t list) list;
      (** operation/argument universe, for transition enumeration *)
}

type config = { lk : Ptr.t; slots : Ptr.t list; obj : Ptr.t }

val default_config : config

(** {1 Slot encoding and ghost projections} *)

val slot_empty : Value.t
val slot_request : int -> Value.t -> Value.t
val slot_done : Value.t -> Value.t
val decode_slot :
  Value.t -> [ `Empty | `Request of int * Value.t | `Done of Value.t ] option
val op_code : seq_object -> string -> int option
val op_of_code : seq_object -> int -> string option

val split_aux : Aux.t -> (Mutex.t * Ptr.Set.t * Hist.t) option
(** self = (combiner mutex, (slot tokens, claimed history)). *)

val pack_aux : Mutex.t -> Ptr.Set.t -> Hist.t -> Aux.t
val pendings_of : config -> Aux.t -> Hist.t list option
val pack_pendings : Hist.t list -> Aux.t
val pending_at : config -> Aux.t -> int -> Hist.t option
val lock_bit : config -> Heap.t -> bool option
val slot_state :
  config -> Heap.t -> int ->
  [ `Empty | `Request of int * Value.t | `Done of Value.t ] option
val obj_state : config -> Heap.t -> Value.t option

val replay : seq_object -> Hist.t -> Value.t option
(** Replay the combined history through the sequential object. *)

(** {1 The FlatCombine concurroid} *)

val coh : seq_object -> config -> Slice.t -> bool
val pass_finished : config -> Slice.t -> bool
(** A combiner releases only when no slot is applied-but-unresponded. *)

val base_slice : seq_object -> config -> Slice.t
val transitions : seq_object -> config -> Concurroid.transition list
val enum : seq_object -> config -> ?depth:int -> unit -> Slice.t list
val concurroid : seq_object -> config -> ?depth:int -> Label.t -> Concurroid.t

(** {1 Actions} *)

val publish_act :
  seq_object -> config -> Label.t -> slot:int -> string -> Value.t ->
  unit Action.t

val poll_act :
  config -> Label.t -> slot:int -> [ `Done of Value.t | `Pending ] Action.t
(** Blocks until either the result is ready or the combiner lock is
    free. *)

val try_lock_act : config -> Label.t -> bool Action.t
val unlock_act : config -> Label.t -> unit Action.t

val read_slot_act :
  config -> Label.t -> int ->
  [ `Empty | `Request of int * Value.t | `Done of Value.t ] Action.t

val apply_act : seq_object -> config -> Label.t -> int -> unit Action.t
(** Execute slot [i]'s request — the helped linearization point. *)

val respond_act : config -> Label.t -> int -> unit Action.t

val claim_act : config -> Label.t -> slot:int -> Value.t Action.t
(** Collect the result and the ascribed history entry. *)

(** {1 Stability lemmas} *)

val assert_token : Label.t -> config -> slot:int -> State.t -> bool
val assert_done_preserved :
  Label.t -> config -> slot:int -> Value.t -> State.t -> bool
val assert_hist_owned : Label.t -> Hist.t -> State.t -> bool

(** {1 The construction} *)

val combine_slot : seq_object -> config -> Label.t -> int -> unit Prog.t

val flat_combine :
  seq_object -> config -> Label.t -> slot:int -> string -> Value.t ->
  Value.t Prog.t
(** Publish; then either collect a helped result or become the combiner
    and run everybody's requests. *)

val flat_combine_spec :
  seq_object -> config -> Label.t -> slot:int -> string -> Value.t ->
  Value.t Spec.t
(** The paper's Section 4.2 spec (weak form): from an empty self
    history, the call returns [w] with exactly one entry (op, arg, w)
    ascribed — regardless of who executed it. *)
