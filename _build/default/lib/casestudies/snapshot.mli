(** The atomic pair snapshot (paper, Section 6): two versioned cells;
    [read_pair] double-collects with a version re-check.  Specs via
    time-stamped histories: the returned pair occurs as a simultaneous
    state between call and return. *)

open Fcsl_heap
open Fcsl_core
module Hist := Fcsl_pcm.Hist

val x_cell : Ptr.t
val y_cell : Ptr.t
val value_domain : int list
val cell_of : Heap.t -> Ptr.t -> (int * int) option
(** (value, version). *)

val pack_cell : int -> int -> Value.t
val pair_state : int -> int -> Value.t
val entry_pair : Hist.entry -> (int * int) option
val writes_to : string -> Hist.t -> int

(** {1 The ReadPair concurroid} *)

val coh : Slice.t -> bool
val write_x_tr : Concurroid.transition
val write_y_tr : Concurroid.transition
val enum : ?depth:int -> unit -> Slice.t list
val concurroid : ?depth:int -> Label.t -> Concurroid.t

(** {1 Actions} *)

val read_cell : Label.t -> Ptr.t -> (int * int) Action.t
val write_cell : Label.t -> Ptr.t -> int -> unit Action.t
(** Versioned write: bumps the version and stamps the produced pair. *)

(** {1 Stability lemmas (the version-check argument)} *)

val assert_version_at_least : Label.t -> Ptr.t -> int -> State.t -> bool
val assert_version_pins : Label.t -> Ptr.t -> int * int -> State.t -> bool
val assert_hist_extends : Label.t -> Hist.t -> State.t -> bool

(** {1 Programs and specs} *)

val read_pair : Label.t -> (int * int) Prog.t
val read_pair_unchecked : Label.t -> (int * int) Prog.t
(** The injected bug: no version re-check.  Must be refuted. *)

val read_pair_spec : Label.t -> (int * int) Spec.t
val write_spec : Label.t -> Ptr.t -> int -> unit Spec.t

(** {1 Verification drivers} *)

val sp_label : Label.t
val world : unit -> World.t
val init_states : unit -> State.t list

val verify :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit ->
  Verify.report list

val refute_unchecked : ?fuel:int -> ?env_budget:int -> unit -> Verify.report
