(* The flat-combining stack (paper, Sections 4.2 and 6, Table 1 row
   "FC-stack"): the flat combiner instantiated with a sequential stack.
   The headline result: [flat_combine push/pop] satisfies the same
   subjective-history spec shape as the Treiber stack's operations —
   clients cannot tell a helping-based stack from a CAS-based one. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex
module Hist = Fcsl_pcm.Hist
module Fc = Flatcombiner

(*!Main*)
(* The sequential stack as a [seq_object]: its abstract state is the
   encoded value list stored in one cell. *)
let rec encode = function
  | [] -> Value.Unit
  | v :: rest -> Value.Pair (Value.int v, encode rest)

let seq_stack : Fc.seq_object =
  {
    so_name = "stack";
    so_init = Value.Unit;
    so_apply =
      (fun op arg state ->
        match op with
        | "push" -> Some (Value.unit, Value.Pair (arg, state))
        | "pop" -> (
          match state with
          | Value.Pair (v, rest) -> Some (v, rest)
          | Value.Unit -> Some (Value.int (-1), Value.Unit) (* empty marker *)
          | _ -> None)
        | _ -> None);
    so_ops = [ ("push", [ Value.int 1; Value.int 2 ]); ("pop", [ Value.unit ]) ];
  }

let cfg = Fc.default_config
let fc_label = Label.make "flatcombine"

let concurroid ?(depth = 2) () = Fc.concurroid seq_stack cfg ~depth fc_label

let fc_push ~slot v : Value.t Prog.t =
  Fc.flat_combine seq_stack cfg fc_label ~slot "push" (Value.int v)

let fc_pop ~slot : Value.t Prog.t =
  Fc.flat_combine seq_stack cfg fc_label ~slot "pop" Value.unit

(* Verification drivers. *)

let world ?(depth = 2) () = World.of_list [ concurroid ~depth () ]

(* Initial states: my thread owns [slot]; the environment owns the rest.
   Drawn from the concurroid's reachable enumeration, filtered to the
   spec's preconditions. *)
let init_states ?(depth = 1) () =
  List.map
    (fun s -> State.singleton fc_label s)
    (Fc.enum seq_stack cfg ~depth ())

let verify ?(fuel = 28) ?(env_budget = 3) ?(max_outcomes = 600_000) () :
    Verify.report list =
  let w = world () in
  let init = init_states ~depth:2 () in
  [
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (fc_push ~slot:0 1)
      (Fc.flat_combine_spec seq_stack cfg fc_label ~slot:0 "push" (Value.int 1));
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (fc_pop ~slot:0)
      (Fc.flat_combine_spec seq_stack cfg fc_label ~slot:0 "pop" Value.unit);
  ]

(* Two clients, one per slot, running in parallel: both histories end up
   correctly ascribed even though one thread may combine for both. *)
let verify_pair ?(fuel = 34) ?(env_budget = 1) ?(max_outcomes = 600_000) () :
    Verify.report =
  let w = world () in
  let init = init_states () in
  let split : Prog.split =
   fun mine ->
    match Fc.split_aux (Contrib.get fc_label mine) with
    | Some (Mutex.Not_own, tokens, hist)
      when Ptr.Set.equal tokens (Ptr.Set.of_list cfg.slots) ->
      let s0 = List.nth cfg.slots 0 and s1 = List.nth cfg.slots 1 in
      Some
        ( Contrib.set fc_label
            (Fc.pack_aux Mutex.Not_own Ptr.Set.empty hist)
            mine,
          Contrib.set fc_label
            (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s0) Hist.empty)
            Contrib.empty,
          Contrib.set fc_label
            (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s1) Hist.empty)
            Contrib.empty )
    | _ -> None
  in
  let spec =
    Spec.make ~name:"fc_push || fc_pop"
      ~pre:(fun st ->
        match State.find fc_label st with
        | Some s -> (
          match Fc.split_aux (Slice.self s) with
          | Some (Mutex.Not_own, tokens, hist) ->
            Ptr.Set.equal tokens (Ptr.Set.of_list cfg.slots)
            && Hist.is_empty hist
            && Fc.slot_state cfg (Slice.joint s) 0 = Some `Empty
            && Fc.slot_state cfg (Slice.joint s) 1 = Some `Empty
          | _ -> false)
        | None -> false)
      ~post:(fun (_, _) _i f ->
        match State.find fc_label f with
        | Some s -> (
          match Fc.split_aux (Slice.self s) with
          | Some (_, _, hist) ->
            let ops = List.map (fun e -> e.Hist.op) (Hist.entries hist) in
            List.sort String.compare ops = [ "pop"; "push" ]
          | None -> false)
        | None -> false)
  in
  Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
    (Prog.par_split split (fc_push ~slot:0 1) (fc_pop ~slot:1))
    spec
(*!End*)
