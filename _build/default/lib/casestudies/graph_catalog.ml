(* A catalogue of small heap-represented graphs used as verification
   universes: exhaustive model checking runs over every shape, every
   marking and every subjective split.  Includes the five-node graph of
   the paper's Figure 2. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

let p n = Ptr.of_int n

(* Named shapes as (node, left, right) adjacency rows. *)
let shapes_small : (string * (Ptr.t * Ptr.t * Ptr.t) list) list =
  [
    ("single", [ (p 1, Ptr.null, Ptr.null) ]);
    ("self-loop", [ (p 1, p 1, Ptr.null) ]);
    ("edge", [ (p 1, p 2, Ptr.null); (p 2, Ptr.null, Ptr.null) ]);
    ("pair-cycle", [ (p 1, p 2, Ptr.null); (p 2, p 1, Ptr.null) ]);
    ( "fork",
      [
        (p 1, p 2, p 3);
        (p 2, Ptr.null, Ptr.null);
        (p 3, Ptr.null, Ptr.null);
      ] );
    ( "chain3",
      [ (p 1, p 2, Ptr.null); (p 2, p 3, Ptr.null); (p 3, Ptr.null, Ptr.null) ]
    );
    ( "diamondish",
      (* both parents point at the same child: the racy redundant edge *)
      [ (p 1, p 2, p 3); (p 2, p 3, Ptr.null); (p 3, Ptr.null, Ptr.null) ] );
    ( "cycle3",
      [ (p 1, p 2, Ptr.null); (p 2, p 3, Ptr.null); (p 3, p 1, Ptr.null) ] );
    ( "dag3",
      [ (p 1, p 2, p 3); (p 2, p 3, p 3); (p 3, Ptr.null, Ptr.null) ] );
  ]

(* The graph of Figure 2: a -> {b, c}, b -> {d, e}, c -> {e, c},
   with a self-loop on c and the shared node e.  Pointers: a=1 b=2 c=3
   d=4 e=5. *)
let fig2_nodes = [ ("a", p 1); ("b", p 2); ("c", p 3); ("d", p 4); ("e", p 5) ]

let fig2 : (Ptr.t * Ptr.t * Ptr.t) list =
  [
    (p 1, p 2, p 3);
    (p 2, p 4, p 5);
    (p 3, p 5, p 3);
    (p 4, Ptr.null, Ptr.null);
    (p 5, Ptr.null, Ptr.null);
  ]

let graph_of rows = Graph.of_adjacency_exn rows

let fig2_graph () = graph_of fig2

(* All subsets of a list. *)
let subsets xs =
  List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] xs

(* All markings of a shape: mark the nodes of each subset. *)
let markings rows =
  let g = graph_of rows in
  List.map
    (fun subset ->
      let g' = List.fold_left Graph.mark_node g subset in
      (Ptr.Set.of_list subset, g'))
    (subsets (Graph.dom g))

(* All subjective slices of a marked graph: every split of the marked
   set into self/other. *)
let slices_of_marked (marked, g) =
  List.filter_map
    (fun (a, b) ->
      match (a, b) with
      | Aux.Set s, Aux.Set o ->
        Some
          (Fcsl_core.Slice.make ~self:(Aux.set s) ~joint:(Graph.to_heap g)
             ~other:(Aux.set o))
      | _ -> None)
    (Aux.splits (Aux.set marked))

(* Every slice over the catalogue's shapes (bounded): the SpanTree
   verification universe. *)
let all_slices ?(max_nodes = 3) () =
  shapes_small
  |> List.filter (fun (_, rows) -> List.length rows <= max_nodes)
  |> List.concat_map (fun (_, rows) ->
         List.concat_map slices_of_marked (markings rows))

(* Unmarked initial graphs (per shape), for triple checking. *)
let initial_graphs ?(max_nodes = 3) () =
  shapes_small
  |> List.filter (fun (_, rows) -> List.length rows <= max_nodes)
  |> List.map (fun (name, rows) -> (name, graph_of rows))

(* Random graph over [n] nodes, for property tests and scaling benches:
   each successor is null or a uniformly chosen node. *)
let random_graph ~rng n =
  let pick () =
    let k = Random.State.int rng (n + 1) in
    if k = 0 then Ptr.null else p k
  in
  let rows = List.init n (fun i -> (p (i + 1), pick (), pick ())) in
  graph_of rows

(* A random graph guaranteed connected from node 1: build a random
   spanning skeleton first, then add noise edges. *)
let random_connected_graph ~rng n =
  if n < 1 then invalid_arg "random_connected_graph: n >= 1";
  let parent = Array.make (n + 1) 0 in
  for i = 2 to n do
    parent.(i) <- 1 + Random.State.int rng (i - 1)
  done;
  (* children lists from the skeleton; a node has at most 2 children, so
     hang extra children by chaining through the left slot's subtree. *)
  let left = Array.make (n + 1) 0 and right = Array.make (n + 1) 0 in
  let attach child =
    (* walk up/down to find a node with a free slot, starting at the
       skeleton parent; fall back to scanning. *)
    let rec find i =
      if left.(i) = 0 then left.(i) <- child
      else if right.(i) = 0 then right.(i) <- child
      else find left.(i)
    in
    find parent.(child)
  in
  for i = 2 to n do
    attach i
  done;
  let rows =
    List.init n (fun i ->
        let x = i + 1 in
        let l = if left.(x) = 0 then Ptr.null else p left.(x) in
        let r =
          if right.(x) = 0 then
            (* noise edge: points anywhere, or stays null *)
            let k = Random.State.int rng (n + 1) in
            if k = 0 then Ptr.null else p k
          else p right.(x)
        in
        (p x, l, r))
  in
  graph_of rows
