lib/casestudies/treiber_alloc.mli: Fcsl_core Label Prog Spec State Verify World
