lib/casestudies/stack_clients.mli: Fcsl_core Fcsl_heap Heap Label Prog Ptr Spec State Verify World
