lib/casestudies/stack_clients.ml: Fcsl_core Fcsl_heap Fcsl_pcm Heap Int Label List Priv Prog Ptr Slice Spec State Treiber Value Verify World
