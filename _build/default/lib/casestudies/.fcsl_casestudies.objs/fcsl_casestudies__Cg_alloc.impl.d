lib/casestudies/cg_alloc.ml: Action Caslock Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap Label List Lock_intf Option Priv Prog Ptr Slice Spec State Ticketlock Value Verify World
