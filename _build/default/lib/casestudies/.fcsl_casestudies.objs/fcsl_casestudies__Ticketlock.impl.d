lib/casestudies/ticketlock.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap List Lock_intf Option Prog Ptr Slice State Value
