lib/casestudies/lock_intf.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap Label List Prog Ptr Slice State Value
