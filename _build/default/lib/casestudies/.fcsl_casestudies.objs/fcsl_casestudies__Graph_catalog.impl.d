lib/casestudies/graph_catalog.ml: Array Fcsl_core Fcsl_heap Fcsl_pcm Graph List Ptr Random
