lib/casestudies/treiber.mli: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Heap Label Prog Ptr Slice Spec State Value Verify World
