lib/casestudies/snapshot.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap Label List Option Prog Ptr Slice Spec State String Value Verify World
