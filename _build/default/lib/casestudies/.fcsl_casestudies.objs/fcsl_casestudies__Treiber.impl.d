lib/casestudies/treiber.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap Label List Option Priv Prog Ptr Slice Spec State String Value Verify World
