lib/casestudies/flatcombiner.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Fun Heap List Option Prog Ptr Slice Spec State String Value
