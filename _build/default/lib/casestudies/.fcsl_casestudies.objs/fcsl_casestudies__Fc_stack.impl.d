lib/casestudies/fc_stack.ml: Contrib Fcsl_core Fcsl_heap Fcsl_pcm Flatcombiner Label List Prog Ptr Slice Spec State String Value Verify World
