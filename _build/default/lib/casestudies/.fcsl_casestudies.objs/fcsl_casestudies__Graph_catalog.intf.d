lib/casestudies/graph_catalog.mli: Fcsl_core Fcsl_heap Graph Ptr Random
