lib/casestudies/span.mli: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Graph Label Prog Ptr Slice Spec State Verify World
