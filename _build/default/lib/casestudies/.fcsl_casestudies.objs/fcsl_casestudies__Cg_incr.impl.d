lib/casestudies/cg_incr.ml: Caslock Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Heap Label List Lock_intf Option Prog Ptr Spec State Ticketlock Value Verify World
