lib/casestudies/ticketlock.mli: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Heap Label Lock_intf Prog Ptr Slice State Value
