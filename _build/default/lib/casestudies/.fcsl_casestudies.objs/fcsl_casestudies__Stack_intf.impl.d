lib/casestudies/stack_intf.ml: Fc_stack Fcsl_core Fcsl_heap Fcsl_pcm Flatcombiner Fmt Heap List Prog Ptr Slice Spec State String Treiber Value Verify World
