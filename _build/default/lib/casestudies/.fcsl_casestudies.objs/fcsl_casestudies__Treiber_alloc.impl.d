lib/casestudies/treiber_alloc.ml: Caslock Cg_alloc Fcsl_core Fcsl_heap Fcsl_pcm Fmt Label List Option Priv Prog Spec State String Treiber Value Verify World
