lib/casestudies/span.ml: Action Concurroid Fcsl_core Fcsl_heap Fcsl_pcm Fmt Graph Graph_catalog Heap Label List Option Priv Prog Ptr Slice Spec State Value Verify World
