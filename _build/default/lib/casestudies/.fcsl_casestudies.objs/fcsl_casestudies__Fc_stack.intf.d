lib/casestudies/fc_stack.mli: Concurroid Fcsl_core Fcsl_heap Flatcombiner Label Prog State Value Verify World
