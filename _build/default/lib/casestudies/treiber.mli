(** Treiber's non-blocking stack (paper, Section 6): a [top] pointer
    CAS-swung over a linked list of nodes; popped nodes are retired in
    place (that is what rules out ABA).  Specs use the PCM of
    time-stamped histories: every successful push/pop stamps an entry
    owned by the performing thread; coherence forces the combined
    history to be a legal LIFO run matching the physical list. *)

open Fcsl_heap
open Fcsl_core
module Hist := Fcsl_pcm.Hist

(** {1 Physical and abstract shapes} *)

val top_cell : Ptr.t
val env_node_cells : Ptr.t list
(** Pointers the environment uses for its own pushes during
    interference. *)

val encode_stack : int list -> Value.t
val decode_stack : Value.t -> int list option
val node_of : Heap.t -> Ptr.t -> (int * Ptr.t) option
val pack_node : int -> Ptr.t -> Value.t
val list_from : Heap.t -> Ptr.t -> (Ptr.t * int) list option
val top_of : Heap.t -> Ptr.t option

val contents : Heap.t -> int list option
(** The abstract stack: the values along the list from [top]. *)

val replay : Hist.t -> int list option
(** Replay a history from the empty stack, checking LIFO legality;
    [Some final_contents] iff legal. *)

val hist_of : Fcsl_pcm.Aux.t -> Hist.t option

(** {1 The Treiber concurroid} *)

val coh : Slice.t -> bool
val push_tr : Concurroid.transition
(** External transition: the environment publishes a node from its own
    pool. *)

val pop_tr : Concurroid.transition
val enum : ?depth:int -> unit -> Slice.t list
val concurroid : ?depth:int -> Label.t -> Concurroid.t

(** {1 Atomic actions} *)

val read_top : Label.t -> Ptr.t Action.t
val read_top_nonempty : Label.t -> Ptr.t Action.t
(** Blocking variant for consumers awaiting an element. *)

val read_node : Label.t -> Ptr.t -> (int * Ptr.t) Action.t
(** Reading retired nodes is safe — nodes are never deallocated. *)

val set_node : Label.t -> Ptr.t -> int -> Ptr.t -> unit Action.t
(** Prepare a private cell as a node (Priv business). *)

val cas_push : Label.t -> Label.t -> Ptr.t -> int -> Ptr.t -> bool Action.t
(** The publishing CAS; on success the node migrates from the private
    heap into the stack (communicating action) and the push is
    stamped. *)

val cas_pop : Label.t -> Ptr.t -> Ptr.t -> bool Action.t

(** {1 Stability lemmas} *)

val assert_node_pinned : Label.t -> Ptr.t -> int * Ptr.t -> State.t -> bool
val assert_hist_owned : Label.t -> Hist.t -> State.t -> bool
val assert_ts_at_least : Label.t -> int -> State.t -> bool

(** {1 Programs and specs} *)

val push : Label.t -> Label.t -> Ptr.t -> int -> unit Prog.t
(** Retry loop; retries are bounded by interference (lock-freedom). *)

val pop : Label.t -> int option Prog.t
val pop_wait : Label.t -> int Prog.t
val self_hist : Label.t -> State.t -> Hist.t
val total_hist : Label.t -> State.t -> Hist.t
val push_spec : Label.t -> Label.t -> Ptr.t -> int -> unit Spec.t
val pop_spec : Label.t -> int option Spec.t

(** {1 Verification drivers} *)

val tb_label : Label.t
val pv_label : Label.t
val priv_enum : unit -> Slice.t list
val world : ?depth:int -> unit -> World.t
val init_states : ?depth:int -> unit -> State.t list
val node1 : Ptr.t
val node2 : Ptr.t

val verify :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit ->
  Verify.report list

val verify_push_pop :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit -> Verify.report
