(** Small heap-represented graphs used as verification universes, plus
    random-graph generators for property tests and benches.  Includes
    the five-node graph of the paper's Figure 2. *)

open Fcsl_heap

val shapes_small : (string * (Ptr.t * Ptr.t * Ptr.t) list) list
val fig2_nodes : (string * Ptr.t) list
val fig2 : (Ptr.t * Ptr.t * Ptr.t) list
val graph_of : (Ptr.t * Ptr.t * Ptr.t) list -> Graph.t
val fig2_graph : unit -> Graph.t
val subsets : 'a list -> 'a list list
val markings : (Ptr.t * Ptr.t * Ptr.t) list -> (Ptr.Set.t * Graph.t) list

val slices_of_marked : Ptr.Set.t * Graph.t -> Fcsl_core.Slice.t list
(** Every subjective split of a marked graph. *)

val all_slices : ?max_nodes:int -> unit -> Fcsl_core.Slice.t list
(** The SpanTree verification universe. *)

val initial_graphs : ?max_nodes:int -> unit -> (string * Graph.t) list

val random_graph : rng:Random.State.t -> int -> Graph.t
val random_connected_graph : rng:Random.State.t -> int -> Graph.t
(** Connected from node 1: a random spanning skeleton plus noise
    edges. *)
