(** The paper's full Treiber-stack configuration (Table 2): node cells
    come from the lock-based CG allocator, so a push runs in the
    entangled world [Priv ⋈ ALock ⋈ Treiber] and the stack inherits the
    abstract-lock dependency of Figure 5. *)

open Fcsl_core

val pv_label : Label.t
val al_label : Label.t
val tb_label : Label.t

val push_fresh : int -> unit Prog.t
(** Allocate a node cell, then push through it. *)

val push_fresh_spec : int -> unit Spec.t
val world : unit -> World.t
val init_states : unit -> State.t list

val verify :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit ->
  Verify.report list
