(** The CAS-based spinlock (paper, Section 6): one boolean cell;
    self = (mutual-exclusion PCM, client ghost).  Implements the
    abstract lock interface {!Lock_intf.LOCK}. *)

open Fcsl_heap
open Fcsl_core
module Aux := Fcsl_pcm.Aux
module Mutex := Fcsl_pcm.Instances.Mutex

val impl_name : string

type config = { lk : Ptr.t }

val default_config : config
val config_cells : config -> Ptr.t list

(** {1 State shape} *)

val lock_bit : config -> Heap.t -> bool option
val protected_heap : config -> Heap.t -> Heap.t
val split_aux : Aux.t -> (Mutex.t * Aux.t) option
val mutex_of : Aux.t -> Mutex.t option
val ghost_of : Aux.t -> Aux.t option
val pack_aux : Mutex.t -> Aux.t -> Aux.t
val holds : config -> Label.t -> State.t -> bool
val self_ghost : config -> Label.t -> State.t -> Aux.t

(** {1 The CLock concurroid} *)

val coh : config -> Lock_intf.resource -> Slice.t -> bool
val lock_tr : config -> Concurroid.transition
val unlock_tr : config -> Lock_intf.resource -> Concurroid.transition
val mutate_tr : config -> Lock_intf.resource -> Concurroid.transition
val enum : config -> Lock_intf.resource -> unit -> Slice.t list
val concurroid : label:Label.t -> config -> Lock_intf.resource -> Concurroid.t

(** {1 Actions} *)

val try_lock : ?await:bool -> Label.t -> config -> bool Action.t
(** Erases to CAS(lk, false, true).  With [await], only scheduled when
    it will succeed — the blocking reduction of the spin loop. *)

val unlock_act :
  Label.t -> config -> Lock_intf.resource -> delta:Aux.t -> unit Action.t
(** Requires the invariant restored for the total ghost plus [delta],
    which is credited to the caller. *)

val read : Label.t -> config -> Ptr.t -> Value.t Action.t
val write : Label.t -> config -> Ptr.t -> Value.t -> unit Action.t

(** {1 Stability lemmas} *)

val assert_holds : config -> Label.t -> State.t -> bool
val assert_protected_pinned : config -> Label.t -> Heap.t -> State.t -> bool
val assert_ghost_is : config -> Label.t -> Aux.t -> State.t -> bool
val assert_free : config -> Label.t -> State.t -> bool
(** NOT stable — the negative control of the test suite. *)

(** {1 Programs} *)

val lock : Label.t -> config -> unit Prog.t
val unlock :
  Label.t -> config -> Lock_intf.resource -> delta:Aux.t -> unit Prog.t
val initial_slice : config -> Lock_intf.resource -> Heap.t -> Aux.t -> Slice.t
