(** The ticketed lock (paper, Section 6): a ticket dispenser [next] and
    a serving counter [owner]; self = (drawn-ticket set, client ghost);
    a thread holds the lock when the served ticket is in its set.
    Implements the abstract lock interface {!Lock_intf.LOCK}. *)

open Fcsl_heap
open Fcsl_core
module Aux := Fcsl_pcm.Aux

val impl_name : string

type config = { next : Ptr.t; owner : Ptr.t }

val default_config : config
val config_cells : config -> Ptr.t list

(** {1 State shape} *)

val ticket : int -> Ptr.t
val next_of : config -> Heap.t -> int option
val owner_of : config -> Heap.t -> int option
val protected_heap : config -> Heap.t -> Heap.t
val split_aux : Aux.t -> (Ptr.Set.t * Aux.t) option
val pack_aux : Ptr.Set.t -> Aux.t -> Aux.t
val holds : config -> Label.t -> State.t -> bool
val self_ghost : config -> Label.t -> State.t -> Aux.t

(** {1 The TLock concurroid} *)

val coh : config -> Lock_intf.resource -> Slice.t -> bool
val take_ticket_tr : config -> Concurroid.transition
val unlock_tr : config -> Lock_intf.resource -> Concurroid.transition
val mutate_tr : config -> Lock_intf.resource -> Concurroid.transition
val enum : config -> Lock_intf.resource -> unit -> Slice.t list
val concurroid : label:Label.t -> config -> Lock_intf.resource -> Concurroid.t

(** {1 Actions} *)

val take_ticket : Label.t -> config -> int Action.t
(** Erases to FAA(next, 1). *)

val read_owner : ?awaiting:int -> Label.t -> config -> int Action.t
(** With [awaiting t], only scheduled once the counter reaches [t] —
    the blocking reduction of the wait loop. *)

val unlock_act :
  Label.t -> config -> Lock_intf.resource -> delta:Aux.t -> unit Action.t

val read : Label.t -> config -> Ptr.t -> Value.t Action.t
val write : Label.t -> config -> Ptr.t -> Value.t -> unit Action.t

(** {1 Stability lemmas} *)

val assert_ticket_owned : config -> Label.t -> int -> State.t -> bool
val assert_owner_at_least : config -> Label.t -> int -> State.t -> bool
val assert_being_served : config -> Label.t -> int -> State.t -> bool
val assert_protected_pinned : config -> Label.t -> Heap.t -> State.t -> bool

(** {1 Programs} *)

val lock : Label.t -> config -> unit Prog.t
val unlock :
  Label.t -> config -> Lock_intf.resource -> delta:Aux.t -> unit Prog.t
val initial_slice : config -> Lock_intf.resource -> Heap.t -> Aux.t -> Slice.t
