(* The abstract stack interface — the unification exercise the paper
   mentions but leaves undone (Section 6: "we could implement an
   abstract interface for stacks, too, to unify the Treiber stack and
   the FC-stack, although we didn't carry out this exercise").

   A STACK packages: a world of concurroids, push/pop programs, the
   subjective-history projections, and an enumeration of initial
   states.  Clients written against this signature — the mixed-workload
   client below — verify unchanged against both implementations, just
   like the lock clients verify against both locks. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

module type STACK = sig
  val impl_name : string

  val world : unit -> World.t
  val init_states : unit -> State.t list

  val push : int -> unit Prog.t
  (** Push a value (implementations source their own node cells). *)

  val pop : unit -> int option Prog.t

  val self_ops : State.t -> (string * Value.t * Value.t) list
  (** The observing thread's stamped operations: (op, arg, res). *)

  val fresh_thread : State.t -> bool
  (** Precondition: the observing thread has contributed nothing yet. *)
end

(*!Main*)
(* The Treiber stack as a STACK. *)
module Treiber_stack : STACK = struct
  let impl_name = "Treiber"

  let world () = Treiber.world ()
  let init_states () = Treiber.init_states ()

  let push v = Treiber.push Treiber.tb_label Treiber.pv_label Treiber.node1 v
  let pop () = Treiber.pop Treiber.tb_label

  let self_ops st =
    List.map
      (fun e -> (e.Hist.op, e.Hist.arg, e.Hist.res))
      (Hist.entries (Treiber.self_hist Treiber.tb_label st))

  let fresh_thread st =
    Hist.is_empty (Treiber.self_hist Treiber.tb_label st)
    &&
    match Aux.as_heap (State.self Treiber.pv_label st) with
    | Some h -> Heap.mem Treiber.node1 h
    | None -> false
end

(* The flat-combining stack as a STACK. *)
module Fc_stack_impl : STACK = struct
  module Fc = Flatcombiner
  module Mutex = Fcsl_pcm.Instances.Mutex

  let impl_name = "FC"

  let world () = Fc_stack.world ()
  let init_states () = Fc_stack.init_states ()

  let push v = Prog.bind (Fc_stack.fc_push ~slot:0 v) (fun _ -> Prog.ret ())

  let pop () =
    Prog.bind (Fc_stack.fc_pop ~slot:0) (fun r ->
        Prog.ret (match r with Value.Int n when n >= 0 -> Some n | _ -> None))

  let self_ops st =
    match State.find Fc_stack.fc_label st with
    | Some s -> (
      match Fc.split_aux (Slice.self s) with
      | Some (_, _, hist) ->
        List.map
          (fun e -> (e.Hist.op, e.Hist.arg, e.Hist.res))
          (Hist.entries hist)
      | None -> [])
    | None -> []

  let fresh_thread st =
    match State.find Fc_stack.fc_label st with
    | Some s -> (
      match Fc.split_aux (Slice.self s) with
      | Some (Mutex.Not_own, tokens, hist) ->
        Hist.is_empty hist
        && Ptr.Set.mem (List.nth Fc_stack.cfg.Fc.slots 0) tokens
        && Fc.slot_state Fc_stack.cfg (Slice.joint s) 0 = Some `Empty
      | _ -> false)
    | None -> false
end

(* A client written once against the interface: push then pop, and
   require the thread's own stamped history to show exactly those two
   operations with the pushed value flowing through. *)
module Client (S : STACK) = struct
  let push_then_pop v : int option Prog.t =
    Prog.bind (S.push v) (fun () -> S.pop ())

  let spec v : int option Spec.t =
    Spec.make
      ~name:(Fmt.str "%s stack client: push %d; pop" S.impl_name v)
      ~pre:S.fresh_thread
      ~post:(fun _r _i f ->
        let ops = S.self_ops f in
        let pushes =
          List.filter (fun (op, _, _) -> String.equal op "push") ops
        in
        let pops = List.filter (fun (op, _, _) -> String.equal op "pop") ops in
        List.length pushes = 1
        && List.length pops <= 1
        && List.for_all
             (fun (_, arg, _) -> Value.equal arg (Value.int v))
             pushes)

  let verify ?(fuel = 30) ?(env_budget = 1) ?(max_outcomes = 400_000) () :
      Verify.report =
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:(S.world ())
      ~init:(S.init_states ()) (push_then_pop 1) (spec 1)
end

module Treiber_client = Client (Treiber_stack)
module Fc_client = Client (Fc_stack_impl)

let verify () : Verify.report list =
  [ Treiber_client.verify (); Fc_client.verify () ]
(*!End*)
