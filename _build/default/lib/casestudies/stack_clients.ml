(* Treiber-stack clients (paper, Section 6, Table 1 rows "Seq. stack"
   and "Prod/Cons"): both reason entirely out of the stack's
   specification — no new concurroids, actions or stability lemmas.

   - The sequential stack is the Treiber stack wrapped in [hide]: with
     interference encapsulated, the subjective history spec collapses to
     the ordinary LIFO spec.
   - The producer/consumer runs a pushing and a popping thread in
     parallel; every produced value is consumed exactly once. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

(*!Main*)
let pv_label = Label.make "stack_clients_priv"
let tb_label = Label.make "stack_clients_treiber"

let n1 = Ptr.of_int 95
let n2 = Ptr.of_int 96

(* A private heap holding an (empty) stack top cell and two node cells. *)
let initial_priv_heap =
  Heap.of_list
    [
      (Treiber.top_cell, Value.ptr Ptr.null);
      (n1, Value.int 0);
      (n2, Value.int 0);
    ]

let stack_cells = [ Treiber.top_cell; n1; n2 ]

let hide_spec : Prog.hide_spec =
  {
    hs_priv = pv_label;
    hs_conc = Treiber.concurroid tb_label;
    hs_decor =
      Heap.restrict (fun p -> List.exists (Ptr.equal p) [ Treiber.top_cell ]);
    hs_init = Aux.hist Hist.empty;
    hs_jaux = Aux.Unit;
  }

(* The sequential stack: push 1, push 2, then pop three times, all under
   [hide].  LIFO says we must see Some 2, Some 1, None. *)
let seq_stack_prog : (int option * int option * int option) Prog.t =
  let open Prog in
  hide hide_spec
    (let* () = Treiber.push tb_label pv_label n1 1 in
     let* () = Treiber.push tb_label pv_label n2 2 in
     let* a = Treiber.pop tb_label in
     let* b = Treiber.pop tb_label in
     let* c = Treiber.pop tb_label in
     ret (a, b, c))

let seq_stack_spec : (int option * int option * int option) Spec.t =
  Spec.make ~name:"seq_stack (hide)"
    ~pre:(fun st ->
      match Aux.as_heap (State.self pv_label st) with
      | Some h ->
        List.for_all (fun p -> Heap.mem p h) stack_cells
        && (Heap.find Treiber.top_cell h = Some (Value.ptr Ptr.null))
      | None -> false)
    ~post:(fun (a, b, c) i f ->
      a = Some 2 && b = Some 1 && c = None
      &&
      (* the whole structure returns to the private heap *)
      match
        (Aux.as_heap (State.self pv_label i), Aux.as_heap (State.self pv_label f))
      with
      | Some hi, Some hf -> Ptr.Set.equal (Heap.dom_set hi) (Heap.dom_set hf)
      | _ -> false)

(* Producer/consumer: the producer pushes 1 then 2; the consumer pops
   (blocking) twice.  Under hide, the produced multiset is consumed. *)
let producer : unit Prog.t =
  let open Prog in
  let* () = Treiber.push tb_label pv_label n1 1 in
  Treiber.push tb_label pv_label n2 2

let consumer : (int * int) Prog.t =
  let open Prog in
  let* a = Treiber.pop_wait tb_label in
  let* b = Treiber.pop_wait tb_label in
  ret (a, b)

let prod_cons_prog : (unit * (int * int)) Prog.t =
  Prog.hide hide_spec
    (Prog.par_split
       (Prog.split_cells ~pv:pv_label ~to_left:[ n1; n2 ] ~to_right:[])
       producer consumer)

let prod_cons_spec : (unit * (int * int)) Spec.t =
  Spec.make ~name:"producer/consumer"
    ~pre:(Spec.pre seq_stack_spec)
    ~post:(fun ((), (a, b)) _i _f -> List.sort Int.compare [ a; b ] = [ 1; 2 ])

(* Verification drivers: closed world (that is the point of [hide]); the
   ambient world is just Priv. *)

let world () =
  World.of_list
    [
      Priv.make
        ~enum:(fun () ->
          [
            Slice.make
              ~self:(Aux.heap initial_priv_heap)
              ~joint:Heap.empty ~other:(Aux.heap Heap.empty);
          ])
        pv_label;
    ]

let init_states () =
  [
    State.singleton pv_label
      (Slice.make
         ~self:(Aux.heap initial_priv_heap)
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty));
  ]

let verify ?(fuel = 40) ?(max_outcomes = 400_000) () : Verify.report list =
  let w = world () in
  let init = init_states () in
  [
    Verify.check_triple ~fuel ~max_outcomes ~interference:false ~world:w ~init
      seq_stack_prog seq_stack_spec;
    Verify.check_triple ~fuel ~max_outcomes ~interference:false ~world:w ~init
      prod_cons_prog prod_cons_spec;
  ]
(*!End*)
