(** The concurrent spanning-tree construction — the paper's running
    example (Sections 2 and 3): the SpanTree concurroid, the [trymark] /
    [read_child] / [nullify] atomic actions, the [span] procedure of
    Figure 3 with the spec [span_tp] of Figure 4, and the closed-world
    [span_root] obtained by hiding (Section 3.5). *)

open Fcsl_heap
open Fcsl_core
module Aux := Fcsl_pcm.Aux

(** {1 State shape} *)

val graph_of_slice : Slice.t -> Graph.t option
val self_set : Slice.t -> Ptr.Set.t option
val other_set : Slice.t -> Ptr.Set.t option

val fresh_marks : Slice.t -> Slice.t -> Ptr.Set.t option
(** The nodes freshly marked between two slices: self f minus self i. *)

(** {1 The SpanTree concurroid (Section 3.3)} *)

val coh : Slice.t -> bool
(** Joint is graph-shaped; self/other are disjoint node sets; a node is
    in [self • other] iff it is marked. *)

val marknode_trans : Concurroid.transition
(** Physically mark an unmarked node and add it to self. *)

val nullify_trans : Concurroid.transition
(** A thread owning the marking of a node may sever its out-edges. *)

val concurroid : ?max_nodes:int -> Label.t -> Concurroid.t
(** The concurroid, with the small-graph catalogue as its law- and
    stability-checking universe. *)

(** {1 Atomic actions (Sections 2.2.2 and 3.4)} *)

val trymark : Label.t -> Ptr.t -> bool Action.t
(** Erases to CAS; takes [marknode_trans] on success, idle on
    failure. *)

val read_child : Label.t -> Ptr.t -> Graph.side -> Ptr.t Action.t
(** Idle read; requires the node in self, so the result is stable. *)

val nullify : Label.t -> Ptr.t -> Graph.side -> unit Action.t
(** Erases to a write; takes [nullify_trans]; requires ownership. *)

(** {1 Stability lemmas (Section 3.2)} *)

val assert_in_dom : Label.t -> Ptr.t -> State.t -> bool
val assert_in_self : Label.t -> Ptr.t -> State.t -> bool
val assert_marked : Label.t -> Ptr.t -> State.t -> bool
val assert_edges_of_owned : Label.t -> Ptr.t -> Ptr.t * Ptr.t -> State.t -> bool

val subgraph_steps_holds : Concurroid.t -> Slice.t -> bool
(** The [subgraph_steps] monotonicity lemma, over env-step closures. *)

(** {1 The program and its specs} *)

val span : Label.t -> Ptr.t -> bool Prog.t
(** Figure 3, verbatim in structure. *)

val subjective_subgraph : Slice.t -> Slice.t -> bool

val span_spec : Label.t -> Ptr.t -> bool Spec.t
(** Figure 4's [span_tp] as executable pre/postconditions. *)

val span_root : pv:Label.t -> sp:Label.t -> Ptr.t -> bool Prog.t
(** The top-level call under [hide] (Section 3.5): install a SpanTree
    concurroid over the whole private heap, run [span], tear down. *)

val span_root_spec : pv:Label.t -> Ptr.t -> bool Spec.t
(** [span_root_tp]: from a private unmarked connected graph, the final
    private heap is a spanning tree. *)

(** {1 Verification drivers} *)

val sp_label : Label.t
val pv_label : Label.t
val world : ?max_nodes:int -> unit -> World.t
val init_states : ?max_nodes:int -> unit -> State.t list

val verify_span :
  ?max_nodes:int -> ?fuel:int -> ?max_outcomes:int -> unit ->
  Verify.report list
(** Exhaustively check [span_tp] for every root over the catalogue,
    under full interference. *)

val verify_span_root :
  ?max_nodes:int -> ?fuel:int -> ?max_outcomes:int -> unit ->
  Verify.report list
(** Exhaustively check [span_root_tp] on the unmarked connected
    catalogue graphs (closed world). *)
