(* The abstract lock interface (paper, Section 6 and Figure 5): both the
   CAS-based spinlock and the ticketed lock implement this signature, so
   coarse-grained clients (CG increment, CG allocator, and through the
   allocator every stack client) are written once, as functors, and
   verified against either lock — the "3L" interchangeability of
   Table 2.

   A lock protects a {!resource}: a set of heap cells together with a
   resource invariant I relating the protected heap to the *total*
   client ghost (the [self • other] of a client-chosen PCM).  The
   protocol is the classic one, subjectively stated:

   - when the lock is free, the invariant holds;
   - holding the lock grants the exclusive right to mutate the protected
     cells (and break the invariant);
   - releasing requires the invariant restored, with the holder's ghost
     contribution updated by a [delta] accounting for its mutation. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux

type resource = {
  r_name : string;
  r_inv : Heap.t -> Aux.t -> bool; (* I(protected heap, total ghost) *)
  r_heaps : unit -> Heap.t list; (* protected-heap universe *)
  r_ghosts : unit -> Aux.t list; (* total client-ghost universe *)
}

(* A trivial resource: one cell, no invariant. *)
let cell_resource ?(values = [ Value.int 0; Value.int 1 ]) p =
  {
    r_name = Fmt.str "cell(%a)" Ptr.pp p;
    r_inv = (fun _ _ -> true);
    r_heaps = (fun () -> List.map (fun v -> Heap.singleton p v) values);
    r_ghosts = (fun () -> [ Aux.Unit ]);
  }

module type LOCK = sig
  val impl_name : string

  type config
  (** Cell layout of the lock's own state (lock bit, ticket counters...). *)

  val default_config : config
  val config_cells : config -> Ptr.t list

  val concurroid : label:Label.t -> config -> resource -> Concurroid.t

  val holds : config -> Label.t -> State.t -> bool
  (** The observing thread holds the lock. *)

  val self_ghost : config -> Label.t -> State.t -> Aux.t
  (** The observing thread's client-ghost contribution. *)

  val lock : Label.t -> config -> unit Prog.t
  (** Spin until acquired. *)

  val unlock : Label.t -> config -> resource -> delta:Aux.t -> unit Prog.t
  (** Release; requires the invariant restored for the total ghost
      augmented by [delta], which is credited to the caller. *)

  val read : Label.t -> config -> Ptr.t -> Value.t Action.t
  (** Read a protected cell; requires holding the lock. *)

  val write : Label.t -> config -> Ptr.t -> Value.t -> unit Action.t
  (** Write a protected cell; requires holding the lock. *)

  val initial_slice : config -> resource -> Heap.t -> Aux.t -> Slice.t
  (** A coherent free-lock slice over the given protected heap and total
      ghost placed in [other] (the observing thread starts with unit). *)
end

(* Helpers shared by lock implementations. *)

(* Split a ghost total into all (self, other) pairs. *)
let ghost_splits total = Aux.splits total

(* Enumerate protected-heap/ghost combinations satisfying a filter. *)
let protected_states resource ~free =
  List.concat_map
    (fun prot ->
      List.filter_map
        (fun total ->
          if (not free) || resource.r_inv prot total then Some (prot, total)
          else None)
        (resource.r_ghosts ()))
    (resource.r_heaps ())
