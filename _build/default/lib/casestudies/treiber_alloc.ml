(* The paper's full Treiber-stack configuration (Table 2 row "Treiber
   stack"): node cells come from the lock-based CG allocator, so a push
   runs in the entangled world [Priv ⋈ ALock ⋈ Treiber] and the stack
   inherits the abstract-lock dependency of Figure 5
   (allocator -> Treiber stack). *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist
module Alloc = Cg_alloc.Cas

(*!Main*)
let pv_label = Alloc.pv_label (* share the allocator's Priv instance *)
let al_label = Alloc.al_label
let tb_label = Label.make "treiber_alloc"

(* push_fresh: allocate a node cell, then push through it.  The paper's
   composition: alloc's postcondition hands the client reasoning exactly
   what push's precondition needs. *)
let push_fresh v : unit Prog.t =
  let open Prog in
  let* p = Alloc.alloc al_label pv_label in
  Treiber.push tb_label pv_label p v

let push_fresh_spec v : unit Spec.t =
  Spec.make
    ~name:(Fmt.str "push_fresh(%d)" v)
    ~pre:(fun st ->
      Hist.is_empty (Treiber.self_hist tb_label st)
      && (not (Caslock.holds Alloc.cfg al_label st))
      && Option.is_some (Aux.as_heap (State.self pv_label st)))
    ~post:(fun () i f ->
      let hi = Treiber.total_hist tb_label i in
      let hs = Treiber.self_hist tb_label f in
      Hist.cardinal hs = 1
      && List.for_all
           (fun (ts, e) ->
             ts > Hist.last_ts hi
             && String.equal e.Fcsl_pcm.Hist.op "push"
             && Value.equal e.Fcsl_pcm.Hist.arg (Value.int v))
           (Hist.bindings hs))

let world () =
  World.of_list
    [
      Priv.make pv_label;
      Alloc.concurroid ~label:al_label;
      Treiber.concurroid ~depth:1 tb_label;
    ]

let init_states () = World.enum ~cap:4000 (world ())

let verify ?(fuel = 26) ?(env_budget = 1) ?(max_outcomes = 400_000) () :
    Verify.report list =
  [
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:(world ())
      ~init:(init_states ()) (push_fresh 1) (push_fresh_spec 1);
  ]
(*!End*)
