(** The flat-combining stack (paper, Sections 4.2 and 6): the flat
    combiner instantiated with a sequential stack.  [flat_combine
    push/pop] satisfies the same subjective-history spec shape as the
    Treiber stack — clients cannot tell a helping-based stack from a
    CAS-based one. *)

open Fcsl_heap
open Fcsl_core

val encode : int list -> Value.t
val seq_stack : Flatcombiner.seq_object
val cfg : Flatcombiner.config
val fc_label : Label.t
val concurroid : ?depth:int -> unit -> Concurroid.t
val fc_push : slot:int -> int -> Value.t Prog.t
val fc_pop : slot:int -> Value.t Prog.t
val world : ?depth:int -> unit -> World.t
val init_states : ?depth:int -> unit -> State.t list

val verify :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit ->
  Verify.report list

val verify_pair :
  ?fuel:int -> ?env_budget:int -> ?max_outcomes:int -> unit -> Verify.report
(** Two clients, one per slot, in parallel: both histories correctly
    ascribed even when one thread combines for both. *)
