(** Treiber-stack clients (paper, Section 6): the sequential stack
    obtained by [hide] (interference encapsulated, the history spec
    collapses to plain LIFO) and the producer/consumer pair.  Both
    reason entirely out of the stack's specification. *)

open Fcsl_heap
open Fcsl_core

val pv_label : Label.t
val tb_label : Label.t
val n1 : Ptr.t
val n2 : Ptr.t
val initial_priv_heap : Heap.t
val stack_cells : Ptr.t list
val hide_spec : Prog.hide_spec

val seq_stack_prog : (int option * int option * int option) Prog.t
(** push 1; push 2; pop; pop; pop under [hide]. *)

val seq_stack_spec : (int option * int option * int option) Spec.t
(** LIFO: (Some 2, Some 1, None), and the structure returns to the
    private heap. *)

val producer : unit Prog.t
val consumer : (int * int) Prog.t
val prod_cons_prog : (unit * (int * int)) Prog.t
val prod_cons_spec : (unit * (int * int)) Spec.t
(** Every produced value consumed exactly once. *)

val world : unit -> World.t
val init_states : unit -> State.t list
val verify : ?fuel:int -> ?max_outcomes:int -> unit -> Verify.report list
