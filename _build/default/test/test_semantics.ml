(* Denotational action trees and linearizability: the tree unfolding
   agrees with the scheduler (adequacy), tree structure is as expected
   on known programs, and history legality / linearizable-multiset
   checks behave on stack and counter objects. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let p = Ptr.of_int

let span_setup () =
  let sp = Label.make "sem_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  (sp, w, st)

(* A race of two trymarks: the denotation is a two-branch node, each
   branch a single further action, four leaves. *)
let test_tree_structure () =
  let sp, w, st = span_setup () in
  let genv, mine = Sched.genv_of_state w st in
  let prog =
    Prog.par (Prog.act (Span.trymark sp (p 1))) (Prog.act (Span.trymark sp (p 1)))
  in
  let tree = Tree.denote genv mine prog in
  checki "two schedules, one step each" 2
    (match tree with Tree.Node cs -> List.length cs | Tree.Leaf _ -> 0);
  checki "depth = number of actions" 2 (Tree.depth tree);
  checki "two terminal leaves" 2 (List.length (Tree.outcomes tree));
  let traces = Tree.traces tree in
  check "traces record the CAS names" true
    (List.for_all
       (fun (path, _) ->
         List.length path = 2
         && List.for_all (fun n -> n = "trymark(x1)") path)
       traces)

(* Adequacy: the tree's leaf outcomes equal the scheduler's outcomes,
   for a batch of programs. *)
let test_adequacy () =
  let sp, w, st = span_setup () in
  let run prog =
    let genv, mine = Sched.genv_of_state w st in
    let tree = Tree.denote ~fuel:16 genv mine prog in
    let genv, mine = Sched.genv_of_state w st in
    let outs, complete = Sched.explore ~fuel:16 ~interference:false genv mine prog in
    check "complete" true complete;
    check "adequate" true
      (Tree.agrees_with_explore ~result_equal:( = ) tree outs)
  in
  run (Prog.act (Span.trymark sp (p 1)));
  run
    (Prog.par
       (Prog.act (Span.trymark sp (p 1)))
       (Prog.act (Span.trymark sp (p 1))));
  run (Span.span sp (p 1))

(* Adequacy under interference. *)
let test_adequacy_interference () =
  let sp, w, st = span_setup () in
  let prog = Prog.act (Span.trymark sp (p 1)) in
  let interfere = World.labels w in
  let genv, mine = Sched.genv_of_state ~interfere w st in
  let tree =
    Tree.denote ~fuel:8 ~interference:true ~env_budget:1 genv mine prog
  in
  let genv, mine = Sched.genv_of_state ~interfere w st in
  let outs, _ =
    Sched.explore ~fuel:8 ~interference:true ~env_budget:1 genv mine prog
  in
  check "adequate under interference" true
    (Tree.agrees_with_explore ~result_equal:( = ) tree outs);
  (* interference adds branches: more than the lone self step *)
  check "env branches present" true (Tree.size tree > 3)

(* Linearizability. *)

let test_replay_legal () =
  let h =
    Hist.empty
    |> Hist.add 1
         (Hist.entry ~arg:(Value.int 3)
            ~state:(Value.Pair (Value.int 3, Value.Unit))
            "push")
    |> Hist.add 2
         (Hist.entry ~res:(Value.int 3) ~state:Value.Unit "pop")
  in
  check "legal stack history" true (Linearize.legal Linearize.stack_spec h);
  let bad =
    Hist.add 1 (Hist.entry ~res:(Value.int 9) ~state:Value.Unit "pop") Hist.empty
  in
  check "pop from empty illegal" false
    (Linearize.legal Linearize.stack_spec bad)

let test_linearizable_multiset () =
  (* pop-before-push observations linearize by reordering *)
  let obs =
    [
      ("pop", Value.unit, Value.int 1);
      ("push", Value.int 1, Value.unit);
    ]
  in
  check "reorderable" true
    (Linearize.linearizable_multiset Linearize.stack_spec obs);
  (* two pops of the same single push cannot linearize *)
  let bad =
    [
      ("push", Value.int 1, Value.unit);
      ("pop", Value.unit, Value.int 1);
      ("pop", Value.unit, Value.int 1);
    ]
  in
  check "double pop rejected" false
    (Linearize.linearizable_multiset Linearize.stack_spec bad)

(* Every Treiber history reached by random execution is legal for the
   sequential stack spec (modulo the recorded states). *)
let prop_treiber_hists_legal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"random Treiber histories linearize"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let w = Treiber.world () in
         let init = Treiber.init_states () in
         let st = List.nth init (seed mod List.length init) in
         match Aux.as_heap (State.self Treiber.pv_label st) with
         | Some h when Heap.mem Treiber.node1 h ->
           let genv, mine = Sched.genv_of_state w st in
           let prog =
             Prog.seq
               (Treiber.push Treiber.tb_label Treiber.pv_label Treiber.node1 1)
               (Treiber.pop Treiber.tb_label)
           in
           (match Sched.run_random ~seed genv mine prog with
           | Sched.Finished (_, final) ->
             let hs = Treiber.self_hist Treiber.tb_label final in
             Linearize.linearizable_multiset Linearize.stack_spec
               (Linearize.observations hs)
           | Sched.Crashed _ -> false
           | Sched.Diverged -> true)
         | _ -> true))

let test_counter_spec () =
  check "counter runs" true
    (Linearize.linearizable_multiset Linearize.counter_spec
       [
         ("incr", Value.int 1, Value.int 0);
         ("incr", Value.int 1, Value.int 1);
         ("read", Value.unit, Value.int 2);
       ]);
  check "wrong read rejected" false
    (Linearize.linearizable_multiset Linearize.counter_spec
       [ ("incr", Value.int 1, Value.int 0); ("read", Value.unit, Value.int 5) ])

let suite =
  [
    Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "adequacy (tree vs scheduler)" `Quick test_adequacy;
    Alcotest.test_case "adequacy under interference" `Quick
      test_adequacy_interference;
    Alcotest.test_case "history replay" `Quick test_replay_legal;
    Alcotest.test_case "linearizable multisets" `Quick
      test_linearizable_multiset;
    prop_treiber_hists_legal;
    Alcotest.test_case "counter object" `Quick test_counter_spec;
  ]
