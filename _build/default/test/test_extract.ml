(* Program extraction: the erased span runs on OCaml 5 domains with real
   atomic cells and still computes spanning trees — on the Figure 2
   graph, on random connected graphs, and at sizes far beyond what the
   model checker enumerates. *)

open Fcsl_heap
open Fcsl_lang
open Fcsl_extract
open Fcsl_casestudies

let check = Alcotest.(check bool)
let p = Ptr.of_int
let span_prog = Parser.parse_program Examples.span_source

let test_real_heap () =
  let rh = Real_heap.of_heap (Heap.singleton (p 1) (Value.int 5)) in
  check "read" true (Value.equal (Real_heap.read rh (p 1)) (Value.int 5));
  Real_heap.write rh (p 1) (Value.int 6);
  check "write" true (Value.equal (Real_heap.read rh (p 1)) (Value.int 6));
  check "cas hit" true
    (Real_heap.cas rh (p 1) ~expect:(Value.int 6) ~replace:(Value.int 7));
  check "cas miss" false
    (Real_heap.cas rh (p 1) ~expect:(Value.int 6) ~replace:(Value.int 8));
  Alcotest.(check int) "faa" 7 (Real_heap.faa rh (p 1) 3);
  check "faa stored" true
    (Value.equal (Real_heap.read rh (p 1)) (Value.int 10));
  let q = Real_heap.alloc rh Value.unit in
  check "alloc fresh" true (not (Ptr.equal q (p 1)));
  check "roundtrip" true (Heap.cardinal (Real_heap.to_heap rh) = 2)

let test_parallel_faa () =
  (* 4 domains x 500 increments: the atomic cell counts them all. *)
  let rh = Real_heap.of_heap (Heap.singleton (p 1) (Value.int 0)) in
  let worker () =
    for _ = 1 to 500 do
      ignore (Real_heap.faa rh (p 1) 1)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check "no lost updates" true
    (Value.equal (Real_heap.read rh (p 1)) (Value.int 2000))

let test_span_fig2 () =
  let g0 = Graph_catalog.fig2_graph () in
  let h, v =
    Extract.run span_prog ~proc:"span"
      ~args:[ Value.ptr (p 1) ]
      (Graph.to_heap g0)
  in
  check "returns true" true (Value.equal v (Value.bool true));
  let g = Graph.of_heap_exn h in
  check "spanning tree" true (Graph.spanning g0 g (p 1) (Graph.dom_set g))

(* Repeated real-parallel runs on random connected graphs: every run
   yields a spanning tree (different trees on different runs are fine —
   and expected, that is the nondeterminism of the algorithm). *)
let prop_random_graphs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"extracted span spans random graphs"
       QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 40))
       (fun (seed, n) ->
         let rng = Random.State.make [| seed |] in
         let g0 = Graph_catalog.random_connected_graph ~rng n in
         let h, v =
           Extract.run span_prog ~proc:"span"
             ~args:[ Value.ptr (p 1) ]
             (Graph.to_heap g0)
         in
         Value.equal v (Value.bool true)
         &&
         match Graph.of_heap h with
         | Some g -> Graph.spanning g0 g (p 1) (Graph.dom_set g)
         | None -> false))

let test_span_large () =
  (* A graph two orders of magnitude beyond the model checker's
     configurations. *)
  let rng = Random.State.make [| 2026 |] in
  let g0 = Graph_catalog.random_connected_graph ~rng 500 in
  let h, v =
    Extract.run ~domain_budget:4 span_prog ~proc:"span"
      ~args:[ Value.ptr (p 1) ]
      (Graph.to_heap g0)
  in
  check "returns true" true (Value.equal v (Value.bool true));
  let g = Graph.of_heap_exn h in
  check "spanning tree of 500 nodes" true
    (Graph.spanning g0 g (p 1) (Graph.dom_set g))

let test_sequential_budget () =
  (* domain_budget 0: fully sequential execution is one admissible
     schedule and must still produce a spanning tree. *)
  let g0 = Graph_catalog.fig2_graph () in
  let h, v =
    Extract.run ~domain_budget:0 span_prog ~proc:"span"
      ~args:[ Value.ptr (p 1) ]
      (Graph.to_heap g0)
  in
  check "returns true" true (Value.equal v (Value.bool true));
  let g = Graph.of_heap_exn h in
  check "spanning tree" true (Graph.spanning g0 g (p 1) (Graph.dom_set g))

let test_extraction_errors () =
  check "null deref surfaces" true
    (try
       ignore
         (Extract.run
            (Parser.parse_program
               "f (x : ptr) : bool { x->l := null; return true }")
            ~proc:"f"
            ~args:[ Value.ptr Ptr.null ]
            Heap.empty);
       false
     with Extract.Extraction_error _ -> true)

let suite =
  [
    Alcotest.test_case "real heap primitives" `Quick test_real_heap;
    Alcotest.test_case "parallel fetch-and-add" `Quick test_parallel_faa;
    Alcotest.test_case "extracted span on Figure 2" `Quick test_span_fig2;
    prop_random_graphs;
    Alcotest.test_case "extracted span, 500 nodes" `Quick test_span_large;
    Alcotest.test_case "sequential degradation" `Quick test_sequential_budget;
    Alcotest.test_case "extraction errors" `Quick test_extraction_errors;
  ]
