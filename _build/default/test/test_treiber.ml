(* Treiber stack and its clients: laws, stability, subjective-history
   triples, the hide-based sequential stack, producer/consumer, the
   allocator-entangled push, and failure injections (non-atomic pop,
   ABA-style reuse). *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

let check = Alcotest.(check bool)

let setup () =
  let l = Label.make "tt_treiber" in
  let c = Treiber.concurroid ~depth:2 l in
  let states = List.map (fun s -> State.singleton l s) (Concurroid.enum c) in
  (l, c, World.of_list [ c ], states)

let test_laws () =
  let _, c, _, _ = setup () in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) (Concurroid.check_laws c))

let test_replay () =
  let h =
    Hist.empty
    |> Hist.add 1
         (Hist.entry ~arg:(Value.int 1) ~state:(Treiber.encode_stack [ 1 ])
            "push")
    |> Hist.add 2
         (Hist.entry ~arg:(Value.int 2) ~state:(Treiber.encode_stack [ 2; 1 ])
            "push")
    |> Hist.add 3
         (Hist.entry ~res:(Value.int 2) ~state:(Treiber.encode_stack [ 1 ])
            "pop")
  in
  check "legal replay" true (Treiber.replay h = Some [ 1 ]);
  (* illegal: pop result does not match the top *)
  let bad =
    Hist.empty
    |> Hist.add 1
         (Hist.entry ~arg:(Value.int 1) ~state:(Treiber.encode_stack [ 1 ])
            "push")
    |> Hist.add 2
         (Hist.entry ~res:(Value.int 9) ~state:(Treiber.encode_stack []) "pop")
  in
  check "illegal replay rejected" true (Treiber.replay bad = None);
  (* gap in timestamps *)
  let gap =
    Hist.add 2
      (Hist.entry ~arg:(Value.int 1) ~state:(Treiber.encode_stack [ 1 ]) "push")
      Hist.empty
  in
  check "gapped history rejected" true (Treiber.replay gap = None)

let test_action_laws () =
  (* action laws need the entangled Priv world since cas_push
     communicates *)
  let w = Treiber.world () in
  let states = Treiber.init_states () in
  let tb = Treiber.tb_label and pv = Treiber.pv_label in
  let actions =
    [
      ("read_top", Action.map ignore (Treiber.read_top tb));
      ("read_node", Action.map ignore (Treiber.read_node tb Treiber.node1));
      ("set_node", Treiber.set_node pv Treiber.node1 1 Ptr.null);
      ( "cas_push",
        Action.map ignore (Treiber.cas_push tb pv Treiber.node1 1 Ptr.null) );
      ("cas_pop", Action.map ignore (Treiber.cas_pop tb Treiber.node1 Ptr.null));
    ]
  in
  List.iter
    (fun (name, a) ->
      Alcotest.(check (list string))
        (name ^ " laws") []
        (List.map (Fmt.str "%a" Action.pp_violation)
           (Action.check_laws w a ~states)))
    actions

let test_stability () =
  let l, _, w, states = setup () in
  let stable p = Stability.is_stable (Stability.check w ~states p) in
  (* a node published at ptr 85 with value 0: pinned forever *)
  check "published node pinned" true
    (stable (Treiber.assert_node_pinned l (Ptr.of_int 85) (0, Ptr.null)));
  check "timestamps grow" true (stable (Treiber.assert_ts_at_least l 1));
  (* negative control: being the top node is unstable *)
  check "top-ness unstable" false
    (stable (fun st ->
         match State.find l st with
         | Some s -> Treiber.top_of (Slice.joint s) = Some (Ptr.of_int 85)
         | None -> false))

let test_triples () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Treiber.verify ())

let test_push_pop () =
  let r = Treiber.verify_push_pop () in
  check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r)

let test_clients () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Stack_clients.verify ())

let test_abstract_stack_interface () =
  (* the unification exercise the paper left undone: one client, both
     stack implementations *)
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Stack_intf.verify ())

let test_alloc_entangled () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Treiber_alloc.verify ())

(* Failure injection 1: a non-atomic pop (read top; read next; WRITE
   top) loses pushes under interference. *)
let broken_pop tb : int option Prog.t =
  let open Prog in
  let* t = act (Treiber.read_top tb) in
  if Ptr.is_null t then ret None
  else
    let* v, next = act (Treiber.read_node tb t) in
    (* a plain write instead of CAS: not justified by any transition *)
    let write_top : unit Action.t =
      Action.make ~name:"write_top"
        ~safe:(fun st ->
          match State.find tb st with
          | Some s -> Option.is_some (Treiber.top_of (Slice.joint s))
          | None -> false)
        ~step:(fun st ->
          let s = State.find_exn tb st in
          ( (),
            State.add tb
              (Slice.with_joint
                 (Heap.update Treiber.top_cell (Value.ptr next) (Slice.joint s))
                 s)
              st ))
        ~phys:(fun _ -> Action.Write (Treiber.top_cell, Value.ptr next))
        ()
    in
    let* () = act write_top in
    ret (Some v)

let test_broken_pop_refuted () =
  (* The rogue write is caught by the action-law checker (no transition
     justifies dropping an element without stamping a pop). *)
  let l, _, w, states = setup () in
  ignore l;
  let a =
    Action.make ~name:"rogue_write_top"
      ~safe:(fun st ->
        match State.find (World.labels w |> List.hd) st with
        | Some s -> (
          match Treiber.top_of (Slice.joint s) with
          | Some t -> not (Ptr.is_null t)
          | None -> false)
        | None -> false)
      ~step:(fun st ->
        let lbl = World.labels w |> List.hd in
        let s = State.find_exn lbl st in
        let t = Option.get (Treiber.top_of (Slice.joint s)) in
        let _, next = Option.get (Treiber.node_of (Slice.joint s) t) in
        ( (),
          State.add lbl
            (Slice.with_joint
               (Heap.update Treiber.top_cell (Value.ptr next) (Slice.joint s))
               s)
            st ))
      ~phys:(fun st ->
        let lbl = World.labels w |> List.hd in
        let s = State.find_exn lbl st in
        let t = Option.get (Treiber.top_of (Slice.joint s)) in
        let _, next = Option.get (Treiber.node_of (Slice.joint s) t) in
        Action.Write (Treiber.top_cell, Value.ptr next))
      ()
  in
  check "rogue top write refuted" true (Action.check_laws w a ~states <> [])

(* Failure injection 2: the non-atomic pop also breaks client-visible
   correctness: under a racing pop, an element can be popped twice or
   lost; the composite spec fails. *)
let test_broken_pop_client_refuted () =
  let w = Treiber.world () in
  let init =
    List.filter
      (fun st ->
        (* start from a two-element stack *)
        match State.find Treiber.tb_label st with
        | Some s -> (
          match Treiber.contents (Slice.joint s) with
          | Some (_ :: _ :: _) -> true
          | _ -> false)
        | None -> false)
      (Treiber.init_states ~depth:2 ())
  in
  let spec =
    Spec.make ~name:"broken pop pair"
      ~pre:(fun st -> Hist.is_empty (Treiber.self_hist Treiber.tb_label st))
      ~post:(fun (a, b) _i _f ->
        match (a, b) with
        | Some x, Some y -> x <> y (* distinct elements popped *)
        | _ -> true)
  in
  let report =
    Verify.check_triple ~fuel:20 ~interference:false ~world:w ~init
      (Prog.par (broken_pop Treiber.tb_label) (broken_pop Treiber.tb_label))
      spec
  in
  check "broken pop client refuted" false (Verify.ok report)

(* Property: random schedules of pushes and pops keep coherence and
   yield legal histories. *)
let prop_random_runs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"random push/pop runs stay coherent"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let w = Treiber.world () in
         let init = Treiber.init_states () in
         let st = List.nth init (seed mod List.length init) in
         if not (World.coh w st) then true
         else if
           (* need both node cells private for the two pushes *)
           match Aux.as_heap (State.self Treiber.pv_label st) with
           | Some h -> not (Heap.mem Treiber.node1 h && Heap.mem Treiber.node2 h)
           | None -> true
         then true
         else
           let genv, mine = Sched.genv_of_state w st in
           let prog =
             Prog.par_split
               (Prog.split_cells ~pv:Treiber.pv_label
                  ~to_left:[ Treiber.node1 ] ~to_right:[ Treiber.node2 ])
               (Prog.seq
                  (Treiber.push Treiber.tb_label Treiber.pv_label Treiber.node1 1)
                  (Treiber.pop Treiber.tb_label))
               (Treiber.push Treiber.tb_label Treiber.pv_label Treiber.node2 2)
           in
           match Sched.run_random ~seed genv mine prog with
           | Sched.Finished (_, final) -> World.coh w final
           | Sched.Crashed _ -> false
           | Sched.Diverged -> true))

let suite =
  [
    Alcotest.test_case "concurroid laws" `Quick test_laws;
    Alcotest.test_case "history replay" `Quick test_replay;
    Alcotest.test_case "action laws" `Quick test_action_laws;
    Alcotest.test_case "stability lemmas" `Quick test_stability;
    Alcotest.test_case "push/pop triples" `Slow test_triples;
    Alcotest.test_case "push || pop triple" `Slow test_push_pop;
    Alcotest.test_case "seq stack & prod/cons" `Quick test_clients;
    Alcotest.test_case "allocator-entangled push" `Slow test_alloc_entangled;
    Alcotest.test_case "abstract stack interface (Treiber & FC)" `Quick
      test_abstract_stack_interface;
    Alcotest.test_case "injected: rogue top write refuted" `Quick
      test_broken_pop_refuted;
    Alcotest.test_case "injected: non-atomic pop refuted" `Slow
      test_broken_pop_client_refuted;
    prop_random_runs;
  ]
