(* PCM algebra: unit tests for every instance plus qcheck property tests
   of the PCM laws (commutativity, associativity, unit, validity
   monotonicity) over randomly generated elements. *)

open Fcsl_heap
open Fcsl_pcm

let check = Alcotest.(check bool)

(* Generators. *)

let gen_ptr = QCheck2.Gen.(map Ptr.of_int (int_range 1 20))

let gen_ptr_set =
  QCheck2.Gen.(map Ptr.Set.of_list (list_size (int_range 0 6) gen_ptr))

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Value.Unit;
        map Value.bool bool;
        map Value.int (int_range (-5) 5);
        map Value.ptr gen_ptr;
      ])

let gen_heap =
  QCheck2.Gen.(
    map
      (fun cells ->
        List.fold_left (fun h (p, v) -> Heap.add p v h) Heap.empty cells)
      (list_size (int_range 0 6) (pair gen_ptr gen_value)))

let gen_hist =
  QCheck2.Gen.(
    map
      (fun ops ->
        List.fold_left
          (fun h op -> Hist.add (Hist.fresh_ts h) (Hist.entry op) h)
          Hist.empty ops)
      (list_size (int_range 0 5) (oneofl [ "push"; "pop"; "write" ])))

let gen_mutex =
  QCheck2.Gen.oneofl [ Instances.Mutex.Own; Instances.Mutex.Not_own ]

let rec gen_aux_sized n =
  let open QCheck2.Gen in
  if n = 0 then
    oneof
      [
        return Aux.Unit;
        map Aux.nat (int_range 0 5);
        map (fun m -> Aux.Mutex m) gen_mutex;
        map Aux.set gen_ptr_set;
        map Aux.heap gen_heap;
        map Aux.hist gen_hist;
      ]
  else
    frequency
      [
        (3, gen_aux_sized 0);
        (1, map2 Aux.pair (gen_aux_sized (n - 1)) (gen_aux_sized (n - 1)));
      ]

let gen_aux = gen_aux_sized 2

(* A law suite for a first-class PCM module. *)
let law_tests (type a) (module P : Pcm.S with type t = a) name gen =
  let module L = Pcm.Laws (P) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:(name ^ ": commutative")
         QCheck2.Gen.(pair gen gen)
         (fun (a, b) -> L.commutative a b));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:(name ^ ": associative")
         QCheck2.Gen.(triple gen gen gen)
         (fun (a, b, c) -> L.associative a b c));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:(name ^ ": unit") gen L.unit_law);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:(name ^ ": validity monotone")
         QCheck2.Gen.(triple gen gen gen)
         (fun (a, b, c) -> L.validity_monotone a b c));
  ]

(* Unit tests for instance-specific behaviour. *)

let test_mutex () =
  let open Instances.Mutex in
  check "own+own undefined" false (Option.is_some (join Own Own));
  check "own+notown" true (equal (Option.get (join Own Not_own)) Own)

let test_ptr_set () =
  let open Instances.Ptr_set in
  let a = of_list [ Ptr.of_int 1; Ptr.of_int 2 ] in
  let b = of_list [ Ptr.of_int 2 ] in
  check "overlapping sets undefined" false (Option.is_some (join a b));
  check "disjoint ok" true
    (Option.is_some (join a (of_list [ Ptr.of_int 3 ])))

let test_hist () =
  let h1 = Hist.add 1 (Hist.entry "a") Hist.empty in
  let h2 = Hist.add 2 (Hist.entry "b") Hist.empty in
  let h = Option.get (Hist.join h1 h2) in
  check "continuous" true (Hist.continuous h);
  check "fresh is 3" true (Hist.fresh_ts h = 3);
  check "clashing stamps undefined" false
    (Option.is_some (Hist.join h1 h1));
  check "subhist" true (Hist.subhist h1 h);
  check "not subhist" false (Hist.subhist h h1)

let test_lift () =
  let module L = Instances.Lift (Instances.Mutex) in
  let open Instances.Mutex in
  check "lifted own+own = undef" true
    (L.equal (Option.get (L.join (L.Def Own) (L.Def Own))) L.Undef);
  check "undef absorbs" true
    (L.equal (Option.get (L.join L.Undef (L.Def Not_own))) L.Undef)

let test_aux_cross_sort () =
  check "nat+set undefined" false
    (Option.is_some (Aux.join (Aux.nat 1) (Aux.singleton (Ptr.of_int 1))));
  check "unit joins anything" true
    (Aux.equal (Aux.join_exn Aux.Unit (Aux.nat 3)) (Aux.nat 3))

let test_aux_splits () =
  let x = Aux.nat 3 in
  let splits = Aux.splits x in
  check "nat 3 has 4 splits" true (List.length splits = 4);
  List.iter
    (fun (a, b) ->
      check "split rejoins" true (Aux.equal (Aux.join_exn a b) x))
    splits;
  let s = Aux.set_of_list [ Ptr.of_int 1; Ptr.of_int 2 ] in
  check "set of 2 has 4 splits" true (List.length (Aux.splits s) = 4)

let test_aux_projections () =
  check "unit as heap" true
    (Heap.is_empty (Option.get (Aux.as_heap Aux.Unit)));
  check "heap as set fails" false
    (Option.is_some (Aux.as_set (Aux.heap (Heap.singleton (Ptr.of_int 1) Value.unit))))

(* PCM morphisms: unit/join preservation for the stock morphisms. *)
let morphism_tests =
  let t name gen prop =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen prop)
  in
  let module MCard = Morphism.Laws (Instances.Ptr_set) (Instances.Nat) in
  let module MDom = Morphism.Laws (Instances.Heap_pcm) (Instances.Ptr_set) in
  let module MLen = Morphism.Laws (Hist.Pcm_instance) (Instances.Nat) in
  [
    Alcotest.test_case "morphism units" `Quick (fun () ->
        check "card unit" true (MCard.preserves_unit Morphism.card);
        check "dom unit" true (MDom.preserves_unit Morphism.dom);
        check "length unit" true (MLen.preserves_unit Morphism.hist_length);
        check "compose keeps names" true
          (String.length
             (Morphism.name (Morphism.compose Morphism.card Morphism.dom))
          > 0));
    t "card preserves joins"
      QCheck2.Gen.(pair gen_ptr_set gen_ptr_set)
      (fun (a, b) -> MCard.preserves_join Morphism.card a b);
    t "dom preserves joins"
      QCheck2.Gen.(pair gen_heap gen_heap)
      (fun (a, b) -> MDom.preserves_join Morphism.dom a b);
    t "hist length preserves joins"
      QCheck2.Gen.(pair gen_hist gen_hist)
      (fun (a, b) -> MLen.preserves_join Morphism.hist_length a b);
    t "dom;card composition preserves joins"
      QCheck2.Gen.(pair gen_heap gen_heap)
      (fun (a, b) ->
        let module M = Morphism.Laws (Instances.Heap_pcm) (Instances.Nat) in
        M.preserves_join (Morphism.compose Morphism.card Morphism.dom) a b);
  ]

let suite =
  let module ProdNM = Instances.Prod (Instances.Nat) (Instances.Mutex) in
  let module LiftH = Instances.Lift (Instances.Heap_pcm) in
  List.concat
    [
      law_tests (module Instances.Nat) "nat" QCheck2.Gen.(int_range 0 10);
      law_tests (module Instances.Mutex) "mutex" gen_mutex;
      law_tests (module Instances.Ptr_set) "ptr-set" gen_ptr_set;
      law_tests (module Instances.Heap_pcm) "heap" gen_heap;
      law_tests (module Hist.Pcm_instance) "history" gen_hist;
      law_tests
        (module ProdNM)
        "nat*mutex"
        QCheck2.Gen.(pair (int_range 0 5) gen_mutex);
      law_tests
        (module LiftH)
        "lift(heap)"
        QCheck2.Gen.(
          frequency [ (5, map (fun h -> LiftH.Def h) gen_heap); (1, return LiftH.Undef) ]);
      law_tests (module Aux.Pcm_instance) "aux" gen_aux;
      morphism_tests;
      [
        Alcotest.test_case "mutex exclusivity" `Quick test_mutex;
        Alcotest.test_case "ptr-set disjointness" `Quick test_ptr_set;
        Alcotest.test_case "history stamps" `Quick test_hist;
        Alcotest.test_case "lifting" `Quick test_lift;
        Alcotest.test_case "aux cross-sort joins" `Quick test_aux_cross_sort;
        Alcotest.test_case "aux splits rejoin" `Quick test_aux_splits;
        Alcotest.test_case "aux projections" `Quick test_aux_projections;
      ];
    ]
