(* Remaining coverage: the law registry sweep, spec combinators, value
   ordering, graph-theory properties, and label bookkeeping. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

(* Every concurroid and action in the suite satisfies the metatheory
   laws (the CLI's `fcsl laws`, as a test). *)
let test_laws_registry () =
  let buf = Buffer.create 256 in
  let pp fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  check (Buffer.contents buf) true (Fcsl_report.Laws.run_all ~pp ())

(* Spec combinators. *)
let test_spec_combinators () =
  let sp = Label.make "tm_span" in
  let base =
    Spec.make ~name:"base"
      ~pre:(fun _ -> true)
      ~post:(fun r _ _ -> r > 0)
  in
  ignore sp;
  let stronger = Spec.strengthen_post (fun r _ _ -> r < 10) base in
  check "strengthened post conjoins" true
    (Spec.post stronger 5 State.empty State.empty
    && not (Spec.post stronger 50 State.empty State.empty)
    && not (Spec.post stronger 0 State.empty State.empty));
  let narrowed = Spec.strengthen_pre (fun _ -> false) base in
  check "strengthened pre conjoins" false (Spec.pre narrowed State.empty);
  check "implies over universe" true
    (Spec.implies (fun _ -> false) (fun _ -> true) [ State.empty ]);
  check "implies counterexample" false
    (Spec.implies (fun _ -> true) (fun _ -> false) [ State.empty ])

(* Value ordering is a total order on samples (antisymmetry &
   transitivity). *)
let prop_value_order =
  let gen =
    QCheck2.Gen.(
      let base =
        oneof
          [
            return Value.Unit; map Value.bool bool;
            map Value.int (int_range (-3) 3);
            map (fun n -> Value.ptr (p n)) (int_range 1 4);
          ]
      in
      oneof [ base; map2 Value.pair base base ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"value compare is a total order"
       QCheck2.Gen.(triple gen gen gen)
       (fun (a, b, c) ->
         let sgn x = compare x 0 in
         let antisymmetric =
           Value.equal a b
           || sgn (Value.compare a b) = -sgn (Value.compare b a)
         in
         let transitive =
           (not (Value.compare a b <= 0 && Value.compare b c <= 0))
           || Value.compare a c <= 0
         in
         antisymmetric && transitive))

(* Graph-theory properties on random graphs. *)
let prop_graph_theory =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"graph theory invariants"
       QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 6))
       (fun (seed, n) ->
         let rng = Random.State.make [| seed |] in
         let g = Graph_catalog.random_graph ~rng n in
         let dom = Graph.dom_set g in
         List.for_all
           (fun x ->
             let r = Graph.reachable g x in
             (* reachable stays within the domain and contains x *)
             Ptr.Set.subset r dom && Ptr.Set.mem x r
             (* the front of the reachable set is itself: maximality *)
             && Graph.maximal g r
             (* front is monotone in its second argument *)
             && Graph.front g r dom)
           (Graph.dom g)))

(* mark_node / null_edge leave all other nodes untouched. *)
let prop_graph_locality =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"graph updates are local"
       QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 2 6))
       (fun (seed, n) ->
         let rng = Random.State.make [| seed |] in
         let g = Graph_catalog.random_graph ~rng n in
         let x = p (1 + Random.State.int rng n) in
         let g' = Graph.mark_node g x in
         let g'' = Graph.null_edge g' Graph.Left x in
         List.for_all
           (fun y ->
             Ptr.equal y x || Graph.cont g y = Graph.cont g'' y)
           (Graph.dom g)))

(* Labels: names survive, identities are fresh. *)
let test_labels () =
  let a = Label.make "same_name" and b = Label.make "same_name" in
  check "fresh identities" false (Label.equal a b);
  check "name kept" true (String.equal (Label.name a) "same_name");
  check "map keyed by identity" true
    (Label.Map.cardinal
       (Label.Map.add b 2 (Label.Map.singleton a 1))
    = 2)

(* Slice pretty-printing covers the jaux form (smoke). *)
let test_pp_smoke () =
  let s =
    Slice.make_jaux ~self:(Aux.nat 1)
      ~joint:(Heap.singleton (p 1) Value.unit)
      ~jaux:(Aux.hist Fcsl_pcm.Hist.empty) ~other:Aux.Unit
  in
  check "prints" true (String.length (Slice.to_string s) > 0);
  check "state prints" true
    (String.length (State.to_string (State.singleton (Label.make "pp") s)) > 0)

let suite =
  [
    Alcotest.test_case "law registry sweep" `Slow test_laws_registry;
    Alcotest.test_case "spec combinators" `Quick test_spec_combinators;
    prop_value_order;
    prop_graph_theory;
    prop_graph_locality;
    Alcotest.test_case "labels" `Quick test_labels;
    Alcotest.test_case "printers" `Quick test_pp_smoke;
  ]
