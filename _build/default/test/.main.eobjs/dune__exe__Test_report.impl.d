test/test_report.ml: Alcotest Fcsl_core Fcsl_report Filename Fmt List Loc_stats Registry String Tables
