test/test_misc.ml: Alcotest Buffer Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fcsl_report Fmt Graph Graph_catalog Heap Label List Ptr QCheck2 QCheck_alcotest Random Slice Spec State String Value
