test/test_heap.ml: Alcotest Fcsl_casestudies Fcsl_heap Graph Heap List Option Ptr QCheck2 QCheck_alcotest Random Value
