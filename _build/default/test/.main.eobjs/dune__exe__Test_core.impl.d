test/test_core.ml: Action Alcotest Concurroid Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fmt Graph Graph_catalog Heap Label List Option Priv Prog Ptr Sched Slice Span State Stdlib Value World
