test/test_assrt.ml: Alcotest Assrt Concurroid Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Graph Heap Label List Ptr QCheck2 QCheck_alcotest Slice Span Stability State World
