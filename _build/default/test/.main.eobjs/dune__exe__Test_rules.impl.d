test/test_rules.ml: Alcotest Concurroid Fcsl_casestudies Fcsl_core Fcsl_heap Fcsl_pcm Fmt Graph Label List Prog Ptr Result Rules Span Spec State Verify World
