test/test_pcm.ml: Alcotest Aux Fcsl_heap Fcsl_pcm Heap Hist Instances List Morphism Option Pcm Ptr QCheck2 QCheck_alcotest String Value
