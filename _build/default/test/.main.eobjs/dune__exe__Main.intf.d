test/main.mli:
