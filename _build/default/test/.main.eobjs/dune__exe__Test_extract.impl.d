test/test_extract.ml: Alcotest Domain Examples Extract Fcsl_casestudies Fcsl_extract Fcsl_heap Fcsl_lang Graph Graph_catalog Heap List Parser Ptr QCheck2 QCheck_alcotest Random Real_heap Value
