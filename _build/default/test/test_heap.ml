(* Heap model and graph theory: unit tests plus property tests of the
   lemmas the spanning-tree proof relies on (max_tree2, front/maximal
   interaction, subgraph refinement). *)

open Fcsl_heap

let check = Alcotest.(check bool)
let p = Ptr.of_int

let test_heap_basics () =
  let h = Heap.of_list [ (p 1, Value.int 5); (p 2, Value.bool true) ] in
  check "mem" true (Heap.mem (p 1) h);
  check "find" true (Value.equal (Heap.find_exn (p 2) h) (Value.bool true));
  check "free" false (Heap.mem (p 1) (Heap.free (p 1) h));
  check "null add rejected" true
    (try
       ignore (Heap.add Ptr.null Value.unit h);
       false
     with Invalid_argument _ -> true);
  check "dup of_list rejected" true
    (try
       ignore (Heap.of_list [ (p 1, Value.unit); (p 1, Value.unit) ]);
       false
     with Invalid_argument _ -> true)

let test_heap_union () =
  let h1 = Heap.singleton (p 1) Value.unit in
  let h2 = Heap.singleton (p 2) Value.unit in
  check "disjoint union" true (Option.is_some (Heap.union h1 h2));
  check "overlap undefined" false (Option.is_some (Heap.union h1 h1));
  let h = Heap.union_exn h1 h2 in
  check "subheap" true (Heap.subheap h1 h);
  check "diff" true (Heap.equal (Heap.diff h h2) h1);
  check "fresh" true (Ptr.equal (Heap.fresh_ptr h) (p 3))

let test_value_projections () =
  check "as_node" true
    (Value.as_node (Value.node ~marked:true ~left:(p 1) ~right:Ptr.null)
    = Some (true, p 1, Ptr.null));
  check "as_node on int" true (Value.as_node (Value.int 3) = None);
  check "compare total" true
    (Value.compare (Value.int 1) (Value.ptr (p 1)) <> 0)

let test_graph_shape () =
  let ok = Graph.of_adjacency [ (p 1, p 2, Ptr.null); (p 2, p 1, p 2) ] in
  check "well-formed" true (Option.is_some ok);
  let dangling = Graph.of_adjacency [ (p 1, p 9, Ptr.null) ] in
  check "dangling rejected" true (Option.is_none dangling);
  let bad_cell =
    Heap.of_list [ (p 1, Value.int 3) ] |> Graph.of_heap
  in
  check "ill-shaped cell rejected" true (Option.is_none bad_cell)

let fig2 () = Fcsl_casestudies.Graph_catalog.fig2_graph ()

let test_graph_accessors () =
  let g = fig2 () in
  check "edge a->b" true (Graph.edge g (p 1) (p 2));
  check "no edge b->a" false (Graph.edge g (p 2) (p 1));
  check "self-loop edge" true (Graph.edge g (p 3) (p 3));
  check "mark initially false" false (Graph.mark g (p 1));
  let g' = Graph.mark_node g (p 1) in
  check "marked" true (Graph.mark g' (p 1));
  let g'' = Graph.null_edge g' Graph.Left (p 1) in
  check "left severed" true (Ptr.is_null (Graph.edgl g'' (p 1)));
  check "right kept" true (Ptr.equal (Graph.edgr g'' (p 1)) (p 3))

let test_reachability () =
  let g = fig2 () in
  check "connected from a" true (Graph.connected g (p 1));
  check "not connected from b" false (Graph.connected g (p 2));
  check "reachable from c" true
    (Ptr.Set.equal (Graph.reachable g (p 3)) (Ptr.Set.of_list [ p 3; p 5 ]))

let test_tree_predicate () =
  let g = fig2 () in
  (* Nodes {d} form a leaf tree; {a,b,c} is a tree only if paths are
     unique and in-set. *)
  check "singleton leaf tree" true (Graph.tree g (p 4) (Ptr.Set.of_list [ p 4 ]));
  check "c not a tree (self-loop)" false
    (Graph.tree g (p 3) (Ptr.Set.of_list [ p 3 ]));
  check "a,b is a tree" true
    (Graph.tree g (p 1) (Ptr.Set.of_list [ p 1; p 2 ]));
  (* The final graph of Figure 2(6): all redundant edges removed. *)
  let gf =
    let unmarked =
      Graph.of_adjacency_exn
        [
          (p 1, p 2, p 3);
          (p 2, p 4, p 5);
          (p 3, Ptr.null, Ptr.null);
          (p 4, Ptr.null, Ptr.null);
          (p 5, Ptr.null, Ptr.null);
        ]
    in
    (* span marks every node it keeps *)
    List.fold_left Graph.mark_node unmarked (Graph.dom unmarked)
  in
  check "final spanning tree" true
    (Graph.spanning g gf (p 1) (Graph.dom_set gf));
  check "maximal" true (Graph.maximal gf (Graph.dom_set gf))

let test_front () =
  let g = fig2 () in
  let t = Ptr.Set.of_list [ p 2 ] in
  check "front of b includes d,e" true
    (Graph.front g t (Ptr.Set.of_list [ p 2; p 4; p 5 ]));
  check "front fails without e" false
    (Graph.front g t (Ptr.Set.of_list [ p 2; p 4 ]))

let test_subgraph () =
  let g = fig2 () in
  let g1 = Graph.mark_node g (p 1) in
  let g2 = Graph.null_edge g1 Graph.Left (p 1) in
  check "refinement" true (Graph.subgraph g g2);
  check "not reverse" false (Graph.subgraph g2 g);
  (* Changing an unmarked node's content breaks refinement. *)
  let bad =
    Graph.of_heap_exn
      (Heap.update (p 2)
         (Value.node ~marked:false ~left:Ptr.null ~right:Ptr.null)
         (Graph.to_heap g))
  in
  check "unmarked change rejected" false (Graph.subgraph g bad)

(* Property: max_tree2 holds on random graphs (it is an implication, so
   vacuous cases pass; the generator aims at its hypotheses by building
   two-subtree roots). *)
let prop_max_tree2 =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"max_tree2 on random graphs"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let g = Fcsl_casestudies.Graph_catalog.random_graph ~rng 6 in
         List.for_all
           (fun x ->
             let y1 = Graph.edgl g x and y2 = Graph.edgr g x in
             List.for_all
               (fun (ty1, ty2) -> Graph.max_tree2 g x y1 y2 ty1 ty2)
               [
                 (Graph.reachable g y1, Graph.reachable g y2);
                 (Ptr.Set.of_list [ y1 ], Ptr.Set.of_list [ y2 ]);
               ])
           (Graph.dom g)))

(* Property: random span-like refinements stay subgraphs. *)
let prop_subgraph_refinement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"mark/nullify steps refine"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let g0 = Fcsl_casestudies.Graph_catalog.random_graph ~rng 5 in
         let g = ref g0 in
         for _ = 1 to 10 do
           let nodes = Graph.dom !g in
           let x = List.nth nodes (Random.State.int rng (List.length nodes)) in
           if Random.State.bool rng then g := Graph.mark_node !g x
           else if Graph.mark !g x then
             g :=
               Graph.null_edge !g
                 (if Random.State.bool rng then Graph.Left else Graph.Right)
                 x
         done;
         Graph.subgraph g0 !g))

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "heap union PCM" `Quick test_heap_union;
    Alcotest.test_case "value projections" `Quick test_value_projections;
    Alcotest.test_case "graph shape validation" `Quick test_graph_shape;
    Alcotest.test_case "graph accessors" `Quick test_graph_accessors;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "tree predicate" `Quick test_tree_predicate;
    Alcotest.test_case "front predicate" `Quick test_front;
    Alcotest.test_case "subgraph refinement" `Quick test_subgraph;
    prop_max_tree2;
    prop_subgraph_refinement;
  ]
