(* The evaluation-reproduction machinery: line counting over tagged
   sources, the Table 2 matrix and Figure 5 diagram shape checks against
   the paper, and end-to-end verification of every registry entry. *)

open Fcsl_report

let check = Alcotest.(check bool)

let test_registry_complete () =
  Alcotest.(check int) "eleven Table 1 rows" 11 (List.length Registry.all);
  let names = List.map (fun c -> c.Registry.c_name) Registry.all in
  List.iter
    (fun expected ->
      check ("row " ^ expected) true (List.mem expected names))
    [
      "CAS-lock"; "Ticketed lock"; "CG increment"; "CG allocator";
      "Pair snapshot"; "Treiber stack"; "Spanning tree"; "Flat combiner";
      "Seq. stack"; "FC-stack"; "Prod/Cons";
    ]

let test_loc_counting () =
  List.iter
    (fun (c : Registry.case) ->
      let counts = Loc_stats.counts_of_case c in
      check
        (c.Registry.c_name ^ " has counted lines")
        true
        (Loc_stats.total counts > 0);
      check
        (c.Registry.c_name ^ " has a Main section")
        true
        (counts.Loc_stats.main > 0))
    Registry.all;
  (* library-introducing rows have Conc/Acts/Stab sections; pure clients
     have none — the "-" pattern of the paper's Table 1 *)
  let has_conc name =
    match Registry.find name with
    | Some c -> (Loc_stats.counts_of_case c).Loc_stats.conc > 0
    | None -> false
  in
  List.iter
    (fun name -> check (name ^ " introduces a concurroid") true (has_conc name))
    [ "CAS-lock"; "Ticketed lock"; "Pair snapshot"; "Treiber stack";
      "Spanning tree"; "Flat combiner" ];
  List.iter
    (fun name ->
      check (name ^ " reuses concurroids only") false (has_conc name))
    [ "CG increment"; "CG allocator"; "Seq. stack"; "FC-stack"; "Prod/Cons" ]

let test_markers_wellformed () =
  (* every tagged case file closes with an End marker and contains a
     Main marker *)
  match Loc_stats.repo_root () with
  | None -> Alcotest.fail "repo root not found"
  | Some root ->
    List.iter
      (fun (c : Registry.case) ->
        let path = Filename.concat root c.Registry.c_file in
        let content =
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let contains needle =
          let nl = String.length needle and cl = String.length content in
          let rec go i =
            i + nl <= cl && (String.sub content i nl = needle || go (i + 1))
          in
          go 0
        in
        check (c.Registry.c_file ^ " has Main marker") true
          (contains "(*!Main*)");
        check (c.Registry.c_file ^ " has End marker") true
          (contains "(*!End*)"))
      Registry.all

let test_table2_matches () =
  check "Table 2 matches the paper" true (Tables.table2_matches_paper ())

let test_fig5_matches () =
  check "Figure 5 matches the paper" true (Tables.fig5_matches_paper ())

let test_transitive_uses () =
  (* Seq. stack inherits the lock dependency through the Treiber
     stack's allocator *)
  match Registry.find "Seq. stack" with
  | Some c ->
    check "inherits lock interface" true
      (List.mem Registry.Lock_interface (Registry.transitive_uses c))
  | None -> Alcotest.fail "Seq. stack missing"

(* The full Table 1 run: every row verifies.  This is the repo's
   headline end-to-end check (also exercised by the bench harness). *)
let test_all_rows_verify () =
  List.iter
    (fun (c : Registry.case) ->
      let reports = c.Registry.c_verify () in
      List.iter
        (fun r ->
          check
            (Fmt.str "%s: %a" c.Registry.c_name Fcsl_core.Verify.pp_report r)
            true (Fcsl_core.Verify.ok r))
        reports)
    Registry.all

let suite =
  [
    Alcotest.test_case "registry covers Table 1" `Quick test_registry_complete;
    Alcotest.test_case "line counting" `Quick test_loc_counting;
    Alcotest.test_case "source markers well-formed" `Quick
      test_markers_wellformed;
    Alcotest.test_case "Table 2 matches the paper" `Quick test_table2_matches;
    Alcotest.test_case "Figure 5 matches the paper" `Quick test_fig5_matches;
    Alcotest.test_case "transitive concurroid usage" `Quick
      test_transitive_uses;
    Alcotest.test_case "all Table 1 rows verify" `Slow test_all_rows_verify;
  ]
