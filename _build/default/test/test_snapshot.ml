(* Pair snapshot: concurroid/action laws, the stability lemmas behind
   the version-check argument, the read_pair triple, and refutation of
   the unchecked double-read. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

let check = Alcotest.(check bool)

let setup () =
  let l = Label.make "ts_snapshot" in
  let c = Snapshot.concurroid ~depth:2 l in
  let states = List.map (fun s -> State.singleton l s) (Concurroid.enum c) in
  (l, c, World.of_list [ c ], states)

let test_laws () =
  let _, c, _, _ = setup () in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) (Concurroid.check_laws c))

let test_action_laws () =
  let l, _, w, states = setup () in
  let actions =
    [
      ("read_x", Action.map ignore (Snapshot.read_cell l Snapshot.x_cell));
      ("write_x", Snapshot.write_cell l Snapshot.x_cell 1);
      ("write_y", Snapshot.write_cell l Snapshot.y_cell 0);
    ]
  in
  List.iter
    (fun (name, a) ->
      Alcotest.(check (list string))
        (name ^ " laws") []
        (List.map (Fmt.str "%a" Action.pp_violation)
           (Action.check_laws w a ~states)))
    actions

let test_stability () =
  let l, _, w, states = setup () in
  let stable p = Stability.is_stable (Stability.check w ~states p) in
  check "version grows" true
    (stable (Snapshot.assert_version_at_least l Snapshot.x_cell 1));
  check "version pins value" true
    (stable (Snapshot.assert_version_pins l Snapshot.x_cell (1, 2)));
  check "history extends" true
    (stable
       (Snapshot.assert_hist_extends l
          (Hist.add 1
             (Hist.entry ~arg:(Value.int 1)
                ~state:(Value.pair (Value.int 1) (Value.int 0))
                "wx")
             Hist.empty)));
  (* negative control: the raw value of x is unstable *)
  check "raw value unstable" false
    (stable (fun st ->
         match State.find l st with
         | Some s -> (
           match Snapshot.cell_of (Slice.joint s) Snapshot.x_cell with
           | Some (v, _) -> v = 0
           | None -> false)
         | None -> false))

let test_triples () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Snapshot.verify ())

let test_unchecked_refuted () =
  check "unchecked double-read refuted" false
    (Verify.ok (Snapshot.refute_unchecked ()))

(* Property: on random interleaved schedules of read_pair against many
   writers, the returned pair is always a recorded simultaneous state. *)
let prop_random_snapshots =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"random schedules: snapshot valid"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let l = Label.make "rand_snapshot" in
         let c = Snapshot.concurroid ~depth:1 l in
         let w = World.of_list [ c ] in
         let st =
           State.singleton l
             (Slice.make ~self:(Aux.hist Hist.empty)
                ~joint:
                  (Heap.of_list
                     [
                       (Snapshot.x_cell, Value.pair (Value.int 0) (Value.int 0));
                       (Snapshot.y_cell, Value.pair (Value.int 0) (Value.int 0));
                     ])
                ~other:(Aux.hist Hist.empty))
         in
         let interfere = World.labels w in
         let genv, mine = Sched.genv_of_state ~interfere w st in
         let prog =
           Prog.par (Snapshot.read_pair l)
             (Prog.par
                (Prog.act (Snapshot.write_cell l Snapshot.x_cell 1))
                (Prog.act (Snapshot.write_cell l Snapshot.y_cell 1)))
         in
         match Sched.run_random ~seed ~interference:true genv mine prog with
         | Sched.Finished (((a, b), _), final) ->
           (* the returned pair occurs among the recorded states *)
           let total =
             match State.find l final with
             | Some s -> (
               match
                 ( Aux.as_hist (Slice.self s), Aux.as_hist (Slice.other s) )
               with
               | Some hs, Some ho ->
                 Option.value (Hist.join hs ho) ~default:Hist.empty
               | _ -> Hist.empty)
             | None -> Hist.empty
           in
           let states =
             (0, 0)
             :: List.filter_map Snapshot.entry_pair (Hist.entries total)
           in
           List.mem (a, b) states
         | Sched.Crashed _ -> false
         | Sched.Diverged -> true))

let suite =
  [
    Alcotest.test_case "concurroid laws" `Quick test_laws;
    Alcotest.test_case "action laws" `Quick test_action_laws;
    Alcotest.test_case "stability lemmas" `Quick test_stability;
    Alcotest.test_case "read_pair & writer triples" `Slow test_triples;
    Alcotest.test_case "injected: unchecked read refuted" `Quick
      test_unchecked_refuted;
    prop_random_snapshots;
  ]
