(* The deductive layer (Rules): leaf rules check their obligations,
   gluing rules check entailments without re-exploring sub-programs,
   broken applications are rejected, and the rule verdicts agree with
   direct model checking (differential soundness test). *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let sp = Label.make "tr_span"
let conc = Span.concurroid sp
let world = World.of_list [ conc ]

let states () =
  List.map (fun s -> State.singleton sp s) (Concurroid.enum conc)

let ctx () = Rules.ctx ~world ~states:(states ())

(* Leaf rule: RET. *)

let test_ret_ok () =
  let spec =
    Spec.make ~name:"ret42"
      ~pre:(fun _ -> true)
      ~post:(fun r _ _ -> r = 42)
  in
  match Rules.ret (ctx ()) 42 spec with
  | Ok t -> check "spec kept" true (Spec.name (Rules.spec t) = "ret42")
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e

let test_ret_bad_post () =
  let spec =
    Spec.make ~name:"ret-wrong"
      ~pre:(fun _ -> true)
      ~post:(fun r _ _ -> r = 43)
  in
  check "wrong ret post rejected" true
    (Result.is_error (Rules.ret (ctx ()) 42 spec))

let test_ret_unstable_post_rejected () =
  (* post says node 1 is unmarked — unstable under marknode. *)
  let spec =
    Spec.make ~name:"ret-unstable"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun () _ f -> not (Span.assert_marked sp (p 1) f))
  in
  check "unstable post rejected" true
    (Result.is_error (Rules.ret (ctx ()) () spec))

(* Leaf rule: ACT. *)

let trymark_spec x =
  Spec.make
    ~name:(Fmt.str "trymark_tp(%a)" Ptr.pp x)
    ~pre:(fun st -> Span.assert_in_dom sp x st)
    ~post:(fun r _i f ->
      Span.assert_marked sp x f && ((not r) || Span.assert_in_self sp x f))

let test_act_ok () =
  match Rules.act (ctx ()) (Span.trymark sp (p 1)) (trymark_spec (p 1)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e

let test_act_unsafe_rejected () =
  (* read_child requires ownership; a pre that doesn't provide it lets
     the rule catch the unsafe state. *)
  let bad_spec =
    Spec.make ~name:"read-unowned"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun _ _ _ -> true)
  in
  check "unsafe act rejected" true
    (Result.is_error
       (Rules.act (ctx ()) (Span.read_child sp (p 1) Graph.Left) bad_spec))

let test_act_wrong_post_rejected () =
  let bad_spec =
    Spec.make ~name:"trymark-wrong"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun r _ _ -> r = true) (* trymark may fail *)
  in
  check "wrong act post rejected" true
    (Result.is_error (Rules.act (ctx ()) (Span.trymark sp (p 1)) bad_spec))

(* Gluing: BIND and CONSEQ. *)

let test_bind_ok () =
  let c = ctx () in
  let t1 = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  (* continuation: just return the boolean; its spec remembers the mark *)
  let k_spec r =
    Spec.make ~name:"k"
      ~pre:(fun st -> Span.assert_marked sp (p 1) st)
      ~post:(fun r' _i f -> r' = r && Span.assert_marked sp (p 1) f)
  in
  let k r = Result.get_ok (Rules.ret c r (k_spec r)) in
  let goal =
    Spec.make ~name:"trymark;ret"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun _ _i f -> Span.assert_marked sp (p 1) f)
  in
  (match Rules.bind c ~rands:[ true; false ] t1 k goal with
  | Ok t -> check "composed" true (Prog.size (Rules.prog t) >= 2)
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e);
  match
    Rules.bind_post_entails c ~rands:[ true; false ] ~finals:[ true; false ]
      t1 k goal
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e

let test_bind_broken_glue_rejected () =
  let c = ctx () in
  let t1 = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  (* continuation demanding something trymark's post does not give *)
  let k_spec _ =
    Spec.make ~name:"k-needs-self"
      ~pre:(fun st -> Span.assert_in_self sp (p 1) st)
      ~post:(fun _ _ _ -> true)
  in
  let k r =
    Rules.trusted (Prog.ret r) (k_spec r)
  in
  let goal =
    Spec.make ~name:"bad-glue"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun _ _ _ -> true)
  in
  check "broken glue rejected" true
    (Result.is_error (Rules.bind c ~rands:[ true; false ] t1 k goal))

let test_conseq () =
  let c = ctx () in
  let t = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  let weaker =
    Spec.make ~name:"weaker"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun _ _i f -> Span.assert_marked sp (p 1) f)
  in
  check "weakening ok" true
    (Result.is_ok (Rules.conseq c ~results:[ true; false ] t weaker));
  let stronger =
    Spec.make ~name:"stronger"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun _ _i f -> Span.assert_in_self sp (p 1) f)
  in
  check "strengthening rejected" true
    (Result.is_error (Rules.conseq c ~results:[ true; false ] t stronger))

(* Semantic rules: PAR and FFIX. *)

let test_par_semantic () =
  let c = ctx () in
  let t1 = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  let goal =
    Spec.make ~name:"race"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun (_, _) _i f -> Span.assert_marked sp (p 1) f)
  in
  match Rules.par_semantic c ~fuel:8 t1 t1 goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e

let test_par_semantic_rejects () =
  let c = ctx () in
  let t1 = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  let bad =
    Spec.make ~name:"both-win"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun (a, b) _i _f -> a && b) (* impossible: one CAS loses *)
  in
  check "impossible par post rejected" true
    (Result.is_error (Rules.par_semantic c ~fuel:8 t1 t1 bad))

let test_ffix_semantic () =
  let c = ctx () in
  match
    Rules.ffix_semantic c ~fuel:24
      (fun loop x ->
        let open Prog in
        if Ptr.is_null x then ret false
        else
          let* b = act (Span.trymark sp x) in
          if b then
            let* xl = act (Span.read_child sp x Graph.Left) in
            let* _ = loop xl in
            ret true
          else ret false)
      (p 1)
      (Spec.make ~name:"left-spine"
         ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
         ~post:(fun _ _i f -> Span.assert_marked sp (p 1) f))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Rules.pp_rule_error e

(* Differential soundness: for a batch of (program, spec) pairs, the
   rule verdict agrees with direct model checking. *)
let test_differential () =
  let c = ctx () in
  let direct prog spec =
    Verify.ok
      (Verify.check_triple ~fuel:12 ~world ~init:(states ()) prog spec)
  in
  (* accepted by rules => accepted by the checker *)
  let t = Result.get_ok (Rules.act c (Span.trymark sp (p 1)) (trymark_spec (p 1))) in
  check "act verdict agrees" true (direct (Rules.prog t) (Rules.spec t));
  (* rejected by rules (wrong post) => rejected by the checker *)
  let bad =
    Spec.make ~name:"bad"
      ~pre:(fun st -> Span.assert_in_dom sp (p 1) st)
      ~post:(fun r _ _ -> r = true)
  in
  check "rules reject" true
    (Result.is_error (Rules.act c (Span.trymark sp (p 1)) bad));
  check "checker rejects too" false
    (direct (Prog.act (Span.trymark sp (p 1))) bad)

let suite =
  [
    Alcotest.test_case "ret rule" `Quick test_ret_ok;
    Alcotest.test_case "ret: wrong post rejected" `Quick test_ret_bad_post;
    Alcotest.test_case "ret: unstable post rejected" `Quick
      test_ret_unstable_post_rejected;
    Alcotest.test_case "act rule" `Quick test_act_ok;
    Alcotest.test_case "act: unsafe rejected" `Quick test_act_unsafe_rejected;
    Alcotest.test_case "act: wrong post rejected" `Quick
      test_act_wrong_post_rejected;
    Alcotest.test_case "bind rule glues specs" `Quick test_bind_ok;
    Alcotest.test_case "bind: broken glue rejected" `Quick
      test_bind_broken_glue_rejected;
    Alcotest.test_case "consequence rule" `Quick test_conseq;
    Alcotest.test_case "par (semantic)" `Quick test_par_semantic;
    Alcotest.test_case "par: impossible post rejected" `Quick
      test_par_semantic_rejects;
    Alcotest.test_case "ffix (semantic)" `Slow test_ffix_semantic;
    Alcotest.test_case "differential: rules vs checker" `Quick
      test_differential;
  ]
