(* The spanning-tree case study: stability lemmas, the span_tp and
   span_root_tp triples (Figures 1-4), and failure injection — broken
   variants of span must be refuted by the verifier. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let p = Ptr.of_int

let sp = Label.make "ts_span"
let conc = Span.concurroid sp
let world = World.of_list [ conc ]

let states () =
  List.map (fun s -> State.singleton sp s) (Concurroid.enum conc)

(* Stability of the assertions underpinning span_tp (Section 3.2). *)

let stable name pred =
  Alcotest.test_case name `Quick (fun () ->
      let r = Stability.check world ~states:(states ()) pred in
      check name true (Stability.is_stable r))

let unstable name pred =
  Alcotest.test_case name `Quick (fun () ->
      let r = Stability.check world ~states:(states ()) pred in
      check name false (Stability.is_stable r))

let stability_tests =
  [
    stable "dom membership stable" (Span.assert_in_dom sp (p 1));
    stable "self membership stable" (Span.assert_in_self sp (p 1));
    stable "markedness stable" (Span.assert_marked sp (p 1));
    stable "edges of owned node stable"
      (Span.assert_edges_of_owned sp (p 1) (p 2, Ptr.null));
    (* Negative control: unmarkedness is NOT stable — the environment
       may mark the node.  The checker must find the counterexample. *)
    unstable "unmarkedness is unstable" (fun st ->
        Span.assert_in_dom sp (p 1) st && not (Span.assert_marked sp (p 1) st));
    (* Negative control: edges of an unowned node are unstable. *)
    unstable "edges of unowned node unstable" (fun st ->
        match State.find sp st with
        | Some s -> (
          match Graph.of_heap (Slice.joint s) with
          | Some g -> Graph.mem (p 1) g && Ptr.equal (Graph.edgl g (p 1)) (p 2)
          | None -> false)
        | None -> false);
  ]

(* The subgraph_steps lemma over env-step closures. *)
let test_subgraph_steps () =
  List.iter
    (fun st ->
      match State.find sp st with
      | Some s when Concurroid.coh conc s ->
        check "subgraph_steps" true (Span.subgraph_steps_holds conc s)
      | _ -> ())
    (states ())

(* The headline triples.  (Exhaustive; the 2-node universe keeps the
   full-interference check quick, 3-node runs in the slow suite and the
   bench harness.) *)

let test_span_tp () =
  List.iter
    (fun report ->
      check (Fmt.str "%a" Verify.pp_report report) true (Verify.ok report))
    (Span.verify_span ~max_nodes:2 ())

let test_span_root_tp () =
  List.iter
    (fun report ->
      check (Fmt.str "%a" Verify.pp_report report) true (Verify.ok report))
    (Span.verify_span_root ~max_nodes:3 ())

(* Failure injection 1: span without the CAS — it marks unconditionally
   (lost-update bug).  The span_tp triple must be refuted: under
   interference or racing children, the thread claims nodes it did not
   mark. *)

let blind_mark sp x : bool Action.t =
  Action.make
    ~name:(Fmt.str "blind_mark(%a)" Ptr.pp x)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s -> (
        match Graph.of_heap (Slice.joint s) with
        | Some g -> Graph.mem x g
        | None -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn sp st in
      let g = Graph.of_heap_exn (Slice.joint s) in
      let slf = Option.get (Aux.as_set (Slice.self s)) in
      if Ptr.Set.mem x slf then (true, st)
      else
        (* claims the node into self even if someone else marked it *)
        let s' =
          Slice.make
            ~self:(Aux.set (Ptr.Set.add x slf))
            ~joint:(Graph.to_heap (Graph.mark_node g x))
            ~other:(Slice.other s)
        in
        (true, State.add sp s' st))
    ~phys:(fun st ->
      let s = State.find_exn sp st in
      let g = Graph.of_heap_exn (Slice.joint s) in
      let _, l, r = Graph.cont g x in
      Action.Write (x, Value.node ~marked:true ~left:l ~right:r))
    ()

let test_blind_mark_refuted () =
  (* The broken action itself violates the transition-correspondence /
     coherence laws: marking an already-marked node into self collides
     with the owner. *)
  let violations =
    Action.check_laws world
      (Action.map (fun _ -> ()) (blind_mark sp (p 1)))
      ~states:(states ())
  in
  check "blind_mark violates action laws" true (violations <> [])

(* Failure injection 2: span that skips the nullify step.  The result
   claims to be a maximal tree but redundant edges survive; span_tp's
   postcondition must catch it on a graph with a redundant edge. *)

let span_no_nullify x : bool Prog.t =
  let open Prog in
  let body loop y =
    if Ptr.is_null y then ret false
    else
      let* b = act (Span.trymark sp y) in
      if b then
        let* yl = act (Span.read_child sp y Graph.Left) in
        let* yr = act (Span.read_child sp y Graph.Right) in
        let* _ = par (loop yl) (loop yr) in
        ret true
      else ret false
  in
  Prog.ffix body x

let test_no_nullify_refuted () =
  let init = states () in
  let report =
    Verify.check_triple ~fuel:24 ~world ~init (span_no_nullify (p 1))
      (Span.span_spec sp (p 1))
  in
  check "missing nullify refuted" false (Verify.ok report)

(* Failure injection 3: nullifying the wrong side breaks the tree/front
   structure. *)
let span_wrong_side x : bool Prog.t =
  let open Prog in
  let body loop y =
    if Ptr.is_null y then ret false
    else
      let* b = act (Span.trymark sp y) in
      if b then
        let* yl = act (Span.read_child sp y Graph.Left) in
        let* yr = act (Span.read_child sp y Graph.Right) in
        let* rs = par (loop yl) (loop yr) in
        (* sides swapped below *)
        let* () = if not (fst rs) then act (Span.nullify sp y Graph.Right) else ret () in
        let* () = if not (snd rs) then act (Span.nullify sp y Graph.Left) else ret () in
        ret true
      else ret false
  in
  Prog.ffix body x

let test_wrong_side_refuted () =
  let init = states () in
  let report =
    Verify.check_triple ~fuel:24 ~world ~init (span_wrong_side (p 1))
      (Span.span_spec sp (p 1))
  in
  check "swapped nullify refuted" false (Verify.ok report)

(* Determinised Figure 2 replay: the exact schedule of the paper's
   figure yields the exact final tree of stage (6). *)
let test_fig2_replay () =
  let pv = Label.make "fig2_priv" in
  let sp2 = Label.make "fig2_span" in
  let w = World.of_list [ Priv.make pv ] in
  let g0 = Graph_catalog.fig2_graph () in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g0))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  match
    Sched.run_with_chooser
      ~choose:(fun ~step:_ _ -> 0)
      genv mine
      (Span.span_root ~pv ~sp:sp2 (p 1))
  with
  | Sched.Finished (true, final) ->
    let g' = Graph.of_heap_exn (Priv.pv_self pv final) in
    check "spanning" true (Graph.spanning g0 g' (p 1) (Graph.dom_set g'));
    check "all marked" true
      (List.for_all (fun x -> Graph.mark g' x) (Graph.dom g'))
  | _ -> Alcotest.fail "fig2 replay did not finish"

(* Random large graphs: span always yields a spanning tree (randomized
   schedules, no interference: the closed-world setting). *)
let prop_random_spanning =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"span spans random connected graphs"
       QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 10))
       (fun (seed, n) ->
         let rng = Random.State.make [| seed |] in
         let g0 = Graph_catalog.random_connected_graph ~rng n in
         let pv = Label.make "rand_priv" and sp' = Label.make "rand_span" in
         let w = World.of_list [ Priv.make pv ] in
         let st =
           State.singleton pv
             (Slice.make
                ~self:(Aux.heap (Graph.to_heap g0))
                ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
         in
         let genv, mine = Sched.genv_of_state w st in
         match
           Sched.run_random ~seed ~fuel:100_000 genv mine
             (Span.span_root ~pv ~sp:sp' (p 1))
         with
         | Sched.Finished (true, final) ->
           let g' = Graph.of_heap_exn (Priv.pv_self pv final) in
           Graph.spanning g0 g' (p 1) (Graph.dom_set g')
         | _ -> false))

let suite =
  stability_tests
  @ [
      Alcotest.test_case "subgraph_steps lemma" `Quick test_subgraph_steps;
      Alcotest.test_case "span_tp verified (2-node exhaustive)" `Slow
        test_span_tp;
      Alcotest.test_case "span_root_tp verified (3-node exhaustive)" `Slow
        test_span_root_tp;
      Alcotest.test_case "injected: blind mark refuted" `Quick
        test_blind_mark_refuted;
      Alcotest.test_case "injected: missing nullify refuted" `Slow
        test_no_nullify_refuted;
      Alcotest.test_case "injected: swapped nullify refuted" `Slow
        test_wrong_side_refuted;
      Alcotest.test_case "Figure 2 replay" `Quick test_fig2_replay;
      prop_random_spanning;
    ]
