(* Core framework: subjective states, concurroid laws, action laws,
   the interleaving scheduler, and environment interference. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let p = Ptr.of_int

(* Slices and states. *)

let test_slice_transpose () =
  let s =
    Slice.make ~self:(Aux.nat 1) ~joint:Heap.empty ~other:(Aux.nat 2)
  in
  let t = Slice.transpose s in
  check "self<->other" true
    (Aux.equal (Slice.self t) (Aux.nat 2) && Aux.equal (Slice.other t) (Aux.nat 1));
  check "involution" true (Slice.equal (Slice.transpose t) s)

let test_slice_validity () =
  let s = Slice.make ~self:Aux.own ~joint:Heap.empty ~other:Aux.own in
  check "own/own invalid" false (Slice.valid s);
  let s' = Slice.with_other Aux.not_own s in
  check "own/notown valid" true (Slice.valid s');
  check "combined" true (Aux.equal (Slice.combined_exn s') Aux.own)

let test_slice_realign () =
  let s =
    Slice.make ~self:(Aux.nat 3) ~joint:Heap.empty ~other:(Aux.nat 1)
  in
  check "same total ok" true
    (Option.is_some (Slice.realign s ~self:(Aux.nat 0) ~other:(Aux.nat 4)));
  check "different total rejected" false
    (Option.is_some (Slice.realign s ~self:(Aux.nat 0) ~other:(Aux.nat 5)))

let test_state_erasure () =
  let l1 = Label.make "t1" and l2 = Label.make "t2" in
  let st =
    State.empty
    |> State.add l1
         (Slice.make
            ~self:(Aux.heap (Heap.singleton (p 1) Value.unit))
            ~joint:(Heap.singleton (p 2) Value.unit)
            ~other:(Aux.heap Heap.empty))
    |> State.add l2
         (Slice.make
            ~self:(Aux.set_of_list [ p 2 ])
            ~joint:(Heap.singleton (p 3) Value.unit)
            ~other:Aux.Unit)
  in
  let h = State.erase_exn st in
  checki "erased cells" 3 (Heap.cardinal h);
  (* A colliding joint makes erasure undefined. *)
  let bad = State.with_joint l2 (Heap.singleton (p 1) Value.unit) st in
  check "collision detected" true (State.erase bad = None)

(* Concurroid laws: both SpanTree and Priv must satisfy the metatheory
   checks over their enumerations. *)

let test_spantree_laws () =
  let c = Span.concurroid (Label.make "law_span") in
  let violations = Concurroid.check_laws c in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) violations)

let test_priv_laws () =
  let c = Priv.make (Label.make "law_priv") in
  let violations = Concurroid.check_laws c in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) violations)

(* A deliberately broken concurroid: its transition steals from other.
   The law checker must refute it. *)
let test_broken_concurroid_refuted () =
  let l = Label.make "broken" in
  let thief : Concurroid.transition =
    {
      tr_name = "steal";
      tr_external = false;
      tr_step =
        (fun s ->
          match Aux.as_nat (Slice.other s) with
          | Some n when n > 0 ->
            [
              Slice.make
                ~self:(Aux.join_exn (Slice.self s) (Aux.nat 1))
                ~joint:(Slice.joint s)
                ~other:(Aux.nat (n - 1));
            ]
          | _ -> []);
    }
  in
  let c =
    Concurroid.make ~label:l ~name:"Thief"
      ~coh:(fun s ->
        Heap.is_empty (Slice.joint s)
        && Option.is_some (Aux.as_nat (Slice.self s))
        && Option.is_some (Aux.as_nat (Slice.other s)))
      ~transitions:[ thief ]
      ~enum:(fun () ->
        [
          Slice.make ~self:(Aux.nat 1) ~joint:Heap.empty ~other:(Aux.nat 2);
        ])
      ()
  in
  check "other-fixity violated" false (Concurroid.well_formed c)

(* Action laws for the span actions over the catalogue universe. *)

let span_world_and_states () =
  let l = Label.make "act_span" in
  let c = Span.concurroid l in
  let w = World.of_list [ c ] in
  let states =
    List.map (fun s -> State.singleton l s) (Concurroid.enum c)
  in
  (l, w, states)

let test_action_laws () =
  let l, w, states = span_world_and_states () in
  let actions =
    [
      ("trymark", fun x -> Action.map (fun _ -> ()) (Span.trymark l x));
      ("nullify-l", fun x -> Span.nullify l x Graph.Left);
      ( "read_child",
        fun x -> Action.map (fun _ -> ()) (Span.read_child l x Graph.Left) );
    ]
  in
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun n ->
          let violations = Action.check_laws w (mk (p n)) ~states in
          Alcotest.(check (list string))
            (Fmt.str "%s(%d) laws" name n)
            []
            (List.map (Fmt.str "%a" Action.pp_violation) violations))
        [ 1; 2; 3 ])
    actions

(* A broken action: writes without taking a transition (nullifies an
   edge of a node it does not own).  Law checking must refute it. *)
let test_rogue_action_refuted () =
  let l, w, states = span_world_and_states () in
  let rogue : unit Action.t =
    Action.make ~name:"rogue_nullify"
      ~safe:(fun st ->
        match State.find l st with
        | Some s -> (
          match Graph.of_heap (Slice.joint s) with
          | Some g ->
            Graph.mem (p 1) g && not (Ptr.is_null (Graph.edgl g (p 1)))
          | None -> false)
        | None -> false)
      ~step:(fun st ->
        let s = State.find_exn l st in
        let g = Graph.of_heap_exn (Slice.joint s) in
        ( (),
          State.add l
            (Slice.with_joint (Graph.to_heap (Graph.null_edge g Graph.Left (p 1))) s)
            st ))
      ~phys:(fun st ->
        let s = State.find_exn l st in
        let g = Graph.of_heap_exn (Slice.joint s) in
        let m, _, r = Graph.cont g (p 1) in
        Action.Write (p 1, Value.node ~marked:m ~left:Ptr.null ~right:r))
      ()
  in
  check "rogue action refuted" true (Action.check_laws w rogue ~states <> [])

(* Scheduler: deterministic sequential execution. *)

let seq_world () =
  let l = Label.make "sched_span" in
  let c = Span.concurroid l in
  (l, World.of_list [ c ])

let test_sched_sequential () =
  let l, w = seq_world () in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton l
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let prog =
    let open Prog in
    let* b = act (Span.trymark l (p 1)) in
    let* b' = act (Span.trymark l (p 1)) in
    ret (b, b')
  in
  let outs, complete = Sched.explore ~interference:false genv mine prog in
  check "complete" true complete;
  checki "single outcome" 1 (List.length outs);
  match outs with
  | [ Sched.Finished ((true, false), final) ] ->
    check "node marked and owned" true
      (Span.assert_in_self l (p 1) final)
  | _ -> Alcotest.fail "unexpected outcomes"

(* Parallel marking race: exactly one of two threads wins the CAS. *)
let test_sched_race () =
  let l, w = seq_world () in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton l
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let prog =
    Prog.par (Prog.act (Span.trymark l (p 1))) (Prog.act (Span.trymark l (p 1)))
  in
  let outs, complete = Sched.explore ~interference:false genv mine prog in
  check "complete" true complete;
  checki "two interleavings" 2 (List.length outs);
  List.iter
    (fun out ->
      match out with
      | Sched.Finished ((a, b), final) ->
        check "exactly one winner" true (a <> b);
        check "mark owned by root after join" true
          (Span.assert_in_self l (p 1) final)
      | _ -> Alcotest.fail "unexpected outcome")
    outs

(* Interference: with an environment allowed to mark, a single trymark
   may lose; without interference it always wins. *)
let test_interference_changes_outcomes () =
  let l, w = seq_world () in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton l
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let prog = Prog.act (Span.trymark l (p 1)) in
  let results interference =
    let interfere = if interference then World.labels w else [] in
    let genv, mine = Sched.genv_of_state ~interfere w st in
    let outs, _ = Sched.explore ~interference genv mine prog in
    List.filter_map
      (function Sched.Finished (r, _) -> Some r | _ -> None)
      outs
    |> List.sort_uniq Stdlib.compare
  in
  Alcotest.(check (list bool)) "no interference: wins" [ true ] (results false);
  Alcotest.(check (list bool))
    "interference: both outcomes" [ false; true ] (results true)

(* Hide: installation carves the private heap; uninstallation returns
   it; outside interference cannot touch the hidden label. *)
let test_hide_roundtrip () =
  let pv = Label.make "hide_priv" in
  let sp = Label.make "hide_span" in
  let w = World.of_list [ Priv.make pv ] in
  let g = Graph_catalog.graph_of [ (p 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state ~interfere:[ pv ] w st in
  let prog = Span.span_root ~pv ~sp (p 1) in
  let outs, complete = Sched.explore genv mine prog in
  check "complete" true complete;
  check "all finished, heap returned marked" true
    (outs <> []
    && List.for_all
         (function
           | Sched.Finished (true, final) -> (
             match Graph.of_heap (Priv.pv_self pv final) with
             | Some g' -> Graph.mark g' (p 1)
             | None -> false)
           | _ -> false)
         outs)

let suite =
  [
    Alcotest.test_case "slice transpose" `Quick test_slice_transpose;
    Alcotest.test_case "slice validity" `Quick test_slice_validity;
    Alcotest.test_case "slice realign" `Quick test_slice_realign;
    Alcotest.test_case "state erasure" `Quick test_state_erasure;
    Alcotest.test_case "SpanTree laws" `Quick test_spantree_laws;
    Alcotest.test_case "Priv laws" `Quick test_priv_laws;
    Alcotest.test_case "broken concurroid refuted" `Quick
      test_broken_concurroid_refuted;
    Alcotest.test_case "span action laws" `Quick test_action_laws;
    Alcotest.test_case "rogue action refuted" `Quick test_rogue_action_refuted;
    Alcotest.test_case "sequential scheduling" `Quick test_sched_sequential;
    Alcotest.test_case "parallel CAS race" `Quick test_sched_race;
    Alcotest.test_case "interference changes outcomes" `Quick
      test_interference_changes_outcomes;
    Alcotest.test_case "hide roundtrip" `Quick test_hide_roundtrip;
  ]
