(* Locks and their coarse-grained clients: concurroid/action laws for
   both lock implementations, stability lemmas, the CG increment and CG
   allocator triples against either lock (the abstract-interface reuse),
   and failure injection. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex

let check = Alcotest.(check bool)

(* A small counter resource shared by the law tests. *)
let x_cell = Ptr.of_int 50

let counter_resource : Lock_intf.resource =
  {
    r_name = "counter";
    r_inv =
      (fun h total ->
        match (Heap.find x_cell h, Aux.as_nat total) with
        | Some v, Some n -> Value.equal v (Value.int n)
        | _ -> false);
    r_heaps =
      (fun () -> List.init 3 (fun n -> Heap.singleton x_cell (Value.int n)));
    r_ghosts = (fun () -> List.init 3 (fun n -> Aux.nat n));
  }

(* CAS lock laws. *)

let cas_setup () =
  let l = Label.make "tl_caslock" in
  let cfg = Caslock.default_config in
  let c = Caslock.concurroid ~label:l cfg counter_resource in
  let states = List.map (fun s -> State.singleton l s) (Concurroid.enum c) in
  (l, cfg, c, World.of_list [ c ], states)

let test_caslock_laws () =
  let _, _, c, _, _ = cas_setup () in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) (Concurroid.check_laws c))

let test_caslock_action_laws () =
  let l, cfg, _, w, states = cas_setup () in
  let actions =
    [
      ("try_lock", Action.map ignore (Caslock.try_lock l cfg));
      ( "unlock",
        Caslock.unlock_act l cfg counter_resource ~delta:(Aux.nat 1) );
      ("read", Action.map ignore (Caslock.read l cfg x_cell));
      ("write", Caslock.write l cfg x_cell (Value.int 2));
    ]
  in
  List.iter
    (fun (name, a) ->
      Alcotest.(check (list string))
        (name ^ " laws") []
        (List.map (Fmt.str "%a" Action.pp_violation)
           (Action.check_laws w a ~states)))
    actions

let test_caslock_stability () =
  let l, cfg, _, w, states = cas_setup () in
  let stable p = Stability.is_stable (Stability.check w ~states p) in
  check "holds stable" true (stable (Caslock.assert_holds cfg l));
  check "ghost stable" true (stable (Caslock.assert_ghost_is cfg l (Aux.nat 1)));
  check "protected pinned while held" true
    (stable
       (Caslock.assert_protected_pinned cfg l
          (Heap.singleton x_cell (Value.int 2))));
  (* negative control: freeness is not stable *)
  check "freeness unstable" false (stable (Caslock.assert_free cfg l))

(* Ticketed lock laws. *)

let ticket_setup () =
  let l = Label.make "tl_ticketlock" in
  let cfg = Ticketlock.default_config in
  let c = Ticketlock.concurroid ~label:l cfg counter_resource in
  let states = List.map (fun s -> State.singleton l s) (Concurroid.enum c) in
  (l, cfg, c, World.of_list [ c ], states)

let test_ticketlock_laws () =
  let _, _, c, _, _ = ticket_setup () in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (Fmt.str "%a" Concurroid.pp_violation) (Concurroid.check_laws c))

let test_ticketlock_action_laws () =
  let l, cfg, _, w, states = ticket_setup () in
  let actions =
    [
      ("take_ticket", Action.map ignore (Ticketlock.take_ticket l cfg));
      ("read_owner", Action.map ignore (Ticketlock.read_owner l cfg));
      ( "unlock",
        Ticketlock.unlock_act l cfg counter_resource ~delta:(Aux.nat 1) );
      ("read", Action.map ignore (Ticketlock.read l cfg x_cell));
      ("write", Ticketlock.write l cfg x_cell (Value.int 2));
    ]
  in
  List.iter
    (fun (name, a) ->
      Alcotest.(check (list string))
        (name ^ " laws") []
        (List.map (Fmt.str "%a" Action.pp_violation)
           (Action.check_laws w a ~states)))
    actions

let test_ticketlock_stability () =
  let l, cfg, _, w, states = ticket_setup () in
  let stable p = Stability.is_stable (Stability.check w ~states p) in
  check "drawn ticket stays mine" true
    (stable (Ticketlock.assert_ticket_owned cfg l 1));
  check "owner only grows" true
    (stable (Ticketlock.assert_owner_at_least cfg l 2));
  check "being-served is stable" true
    (stable (Ticketlock.assert_being_served cfg l 1));
  check "protected pinned while held" true
    (stable
       (Ticketlock.assert_protected_pinned cfg l
          (Heap.singleton x_cell (Value.int 2))));
  (* negative control: an exact owner value is not stable in general *)
  check "exact owner value unstable" false
    (stable (fun st ->
         match State.find l st with
         | Some s -> Ticketlock.owner_of cfg (Slice.joint s) = Some 1
         | None -> false))

(* CG increment / allocator triples, against both locks. *)

let test_incr_cas () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Cg_incr.Cas.verify ())

let test_incr_ticketed () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Cg_incr.Ticketed.verify ())

let test_alloc_cas () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Cg_alloc.Cas.verify ())

let test_alloc_ticketed () =
  List.iter
    (fun r -> check (Fmt.str "%a" Verify.pp_report r) true (Verify.ok r))
    (Cg_alloc.Ticketed.verify ())

(* Failure injection 1: releasing without restoring the invariant is
   unsafe — the verifier crashes the offending schedule. *)
let test_unlock_without_invariant_refuted () =
  let module I = Cg_incr.Cas in
  let w = I.world () in
  let init = I.init_states () in
  let broken : unit Prog.t =
    let open Prog in
    let* () = Caslock.lock I.label I.cfg in
    let* v = act (Caslock.read I.label I.cfg Cg_incr.Cas.x_cell) in
    let v = Option.value (Value.as_int v) ~default:0 in
    let* () =
      act (Caslock.write I.label I.cfg Cg_incr.Cas.x_cell (Value.int (v + 1)))
    in
    (* forgets to credit the delta: invariant not restored *)
    Caslock.unlock I.label I.cfg I.resource ~delta:Aux.Unit
  in
  let report =
    Verify.check_triple ~fuel:16 ~env_budget:1 ~world:w ~init broken
      (I.incr_spec I.label ())
  in
  check "uncredited unlock refuted" false (Verify.ok report)

(* Failure injection 2: a "lock" that skips the ticket check and enters
   the critical section immediately.  Its protected write is unsafe (it
   does not hold the lock) — mutual exclusion violation caught. *)
let test_barging_ticketlock_refuted () =
  let module I = Cg_incr.Ticketed in
  let w = I.world () in
  let init = I.init_states () in
  let cfg = Ticketlock.default_config in
  let barging : unit Prog.t =
    let open Prog in
    let* _t = act (Ticketlock.take_ticket I.label cfg) in
    (* no wait loop: straight into the critical section *)
    let* v = act (Ticketlock.read I.label cfg Cg_incr.Ticketed.x_cell) in
    let v = Option.value (Value.as_int v) ~default:0 in
    act (Ticketlock.write I.label cfg Cg_incr.Ticketed.x_cell (Value.int (v + 1)))
  in
  let report =
    Verify.check_triple ~fuel:16 ~env_budget:1 ~world:w ~init barging
      (Spec.make ~name:"barging"
         ~pre:(Spec.pre (I.incr_spec I.label ()))
         ~post:(fun () _ _ -> true))
  in
  check "barging refuted" false (Verify.ok report)

let suite =
  [
    Alcotest.test_case "CAS-lock concurroid laws" `Quick test_caslock_laws;
    Alcotest.test_case "CAS-lock action laws" `Quick test_caslock_action_laws;
    Alcotest.test_case "CAS-lock stability lemmas" `Quick test_caslock_stability;
    Alcotest.test_case "Ticketed lock concurroid laws" `Quick
      test_ticketlock_laws;
    Alcotest.test_case "Ticketed lock action laws" `Quick
      test_ticketlock_action_laws;
    Alcotest.test_case "Ticketed lock stability lemmas" `Quick
      test_ticketlock_stability;
    Alcotest.test_case "CG increment via CAS lock" `Quick test_incr_cas;
    Alcotest.test_case "CG increment via ticketed lock" `Slow
      test_incr_ticketed;
    Alcotest.test_case "CG allocator via CAS lock" `Quick test_alloc_cas;
    Alcotest.test_case "CG allocator via ticketed lock" `Slow
      test_alloc_ticketed;
    Alcotest.test_case "injected: uncredited unlock refuted" `Quick
      test_unlock_without_invariant_refuted;
    Alcotest.test_case "injected: barging ticket lock refuted" `Quick
      test_barging_ticketlock_refuted;
  ]
