(* Producer/consumer over the Treiber stack (paper, Section 6): a
   producing and a consuming thread share a lock-free stack; the
   subjective history specs compose so that everything produced is
   consumed exactly once.

     dune exec examples/producer_consumer.exe *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

let () =
  Fmt.pr "== Producer/consumer on the Treiber stack ==@.@.";

  (* 1. Execute one random schedule and show the interleaved history. *)
  let st = List.hd (Stack_clients.init_states ()) in
  let w = Stack_clients.world () in
  let genv, mine = Sched.genv_of_state w st in
  (match Sched.run_random ~seed:7 genv mine Stack_clients.prod_cons_prog with
  | Sched.Finished (((), (a, b)), final) ->
    Fmt.pr "consumer received: %d, %d@." a b;
    let h = Priv.pv_self Stack_clients.pv_label final in
    Fmt.pr "final private heap has %d cells (structure returned by hide)@.@."
      (Heap.cardinal h)
  | Sched.Crashed c -> Fmt.pr "crash: %a@." Crash.pp c
  | Sched.Diverged -> Fmt.pr "diverged@.");

  (* 2. Exhaustive verification: every schedule delivers {1, 2}. *)
  Fmt.pr "exhaustive check over all schedules:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.pp_report r)
    (Stack_clients.verify ());

  (* 3. The underlying stack's subjective specs, under interference. *)
  Fmt.pr "@.Treiber stack operations under environment interference:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.pp_report r)
    (Treiber.verify ());
  Fmt.pr "  %a@." Verify.pp_report (Treiber.verify_push_pop ())
