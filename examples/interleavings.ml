(* Action trees made visible (paper, Section 5.1): the denotation of a
   two-thread CAS race as a tree of interleavings, its traces, and how
   environment interference widens it.

     dune exec examples/interleavings.exe *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let () =
  Fmt.pr "== The denotation of a CAS race as an action tree ==@.@.";
  let sp = Label.make "il_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of [ (Ptr.of_int 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let prog =
    Prog.par
      (Prog.act (Span.trymark sp (Ptr.of_int 1)))
      (Prog.act (Span.trymark sp (Ptr.of_int 1)))
  in

  (* closed world: exactly the two schedules of the race *)
  let genv, mine = Sched.genv_of_state w st in
  let tree = Tree.denote genv mine prog in
  Fmt.pr "closed world: %d nodes, depth %d, %d terminal outcome(s)@."
    (Tree.size tree) (Tree.depth tree)
    (List.length (Tree.outcomes tree));
  List.iteri
    (fun i (path, outcome) ->
      Fmt.pr "  trace %d: %s  ~>  %s@." (i + 1) (String.concat "; " path)
        (match outcome with
        | Sched.Finished ((a, b), _) -> Fmt.str "(%b, %b)" a b
        | Sched.Crashed c -> "CRASH " ^ Fmt.str "%a" Crash.pp c
        | Sched.Diverged -> "diverged"))
    (Tree.traces tree);

  (* open world: environment marking inserts extra branches *)
  let genv, mine = Sched.genv_of_state ~interfere:(World.labels w) w st in
  let tree' = Tree.denote ~interference:true ~env_budget:1 genv mine prog in
  Fmt.pr "@.open world (one env step allowed): %d nodes, %d outcomes@."
    (Tree.size tree')
    (List.length (Tree.outcomes tree'));
  let loses =
    List.filter
      (fun o ->
        match o with Sched.Finished ((a, b), _) -> (not a) && not b | _ -> false)
      (Tree.outcomes tree')
  in
  Fmt.pr "outcomes where BOTH threads lose the CAS (env marked first): %d@."
    (List.length loses);
  Fmt.pr
    "@.This is the paper's point about interference: the spec of trymark@.";
  Fmt.pr
    "must be stable under these extra branches, and the verifier checks@.";
  Fmt.pr "every one of them.@."
