(* The deadlock analysis, both layers, on the classic AB/BA inversion:
   the static pass names the lock-order cycle before any exploration,
   and the scheduler's stuck-state detector finds the same two locks
   in the one interleaving that actually jams.

     dune exec examples/deadlock_demo.exe *)

open Fcsl_core
open Fcsl_analysis

let () =
  Fmt.pr "== Deadlock analysis: the AB/BA lock inversion ==@.@.";

  (* 1. Static: the scripts declare each thread's acquisition order;
     the analyzer folds them into a lock-order graph and reports the
     cycle with its witnessing paths. *)
  let v = Injected.deadlock_verdict Injected.lock_inversion_scenario in
  Fmt.pr "static verdict:@.  %a@.@." Deadlock.pp_verdict v;

  (* 2. Dynamic: the very same scripts compile to executable programs
     (two spinlock threads); exhaustive exploration reaches the cross
     configuration — left holds A awaiting B, right holds B awaiting A
     — and the stuck-state detector records it as a located crash. *)
  (match Injected.explore_scenario Injected.lock_inversion_scenario with
  | [] -> Fmt.pr "no stuck state found (unexpected)@."
  | c :: _ ->
    Fmt.pr "dynamic witness:@.  %s@.@." (Crash.message c);
    Fmt.pr "lock names in the witness: %s@."
      (String.concat ", " (Deadlock.witness_locks c)));

  (* 3. The fix is an agreed total order — which is exactly what the
     analyzer certifies when both threads acquire A before B. *)
  let ordered =
    [
      {
        Deadlock.sc_thread = "left";
        sc_steps =
          [ Deadlock.S_acquire "A"; S_acquire "B"; S_release "B"; S_release "A" ];
        sc_exit = Deadlock.Returns;
      };
      {
        Deadlock.sc_thread = "right";
        sc_steps =
          [ Deadlock.S_acquire "A"; S_acquire "B"; S_release "B"; S_release "A" ];
        sc_exit = Deadlock.Returns;
      };
    ]
  in
  let locks = Deadlock.locks_of_world (Injected.deadlock_world ()) in
  let v = Deadlock.analyze_scripts ~case:"agreed order" ~locks ordered in
  Fmt.pr "@.same threads under an agreed order:@.  %a@." Deadlock.pp_verdict v
