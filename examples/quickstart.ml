(* Quickstart: build the five-node graph of the paper's Figure 2, run
   the concurrent spanning-tree construction on it, and then let the
   verifier prove span_root_tp exhaustively on the small-graph
   catalogue.

     dune exec examples/quickstart.exe *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

let () =
  Fmt.pr "== FCSL quickstart: concurrent spanning tree ==@.@.";
  let g0 = Graph_catalog.fig2_graph () in
  Fmt.pr "Initial graph (Figure 2):@.%a@.@." Graph.pp g0;

  (* Execute span_root on one concrete random schedule. *)
  let pv = Label.make "qs_priv" and sp = Label.make "qs_span" in
  let w = World.of_list [ Priv.make pv ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g0))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let root = Ptr.of_int 1 in
  (match
     Sched.run_random ~seed:42 genv mine (Span.span_root ~pv ~sp root)
   with
  | Sched.Finished (r, final) ->
    let g' = Graph.of_heap_exn (Priv.pv_self pv final) in
    Fmt.pr "span(%a) returned %b; final private heap:@.%a@." Ptr.pp root r
      Graph.pp g';
    Fmt.pr "spanning tree: %b@.@."
      (Graph.spanning g0 g' root (Graph.dom_set g'))
  | Sched.Crashed c -> Fmt.pr "CRASH: %a@." Crash.pp c
  | Sched.Diverged -> Fmt.pr "diverged@.");

  (* Now verify: exhaustive model checking of span_root_tp over the
     catalogue of small graphs. *)
  Fmt.pr "Verifying span_root_tp on the small-graph catalogue:@.";
  List.iter
    (fun report -> Fmt.pr "  %a@." Verify.pp_report report)
    (Span.verify_span_root ());
  Fmt.pr "@.Verifying span_tp (open world, full interference):@.";
  List.iter
    (fun report -> Fmt.pr "  %a@." Verify.pp_report report)
    (Span.verify_span ~max_nodes:2 ())
