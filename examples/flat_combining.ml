(* Flat combining (paper, Section 4.2): the helping pattern made
   visible.  Two clients share a flat-combining stack; we drive a
   schedule in which thread B becomes the combiner and executes thread
   A's push on its behalf — and A's history still receives the effect,
   because the combiner deposits the stamped entry in the pending map
   and A claims it.

     dune exec examples/flat_combining.exe *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex
module Hist = Fcsl_pcm.Hist
module Fc = Flatcombiner

let cfg = Fc_stack.cfg
let fc = Fc_stack.fc_label

let () =
  Fmt.pr "== Flat combining: helping in action ==@.@.";
  let init =
    List.filter
      (fun st ->
        match State.find fc st with
        | Some s -> (
          match Fc.split_aux (Slice.self s) with
          | Some (Mutex.Not_own, tokens, hist) ->
            Ptr.Set.equal tokens (Ptr.Set.of_list cfg.Fc.slots)
            && Hist.is_empty hist
            && Fc.slot_state cfg (Slice.joint s) 0 = Some `Empty
            && Fc.slot_state cfg (Slice.joint s) 1 = Some `Empty
          | _ -> false)
        | None -> false)
      (Fc_stack.init_states ())
  in
  let st = List.hd init in
  let w = Fc_stack.world () in
  let genv, mine = Sched.genv_of_state w st in
  let split : Prog.split =
   fun mine ->
    match Fc.split_aux (Contrib.get fc mine) with
    | Some (Mutex.Not_own, _, hist) ->
      let s0 = List.nth cfg.Fc.slots 0 and s1 = List.nth cfg.Fc.slots 1 in
      Some
        ( Contrib.set fc (Fc.pack_aux Mutex.Not_own Ptr.Set.empty hist) mine,
          Contrib.set fc
            (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s0) Hist.empty)
            Contrib.empty,
          Contrib.set fc
            (Fc.pack_aux Mutex.Not_own (Ptr.Set.singleton s1) Hist.empty)
            Contrib.empty )
    | _ -> None
  in
  let prog =
    Prog.par_split split (Fc_stack.fc_push ~slot:0 1) (Fc_stack.fc_pop ~slot:1)
  in
  (* Schedule: A (slot 0) publishes its push and then stalls; B (slot 1)
     publishes, grabs the combiner lock, executes BOTH requests, and
     responds; finally A wakes up and merely claims its result. *)
  let trace = ref [] in
  let choose ~step:_ names =
    let pick i n = trace := n :: !trace; i in
    let find pred =
      let rec go i = function
        | [] -> None
        | n :: rest -> if pred n then Some (i, n) else go (i + 1) rest
      in
      go 0 names
    in
    match find (fun n -> n = "fc_publish(0,push)") with
    | Some (i, n) -> pick i n
    | None -> (
      match
        find (fun n ->
            n <> "fc_poll(0)" && n <> "fc_claim(0)"
            && String.length n > 3 && String.sub n 0 3 = "fc_")
      with
      | Some (i, n) -> pick i n
      | None -> (
        match find (fun _ -> true) with
        | Some (i, n) -> pick i n
        | None -> 0))
  in
  (match Sched.run_with_chooser ~choose genv mine prog with
  | Sched.Finished ((push_res, pop_res), final) ->
    Fmt.pr "schedule taken (combiner = thread B):@.";
    List.iteri (fun i n -> Fmt.pr "  %2d. %s@." (i + 1) n) (List.rev !trace);
    Fmt.pr "@.thread A's push returned %a@." Value.pp push_res;
    Fmt.pr "thread B's pop returned %a@." Value.pp pop_res;
    (match State.find fc final with
    | Some s -> (
      match Fc.split_aux (Slice.self s) with
      | Some (_, _, hist) ->
        Fmt.pr
          "joined history (%d entries) — A's push is ascribed to A even \
           though B executed it:@.%a@."
          (Hist.cardinal hist) Hist.pp hist
      | None -> ())
    | None -> ())
  | Sched.Crashed c -> Fmt.pr "crash: %a@." Crash.pp c
  | Sched.Diverged -> Fmt.pr "diverged@.");

  Fmt.pr "@.== flat_combine triples (the paper's Section 4.2 spec) ==@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.pp_report r)
    (Fc_stack.verify ());
  Fmt.pr "  %a@." Verify.pp_report (Fc_stack.verify_pair ())
