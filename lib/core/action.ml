(* Atomic actions (paper, Sections 2.2.2 and 3.4): a single physical
   read-modify-write operation on the real heap, fused with an arbitrary
   simultaneous change to the auxiliary state.

   An action provides:
   - a safety predicate (the action's "natural precondition": running it
     in an unsafe state is a verification failure, i.e. a crash);
   - a deterministic step on subjective states;
   - an erasure: the physical operation the step performs once auxiliary
     state is dropped — [trymark] erases to CAS (Section 3.4);
   - the concurroid transitions it may take, for the correspondence law.

   The metatheory laws (erasure, other-fixity, transition correspondence,
   footprint preservation for non-communicating actions) are executable
   checks in {!check_laws}, run by every case study's test suite. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

(* Physical operations, for erasure checking.  [apply_phys] is the
   machine: what the operation does to a raw heap. *)
type phys =
  | Read of Ptr.t
  | Write of Ptr.t * Value.t
  | Cas of { loc : Ptr.t; expect : Value.t; replace : Value.t }
  | Faa of { loc : Ptr.t; incr : int }  (* fetch-and-add, for ticketed lock *)
  | Id

let pp_phys ppf = function
  | Read p -> Fmt.pf ppf "read %a" Ptr.pp p
  | Write (p, v) -> Fmt.pf ppf "%a := %a" Ptr.pp p Value.pp v
  | Cas { loc; expect; replace } ->
    Fmt.pf ppf "CAS(%a, %a, %a)" Ptr.pp loc Value.pp expect Value.pp replace
  | Faa { loc; incr } -> Fmt.pf ppf "FAA(%a, %d)" Ptr.pp loc incr
  | Id -> Fmt.string ppf "id"

(* [apply_phys op h] returns the updated heap and the operation's
   physical result; [None] when the operation faults (unbound pointer,
   ill-shaped cell). *)
let apply_phys op h =
  match op with
  | Read p ->
    Option.map (fun v -> (h, v)) (Heap.find p h)
  | Write (p, v) ->
    if Heap.mem p h then Some (Heap.update p v h, Value.unit) else None
  | Cas { loc; expect; replace } ->
    Option.map
      (fun v ->
        if Value.equal v expect then (Heap.update loc replace h, Value.bool true)
        else (h, Value.bool false))
      (Heap.find loc h)
  | Faa { loc; incr } ->
    Option.bind (Heap.find loc h) (fun v ->
        Option.map
          (fun n -> (Heap.update loc (Value.int (n + incr)) h, Value.int n))
          (Value.as_int v))
  | Id -> Some (h, Value.unit)

type 'a t = {
  name : string;
  safe : State.t -> bool;
  enabled : State.t -> bool;
      (* Scheduling guard: a disabled action blocks its thread instead of
         stepping.  Used to give retry-until-success loops (lock
         acquisition spins) their blocking semantics during exhaustive
         exploration — sound for partial correctness, since failed spins
         do not change the state. *)
  blocking : bool;
      (* Whether an [enabled] guard was declared at all: the static
         deadlock analysis classifies guarded actions as potential
         blocking points, unguarded ones as always schedulable. *)
  step : State.t -> 'a * State.t;
  phys : State.t -> phys;
      (* The physical operation this step performs in this state. *)
  communicating : bool;
      (* Communicating actions step several concurroids at once and may
         transfer heap ownership between them (Section 4.1); they are
         exempt from per-label transition correspondence but must still
         preserve the global footprint. *)
  fp : Footprint.t;
      (* Declared effect envelope: which labels the action may touch, and
         how.  Defaults to [Top] (unknown); declared envelopes feed the
         static analyzer and the env-step pruning oracle, and are checked
         dynamically by {!Sched}'s envelope monitor. *)
}

let make ?(communicating = false) ?enabled ?(fp = Footprint.top) ~name ~safe
    ~step ~phys () =
  let blocking = Option.is_some enabled in
  let enabled = Option.value enabled ~default:(fun _ -> true) in
  { name; safe; enabled; step; phys; communicating; fp; blocking }

let name a = a.name
let safe a st = a.safe st
let enabled a st = a.enabled st
let blocking a = a.blocking
let phys a st = a.phys st
let footprint a = a.fp

let step_exn a st =
  if a.safe st then a.step st
  else invalid_arg (Fmt.str "Action.step_exn: %s unsafe" a.name)

(* [map f a]: post-compose the result; the state transformation is
   unchanged, so all laws transfer. *)
let map f a =
  {
    a with
    step =
      (fun st ->
        let r, st' = a.step st in
        (f r, st'));
  }

(* Law checking (Section 3.4). *)

type violation = { law : string; witness : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.law v.witness

(* Erasure: stepping the action and then erasing auxiliary state equals
   applying the physical operation to the erased pre-state. *)
let check_erasure a st acc =
  let _, st' = a.step st in
  match (State.erase st, State.erase st') with
  | Some before, Some after -> (
    match apply_phys (a.phys st) before with
    | Some (expected, _) when Heap.equal expected after -> acc
    | Some (expected, _) ->
      {
        law = a.name ^ " violates erasure";
        witness =
          Fmt.str "expected %a, got %a" Heap.pp expected Heap.pp after;
      }
      :: acc
    | None ->
      {
        law = a.name ^ ": physical op faults on erased heap";
        witness = Fmt.str "%a" pp_phys (a.phys st);
      }
      :: acc)
  | _ ->
    { law = a.name ^ ": erased state invalid"; witness = State.to_string st }
    :: acc

(* Other-fixity: an action never changes the environment's contribution. *)
let check_other_fixity a st acc =
  let _, st' = a.step st in
  let ok =
    List.for_all
      (fun l ->
        match (State.find l st, State.find l st') with
        | Some s, Some s' -> Aux.equal (Slice.other s) (Slice.other s')
        | None, None -> true
        | Some _, None | None, Some _ -> false)
      (State.labels st)
  in
  if ok then acc
  else
    { law = a.name ^ " changes other"; witness = State.to_string st } :: acc

(* Transition correspondence: at every label, the slice change is either
   idle or one of the concurroid's transitions. *)
let check_correspondence (w : World.t) a st acc =
  if a.communicating then acc
  else
    let _, st' = a.step st in
    List.fold_left
      (fun acc c ->
        let l = Concurroid.label c in
        match (State.find l st, State.find l st') with
        | Some s, Some s' ->
          if Slice.equal s s' then acc
          else if
            List.exists
              (fun (_, s'') -> Slice.equal s' s'')
              (Concurroid.steps c s)
            || Concurroid.justified c s s'
          then acc
          else
            {
              law =
                Fmt.str "%s: no %s transition justifies the step" a.name
                  (Concurroid.name c);
              witness = Fmt.str "%a -> %a" Slice.pp s Slice.pp s';
            }
            :: acc
        | _ -> acc)
      acc (World.concurroids w)

(* Global footprint preservation: no action conjures or leaks memory;
   ownership transfer is fine, allocation draws from an allocator pool. *)
let check_footprint a st acc =
  let _, st' = a.step st in
  match (State.erase st, State.erase st') with
  | Some before, Some after ->
    if Ptr.Set.equal (Heap.dom_set before) (Heap.dom_set after) then acc
    else
      {
        law = a.name ^ " changes the global footprint";
        witness = Fmt.str "%a -> %a" Heap.pp before Heap.pp after;
      }
      :: acc
  | _ -> acc

(* Coherence preservation. *)
let check_coh (w : World.t) a st acc =
  let _, st' = a.step st in
  if World.coh w st' then acc
  else
    { law = a.name ^ " breaks world coherence"; witness = State.to_string st' }
    :: acc

let check_laws ?(max_violations = 10) (w : World.t) a ~states =
  List.fold_left
    (fun acc st ->
      if List.length acc >= max_violations then acc
      else if not (World.coh w st && a.safe st) then acc
      else
        acc
        |> check_erasure a st
        |> check_other_fixity a st
        |> check_correspondence w a st
        |> check_footprint a st
        |> check_coh w a st)
    [] states
