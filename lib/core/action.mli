(** Atomic actions (paper, Sections 2.2.2 and 3.4): one physical
    read-modify-write operation fused with a simultaneous change to the
    auxiliary state.  The metatheory laws — erasure, other-fixity,
    transition correspondence, footprint preservation — are executable
    checks run by the case-study test suites. *)

open Fcsl_heap

(** Physical operations, for erasure checking. *)
type phys =
  | Read of Ptr.t
  | Write of Ptr.t * Value.t
  | Cas of { loc : Ptr.t; expect : Value.t; replace : Value.t }
  | Faa of { loc : Ptr.t; incr : int }
  | Id

val pp_phys : Format.formatter -> phys -> unit

val apply_phys : phys -> Heap.t -> (Heap.t * Value.t) option
(** What the operation does to a raw heap: updated heap and physical
    result; [None] when it faults. *)

type 'a t

val make :
  ?communicating:bool ->
  ?enabled:(State.t -> bool) ->
  ?fp:Footprint.t ->
  name:string ->
  safe:(State.t -> bool) ->
  step:(State.t -> 'a * State.t) ->
  phys:(State.t -> phys) ->
  unit ->
  'a t
(** [communicating] actions step several concurroids at once and may
    transfer heap ownership between them (Section 4.1); they are exempt
    from per-label transition correspondence but must preserve the
    global footprint.  [enabled] is the scheduling guard: a disabled
    action blocks its thread rather than stepping — the standard sound
    reduction of retry-until-success loops for partial correctness.
    [fp] is the action's declared effect envelope (default
    [Footprint.top], i.e. unknown); it feeds the static analyzer and the
    env-step pruning oracle, and is dynamically checked by the
    scheduler's envelope monitor when pruning is on. *)

val name : 'a t -> string
val safe : 'a t -> State.t -> bool
val enabled : 'a t -> State.t -> bool

val blocking : 'a t -> bool
(** Whether an [enabled] guard was declared: guarded actions are the
    potential blocking points the static deadlock analysis classifies
    as acquisitions. *)

val phys : 'a t -> State.t -> phys

val footprint : 'a t -> Footprint.t
(** The declared effect envelope. *)

val step_exn : 'a t -> State.t -> 'a * State.t
(** Raises [Invalid_argument] when unsafe. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-compose the result; the state transformation and all laws are
    unchanged. *)

(** {1 Law checking} *)

type violation = { law : string; witness : string }

val pp_violation : Format.formatter -> violation -> unit

val check_laws :
  ?max_violations:int -> World.t -> 'a t -> states:State.t list -> violation list
(** Check erasure, other-fixity, transition correspondence, footprint
    preservation and coherence preservation over the supplied coherent
    states. *)
