(* Structured failure values: what went wrong (a kind from the closed
   taxonomy), the human diagnosis, and the schedule that discovered it.
   Replaces the stringly-typed crash messages the engine grew up with,
   so the CLI's exit codes, the chaos harness's assertions and the
   report JSON all consume the same shape. *)

type kind =
  | Unsafe_action
  | Ghost_algebra
  | Envelope_violation
  | Postcondition
  | Budget_exhausted
  | Injected_fault
  | Internal_error
  | Analyzer_lie
  | Deadlock
  | Protocol_error
  | Io_fault

let kind_name = function
  | Unsafe_action -> "unsafe-action"
  | Ghost_algebra -> "ghost-algebra"
  | Envelope_violation -> "envelope-violation"
  | Postcondition -> "postcondition"
  | Budget_exhausted -> "budget-exhausted"
  | Injected_fault -> "injected-fault"
  | Internal_error -> "internal-error"
  | Analyzer_lie -> "analyzer-lie"
  | Deadlock -> "deadlock"
  | Protocol_error -> "protocol-error"
  | Io_fault -> "io-fault"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

exception Injected of string

type t = {
  kind : kind;
  msg : string;
  trace : string list; (* discovering schedule, oldest step first *)
}

let make ?(trace = []) kind msg = { kind; msg; trace }

let of_exn = function
  | Injected msg -> make Injected_fault ("injected fault: " ^ msg)
  | e -> make Internal_error (Printexc.to_string e)

let kind c = c.kind
let message c = c.msg
let trace c = c.trace
let with_trace trace c = { c with trace }

(* Traces are first-discovery artifacts: memoized replay preserves the
   kind and message but may re-emit a crash with the schedule of its
   first discovery, so equality ignores them (exactly as the engine's
   differential tests always stripped "[schedule: ...]" suffixes). *)
let equal c1 c2 = c1.kind = c2.kind && String.equal c1.msg c2.msg

let pp ppf c =
  Fmt.pf ppf "%s: %s" (kind_name c.kind) c.msg;
  if c.trace <> [] then
    Fmt.pf ppf " [schedule: %s]" (String.concat " ; " c.trace)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json c =
  Printf.sprintf "{\"kind\": \"%s\", \"msg\": \"%s\", \"schedule\": [%s]}"
    (kind_name c.kind) (json_escape c.msg)
    (String.concat ", "
       (List.map (fun s -> "\"" ^ json_escape s ^ "\"") c.trace))

(* A minimal recursive-descent parser for the object shape [to_json]
   emits — {"kind": str, "msg": str, "schedule": [str, ...]} — written
   by hand because the engine deliberately carries no JSON dependency.
   It accepts arbitrary key order and unknown keys (skipped), so
   journals written by a newer engine still load. *)

let kind_of_name = function
  | "unsafe-action" -> Some Unsafe_action
  | "ghost-algebra" -> Some Ghost_algebra
  | "envelope-violation" -> Some Envelope_violation
  | "postcondition" -> Some Postcondition
  | "budget-exhausted" -> Some Budget_exhausted
  | "injected-fault" -> Some Injected_fault
  | "internal-error" -> Some Internal_error
  | "analyzer-lie" -> Some Analyzer_lie
  | "deadlock" -> Some Deadlock
  | "protocol-error" -> Some Protocol_error
  | "io-fault" -> Some Io_fault
  | _ -> None

exception Parse of string

let of_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if next () <> c then fail (Printf.sprintf "expected %C" c)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* bind each digit: operand evaluation order is unspecified *)
          let d1 = hex (next ()) in
          let d2 = hex (next ()) in
          let d3 = hex (next ()) in
          let d4 = hex (next ()) in
          let cp = ((d1 * 16 + d2) * 16 + d3) * 16 + d4 in
          (* UTF-8 encode; [json_escape] only emits \u00xx control
             codes, which land in the single-byte branch *)
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ())
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_string_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      []
    end
    else
      let rec go acc =
        skip_ws ();
        let v = parse_string () in
        skip_ws ();
        match next () with
        | ',' -> go (v :: acc)
        | ']' -> List.rev (v :: acc)
        | _ -> fail "expected ',' or ']'"
      in
      go []
  in
  (* skip any JSON value (unknown keys from future engine versions) *)
  let rec skip_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> ignore (parse_string ())
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then incr pos
      else
        let rec go () =
          skip_value ();
          skip_ws ();
          match next () with ',' -> go () | ']' -> () | _ -> fail "bad array"
        in
        go ()
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then incr pos
      else
        let rec go () =
          skip_ws ();
          ignore (parse_string ());
          expect ':';
          skip_value ();
          skip_ws ();
          match next () with ',' -> go () | '}' -> () | _ -> fail "bad object"
        in
        go ()
    | Some _ ->
      (* number / true / false / null: consume the token *)
      let start = !pos in
      while
        !pos < len
        && match s.[!pos] with
           | ',' | ']' | '}' | ' ' | '\t' | '\n' | '\r' -> false
           | _ -> true
      do
        incr pos
      done;
      if !pos = start then fail "expected a value"
    | None -> fail "expected a value"
  in
  match
    let kind = ref None and msg = ref None and sched = ref [] in
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        skip_ws ();
        (match key with
        | "kind" -> kind := Some (parse_string ())
        | "msg" -> msg := Some (parse_string ())
        | "schedule" -> sched := parse_string_array ()
        | _ -> skip_value ());
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end;
    skip_ws ();
    if !pos <> len then fail "trailing garbage after object";
    match (!kind, !msg) with
    | None, _ -> fail "missing \"kind\""
    | _, None -> fail "missing \"msg\""
    | Some k, Some m -> (
      match kind_of_name k with
      | None -> fail (Printf.sprintf "unknown crash kind %S" k)
      | Some kind -> make ~trace:!sched kind m)
  with
  | c -> Ok c
  | exception Parse e -> Error e
