(* Structured failure values: what went wrong (a kind from the closed
   taxonomy), the human diagnosis, and the schedule that discovered it.
   Replaces the stringly-typed crash messages the engine grew up with,
   so the CLI's exit codes, the chaos harness's assertions and the
   report JSON all consume the same shape. *)

type kind =
  | Unsafe_action
  | Ghost_algebra
  | Envelope_violation
  | Postcondition
  | Budget_exhausted
  | Injected_fault
  | Internal_error

let kind_name = function
  | Unsafe_action -> "unsafe-action"
  | Ghost_algebra -> "ghost-algebra"
  | Envelope_violation -> "envelope-violation"
  | Postcondition -> "postcondition"
  | Budget_exhausted -> "budget-exhausted"
  | Injected_fault -> "injected-fault"
  | Internal_error -> "internal-error"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

exception Injected of string

type t = {
  kind : kind;
  msg : string;
  trace : string list; (* discovering schedule, oldest step first *)
}

let make ?(trace = []) kind msg = { kind; msg; trace }

let of_exn = function
  | Injected msg -> make Injected_fault ("injected fault: " ^ msg)
  | e -> make Internal_error (Printexc.to_string e)

let kind c = c.kind
let message c = c.msg
let trace c = c.trace
let with_trace trace c = { c with trace }

(* Traces are first-discovery artifacts: memoized replay preserves the
   kind and message but may re-emit a crash with the schedule of its
   first discovery, so equality ignores them (exactly as the engine's
   differential tests always stripped "[schedule: ...]" suffixes). *)
let equal c1 c2 = c1.kind = c2.kind && String.equal c1.msg c2.msg

let pp ppf c =
  Fmt.pf ppf "%s: %s" (kind_name c.kind) c.msg;
  if c.trace <> [] then
    Fmt.pf ppf " [schedule: %s]" (String.concat " ; " c.trace)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json c =
  Printf.sprintf "{\"kind\": \"%s\", \"msg\": \"%s\", \"schedule\": [%s]}"
    (kind_name c.kind) (json_escape c.msg)
    (String.concat ", "
       (List.map (fun s -> "\"" ^ json_escape s ^ "\"") c.trace))
