(* One concurroid's portion of a subjective state: the triple
   [self | joint | other] of Section 2.2.1.  [self] and [other] are PCM
   elements owned by the observing thread and its environment; the joint
   component is shared state every thread can change (subject to the
   protocol).

   As in the paper, each component may mix real state (heap) and
   auxiliary state.  The joint component is split here into its real
   heap [joint] and its auxiliary part [jaux]; the latter is erased
   before execution and is used e.g. by the flat combiner's
   pending-request ghost map. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

type t = { self : Aux.t; joint : Heap.t; jaux : Aux.t; other : Aux.t }

let make_jaux ~self ~joint ~jaux ~other = { self; joint; jaux; other }
let make ~self ~joint ~other = { self; joint; jaux = Aux.Unit; other }

let self s = s.self
let joint s = s.joint
let jaux s = s.jaux
let other s = s.other

let empty =
  { self = Aux.Unit; joint = Heap.empty; jaux = Aux.Unit; other = Aux.Unit }

(* Subjective transposition: swap the roles of the observing thread and
   its environment.  Interference is transitions taken from the
   transposed viewpoint (Section 2.2.1).  The joint components are
   shared and unaffected. *)
let transpose s = { s with self = s.other; other = s.self }

(* [self • other] must be defined: the two contributions are compatible
   pieces of one PCM. *)
let valid s = Aux.defined s.self s.other

let combined s = Aux.join s.self s.other
let combined_exn s = Aux.join_exn s.self s.other

let with_self self s = { s with self }
let with_joint joint s = { s with joint }
let with_jaux jaux s = { s with jaux }
let with_other other s = { s with other }

(* Fork-join realignment (Section 3.3): replace the (self, other) split
   by a new split with the same combined value.  The state spaces of
   well-formed concurroids are closed under these. *)
let realign s ~self ~other =
  match (Aux.join s.self s.other, Aux.join self other) with
  | Some old_total, Some new_total when Aux.equal old_total new_total ->
    Some { s with self; other }
  | _ -> None

let equal s1 s2 =
  Aux.equal s1.self s2.self
  && Heap.equal s1.joint s2.joint
  && Aux.equal s1.jaux s2.jaux
  && Aux.equal s1.other s2.other

let compare s1 s2 =
  let c = Aux.compare s1.self s2.self in
  if c <> 0 then c
  else
    let c = Heap.compare s1.joint s2.joint in
    if c <> 0 then c
    else
      let c = Aux.compare s1.jaux s2.jaux in
      if c <> 0 then c else Aux.compare s1.other s2.other

let compare_for_dedup = compare

let hash s =
  (((((Aux.hash s.self * 33) lxor Heap.hash s.joint) * 33)
   lxor Aux.hash s.jaux)
   * 33)
  lxor Aux.hash s.other

let pp ppf s =
  if Aux.is_unit s.jaux then
    Fmt.pf ppf "[@[self %a |@ joint %a |@ other %a@]]" Aux.pp s.self Heap.pp
      s.joint Aux.pp s.other
  else
    Fmt.pf ppf "[@[self %a |@ joint %a & %a |@ other %a@]]" Aux.pp s.self
      Heap.pp s.joint Aux.pp s.jaux Aux.pp s.other

let to_string s = Fmt.str "%a" pp s
