(** The FCSL program DSL (paper, Figure 3 and Section 5.1): a monadic,
    deeply-embedded language of concurrent programs with typed returns,
    atomic actions, parallel composition, general recursion ([ffix]) and
    scoped concurroid installation ([hide], Section 3.5). *)

open Fcsl_heap
module Aux := Fcsl_pcm.Aux

(** Hide specification: which Priv label donates heap, the decoration
    selecting the donated subheap, the concurroid to install, and its
    initial self/joint-auxiliary values. *)
type hide_spec = {
  hs_priv : Label.t;
  hs_conc : Concurroid.t;
  hs_decor : Heap.t -> Heap.t;
  hs_init : Aux.t;
  hs_jaux : Aux.t;
}

(** The subjective fork split of the Par rule: given the forking
    thread's contribution, produce (reserve, left, right) with the same
    join; [None] when the requested split is unavailable. *)
type split = Contrib.t -> (Contrib.t * Contrib.t * Contrib.t) option

type _ t =
  | Ret : 'a -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t
  | Act : 'a Action.t -> 'a t
  | Par : 'b t * 'c t -> ('b * 'c) t
  | ParSplit : split * 'b t * 'c t -> ('b * 'c) t
  | Ffix : (('i -> 'o t) -> 'i -> 'o t) * 'i -> 'o t
  | Hide : hide_spec * 'a t -> 'a t
  | Annot : Footprint.t * 'a t -> 'a t
      (** A declared effect envelope for the subterm — the analyzer's
          escape hatch for opaque closures.  Semantically transparent;
          kept honest by the scheduler's envelope monitor. *)

val ret : 'a -> 'a t
val bind : 'b t -> ('b -> 'a t) -> 'a t

val ( let* ) : 'b t -> ('b -> 'a t) -> 'a t
(** The monadic notation of Figure 3. *)

val seq : 'b t -> 'a t -> 'a t
val act : 'a Action.t -> 'a t

val par : 'b t -> 'c t -> ('b * 'c) t
(** Fork with unit child contributions (the common split). *)

val par_split : split -> 'b t -> 'c t -> ('b * 'c) t
(** Fork with an explicit subjective split of the parent's
    contribution. *)

val split_cells :
  pv:Label.t -> to_left:Ptr.t list -> to_right:Ptr.t list -> split
(** Move the named private-heap cells of [pv] to the children, keeping
    the rest in reserve. *)

val ffix : (('i -> 'o t) -> 'i -> 'o t) -> 'i -> 'o t
(** General recursion: [f] receives the recursive procedure itself, as
    in [ffix (fun loop x -> ...)] of Figure 3. *)

val hide : hide_spec -> 'a t -> 'a t

val annot : Footprint.t -> 'a t -> 'a t
(** Declare an effect envelope for a subterm. *)

val cond : bool -> 'a t -> 'a t -> 'a t
val unfold_ffix : (('i -> 'o t) -> 'i -> 'o t) -> 'i -> 'o t
val size : 'a t -> int

val footprint : 'a t -> Footprint.t
(** Effect inference over the visible spine: action leaves contribute
    their declared envelopes, [par] joins, [hide] scopes away its
    installed label (and touches the donating private label), and the
    opaque closures of [Bind]/[Ffix] infer [Footprint.top] unless an
    [Annot] overrides them. *)

val pp : Format.formatter -> 'a t -> unit
