(** Durable verification: an append-only, CRC-checksummed, length-
    prefixed binary write-ahead journal of exploration progress, so any
    verification run can be SIGKILLed at an arbitrary instant and
    resumed with no repeated work and no silent corruption (see
    docs/ROBUSTNESS.md, "Durability").

    A journal directory holds two files: [journal.fcslj], the WAL
    proper, and [snapshot.fcslj], an atomically-replaced compaction of
    the WAL's live records.  Records are framed as
    [u32-le length | u32-le CRC-32 | payload]; on open the files are
    scanned, checksums validated, and the WAL physically truncated at
    the first torn or corrupt record — corruption is degradation (the
    suffix is re-verified), never a wrong verdict.

    Durability granularity is the {e verification unit}: one initial
    state of one spec under one ladder tier ({!State_done}), plus the
    spec-level verdict ({!Spec_done}).  Configuration memo keys are
    process-local (thread-tree atoms are identified by closure
    identity), so they cannot name work across a process boundary;
    {!Frontier} records journal the explored-configuration counts for
    observability, and resume replays completed units and re-explores
    the (deterministic) remainder, reaching verdicts identical to an
    uninterrupted run's. *)

(** {1 Fsync policy} *)

type fsync_policy =
  | Always  (** fsync after every appended record (safest, slowest) *)
  | Interval of float
      (** group commit: buffered appends are written and fsynced at
          most every given number of seconds — a crash loses at most
          that window of progress, never corrupts the prefix *)
  | Never  (** rely on the OS page cache; a crash may lose everything
               since the last compaction, but recovery still truncates
               cleanly *)

val fsync_policy_name : fsync_policy -> string
(** ["always"], ["interval"], ["never"]. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Parses ["always"], ["never"], ["interval"] (0.05s default period)
    or ["interval:SECS"]. *)

(** {1 Records} *)

type budget_image = {
  bi_elapsed_s : float;
  bi_states : int;
  bi_major_words : int;
  bi_tripped : string option;
}
(** A serializable mirror of [Budget.stats]. *)

type state_image = {
  si_outcomes : int;
  si_diverged : int;
  si_complete : bool;
  si_states : int;  (** configurations explored under the active reductions *)
  si_failures : Crash.t list;  (** failures found from this state *)
}
(** What one verification unit (one initial state under one tier)
    concluded — enough to replay its [state_result] exactly. *)

type report_image = {
  ri_spec : string;
  ri_params : string;  (** engine-parameter digest; a resume with
                           different parameters must not reuse this *)
  ri_tier : string;
  ri_seed : int option;
  ri_initial_states : int;
  ri_outcomes : int;
  ri_diverged : int;
  ri_complete : bool;
  ri_states : int;
      (** configurations explored, summed over the verdict's units *)
  ri_failures : (int * Crash.t) list;
      (** (eligible-state index, crash) — indices re-anchor the crash
          to its initial state on resume *)
  ri_worker_crashes : (int * Crash.t) list;
  ri_budget : budget_image option;
}
(** A completed spec verdict, the unit [Verify.check_triple] replays
    wholesale. *)

type record =
  | Meta of { version : int; created_s : float }
      (** one per process generation appending to the journal *)
  | Spec_begin of { spec : string; params : string }
  | Tier_begin of { spec : string; tier : string; seed : int option }
      (** a ladder rung started: resume re-enters the ladder here *)
  | Frontier of { spec : string; tier : string; states : int }
      (** explored-configuration snapshot, appended every N scheduler
          ticks; [states] is cumulative across the (spec, tier) attempt *)
  | Counterexample of { spec : string; crash : Crash.t }
      (** a found failure, journaled at discovery (before its unit
          completes) so evidence survives a kill *)
  | State_done of { spec : string; tier : string; index : int;
                    state : state_image }
  | Spec_done of report_image

val pp_record : Format.formatter -> record -> unit

(** {1 The journal handle} *)

type io = {
  io_write : Unix.file_descr -> string -> int -> int -> int;
      (** [write_substring]-shaped: may write fewer bytes than asked
          (the journal loops); must raise [Unix.Unix_error] on failure
          and never return [<= 0] for a non-empty buffer *)
  io_fsync : Unix.file_descr -> unit;
  io_rename : string -> string -> unit;
}
(** The journal's syscall boundary.  Every byte the journal persists
    flows through these three hooks, so a chaos harness can inject
    ENOSPC, EIO, short writes, fsync failures and rename failures at
    arbitrary offsets without a real filesystem knob
    (docs/SERVICE.md §6). *)

val real_io : io
(** The default hooks: [Unix.write_substring] / [Unix.fsync] /
    [Unix.rename]. *)

type t

val openj :
  ?fsync:fsync_policy ->
  ?compact_every:int ->
  ?resume:bool ->
  ?io:io ->
  string ->
  t
(** [openj dir] opens (creating the directory and files as needed) the
    journal rooted at [dir].  With [resume] (default [false]) existing
    records are recovered — scanned, checksummed, the WAL truncated at
    the first corrupt record — and become visible to the lookup
    functions below; without it any existing journal is discarded and
    the run starts fresh.  [fsync] defaults to [Interval 0.05];
    [compact_every] (default 2048) bounds how many records accumulate
    in the WAL before it is folded into the snapshot.  [io] (default
    {!real_io}) is the syscall boundary — see {!io}.  Domain-safe: one
    handle may be shared by every worker of a verification fan-out. *)

val dir : t -> string
val fsync : t -> fsync_policy

val recovered : t -> record list
(** The records recovered at open time (snapshot first, then WAL),
    before any record appended by this process. *)

val truncated_bytes : t -> int
(** Bytes of torn/corrupt WAL tail dropped by recovery at open. *)

val append : t -> record -> unit
(** Append one record (group-committed per the fsync policy) and fold
    it into the live lookup index. *)

val flush : t -> unit
(** Force buffered appends to disk (fsyncs unless the policy is
    [Never]). *)

val compact : t -> unit
(** Fold the WAL into [snapshot.fcslj] (write-tmp + rename, fsynced)
    and truncate the WAL, so journals don't grow unboundedly.  Live
    records — completed spec verdicts, the in-flight specs' unit
    results, tiers, counterexamples and last frontiers — survive;
    superseded frontiers and begin markers do not.  Also triggered
    automatically every [compact_every] appends. *)

val close : t -> unit
(** Flush and release the handle (never deletes the files). *)

val pending_bytes : t -> int
(** Bytes appended but not yet written to the WAL — the journal lag the
    service's health frame reports (0 right after a {!flush}). *)

val io_failure : t -> Crash.t option
(** The wounded-journal flag.  The first I/O fault to escape the {!io}
    hooks (ENOSPC, EIO, a zero-byte write, a failed fsync or rename)
    marks the journal failed with a structured {!Crash.Io_fault} and
    every later mutation becomes a disk no-op: in-memory lookups keep
    answering for this process, nothing further persists, and — because
    whatever half-record the fault tore is dropped by CRC recovery on
    the next open — a resume re-verifies instead of trusting a corrupt
    suffix.  Degradation to re-verification, never a flipped or phantom
    verdict. *)

(** {1 Resume lookups}

    All lookups see recovered records and records appended through this
    handle. *)

val find_spec_done : t -> spec:string -> params:string -> report_image option
(** The journaled verdict of [spec] under exactly [params], if any. *)

val verdict_of_digest : t -> digest:string -> report_image option
(** Read-only lookup of a completed verdict by its parameter digest
    alone — the service's memo path, which knows the cache key before
    it knows which spec wrote it.  A record lost to a torn tail was
    dropped at recovery, so it reads as [None] (re-verify), never as a
    stale verdict.  If several specs share a digest (service digests
    embed the case name, so they don't), an arbitrary match wins. *)

val find_state_done :
  t -> spec:string -> tier:string -> index:int -> state_image option

val last_tier : t -> spec:string -> (string * int option) option
(** The last journaled ladder rung of [spec], with its sampling seed
    when it recorded one. *)

val spec_params : t -> spec:string -> string option
(** The parameter digest [spec] was journaled under, if any. *)

val completed_units : t -> int
(** The number of durable verification units (state-level plus
    spec-level completions) currently recorded — the monotone progress
    measure the kill9 chaos mode asserts on. *)

val counterexamples : t -> spec:string -> Crash.t list

(** {1 Per-exploration writers}

    A cheap scoped handle the scheduler ticks once per explored
    configuration; every [every]-th tick appends a {!Frontier} record.
    Crash outcomes are journaled as {!Counterexample} records at
    discovery (deduplicated per spec, capped). *)

type writer

val writer : t -> spec:string -> tier:string -> ?every:int -> unit -> writer
(** [every] defaults to 1024 ticks. *)

val writer_tick : writer -> unit
val writer_crash : writer -> Crash.t -> unit
val writer_states : writer -> int
(** Configurations ticked through this writer so far. *)

(** {1 Read-only inspection (the [fcsl jobs] CLI)} *)

val read : string -> record list * int
(** [read dir] scans the journal directory without opening it for
    append (no truncation, no writes): the valid records and the number
    of torn-tail bytes that recovery would drop.  An absent or empty
    journal reads as [([], 0)]. *)

type job = {
  j_spec : string;
  j_params : string;
  j_status : [ `Complete | `Degraded | `Failed | `In_flight ];
  j_tier : string option;
  j_units : int;  (** durable verification units recorded *)
  j_states : int;  (** last journaled explored-configuration count *)
  j_failures : int;
  j_budget : budget_image option;
}

val jobs_of_records : record list -> job list
(** Per-spec status digest, in first-appearance order: [`Complete]
    (verdict journaled, ok), [`Degraded] (verdict journaled, budget
    tripped without a failure), [`Failed] (verdict journaled with
    failures), [`In_flight] (begun, not concluded). *)

val pp_job : Format.formatter -> job -> unit
val pp_jobs : Format.formatter -> job list -> unit

(** {1 File layout (exposed for tests)} *)

val wal_path : string -> string
val snapshot_path : string -> string
val magic : string
(** The 8-byte file header both journal files carry. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string — the per-record checksum. *)
