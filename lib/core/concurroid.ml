(* Concurroids (paper, Sections 2.2.1 and 3.3): labelled state-transition
   systems whose states are subjective slices [self | joint | other],
   equipped with a coherence predicate carving out the state space, and
   transitions describing the state changes threads may perform.

   The FCSL metatheory imposes laws on concurroids; here they are
   executable checks over a finite enumeration of coherent slices that
   every concurroid instance supplies for verification:

   - transitions preserve coherence;
   - transitions fix the [other] component (only the owner changes it);
   - transitions preserve the real footprint (heap communication between
     concurroids is the business of entangled actions, not transitions);
   - the state space is fork-join closed: realigning a contribution
     between [self] and [other] stays coherent. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

type transition = {
  tr_name : string;
  tr_external : bool;
      (* External (communication) transitions exchange heap ownership
         with other concurroids (the paper's acquire/release channels,
         Section 4.1) and are exempt from footprint preservation. *)
  tr_step : Slice.t -> Slice.t list;
      (* All successor slices via this transition (the transition relation,
         enumerated).  Must not include the argument itself: idle is
         implicit. *)
}

let internal ~name step = { tr_name = name; tr_external = false; tr_step = step }
let external_ ~name step = { tr_name = name; tr_external = true; tr_step = step }

(* Lock-shaped concurroids declare how they are a lock: a dynamic
   holding observer plus the action-name prefixes that acquire and
   release it.  The declaration feeds the static deadlock analysis
   (lock census, acquire/release classification) and the scheduler's
   stuck-state witness (which locks the blocked configuration holds);
   the registry-wide static/dynamic differential keeps it honest. *)
type lock_info = {
  li_held : Slice.t -> bool;
      (* Does the observing thread hold the lock in this slice? *)
  li_acquires : string list;
      (* Action-name prefixes that (begin to) acquire the lock. *)
  li_releases : string list;
      (* Action-name prefixes that release the lock. *)
}

type t = {
  label : Label.t;
  cname : string;
  coh : Slice.t -> bool;
  transitions : transition list;
  justifies : (Slice.t -> Slice.t -> bool) option;
      (* Optional semantic transition relation, for concurroids whose
         transitions are quantified over data that cannot be enumerated
         (e.g. Priv: a thread may rewrite its own heap cells with
         arbitrary values).  When absent, the enumerated [transitions]
         are the relation. *)
  enum : unit -> Slice.t list;
      (* A finite universe of representative coherent slices, the domain
         over which laws and stability are checked. *)
  lock : lock_info option;
}

let make ?justifies ?lock ~label ~name ~coh ~transitions ~enum () =
  { label; cname = name; coh; transitions; justifies; enum; lock }

let lock_info c = c.lock

let held c s =
  match c.lock with None -> false | Some li -> li.li_held s

let justified c s s' =
  match c.justifies with Some j -> j s s' | None -> false

let label c = c.label
let name c = c.cname
let coh c s = c.coh s
let transitions c = c.transitions

let transition_names c = List.map (fun tr -> tr.tr_name) c.transitions
let enum c = c.enum ()

(* All slices reachable from [s] in one (non-idle) self step. *)
let steps c s =
  List.concat_map
    (fun tr -> List.map (fun s' -> (tr.tr_name, s')) (tr.tr_step s))
    c.transitions

(* Environment steps (the paper's [env_steps], one step): transitions
   taken from the transposed viewpoint.  From the observing thread's
   side, [self] is fixed while [joint] and [other] may change. *)
let env_steps c s =
  List.map
    (fun (n, s') -> (n, Slice.transpose s'))
    (steps c (Slice.transpose s))

(* Reflexive-transitive closure of environment stepping, bounded by
   [fuel] rounds; used to validate monotonicity lemmas such as
   [subgraph_steps]. *)
let env_steps_closure ?(fuel = 8) c s =
  let module SS = Set.Make (struct
    type t = Slice.t

    let compare = Slice.compare_for_dedup
  end) in
  let rec go seen frontier n =
    if n = 0 || frontier = [] then seen
    else
      let next =
        List.concat_map (fun s -> List.map snd (env_steps c s)) frontier
      in
      let fresh = List.filter (fun s -> not (SS.mem s seen)) next in
      let seen = List.fold_left (fun acc s -> SS.add s acc) seen fresh in
      go seen fresh (n - 1)
  in
  SS.elements (go (SS.singleton s) [ s ] fuel)

(* Law checking.  Each violation is reported with the transition and a
   printed witness state, so failures pinpoint the broken law. *)

type violation = { law : string; witness : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.law v.witness

let check_preserves_coh c s acc =
  List.fold_left
    (fun acc (n, s') ->
      if c.coh s' then acc
      else
        { law = "transition " ^ n ^ " breaks coherence";
          witness = Slice.to_string s' }
        :: acc)
    acc (steps c s)

let check_other_fixity c s acc =
  List.fold_left
    (fun acc (n, s') ->
      if Aux.equal (Slice.other s) (Slice.other s') then acc
      else
        { law = "transition " ^ n ^ " changes other";
          witness = Slice.to_string s }
        :: acc)
    acc (steps c s)

let footprint s =
  match State.heap_part (Slice.self s) with
  | None -> None
  | Some hs -> (
    match State.heap_part (Slice.other s) with
    | None -> None
    | Some ho ->
      Option.bind
        (Heap.union (Slice.joint s) hs)
        (fun h -> Heap.union h ho))

let check_footprint c s acc =
  match footprint s with
  | None -> acc
  | Some before ->
    List.fold_left
      (fun acc tr ->
        if tr.tr_external then acc
        else
          List.fold_left
            (fun acc s' ->
              match footprint s' with
              | Some after
                when Ptr.Set.equal (Heap.dom_set before) (Heap.dom_set after)
                -> acc
              | _ ->
                { law = "transition " ^ tr.tr_name ^ " changes footprint";
                  witness = Slice.to_string s }
                :: acc)
            acc (tr.tr_step s))
      acc c.transitions

(* Fork-join closure: for every split self = a • b, moving [b] across to
   [other] keeps the state coherent (and symmetrically, any part of
   [other] may fold into [self]). *)
let check_fork_join c s acc =
  let realigned =
    List.concat_map
      (fun (a, b) ->
        match Aux.join (Slice.other s) b with
        | Some other -> [ Slice.with_other other (Slice.with_self a s) ]
        | None -> [])
      (Aux.splits (Slice.self s))
  in
  List.fold_left
    (fun acc s' ->
      if c.coh s' then acc
      else
        { law = "state space not fork-join closed";
          witness = Slice.to_string s' }
        :: acc)
    acc realigned

let check_laws ?(max_violations = 10) c =
  let slices = List.filter c.coh (c.enum ()) in
  let violations =
    List.fold_left
      (fun acc s ->
        if List.length acc >= max_violations then acc
        else
          acc
          |> check_preserves_coh c s
          |> check_other_fixity c s
          |> check_footprint c s
          |> check_fork_join c s)
      [] slices
  in
  if slices = [] then
    [ { law = "empty coherent enumeration"; witness = c.cname } ]
  else violations

let well_formed c = check_laws c = []

let pp ppf c =
  Fmt.pf ppf "concurroid %s @@ %a (transitions: %a)" c.cname Label.pp c.label
    Fmt.(list ~sep:(any ", ") string)
    (transition_names c)
