(* Operational semantics of the DSL: a small-step interleaving scheduler
   over configurations, with optional environment interference.

   A configuration is a global environment (the shared joint heaps, the
   external environment's contribution, and the ambient world of
   concurroids) plus a tree of running threads.  Each [Par] node carries
   the PCM contributions of its two children; a thread's subjective view
   of label [l] is

     self  = its own contribution at l
     joint = the shared joint heap at l
     other = external contribution • all sibling contributions at l

   which is exactly FCSL's subjective split.  Forked children start with
   unit contributions and fold their earnings back into the parent on
   join.

   Administrative steps (monad laws, recursion unfolding, hide
   installation, joins) are performed eagerly — they commute with every
   other thread's steps — so scheduling choice points are exactly the
   atomic actions and (when enabled) environment interference, keeping
   exhaustive exploration tractable. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

type genv = {
  joints : Heap.t Label.Map.t;
  jauxs : Contrib.t; (* per-label joint auxiliary state *)
  ext_other : Contrib.t;
  world : World.t; (* ambient + dynamically installed concurroids *)
  interfere : Label.Set.t; (* labels open to environment interference *)
  ghash : int; (* incremental fingerprint of joints/jauxs/ext_other *)
}

(* Incremental shared-state hashing.  [ghash] is the XOR, over labels,
   of one avalanche-mixed word per bound component, so every site that
   rewrites a label patches the old word out and the new one in — O(1)
   per touched label instead of re-folding three maps per config key.
   Conventions mirror the semantic equalities the memo table uses:
   every joint-heap binding is mixed (a bound empty heap differs from
   an absent binding under [Label.Map.equal Heap.equal]); structural
   [Aux.Unit] contribution bindings are skipped (indistinguishable from
   absent ones under [Contrib.equal], cf. [Contrib.hash]).  Distinct
   salts keep equal values in different components from cancelling. *)
let mix_joint l h = State.mix ~salt:0x6a l (Heap.hash h)

let mix_jaux l a =
  match a with Aux.Unit -> 0 | _ -> State.mix ~salt:0x6b l (Aux.hash a)

let mix_ext l a =
  match a with Aux.Unit -> 0 | _ -> State.mix ~salt:0x6c l (Aux.hash a)

let ghash_of ~joints ~jauxs ~ext_other =
  let h = Label.Map.fold (fun l j acc -> acc lxor mix_joint l j) joints 0 in
  let h =
    List.fold_left
      (fun acc l -> acc lxor mix_jaux l (Contrib.get l jauxs))
      h (Contrib.labels jauxs)
  in
  List.fold_left
    (fun acc l -> acc lxor mix_ext l (Contrib.get l ext_other))
    h
    (Contrib.labels ext_other)

let recompute_ghash genv =
  ghash_of ~joints:genv.joints ~jauxs:genv.jauxs ~ext_other:genv.ext_other

(* Runtime thread trees. *)
type _ rt =
  | RRet : 'a -> 'a rt
  | RBind : 'b rt * ('b -> 'a Prog.t) -> 'a rt
  | RAct : 'a Action.t -> 'a rt
  | RPar : 'b rt * Contrib.t * 'c rt * Contrib.t -> ('b * 'c) rt
  | RParP : Prog.split * 'b Prog.t * 'c Prog.t -> ('b * 'c) rt
      (* pending fork split *)
  | RHideP : Prog.hide_spec * 'a Prog.t -> 'a rt (* pending installation *)
  | RHideI : Prog.hide_spec * 'a rt -> 'a rt (* installed, body running *)

let rec inject : type a. a Prog.t -> a rt = function
  | Prog.Ret v -> RRet v
  | Prog.Bind (p, k) -> RBind (inject p, k)
  | Prog.Act a -> RAct a
  | Prog.Par (p, q) -> RPar (inject p, Contrib.empty, inject q, Contrib.empty)
  | Prog.ParSplit (split, p, q) -> RParP (split, p, q)
  | Prog.Ffix (f, x) -> inject (Prog.unfold_ffix f x)
  | Prog.Hide (spec, body) -> RHideP (spec, body)
  | Prog.Annot (_, p) -> inject p (* semantically transparent *)

(* The sum of all contributions held inside a thread tree (excluding the
   root's own contribution, which the caller holds). *)
let rec inner_contribs : type a. a rt -> Contrib.t option = function
  | RRet _ | RAct _ -> Some Contrib.empty
  | RBind (p, _) -> inner_contribs p
  | RParP _ -> Some Contrib.empty
  | RHideP _ -> Some Contrib.empty
  | RHideI (_, body) -> inner_contribs body
  | RPar (l, cl, r, cr) ->
    Option.bind (inner_contribs l) (fun il ->
        Option.bind (inner_contribs r) (fun ir ->
            Contrib.join_all [ cl; cr; il; ir ]))

(* The subjective state a thread with contribution [mine] and sibling
   contributions [around] sees. *)
let view genv ~around ~mine : State.t option =
  Label.Map.fold
    (fun l joint acc ->
      Option.bind acc (fun st ->
          Option.map
            (fun other ->
              State.add l
                (Slice.make_jaux
                   ~jaux:(Contrib.get l genv.jauxs)
                   ~self:(Contrib.get l mine) ~joint ~other)
                st)
            (Aux.join (Contrib.get l around) (Contrib.get l genv.ext_other))))
    genv.joints (Some State.empty)

(* Decompose an action's output state back into joints and self
   contributions.  Also returns the labels written through — the exact
   set of bindings that can differ between input and output, which the
   POR analyzer-lie check uses as its confinement pre-filter.  A view
   label whose joint, jaux and self all come back physically unchanged
   is not touched at all: the maps keep sharing the old bindings, the
   hash contributions cancel, and the label stays off the touched list
   (an action's view often spans labels it only reads — reporting those
   would send every such move through the precise mutation diff). *)
let unview st ~(genv : genv) ~(mine : Contrib.t) =
  let rec go j c m gh touched = function
    | [] -> ({ genv with joints = j; jauxs = c; ghash = gh }, m, touched)
    | l :: tl ->
      let joint' = State.joint l st in
      let jaux' = State.jaux l st in
      let self' = State.self l st in
      let joint0 = Label.Map.find_opt l j in
      let jaux0 = Contrib.get l c in
      let joint_same =
        match joint0 with Some h -> h == joint' | None -> false
      in
      if joint_same && jaux0 == jaux' && Contrib.get l m == self' then
        go j c m gh touched tl
      else
        let gh =
          gh
          lxor (match joint0 with Some h -> mix_joint l h | None -> 0)
          lxor mix_joint l joint'
          lxor mix_jaux l jaux0
          lxor mix_jaux l jaux'
        in
        go (Label.Map.add l joint' j) (Contrib.set l jaux' c)
          (Contrib.set l self' m) gh (l :: touched) tl
  in
  go genv.joints genv.jauxs mine genv.ghash [] (State.labels st)

let as_ret : type a. a rt -> a option = function
  | RRet v -> Some v
  | RBind _ | RAct _ | RPar _ | RParP _ | RHideP _ | RHideI _ -> None

type 'a norm = Norm of genv * Contrib.t * 'a rt | Norm_crash of Crash.t

(* Normalization crashes are ghost-algebra failures: contribution joins,
   fork splits and hide installation are exactly the auxiliary-state
   bookkeeping FCSL's ghosts perform. *)
let ghost msg = Norm_crash (Crash.make Crash.Ghost_algebra msg)

(* Eager administrative reduction: monadic redexes, joins, hide
   installation/uninstallation.  Returns a tree whose every leaf is an
   [RAct] (or the whole tree is [RRet]). *)
let rec normalize : type a. genv -> Contrib.t -> a rt -> a norm =
 fun genv mine rt ->
  match rt with
  | RRet _ -> Norm (genv, mine, rt)
  | RAct _ -> Norm (genv, mine, rt)
  | RBind (p, k) -> (
    match normalize genv mine p with
    | Norm_crash _ as c -> c
    | Norm (genv, mine, RRet v) -> normalize genv mine (inject (k v))
    | Norm (genv, mine, p') -> Norm (genv, mine, RBind (p', k)))
  | RPar (l, cl, r, cr) -> (
    match normalize genv cl l with
    | Norm_crash _ as c -> c
    | Norm (genv, cl, l') -> (
      match normalize genv cr r with
      | Norm_crash _ as c -> c
      | Norm (genv, cr, r') -> (
        match (l', r') with
        | RRet vl, RRet vr -> (
          match Contrib.join_all [ mine; cl; cr ] with
          | Some mine -> Norm (genv, mine, RRet (vl, vr))
          | None -> ghost "par join: incompatible contributions")
        | _ -> Norm (genv, mine, RPar (l', cl, r', cr)))))
  | RParP (split, p, q) -> (
    match split mine with
    | None -> ghost "par: requested fork split unavailable"
    | Some (reserve, cl, cr) -> (
      match Contrib.join_all [ reserve; cl; cr ] with
      | Some total when Contrib.equal total mine ->
        normalize genv reserve (RPar (inject p, cl, inject q, cr))
      | Some _ | None -> ghost "par: fork split does not rejoin"))
  | RHideP (spec, body) -> install genv mine spec body
  | RHideI (spec, body) -> (
    match normalize genv mine body with
    | Norm_crash _ as c -> c
    | Norm (genv, mine, RRet v) -> uninstall genv mine spec v
    | Norm (genv, mine, body') -> Norm (genv, mine, RHideI (spec, body')))

(* Installation (Section 3.5): carve the decorated subheap out of this
   thread's private heap and erect the new concurroid's slice over it,
   with the given initial [self] and unit [other] (no interference). *)
and install : type a. genv -> Contrib.t -> Prog.hide_spec -> a Prog.t -> a norm
    =
 fun genv mine spec body ->
  let l = Concurroid.label spec.hs_conc in
  if Label.Map.mem l genv.joints then
    ghost (Fmt.str "hide: label %a already installed" Label.pp l)
  else
    match Aux.as_heap (Contrib.get spec.hs_priv mine) with
    | None -> ghost "hide: private contribution is not a heap"
    | Some priv_heap ->
      let donated = spec.hs_decor priv_heap in
      if not (Heap.subheap donated priv_heap) then
        ghost "hide: decoration selects outside the private heap"
      else
        let slice =
          Slice.make_jaux ~jaux:spec.hs_jaux ~self:spec.hs_init ~joint:donated
            ~other:Aux.Unit
        in
        if not (Concurroid.coh spec.hs_conc slice) then
          ghost
            (Fmt.str "hide: initial %s slice incoherent"
               (Concurroid.name spec.hs_conc))
        else
          let remaining = Heap.diff priv_heap donated in
          let genv =
            {
              genv with
              joints = Label.Map.add l donated genv.joints;
              jauxs = Contrib.set l spec.hs_jaux genv.jauxs;
              world = World.entangle genv.world (World.of_list [ spec.hs_conc ]);
              ghash =
                genv.ghash lxor mix_joint l donated
                lxor mix_jaux l (Contrib.get l genv.jauxs)
                lxor mix_jaux l spec.hs_jaux;
            }
          in
          let mine =
            mine
            |> Contrib.set spec.hs_priv (Aux.heap remaining)
            |> Contrib.set l spec.hs_init
          in
          normalize genv mine (RHideI (spec, inject body))

(* Uninstallation: return the hidden label's real heap (joint plus any
   heap-sorted auxiliaries) to the thread's private heap and retract the
   concurroid from the world. *)
and uninstall : type a. genv -> Contrib.t -> Prog.hide_spec -> a -> a norm =
 fun genv mine spec v ->
  let l = Concurroid.label spec.hs_conc in
  let joint = Option.value (Label.Map.find_opt l genv.joints) ~default:Heap.empty in
  let self_aux = Contrib.get l mine in
  let other_aux = Contrib.get l genv.ext_other in
  match (State.heap_part self_aux, State.heap_part other_aux) with
  | Some hs, Some ho -> (
    match
      Option.bind (Heap.union joint hs) (fun h -> Heap.union h ho)
    with
    | None -> ghost "unhide: colliding heaps"
    | Some returned -> (
      match Aux.as_heap (Contrib.get spec.hs_priv mine) with
      | None -> ghost "unhide: private contribution is not a heap"
      | Some priv_heap -> (
        match Heap.union priv_heap returned with
        | None -> ghost "unhide: returned heap collides with private"
        | Some priv' ->
          let genv =
            {
              genv with
              joints = Label.Map.remove l genv.joints;
              jauxs = Contrib.remove l genv.jauxs;
              ext_other = Contrib.remove l genv.ext_other;
              world =
                World.of_list
                  (List.filter
                     (fun c -> not (Label.equal (Concurroid.label c) l))
                     (World.concurroids genv.world));
              ghash =
                genv.ghash
                lxor (match Label.Map.find_opt l genv.joints with
                     | Some h -> mix_joint l h
                     | None -> 0)
                lxor mix_jaux l (Contrib.get l genv.jauxs)
                lxor mix_ext l (Contrib.get l genv.ext_other);
            }
          in
          let mine =
            mine |> Contrib.remove l |> Contrib.set spec.hs_priv (Aux.heap priv')
          in
          Norm (genv, mine, RRet v))))
  | _ -> ghost "unhide: auxiliary state has no heap erasure"

(* One scheduling move: an atomic action at some leaf.  Returns all
   enabled moves as continuations, or a crash witness if some enabled
   leaf is unsafe (a verification failure).

   [mv_path] locates the leaf on the Par spine for partial-order
   reduction (root 1, left child [2p], right child [2p+1] — the binary
   heap numbering, bijective with the old "L"/"R" path strings); the
   {!Por} oracle interns [(path, name, footprint)] into a dense move
   id.  The identity is stable along a DFS descent — a leaf's pending
   action can only change by executing, and a slept move is never
   executed, so a sleep-set entry always denotes the same pending
   transition wherever it still matches.  [mv_fp] is the action's
   declared effect envelope.  Both are only consumed under POR. *)
type 'a move = {
  mv_name : string;
  mv_path : int;
  mv_fp : Footprint.t;
  mv_touched : Label.t list;
      (* the labels the action wrote through [unview] — every binding
         that can differ across this move; [] for error moves *)
  mv_next : (genv * Contrib.t * 'a rt, Crash.t) result;
}

let move_name mv = mv.mv_name
let move_next mv = mv.mv_next

let rec moves_at : type a.
    path:int -> genv -> Contrib.t -> Contrib.t -> a rt -> a move list =
 fun ~path genv around mine rt ->
  match rt with
  | RRet _ -> []
  | RParP _ -> [] (* eliminated by normalize *)
  | RHideP _ -> [] (* eliminated by normalize *)
  | RAct a -> (
    let mv_fp = Action.footprint a in
    match view genv ~around ~mine with
    | None ->
      [
        {
          mv_name = Action.name a;
          mv_path = path;
          mv_fp;
          mv_touched = [];
          mv_next = Error (Crash.make Crash.Ghost_algebra "invalid subjective view");
        };
      ]
    | Some st ->
      if not (Action.safe a st) then
        [
          {
            mv_name = Action.name a;
            mv_path = path;
            mv_fp;
            mv_touched = [];
            mv_next =
              Error
                (Crash.make Crash.Unsafe_action
                   (Fmt.str "action %s unsafe in %a" (Action.name a) State.pp st));
          };
        ]
      else if not (Action.enabled a st) then [] (* blocked, not crashed *)
      else
        let r, st' = Action.step_exn a st in
        let genv', mine', touched = unview st' ~genv ~mine in
        [
          {
            mv_name = Action.name a;
            mv_path = path;
            mv_fp;
            mv_touched = touched;
            mv_next = Ok (genv', mine', RRet r);
          };
        ])
  | RBind (p, k) ->
    List.map
      (fun mv ->
        {
          mv with
          mv_next =
            Result.map (fun (g, m, p') -> (g, m, RBind (p', k))) mv.mv_next;
        })
      (moves_at ~path genv around mine p)
  | RHideI (spec, body) ->
    List.map
      (fun mv ->
        {
          mv with
          mv_next =
            Result.map (fun (g, m, b') -> (g, m, RHideI (spec, b'))) mv.mv_next;
        })
      (moves_at ~path genv around mine body)
  | RPar (l, cl, r, cr) ->
    let around_of sibling_contrib sibling_tree =
      Option.bind (inner_contribs sibling_tree) (fun inner ->
          Contrib.join_all [ around; mine; sibling_contrib; inner ])
    in
    let left =
      match around_of cr r with
      | None ->
        [
          {
            mv_name = "par";
            mv_path = path;
            mv_fp = Footprint.top;
            mv_touched = [];
            mv_next =
              Error (Crash.make Crash.Ghost_algebra "incompatible contributions");
          };
        ]
      | Some around_l ->
        List.map
          (fun mv ->
            {
              mv with
              mv_next =
                Result.map
                  (fun (g, m_l, l') -> (g, mine, RPar (l', m_l, r, cr)))
                  mv.mv_next;
            })
          (moves_at ~path:(2 * path) genv around_l cl l)
    in
    let right =
      match around_of cl l with
      | None ->
        [
          {
            mv_name = "par";
            mv_path = path;
            mv_fp = Footprint.top;
            mv_touched = [];
            mv_next =
              Error (Crash.make Crash.Ghost_algebra "incompatible contributions");
          };
        ]
      | Some around_r ->
        List.map
          (fun mv ->
            {
              mv with
              mv_next =
                Result.map
                  (fun (g, m, r') -> (g, mine, RPar (l, cl, r', m)))
                  mv.mv_next;
            })
          (moves_at ~path:((2 * path) + 1) genv around_r cr r)
    in
    left @ right

let moves genv around mine rt = moves_at ~path:1 genv around mine rt

(* Environment interference: at any label open to interference, the
   environment may take any transition of that label's concurroid from
   its own viewpoint ([self] = external contribution, [other] = the sum
   of all our threads' contributions).  From the program's side this
   changes [joint] and the external contribution, never our selves.

   Move names are lazy: exhaustive exploration only renders a schedule
   when it reports a crash, so the (hot) happy paths never pay for the
   formatting. *)
(* Like program moves, each env move carries a POR identity: the label,
   transition name and branch index within the concurroid's
   (deterministic) step list — stable under independent moves, which
   leave the whole slice at [l] untouched and hence re-enumerate the
   identical list.  The {!Por} oracle interns the triple; the class
   envelope is [touches l] *by construction*: an env step rewrites the
   joint heap, joint auxiliary and external contribution at its own
   label and nothing else (see the update below), so rule 3 of the
   independence analyzer — transitions at distinct labels commute — is
   the footprint check itself. *)
type env_move = {
  ev_name : string Lazy.t;
  ev_label : Label.t;
  ev_trans : string;
  ev_index : int;
  ev_genv : genv;
}

let env_moves_aux : type a. genv -> Contrib.t -> a rt -> env_move list =
 fun genv mine rt ->
  match Option.bind (inner_contribs rt) (Contrib.join mine) with
  | None -> []
  | Some ours ->
    List.concat_map
      (fun c ->
        let l = Concurroid.label c in
        if not (Label.Set.mem l genv.interfere) then []
        else
          match Label.Map.find_opt l genv.joints with
          | None -> []
          | Some joint ->
            let jaux0 = Contrib.get l genv.jauxs in
            let ext0 = Contrib.get l genv.ext_other in
            let env_slice =
              Slice.make_jaux ~jaux:jaux0 ~self:ext0 ~joint
                ~other:(Contrib.get l ours)
            in
            List.mapi
              (fun i (n, s') ->
                {
                  ev_name = lazy (Fmt.str "env:%s.%s" (Concurroid.name c) n);
                  ev_label = l;
                  ev_trans = n;
                  ev_index = i;
                  ev_genv =
                    {
                      genv with
                      joints = Label.Map.add l (Slice.joint s') genv.joints;
                      jauxs = Contrib.set l (Slice.jaux s') genv.jauxs;
                      ext_other =
                        Contrib.set l (Slice.self s') genv.ext_other;
                      ghash =
                        genv.ghash lxor mix_joint l joint
                        lxor mix_joint l (Slice.joint s')
                        lxor mix_jaux l jaux0
                        lxor mix_jaux l (Slice.jaux s')
                        lxor mix_ext l ext0
                        lxor mix_ext l (Slice.self s');
                    };
                })
              (Concurroid.steps c env_slice))
      (World.concurroids genv.world)

let env_moves genv mine rt =
  List.map (fun ev -> (Lazy.force ev.ev_name, ev.ev_genv)) (env_moves_aux genv mine rt)

(* Stuck-state detection.  When every program leaf is blocked on a
   disabled action, the configuration is either a genuine deadlock or
   merely waiting on environment interference.  [confirms_stuck] closes
   over the environment's transitions from the current shared state —
   deliberately ignoring the remaining interference budget, whose
   exhaustion must never manufacture a deadlock — and reports a genuine
   deadlock only when no reachable environment state re-enables any
   program move.  The closure is bounded; past [stuck_closure_cap]
   distinct shared states the answer is conservatively "not stuck"
   (divergence, exactly as before).  Labels closed to interference
   ([genv.interfere]) cannot be changed by the environment, so a
   no-interference verification confirms immediately. *)

let stuck_closure_cap = 512

let genv_same a b =
  a.ghash = b.ghash
  && Label.Map.equal Heap.equal a.joints b.joints
  && Contrib.equal a.jauxs b.jauxs
  && Contrib.equal a.ext_other b.ext_other

exception Not_stuck

let confirms_stuck : type a. genv -> Contrib.t -> a rt -> bool =
 fun genv0 mine rt ->
  let visited = ref [ genv0 ] in
  let nvisited = ref 1 in
  let rec bfs = function
    | [] -> ()
    | g :: rest ->
      let fresh =
        List.filter_map
          (fun ev ->
            let g' = ev.ev_genv in
            (* Any program move becoming schedulable — including an
               unsafe one, which the real search would report as a
               crash — counts as progress. *)
            if moves g' Contrib.empty mine rt <> [] then raise Not_stuck;
            if List.exists (genv_same g') !visited then None
            else begin
              if !nvisited >= stuck_closure_cap then raise Not_stuck;
              visited := g' :: !visited;
              incr nvisited;
              Some g'
            end)
          (env_moves_aux g mine rt)
      in
      bfs (rest @ fresh)
  in
  match bfs [ genv0 ] with () -> true | exception Not_stuck -> false

(* The held-lock witness: lock-shaped world concurroids whose holding
   observer is true of the slice seen by the pooled program
   contributions — some thread of ours holds them. *)
let held_locks genv mine rt =
  match Option.bind (inner_contribs rt) (Contrib.join mine) with
  | None -> []
  | Some ours ->
    List.filter_map
      (fun c ->
        match Concurroid.lock_info c with
        | None -> None
        | Some _ -> (
          let l = Concurroid.label c in
          match Label.Map.find_opt l genv.joints with
          | None -> None
          | Some joint ->
            let s =
              Slice.make_jaux
                ~jaux:(Contrib.get l genv.jauxs)
                ~self:(Contrib.get l ours) ~joint
                ~other:(Contrib.get l genv.ext_other)
            in
            if Concurroid.held c s then Some (Label.name l) else None))
      (World.concurroids genv.world)

(* The blocked leaves of an all-blocked tree: every action leaf with a
   valid view that is safe but disabled, with its declared footprint
   (to name the lock it blocks on).  Only called off the hot path, when
   [moves] is already known to be empty. *)
let rec blocked_at : type a.
    genv -> Contrib.t -> Contrib.t -> a rt -> (string * Footprint.t) list =
 fun genv around mine rt ->
  match rt with
  | RRet _ | RParP _ | RHideP _ -> []
  | RAct a -> (
    match view genv ~around ~mine with
    | None -> []
    | Some st ->
      if Action.safe a st && not (Action.enabled a st) then
        [ (Action.name a, Action.footprint a) ]
      else [])
  | RBind (p, _) -> blocked_at genv around mine p
  | RHideI (_, body) -> blocked_at genv around mine body
  | RPar (l, cl, r, cr) ->
    let around_of sibling_contrib sibling_tree =
      Option.bind (inner_contribs sibling_tree) (fun inner ->
          Contrib.join_all [ around; mine; sibling_contrib; inner ])
    in
    (match around_of cr r with
    | None -> []
    | Some around_l -> blocked_at genv around_l cl l)
    @
    (match around_of cl l with
    | None -> []
    | Some around_r -> blocked_at genv around_r cr r)

(* The stable witness message the deadlock crash carries.  The static
   analyzer's differential tests parse the lock names back out of it
   (see [Deadlock.locks_of_witness] in fcsl.analysis), so the
   "held locks: {...}" and "blocked: [...]" shapes are load-bearing. *)
let deadlock_message genv mine rt =
  let lock_labels =
    List.filter_map
      (fun c ->
        if Concurroid.lock_info c <> None then Some (Concurroid.label c)
        else None)
      (World.concurroids genv.world)
  in
  let blocked =
    List.map
      (fun (n, fp) ->
        match
          List.find_opt
            (fun l ->
              match Footprint.labels fp with
              | Some ls -> Label.Set.mem l ls
              | None -> false)
            lock_labels
        with
        | Some l -> n ^ " awaiting " ^ Label.name l
        | None -> n)
      (blocked_at genv Contrib.empty mine rt)
  in
  let held = List.sort String.compare (held_locks genv mine rt) in
  Fmt.str
    "deadlock: every program move is disabled and no environment step \
     re-enables one; held locks: {%s}; blocked: [%s]"
    (String.concat ", " held)
    (String.concat ", " blocked)

(* Configuration fingerprinting, the backbone of memoized exploration.

   A configuration is (genv, mine, rt).  The state-like parts (joint
   heaps, auxiliary contributions) have canonical semantic compare/hash
   functions.  The thread tree does not: its leaves embed OCaml closures
   (bind continuations, actions) that two interleavings of the same
   commuting steps rebuild independently, so physical identity misses
   them.  We identify tree atoms by a per-exploration registry that
   compares the runtime representations structurally — descending
   through blocks and, crucially, through closures, whose code pointers
   are compared as raw words and whose captured environments are
   compared recursively.  Same code and structurally equal captures
   means the same behaviour (captures are immutable throughout this
   codebase), so identification is sound; anything unrecognized
   (pathological depth, infix pointers of mutually recursive closure
   blocks) conservatively compares unequal, which only forfeits a
   pruning opportunity. *)
(* The shape of a thread tree, with atoms replaced by registry codes
   and the per-branch contributions kept as comparable values.  Keys
   are hash-consed through the same per-exploration registry that
   identifies the atoms: every structurally equal shape is represented
   by one physical node carrying its precomputed hash, so memo-table
   equality on the tree part degrades to pointer identity and hashing
   to a field read. *)
type rt_key = { kn : knode; kh : int }

and knode =
  | KRet of int
  | KAct of int
  | KBind of rt_key * int
  | KPar of rt_key * Contrib.t * rt_key * Contrib.t
  | KParP of int * int * int
  | KHideP of int * int
  | KHideI of int * rt_key

module Keyer = struct
  (* Start-of-environment index of a closure block, decoded from the
     closinfo word as laid out by the OCaml 5 runtime: arity in the top
     8 bits, start-of-env in the remaining bits, shifted by 1. *)
  let start_env (o : Obj.t) =
    let info = Obj.raw_field o 1 in
    Nativeint.to_int
      (Nativeint.shift_right_logical (Nativeint.shift_left info 8) 9)

  let raw_prefix_eq a b n =
    let rec go i =
      i >= n
      || (Nativeint.equal (Obj.raw_field a i) (Obj.raw_field b i)
         && go (i + 1))
    in
    go 0

  (* Structural equality of runtime representations.  [fuel] bounds the
     number of visited nodes (cycles through recursive closures, huge
     captured structures); exhaustion answers [false]. *)
  let rec obj_eq fuel (a : Obj.t) (b : Obj.t) =
    a == b
    || (!fuel > 0
       &&
       (decr fuel;
        (not (Obj.is_int a))
        && (not (Obj.is_int b))
        &&
        let ta = Obj.tag a in
        ta = Obj.tag b
        &&
        if ta = Obj.string_tag then String.equal (Obj.obj a) (Obj.obj b)
        else if ta = Obj.double_tag then Float.equal (Obj.obj a) (Obj.obj b)
        else if ta = Obj.double_array_tag then
          (Obj.obj a : float array) = (Obj.obj b : float array)
        else if ta = Obj.custom_tag then
          (try Stdlib.compare a b = 0 with Invalid_argument _ -> false)
        else if ta = Obj.closure_tag then
          let sa = Obj.size a in
          sa = Obj.size b
          &&
          let se = start_env a in
          2 <= se && se <= sa && raw_prefix_eq a b se
          && fields_eq fuel a b se sa
        else if ta = Obj.infix_tag then false
        else if ta < Obj.no_scan_tag then
          let sa = Obj.size a in
          sa = Obj.size b && fields_eq fuel a b 0 sa
        else false))

  and fields_eq fuel a b i n =
    i >= n
    || (obj_eq fuel (Obj.field a i) (Obj.field b i)
       && fields_eq fuel a b (i + 1) n)

  let eq_fuel = 4096

  let same (a : Obj.t) (b : Obj.t) = obj_eq (ref eq_fuel) a b

  type t = {
    buckets : (int, (Obj.t * int) list) Hashtbl.t;
    mutable next : int;
    mutable stored : int;
    kbuckets : (int, rt_key list) Hashtbl.t; (* hash-consed tree keys *)
  }

  (* Registered atoms are kept alive for the whole exploration, so cap
     the registry; atoms past the cap get fresh (never-matching) ids. *)
  let max_stored = 1 lsl 16

  let create () =
    {
      buckets = Hashtbl.create 256;
      next = 0;
      stored = 0;
      kbuckets = Hashtbl.create 256;
    }

  (* Immediates map to odd codes, registered blocks to even ones, so the
     two can never collide.  [Hashtbl.hash] is total (closures hash by
     code address and captured environment) and consistent with
     [obj_eq]-equal values in practice; a stray inconsistency would only
     duplicate an atom id, never identify distinct atoms. *)
  let atom t (o : Obj.t) : int =
    if Obj.is_int o then (2 * (Obj.obj o : int)) + 1
    else begin
      let h = Hashtbl.hash o in
      let bucket = Option.value (Hashtbl.find_opt t.buckets h) ~default:[] in
      match List.find_opt (fun (o', _) -> same o o') bucket with
      | Some (_, id) -> id
      | None ->
        let id = 2 * t.next in
        t.next <- t.next + 1;
        if t.stored < max_stored then begin
          Hashtbl.replace t.buckets h ((o, id) :: bucket);
          t.stored <- t.stored + 1
        end;
        id
    end

  (* Hash-consing of tree keys.  Children are compared by pointer only:
     [cons] is the sole constructor, so within one registry equal
     subtrees are already shared.  Per-branch contributions still
     compare semantically — two [Contrib.equal] values unify on the
     first-seen representative, exactly matching the memo table's old
     structural equality. *)
  let node_hash = function
    | KRet i -> (3 * 33) lxor i
    | KAct i -> (5 * 33) lxor i
    | KBind (p, i) -> (((7 * 33) lxor p.kh) * 33) lxor i
    | KPar (l, cl, r, cr) ->
      (((((((11 * 33) lxor l.kh) * 33) lxor Contrib.hash cl) * 33) lxor r.kh)
       * 33)
      lxor Contrib.hash cr
    | KParP (s, p, q) -> (((((13 * 33) lxor s) * 33) lxor p) * 33) lxor q
    | KHideP (s, b) -> (((17 * 33) lxor s) * 33) lxor b
    | KHideI (s, b) -> (((19 * 33) lxor s) * 33) lxor b.kh

  let node_eq n1 n2 =
    match (n1, n2) with
    | KRet i, KRet j | KAct i, KAct j -> i = j
    | KBind (p, i), KBind (q, j) -> i = j && p == q
    | KPar (l1, cl1, r1, cr1), KPar (l2, cl2, r2, cr2) ->
      l1 == l2 && r1 == r2 && Contrib.equal cl1 cl2 && Contrib.equal cr1 cr2
    | KParP (s1, p1, q1), KParP (s2, p2, q2) -> s1 = s2 && p1 = p2 && q1 = q2
    | KHideP (s1, b1), KHideP (s2, b2) -> s1 = s2 && b1 = b2
    | KHideI (s1, b1), KHideI (s2, b2) -> s1 = s2 && b1 == b2
    | (KRet _ | KAct _ | KBind _ | KPar _ | KParP _ | KHideP _ | KHideI _), _
      ->
      false

  let cons t kn =
    let h = node_hash kn in
    let bucket = Option.value (Hashtbl.find_opt t.kbuckets h) ~default:[] in
    match List.find_opt (fun k -> node_eq k.kn kn) bucket with
    | Some k -> k
    | None ->
      let k = { kn; kh = h } in
      Hashtbl.replace t.kbuckets h (k :: bucket);
      k
end

type keyer = Keyer.t

let new_keyer = Keyer.create

let rec rt_key : type a. keyer -> a rt -> rt_key =
 fun kr rt ->
  let atom v = Keyer.atom kr (Obj.repr v) in
  match rt with
  | RRet v -> Keyer.cons kr (KRet (atom v))
  | RAct a -> Keyer.cons kr (KAct (atom a))
  | RBind (p, k) -> Keyer.cons kr (KBind (rt_key kr p, atom k))
  | RPar (l, cl, r, cr) ->
    Keyer.cons kr (KPar (rt_key kr l, cl, rt_key kr r, cr))
  | RParP (s, p, q) -> Keyer.cons kr (KParP (atom s, atom p, atom q))
  | RHideP (s, b) -> Keyer.cons kr (KHideP (atom s, atom b))
  | RHideI (s, b) -> Keyer.cons kr (KHideI (atom s, rt_key kr b))

(* Hash-consed: one physical node per shape within a registry. *)
let rt_key_equal (k1 : rt_key) (k2 : rt_key) = k1 == k2
let rt_key_hash (k : rt_key) = k.kh

type config_key = {
  ck_rt : rt_key;
  ck_joints : Heap.t Label.Map.t;
  ck_jauxs : Contrib.t;
  ck_ext : Contrib.t;
  ck_world : int list; (* concurroid identities, in world order *)
  ck_mine : Contrib.t;
  ck_sleep : Por.Sleepset.t; (* POR sleep set; empty without POR *)
  ck_hash : int; (* precomputed: keys are hashed more than once *)
}

let config_key (kr : keyer) (genv : genv) (mine : Contrib.t) rt : config_key =
  let ck_rt = rt_key kr rt in
  let ck_world =
    List.map (fun c -> Keyer.atom kr (Obj.repr c)) (World.concurroids genv.world)
  in
  (* The shared-state hash is the genv's incrementally maintained
     fingerprint — no map re-folding here; only the (small) root
     contribution is hashed per key. *)
  let ck_hash =
    List.fold_left
      (fun acc w -> (acc * 33) lxor w)
      ((((rt_key_hash ck_rt * 33) lxor genv.ghash) * 33) lxor Contrib.hash mine)
      ck_world
  in
  {
    ck_rt;
    ck_joints = genv.joints;
    ck_jauxs = genv.jauxs;
    ck_ext = genv.ext_other;
    ck_world;
    ck_mine = mine;
    ck_sleep = Por.Sleepset.empty;
    ck_hash;
  }

(* Under POR, the outcomes a configuration records depend on its sleep
   set (slept subtrees are omitted), so memo entries are only replayable
   at the same sleep context: the set joins the key.  Bitsets are
   canonical by construction, so any two arrival orders of the same
   slept moves produce equal keys with equal hashes. *)
let config_key_sleep kr genv mine rt sleep =
  let k = config_key kr genv mine rt in
  if Por.Sleepset.is_empty sleep then k
  else
    {
      k with
      ck_sleep = sleep;
      ck_hash = (k.ck_hash * 33) lxor Por.Sleepset.hash sleep;
    }

let config_key_hash k = k.ck_hash

let config_key_equal k1 k2 =
  k1.ck_hash = k2.ck_hash
  && rt_key_equal k1.ck_rt k2.ck_rt
  && Label.Map.equal Heap.equal k1.ck_joints k2.ck_joints
  && Contrib.equal k1.ck_jauxs k2.ck_jauxs
  && Contrib.equal k1.ck_ext k2.ck_ext
  && List.equal Int.equal k1.ck_world k2.ck_world
  && Contrib.equal k1.ck_mine k2.ck_mine
  && Por.Sleepset.equal k1.ck_sleep k2.ck_sleep

let fingerprint kr genv mine rt = config_key_hash (config_key kr genv mine rt)

module Memo = Hashtbl.Make (struct
  type t = config_key

  let equal = config_key_equal
  let hash = config_key_hash
end)

(* Exploration. *)

type 'a outcome =
  | Finished of 'a * State.t (* result and final subjective root view *)
  | Crashed of Crash.t
  | Diverged (* fuel exhausted along this path *)

let pp_outcome pp_res ppf = function
  | Finished (r, st) -> Fmt.pf ppf "finished %a in %a" pp_res r State.pp st
  | Crashed c -> Fmt.pf ppf "CRASH: %a" Crash.pp c
  | Diverged -> Fmt.string ppf "diverged (out of fuel)"

exception Stop

(* Render a schedule prefix for counterexample reports (oldest step
   first).  Names are accumulated lazily, newest first, and only forced
   here, on the crash paths. *)
let trace_steps trace = List.rev_map Lazy.force trace

(* What the memo table remembers about an exhausted configuration: the
   remaining fuel and environment budget it was explored with, what its
   subtree actually NEEDED of them, and the outcomes the subtree
   recorded (in order).

   A revisit is pruned by replaying the cached outcomes when the replay
   is provably exact — i.e. a fresh exploration would record the same
   outcome sequence.  That holds in two cases:

   - the revisit has the same remaining fuel and budget (commuting-step
     diamonds: equal move multisets reach equal configurations at equal
     depth and equal env usage); or
   - the cached subtree was never truncated and the revisit's allowances
     cover its recorded needs: nodes below the deepest point and env
     branches beyond the low-water budget simply do not exist, so any
     larger-or-equal allowance explores the identical tree.  ([e_need_*]
     is [max_int] when the subtree WAS cut by that limit, disabling this
     arm.)

   Either way the replayed outcomes are exactly the naive ones, so
   failure sets, outcome counts and completeness are preserved; only the
   schedule annotations inside crash messages keep their first-discovery
   trace. *)
type 'a memo_entry = {
  e_fuel : int; (* remaining fuel at the recorded visit *)
  e_budget : int; (* env budget at the recorded visit *)
  e_need_fuel : int; (* deepest relative depth reached; max_int if cut *)
  e_need_env : int; (* most env steps used on a path; max_int if cut *)
  e_outs : 'a outcome list;
}

(* Entries above this many outcomes are not stored: their memory cost
   outweighs the re-emission saving, and their subtrees are pruned
   through their (cached) children anyway. *)
let memo_store_cap = 4096

(* Exploration statistics: configurations actually entered (same cadence
   as the budget tick), memo behaviour, sleep-set skips and allocation,
   exposed so callers can report the effect of the active reductions
   (dedup, pruning, POR) and measure — not guess — the hot path. *)
type explore_stats = {
  mutable es_configs : int; (* configurations entered *)
  mutable es_memo_hits : int; (* memoized subtrees replayed *)
  mutable es_memo_misses : int; (* configurations explored afresh *)
  mutable es_sleep_skips : int; (* subtrees the sleep set pruned *)
  mutable es_max_bucket : int; (* worst memo hash-bucket collision depth *)
  mutable es_minor_words : float; (* Gc.minor_words allocated exploring *)
}

let new_stats () =
  {
    es_configs = 0;
    es_memo_hits = 0;
    es_memo_misses = 0;
    es_sleep_skips = 0;
    es_max_bucket = 0;
    es_minor_words = 0.;
  }

(* Raised (internally) when a move mutates a label outside its declared
   footprint while POR is active: every independence claim involving the
   move is void, so the exploration restarts without reduction. *)
exception Analyzer_lie_exn of Crash.t

(* Depth-first exploration of all interleavings (and, when [interference]
   holds, all environment-step insertions), up to [fuel] steps per path
   and at most [max_outcomes] recorded outcomes.  Returns the recorded
   outcomes and a completeness flag.

   With [dedup], configurations are fingerprinted (see {!config_key})
   and a configuration already exhausted at no less fuel and budget is
   pruned by replaying its recorded outcomes.  Interleavings of
   commuting steps — the diamonds behind the exponential blow-up — reach
   identical configurations at identical depth, so this collapses them
   while reporting exactly what the naive search reports.

   With [por], sleep-set partial-order reduction prunes *transitions*:
   after exploring a move, later sibling subtrees skip it as long as
   only independent moves (per the {!Por} oracle) have been taken since.
   Sleep sets preserve every reachable configuration (only redundant
   re-entries are cut), so finished states, crashes and divergences all
   remain reachable; what changes is multiplicity and explored-state
   counts.  The reduction is gated by a soundness envelope: every
   executed move's shared-state and self mutations are checked against
   its declared footprint, and any violation — an analyzer lie — aborts
   and re-runs the whole exploration with reduction off, recording a
   located [Crash.Analyzer_lie] diagnostic in the oracle.  A wrong
   static claim can therefore never flip a verdict. *)
let explore ?(fuel = 64) ?(max_outcomes = 200_000) ?(interference = true)
    ?(env_budget = max_int) ?(dedup = false) ?monitor_envelope ?budget ?journal
    ?por ?stats (genv0 : genv) (mine0 : Contrib.t) (prog : 'a Prog.t) :
    'a outcome list * bool =
  (* Cooperative budget poll, one per explored configuration.  A trip
     aborts through the existing [Stop] path, so (a) [complete] comes
     back [false] exactly as on a [max_outcomes] cut and (b) no memo
     entry is ever stored for a truncated subtree — replay exactness is
     untouched.  The tick hook is also the chaos harness's mid-explore
     fault-injection point; whatever it raises propagates to the
     supervised pool above.  The journal writer rides the same cadence:
     every explored configuration ticks it (appending periodic Frontier
     records), so journaled progress counts exactly mirror budget state
     counts. *)
  let tick_budget () =
    (match journal with None -> () | Some w -> Journal.writer_tick w);
    match budget with
    | None -> ()
    | Some b ->
      Budget.tick b;
      if Budget.tripped b <> None then raise Stop
  in
  (* Dynamic write-confinement check for declared effect envelopes: when
     a caller prunes env steps based on a footprint, every shared-state
     mutation (joint heap or joint auxiliary) at a label OUTSIDE that
     footprint is an envelope violation — the declared annotation was
     unsound, and pruning on it would be too.  Reported as a crash so it
     surfaces as a verification failure rather than a silent wrong
     verdict.  Labels installed by [hide] during the run are fresh, so
     watching only the initial world's labels is exhaustive. *)
  let watched =
    match monitor_envelope with
    | None -> []
    | Some envelope ->
      List.filter
        (fun l -> not (Label.Set.mem l envelope))
        (World.labels genv0.world)
  in
  let envelope_violation (before : genv) (after : genv) =
    List.find_opt
      (fun l ->
        let joint_eq =
          match
            (Label.Map.find_opt l before.joints, Label.Map.find_opt l after.joints)
          with
          | Some h, Some h' -> Heap.equal h h'
          | None, None -> true
          | Some _, None | None, Some _ -> false
        in
        not
          (joint_eq
          && Aux.equal (Contrib.get l before.jauxs) (Contrib.get l after.jauxs)))
      watched
  in
  (* The POR soundness envelope: a move's joint-heap, joint-auxiliary,
     external-contribution or self mutations must all land on labels its
     declared footprint covers (Top declares everything and is never
     claimed independent, so it checks vacuously).  Reads are part of
     the same declaration contract but — exactly as with the prune
     monitor above — are trusted statically and cross-checked by the
     differential and QCheck suites rather than at runtime. *)
  (* Runs once per executed move on the POR arm, so it must not build
     candidate sets or lists: each component diff is checked by direct
     iteration over its own keys (a label can only differ at a component
     it is bound in on some side; re-checking a label is idempotent, so
     no dedup set is needed), with physical-equality fast paths at both
     the component and binding level — a confined move leaves untouched
     labels' heaps and auxes physically shared. *)
  (* Confinement pre-filter: [unview] rewrites bindings at exactly
     [touched]; every other label stays physically shared.  All of them
     inside the declared envelope means no binding outside it can
     differ — the precise diff would return [None], so skip it.  This
     is the hot-path case for every honest move; bare loops over the
     oracle's cached label array because a [List.for_all] closure would
     allocate once per executed move, and the arrays are small enough
     that a linear scan beats [Label.Set.mem]. *)
  let rec mem_lbl (a : Label.t array) n i l =
    i < n && (Label.equal (Array.unsafe_get a i) l || mem_lbl a n (i + 1) l)
  in
  let rec all_allowed (a : Label.t array) n = function
    | [] -> true
    | l :: tl -> mem_lbl a n 0 l && all_allowed a n tl
  in
  let find_lie ~allowed ~touched ~(before : genv) ~(after : genv) ~mine ~mine'
      =
    match allowed with
    | None -> None
    | Some (_, arr) when all_allowed arr (Array.length arr) touched -> None
    | Some (allowed, _) ->
      let lie = ref None in
      let joint_differs l =
        match
          (Label.Map.find_opt l before.joints, Label.Map.find_opt l after.joints)
        with
        | Some a, Some b -> not (a == b || Heap.equal a b)
        | None, None -> false
        | Some _, None | None, Some _ -> true
      in
      let check_joint l =
        if !lie = None && (not (Label.Set.mem l allowed)) && joint_differs l
        then lie := Some l
      in
      if not (before.joints == after.joints) then begin
        Label.Map.iter (fun l _ -> check_joint l) after.joints;
        Label.Map.iter
          (fun l _ -> if not (Label.Map.mem l after.joints) then check_joint l)
          before.joints
      end;
      let check_contrib c c' =
        if !lie = None && not (c == c') then begin
          let chk l =
            if
              !lie = None
              && (not (Label.Set.mem l allowed))
              &&
              let a = Contrib.get l c and a' = Contrib.get l c' in
              not (a == a' || Aux.equal a a')
            then lie := Some l
          in
          Contrib.iter (fun l _ -> chk l) c;
          Contrib.iter (fun l _ -> chk l) c'
        end
      in
      check_contrib before.jauxs after.jauxs;
      check_contrib before.ext_other after.ext_other;
      check_contrib mine mine';
      !lie
  in
  let run por =
    let outcomes = ref [] in
    let count = ref 0 in
    let record o =
      (* Counterexamples are journaled at discovery — before the search
         (or the process) ends — so a kill never loses found failures. *)
      (match (o, journal) with
      | Crashed c, Some w -> Journal.writer_crash w c
      | _ -> ());
      outcomes := o :: !outcomes;
      incr count;
      if !count >= max_outcomes then raise Stop
    in
    let keyer = Keyer.create () in
    let memo : 'a memo_entry Memo.t = Memo.create (if dedup then 4096 else 1) in
    (* Subtree-need accounting: absolute-depth high-water mark, budget
       low-water mark, and whether the fuel limit was hit.  Saved and
       restored around every memoized subtree. *)
    let deepest = ref 0 in
    let shallow_budget = ref env_budget in
    let fuel_cut = ref false in
    (* The first [n] cells of the (newest-first) outcome list, oldest
       first: the outcomes a subtree just recorded. *)
    let take_rev n l =
      let rec aux n acc l =
        match l with x :: tl when n > 0 -> aux (n - 1) (x :: acc) tl | _ -> acc
      in
      aux n [] l
    in
    let rec go :
        genv -> Contrib.t -> 'a rt -> int -> int -> string Lazy.t list ->
        Por.Sleepset.t -> unit =
     fun genv mine rt depth budget trace sleep ->
      if depth > !deepest then deepest := depth;
      if budget < !shallow_budget then shallow_budget := budget;
      tick_budget ();
      (match stats with Some s -> s.es_configs <- s.es_configs + 1 | None -> ());
      match normalize genv mine rt with
      | Norm_crash c ->
        record (Crashed (Crash.with_trace (trace_steps trace) c))
      | Norm (genv, mine, RRet v) -> (
        match view genv ~around:Contrib.empty ~mine with
        | Some st -> record (Finished (v, st))
        | None ->
          record
            (Crashed
               (Crash.make ~trace:(trace_steps trace) Crash.Ghost_algebra
                  "final view invalid")))
      | Norm (genv, mine, rt) ->
        if depth >= fuel then begin
          fuel_cut := true;
          record Diverged
        end
        else if not dedup then branch genv mine rt depth budget trace sleep
        else begin
          let key = config_key_sleep keyer genv mine rt sleep in
          let remaining = fuel - depth in
          match
            List.find_opt
              (fun e ->
                (remaining >= e.e_need_fuel && budget >= e.e_need_env)
                || (remaining = e.e_fuel && budget = e.e_budget))
              (Memo.find_all memo key)
          with
          | Some e ->
            (match stats with
            | Some s -> s.es_memo_hits <- s.es_memo_hits + 1
            | None -> ());
            List.iter record e.e_outs;
            (* Fold the pruned subtree's needs into the enclosing one's. *)
            if e.e_need_fuel = max_int then fuel_cut := true
            else if depth + e.e_need_fuel > !deepest then
              deepest := depth + e.e_need_fuel;
            if e.e_need_env = max_int then shallow_budget := 0
            else if budget - e.e_need_env < !shallow_budget then
              shallow_budget := budget - e.e_need_env
          | None ->
            (match stats with
            | Some s -> s.es_memo_misses <- s.es_memo_misses + 1
            | None -> ());
            let n0 = !count in
            let saved_deep = !deepest
            and saved_low = !shallow_budget
            and saved_cut = !fuel_cut in
            deepest := depth;
            shallow_budget := budget;
            fuel_cut := false;
            branch genv mine rt depth budget trace sleep;
            (* Reached only when the subtree was exhausted without hitting
               [max_outcomes] (otherwise [Stop] has propagated), so the
               segment just recorded is complete and safe to replay. *)
            let need_fuel = if !fuel_cut then max_int else !deepest - depth in
            let need_env =
              if !shallow_budget = 0 && interference then max_int
              else budget - !shallow_budget
            in
            let added = !count - n0 in
            if added <= memo_store_cap then
              Memo.add memo key
                {
                  e_fuel = remaining;
                  e_budget = budget;
                  e_need_fuel = need_fuel;
                  e_need_env = need_env;
                  e_outs = take_rev added !outcomes;
                };
            deepest := max saved_deep !deepest;
            shallow_budget := min saved_low !shallow_budget;
            fuel_cut := saved_cut || !fuel_cut
        end
    and branch genv mine rt depth budget trace sleep =
      let mvs = moves genv Contrib.empty mine rt in
      let envs =
        if interference && budget > 0 then env_moves_aux genv mine rt else []
      in
      if mvs = [] && envs = [] then
        (* Every thread is blocked on a disabled action.  If no
           environment future (budget notwithstanding) re-enables any
           move, this is a genuine deadlock — crash with the held-lock
           and blocked-move witness; otherwise the interference budget
           merely ran out: divergence, as before. *)
        if confirms_stuck genv mine rt then
          record
            (Crashed
               (Crash.make ~trace:(trace_steps trace) Crash.Deadlock
                  (deadlock_message genv mine rt)))
        else record Diverged
      else begin
        match por with
        | None ->
          List.iter
            (fun mv ->
              match mv.mv_next with
              | Error c ->
                record
                  (Crashed
                     (Crash.with_trace
                        (trace_steps (Lazy.from_val mv.mv_name :: trace))
                        c))
              | Ok (genv', mine', rt') -> (
                match envelope_violation genv genv' with
                | Some l ->
                  record
                    (Crashed
                       (Crash.make
                          ~trace:(trace_steps (Lazy.from_val mv.mv_name :: trace))
                          Crash.Envelope_violation
                          (Fmt.str
                             "envelope violation: %s mutates label %a outside \
                              the declared footprint"
                             mv.mv_name Label.pp l)))
                | None ->
                  go genv' mine' rt' (depth + 1) budget
                    (Lazy.from_val mv.mv_name :: trace)
                    Por.Sleepset.empty))
            mvs;
          List.iter
            (fun ev ->
              go ev.ev_genv mine rt (depth + 1) (budget - 1) (ev.ev_name :: trace)
                Por.Sleepset.empty)
            envs
        | Some p ->
          (* Sleep-set reduction.  A slept move's subtree is exactly a
             reordering (by declared-independent moves) of one already
             explored at an ancestor, so it is skipped whole.  After a
             move is explored it joins the sleep set for its later
             siblings; a child keeps only the entries independent of the
             move just taken ([Por.restrict]).  Membership, restriction
             and extension are all dense int/bitset operations against
             the oracle's precomputed adjacency — no string ids, no
             footprint recomputation. *)
          let sleeping = ref sleep in
          let skip () =
            Por.note_skip p;
            match stats with
            | Some s -> s.es_sleep_skips <- s.es_sleep_skips + 1
            | None -> ()
          in
          List.iter
            (fun mv ->
              match mv.mv_next with
              | Error c ->
                (* Crash moves don't advance the state and are recorded at
                   first sight; they never join the sleep set, so every
                   counterexample stays reachable with full multiplicity
                   of distinct schedules. *)
                record
                  (Crashed
                     (Crash.with_trace
                        (trace_steps (Lazy.from_val mv.mv_name :: trace))
                        c))
              | Ok (genv', mine', rt') -> (
                let id =
                  Por.intern_prog p ~path:mv.mv_path ~name:mv.mv_name
                    ~fp:mv.mv_fp
                in
                if Por.Sleepset.mem !sleeping id then skip ()
                else
                  match envelope_violation genv genv' with
                  | Some l ->
                    record
                      (Crashed
                         (Crash.make
                            ~trace:
                              (trace_steps (Lazy.from_val mv.mv_name :: trace))
                            Crash.Envelope_violation
                            (Fmt.str
                               "envelope violation: %s mutates label %a \
                                outside the declared footprint"
                               mv.mv_name Label.pp l)))
                  | None ->
                    (match
                       find_lie ~allowed:(Por.move_allowed p id)
                         ~touched:mv.mv_touched ~before:genv ~after:genv'
                         ~mine ~mine'
                     with
                    | Some l ->
                      raise
                        (Analyzer_lie_exn
                           (Crash.make
                              ~trace:
                                (trace_steps (Lazy.from_val mv.mv_name :: trace))
                              Crash.Analyzer_lie
                              (Fmt.str
                                 "analyzer lie: %s mutates label %a outside \
                                  its declared footprint %a — independence \
                                  claims involving it are void; demoting to \
                                  full exploration"
                                 mv.mv_name Label.pp l Footprint.pp mv.mv_fp)))
                    | None -> ());
                    go genv' mine' rt' (depth + 1) budget
                      (Lazy.from_val mv.mv_name :: trace)
                      (Por.restrict p !sleeping ~executed:id);
                    sleeping := Por.Sleepset.add !sleeping id))
            mvs;
          List.iter
            (fun ev ->
              let id =
                Por.intern_env p ~label:ev.ev_label ~trans:ev.ev_trans
                  ~index:ev.ev_index ~name:ev.ev_name
              in
              if Por.Sleepset.mem !sleeping id then skip ()
              else begin
                go ev.ev_genv mine rt (depth + 1) (budget - 1)
                  (ev.ev_name :: trace)
                  (Por.restrict p !sleeping ~executed:id);
                sleeping := Por.Sleepset.add !sleeping id
              end)
            envs
      end
    in
    let complete =
      match go genv0 mine0 (inject prog) 0 env_budget [] Por.Sleepset.empty with
      | () -> true
      | exception Stop -> false
    in
    (match stats with
    | Some s when dedup ->
      let ms = Memo.stats memo in
      if ms.Hashtbl.max_bucket_length > s.es_max_bucket then
        s.es_max_bucket <- ms.Hashtbl.max_bucket_length
    | Some _ | None -> ());
    (List.rev !outcomes, complete)
  in
  let mw0 = match stats with Some _ -> Gc.minor_words () | None -> 0. in
  let result =
    match por with
    | None -> run None
    | Some p -> (
      (* Restart-on-lie: outcomes recorded before the abort are discarded
         (the rerun regenerates them); journal records already appended
         are genuine discoveries and remain sound. *)
      try run (Some p)
      with Analyzer_lie_exn c ->
        Por.record_lie p c;
        run None)
  in
  (match stats with
  | Some s -> s.es_minor_words <- s.es_minor_words +. (Gc.minor_words () -. mw0)
  | None -> ());
  result

(* Run a single schedule chosen by [choose] (given the enabled move
   names, return the index to take); environment moves are not injected.
   Used for deterministic replays such as the Figure 2 staging. *)
let run_with_chooser ?(fuel = 1000)
    ~(choose : step:int -> string list -> int)
    ?(observe : genv -> Contrib.t -> string -> unit = fun _ _ _ -> ())
    (genv0 : genv) (mine0 : Contrib.t) (prog : 'a Prog.t) : 'a outcome =
  let rec go genv mine rt depth =
    match normalize genv mine rt with
    | Norm_crash c -> Crashed c
    | Norm (genv, mine, RRet v) -> (
      match view genv ~around:Contrib.empty ~mine with
      | Some st -> Finished (v, st)
      | None -> Crashed (Crash.make Crash.Ghost_algebra "final view invalid"))
    | Norm (genv, mine, rt) ->
      if depth >= fuel then Diverged
      else
        let mvs = moves genv Contrib.empty mine rt in
        if mvs = [] then Diverged
        else
          let names = List.map (fun mv -> mv.mv_name) mvs in
          let i = choose ~step:depth names in
          let mv = List.nth mvs (i mod List.length mvs) in
          (match mv.mv_next with
          | Error c -> Crashed c
          | Ok (genv', mine', rt') ->
            observe genv' mine' mv.mv_name;
            go genv' mine' rt' (depth + 1))
  in
  go genv0 mine0 (inject prog) 0

(* Run one pseudo-random schedule; with [interference], environment
   steps are inserted with probability ~1/4 at each point. *)
let run_random ?(fuel = 1000) ?(interference = false) ?budget ?journal ~seed
    (genv0 : genv) (mine0 : Contrib.t) (prog : 'a Prog.t) : 'a outcome =
  let rng = Random.State.make [| seed |] in
  (* A budget trip ends the run as [Diverged]: sampled runs are already
     incomplete by construction, and the caller reads the trip off the
     shared {!Budget.t}. *)
  let tripped () =
    (match journal with None -> () | Some w -> Journal.writer_tick w);
    match budget with
    | None -> false
    | Some b ->
      Budget.tick b;
      Budget.tripped b <> None
  in
  let rec go genv mine rt depth =
    if tripped () then Diverged
    else
      match normalize genv mine rt with
      | Norm_crash c -> Crashed c
      | Norm (genv, mine, RRet v) -> (
        match view genv ~around:Contrib.empty ~mine with
        | Some st -> Finished (v, st)
        | None -> Crashed (Crash.make Crash.Ghost_algebra "final view invalid"))
      | Norm (genv, mine, rt) ->
        if depth >= fuel then Diverged
        else begin
          let envs = if interference then env_moves genv mine rt else [] in
          if envs <> [] && Random.State.int rng 4 = 0 then
            let _, genv' = List.nth envs (Random.State.int rng (List.length envs)) in
            go genv' mine rt (depth + 1)
          else
            let mvs = moves genv Contrib.empty mine rt in
            if mvs = [] then Diverged
            else
              let mv = List.nth mvs (Random.State.int rng (List.length mvs)) in
              match mv.mv_next with
              | Error c -> Crashed c
              | Ok (genv', mine', rt') -> go genv' mine' rt' (depth + 1)
        end
  in
  let result = go genv0 mine0 (inject prog) 0 in
  (match (result, journal) with
  | Crashed c, Some w -> Journal.writer_crash w c
  | _ -> ());
  result

(* Helpers for setting up configurations from a subjective initial
   state: the state's selves seed the root thread's contribution, the
   others seed the external environment. *)
let genv_of_state ?(interfere = []) (w : World.t) (st : State.t) :
    genv * Contrib.t =
  let joints =
    List.fold_left
      (fun j l -> Label.Map.add l (State.joint l st) j)
      Label.Map.empty (State.labels st)
  in
  let jauxs =
    List.fold_left
      (fun c l -> Contrib.set l (State.jaux l st) c)
      Contrib.empty (State.labels st)
  in
  let ext_other =
    List.fold_left
      (fun c l -> Contrib.set l (State.other l st) c)
      Contrib.empty (State.labels st)
  in
  let mine =
    List.fold_left
      (fun c l -> Contrib.set l (State.self l st) c)
      Contrib.empty (State.labels st)
  in
  ( {
      joints;
      jauxs;
      ext_other;
      world = w;
      interfere = Label.Set.of_list interfere;
      ghash = ghash_of ~joints ~jauxs ~ext_other;
    },
    mine )
