(* Partial-order reduction oracle: the dynamic half of the static
   independence analysis (lib/analysis/independence.ml builds the
   relation; this module carries it into {!Sched.explore}).

   The oracle is an interner plus a precomputed relation.  Moves are
   identified by dense integers in two stages:

   - a {e class} is a distinct (name, footprint) pair for program moves,
     or a distinct (label, transition) pair for environment moves.  The
     independence decision only depends on the class — the syntactic
     rule (rule 1: {!Footprint.commutes}; environment transitions at
     distinct labels fall out of the same check, rule 3, because an env
     move's envelope is [touches l] by construction) reads the
     footprint, and the certificate hook (rule 2: same-label PCM
     contributions whose composed effect is order-insensitive by the
     PCM laws) reads the name.  When a class is interned its row of the
     flat byte-matrix [adj] is filled once, so {!Sched.explore} never
     calls [Footprint.commutes] or the certificate hook on the hot
     path: independence is one byte load.
   - a {e move id} refines the class with the move's position (Par-spine
     path for program moves, branch index for environment moves), so
     sleep sets distinguish the two arms of [par a a].  Move ids index
     the {!Sleepset} bitsets the scheduler threads through the DFS.

   Certificates are keyed by action *name* deliberately: rule 2
   certifies the action transformers themselves, so any two occurrences
   of the certified pair commute.  The hook is queried in both orders
   once per class pair at interning time (analyzers may emit ordered
   pairs), never per configuration.

   Soundness envelope: the scheduler cross-checks every executed move's
   mutations against its declared footprint.  A mutation outside it
   voids every independence claim involving the move, so the whole
   exploration is re-run with reduction off and the lie is recorded
   here as a located [Crash.t] — a wrong static claim can cost time,
   never a verdict. *)

(* Immutable bitsets of interned move ids.  32 bits per word keeps the
   shift arithmetic well inside OCaml's 63-bit ints; trailing zero
   words are trimmed, so equal sets are structurally equal arrays and
   hashing is an order-insensitive O(words) fold — the canonical-by-
   construction memo component that replaces the sorted string lists. *)
module Sleepset = struct
  type t = int array

  let empty : t = [||]
  let is_empty (s : t) = Array.length s = 0

  let mem (s : t) i =
    let w = i lsr 5 in
    w < Array.length s && s.(w) land (1 lsl (i land 31)) <> 0

  (* Canonical form: drop trailing zero words. *)
  let trim (s : int array) : t =
    let n = ref (Array.length s) in
    while !n > 0 && s.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length s then s else Array.sub s 0 !n

  let add (s : t) i =
    let w = i lsr 5 in
    let n = Array.length s in
    let s' = Array.make (max n (w + 1)) 0 in
    Array.blit s 0 s' 0 n;
    s'.(w) <- s'.(w) lor (1 lsl (i land 31));
    s'

  let equal (a : t) (b : t) =
    a == b
    ||
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (s : t) = Array.fold_left (fun acc w -> (acc * 33) lxor w) 5381 s

  let cardinal (s : t) =
    let pop w =
      let c = ref 0 and w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr c
      done;
      !c
    in
    Array.fold_left (fun acc w -> acc + pop w) 0 s

  let fold f (s : t) init =
    let acc = ref init in
    Array.iteri
      (fun wi w ->
        if w <> 0 then
          for b = 0 to 31 do
            if w land (1 lsl b) <> 0 then acc := f ((wi lsl 5) lor b) !acc
          done)
      s;
    !acc

  let of_list ids = List.fold_left add empty ids
  let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
end

type t = {
  extra : string -> string -> bool;
  (* classes: dense ints with arrays indexed by class id *)
  mutable cap : int; (* capacity of the arrays and of one [adj] row *)
  mutable n_classes : int;
  mutable adj : Bytes.t; (* cap*cap; adj.[i*cap + j] <> 0 iff independent *)
  mutable class_names : string array;
  mutable class_fps : Footprint.t array;
  mutable class_labels : (Label.Set.t * Label.t array) option array;
  (* [Footprint.labels] of [class_fps], cached as both the set (for the
     precise diff) and a flat array (the confinement pre-filter scans
     it — the sets have a handful of labels, so a linear scan beats the
     comparator-driven [Set.mem] tree walk), so the analyzer-lie check
     never rebuilds the allowed-label set on the hot path *)
  prog_classes : (string, (Footprint.t * int * int) list) Hashtbl.t;
  (* action name -> (footprint, Footprint.hash, class) candidates *)
  mutable trans_names : string array;
  (* transition names interned to small ints by physical identity (they
     are the literals in the concurroid definitions), so the env-move
     class lookup below packs an immediate int key instead of hashing a
     (label, string) tuple once per enabled env move *)
  mutable n_trans : int;
  env_classes : (int, int) Hashtbl.t;
  (* label * radix + transition id -> class; the envelope is [touches l]
     by construction, so the pair determines the class outright *)
  (* move ids: dense ints refining classes with position *)
  mutable n_moves : int;
  mutable move_class : int array;
  prog_moves : (int, int) Hashtbl.t; (* path * K + class -> move id *)
  env_moves : (int, int) Hashtbl.t; (* index * K + class -> move id *)
  (* accounting *)
  mutable skipped : int;
  mutable demotions : int;
  mutable lies : Crash.t list;
}

(* Move-table keys pack (position, class) into one immediate int so the
   hot-path lookups allocate nothing.  Class ids stay far below the
   radix: a case has a handful of distinct (name, footprint) pairs. *)
let key_radix = 1 lsl 20

let make ?(extra = fun _ _ -> false) () =
  {
    extra;
    cap = 0;
    n_classes = 0;
    adj = Bytes.empty;
    class_names = [||];
    class_fps = [||];
    class_labels = [||];
    prog_classes = Hashtbl.create 32;
    trans_names = [||];
    n_trans = 0;
    env_classes = Hashtbl.create 32;
    n_moves = 0;
    move_class = [||];
    prog_moves = Hashtbl.create 64;
    env_moves = Hashtbl.create 64;
    skipped = 0;
    demotions = 0;
    lies = [];
  }

let ensure_class_cap t n =
  if n > t.cap then begin
    let cap' = max 8 (max n (2 * t.cap)) in
    let adj' = Bytes.make (cap' * cap') '\000' in
    for i = 0 to t.n_classes - 1 do
      Bytes.blit t.adj (i * t.cap) adj' (i * cap') t.n_classes
    done;
    t.adj <- adj';
    let names' = Array.make cap' "" in
    Array.blit t.class_names 0 names' 0 t.n_classes;
    t.class_names <- names';
    let fps' = Array.make cap' Footprint.bot in
    Array.blit t.class_fps 0 fps' 0 t.n_classes;
    t.class_fps <- fps';
    let labels' = Array.make cap' None in
    Array.blit t.class_labels 0 labels' 0 t.n_classes;
    t.class_labels <- labels';
    t.cap <- cap'
  end

(* The independence decision, evaluated once per class pair when a
   class is interned.  Footprint commutation is symmetric; the
   certificate hook is queried in both orders so analyzers may emit
   ordered pairs.  Both orientations of the matrix get the same bit. *)
let fill_row t c ~name ~fp =
  for j = 0 to c do
    let ind =
      Footprint.commutes fp t.class_fps.(j)
      || t.extra name t.class_names.(j)
      || t.extra t.class_names.(j) name
    in
    if ind then begin
      Bytes.unsafe_set t.adj ((c * t.cap) + j) '\001';
      Bytes.unsafe_set t.adj ((j * t.cap) + c) '\001'
    end
  done

let new_class t ~name ~fp =
  let c = t.n_classes in
  if c + 1 >= key_radix then
    invalid_arg "Por: class space exhausted (key_radix)";
  ensure_class_cap t (c + 1);
  t.class_names.(c) <- name;
  t.class_fps.(c) <- fp;
  t.class_labels.(c) <-
    (match Footprint.labels fp with
    | None -> None
    | Some s -> Some (s, Array.of_list (Label.Set.elements s)));
  t.n_classes <- c + 1;
  (* after bumping n_classes so the row covers the diagonal *)
  fill_row t c ~name ~fp;
  c

let prog_class t ~name ~fp =
  let candidates = try Hashtbl.find t.prog_classes name with Not_found -> [] in
  match candidates with
  | (f0, _, c0) :: _ when f0 == fp ->
    (* An action's declared footprint is one shared value, so the class
       interned at its first sight is hit physically ever after — the
       once-per-enabled-move path must not hash the footprint. *)
    c0
  | _ ->
    let h = Footprint.hash fp in
    let rec find = function
      | [] ->
        let c = new_class t ~name ~fp in
        Hashtbl.replace t.prog_classes name ((fp, h, c) :: candidates);
        c
      | (f, fh, c) :: rest ->
        if f == fp || (fh = h && Footprint.equal f fp) then c else find rest
    in
    find candidates

(* Transition names to dense ints, by physical identity first: the
   names are the literals in the concurroid's transition list, shared
   across every state that re-enumerates its env moves.  The structural
   scan only runs for a name the physical scan has never seen. *)
let env_trans_radix = 256

let trans_id t (n : string) =
  let rec phys i =
    if i >= t.n_trans then structural 0
    else if t.trans_names.(i) == n then i
    else phys (i + 1)
  and structural i =
    if i >= t.n_trans then begin
      let k = t.n_trans in
      if k + 1 >= env_trans_radix then
        invalid_arg "Por: transition name space exhausted (env_trans_radix)";
      if k >= Array.length t.trans_names then begin
        let arr = Array.make (max 16 (2 * k)) "" in
        Array.blit t.trans_names 0 arr 0 k;
        t.trans_names <- arr
      end;
      t.trans_names.(k) <- n;
      t.n_trans <- k + 1;
      k
    end
    else if String.equal t.trans_names.(i) n then i
    else structural (i + 1)
  in
  phys 0

let env_class t ~label ~trans ~name =
  let key = (Label.hash label * env_trans_radix) + trans_id t trans in
  try Hashtbl.find t.env_classes key
  with Not_found ->
    let c = new_class t ~name:(Lazy.force name) ~fp:(Footprint.touches label) in
    Hashtbl.replace t.env_classes key c;
    c

let new_move t c =
  let m = t.n_moves in
  let n = Array.length t.move_class in
  if m >= n then begin
    let arr = Array.make (max 64 (2 * n)) 0 in
    Array.blit t.move_class 0 arr 0 n;
    t.move_class <- arr
  end;
  t.move_class.(m) <- c;
  t.n_moves <- m + 1;
  m

(* [Hashtbl.find] (not [find_opt]): these run once per enabled move
   per explored configuration, and the hit path must not allocate an
   option. *)
let intern_prog t ~path ~name ~fp =
  let c = prog_class t ~name ~fp in
  let key = (path * key_radix) + c in
  try Hashtbl.find t.prog_moves key
  with Not_found ->
    let m = new_move t c in
    Hashtbl.replace t.prog_moves key m;
    m

let intern_env t ~label ~trans ~index ~name =
  let c = env_class t ~label ~trans ~name in
  let key = (index * key_radix) + c in
  try Hashtbl.find t.env_moves key
  with Not_found ->
    let m = new_move t c in
    Hashtbl.replace t.env_moves key m;
    m

(* Declared independence of two interned moves: one byte load. *)
let independent t a b =
  Bytes.unsafe_get t.adj ((t.move_class.(a) * t.cap) + t.move_class.(b))
  <> '\000'

(* The child sleep set after executing [executed]: keep exactly the
   slept moves independent of it.  Words are scanned bit-by-bit only
   when non-zero; the input is returned unchanged (no allocation) when
   nothing is dropped. *)
let restrict t (s : Sleepset.t) ~executed =
  let n = Array.length s in
  if n = 0 then s
  else begin
    let row = t.move_class.(executed) * t.cap in
    let kept_word wi w =
      let kept = ref 0 in
      if w <> 0 then
        for b = 0 to 31 do
          if w land (1 lsl b) <> 0 then begin
            let m = (wi lsl 5) lor b in
            if Bytes.unsafe_get t.adj (row + t.move_class.(m)) <> '\000' then
              kept := !kept lor (1 lsl b)
          end
        done;
      !kept
    in
    (* Scan before copying: most executions drop nothing (independent
       moves stay asleep), and that case must return the input with no
       allocation — this runs once per executed move. *)
    let changed = ref false in
    let wi = ref 0 in
    while (not !changed) && !wi < n do
      if kept_word !wi s.(!wi) <> s.(!wi) then changed := true else incr wi
    done;
    if not !changed then s
    else begin
      let out = Array.make n 0 in
      Array.blit s 0 out 0 !wi;
      for i = !wi to n - 1 do
        out.(i) <- kept_word i s.(i)
      done;
      Sleepset.trim out
    end
  end

let n_classes t = t.n_classes
let n_moves t = t.n_moves
let move_name t m = t.class_names.(t.move_class.(m))
let move_fp t m = t.class_fps.(t.move_class.(m))
let move_allowed t m = t.class_labels.(t.move_class.(m))
let note_skip t = t.skipped <- t.skipped + 1

let record_lie t c =
  t.demotions <- t.demotions + 1;
  t.lies <- c :: t.lies

let skipped t = t.skipped
let demotions t = t.demotions
let lies t = List.rev t.lies

let pp ppf t =
  Fmt.pf ppf "por: %d subtree(s) skipped, %d demotion(s)" t.skipped t.demotions;
  List.iter (fun c -> Fmt.pf ppf "@,  %a" Crash.pp c) (lies t)
