(* Partial-order reduction oracle: the dynamic half of the static
   independence analysis (lib/analysis/independence.ml builds the
   relation; this module carries it into {!Sched.explore}).

   A [t] bundles

   - the syntactic rule — two moves whose {!Footprint}s commute are
     independent (rule 1 of the analyzer; environment transitions at
     distinct labels fall out of the same check, rule 3, because an env
     move's envelope is [touches l] by construction);
   - an [extra] certificate hook — name-keyed pairs the analyzer proved
     independent algebraically (rule 2: same-label PCM contributions
     whose composed effect is order-insensitive by the PCM laws).
     Certificates are keyed by action *name* deliberately: rule 2
     certifies the action transformers themselves, so any two
     occurrences of the certified pair commute;
   - the reduction's own accounting: subtrees skipped by the sleep set,
     demotions to full expansion, and the analyzer-lie diagnostics that
     forced them.

   Soundness envelope: the scheduler cross-checks every executed move's
   mutations against its declared footprint.  A mutation outside it
   voids every independence claim involving the move, so the whole
   exploration is re-run with reduction off and the lie is recorded
   here as a located [Crash.t] — a wrong static claim can cost time,
   never a verdict. *)

type entry = {
  en_id : string; (* stable move identity: spine path + action name *)
  en_name : string;
  en_fp : Footprint.t;
}

let entry ~id ~name ~fp = { en_id = id; en_name = name; en_fp = fp }
let entry_id e = e.en_id
let entry_name e = e.en_name
let entry_fp e = e.en_fp

type t = {
  extra : string -> string -> bool;
  mutable skipped : int;
  mutable demotions : int;
  mutable lies : Crash.t list;
}

let make ?(extra = fun _ _ -> false) () =
  { extra; skipped = 0; demotions = 0; lies = [] }

(* The independence decision.  Footprint commutation is symmetric; the
   certificate hook is queried both ways so analyzers may emit ordered
   pairs. *)
let independent t a b =
  Footprint.commutes a.en_fp b.en_fp
  || t.extra a.en_name b.en_name
  || t.extra b.en_name a.en_name

let note_skip t = t.skipped <- t.skipped + 1

let record_lie t c =
  t.demotions <- t.demotions + 1;
  t.lies <- c :: t.lies

let skipped t = t.skipped
let demotions t = t.demotions
let lies t = List.rev t.lies

let pp ppf t =
  Fmt.pf ppf "por: %d subtree(s) skipped, %d demotion(s)" t.skipped t.demotions;
  List.iter (fun c -> Fmt.pf ppf "@,  %a" Crash.pp c) (lies t)
