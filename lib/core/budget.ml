(* Resource budgets: wall-clock deadline, major-heap ceiling, explored-
   state ceiling.  Polled cooperatively — one [tick] per explored
   configuration — so exhaustion is observed within a bounded amount of
   extra work and nothing is ever killed from the outside.

   The counters are atomics because one armed budget is shared by every
   domain of a verification fan-out: the ceilings are global to the run,
   and a trip observed by one worker is immediately visible to all. *)

type limits = {
  l_deadline_s : float option;
  l_max_major_words : int option;
  l_max_states : int option;
  l_tick_hook : (unit -> unit) option;
  l_cancel : (unit -> bool) option;
}

let no_limits =
  {
    l_deadline_s = None;
    l_max_major_words = None;
    l_max_states = None;
    l_tick_hook = None;
    l_cancel = None;
  }

let limits ?deadline_s ?max_major_words ?max_states ?tick_hook ?cancel () =
  {
    l_deadline_s = deadline_s;
    l_max_major_words = max_major_words;
    l_max_states = max_states;
    l_tick_hook = tick_hook;
    l_cancel = cancel;
  }

let is_unlimited l =
  l.l_deadline_s = None && l.l_max_major_words = None
  && l.l_max_states = None
  && l.l_tick_hook = None
  && l.l_cancel = None

type reason = Deadline | Heap_ceiling | State_ceiling | Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Heap_ceiling -> "heap-ceiling"
  | State_ceiling -> "state-ceiling"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Fmt.string ppf (reason_name r)

type t = {
  lim : limits;
  started_at : float;
  deadline_at : float option; (* absolute, from deadline_s or the caller *)
  count : int Atomic.t; (* states charged *)
  trip : reason option Atomic.t; (* sticky *)
}

let arm ?deadline_at lim =
  let now = Unix.gettimeofday () in
  let deadline_at =
    match deadline_at with
    | Some _ as d -> d
    | None -> Option.map (fun s -> now +. s) lim.l_deadline_s
  in
  {
    lim;
    started_at = now;
    deadline_at;
    count = Atomic.make 0;
    trip = Atomic.make None;
  }

let deadline_at b = b.deadline_at

let trip b reason =
  (* first trip wins; losing the race to another reason is fine *)
  ignore (Atomic.compare_and_set b.trip None (Some reason))

let tripped b = Atomic.get b.trip

(* Sampling periods: the state ceiling is exact; the wall clock is
   sampled every [time_period] ticks and the (syscall-free but not free)
   GC stat every [heap_period], bounding both the polling overhead on
   the hot exploration loop and the overshoot past a tiny deadline. *)
let time_period = 16
let heap_period = 256

let major_words () = (Gc.quick_stat ()).Gc.heap_words

let tick b =
  let n = Atomic.fetch_and_add b.count 1 + 1 in
  (match b.lim.l_tick_hook with Some h -> h () | None -> ());
  if Atomic.get b.trip = None then begin
    (* Cancellation is a one-way signal from outside the run (a client
       hanging up on the service); probe it every tick so every rung of
       a ladder observes it within one configuration's worth of work. *)
    (match b.lim.l_cancel with
    | Some cancelled when cancelled () -> trip b Cancelled
    | _ -> ());
    (match b.lim.l_max_states with
    | Some cap when n >= cap -> trip b State_ceiling
    | _ -> ());
    (* the first tick also samples the clock, so an attempt armed past
       its (ladder-shared) deadline falls through immediately *)
    (match b.deadline_at with
    | Some at
      when (n = 1 || n mod time_period = 0) && Unix.gettimeofday () > at ->
      trip b Deadline
    | _ -> ());
    match b.lim.l_max_major_words with
    | Some cap when n mod heap_period = 0 && major_words () > cap ->
      trip b Heap_ceiling
    | _ -> ()
  end

let states b = Atomic.get b.count

type stats = {
  st_elapsed_s : float;
  st_states : int;
  st_major_words : int;
  st_tripped : string option;
}

let stats b =
  {
    st_elapsed_s = Unix.gettimeofday () -. b.started_at;
    st_states = Atomic.get b.count;
    st_major_words = major_words ();
    st_tripped = Option.map reason_name (Atomic.get b.trip);
  }

let pp_stats ppf s =
  Fmt.pf ppf "%.3fs, %d states" s.st_elapsed_s s.st_states;
  match s.st_tripped with
  | Some r -> Fmt.pf ppf ", tripped: %s" r
  | None -> ()

let crash b =
  Option.map
    (fun r ->
      Crash.make Crash.Budget_exhausted ("budget exhausted: " ^ reason_name r))
    (Atomic.get b.trip)
