(* Hoare specifications (paper, Section 2.2.3): a precondition over the
   initial subjective state and a postcondition relating the result, the
   initial state (standing in for the logical variables i, g1 of
   Figure 4) and the final subjective state.

   In Coq, specs are types and ascription is type checking; here they are
   executable predicates and ascription is discharged by the verifier
   (module {!Verify}) and the rule combinators (module {!Rules}). *)

type 'a t = {
  name : string;
  pre : State.t -> bool;
  post : 'a -> State.t -> State.t -> bool; (* result, initial, final *)
  fp : Footprint.t;
      (* Labels the pre/postcondition predicates depend on.  [Top]
         (the default) means unknown; a declared envelope lets {!Verify}
         prune env steps at labels neither the program nor its spec
         observes. *)
}

let make ~name ~pre ~post = { name; pre; post; fp = Footprint.top }

(* Declare the labels the pre/postcondition depend on. *)
let with_fp fp s = { s with fp }

let name s = s.name
let footprint s = s.fp
let pre s st = s.pre st
let post s r i f = s.post r i f

(* Weakening (the rule of consequence builds on these). *)

let implies p q states = List.for_all (fun st -> (not (p st)) || q st) states

(* Conjoin an extra pure postcondition. *)
let strengthen_post extra s =
  { s with post = (fun r i f -> s.post r i f && extra r i f) }

(* Precondition strengthening is always sound. *)
let strengthen_pre extra s = { s with pre = (fun st -> s.pre st && extra st) }

let pp ppf s = Fmt.pf ppf "spec %s" s.name
