(** A minimal fixed-size domain pool (OCaml 5 domains, no external
    dependencies) for fanning verification work out across cores. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains (the caller's domain included); items are claimed off a
    shared counter, so uneven items balance across domains.  Order is
    preserved.  If any application raises, one such exception is
    re-raised (with its backtrace) after all domains have joined.

    [f] must therefore be safe to run concurrently with itself.
    [jobs <= 1] degrades to a plain sequential map. *)
