(** A minimal fixed-size domain pool (OCaml 5 domains, no external
    dependencies) for fanning verification work out across cores, with
    per-item supervision: one crashing item is captured as a [result]
    instead of destroying its siblings' work. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

type error = {
  e_exn : exn;  (** the exception of the last failing attempt *)
  e_backtrace : Printexc.raw_backtrace;
  e_attempts : int;  (** attempts made (1 + retries) before quarantine *)
  e_backoff_s : float;
      (** total seconds slept in backoff before retries (0 when the
          item never backed off) *)
}

val pp_error : Format.formatter -> error -> unit

val backoff_delay : seed:int -> base:float -> int -> int -> float
(** [backoff_delay ~seed ~base i k]: the seconds slept before attempt
    [k] (2-based: the first retry) of item index [i] — [base] doubling
    per further attempt, scaled by a jitter factor in [0.5, 1.5) drawn
    deterministically from [(seed, i, k)].  Exposed so tests and
    operators can predict the exact schedule. *)

exception Never_ran
(** The placeholder exception of an item lost to a worker that died
    between claiming and storing (should be unreachable: every
    application is wrapped, but the slot is pre-filled so the loss
    surfaces as an explicit [Error] rather than an [Option.get] crash
    masking the real failure). *)

val map_result :
  jobs:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_seed:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** [map_result ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains (the caller's domain included); items are claimed off a
    shared counter, so uneven items balance across domains.  Order is
    preserved.

    Supervision is per item: an application that raises is retried up to
    [retries] more times (default 1 — retry once), then quarantined as
    [Error] with the exception, its backtrace, the attempt count and the
    total backoff slept.  Sibling items' results are unaffected.  [f]
    must therefore be safe to run concurrently with itself {e and} safe
    to re-run on the same item (exploration is pure, so both hold in
    this codebase).

    Before each retry the worker sleeps an exponential backoff with
    seeded jitter — [backoff_s] (default 0.01s, [0.] disables) doubling
    per retry, scaled by a factor in [0.5, 1.5) drawn deterministically
    from [(backoff_seed, item index, attempt)] — so items quarantined by
    the same transient (resource exhaustion) don't re-hit it in
    lockstep.

    Cooperative deadlines: items that should stop early poll a shared
    {!Budget.t} inside [f]; the pool itself never kills a domain.
    [jobs <= 1] degrades to a supervised sequential map. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** All-or-nothing wrapper over {!map_result} with [retries:0]: if any
    application raised, one such exception is re-raised (with its
    backtrace) after all items have been attempted and all domains have
    joined.  Use only where partial results are useless. *)
