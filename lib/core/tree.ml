(* Action trees (paper, Section 5.1): finite, partial approximations of
   the behaviour of FCSL commands, a structured version of Brookes's
   action traces.

   In the Coq development programs *denote* sets of action trees; here
   the denotation of a program in a configuration is its bounded
   unfolding — a tree whose internal nodes are the enabled atomic
   actions (and environment steps) and whose leaves are outcomes.  The
   adequacy check ([agrees_with_explore], exercised by the test suite)
   states that flattening the tree yields exactly the scheduler's
   outcome multiset. *)

type 'a t =
  | Leaf of 'a Sched.outcome
  | Node of (string * 'a t) list
      (* enabled moves: action name (or "env:..." label) and the
         subtree after taking it *)

(* Bounded denotation: unfold all schedules (and environment insertions,
   within [env_budget]) to depth [fuel]. *)
let rec denote ?(fuel = 16) ?(interference = false) ?(env_budget = 0)
    (genv : Sched.genv) (mine : Contrib.t) (prog : 'a Prog.t) : 'a t =
  denote_rt ~fuel ~interference ~env_budget genv mine (Sched.inject prog)

and denote_rt :
    type a.
    fuel:int ->
    interference:bool ->
    env_budget:int ->
    Sched.genv ->
    Contrib.t ->
    a Sched.rt ->
    a t =
 fun ~fuel ~interference ~env_budget genv mine rt ->
  match Sched.normalize genv mine rt with
  | Sched.Norm_crash c -> Leaf (Sched.Crashed c)
  | Sched.Norm (genv, mine, rt) -> (
    match Sched.as_ret rt with
    | Some v -> (
      match Sched.view genv ~around:Contrib.empty ~mine with
      | Some st -> Leaf (Sched.Finished (v, st))
      | None ->
        Leaf
          (Sched.Crashed
             (Crash.make Crash.Ghost_algebra "final view invalid")))
    | None ->
      if fuel = 0 then Leaf Sched.Diverged
      else
        let mvs = Sched.moves genv Contrib.empty mine rt in
        let envs =
          if interference && env_budget > 0 then
            Sched.env_moves genv mine rt
          else []
        in
        if mvs = [] && envs = [] then Leaf Sched.Diverged
        else
          Node
            (List.map
               (fun mv ->
                 match Sched.move_next mv with
                 | Error c -> (Sched.move_name mv, Leaf (Sched.Crashed c))
                 | Ok (genv', mine', rt') ->
                   ( Sched.move_name mv,
                     denote_rt ~fuel:(fuel - 1) ~interference ~env_budget
                       genv' mine' rt' ))
               mvs
            @ List.map
                (fun (n, genv') ->
                  ( n,
                    denote_rt ~fuel:(fuel - 1) ~interference
                      ~env_budget:(env_budget - 1) genv' mine rt ))
                envs))

(* Structure. *)

let rec size = function
  | Leaf _ -> 1
  | Node children ->
    List.fold_left (fun acc (_, t) -> acc + size t) 1 children

let rec depth = function
  | Leaf _ -> 0
  | Node children ->
    1 + List.fold_left (fun acc (_, t) -> max acc (depth t)) 0 children

(* All outcomes at the leaves, in traversal order. *)
let rec outcomes = function
  | Leaf o -> [ o ]
  | Node children -> List.concat_map (fun (_, t) -> outcomes t) children

(* All root-to-leaf action traces. *)
let rec traces = function
  | Leaf o -> [ ([], o) ]
  | Node children ->
    List.concat_map
      (fun (name, t) ->
        List.map (fun (path, o) -> (name :: path, o)) (traces t))
      children

(* Adequacy: the tree's leaf outcomes are exactly the scheduler's
   outcome list (same order: both traverse moves depth-first). *)
let agrees_with_explore ~result_equal tree (outs : 'a Sched.outcome list) =
  let leaf_outs = outcomes tree in
  List.length leaf_outs = List.length outs
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | Sched.Finished (r1, s1), Sched.Finished (r2, s2) ->
           result_equal r1 r2 && State.equal s1 s2
         | Sched.Crashed c1, Sched.Crashed c2 -> Crash.equal c1 c2
         | Sched.Diverged, Sched.Diverged -> true
         | _ -> false)
       leaf_outs outs

let rec pp pp_result ppf = function
  | Leaf o -> Fmt.pf ppf "%a" (Sched.pp_outcome pp_result) o
  | Node children ->
    Fmt.pf ppf "@[<v2>{%a}@]"
      Fmt.(
        list ~sep:cut (fun ppf (n, t) ->
            Fmt.pf ppf "%s:@ %a" n (pp pp_result) t))
      children
