(** Per-label PCM contributions of a thread.  A missing label means the
    unit contribution, so forked children start empty and fold back in
    on join (the subjective Par rule). *)

module Aux := Fcsl_pcm.Aux

type t = Aux.t Label.Map.t

val empty : t
val get : Label.t -> t -> Aux.t
val set : Label.t -> Aux.t -> t -> t
val remove : Label.t -> t -> t
val of_list : (Label.t * Aux.t) list -> t
val labels : t -> Label.t list

val iter : (Label.t -> Aux.t -> unit) -> t -> unit
(** Iterate the bindings without materialising the label list. *)

val join : t -> t -> t option
(** Pointwise PCM join; [None] on any per-label incompatibility. *)

val join_exn : t -> t -> t
val join_all : t list -> t option
val is_empty : t -> bool
val equal : t -> t -> bool

val canon : t -> t
(** Drop bindings to the structural [Aux.Unit], which {!get} cannot
    distinguish from missing ones. *)

val compare : t -> t -> int
(** Semantic total order on canonical forms, consistent with
    {!equal}. *)

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val pp : Format.formatter -> t -> unit
