(** Effect envelopes over labels: which concurroid labels a program,
    spec, or action may read, write, or CAS.  A join-semilattice with
    [top] ("may touch anything") — the element every opaque OCaml
    closure in the DSL maps to.  {!Verify} uses envelopes as a sound
    env-step pruning oracle, and {!Sched}'s envelope monitor keeps
    declared envelopes honest (see DESIGN.md, Section 10). *)

type access = Read | Write | Cas

val pp_access : Format.formatter -> access -> unit

type t

val top : t
(** Unknown effects: may touch every label in every way. *)

val bot : t
(** No effects (pure). *)

val is_top : t -> bool

val of_list : (Label.t * access list) list -> t
(** Build an envelope from per-label access lists; repeated labels
    join. *)

val reads : Label.t -> t
(** Reads the label. *)

val writes : Label.t -> t
(** Reads and writes the label. *)

val cases : Label.t -> t
(** Reads and CASes the label. *)

val touches : Label.t -> t
(** Reads, writes and CASes the label. *)

val join : t -> t -> t
val join_all : t list -> t

val labels : t -> Label.Set.t option
(** The touched label set; [None] for [top] ("all labels") — the shape
    the pruning oracle consumes. *)

val mem : t -> Label.t -> bool

val remove : t -> Label.t -> t
(** The envelope with a label scoped away — what remains visible outside
    a [hide] that installs it.  [top] stays [top]. *)

val commutes : t -> t -> bool
(** [commutes a b]: the envelopes cannot interfere — every label both
    touch is read-only on both sides, so steps confined to them reach
    the same configuration in either order.  [top] commutes only with
    the empty envelope.  Symmetric. *)

val subsumes : t -> t -> bool
(** [subsumes outer inner]: every access [inner] may perform, [outer]
    declares too. *)

val equal : t -> t -> bool

val hash : t -> int
(** Consistent with {!equal}; used by {!Por}'s move-class interner. *)

val accesses : t -> Label.t -> access list
(** The access kinds the envelope grants at a label (all three under
    [top], none for an untouched label). *)

val pp : Format.formatter -> t -> unit
