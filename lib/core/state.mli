(** Subjective states: finite maps from concurroid labels to slices.
    An entangled state (paper, Section 4.1) simply has several
    labels. *)

open Fcsl_heap
module Aux := Fcsl_pcm.Aux

type t = Slice.t Label.Map.t

val empty : t
val singleton : Label.t -> Slice.t -> t
val add : Label.t -> Slice.t -> t -> t
val remove : Label.t -> t -> t
val mem : Label.t -> t -> bool
val find : Label.t -> t -> Slice.t option
val find_exn : Label.t -> t -> Slice.t
val labels : t -> Label.t list
val bindings : t -> (Label.t * Slice.t) list

val self : Label.t -> t -> Aux.t
val joint : Label.t -> t -> Heap.t
val jaux : Label.t -> t -> Aux.t
val other : Label.t -> t -> Aux.t

val update : Label.t -> (Slice.t -> Slice.t) -> t -> t
val with_self : Label.t -> Aux.t -> t -> t
val with_joint : Label.t -> Heap.t -> t -> t
val with_jaux : Label.t -> Aux.t -> t -> t
val with_other : Label.t -> Aux.t -> t -> t

val valid : t -> bool
(** Every slice's [self • other] is defined. *)

val transpose : t -> t

val heap_part : Aux.t -> Heap.t option
(** The real-heap content of an auxiliary value (thread-private heaps
    live in the aux of the Priv concurroid); [None] on collisions. *)

val erase : t -> Heap.t option
(** Erasure (paper, Section 3.4): the physical heap of a state — all
    joint heaps plus all heap-sorted auxiliary parts.  [None] if pieces
    collide, which coherent states never exhibit. *)

val erase_exn : t -> Heap.t
val equal : t -> t -> bool

val compare : t -> t -> int
(** Semantic total order, consistent with {!equal}. *)

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val mix : salt:int -> Label.t -> int -> int
(** [mix ~salt l v]: avalanche-mix a per-label component hash into one
    word, for XOR-combined incremental state hashing ({!Sched}'s config
    keys patch single labels in and out without re-folding whole maps).
    Distinct salts keep components from cancelling. *)

val union : t -> t -> t option
(** Disjoint-label union, for entangled states. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
