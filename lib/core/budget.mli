(** Resource budgets for verification runs: a wall-clock deadline, a
    major-heap ceiling, and an explored-state ceiling, polled
    cooperatively by the scheduler (one {!tick} per explored
    configuration) and by the per-trial loops of the randomized checker.

    A budget never kills anything: exhaustion flips a sticky {!tripped}
    flag that the engine observes at its next poll, cuts the current
    attempt, and either reports what it has (when failures were already
    found — a found counterexample is sound regardless of the budget) or
    drops a tier on the degradation ladder (see [Verify.check_triple]
    and docs/ROBUSTNESS.md).

    Budgets are domain-safe: one armed budget is shared by every worker
    of a verification fan-out, so the ceilings are global to the run. *)

type limits = {
  l_deadline_s : float option;  (** wall-clock seconds from arming *)
  l_max_major_words : int option;  (** major-heap ceiling, in words *)
  l_max_states : int option;  (** explored-configuration ceiling *)
  l_tick_hook : (unit -> unit) option;
      (** run on (a sample of) ticks; the chaos harness's injection
          point — may raise, e.g. {!Crash.Injected} *)
  l_cancel : (unit -> bool) option;
      (** probed on every tick; returning [true] trips {!Cancelled}.
          The verification service's client-disconnect path: abandoning
          every waiter flips an atomic this closure reads, and the job
          winds down cooperatively within one tick *)
}

val no_limits : limits
(** No ceilings, no hook: an engine armed with this behaves identically
    to an unbudgeted one. *)

val limits :
  ?deadline_s:float ->
  ?max_major_words:int ->
  ?max_states:int ->
  ?tick_hook:(unit -> unit) ->
  ?cancel:(unit -> bool) ->
  unit ->
  limits

val is_unlimited : limits -> bool

type reason = Deadline | Heap_ceiling | State_ceiling | Cancelled

val reason_name : reason -> string
(** ["deadline"], ["heap-ceiling"], ["state-ceiling"], ["cancelled"]. *)

val pp_reason : Format.formatter -> reason -> unit

type t
(** An armed budget: the limits plus a start time and live counters. *)

val arm : ?deadline_at:float -> limits -> t
(** Arm the limits now.  [deadline_at] (absolute [Unix.gettimeofday]
    time) overrides the deadline computed from [l_deadline_s] — the
    degradation ladder uses it to share one wall clock across tiers
    while state/heap ceilings restart per tier. *)

val deadline_at : t -> float option
(** The absolute deadline, if any. *)

val tick : t -> unit
(** Charge one explored state and poll the ceilings (the wall clock and
    the heap are sampled every few ticks; the state ceiling on every
    tick).  Sets {!tripped} on exhaustion — never raises, except through
    a user-supplied [l_tick_hook]. *)

val tripped : t -> reason option
(** Sticky: the first ceiling observed exhausted, if any. *)

val states : t -> int

type stats = {
  st_elapsed_s : float;  (** wall-clock since arming *)
  st_states : int;  (** configurations charged *)
  st_major_words : int;  (** major-heap words at snapshot *)
  st_tripped : string option;  (** {!reason_name} of the trip, if any *)
}

val stats : t -> stats
(** Snapshot the consumed budget now. *)

val pp_stats : Format.formatter -> stats -> unit

val crash : t -> Crash.t option
(** A {!Crash.Budget_exhausted} witness when the budget has tripped. *)
