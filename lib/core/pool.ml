(* A minimal fixed-size domain pool (OCaml 5 [Domain.spawn], no external
   dependencies) used to fan verification work out across cores: initial
   states in [Verify.check_triple], Table 1 rows in the report layer.

   Work items are claimed off a shared atomic counter, so long and short
   items balance across domains without any up-front partitioning. *)

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let map ~jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let errors = Atomic.make [] in
    let rec push_error e bt =
      let cur = Atomic.get errors in
      if not (Atomic.compare_and_set errors cur ((e, bt) :: cur)) then
        push_error e bt
    in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f input.(i) with
        | v -> results.(i) <- Some v
        | exception e -> push_error e (Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get errors with
    | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    | [] -> ());
    Array.to_list (Array.map Option.get results)
  end
