(* A minimal fixed-size domain pool (OCaml 5 [Domain.spawn], no external
   dependencies) used to fan verification work out across cores: initial
   states in [Verify.check_triple], Table 1 rows in the report layer.

   Work items are claimed off a shared atomic counter, so long and short
   items balance across domains without any up-front partitioning.

   Supervision is per item: each application is wrapped, failures are
   retried once (by default) and then quarantined as a per-item [Error],
   so one crashing item no longer destroys its siblings' results and the
   caller decides whether partial results are usable ([map_result]) or
   not ([map]). *)

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

type error = {
  e_exn : exn;
  e_backtrace : Printexc.raw_backtrace;
  e_attempts : int;
  e_backoff_s : float;
}

let pp_error ppf e =
  Fmt.pf ppf "%s (after %d attempt%s%a)"
    (Printexc.to_string e.e_exn)
    e.e_attempts
    (if e.e_attempts = 1 then "" else "s")
    (fun ppf s -> if s > 0. then Fmt.pf ppf ", %.0fms backoff" (s *. 1000.))
    e.e_backoff_s

exception Never_ran

(* Pre-filled into every result slot: a worker dying between claim and
   store (which no code path should allow — applications are wrapped)
   leaves an explicit [Error Never_ran] instead of an empty option whose
   [Option.get] would mask the real failure. *)
let never_ran =
  Error
    {
      e_exn = Never_ran;
      e_backtrace = Printexc.get_callstack 0;
      e_attempts = 0;
      e_backoff_s = 0.;
    }

(* Delay before retry [k] (the k-th attempt, k >= 2) of item [i]:
   exponential in the retry number, with seeded jitter so a batch of
   items quarantined by the same transient (an OOM spike, an fd-limit
   brush) doesn't re-hit it in lockstep.  Deterministic per
   (seed, item, attempt), like every other randomness in the engine. *)
let backoff_delay ~seed ~base i k =
  let st = Random.State.make [| seed; i; k |] in
  base *. (2. ** float_of_int (k - 2)) *. (0.5 +. Random.State.float st 1.0)

let map_result ~jobs ?(retries = 1) ?(backoff_s = 0.01) ?(backoff_seed = 0)
    (f : 'a -> 'b) (xs : 'a list) : ('b, error) result list =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let jobs = max 1 (min jobs n) in
    let input = Array.of_list xs in
    let results = Array.make n never_ran in
    let run_item i =
      let rec attempt k slept =
        match f input.(i) with
        | v -> Ok v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if k <= retries then begin
            let d =
              if backoff_s > 0. then
                backoff_delay ~seed:backoff_seed ~base:backoff_s i (k + 1)
              else 0.
            in
            if d > 0. then Unix.sleepf d;
            attempt (k + 1) (slept +. d)
          end
          else Error { e_exn = e; e_backtrace = bt; e_attempts = k;
                       e_backoff_s = slept }
      in
      results.(i) <- attempt 1 0.
    in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        run_item i
      done
    else begin
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_item i;
          worker ()
        end
      in
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      (* A domain whose worker raised outside [run_item] (it cannot, but
         belt and braces) re-raises at join; swallow so the per-item
         [Never_ran] markers report the loss instead. *)
      List.iter (fun d -> try Domain.join d with _ -> ()) domains
    end;
    Array.to_list results
  end

let map ~jobs f xs =
  List.map
    (function
      | Ok v -> v
      | Error e -> Printexc.raise_with_backtrace e.e_exn e.e_backtrace)
    (map_result ~jobs ~retries:0 f xs)
