(** Hoare specifications (paper, Section 2.2.3): an executable
    precondition over the initial subjective state and a postcondition
    relating result, initial state (standing in for logical variables)
    and final state.  In Coq specs are types; here ascription is
    discharged by {!Verify} and {!Rules}. *)

type 'a t

val make :
  name:string ->
  pre:(State.t -> bool) ->
  post:('a -> State.t -> State.t -> bool) ->
  'a t
(** [post r i f]: result, initial view, final view.  The footprint
    defaults to [Footprint.top] (unknown); declare one with
    {!with_fp}. *)

val with_fp : Footprint.t -> 'a t -> 'a t
(** Declare which labels the pre/postcondition predicates depend on; a
    declared envelope lets {!Verify} prune env steps at labels neither
    the program nor its spec observes. *)

val name : 'a t -> string

val footprint : 'a t -> Footprint.t
(** The declared predicate-dependency envelope. *)

val pre : 'a t -> State.t -> bool
val post : 'a t -> 'a -> State.t -> State.t -> bool

val implies :
  (State.t -> bool) -> (State.t -> bool) -> State.t list -> bool
(** Entailment over an enumerated universe. *)

val strengthen_post : ('a -> State.t -> State.t -> bool) -> 'a t -> 'a t
val strengthen_pre : (State.t -> bool) -> 'a t -> 'a t
val pp : Format.formatter -> 'a t -> unit
