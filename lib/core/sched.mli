(** Operational semantics of the DSL: a small-step interleaving
    scheduler over configurations, with optional environment
    interference.

    A thread's subjective view of label [l] is
    [self = its own contribution], [joint = the shared heap],
    [other = external contribution • sibling contributions] — FCSL's
    subjective split, realized by per-thread PCM contributions that fork
    and rejoin at [par].

    Administrative steps (monad laws, recursion unfolding, hide
    installation, joins) are performed eagerly — they commute with other
    threads' steps — so scheduling choice points are exactly the atomic
    actions and environment-interference insertions. *)

open Fcsl_heap

type genv = {
  joints : Heap.t Label.Map.t;
  jauxs : Contrib.t;  (** per-label joint auxiliary state *)
  ext_other : Contrib.t;  (** the external environment's contribution *)
  world : World.t;  (** ambient + dynamically installed concurroids *)
  interfere : Label.Set.t;  (** labels open to environment interference *)
  ghash : int;
      (** incremental fingerprint of [joints]/[jauxs]/[ext_other],
          XOR-patched per touched label as the scheduler steps; config
          keys read it instead of re-folding the maps.  Maintained by
          {!Sched} — always equal to {!recompute_ghash}. *)
}

val recompute_ghash : genv -> int
(** The shared-state fingerprint recomputed from scratch — the value
    [genv.ghash] must equal at every reachable configuration (checked
    by the representation test suite). *)

type _ rt
(** Runtime thread trees. *)

val inject : 'a Prog.t -> 'a rt

val as_ret : 'a rt -> 'a option
(** The result, if the whole tree has terminated. *)

val view : genv -> around:Contrib.t -> mine:Contrib.t -> State.t option
(** The subjective state of a thread with contribution [mine] among
    sibling contributions [around]. *)

(** {1 Single-step interface}

    Exposed so that {!Tree} can build denotational unfoldings from the
    same step relation the scheduler uses. *)

type 'a norm = Norm of genv * Contrib.t * 'a rt | Norm_crash of Crash.t

val normalize : genv -> Contrib.t -> 'a rt -> 'a norm
(** Eager administrative reduction (monad laws, joins, hide
    installation); the result's leaves are all atomic actions, or the
    whole tree is a return. *)

type 'a move

val move_name : 'a move -> string
val move_next : 'a move -> (genv * Contrib.t * 'a rt, Crash.t) result

val moves : genv -> Contrib.t -> Contrib.t -> 'a rt -> 'a move list
(** The enabled atomic-action moves of every leaf (args: genv, sibling
    contributions, own contribution, tree). *)

val env_moves : genv -> Contrib.t -> 'a rt -> (string * genv) list
(** The enabled environment-interference steps. *)

(** {1 Configuration fingerprinting}

    Canonical, hashable keys for scheduler configurations, the backbone
    of memoized exploration.  State-like parts (joint heaps, auxiliary
    contributions) are compared semantically; thread trees embed OCaml
    closures, so their atoms are identified by a per-exploration
    identity registry — conservative (a missed identification only
    forfeits pruning), and exact on the diamonds of commuting steps,
    which share their unreduced subtrees physically. *)

type keyer
(** An atom-identity registry.  Keys from different keyers are not
    comparable. *)

val new_keyer : unit -> keyer

type config_key

val config_key : keyer -> genv -> Contrib.t -> 'a rt -> config_key
(** The key of the configuration [(genv, mine, rt)]. *)

val config_key_sleep :
  keyer -> genv -> Contrib.t -> 'a rt -> Por.Sleepset.t -> config_key
(** {!config_key} refined by a POR sleep set: the memo key the
    POR-armed exploration uses.  Sleep sets are canonical bitsets, so
    two permutations of the same slept moves produce equal keys. *)

val config_key_equal : config_key -> config_key -> bool
val config_key_hash : config_key -> int

val fingerprint : keyer -> genv -> Contrib.t -> 'a rt -> int
(** [config_key_hash] of {!config_key}: a cheap configuration digest. *)

type 'a outcome =
  | Finished of 'a * State.t
      (** result and the root thread's final subjective view *)
  | Crashed of Crash.t
      (** an enabled action was unsafe, or ghost algebra failed: a
          verification failure with its witness (kind, diagnosis and
          discovering schedule) *)
  | Diverged
      (** fuel exhausted, or all threads blocked while environment
          interference can still unblock one (a budget artifact, not a
          deadlock) *)

val pp_outcome :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit

type explore_stats = {
  mutable es_configs : int;
      (** configurations entered (the same cadence as {!Budget.tick}) —
          the "explored states" the reports and benchmarks surface *)
  mutable es_memo_hits : int;  (** memoized subtrees replayed *)
  mutable es_memo_misses : int;  (** configurations explored afresh *)
  mutable es_sleep_skips : int;  (** subtrees the POR sleep set pruned *)
  mutable es_max_bucket : int;
      (** worst memo hash-bucket collision depth observed *)
  mutable es_minor_words : float;
      (** [Gc.minor_words] allocated during exploration *)
}
(** Exploration accounting, so the effect of dedup/pruning/POR — and
    the cost of the hot path itself — is measured rather than
    guessed. *)

val new_stats : unit -> explore_stats

val explore :
  ?fuel:int ->
  ?max_outcomes:int ->
  ?interference:bool ->
  ?env_budget:int ->
  ?dedup:bool ->
  ?monitor_envelope:Label.Set.t ->
  ?budget:Budget.t ->
  ?journal:Journal.writer ->
  ?por:Por.t ->
  ?stats:explore_stats ->
  genv ->
  Contrib.t ->
  'a Prog.t ->
  'a outcome list * bool
(** Depth-first exploration of all interleavings and (bounded by
    [env_budget]) all environment-step insertions, up to [fuel] steps
    per path.  Returns the outcomes and a completeness flag ([false]
    when [max_outcomes] was hit).

    With [dedup] (default [false]), a configuration already exhausted at
    no less remaining fuel and environment budget is pruned by replaying
    its recorded outcomes — collapsing the diamonds of commuting steps
    while preserving the failure set and the completeness verdict; crash
    messages keep the schedule of their first discovery.

    With [monitor_envelope], every program move that mutates shared
    state (joint heap or joint auxiliary) at an initial-world label
    outside the given set is recorded as a crash — the dynamic
    write-confinement check backing footprint-based env-step pruning.

    With [budget], one {!Budget.tick} is charged per explored
    configuration; a trip aborts the search through the same path as a
    [max_outcomes] cut (so [complete] is [false] and no truncated memo
    entry is ever stored).  The caller reads the trip reason off the
    shared {!Budget.t}.

    With [journal], one {!Journal.writer_tick} is charged per explored
    configuration (appending periodic {!Journal.Frontier} records) and
    every crash outcome is journaled at discovery as a
    {!Journal.Counterexample} — durable evidence that survives a
    SIGKILL mid-search.

    With [por], sleep-set partial-order reduction skips subtrees that
    are reorderings (by moves the {!Por} oracle declares independent) of
    subtrees already explored.  Every reachable configuration — hence
    every finished state, crash and divergence — remains reachable; only
    redundant re-entries are cut, so verdicts are preserved while
    explored-state counts drop.  The reduction is self-checking: a move
    that mutates a label outside its declared footprint while POR is
    active voids the static analysis, so the exploration restarts with
    reduction off and the lie is recorded in the oracle as a located
    {!Crash.Analyzer_lie} diagnostic.  Memo keys incorporate the sleep
    set, so [dedup] and [por] compose soundly.

    With [stats], explored-configuration counts are accumulated into the
    given record (cumulative across a demotion's re-run).

    Stuck-state detection is always on: a configuration where every
    program move is disabled is checked against the bounded closure of
    environment transitions (ignoring the remaining interference
    budget, whose exhaustion must never manufacture a deadlock).  When
    no reachable environment state re-enables any program move, the
    path records a {!Crash.Deadlock} crash whose message carries the
    held-lock set (per {!Concurroid.lock_info}) and the blocked moves;
    otherwise it remains [Diverged] exactly as before. *)

val run_with_chooser :
  ?fuel:int ->
  choose:(step:int -> string list -> int) ->
  ?observe:(genv -> Contrib.t -> string -> unit) ->
  genv ->
  Contrib.t ->
  'a Prog.t ->
  'a outcome
(** Run one schedule selected by [choose] over the enabled move names;
    [observe] sees each configuration after each step (used by the
    Figure 2 staging replay).  No environment moves are injected. *)

val run_random :
  ?fuel:int ->
  ?interference:bool ->
  ?budget:Budget.t ->
  ?journal:Journal.writer ->
  seed:int ->
  genv ->
  Contrib.t ->
  'a Prog.t ->
  'a outcome
(** Run one pseudo-random schedule; with [interference], environment
    steps are inserted with probability ~1/4 at each point.  A [budget]
    is ticked once per step; a trip ends the run as [Diverged] (sampled
    runs are incomplete by construction — the caller reads the trip off
    the shared {!Budget.t}). *)

val genv_of_state :
  ?interfere:Label.t list -> World.t -> State.t -> genv * Contrib.t
(** Set up a configuration from a subjective initial state: its selves
    seed the root thread's contribution, its others the external
    environment. *)
