(* Effect envelopes over labels: which concurroid labels a program (or
   spec, or action) may read, write, or CAS.  The analogue, one level up,
   of {!Assrt}'s per-component assertion footprints — where an assertion
   footprint says which components a *predicate* reads, an effect
   envelope says which labels a *program* touches.

   Envelopes form a join-semilattice with [Top] ("may touch anything"):
   the element every opaque OCaml closure in the DSL maps to.  Anything
   statically visible (action leaves, par/hide spines, declared
   annotations) stays below [Top], and [Verify] uses the resulting label
   set as a sound env-step pruning oracle: interference at a label
   neither the program nor its spec touches cannot change any verdict,
   so those env transitions need not be explored (see DESIGN.md,
   Section 10). *)

type access = Read | Write | Cas

let pp_access ppf = function
  | Read -> Fmt.string ppf "r"
  | Write -> Fmt.string ppf "w"
  | Cas -> Fmt.string ppf "c"

(* Per-label access summary as three flags, kept abstract behind
   constructors so the representation can grow (e.g. heap regions). *)
type accs = { a_read : bool; a_write : bool; a_cas : bool }

let accs_of_list l =
  {
    a_read = List.mem Read l;
    a_write = List.mem Write l;
    a_cas = List.mem Cas l;
  }

let accs_join a b =
  {
    a_read = a.a_read || b.a_read;
    a_write = a.a_write || b.a_write;
    a_cas = a.a_cas || b.a_cas;
  }

let accs_leq a b =
  ((not a.a_read) || b.a_read)
  && ((not a.a_write) || b.a_write)
  && ((not a.a_cas) || b.a_cas)

let accs_list a =
  (if a.a_read then [ Read ] else [])
  @ (if a.a_write then [ Write ] else [])
  @ if a.a_cas then [ Cas ] else []

type t = Top | Fp of accs Label.Map.t

let top = Top
let bot = Fp Label.Map.empty
let is_top = function Top -> true | Fp _ -> false

let accs_empty a = not (a.a_read || a.a_write || a.a_cas)

(* Canonical form: no all-false bindings.  An empty access list would
   otherwise create a phantom label — present in [labels]/[mem] yet
   granting nothing — and make structurally different builds of the same
   envelope compare unequal. *)
let of_list bindings =
  Fp
    (List.fold_left
       (fun m (l, accesses) ->
         let prev =
           Option.value (Label.Map.find_opt l m)
             ~default:{ a_read = false; a_write = false; a_cas = false }
         in
         let a = accs_join prev (accs_of_list accesses) in
         if accs_empty a then m else Label.Map.add l a m)
       Label.Map.empty bindings)

let reads l = of_list [ (l, [ Read ]) ]
let writes l = of_list [ (l, [ Read; Write ]) ]
let cases l = of_list [ (l, [ Read; Cas ]) ]
let touches l = of_list [ (l, [ Read; Write; Cas ]) ]

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Fp ma, Fp mb ->
    Fp
      (Label.Map.union (fun _ x y -> Some (accs_join x y)) ma mb)

let join_all = List.fold_left join bot

(* [labels fp] is [None] for [Top] ("all labels") and the touched label
   set otherwise — the shape the pruning oracle consumes. *)
let labels = function
  | Top -> None
  | Fp m -> Some (Label.Set.of_list (Label.Map.keys m))

let mem fp l =
  match fp with Top -> true | Fp m -> Label.Map.mem l m

(* [remove fp l]: the envelope with label [l] scoped away — what remains
   visible outside a [hide] that installs [l]. *)
let remove fp l =
  match fp with Top -> Top | Fp m -> Fp (Label.Map.remove l m)

(* [commutes a b]: the two envelopes cannot interfere — at every label
   both touch, both are read-only.  The syntactic independence check of
   partial-order reduction: two steps whose envelopes commute reach the
   same configuration in either order (reads see identical state;
   writes/CASes land on labels the other never reads).  [Top] commutes
   only with the empty envelope. *)
let accs_ro a = not (a.a_write || a.a_cas)

let commutes a b =
  match (a, b) with
  | Top, Top -> false
  | Top, Fp m | Fp m, Top -> Label.Map.is_empty m
  | Fp ma, Fp mb ->
    Label.Map.for_all
      (fun l aa ->
        match Label.Map.find_opt l mb with
        | None -> true
        | Some ab -> accs_ro aa && accs_ro ab)
      ma

(* [subsumes outer inner]: every access [inner] may perform, [outer]
   declares too. *)
let subsumes outer inner =
  match (outer, inner) with
  | Top, _ -> true
  | Fp _, Top -> false
  | Fp mo, Fp mi ->
    Label.Map.for_all
      (fun l ai ->
        match Label.Map.find_opt l mo with
        | Some ao -> accs_leq ai ao
        | None -> false)
      mi

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Fp ma, Fp mb -> Label.Map.equal (fun x y -> accs_leq x y && accs_leq y x) ma mb
  | (Top | Fp _), _ -> false

(* Canonical: the map never stores all-false bindings (see [of_list];
   [join]/[remove] preserve the invariant), so folding in ascending
   label order is consistent with {!equal}. *)
let accs_mask a =
  (if a.a_read then 1 else 0)
  lor (if a.a_write then 2 else 0)
  lor if a.a_cas then 4 else 0

let hash = function
  | Top -> 0x7f0f0f0f
  | Fp m ->
    Label.Map.fold
      (fun l a acc -> (((acc * 33) lxor Label.hash l) * 33) lxor accs_mask a)
      m 5381

let accesses fp l =
  match fp with
  | Top -> [ Read; Write; Cas ]
  | Fp m -> (
    match Label.Map.find_opt l m with
    | Some a -> accs_list a
    | None -> [])

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Fp m ->
    if Label.Map.is_empty m then Fmt.string ppf "∅"
    else
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (l, a) ->
              Fmt.pf ppf "%a:%a" Label.pp l
                (list ~sep:nop pp_access) (accs_list a)))
        (Label.Map.bindings m)
