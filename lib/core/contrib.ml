(* Per-label PCM contributions of a thread.  A missing label means the
   unit contribution, so forked children start empty and fold back in on
   join (the subjective Par rule, Section 2.2.1). *)

module Aux = Fcsl_pcm.Aux

type t = Aux.t Label.Map.t

let empty : t = Label.Map.empty
let get l (c : t) = Option.value (Label.Map.find_opt l c) ~default:Aux.Unit
let set l a (c : t) = Label.Map.add l a c
let remove l (c : t) = Label.Map.remove l c
let of_list bindings : t = Label.Map.of_seq (List.to_seq bindings)

let labels (c : t) = Label.Map.keys c
let iter f (c : t) = Label.Map.iter f c

(* PCM join, pointwise; [None] on any per-label incompatibility. *)
let join (c1 : t) (c2 : t) : t option =
  Label.Map.fold
    (fun l a acc ->
      Option.bind acc (fun c ->
          Option.map (fun joined -> Label.Map.add l joined c)
            (Aux.join (get l c) a)))
    c2 (Some c1)

let join_exn c1 c2 =
  match join c1 c2 with
  | Some c -> c
  | None -> invalid_arg "Contrib.join_exn: incompatible contributions"

let join_all cs = List.fold_left (fun acc c -> Option.bind acc (join c)) (Some empty) cs

let is_empty (c : t) = Label.Map.for_all (fun _ a -> Aux.is_unit a) c

let equal (c1 : t) (c2 : t) =
  let labels =
    Label.Set.union
      (Label.Set.of_list (Label.Map.keys c1))
      (Label.Set.of_list (Label.Map.keys c2))
  in
  Label.Set.for_all (fun l -> Aux.equal (get l c1) (get l c2)) labels

(* A binding to the structural [Aux.Unit] is indistinguishable from a
   missing one (see {!get}), so comparisons and hashing go through this
   canonical form.  Sort-specific units ([Nat 0], empty sets, ...) are
   NOT dropped: [equal] distinguishes them from [Unit] too. *)
let canon (c : t) =
  Label.Map.filter (fun _ a -> match a with Aux.Unit -> false | _ -> true) c

let compare (c1 : t) (c2 : t) =
  Label.Map.compare Aux.compare (canon c1) (canon c2)

(* Canonical: skips structural-Unit bindings and folds in ascending
   label order, consistent with {!equal}. *)
let hash (c : t) =
  Label.Map.fold
    (fun l a acc ->
      match a with
      | Aux.Unit -> acc
      | _ -> (((acc * 33) lxor Label.hash l) * 33) lxor Aux.hash a)
    c 5381

let pp ppf (c : t) = Label.Map.pp Aux.pp ppf c
