(** Concurroids (paper, Sections 2.2.1 and 3.3): labelled
    state-transition systems over subjective slices, with a coherence
    predicate and enumerable transitions.

    The FCSL metatheory laws are executable checks here, run over a
    finite enumeration of coherent slices that each instance supplies:
    transitions preserve coherence, fix the [other] component, preserve
    the real footprint (unless marked external — the paper's
    heap-exchanging communication channels), and the state space is
    fork-join closed. *)

type transition = {
  tr_name : string;
  tr_external : bool;
      (** External (communication) transitions exchange heap ownership
          with other concurroids and are exempt from footprint
          preservation. *)
  tr_step : Slice.t -> Slice.t list;
      (** All successor slices via this transition; idle is implicit. *)
}

val internal : name:string -> (Slice.t -> Slice.t list) -> transition
val external_ : name:string -> (Slice.t -> Slice.t list) -> transition

type t

(** A lock-shaped concurroid's self-declaration: how to observe that
    the viewing thread holds it, and which action-name prefixes acquire
    and release it.  Consumed by the static deadlock analysis (lock
    census, acquire/release classification) and by the scheduler's
    stuck-state witness; kept honest by the registry-wide
    static/dynamic differential. *)
type lock_info = {
  li_held : Slice.t -> bool;
  li_acquires : string list;
  li_releases : string list;
}

val make :
  ?justifies:(Slice.t -> Slice.t -> bool) ->
  ?lock:lock_info ->
  label:Label.t ->
  name:string ->
  coh:(Slice.t -> bool) ->
  transitions:transition list ->
  enum:(unit -> Slice.t list) ->
  unit ->
  t
(** [justifies] is an optional semantic transition relation for
    concurroids whose transitions quantify over unenumerable data (e.g.
    Priv lets a thread rewrite its own cells with arbitrary values).
    [lock] marks the concurroid as lock-shaped (see {!lock_info}). *)

val lock_info : t -> lock_info option
(** The lock self-declaration, for lock-shaped concurroids. *)

val held : t -> Slice.t -> bool
(** [held c s]: the viewing thread holds lock [c] in slice [s] ([false]
    for concurroids without a {!lock_info}). *)

val label : t -> Label.t
val name : t -> string
val coh : t -> Slice.t -> bool
val transitions : t -> transition list
val transition_names : t -> string list

val enum : t -> Slice.t list
(** The instance's law/stability-checking universe. *)

val justified : t -> Slice.t -> Slice.t -> bool

val steps : t -> Slice.t -> (string * Slice.t) list
(** All slices reachable in one non-idle self step. *)

val env_steps : t -> Slice.t -> (string * Slice.t) list
(** The paper's [env_steps], one step: transitions taken from the
    transposed viewpoint — [self] fixed, [joint]/[other] may change. *)

val env_steps_closure : ?fuel:int -> t -> Slice.t -> Slice.t list
(** Bounded reflexive-transitive closure of environment stepping. *)

(** {1 Law checking} *)

type violation = { law : string; witness : string }

val pp_violation : Format.formatter -> violation -> unit
val check_laws : ?max_violations:int -> t -> violation list
val well_formed : t -> bool
val pp : Format.formatter -> t -> unit
