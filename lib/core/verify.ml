(* The verifier: discharges a Hoare triple {pre} prog {post} against a
   world of concurroids by exhaustive exploration of schedules and
   environment interference from every supplied initial state.

   This is the semantic replacement for Coq type checking (see
   DESIGN.md): the same obligations FCSL discharges by dependent types —
   safety of every atomic action, the postcondition in every terminal
   state, under every admissible interference — are established by
   enumeration over finite configurations.

   Resource resilience (see docs/ROBUSTNESS.md): when a {!Budget.limits}
   is supplied, exhaustion never hangs and never returns a silent
   partial answer.  Instead the verifier walks a degradation ladder —
   exhaustive, then footprint-pruned, then seeded-randomized sampling —
   re-arming per-tier state/heap ceilings under one shared absolute
   deadline, and records which tier produced the verdict, the consumed
   budget, and (for sampled verdicts) the seed. *)

type tier = Exhaustive | Pruned | Sampled

let tier_name = function
  | Exhaustive -> "exhaustive"
  | Pruned -> "pruned"
  | Sampled -> "sampled"

let tier_of_name = function
  | "exhaustive" -> Some Exhaustive
  | "pruned" -> Some Pruned
  | "sampled" -> Some Sampled
  | _ -> None

let pp_tier ppf t = Fmt.string ppf (tier_name t)

type failure = {
  initial : State.t;
  crash : Crash.t;
}

(* Exploration counters aggregated across a verdict's initial states —
   {!Sched.explore_stats} summed (bucket depth: maxed) over the fanned-
   out explorations.  Always collected on the exhaustive-shaped rungs;
   [None] for sampled verdicts and for reports replayed from a journal
   (the journal image formats predate the counters and deliberately do
   not carry them — a replayed verdict is the same verdict, and its
   original run's perf profile is not reproducible data). *)
type expl_stats = {
  x_memo_hits : int;
  x_memo_misses : int;
  x_sleep_skips : int;
  x_max_bucket : int;
  x_minor_words : float;
}

let expl_of_sched (s : Sched.explore_stats) : expl_stats =
  {
    x_memo_hits = s.Sched.es_memo_hits;
    x_memo_misses = s.Sched.es_memo_misses;
    x_sleep_skips = s.Sched.es_sleep_skips;
    x_max_bucket = s.Sched.es_max_bucket;
    x_minor_words = s.Sched.es_minor_words;
  }

let merge_expl a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b ->
    Some
      {
        x_memo_hits = a.x_memo_hits + b.x_memo_hits;
        x_memo_misses = a.x_memo_misses + b.x_memo_misses;
        x_sleep_skips = a.x_sleep_skips + b.x_sleep_skips;
        x_max_bucket = max a.x_max_bucket b.x_max_bucket;
        x_minor_words = a.x_minor_words +. b.x_minor_words;
      }

let pp_expl_stats ppf (x : expl_stats) =
  Fmt.pf ppf
    "memo %d hit%s / %d miss%s, %d sleep skip%s, bucket depth %d, %.0fk minor \
     words"
    x.x_memo_hits
    (if x.x_memo_hits = 1 then "" else "s")
    x.x_memo_misses
    (if x.x_memo_misses = 1 then "" else "es")
    x.x_sleep_skips
    (if x.x_sleep_skips = 1 then "" else "s")
    x.x_max_bucket
    (x.x_minor_words /. 1000.)

type report = {
  spec_name : string;
  tier : tier; (* the ladder tier that produced this verdict *)
  seed : int option; (* base seed of a Sampled verdict *)
  initial_states : int; (* initial states satisfying the precondition *)
  outcomes : int; (* terminal outcomes examined *)
  diverged : int; (* paths cut by fuel (partial correctness: not failures) *)
  complete : bool; (* exploration exhausted every path *)
  states : int; (* configurations explored under the active reductions
                   (0 for sampled verdicts: runs, not a search space) *)
  failures : failure list;
  worker_crashes : failure list; (* quarantined pool items (engine, not spec) *)
  budget : Budget.stats option; (* consumed budget, when one was armed *)
  expl : expl_stats option; (* exploration counters; None when sampled/replayed *)
}

let ok r = r.failures = [] && r.worker_crashes = []

(* Degraded-inconclusive: no counterexample was found, but a budget trip
   forced the verdict below a complete exploration, so "no failures" is
   not a proof.  Unbudgeted incomplete runs (a [max_outcomes] cap) keep
   their historical exit-0 behaviour: nothing was demanded, nothing was
   degraded. *)
let degraded r =
  ok r
  &&
  match r.budget with
  | Some s -> s.Budget.st_tripped <> None
  | None -> false

(* A verdict cut short because every waiter went away (the service's
   client-disconnect path), as opposed to one that ran out of a
   resource.  Cancelled verdicts are an artifact of who was listening,
   not a property of the triple. *)
let cancelled r =
  match r.budget with
  | Some s -> s.Budget.st_tripped = Some (Budget.reason_name Budget.Cancelled)
  | None -> false

(* Stable CLI exit codes.  Counterexamples dominate: a failure found
   under any tier (or alongside worker losses) is sound.  Worker crashes
   dominate degradation: an "ok" claim with quarantined workers is
   untrustworthy. *)
let exit_ok = 0
let exit_failed = 1
let exit_degraded = 2
let exit_internal = 3

let exit_code reports =
  if List.exists (fun r -> r.failures <> []) reports then exit_failed
  else if List.exists (fun r -> r.worker_crashes <> []) reports then
    exit_internal
  else if List.exists degraded reports then exit_degraded
  else exit_ok

(* Engine defaults, overridable per call: configuration memoization in
   the scheduler (see [Sched.explore ~dedup]), the number of domains
   verification fans initial states out over, footprint-based env
   pruning, the resource budget, and the sampling base seed.  The CLI
   and the bench harness set these process-wide; [with_engine] scopes an
   override. *)
let default_dedup = ref true
let default_jobs = ref 1
let default_prune = ref false
let default_budget = ref Budget.no_limits
let default_seed = ref 1
let default_journal : Journal.t option ref = ref None
let default_por = ref false
let default_por_certs : (string -> string -> bool) ref = ref (fun _ _ -> false)
let set_default_dedup b = default_dedup := b
let set_default_jobs j = default_jobs := max 1 j
let set_default_prune b = default_prune := b
let set_default_budget l = default_budget := l
let set_default_seed s = default_seed := s
let set_default_journal j = default_journal := j
let set_default_por b = default_por := b
let set_default_por_certs f = default_por_certs := f

let with_engine ?dedup ?jobs ?prune ?budget ?seed ?journal ?por ?por_certs f =
  let saved_d = !default_dedup
  and saved_j = !default_jobs
  and saved_p = !default_prune
  and saved_b = !default_budget
  and saved_s = !default_seed
  and saved_jr = !default_journal
  and saved_po = !default_por
  and saved_pc = !default_por_certs in
  Option.iter set_default_dedup dedup;
  Option.iter set_default_jobs jobs;
  Option.iter set_default_prune prune;
  Option.iter set_default_budget budget;
  Option.iter set_default_seed seed;
  Option.iter set_default_journal journal;
  Option.iter set_default_por por;
  Option.iter set_default_por_certs por_certs;
  Fun.protect
    ~finally:(fun () ->
      default_dedup := saved_d;
      default_jobs := saved_j;
      default_prune := saved_p;
      default_budget := saved_b;
      default_seed := saved_s;
      default_journal := saved_jr;
      default_por := saved_po;
      default_por_certs := saved_pc)
    f

let pp_failure ppf f =
  Fmt.pf ppf "@[<v2>from %a:@ %a@]" State.pp f.initial Crash.pp f.crash

let pp_report ppf r =
  let tier_note =
    match r.tier with
    | Exhaustive -> ""
    | t -> Fmt.str ", tier %s" (tier_name t)
  in
  let seed_note =
    match r.seed with Some s -> Fmt.str ", seed %d" s | None -> ""
  in
  let budget_note =
    match r.budget with
    | Some s -> (
      match s.Budget.st_tripped with
      | Some reason -> Fmt.str ", budget tripped: %s" reason
      | None -> "")
    | None -> ""
  in
  if r.worker_crashes <> [] then
    Fmt.pf ppf "@[<v2>%s: ENGINE CRASH (%d worker%s quarantined%s)@ %a@]"
      r.spec_name
      (List.length r.worker_crashes)
      (if List.length r.worker_crashes = 1 then "" else "s")
      budget_note
      Fmt.(list ~sep:cut pp_failure)
      (List.filteri (fun i _ -> i < 3) r.worker_crashes)
  else if r.failures <> [] then
    Fmt.pf ppf "@[<v2>%s: FAILED (%d failures%s%s)@ %a@]" r.spec_name
      (List.length r.failures) tier_note seed_note
      Fmt.(list ~sep:cut pp_failure)
      (List.filteri (fun i _ -> i < 3) r.failures)
  else if degraded r then
    Fmt.pf ppf "%s: INCONCLUSIVE (%d initial states, %d outcomes%s%s%s%s)"
      r.spec_name r.initial_states r.outcomes
      (if r.states > 0 then Fmt.str ", %d states" r.states else "")
      tier_note seed_note budget_note
  else
    Fmt.pf ppf "%s: OK (%d initial states, %d outcomes%s%s%s%s%s)" r.spec_name
      r.initial_states r.outcomes
      (if r.states > 0 then Fmt.str ", %d states" r.states else "")
      (if r.diverged > 0 then Fmt.str ", %d fuel-cut" r.diverged else "")
      (if r.complete then "" else ", exploration capped")
      tier_note seed_note

(* [check_triple ~world ~init prog spec] explores every schedule of
   [prog] (with environment interference at all world labels unless
   [interference] is [false]) from every coherent initial state in
   [init] satisfying the precondition.

   Initial states are independent explorations, so with [jobs > 1] they
   are fanned out over a supervised domain pool and the per-state
   results merged in input order.  The merge reproduces the sequential
   accounting exactly: states after the first one that produced failures
   are not counted (the sequential loop skips them once [failures] is
   non-empty), so the report is identical whatever [jobs] is — parallel
   runs merely waste the work done past the first failing state.

   Supervision is per initial state: an exploration that raises is
   retried once (absorbing transient faults — exploration is pure) and
   then quarantined into [worker_crashes] instead of destroying its
   siblings' verdicts. *)

type state_result = {
  sr_outcomes : int;
  sr_diverged : int;
  sr_complete : bool;
  sr_states : int;
  sr_failures : failure list; (* capped at [max_failures], in order *)
  sr_expl : expl_stats option; (* not journaled; replayed units get None *)
}

type core = {
  c_initial_states : int;
  c_outcomes : int;
  c_diverged : int;
  c_complete : bool;
  c_states : int;
  c_failures : failure list;
  c_worker_crashes : failure list;
  c_expl : expl_stats option;
}

let crash_of_pool_error (e : Pool.error) =
  let c = Crash.of_exn e.Pool.e_exn in
  Crash.make (Crash.kind c)
    (Fmt.str "worker quarantined after %d attempt%s%s: %s" e.Pool.e_attempts
       (if e.Pool.e_attempts = 1 then "" else "s")
       (if e.Pool.e_backoff_s > 0. then
          Fmt.str " (%.0fms backoff)" (e.Pool.e_backoff_s *. 1000.)
        else "")
       (Crash.message c))

(* --- Journal integration ---------------------------------------------

   Durability granularity is the verification unit: one eligible initial
   state under one ladder tier ([Journal.State_done], keyed by its index
   in the eligible list) plus the whole spec verdict
   ([Journal.Spec_done]).  Resume replays journaled units and
   re-explores the rest; exploration is deterministic, so the assembled
   report is the uninterrupted run's.

   A journaled unit is only replayable under the engine parameters it
   was computed with, captured as a digest string.  [dedup] and [jobs]
   are deliberately excluded: both are report-invariant by construction
   (exact memo replay; sequential merge).  The eligible-state count is
   included so failure indices always re-anchor within bounds. *)

type jctx = { jc_j : Journal.t; jc_spec : string; jc_tier : string }

let params_digest ~mode ~fuel ~max_outcomes ~trials ~interference ~env_budget
    ~max_failures ~prune ~por ~seed ~(lim : Budget.limits) ~eligible =
  (* A structural digest of the eligible initial states: two triples
     can share a spec name (e.g. the same rooted-spanning spec checked
     over several catalogue graphs), and only the initial states tell
     them apart.  [State.hash] is semantic — no addresses — so it is
     stable across processes of the same binary; a recompile may shift
     it, which merely invalidates replay (the safe direction). *)
  let init_digest =
    List.fold_left (fun acc st -> (acc * 33) lxor State.hash st) 5381 eligible
  in
  (* [por] is included even though verdicts are POR-invariant: the
     replayed [states] count is not, and silently reporting a reduced
     count for an unreduced run (or vice versa) would poison baselines. *)
  Fmt.str
    "mode=%s,fuel=%d,outs=%d,trials=%d,intf=%b,envb=%d,maxf=%d,prune=%b,por=%b,seed=%d,dl=%a,words=%a,states=%a,init=%d,inith=%x"
    mode fuel max_outcomes trials interference env_budget max_failures prune
    por seed
    Fmt.(option ~none:(any "-") float)
    lim.Budget.l_deadline_s
    Fmt.(option ~none:(any "-") int)
    lim.Budget.l_max_major_words
    Fmt.(option ~none:(any "-") int)
    lim.Budget.l_max_states
    (List.length eligible) init_digest

let stats_image (s : Budget.stats) : Journal.budget_image =
  {
    Journal.bi_elapsed_s = s.Budget.st_elapsed_s;
    bi_states = s.Budget.st_states;
    bi_major_words = s.Budget.st_major_words;
    bi_tripped = s.Budget.st_tripped;
  }

let stats_of_image (b : Journal.budget_image) : Budget.stats =
  {
    Budget.st_elapsed_s = b.Journal.bi_elapsed_s;
    st_states = b.Journal.bi_states;
    st_major_words = b.Journal.bi_major_words;
    st_tripped = b.Journal.bi_tripped;
  }

let sr_image (sr : state_result) : Journal.state_image =
  {
    Journal.si_outcomes = sr.sr_outcomes;
    si_diverged = sr.sr_diverged;
    si_complete = sr.sr_complete;
    si_states = sr.sr_states;
    si_failures = List.map (fun f -> f.crash) sr.sr_failures;
  }

let sr_of_image (st : State.t) (si : Journal.state_image) : state_result =
  {
    sr_outcomes = si.Journal.si_outcomes;
    sr_diverged = si.Journal.si_diverged;
    sr_complete = si.Journal.si_complete;
    sr_states = si.Journal.si_states;
    sr_failures =
      List.map (fun crash -> { initial = st; crash }) si.Journal.si_failures;
    sr_expl = None;
  }

(* Failures are serialized with the index of their initial state in the
   eligible list (the states themselves are closures over heaps and not
   serializable); resume re-anchors them by index.  The digest pins the
   eligible count, so indices stay within bounds — an out-of-range index
   (a hand-edited journal) makes the image non-replayable, never a
   panic. *)
let failure_indices ~(eligible : State.t list) (fs : failure list) =
  List.map
    (fun f ->
      let ix = ref (-1) in
      List.iteri (fun i st -> if !ix < 0 && st == f.initial then ix := i) eligible;
      (!ix, f.crash))
    fs

let image_of_report ~params ~eligible (r : report) : Journal.report_image =
  {
    Journal.ri_spec = r.spec_name;
    ri_params = params;
    ri_tier = tier_name r.tier;
    ri_seed = r.seed;
    ri_initial_states = r.initial_states;
    ri_outcomes = r.outcomes;
    ri_diverged = r.diverged;
    ri_complete = r.complete;
    ri_states = r.states;
    ri_failures = failure_indices ~eligible r.failures;
    ri_worker_crashes = failure_indices ~eligible r.worker_crashes;
    ri_budget = Option.map stats_image r.budget;
  }

let report_of_image ~(eligible : State.t list) (ri : Journal.report_image) :
    report option =
  let anchor (i, crash) =
    if i < 0 then None
    else Option.map (fun initial -> { initial; crash }) (List.nth_opt eligible i)
  in
  let anchored l =
    let xs = List.filter_map anchor l in
    if List.length xs = List.length l then Some xs else None
  in
  match (tier_of_name ri.Journal.ri_tier, anchored ri.Journal.ri_failures,
         anchored ri.Journal.ri_worker_crashes)
  with
  | Some tier, Some failures, Some worker_crashes ->
    Some
      {
        spec_name = ri.Journal.ri_spec;
        tier;
        seed = ri.Journal.ri_seed;
        initial_states = ri.Journal.ri_initial_states;
        outcomes = ri.Journal.ri_outcomes;
        diverged = ri.Journal.ri_diverged;
        complete = ri.Journal.ri_complete;
        states = ri.Journal.ri_states;
        failures;
        worker_crashes;
        budget = Option.map stats_of_image ri.Journal.ri_budget;
        expl = None;
      }
  | _ -> None

(* Replay a journaled unit, or compute it and journal the result.
   [keep] decides whether the computed result is durable: a unit cut
   short by a budget trip is timing-dependent (a resumed process with a
   fresh budget would legitimately explore further), so only results the
   budget didn't interfere with are journaled.  Runs on pool worker
   domains; the journal handle is domain-safe. *)
let unit_cached (jctx : jctx option) ~index ~(keep : state_result -> bool)
    (st : State.t) (compute : unit -> state_result) : state_result =
  match jctx with
  | None -> compute ()
  | Some { jc_j; jc_spec; jc_tier } -> (
    match
      Journal.find_state_done jc_j ~spec:jc_spec ~tier:jc_tier ~index
    with
    | Some si -> sr_of_image st si
    | None ->
      let sr = compute () in
      if keep sr then
        Journal.append jc_j
          (Journal.State_done
             { spec = jc_spec; tier = jc_tier; index; state = sr_image sr });
      sr)

(* One ladder attempt: a full (possibly footprint-pruned) exploration of
   every eligible state under an optional armed budget. *)
let exhaustive_attempt ~fuel ~max_outcomes ~interference ~env_budget
    ~max_failures ~dedup ~jobs ~prune ~por ~por_certs
    ~(budget : Budget.t option) ?(jctx : jctx option) ~(world : World.t)
    ~(eligible : State.t list) (prog : 'a Prog.t) (spec : 'a Spec.t) : core =
  (* Env-step pruning oracle: interference at a label neither the program
     nor its spec touches cannot change any verdict (program moves never
     read it, the postcondition never observes it), so when the joined
     footprint is known the interference set shrinks to it.  The pruned
     run additionally arms the scheduler's envelope monitor, so an
     unsound declared footprint surfaces as an explicit crash instead of
     a silently narrowed search. *)
  let triple_fp =
    if not prune then Footprint.top
    else Footprint.join (Prog.footprint prog) (Spec.footprint spec)
  in
  let interfere =
    if not interference then []
    else
      match Footprint.labels triple_fp with
      | None -> World.labels world
      | Some fp_labels ->
        List.filter (fun l -> Label.Set.mem l fp_labels) (World.labels world)
  in
  let monitor_envelope = Footprint.labels triple_fp in
  let jwriter =
    Option.map
      (fun { jc_j; jc_spec; jc_tier } ->
        Journal.writer jc_j ~spec:jc_spec ~tier:jc_tier ())
      jctx
  in
  let explore_state st : state_result =
    let genv, mine = Sched.genv_of_state ~interfere world st in
    (* One oracle and one stats record per initial state: explorations
       fan out over pool domains, and both are mutated by the run. *)
    let stats = Sched.new_stats () in
    let oracle = if por then Some (Por.make ~extra:por_certs ()) else None in
    let outs, compl =
      Sched.explore ~fuel ~max_outcomes ~interference ~env_budget ~dedup
        ?monitor_envelope ?budget ?journal:jwriter ?por:oracle ~stats genv
        mine prog
    in
    Option.iter
      (fun p ->
        List.iter
          (fun c ->
            Logs.warn (fun m ->
                m "%s: POR demoted to full exploration: %a" (Spec.name spec)
                  Crash.pp c))
          (Por.lies p))
      oracle;
    let outcomes = ref 0 in
    let diverged = ref 0 in
    let failures = ref [] in
    let add_failure crash =
      if List.length !failures < max_failures then
        failures := { initial = st; crash } :: !failures
    in
    List.iter
      (fun out ->
        incr outcomes;
        match out with
        | Sched.Finished (r, final) ->
          if not (Spec.post spec r st final) then
            add_failure
              (Crash.make Crash.Postcondition
                 (Fmt.str "postcondition violated in final state %a" State.pp
                    final))
        | Sched.Crashed c -> add_failure c
        | Sched.Diverged -> incr diverged)
      outs;
    {
      sr_outcomes = !outcomes;
      sr_diverged = !diverged;
      sr_complete = compl;
      sr_states = stats.Sched.es_configs;
      sr_failures = List.rev !failures;
      sr_expl = Some (expl_of_sched stats);
    }
  in
  (* Unbudgeted results are deterministic whatever the outcome (even a
     [max_outcomes] cut replays identically); under a budget, anything
     computed while (or after) the budget tripped is not durable. *)
  let keep _sr =
    match budget with None -> true | Some b -> Budget.tripped b = None
  in
  let check_state (index, st) : state_result =
    unit_cached jctx ~index ~keep st (fun () -> explore_state st)
  in
  let indexed = List.mapi (fun i st -> (i, st)) eligible in
  let results = Pool.map_result ~jobs ~retries:1 check_state indexed in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let complete = ref true in
  let states = ref 0 in
  let failures = ref [] in
  let worker_crashes = ref [] in
  let expl = ref None in
  List.iter2
    (fun (_, st) r ->
      if !failures = [] && !worker_crashes = [] then
        match r with
        | Ok sr ->
          incr initial_states;
          outcomes := !outcomes + sr.sr_outcomes;
          diverged := !diverged + sr.sr_diverged;
          if not sr.sr_complete then complete := false;
          states := !states + sr.sr_states;
          expl := merge_expl !expl sr.sr_expl;
          failures := sr.sr_failures
        | Error e ->
          (* The state's verdict is lost: record the quarantine and mark
             the run incomplete — like a failure, later states are not
             merged (the sequential accounting). *)
          complete := false;
          worker_crashes := [ { initial = st; crash = crash_of_pool_error e } ])
    indexed results;
  {
    c_initial_states = !initial_states;
    c_outcomes = !outcomes;
    c_diverged = !diverged;
    c_complete = !complete;
    c_states = !states;
    c_failures = !failures;
    c_worker_crashes = !worker_crashes;
    c_expl = !expl;
  }

(* One sampled attempt: [trials] random schedules per eligible state,
   with consecutive seeds from [seed].  Never complete by construction;
   a budget trip stops further trials (and states) promptly. *)
let sampled_attempt ~fuel ~trials ~interference ~max_failures ~seed
    ~(budget : Budget.t option) ?(jctx : jctx option) ~(world : World.t)
    ~(eligible : State.t list) (prog : 'a Prog.t) (spec : 'a Spec.t) : core =
  let interfere = if interference then World.labels world else [] in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let failures = ref [] in
  let add_failure st crash =
    if List.length !failures < max_failures then
      failures := { initial = st; crash } :: !failures
  in
  let tripped () =
    match budget with
    | None -> false
    | Some b -> Budget.tripped b <> None
  in
  let jwriter =
    Option.map
      (fun { jc_j; jc_spec; jc_tier } ->
        Journal.writer jc_j ~spec:jc_spec ~tier:jc_tier ())
      jctx
  in
  (* One durable unit per eligible state: all [trials] seeded runs.
     Seeds are consecutive from [seed] per state, so a replayed unit is
     exactly what re-running it would produce; a unit cut short by a
     budget trip is timing-dependent and is not journaled. *)
  let sample_state (index, st) : state_result =
    let keep sr = sr.sr_complete in
    unit_cached jctx ~index ~keep st (fun () ->
        let genv, mine = Sched.genv_of_state ~interfere world st in
        let outs = ref 0 and div = ref 0 and fs = ref [] in
        let add crash =
          if List.length !fs < max_failures then
            fs := { initial = st; crash } :: !fs
        in
        let s = ref seed in
        while !s < seed + trials && not (tripped ()) do
          incr outs;
          (match
             Sched.run_random ~fuel ~interference ?budget ?journal:jwriter
               ~seed:!s genv mine prog
           with
          | Sched.Finished (r, final) ->
            if not (Spec.post spec r st final) then
              add
                (Crash.make Crash.Postcondition
                   (Fmt.str "postcondition violated (seed %d) in %a" !s
                      State.pp final))
          | Sched.Crashed c -> add c
          | Sched.Diverged -> incr div);
          incr s
        done;
        (* [sr_complete] here means "all trials ran" — the unit is
           durable — not exploration completeness (sampled cores are
           never complete; [c_complete] below stays [false]). *)
        {
          sr_outcomes = !outs;
          sr_diverged = !div;
          sr_complete = !s >= seed + trials;
          sr_states = 0;
          sr_failures = List.rev !fs;
          sr_expl = None;
        })
  in
  List.iteri
    (fun index st ->
      if not (tripped ()) then begin
        incr initial_states;
        let sr = sample_state (index, st) in
        outcomes := !outcomes + sr.sr_outcomes;
        diverged := !diverged + sr.sr_diverged;
        List.iter (fun f -> add_failure f.initial f.crash) sr.sr_failures
      end)
    eligible;
  {
    c_initial_states = !initial_states;
    c_outcomes = !outcomes;
    c_diverged = !diverged;
    c_complete = false;
    c_states = 0;
    c_failures = List.rev !failures;
    c_worker_crashes = [];
    c_expl = None;
  }

let assemble ~spec_name ~tier ~seed ~budget (c : core) : report =
  {
    spec_name;
    tier;
    seed;
    initial_states = c.c_initial_states;
    outcomes = c.c_outcomes;
    diverged = c.c_diverged;
    complete = c.c_complete;
    states = c.c_states;
    failures = c.c_failures;
    worker_crashes = c.c_worker_crashes;
    budget;
    expl = c.c_expl;
  }

(* Fold the per-tier budget stats into one record for the report:
   elapsed and states accumulate across attempts; the trip reason is the
   last one observed, so a verdict that was ever forced down a tier
   keeps the reason even when the final attempt finished within its own
   ceilings (that is what makes it {!degraded}). *)
let merge_stats (ss : Budget.stats list) : Budget.stats =
  match ss with
  | [] -> invalid_arg "merge_stats"
  | s0 :: rest ->
    List.fold_left
      (fun acc s ->
        {
          Budget.st_elapsed_s = acc.Budget.st_elapsed_s +. s.Budget.st_elapsed_s;
          st_states = acc.Budget.st_states + s.Budget.st_states;
          st_major_words = s.Budget.st_major_words;
          st_tripped =
            (match s.Budget.st_tripped with
            | Some _ as t -> t
            | None -> acc.Budget.st_tripped);
        })
      s0 rest

(* Trials used by the Sampled rung of the ladder (check_triple has no
   [trials] parameter of its own; [check_triple_random] does). *)
let ladder_trials = 100

let check_triple ?(fuel = 64) ?(max_outcomes = 200_000) ?(interference = true)
    ?(env_budget = max_int) ?(max_failures = 5) ?dedup ?jobs ?prune ?por
    ?por_certs ?budget ?seed ?journal ~(world : World.t)
    ~(init : State.t list) (prog : 'a Prog.t) (spec : 'a Spec.t) : report =
  let dedup = Option.value dedup ~default:!default_dedup in
  let jobs = max 1 (Option.value jobs ~default:!default_jobs) in
  let prune = Option.value prune ~default:!default_prune in
  let por = Option.value por ~default:!default_por in
  let por_certs = Option.value por_certs ~default:!default_por_certs in
  let lim = Option.value budget ~default:!default_budget in
  let seed = Option.value seed ~default:!default_seed in
  let journal =
    match journal with Some _ as j -> j | None -> !default_journal
  in
  let spec_name = Spec.name spec in
  let eligible =
    List.filter (fun st -> World.coh world st && Spec.pre spec st) init
  in
  (* Pruning only bites when the joined footprint is below top. *)
  let fp_known =
    Footprint.labels (Footprint.join (Prog.footprint prog) (Spec.footprint spec))
    <> None
  in
  let params =
    params_digest ~mode:"exh" ~fuel ~max_outcomes ~trials:ladder_trials
      ~interference ~env_budget ~max_failures ~prune ~por ~seed ~lim ~eligible
  in
  (* A journaled verdict for this spec under these exact engine
     parameters replays wholesale — the memoization that makes resumed
     registry runs skip completed rows. *)
  let replayed =
    Option.bind journal (fun j ->
        Option.bind
          (Journal.find_spec_done j ~spec:spec_name ~params)
          (report_of_image ~eligible))
  in
  match replayed with
  | Some r -> r
  | None ->
    Option.iter
      (fun j -> Journal.append j (Journal.Spec_begin { spec = spec_name; params }))
      journal;
    (* Read after the Spec_begin append: the journal index invalidates
       unit records on a params change, so a surviving tier marker is
       one recorded under exactly these parameters. *)
    let resume_tier =
      Option.bind journal (fun j ->
          Option.bind (Journal.last_tier j ~spec:spec_name) (fun (t, _) ->
              tier_of_name t))
    in
    let jctx tier seed =
      Option.map
        (fun j ->
          Journal.append j
            (Journal.Tier_begin
               { spec = spec_name; tier = tier_name tier; seed });
          { jc_j = j; jc_spec = spec_name; jc_tier = tier_name tier })
        journal
    in
    let finish r =
      Option.iter
        (fun j ->
          (* A cancelled verdict must not be memoized: replaying it for
             the next submission of the same digest would serve the
             aborted answer as if it were a real exploration.  The
             unit-level records are already excluded by the tripped-
             budget [keep] predicate; skip the verdict record too. *)
          if not (cancelled r) then
            Journal.append j
              (Journal.Spec_done (image_of_report ~params ~eligible r));
          Journal.flush j)
        journal;
      r
    in
    (* POR rides every exhaustive-shaped rung: it composes with pruning
       (orthogonal reductions — labels cut vs. interleavings cut) and
       with budgets (fewer configurations per tick).  The sampled rung
       runs single schedules, where there is nothing to reduce. *)
    let attempt ~prune ?jctx b =
      exhaustive_attempt ~fuel ~max_outcomes ~interference ~env_budget
        ~max_failures ~dedup ~jobs ~prune ~por ~por_certs ~budget:b ?jctx
        ~world ~eligible prog spec
    in
    let tier1 = if prune && fp_known then Pruned else Exhaustive in
    if Budget.is_unlimited lim then
      (* No budget: exactly the historical single-attempt path. *)
      finish
        (assemble ~spec_name ~tier:tier1 ~seed:None ~budget:None
           (attempt ~prune ?jctx:(jctx tier1 None) None))
    else begin
      (* The degradation ladder.  Each rung re-arms fresh state/heap
         ceilings but every rung shares the first rung's absolute
         deadline, so the whole ladder observes one wall-clock budget.
         Failures found on a tripped rung are sound counterexamples and
         are reported as-is; only failure-free tripped rungs degrade.

         A resumed run re-enters the ladder at the last journaled rung:
         rungs the interrupted run already fell past are not repeated
         (their failure-free trip is what pushed it down). *)
      let b1 = Budget.arm lim in
      let deadline_at = Budget.deadline_at b1 in
      let rearm () = Budget.arm ?deadline_at lim in
      (* Like the budget stats, exploration counters are cumulative
         across rungs: the work the earlier failure-free tripped rungs
         burned is part of what this verdict cost. *)
      let sample_with b stats_so_far expl_so_far =
        let c =
          sampled_attempt ~fuel:(max fuel 256) ~trials:ladder_trials
            ~interference ~max_failures ~seed ~budget:(Some b)
            ?jctx:(jctx Sampled (Some seed)) ~world ~eligible prog spec
        in
        assemble ~spec_name ~tier:Sampled ~seed:(Some seed)
          ~budget:(Some (merge_stats (stats_so_far @ [ Budget.stats b ])))
          { c with c_expl = expl_so_far }
      in
      (* A cancel trip aborts the ladder at the current rung:
         degradation is for resource exhaustion, and descending would
         journal lower-rung markers that a later resubmission of the
         same digest would wrongly resume into (serving a sampled
         verdict where an exhaustive one was never even attempted). *)
      let conclusive c s =
        s.Budget.st_tripped = None
        || c.c_failures <> []
        || s.Budget.st_tripped = Some (Budget.reason_name Budget.Cancelled)
      in
      (* Which rung to start on: 0 = tier1, 1 = pruned (only reachable
         when tier1 is exhaustive and the footprint is known), 2 =
         sampled. *)
      let start =
        match resume_tier with
        | Some Sampled -> 2
        | Some Pruned when tier1 = Exhaustive && fp_known -> 1
        | _ -> 0
      in
      finish
        (if start >= 2 then sample_with b1 [] None
         else begin
           let first_tier = if start = 1 then Pruned else tier1 in
           let first_prune = if start = 1 then true else prune in
           let c1 =
             attempt ~prune:first_prune ?jctx:(jctx first_tier None) (Some b1)
           in
           let s1 = Budget.stats b1 in
           if conclusive c1 s1 then
             assemble ~spec_name ~tier:first_tier ~seed:None ~budget:(Some s1)
               c1
           else if first_tier = Exhaustive && fp_known then begin
             let b2 = rearm () in
             let c2 = attempt ~prune:true ?jctx:(jctx Pruned None) (Some b2) in
             let s2 = Budget.stats b2 in
             if conclusive c2 s2 then
               assemble ~spec_name ~tier:Pruned ~seed:None
                 ~budget:(Some (merge_stats [ s1; s2 ]))
                 { c2 with c_expl = merge_expl c1.c_expl c2.c_expl }
             else
               sample_with (rearm ()) [ s1; s2 ]
                 (merge_expl c1.c_expl c2.c_expl)
           end
           else sample_with (rearm ()) [ s1 ] c1.c_expl
         end)
    end

(* Randomized checking for configurations too large to exhaust: [trials]
   random schedules per initial state, with consecutive seeds from
   [seed] (so a report's recorded seed replays bit-identically). *)
let check_triple_random ?(fuel = 2000) ?(trials = 100) ?(interference = false)
    ?(max_failures = 5) ?budget ?seed ?journal ~(world : World.t)
    ~(init : State.t list) (prog : 'a Prog.t) (spec : 'a Spec.t) : report =
  let lim = Option.value budget ~default:!default_budget in
  let seed = Option.value seed ~default:!default_seed in
  let journal =
    match journal with Some _ as j -> j | None -> !default_journal
  in
  let b = if Budget.is_unlimited lim then None else Some (Budget.arm lim) in
  let spec_name = Spec.name spec in
  let eligible =
    List.filter (fun st -> World.coh world st && Spec.pre spec st) init
  in
  let params =
    params_digest ~mode:"rand" ~fuel ~max_outcomes:0 ~trials ~interference
      ~env_budget:0 ~max_failures ~prune:false ~por:false ~seed ~lim ~eligible
  in
  let replayed =
    Option.bind journal (fun j ->
        Option.bind
          (Journal.find_spec_done j ~spec:spec_name ~params)
          (report_of_image ~eligible))
  in
  match replayed with
  | Some r -> r
  | None ->
    let jctx =
      Option.map
        (fun j ->
          Journal.append j
            (Journal.Spec_begin { spec = spec_name; params });
          Journal.append j
            (Journal.Tier_begin
               { spec = spec_name; tier = tier_name Sampled; seed = Some seed });
          { jc_j = j; jc_spec = spec_name; jc_tier = tier_name Sampled })
        journal
    in
    let c =
      sampled_attempt ~fuel ~trials ~interference ~max_failures ~seed ~budget:b
        ?jctx ~world ~eligible prog spec
    in
    let r =
      assemble ~spec_name ~tier:Sampled ~seed:(Some seed)
        ~budget:(Option.map Budget.stats b) c
    in
    Option.iter
      (fun j ->
        if not (cancelled r) then
          Journal.append j (Journal.Spec_done (image_of_report ~params ~eligible r));
        Journal.flush j)
      journal;
    r
