(* The verifier: discharges a Hoare triple {pre} prog {post} against a
   world of concurroids by exhaustive exploration of schedules and
   environment interference from every supplied initial state.

   This is the semantic replacement for Coq type checking (see
   DESIGN.md): the same obligations FCSL discharges by dependent types —
   safety of every atomic action, the postcondition in every terminal
   state, under every admissible interference — are established by
   enumeration over finite configurations. *)

type failure = {
  initial : State.t;
  reason : string;
}

type report = {
  spec_name : string;
  initial_states : int; (* initial states satisfying the precondition *)
  outcomes : int; (* terminal outcomes examined *)
  diverged : int; (* paths cut by fuel (partial correctness: not failures) *)
  complete : bool; (* exploration exhausted every path *)
  failures : failure list;
}

let ok r = r.failures = []

(* Engine defaults, overridable per call: configuration memoization in
   the scheduler (see [Sched.explore ~dedup]) and the number of domains
   verification fans initial states out over.  The CLI and the bench
   harness set these process-wide; [with_engine] scopes an override. *)
let default_dedup = ref true
let default_jobs = ref 1
let default_prune = ref false
let set_default_dedup b = default_dedup := b
let set_default_jobs j = default_jobs := max 1 j
let set_default_prune b = default_prune := b

let with_engine ?dedup ?jobs ?prune f =
  let saved_d = !default_dedup
  and saved_j = !default_jobs
  and saved_p = !default_prune in
  Option.iter set_default_dedup dedup;
  Option.iter set_default_jobs jobs;
  Option.iter set_default_prune prune;
  Fun.protect ~finally:(fun () ->
      default_dedup := saved_d;
      default_jobs := saved_j;
      default_prune := saved_p)
    f

let pp_failure ppf f =
  Fmt.pf ppf "@[<v2>from %a:@ %s@]" State.pp f.initial f.reason

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "%s: OK (%d initial states, %d outcomes%s%s)" r.spec_name
      r.initial_states r.outcomes
      (if r.diverged > 0 then Fmt.str ", %d fuel-cut" r.diverged else "")
      (if r.complete then "" else ", exploration capped")
  else
    Fmt.pf ppf "@[<v2>%s: FAILED (%d failures)@ %a@]" r.spec_name
      (List.length r.failures)
      Fmt.(list ~sep:cut pp_failure)
      (List.filteri (fun i _ -> i < 3) r.failures)

(* [check_triple ~world ~init prog spec] explores every schedule of
   [prog] (with environment interference at all world labels unless
   [interference] is [false]) from every coherent initial state in
   [init] satisfying the precondition.

   Initial states are independent explorations, so with [jobs > 1] they
   are fanned out over a domain pool and the per-state results merged in
   input order.  The merge reproduces the sequential accounting exactly:
   states after the first one that produced failures are not counted
   (the sequential loop skips them once [failures] is non-empty), so the
   report is identical whatever [jobs] is — parallel runs merely waste
   the work done past the first failing state. *)

type state_result = {
  sr_outcomes : int;
  sr_diverged : int;
  sr_complete : bool;
  sr_failures : failure list; (* capped at [max_failures], in order *)
}

let check_triple ?(fuel = 64) ?(max_outcomes = 200_000) ?(interference = true)
    ?(env_budget = max_int) ?(max_failures = 5) ?dedup ?jobs ?prune
    ~(world : World.t) ~(init : State.t list) (prog : 'a Prog.t)
    (spec : 'a Spec.t) : report =
  let dedup = Option.value dedup ~default:!default_dedup in
  let jobs = max 1 (Option.value jobs ~default:!default_jobs) in
  let prune = Option.value prune ~default:!default_prune in
  (* Env-step pruning oracle: interference at a label neither the program
     nor its spec touches cannot change any verdict (program moves never
     read it, the postcondition never observes it), so when the joined
     footprint is known the interference set shrinks to it.  The pruned
     run additionally arms the scheduler's envelope monitor, so an
     unsound declared footprint surfaces as an explicit crash instead of
     a silently narrowed search. *)
  let triple_fp =
    if not prune then Footprint.top
    else Footprint.join (Prog.footprint prog) (Spec.footprint spec)
  in
  let interfere =
    if not interference then []
    else
      match Footprint.labels triple_fp with
      | None -> World.labels world
      | Some fp_labels ->
        List.filter (fun l -> Label.Set.mem l fp_labels) (World.labels world)
  in
  let monitor_envelope =
    match Footprint.labels triple_fp with
    | None -> None
    | Some fp_labels -> Some fp_labels
  in
  let eligible =
    List.filter (fun st -> World.coh world st && Spec.pre spec st) init
  in
  let check_state st : state_result =
    let genv, mine = Sched.genv_of_state ~interfere world st in
    let outs, compl =
      Sched.explore ~fuel ~max_outcomes ~interference ~env_budget ~dedup
        ?monitor_envelope genv mine prog
    in
    let outcomes = ref 0 in
    let diverged = ref 0 in
    let failures = ref [] in
    let add_failure reason =
      if List.length !failures < max_failures then
        failures := { initial = st; reason } :: !failures
    in
    List.iter
      (fun out ->
        incr outcomes;
        match out with
        | Sched.Finished (r, final) ->
          if not (Spec.post spec r st final) then
            add_failure
              (Fmt.str "postcondition violated in final state %a" State.pp
                 final)
        | Sched.Crashed msg -> add_failure ("crash: " ^ msg)
        | Sched.Diverged -> incr diverged)
      outs;
    {
      sr_outcomes = !outcomes;
      sr_diverged = !diverged;
      sr_complete = compl;
      sr_failures = List.rev !failures;
    }
  in
  let results = Pool.map ~jobs check_state eligible in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let complete = ref true in
  let failures = ref [] in
  List.iter
    (fun r ->
      if !failures = [] then begin
        incr initial_states;
        outcomes := !outcomes + r.sr_outcomes;
        diverged := !diverged + r.sr_diverged;
        if not r.sr_complete then complete := false;
        failures := r.sr_failures
      end)
    results;
  {
    spec_name = Spec.name spec;
    initial_states = !initial_states;
    outcomes = !outcomes;
    diverged = !diverged;
    complete = !complete;
    failures = !failures;
  }

(* Randomized checking for configurations too large to exhaust: [trials]
   random schedules per initial state. *)
let check_triple_random ?(fuel = 2000) ?(trials = 100) ?(interference = false)
    ?(max_failures = 5) ~(world : World.t) ~(init : State.t list)
    (prog : 'a Prog.t) (spec : 'a Spec.t) : report =
  let interfere = if interference then World.labels world else [] in
  let initial_states = ref 0 in
  let outcomes = ref 0 in
  let diverged = ref 0 in
  let failures = ref [] in
  let add_failure st reason =
    if List.length !failures < max_failures then
      failures := { initial = st; reason } :: !failures
  in
  List.iter
    (fun st ->
      if World.coh world st && Spec.pre spec st then begin
        incr initial_states;
        let genv, mine = Sched.genv_of_state ~interfere world st in
        for seed = 1 to trials do
          incr outcomes;
          match Sched.run_random ~fuel ~interference ~seed genv mine prog with
          | Sched.Finished (r, final) ->
            if not (Spec.post spec r st final) then
              add_failure st
                (Fmt.str "postcondition violated (seed %d) in %a" seed State.pp
                   final)
          | Sched.Crashed msg -> add_failure st ("crash: " ^ msg)
          | Sched.Diverged -> incr diverged
        done
      end)
    init;
  {
    spec_name = Spec.name spec;
    initial_states = !initial_states;
    outcomes = !outcomes;
    diverged = !diverged;
    complete = false;
    failures = List.rev !failures;
  }
