(** The verifier: discharges Hoare triples against a world of
    concurroids by exhaustive exploration of schedules and environment
    interference from every supplied initial state — the semantic
    replacement for Coq type checking (see DESIGN.md).

    Resource resilience (see docs/ROBUSTNESS.md): under a
    {!Budget.limits} the verifier never hangs and never returns a silent
    partial answer.  On budget exhaustion it walks a degradation ladder
    — {!Exhaustive}, then footprint-{!Pruned}, then seeded-randomized
    {!Sampled} — and the report records the tier that produced the
    verdict, the consumed budget, and (for sampled verdicts) the seed. *)

type tier =
  | Exhaustive  (** full exploration of every schedule *)
  | Pruned  (** footprint-pruned exploration (still a proof if complete) *)
  | Sampled  (** randomized sampling: can only refute, never prove *)

val tier_name : tier -> string
(** ["exhaustive"], ["pruned"], ["sampled"]. *)

val tier_of_name : string -> tier option
(** Inverse of {!tier_name} (journal records carry tier names). *)

val pp_tier : Format.formatter -> tier -> unit

type failure = { initial : State.t; crash : Crash.t }

type expl_stats = {
  x_memo_hits : int;  (** memoized-configuration cache hits *)
  x_memo_misses : int;  (** cache misses (configurations actually expanded) *)
  x_sleep_skips : int;  (** subtrees skipped by sleep-set POR *)
  x_max_bucket : int;
      (** deepest memo-table hash bucket observed — a collision-quality
          probe for the hash-consed configuration keys *)
  x_minor_words : float;
      (** [Gc.minor_words] delta over the explorations — the allocation
          cost of the hot path *)
}
(** Always-on exploration counters, summed ({!Sched.explore_stats}
    [es_max_bucket]: maxed) over a verdict's initial states and,
    under a budget, over its ladder rungs.  [None] on {!Sampled}
    verdicts (single runs, not a search) and on reports replayed from a
    journal — the journal image format deliberately does not carry perf
    counters. *)

val merge_expl :
  expl_stats option -> expl_stats option -> expl_stats option
(** Pointwise sum ([x_max_bucket]: max); [None] is the unit. *)

val pp_expl_stats : Format.formatter -> expl_stats -> unit
(** One-line rendering, e.g.
    ["memo 120 hits / 80 misses, 14 sleep skips, bucket depth 3, 52k minor words"]. *)

type report = {
  spec_name : string;
  tier : tier;  (** the ladder tier that produced this verdict *)
  seed : int option;  (** base seed of a {!Sampled} verdict *)
  initial_states : int;  (** initial states satisfying the precondition *)
  outcomes : int;  (** terminal outcomes examined *)
  diverged : int;  (** fuel-cut paths (partial correctness: not failures) *)
  complete : bool;  (** exploration exhausted every path *)
  states : int;
      (** configurations explored under the active reductions (dedup,
          pruning, POR) — the cost the Table 1 [States] column and the
          POR benchmark surface.  0 for {!Sampled} verdicts, which run
          single schedules rather than searching a space. *)
  failures : failure list;
  worker_crashes : failure list;
      (** initial states whose exploration worker was quarantined (an
          engine loss, not a spec verdict; see {!Pool.map_result}) *)
  budget : Budget.stats option;
      (** consumed budget, cumulative across ladder tiers, when a budget
          was armed *)
  expl : expl_stats option;
      (** exploration counters, cumulative across ladder tiers; [None]
          for {!Sampled} and journal-replayed verdicts *)
}

val ok : report -> bool
(** No failures and no quarantined workers. *)

val degraded : report -> bool
(** [ok], but a budget trip forced the verdict below a complete
    exploration — "no failures found" is not a proof.  Unbudgeted
    incomplete runs (a [max_outcomes] cap) are not degraded. *)

val cancelled : report -> bool
(** The budget tripped {!Budget.Cancelled}: the run was cut short from
    outside (every service client hung up), not by a resource ceiling.
    Cancelled verdicts are never journaled — memoizing them would serve
    the aborted answer to the next submission of the same digest. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Exit codes}

    The stable process exit codes the [fcsl] CLI maps verdicts to. *)

val exit_ok : int
(** 0: every report ok and conclusive. *)

val exit_failed : int
(** 1: a verification failure (sound under every tier). *)

val exit_degraded : int
(** 2: no failure found, but some verdict is {!degraded}. *)

val exit_internal : int
(** 3: an engine failure (quarantined workers, unexpected exceptions). *)

val exit_code : report list -> int
(** Failures dominate (counterexamples are sound even next to losses),
    then worker crashes (an "ok" with quarantined workers is
    untrustworthy), then degradation. *)

(** {1 Engine defaults}

    Process-wide defaults for the exploration engine, used when
    {!check_triple} is not passed the corresponding argument: whether
    the scheduler memoizes configurations ([dedup], default on), how
    many domains initial states fan out over ([jobs], default 1),
    footprint-based env pruning ([prune], default off), the resource
    budget ([budget], default {!Budget.no_limits}), and the sampling
    base seed ([seed], default 1). *)

val set_default_dedup : bool -> unit
val set_default_jobs : int -> unit

val set_default_prune : bool -> unit
(** Footprint-based env-step pruning (default off): when a triple's
    joined program+spec envelope is known (below [Footprint.top]),
    restrict environment interference to the labels it touches, and arm
    the scheduler's envelope monitor so an unsound declared envelope
    surfaces as an explicit failure. *)

val set_default_budget : Budget.limits -> unit
val set_default_seed : int -> unit

val set_default_por : bool -> unit
(** Sleep-set partial-order reduction (default off): skip exploration
    subtrees that are reorderings, by independent moves, of subtrees
    already explored (see [Sched.explore ~por] and docs/ANALYSIS.md
    §POR).  Verdict-preserving by construction; self-checking at
    runtime, demoting to full exploration on a refuted independence
    claim. *)

val set_default_por_certs : (string -> string -> bool) -> unit
(** Extra independence certificates for the POR oracle, keyed by action
    name pair (queried once per interned class pair, in both orders, so
    tables may be ordered or symmetrically closed): the static
    analyzer's algebraic (PCM-commutation) rule, beyond what footprint
    disjointness shows.  Default: none.  Only consulted when POR is
    on. *)

val set_default_journal : Journal.t option -> unit
(** The write-ahead journal verification progress is recorded to (and
    replayed from), when any — see {!Journal} and docs/ROBUSTNESS.md.
    Default: none. *)

val with_engine :
  ?dedup:bool ->
  ?jobs:int ->
  ?prune:bool ->
  ?budget:Budget.limits ->
  ?seed:int ->
  ?journal:Journal.t option ->
  ?por:bool ->
  ?por_certs:(string -> string -> bool) ->
  (unit -> 'a) ->
  'a
(** Run [f] with the given engine defaults, restoring the previous ones
    afterwards (also on exceptions). *)

val check_triple :
  ?fuel:int ->
  ?max_outcomes:int ->
  ?interference:bool ->
  ?env_budget:int ->
  ?max_failures:int ->
  ?dedup:bool ->
  ?jobs:int ->
  ?prune:bool ->
  ?por:bool ->
  ?por_certs:(string -> string -> bool) ->
  ?budget:Budget.limits ->
  ?seed:int ->
  ?journal:Journal.t ->
  world:World.t ->
  init:State.t list ->
  'a Prog.t ->
  'a Spec.t ->
  report
(** Explore every schedule (and, unless [interference] is [false],
    every environment-step insertion up to [env_budget]) from every
    coherent initial state satisfying the precondition; check the
    postcondition in every terminal state and safety of every enabled
    action along the way.

    [dedup] switches configuration memoization in the scheduler
    (see [Sched.explore]); [jobs > 1] fans the initial states out over
    that many supervised domains (an exploration that raises is retried
    once, then quarantined into [worker_crashes]).  Both default to the
    engine defaults above, and neither changes the report: memoized
    replay is exact, and the parallel merge reproduces the sequential
    accounting (including skipping states after the first failing one).

    [prune] (default: the engine default, off) restricts environment
    interference to the labels of the joined program+spec footprint when
    that footprint is known — sound because interference at a label the
    program never steps and the spec never observes cannot change any
    verdict, and guarded dynamically by the scheduler's envelope
    monitor.  Outcome {e counts} may legitimately shrink under pruning;
    the per-spec verdict and failure set do not.

    [por] (default: the engine default, off) arms sleep-set
    partial-order reduction on the exhaustive and pruned rungs, with
    [por_certs] as extra algebraic independence certificates (see
    {!set_default_por_certs}).  Every reachable configuration — hence
    every verdict, failure and counterexample — stays reachable; only
    [states] (and, on diamond-heavy programs, wall-clock) drops.  A
    refuted independence claim demotes that state's exploration to full
    expansion, logs the located analyzer-lie diagnostic, and never
    changes the verdict.  POR participates in the engine-parameter
    digest, so journaled verdicts never replay across a POR on/off
    change (the [states] count would be wrong).

    [budget] (default: the engine default, unlimited) arms cooperative
    resource ceilings — wall-clock deadline, major-heap words, explored
    states.  An unlimited budget takes exactly the historical code path.
    A budget trip with failures already found reports those (sound)
    counterexamples; a failure-free trip drops a tier: exhaustive to
    footprint-pruned (when the footprint is known and pruning was not
    already on) to seeded-randomized sampling with base seed [seed].
    Every tier re-arms fresh state/heap ceilings under the first tier's
    absolute deadline, so the whole ladder observes one wall-clock
    budget and always terminates with an explicit [tier]/[budget]
    verdict — never a hang, never a silent partial answer.

    [journal] (default: the engine default, none) arms durability: the
    run's progress is written to the given write-ahead journal at
    verification-unit granularity (one eligible initial state under one
    ladder tier), the spec's verdict is journaled on completion, and a
    resumed run — same triple, same engine parameters, a journal opened
    with [~resume:true] — replays journaled units instead of
    re-exploring them, re-enters the ladder at the last journaled rung,
    and replays a journaled verdict wholesale.  Exploration is
    deterministic, so a resumed run reaches the verdict the
    uninterrupted run would have reached; units cut short by a budget
    trip are timing-dependent and are deliberately not journaled (a
    resume with a fresh budget legitimately explores further). *)

val check_triple_random :
  ?fuel:int ->
  ?trials:int ->
  ?interference:bool ->
  ?max_failures:int ->
  ?budget:Budget.limits ->
  ?seed:int ->
  ?journal:Journal.t ->
  world:World.t ->
  init:State.t list ->
  'a Prog.t ->
  'a Spec.t ->
  report
(** Randomized checking for configurations too large to exhaust:
    [trials] random schedules per initial state with consecutive seeds
    from [seed] (default: the engine default, 1), so a report's recorded
    seed replays bit-identically.  A [budget] (default: the engine
    default) trip stops further trials promptly; the report's tier is
    always {!Sampled}. *)
