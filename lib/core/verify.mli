(** The verifier: discharges Hoare triples against a world of
    concurroids by exhaustive exploration of schedules and environment
    interference from every supplied initial state — the semantic
    replacement for Coq type checking (see DESIGN.md). *)

type failure = { initial : State.t; reason : string }

type report = {
  spec_name : string;
  initial_states : int;  (** initial states satisfying the precondition *)
  outcomes : int;  (** terminal outcomes examined *)
  diverged : int;  (** fuel-cut paths (partial correctness: not failures) *)
  complete : bool;  (** exploration exhausted every path *)
  failures : failure list;
}

val ok : report -> bool
val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Engine defaults}

    Process-wide defaults for the exploration engine, used when
    {!check_triple} is not passed the corresponding argument: whether
    the scheduler memoizes configurations ([dedup], default on) and how
    many domains initial states fan out over ([jobs], default 1). *)

val set_default_dedup : bool -> unit
val set_default_jobs : int -> unit

val set_default_prune : bool -> unit
(** Footprint-based env-step pruning (default off): when a triple's
    joined program+spec envelope is known (below [Footprint.top]),
    restrict environment interference to the labels it touches, and arm
    the scheduler's envelope monitor so an unsound declared envelope
    surfaces as an explicit failure. *)

val with_engine : ?dedup:bool -> ?jobs:int -> ?prune:bool -> (unit -> 'a) -> 'a
(** Run [f] with the given engine defaults, restoring the previous ones
    afterwards (also on exceptions). *)

val check_triple :
  ?fuel:int ->
  ?max_outcomes:int ->
  ?interference:bool ->
  ?env_budget:int ->
  ?max_failures:int ->
  ?dedup:bool ->
  ?jobs:int ->
  ?prune:bool ->
  world:World.t ->
  init:State.t list ->
  'a Prog.t ->
  'a Spec.t ->
  report
(** Explore every schedule (and, unless [interference] is [false],
    every environment-step insertion up to [env_budget]) from every
    coherent initial state satisfying the precondition; check the
    postcondition in every terminal state and safety of every enabled
    action along the way.

    [dedup] switches configuration memoization in the scheduler
    (see [Sched.explore]); [jobs > 1] fans the initial states out over
    that many domains.  Both default to the engine defaults above, and
    neither changes the report: memoized replay is exact, and the
    parallel merge reproduces the sequential accounting (including
    skipping states after the first failing one).

    [prune] (default: the engine default, off) restricts environment
    interference to the labels of the joined program+spec footprint when
    that footprint is known — sound because interference at a label the
    program never steps and the spec never observes cannot change any
    verdict, and guarded dynamically by the scheduler's envelope
    monitor.  Outcome {e counts} may legitimately shrink under pruning;
    the per-spec verdict and failure set do not. *)

val check_triple_random :
  ?fuel:int ->
  ?trials:int ->
  ?interference:bool ->
  ?max_failures:int ->
  world:World.t ->
  init:State.t list ->
  'a Prog.t ->
  'a Spec.t ->
  report
(** Randomized checking for configurations too large to exhaust. *)
