(** One concurroid's portion of a subjective state: the triple
    [self | joint | other] of the paper's Section 2.2.1.

    [self] and [other] are PCM elements owned by the observing thread
    and its environment; the joint component is shared.  As in the
    paper, each component may mix real state (heap) and auxiliary state:
    the joint component is split into its real heap [joint] and its
    auxiliary part [jaux]. *)

open Fcsl_heap
module Aux := Fcsl_pcm.Aux

type t

val make : self:Aux.t -> joint:Heap.t -> other:Aux.t -> t
(** A slice with unit joint auxiliary. *)

val make_jaux : self:Aux.t -> joint:Heap.t -> jaux:Aux.t -> other:Aux.t -> t

val self : t -> Aux.t
val joint : t -> Heap.t
val jaux : t -> Aux.t
val other : t -> Aux.t
val empty : t

val transpose : t -> t
(** Swap the observing thread's and the environment's roles; the
    viewpoint from which interference is expressed. *)

val valid : t -> bool
(** [self • other] is defined. *)

val combined : t -> Aux.t option
(** [self • other]. *)

val combined_exn : t -> Aux.t

val with_self : Aux.t -> t -> t
val with_joint : Heap.t -> t -> t
val with_jaux : Aux.t -> t -> t
val with_other : Aux.t -> t -> t

val realign : t -> self:Aux.t -> other:Aux.t -> t option
(** Fork-join realignment: replace the (self, other) split by another
    split of the same combined value; [None] if the totals differ. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Semantic total order over all four components, consistent with
    {!equal}. *)

val compare_for_dedup : t -> t -> int
(** Alias of {!compare}; kept for the state-set deduplication call
    sites. *)

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
