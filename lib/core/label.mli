(** Concurroid labels (paper, Section 3.3): names that differentiate
    instances of a concurroid within an entangled state. *)

type t

val make : string -> t
(** [make name] mints a fresh label; [name] is kept for printing. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val pp : Format.formatter -> t -> unit

module Map : sig
  include Map.S with type key = t

  val keys : 'a t -> key list
  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end

module Set : Set.S with type elt = t
