(* Concurroid labels (paper, Section 3.3): semantically natural numbers
   that differentiate instances of a concurroid within an entangled
   state.  A global registry maps labels back to names for printing. *)

type t = int

(* The registry is global mutable state; verification now fans work out
   across domains (see [Pool]), so every access goes through a mutex. *)
let lock = Mutex.create ()
let registry : (int, string) Hashtbl.t = Hashtbl.create 16
let counter = ref 0

let make name =
  Mutex.protect lock (fun () ->
      incr counter;
      let l = !counter in
      Hashtbl.replace registry l name;
      l)

let name l =
  match Mutex.protect lock (fun () -> Hashtbl.find_opt registry l) with
  | Some n -> n
  | None -> Fmt.str "l%d" l

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (l : t) = l
let pp ppf l = Fmt.pf ppf "%s#%d" (name l) l

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = struct
  include Map.Make (Ord)

  let keys m = List.map fst (bindings m)

  let pp pp_v ppf m =
    let pp_binding ppf (k, v) = Fmt.pf ppf "%a: %a" pp k pp_v v in
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_binding) (bindings m)
end

module Set = Set.Make (Ord)
