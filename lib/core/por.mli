(** Partial-order reduction oracle for {!Sched.explore}.

    Carries the independence relation the static analyzer derived
    (syntactic footprint commutation plus name-keyed algebraic
    certificates) together with the reduction's runtime accounting:
    sleep-set skips, demotions, and the analyzer-lie diagnostics that
    caused them.  See docs/ANALYSIS.md §POR. *)

type entry
(** One schedulable move as the reducer sees it: a stable identity
    (Par-spine path + action name for program moves; label, transition
    name and branch index for environment moves), the displayed name,
    and the declared effect envelope. *)

val entry : id:string -> name:string -> fp:Footprint.t -> entry
val entry_id : entry -> string
val entry_name : entry -> string
val entry_fp : entry -> Footprint.t

type t

val make : ?extra:(string -> string -> bool) -> unit -> t
(** [make ?extra ()]: a fresh oracle.  [extra a b] may certify the
    action pair [(a, b)] (by name) independent beyond what footprint
    commutation shows — e.g. the analyzer's PCM-commutation rule.  It
    is queried in both orders.  Default: no extra certificates. *)

val independent : t -> entry -> entry -> bool
(** Declared independence: {!Footprint.commutes} on the envelopes, or
    an [extra] certificate for the name pair. *)

val note_skip : t -> unit
(** Account one sleep-set subtree skip (called by the scheduler). *)

val record_lie : t -> Crash.t -> unit
(** Record a refuted independence claim and count the demotion the
    scheduler performs in response. *)

val skipped : t -> int
(** Subtrees the sleep set pruned. *)

val demotions : t -> int
(** Times a lie forced a re-run with reduction off (0 or 1 per
    exploration; an oracle may be reused across initial states). *)

val lies : t -> Crash.t list
(** The recorded analyzer-lie diagnostics, oldest first. *)

val pp : Format.formatter -> t -> unit
