(** Partial-order reduction oracle for {!Sched.explore}.

    Interns schedulable moves into a dense integer space and
    precomputes the full independence relation — syntactic footprint
    commutation plus name-keyed algebraic certificates — into a flat
    byte matrix, so the scheduler's hot path decides independence with
    one byte load and tracks sleep sets as small int bitsets.  Also
    carries the reduction's runtime accounting: sleep-set skips,
    demotions, and the analyzer-lie diagnostics that caused them.  See
    docs/ANALYSIS.md §POR and DESIGN.md Section 14. *)

(** Immutable bitsets of interned move ids: the scheduler's sleep
    sets.  Canonical by construction (no trailing zero words), so
    {!Sleepset.equal} and {!Sleepset.hash} are order-insensitive
    O(words) operations fit for memo keys. *)
module Sleepset : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : t -> int -> bool

  val add : t -> int -> t
  (** Functional: returns a new set; the argument is unchanged. *)

  val equal : t -> t -> bool
  val hash : t -> int
  val cardinal : t -> int
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val of_list : int list -> t

  val elements : t -> int list
  (** Ascending. *)
end

type t

val make : ?extra:(string -> string -> bool) -> unit -> t
(** [make ?extra ()]: a fresh oracle.  [extra a b] may certify the
    action pair [(a, b)] (by name) independent beyond what footprint
    commutation shows — e.g. the analyzer's PCM-commutation rule.  It
    is queried in both orders, once per interned class pair (never per
    configuration).  Default: no extra certificates. *)

val intern_prog : t -> path:int -> name:string -> fp:Footprint.t -> int
(** The move id of a program move: [path] is the Par-spine position
    (root 1, left child [2p], right child [2p+1]), [name]/[fp] the
    action's name and declared envelope.  Idempotent: the same triple
    always returns the same id. *)

val intern_env :
  t ->
  label:Label.t ->
  trans:string ->
  index:int ->
  name:string Lazy.t ->
  int
(** The move id of an environment move: the concurroid transition
    [trans] at [label], branch [index].  Its envelope is
    [Footprint.touches label] by construction.  [name] is the display
    name handed to the certificate hook, forced only when the (label,
    transition) class is first seen. *)

val independent : t -> int -> int -> bool
(** Declared independence of two interned moves — a precomputed byte
    load: {!Footprint.commutes} on the class envelopes, or an [extra]
    certificate for the name pair. *)

val restrict : t -> Sleepset.t -> executed:int -> Sleepset.t
(** The sleep set a child configuration inherits after executing a
    move: exactly the slept moves independent of it.  Returns the
    input unchanged when nothing is dropped. *)

val n_classes : t -> int
(** Distinct (name, footprint) / (label, transition) classes interned. *)

val n_moves : t -> int
(** Distinct move ids interned. *)

val move_name : t -> int -> string
(** The display name of an interned move's class. *)

val move_fp : t -> int -> Footprint.t
(** The declared envelope of an interned move's class. *)

val move_allowed : t -> int -> (Label.Set.t * Label.t array) option
(** [Footprint.labels (move_fp t m)], cached per class at intern time:
    the labels a move of this class may touch ([None] for [Top]), as
    both the set (for the precise mutation diff) and a flat array (the
    confinement pre-filter scans it linearly — the sets are tiny).  The
    scheduler's analyzer-lie check reads this on every executed program
    move, so it must not allocate. *)

val note_skip : t -> unit
(** Account one sleep-set subtree skip (called by the scheduler). *)

val record_lie : t -> Crash.t -> unit
(** Record a refuted independence claim and count the demotion the
    scheduler performs in response. *)

val skipped : t -> int
(** Subtrees the sleep set pruned. *)

val demotions : t -> int
(** Times a lie forced a re-run with reduction off (0 or 1 per
    exploration; an oracle may be reused across initial states). *)

val lies : t -> Crash.t list
(** The recorded analyzer-lie diagnostics, oldest first. *)

val pp : Format.formatter -> t -> unit
