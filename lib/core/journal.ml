(* Durable verification: an append-only, CRC-checksummed, length-
   prefixed binary write-ahead journal of exploration progress.

   Layout: a journal directory holds [journal.fcslj] (the WAL) and
   [snapshot.fcslj] (an atomically-replaced compaction).  Both start
   with an 8-byte magic; every record is framed as

     u32-le payload length | u32-le CRC-32(payload) | payload

   so a torn write — a record cut anywhere by SIGKILL, OOM-kill or
   power loss — is detected on open and the WAL physically truncated
   back to the last intact record.  Corruption is degradation (the
   dropped suffix is simply re-verified), never a wrong verdict:
   nothing downstream ever consumes an unchecksummed byte.

   Durability granularity is the verification unit — one initial state
   of one spec under one ladder tier (State_done), plus whole spec
   verdicts (Spec_done).  Configuration memo keys are process-local
   (thread-tree atoms are identified by closure identity, see
   Sched.keyer), so they cannot name work across a process boundary;
   Frontier records carry the explored-configuration counts for
   observability and the kill9 chaos mode's monotonicity assertion.

   Group commit: appends are serialized into a pending buffer and
   written/fsynced per the fsync policy (always / at most every t
   seconds / never), so an armed-but-idle journal costs an in-memory
   serialization per record and a rare syscall.  The handle is
   domain-safe: one mutex guards the buffer, the index and the fd. *)

type fsync_policy = Always | Interval of float | Never

let fsync_policy_name = function
  | Always -> "always"
  | Interval s -> Fmt.str "interval:%g" s
  | Never -> "never"

let default_interval_s = 0.05

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval default_interval_s)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
    match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
    | Some t when t >= 0. -> Ok (Interval t)
    | _ -> Error (Fmt.str "bad fsync interval %S" s))
  | _ -> Error (Fmt.str "unknown fsync policy %S (always|interval[:SECS]|never)" s)

type budget_image = {
  bi_elapsed_s : float;
  bi_states : int;
  bi_major_words : int;
  bi_tripped : string option;
}

type state_image = {
  si_outcomes : int;
  si_diverged : int;
  si_complete : bool;
  si_states : int;
  si_failures : Crash.t list;
}

type report_image = {
  ri_spec : string;
  ri_params : string;
  ri_tier : string;
  ri_seed : int option;
  ri_initial_states : int;
  ri_outcomes : int;
  ri_diverged : int;
  ri_complete : bool;
  ri_states : int; (* configurations explored under the active reductions *)
  ri_failures : (int * Crash.t) list;
  ri_worker_crashes : (int * Crash.t) list;
  ri_budget : budget_image option;
}

type record =
  | Meta of { version : int; created_s : float }
  | Spec_begin of { spec : string; params : string }
  | Tier_begin of { spec : string; tier : string; seed : int option }
  | Frontier of { spec : string; tier : string; states : int }
  | Counterexample of { spec : string; crash : Crash.t }
  | State_done of { spec : string; tier : string; index : int;
                    state : state_image }
  | Spec_done of report_image

let pp_record ppf = function
  | Meta m -> Fmt.pf ppf "meta v%d" m.version
  | Spec_begin s -> Fmt.pf ppf "spec-begin %s [%s]" s.spec s.params
  | Tier_begin t ->
    Fmt.pf ppf "tier-begin %s %s%a" t.spec t.tier
      Fmt.(option (fun ppf -> pf ppf " seed=%d"))
      t.seed
  | Frontier f -> Fmt.pf ppf "frontier %s %s %d states" f.spec f.tier f.states
  | Counterexample c ->
    Fmt.pf ppf "counterexample %s: %a" c.spec Crash.pp c.crash
  | State_done s ->
    Fmt.pf ppf "state-done %s %s #%d (%d outcomes, %d failures)" s.spec s.tier
      s.index s.state.si_outcomes
      (List.length s.state.si_failures)
  | Spec_done r ->
    Fmt.pf ppf "spec-done %s tier=%s (%d outcomes, %d failures)" r.ri_spec
      r.ri_tier r.ri_outcomes
      (List.length r.ri_failures)

(* --- CRC-32 (IEEE 802.3, reflected) ---------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          t.(Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code ch))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- Binary record encoding ------------------------------------------ *)

let magic = "FCSLJ001"

(* v2: [state_image]/[report_image] gained explored-state counts
   ([si_states]/[ri_states]).  A journal written by a different version
   is not replayed: its Meta record fails decoding (below), so recovery
   truncates at it and everything re-verifies — degradation, never a
   wrong verdict. *)
let version = 2

(* Any record longer than this is treated as corruption, bounding what
   a garbage length prefix can make the scanner allocate. *)
let max_record_bytes = 1 lsl 26

exception Corrupt

let w_u8 = Buffer.add_uint8
let w_int b n = Buffer.add_int64_le b (Int64.of_int n)
let w_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w b v

let w_list w b xs =
  w_int b (List.length xs);
  List.iter (w b) xs

(* Crashes travel as their JSON rendering: one serialization shared
   with reports and the CLI, and round-tripped by [Crash.of_json]. *)
let w_crash b c = w_str b (Crash.to_json c)

type rd = { rs : string; mutable rp : int }

let r_u8 rd =
  if rd.rp >= String.length rd.rs then raise Corrupt;
  let c = Char.code rd.rs.[rd.rp] in
  rd.rp <- rd.rp + 1;
  c

let r_int rd =
  if rd.rp + 8 > String.length rd.rs then raise Corrupt;
  let v = Int64.to_int (String.get_int64_le rd.rs rd.rp) in
  rd.rp <- rd.rp + 8;
  v

let r_float rd =
  if rd.rp + 8 > String.length rd.rs then raise Corrupt;
  let v = Int64.float_of_bits (String.get_int64_le rd.rs rd.rp) in
  rd.rp <- rd.rp + 8;
  v

let r_bool rd = r_u8 rd <> 0

let r_str rd =
  let n = r_int rd in
  if n < 0 || n > max_record_bytes || rd.rp + n > String.length rd.rs then
    raise Corrupt;
  let s = String.sub rd.rs rd.rp n in
  rd.rp <- rd.rp + n;
  s

let r_opt r rd = match r_u8 rd with 0 -> None | 1 -> Some (r rd) | _ -> raise Corrupt

let r_list r rd =
  let n = r_int rd in
  if n < 0 || n > 1_000_000 then raise Corrupt;
  List.init n (fun _ -> r rd)

let r_crash rd =
  match Crash.of_json (r_str rd) with Ok c -> c | Error _ -> raise Corrupt

let w_state b (s : state_image) =
  w_int b s.si_outcomes;
  w_int b s.si_diverged;
  w_bool b s.si_complete;
  w_int b s.si_states;
  w_list w_crash b s.si_failures

let r_state rd =
  let si_outcomes = r_int rd in
  let si_diverged = r_int rd in
  let si_complete = r_bool rd in
  let si_states = r_int rd in
  let si_failures = r_list r_crash rd in
  { si_outcomes; si_diverged; si_complete; si_states; si_failures }

let w_budget b (s : budget_image) =
  w_float b s.bi_elapsed_s;
  w_int b s.bi_states;
  w_int b s.bi_major_words;
  w_opt w_str b s.bi_tripped

let r_budget rd =
  let bi_elapsed_s = r_float rd in
  let bi_states = r_int rd in
  let bi_major_words = r_int rd in
  let bi_tripped = r_opt r_str rd in
  { bi_elapsed_s; bi_states; bi_major_words; bi_tripped }

let w_ixcrash b (i, c) =
  w_int b i;
  w_crash b c

let r_ixcrash rd =
  let i = r_int rd in
  let c = r_crash rd in
  (i, c)

let encode (r : record) : string =
  let b = Buffer.create 96 in
  (match r with
  | Meta m ->
    w_u8 b 1;
    w_int b m.version;
    w_float b m.created_s
  | Spec_begin s ->
    w_u8 b 2;
    w_str b s.spec;
    w_str b s.params
  | Tier_begin t ->
    w_u8 b 3;
    w_str b t.spec;
    w_str b t.tier;
    w_opt w_int b t.seed
  | Frontier f ->
    w_u8 b 4;
    w_str b f.spec;
    w_str b f.tier;
    w_int b f.states
  | Counterexample c ->
    w_u8 b 5;
    w_str b c.spec;
    w_crash b c.crash
  | State_done s ->
    w_u8 b 6;
    w_str b s.spec;
    w_str b s.tier;
    w_int b s.index;
    w_state b s.state
  | Spec_done ri ->
    w_u8 b 7;
    w_str b ri.ri_spec;
    w_str b ri.ri_params;
    w_str b ri.ri_tier;
    w_opt w_int b ri.ri_seed;
    w_int b ri.ri_initial_states;
    w_int b ri.ri_outcomes;
    w_int b ri.ri_diverged;
    w_bool b ri.ri_complete;
    w_int b ri.ri_states;
    w_list w_ixcrash b ri.ri_failures;
    w_list w_ixcrash b ri.ri_worker_crashes;
    w_opt w_budget b ri.ri_budget);
  Buffer.contents b

let decode (payload : string) : record =
  let rd = { rs = payload; rp = 0 } in
  let r =
    match r_u8 rd with
    | 1 ->
      let v = r_int rd in
      (* Another version's records are not replayable; stopping the scan
         at its Meta truncates the whole generation, the safe direction. *)
      if v <> version then raise Corrupt;
      let created_s = r_float rd in
      Meta { version = v; created_s }
    | 2 ->
      let spec = r_str rd in
      let params = r_str rd in
      Spec_begin { spec; params }
    | 3 ->
      let spec = r_str rd in
      let tier = r_str rd in
      let seed = r_opt r_int rd in
      Tier_begin { spec; tier; seed }
    | 4 ->
      let spec = r_str rd in
      let tier = r_str rd in
      let states = r_int rd in
      Frontier { spec; tier; states }
    | 5 ->
      let spec = r_str rd in
      let crash = r_crash rd in
      Counterexample { spec; crash }
    | 6 ->
      let spec = r_str rd in
      let tier = r_str rd in
      let index = r_int rd in
      let state = r_state rd in
      State_done { spec; tier; index; state }
    | 7 ->
      let ri_spec = r_str rd in
      let ri_params = r_str rd in
      let ri_tier = r_str rd in
      let ri_seed = r_opt r_int rd in
      let ri_initial_states = r_int rd in
      let ri_outcomes = r_int rd in
      let ri_diverged = r_int rd in
      let ri_complete = r_bool rd in
      let ri_states = r_int rd in
      let ri_failures = r_list r_ixcrash rd in
      let ri_worker_crashes = r_list r_ixcrash rd in
      let ri_budget = r_opt r_budget rd in
      Spec_done
        {
          ri_spec; ri_params; ri_tier; ri_seed; ri_initial_states;
          ri_outcomes; ri_diverged; ri_complete; ri_states; ri_failures;
          ri_worker_crashes; ri_budget;
        }
    | _ -> raise Corrupt
  in
  if rd.rp <> String.length payload then raise Corrupt;
  r

let frame (r : record) : string =
  let payload = encode r in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* --- File scanning and recovery --------------------------------------- *)

let wal_path dir = Filename.concat dir "journal.fcslj"
let snapshot_path dir = Filename.concat dir "snapshot.fcslj"

let read_file path : string option =
  match In_channel.open_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () -> Some (In_channel.input_all ic))
  | exception Sys_error _ -> None

let has_magic s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

(* Scan framed records after the magic; stop (without raising) at the
   first frame that is short, oversized, checksum-broken or
   undecodable.  Returns the valid records and the file offset of the
   first invalid byte — the recovery truncation point. *)
let scan (s : string) : record list * int =
  let len = String.length s in
  let pos = ref (String.length magic) in
  let out = ref [] in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > len then stop := true
    else begin
      let n = Int32.to_int (String.get_int32_le s !pos) in
      let crc = String.get_int32_le s (!pos + 4) in
      if n < 1 || n > max_record_bytes || !pos + 8 + n > len then stop := true
      else
        let payload = String.sub s (!pos + 8) n in
        if crc32 payload <> crc then stop := true
        else
          match decode payload with
          | r ->
            out := r :: !out;
            pos := !pos + 8 + n
          | exception Corrupt -> stop := true
    end
  done;
  (List.rev !out, !pos)

let scan_file path : record list * int * int =
  match read_file path with
  | None -> ([], String.length magic, -1)
  | Some s when has_magic s ->
    let records, valid_end = scan s in
    (records, valid_end, String.length s)
  | Some s ->
    (* header itself corrupt: everything is a torn tail *)
    ([], String.length magic, String.length s)

let read dir : record list * int =
  let snap, _, _ = scan_file (snapshot_path dir) in
  let wal, valid_end, file_len = scan_file (wal_path dir) in
  (snap @ wal, if file_len < 0 then 0 else file_len - valid_end)

(* --- The live index --------------------------------------------------- *)

(* What appended and recovered records mean for lookups, maintained
   incrementally so resume decisions don't rescan record lists.  A
   [Spec_begin] whose params differ from the spec's previous ones
   invalidates that spec's unit-level records: results computed under
   different engine parameters are not replayable. *)
type index = {
  ix_spec_done : (string * string, report_image) Hashtbl.t;
  ix_state_done : (string * string * int, state_image) Hashtbl.t;
  ix_params : (string, string) Hashtbl.t;
  ix_tier : (string, string * int option) Hashtbl.t;
  ix_frontier : (string * string, int) Hashtbl.t;
  ix_cex : (string, Crash.t list) Hashtbl.t;
  mutable ix_spec_order : string list; (* first-appearance, newest first *)
}

let index_create () =
  {
    ix_spec_done = Hashtbl.create 32;
    ix_state_done = Hashtbl.create 128;
    ix_params = Hashtbl.create 32;
    ix_tier = Hashtbl.create 32;
    ix_frontier = Hashtbl.create 32;
    ix_cex = Hashtbl.create 8;
    ix_spec_order = [];
  }

let index_seen ix spec =
  if not (List.mem spec ix.ix_spec_order) then
    ix.ix_spec_order <- spec :: ix.ix_spec_order

let index_invalidate_units ix spec =
  Hashtbl.filter_map_inplace
    (fun (sp, _, _) v -> if sp = spec then None else Some v)
    ix.ix_state_done;
  Hashtbl.remove ix.ix_tier spec;
  Hashtbl.remove ix.ix_cex spec;
  Hashtbl.filter_map_inplace
    (fun (sp, _) v -> if sp = spec then None else Some v)
    ix.ix_frontier

let index_record ix = function
  | Meta _ -> ()
  | Spec_begin { spec; params } ->
    index_seen ix spec;
    (match Hashtbl.find_opt ix.ix_params spec with
    | Some p when p <> params -> index_invalidate_units ix spec
    | _ -> ());
    Hashtbl.replace ix.ix_params spec params
  | Tier_begin { spec; tier; seed } ->
    index_seen ix spec;
    Hashtbl.replace ix.ix_tier spec (tier, seed)
  | Frontier { spec; tier; states } ->
    Hashtbl.replace ix.ix_frontier (spec, tier) states
  | Counterexample { spec; crash } ->
    index_seen ix spec;
    let prev = Option.value (Hashtbl.find_opt ix.ix_cex spec) ~default:[] in
    if not (List.exists (Crash.equal crash) prev) then
      Hashtbl.replace ix.ix_cex spec (prev @ [ crash ])
  | State_done { spec; tier; index; state } ->
    index_seen ix spec;
    Hashtbl.replace ix.ix_state_done (spec, tier, index) state
  | Spec_done ri ->
    index_seen ix ri.ri_spec;
    Hashtbl.replace ix.ix_spec_done (ri.ri_spec, ri.ri_params) ri

(* The records worth keeping at compaction: completed verdicts, every
   unit-level result (kept even once subsumed by a Spec_done, so the
   durable-unit count is monotone across compactions — the kill9 chaos
   invariant), in-flight bookkeeping, and the last frontier per
   attempt.  Superseded frontiers, old metas and repeated begin
   markers — the unbounded-over-time records — are dropped. *)
let index_live_records ix : record list =
  let specs = List.rev ix.ix_spec_order in
  let done_params spec =
    Hashtbl.fold
      (fun (sp, params) _ acc -> if sp = spec then params :: acc else acc)
      ix.ix_spec_done []
  in
  Meta { version; created_s = Unix.gettimeofday () }
  :: List.concat_map
       (fun spec ->
         let begins =
           match Hashtbl.find_opt ix.ix_params spec with
           | Some params when not (List.mem params (done_params spec)) ->
             [ Spec_begin { spec; params } ]
           | _ -> []
         in
         let tiers =
           match Hashtbl.find_opt ix.ix_tier spec with
           | Some (tier, seed) -> [ Tier_begin { spec; tier; seed } ]
           | None -> []
         in
         let states =
           Hashtbl.fold
             (fun (sp, tier, index) state acc ->
               if sp = spec then State_done { spec; tier; index; state } :: acc
               else acc)
             ix.ix_state_done []
           |> List.sort compare
         in
         let fronts =
           Hashtbl.fold
             (fun (sp, tier) states acc ->
               if sp = spec then Frontier { spec; tier; states } :: acc else acc)
             ix.ix_frontier []
           |> List.sort compare
         in
         let cexs =
           List.map
             (fun crash -> Counterexample { spec; crash })
             (Option.value (Hashtbl.find_opt ix.ix_cex spec) ~default:[])
         in
         let dones =
           Hashtbl.fold
             (fun (sp, _) ri acc -> if sp = spec then Spec_done ri :: acc else acc)
             ix.ix_spec_done []
           |> List.sort compare
         in
         begins @ tiers @ states @ fronts @ cexs @ dones)
       specs

(* --- The handle -------------------------------------------------------- *)

(* The syscall boundary, pluggable so the chaos harness can inject
   ENOSPC/EIO/short writes/fsync failures without touching a real
   filesystem knob.  Everything the journal persists flows through one
   of these three hooks. *)
type io = {
  io_write : Unix.file_descr -> string -> int -> int -> int;
      (* write_substring: may write fewer bytes than asked *)
  io_fsync : Unix.file_descr -> unit;
  io_rename : string -> string -> unit;
}

let real_io =
  {
    io_write = Unix.write_substring;
    io_fsync = Unix.fsync;
    io_rename = Unix.rename;
  }

type t = {
  t_dir : string;
  t_fsync : fsync_policy;
  t_compact_every : int;
  t_recovered : record list;
  t_truncated : int;
  t_io : io;
  mu : Mutex.t;
  ix : index;
  mutable fd : Unix.file_descr;
  pending : Buffer.t;
  mutable last_sync : float;
  mutable unsynced : bool;
  mutable since_compact : int;
  mutable closed : bool;
  mutable failed : Crash.t option;
      (* first unabsorbable I/O fault: the journal is wounded — it
         stops persisting (in-memory lookups keep working) and every
         later mutation is a no-op.  Degradation, never corruption:
         whatever half-record the fault left on disk is dropped by
         CRC recovery on the next open. *)
}

let dir t = t.t_dir
let fsync t = t.t_fsync
let recovered t = t.t_recovered
let truncated_bytes t = t.t_truncated

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A short write that returns 0 would loop forever; treat it as the
   I/O error it is.  Partial writes — real or injected — just continue
   from the written offset. *)
let write_all_io io fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    let k = io.io_write fd s !written (n - !written) in
    if k <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", "zero-byte write"));
    written := !written + k
  done

(* Run a mutation under the wounded-journal discipline: once [failed]
   is set nothing touches the disk again, and the first I/O fault to
   escape the hooks sets it, as a structured [Crash.Io_fault].  The
   caller's in-memory state (index, pending buffer) is already updated
   by then, so lookups stay truthful for this process; the next open
   simply re-verifies what never landed. *)
let absorb_io t f =
  match t.failed with
  | Some _ -> ()
  | None -> (
    try f ()
    with Unix.Unix_error (e, fn, _) ->
      t.failed <-
        Some
          (Crash.make Crash.Io_fault
             (Printf.sprintf "journal %s: %s (%s)" fn (Unix.error_message e)
                t.t_dir)))

(* Flush the pending buffer to the fd; [sync] additionally fsyncs. *)
let commit_locked t ~sync =
  absorb_io t (fun () ->
      if Buffer.length t.pending > 0 then begin
        write_all_io t.t_io t.fd (Buffer.contents t.pending);
        Buffer.clear t.pending;
        t.unsynced <- true
      end;
      if sync && t.unsynced then begin
        t.t_io.io_fsync t.fd;
        t.unsynced <- false
      end;
      t.last_sync <- Unix.gettimeofday ())

let fsync_dir io dirpath =
  (* best effort: not every filesystem supports fsync on a directory *)
  match Unix.openfile dirpath [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try io.io_fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd
  | exception Unix.Unix_error _ -> ()

let compact_locked t =
  commit_locked t ~sync:(t.t_fsync <> Never);
  absorb_io t (fun () ->
      let tmp = snapshot_path t.t_dir ^ ".tmp" in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let b = Buffer.create 4096 in
      Buffer.add_string b magic;
      List.iter (fun r -> Buffer.add_string b (frame r)) (index_live_records t.ix);
      (match write_all_io t.t_io fd (Buffer.contents b) with
      | () -> ()
      | exception e ->
        (* never leak the tmp fd; the half-written tmp file is inert
           until a successful rename, so the snapshot stays intact *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
      if t.t_fsync <> Never then t.t_io.io_fsync fd;
      Unix.close fd;
      t.t_io.io_rename tmp (snapshot_path t.t_dir);
      if t.t_fsync <> Never then fsync_dir t.t_io t.t_dir;
      (* the snapshot now owns every live record: reset the WAL *)
      Unix.ftruncate t.fd (String.length magic);
      ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
      if t.t_fsync <> Never then t.t_io.io_fsync t.fd;
      t.unsynced <- false;
      t.since_compact <- 0)

let openj ?(fsync = Interval default_interval_s) ?(compact_every = 2048)
    ?(resume = false) ?(io = real_io) dirpath : t =
  mkdirs dirpath;
  if not resume then begin
    (try Sys.remove (wal_path dirpath) with Sys_error _ -> ());
    (try Sys.remove (snapshot_path dirpath) with Sys_error _ -> ());
    try Sys.remove (snapshot_path dirpath ^ ".tmp") with Sys_error _ -> ()
  end;
  let snap_records, _, _ = scan_file (snapshot_path dirpath) in
  let wal_records, valid_end, file_len = scan_file (wal_path dirpath) in
  let fd =
    Unix.openfile (wal_path dirpath) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  (* an I/O fault this early wounds the handle rather than raising:
     the caller gets a journal that remembers nothing durable but
     still answers lookups and absorbs appends *)
  let failed0 = ref None in
  (try
     if file_len < 0 || file_len < String.length magic then begin
       (* fresh or headerless file: (re)write the magic *)
       Unix.ftruncate fd 0;
       write_all_io io fd magic
     end
     else
       (* recovery: physically drop the torn/corrupt tail *)
       Unix.ftruncate fd valid_end;
     ignore (Unix.lseek fd 0 Unix.SEEK_END)
   with Unix.Unix_error (e, fn, _) ->
     failed0 :=
       Some
         (Crash.make Crash.Io_fault
            (Printf.sprintf "journal %s: %s (%s)" fn (Unix.error_message e)
               dirpath)));
  let recovered = snap_records @ wal_records in
  let ix = index_create () in
  List.iter (index_record ix) recovered;
  let t =
    {
      t_dir = dirpath;
      t_fsync = fsync;
      t_compact_every = max 16 compact_every;
      t_recovered = recovered;
      t_truncated = (if file_len < 0 then 0 else max 0 (file_len - valid_end));
      t_io = io;
      mu = Mutex.create ();
      ix;
      fd;
      pending = Buffer.create 4096;
      last_sync = Unix.gettimeofday ();
      unsynced = false;
      since_compact = List.length wal_records;
      closed = false;
      failed = !failed0;
    }
  in
  (* one Meta per process generation appending to this journal; it
     rides the pending buffer and commits with the first policy-driven
     flush (or at close) *)
  let meta = Meta { version; created_s = Unix.gettimeofday () } in
  index_record t.ix meta;
  Buffer.add_string t.pending (frame meta);
  t.since_compact <- t.since_compact + 1;
  t

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let append_locked t r =
  if t.closed then invalid_arg "Journal.append: closed";
  (* the in-memory index always advances — this process's lookups stay
     truthful even when a wounded journal persists nothing *)
  index_record t.ix r;
  if t.failed = None then begin
    Buffer.add_string t.pending (frame r);
    t.since_compact <- t.since_compact + 1;
    (match t.t_fsync with
    | Always -> commit_locked t ~sync:true
    | Interval s ->
      if Unix.gettimeofday () -. t.last_sync >= s then
        commit_locked t ~sync:true
      else if Buffer.length t.pending >= 1 lsl 18 then
        commit_locked t ~sync:false
    | Never ->
      if Buffer.length t.pending >= 1 lsl 18 then commit_locked t ~sync:false);
    if t.failed = None && t.since_compact >= t.t_compact_every then
      compact_locked t
  end

let append t r = locked t (fun () -> append_locked t r)
let flush t = locked t (fun () -> commit_locked t ~sync:(t.t_fsync <> Never))
let compact t = locked t (fun () -> compact_locked t)
let io_failure t = locked t (fun () -> t.failed)
let pending_bytes t = locked t (fun () -> Buffer.length t.pending)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        commit_locked t ~sync:(t.t_fsync <> Never);
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        t.closed <- true
      end)

(* --- Lookups ----------------------------------------------------------- *)

let find_spec_done t ~spec ~params =
  locked t (fun () -> Hashtbl.find_opt t.ix.ix_spec_done (spec, params))

(* Digest-keyed lookup for the service's memo path: the caller knows
   the cache key but not which spec recorded it.  Torn-tail recovery
   already dropped any half-written verdict before the index was built,
   so a digest whose record was torn reads as [None] — degradation,
   never a stale answer.  Service digests embed the case name, so at
   most one record matches; if several specs ever shared a digest the
   first hit is returned. *)
let verdict_of_digest t ~digest =
  locked t (fun () ->
      Hashtbl.fold
        (fun (_, params) ri acc ->
          match acc with
          | Some _ -> acc
          | None -> if String.equal params digest then Some ri else None)
        t.ix.ix_spec_done None)

let find_state_done t ~spec ~tier ~index =
  locked t (fun () -> Hashtbl.find_opt t.ix.ix_state_done (spec, tier, index))

let last_tier t ~spec = locked t (fun () -> Hashtbl.find_opt t.ix.ix_tier spec)
let spec_params t ~spec = locked t (fun () -> Hashtbl.find_opt t.ix.ix_params spec)

let completed_units t =
  locked t (fun () ->
      Hashtbl.length t.ix.ix_state_done + Hashtbl.length t.ix.ix_spec_done)

let counterexamples t ~spec =
  locked t (fun () ->
      Option.value (Hashtbl.find_opt t.ix.ix_cex spec) ~default:[])

(* --- Writers ----------------------------------------------------------- *)

(* Journaled counterexamples per spec are deduplicated (memoized replay
   re-emits crashes) and capped: they are durable evidence for [jobs
   status], not the failure accounting — that lives in State_done /
   Spec_done records. *)
let max_journaled_cex = 32

type writer = {
  w_j : t;
  w_spec : string;
  w_tier : string;
  w_every : int;
  w_count : int Atomic.t;
}

let writer t ~spec ~tier ?(every = 1024) () =
  { w_j = t; w_spec = spec; w_tier = tier; w_every = max 1 every;
    w_count = Atomic.make 0 }

let writer_states w = Atomic.get w.w_count

let writer_tick w =
  let n = Atomic.fetch_and_add w.w_count 1 + 1 in
  if n mod w.w_every = 0 then
    append w.w_j (Frontier { spec = w.w_spec; tier = w.w_tier; states = n })

let writer_crash w crash =
  let t = w.w_j in
  locked t (fun () ->
      let prev =
        Option.value (Hashtbl.find_opt t.ix.ix_cex w.w_spec) ~default:[]
      in
      if
        List.length prev < max_journaled_cex
        && not (List.exists (Crash.equal crash) prev)
      then append_locked t (Counterexample { spec = w.w_spec; crash }))

(* --- Job status (the [fcsl jobs] CLI) ---------------------------------- *)

type job = {
  j_spec : string;
  j_params : string;
  j_status : [ `Complete | `Degraded | `Failed | `In_flight ];
  j_tier : string option;
  j_units : int;
  j_states : int;
  j_failures : int;
  j_budget : budget_image option;
}

let jobs_of_records records : job list =
  let ix = index_create () in
  List.iter (index_record ix) records;
  List.rev_map
    (fun spec ->
      let params = Option.value (Hashtbl.find_opt ix.ix_params spec) ~default:"" in
      let dones =
        Hashtbl.fold
          (fun (sp, _) ri acc -> if sp = spec then ri :: acc else acc)
          ix.ix_spec_done []
      in
      let units =
        Hashtbl.fold
          (fun (sp, _, _) _ acc -> if sp = spec then acc + 1 else acc)
          ix.ix_state_done 0
        + List.length dones
      in
      let states =
        Hashtbl.fold
          (fun (sp, _) n acc -> if sp = spec then max n acc else acc)
          ix.ix_frontier 0
      in
      match dones with
      | ri :: _ ->
        let failed = ri.ri_failures <> [] || ri.ri_worker_crashes <> [] in
        let tripped =
          match ri.ri_budget with
          | Some b -> b.bi_tripped <> None
          | None -> false
        in
        {
          j_spec = spec;
          j_params = (if params = "" then ri.ri_params else params);
          j_status =
            (if failed then `Failed
             else if tripped then `Degraded
             else `Complete);
          j_tier = Some ri.ri_tier;
          j_units = units;
          j_states = max states ri.ri_outcomes;
          j_failures = List.length ri.ri_failures;
          j_budget = ri.ri_budget;
        }
      | [] ->
        {
          j_spec = spec;
          j_params = params;
          j_status = `In_flight;
          j_tier = Option.map fst (Hashtbl.find_opt ix.ix_tier spec);
          j_units = units;
          j_states = states;
          j_failures =
            List.length
              (Option.value (Hashtbl.find_opt ix.ix_cex spec) ~default:[]);
          j_budget = None;
        })
    ix.ix_spec_order
  |> List.rev

let status_name = function
  | `Complete -> "complete"
  | `Degraded -> "degraded"
  | `Failed -> "FAILED"
  | `In_flight -> "in-flight"

let pp_job ppf j =
  Fmt.pf ppf "%-36s %-9s %-10s %6d units %8d states %3d failure%s" j.j_spec
    (status_name j.j_status)
    (Option.value j.j_tier ~default:"-")
    j.j_units j.j_states j.j_failures
    (if j.j_failures = 1 then "" else "s");
  match j.j_budget with
  | Some b ->
    Fmt.pf ppf "  [%.2fs, %d states%s]" b.bi_elapsed_s b.bi_states
      (match b.bi_tripped with Some r -> ", tripped: " ^ r | None -> "")
  | None -> ()

let pp_jobs ppf jobs =
  if jobs = [] then Fmt.pf ppf "no journaled runs@."
  else begin
    Fmt.pf ppf "%-36s %-9s %-10s %s@." "Spec" "Status" "Tier" "Progress";
    List.iter (fun j -> Fmt.pf ppf "%a@." pp_job j) jobs
  end
