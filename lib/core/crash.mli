(** Structured failure values for the verification engine.

    Every way a run can crash — an unsafe action, broken ghost algebra,
    an envelope violation, an exhausted resource budget, an injected
    fault, or a broken engine invariant — is a [Crash.t] carrying a
    {!kind}, a human diagnosis, and the schedule that discovered it.
    The CLI maps kinds to its stable exit codes (see docs/ROBUSTNESS.md);
    [pp]/[to_json] give the textual and machine renderings. *)

type kind =
  | Unsafe_action  (** an enabled atomic action was unsafe in its state *)
  | Ghost_algebra
      (** contribution/hide/fork ghost algebra failed (joins, splits,
          subjective views) *)
  | Envelope_violation
      (** a declared footprint under-declared: a move mutated shared
          state outside it *)
  | Postcondition  (** a terminal state violates the spec's post *)
  | Budget_exhausted  (** a resource budget tripped (see {!Budget}) *)
  | Injected_fault  (** a fault injected by the chaos harness *)
  | Internal_error  (** an engine invariant broke (worker death, ...) *)
  | Analyzer_lie
      (** a statically claimed independence was refuted at runtime: a
          move mutated a label its declared footprint excludes, so the
          partial-order reducer demoted the run to full expansion *)
  | Deadlock
      (** a reachable configuration where every program move is
          disabled and no environment path can re-enable one: all
          threads are blocked for good.  The message carries the
          held-lock set and the blocked moves (see {!Sched.explore}'s
          stuck-state detector). *)
  | Protocol_error
      (** a malformed or unreadable wire frame on the verification
          service's socket protocol: bad JSON, a non-object frame, an
          unknown op, or a request missing required fields.  The daemon
          answers these with a structured error frame carrying this
          crash (see docs/SERVICE.md) instead of dropping the
          connection. *)
  | Io_fault
      (** a journal syscall failed: ENOSPC/EIO on a write, a short
          write that could not complete, a failed fsync or rename.
          The journal absorbs the fault — it stops persisting and
          exposes the crash via {!Journal.io_failure} — so
          verification continues and verdicts are computed fresh
          instead of flipped or phantom (docs/SERVICE.md §6). *)

val kind_name : kind -> string
(** Stable kebab-case name: ["unsafe-action"], ["ghost-algebra"], ... *)

val pp_kind : Format.formatter -> kind -> unit

exception Injected of string
(** The exception fault-injection harnesses raise inside workers and
    exploration hooks; the engine classifies it as {!Injected_fault}
    (anything else escaping a worker is {!Internal_error}). *)

type t

val make : ?trace:string list -> kind -> string -> t
(** [make ?trace kind msg]: [trace] is the discovering schedule, oldest
    step first (default: none recorded). *)

val of_exn : exn -> t
(** Classify an exception caught at a supervision boundary:
    {!Injected} maps to {!Injected_fault}, everything else to
    {!Internal_error} (with [Printexc.to_string] as the message). *)

val kind : t -> kind
val message : t -> string
(** The diagnosis, without the schedule annotation. *)

val trace : t -> string list
(** The discovering schedule, oldest first (possibly empty). *)

val with_trace : string list -> t -> t
(** Replace the recorded schedule. *)

val equal : t -> t -> bool
(** Kind and message equality; traces are first-discovery artifacts and
    are ignored (memoized replay preserves messages, not schedules). *)

val pp : Format.formatter -> t -> unit
(** ["<kind>: <msg> [schedule: s1 ; s2]"]. *)

val to_json : t -> string
(** One-line JSON object: [{"kind": ..., "msg": ..., "schedule": [...]}]. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [None] on an unknown name. *)

val of_json : string -> (t, string) result
(** Parse {!to_json}'s rendering back (a hand-rolled parser — the
    engine carries no JSON dependency).  Round-trips:
    [of_json (to_json c) = Ok c'] with [equal c c'] and
    [trace c' = trace c].  Unknown object keys are skipped; an unknown
    kind, malformed escape or trailing garbage is an [Error]. *)
