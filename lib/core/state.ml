(* Subjective states: finite maps from concurroid labels to slices.  An
   entangled state (Section 4.1) is simply a state with several labels;
   a single concurroid's state has one. *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

type t = Slice.t Label.Map.t

let empty : t = Label.Map.empty
let singleton l s : t = Label.Map.singleton l s
let add l s (st : t) = Label.Map.add l s st
let remove l (st : t) = Label.Map.remove l st
let mem l (st : t) = Label.Map.mem l st
let find l (st : t) = Label.Map.find_opt l st

let find_exn l (st : t) =
  match Label.Map.find_opt l st with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "State.find_exn: no label %a" Label.pp l)

let labels (st : t) = Label.Map.keys st
let bindings (st : t) = Label.Map.bindings st

let self l st = Slice.self (find_exn l st)
let joint l st = Slice.joint (find_exn l st)
let jaux l st = Slice.jaux (find_exn l st)
let other l st = Slice.other (find_exn l st)

let update l f (st : t) = add l (f (find_exn l st)) st
let with_self l a st = update l (Slice.with_self a) st
let with_joint l h st = update l (Slice.with_joint h) st
let with_jaux l a st = update l (Slice.with_jaux a) st
let with_other l a st = update l (Slice.with_other a) st

let valid (st : t) = Label.Map.for_all (fun _ s -> Slice.valid s) st

let transpose (st : t) = Label.Map.map Slice.transpose st

(* Erasure (Section 3.4): the real, physical heap of a state is the
   disjoint union of all joint heaps plus all heap-sorted parts of the
   auxiliary self/other components (thread-private real heaps live in
   the aux of the Priv concurroid).  [None] when the pieces collide,
   which a coherent state never exhibits. *)

let rec heap_part (a : Aux.t) : Heap.t option =
  match a with
  | Aux.Heap h -> Some h
  | Aux.Pair (x, y) ->
    Option.bind (heap_part x) (fun hx ->
        Option.bind (heap_part y) (fun hy -> Heap.union hx hy))
  | Aux.Unit | Aux.Nat _ | Aux.Mutex _ | Aux.Set _ | Aux.Hist _ ->
    Some Heap.empty

let erase (st : t) : Heap.t option =
  Label.Map.fold
    (fun _ s acc ->
      Option.bind acc (fun h ->
          Option.bind (Heap.union h (Slice.joint s)) (fun h ->
              Option.bind (heap_part (Slice.self s)) (fun hs ->
                  Option.bind (Heap.union h hs) (fun h ->
                      Option.bind (heap_part (Slice.other s)) (fun ho ->
                          Heap.union h ho))))))
    st (Some Heap.empty)

let erase_exn st =
  match erase st with
  | Some h -> h
  | None -> invalid_arg "State.erase_exn: colliding heaps"

let equal (st1 : t) (st2 : t) = Label.Map.equal Slice.equal st1 st2
let compare (st1 : t) (st2 : t) = Label.Map.compare Slice.compare st1 st2

(* Canonical: folds in ascending label order, consistent with {!equal}. *)
let hash (st : t) =
  Label.Map.fold
    (fun l s acc -> (((acc * 33) lxor Label.hash l) * 33) lxor Slice.hash s)
    st 5381

(* Avalanche mixer for per-label incremental hashing (Sched's config
   hash XORs one mixed word per label per component, so a binding's
   contribution can be patched out and back in as moves mutate single
   labels).  The finalizer is splitmix64's, truncated to OCaml's int;
   the salt separates components so equal values at the same label in
   different components do not cancel under XOR. *)
let mix ~salt l v =
  let x = (salt * 0x9e3779b9) lxor (Label.hash l * 0x85ebca6b) lxor v in
  let x = (x lxor (x lsr 30)) * 0x3f58476d1ce4e5b9 in
  let x = (x lxor (x lsr 27)) * 0x14d049bb133111eb in
  (x lxor (x lsr 31)) land max_int

(* Disjoint-label union, for entangled states. *)
let union (st1 : t) (st2 : t) : t option =
  if Label.Map.for_all (fun l _ -> not (mem l st2)) st1 then
    Some (Label.Map.union (fun _ s _ -> Some s) st1 st2)
  else None

let pp ppf (st : t) = Label.Map.pp Slice.pp ppf st
let to_string st = Fmt.str "%a" pp st
