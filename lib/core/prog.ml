(* The FCSL program DSL (paper, Figure 3 and Section 5.1): a monadic,
   deeply-embedded language of concurrent programs.  Typed returns come
   for free from the GADT; effects are atomic actions; [par] spawns two
   child threads; [ffix] is general recursion; [hide] installs a
   concurroid in a scoped manner over a chunk of private heap
   (Section 3.5).

   In the Coq development programs denote sets of action trees; here the
   same terms are given both an operational semantics with full
   interleaving (module {!Sched}) and a denotational unfolding into
   finite approximation trees (module {!Tree}). *)

open Fcsl_heap
module Aux = Fcsl_pcm.Aux

(* Hide specification (the ψ, Φ annotations of Section 3.5): which Priv
   label donates heap, the decoration selecting the donated subheap, the
   concurroid to install, and the initial [self] auxiliary value. *)
type hide_spec = {
  hs_priv : Label.t;
  hs_conc : Concurroid.t;
  hs_decor : Heap.t -> Heap.t;
  hs_init : Aux.t;
  hs_jaux : Aux.t; (* initial joint auxiliary state of the installed label *)
}

(* The subjective fork split of the Par rule: given the forking thread's
   contribution, produce (reserve, left child's, right child's) with the
   same join.  [None] when the requested split is not available. *)
type split = Contrib.t -> (Contrib.t * Contrib.t * Contrib.t) option

type _ t =
  | Ret : 'a -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t
  | Act : 'a Action.t -> 'a t
  | Par : 'b t * 'c t -> ('b * 'c) t
  | ParSplit : split * 'b t * 'c t -> ('b * 'c) t
  | Ffix : (('i -> 'o t) -> 'i -> 'o t) * 'i -> 'o t
  | Hide : hide_spec * 'a t -> 'a t
  | Annot : Footprint.t * 'a t -> 'a t
      (* A declared effect envelope for the subterm — the static
         analyzer's escape hatch for opaque closures (Bind continuations,
         Ffix bodies).  Semantically transparent; checked dynamically by
         {!Sched}'s envelope monitor when pruning is enabled. *)

(* Smart constructors; [let*] gives the monadic notation of Figure 3. *)

let ret v = Ret v
let bind p k = Bind (p, k)
let ( let* ) = bind
let seq p q = Bind (p, fun _ -> q)
let act a = Act a
let par p q = Par (p, q)
let par_split split p q = ParSplit (split, p, q)

(* A common split: move the named private-heap cells of [pv] to the
   children, keeping the rest (and all other labels) in reserve. *)
let split_cells ~pv ~to_left ~to_right : split =
 fun mine ->
  match Aux.as_heap (Contrib.get pv mine) with
  | None -> None
  | Some h ->
    let take cells =
      List.fold_left
        (fun acc p ->
          Option.bind acc (fun (taken, rest) ->
              match Heap.find p rest with
              | Some v -> Some (Heap.add p v taken, Heap.free p rest)
              | None -> None))
        (Some (Heap.empty, h))
        cells
    in
    Option.bind (take to_left) (fun (hl, rest) ->
        Option.bind
          (List.fold_left
             (fun acc p ->
               Option.bind acc (fun (taken, rest) ->
                   match Heap.find p rest with
                   | Some v -> Some (Heap.add p v taken, Heap.free p rest)
                   | None -> None))
             (Some (Heap.empty, rest))
             to_right)
          (fun (hr, rest) ->
            Some
              ( Contrib.set pv (Aux.heap rest) mine,
                Contrib.set pv (Aux.heap hl) Contrib.empty,
                Contrib.set pv (Aux.heap hr) Contrib.empty )))

(* [ffix f] ties the recursive knot: [f] receives the recursive
   procedure itself, as in [Program Definition span := ffix (fun loop x
   => ...)] of Figure 3. *)
let ffix f x = Ffix (f, x)
let hide spec body = Hide (spec, body)
let annot fp p = Annot (fp, p)

let cond b pt pf = if b then pt else pf

(* Unfold one layer of recursion. *)
let unfold_ffix : type i o. ((i -> o t) -> i -> o t) -> i -> o t =
 fun f x -> f (fun y -> Ffix (f, y)) x

(* Static size of the term (for reporting); recursion counts as one. *)
let rec size : type a. a t -> int = function
  | Ret _ -> 1
  | Bind (p, _) -> 1 + size p
  | Act _ -> 1
  | Par (p, q) -> 1 + size p + size q
  | ParSplit (_, p, q) -> 1 + size p + size q
  | Ffix (_, _) -> 1
  | Hide (_, p) -> 1 + size p
  | Annot (_, p) -> size p

(* Effect inference over the visible spine.  Continuations of [Bind] and
   bodies of [Ffix] are opaque OCaml closures, so without an [Annot]
   they infer [Top]; an [Annot] overrides whatever its subterm would
   infer (the monitor in {!Sched}, not this traversal, is what keeps
   declared envelopes honest).  [Hide] scopes away its installed label
   and touches the donating private label. *)
let rec footprint : type a. a t -> Footprint.t = function
  | Ret _ -> Footprint.bot
  | Act a -> Action.footprint a
  | Bind (p, _) -> Footprint.join (footprint p) Footprint.top
  | Par (p, q) -> Footprint.join (footprint p) (footprint q)
  | ParSplit (_, p, q) -> Footprint.join (footprint p) (footprint q)
  | Ffix (_, _) -> Footprint.top
  | Hide (hs, p) ->
    Footprint.join
      (Footprint.writes hs.hs_priv)
      (Footprint.remove (footprint p) (Concurroid.label hs.hs_conc))
  | Annot (fp, _) -> fp

(* A shallow printer: continuations are opaque, so only the evaluated
   spine is shown. *)
let rec pp : type a. Format.formatter -> a t -> unit =
 fun ppf -> function
  | Ret _ -> Fmt.string ppf "ret"
  | Bind (p, _) -> Fmt.pf ppf "%a;; _" pp p
  | Act a -> Fmt.string ppf (Action.name a)
  | Par (p, q) -> Fmt.pf ppf "(%a || %a)" pp p pp q
  | ParSplit (_, p, q) -> Fmt.pf ppf "(%a ||s %a)" pp p pp q
  | Ffix (_, _) -> Fmt.string ppf "ffix"
  | Hide (_, p) -> Fmt.pf ppf "hide { %a }" pp p
  | Annot (fp, p) -> Fmt.pf ppf "(%a : %a)" pp p Footprint.pp fp
