(** Dynamic values stored in heap cells.

    FCSL heaps are heterogeneous; this closed universe of runtime values
    covers every structure in the paper's case-study suite. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Ptr of Ptr.t
  | Pair of t * t
  | Triple of t * t * t

val unit : t
val bool : bool -> t
val int : int -> t
val ptr : Ptr.t -> t
val pair : t -> t -> t
val triple : t -> t -> t -> t

val node : marked:bool -> left:Ptr.t -> right:Ptr.t -> t
(** A graph node: the triple (marked-bit, left successor, right successor)
    of the paper's Section 2.1. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Checked projections}

    A [None] result signals a cell-shape violation. *)

val as_bool : t -> bool option
val as_int : t -> int option
val as_ptr : t -> Ptr.t option
val as_pair : t -> (t * t) option
val as_triple : t -> (t * t * t) option
val as_node : t -> (bool * Ptr.t * Ptr.t) option
