(** Heaps: finite maps from non-null pointers to dynamic values, forming a
    partial commutative monoid under disjoint union.

    Heaps are valid by construction (no null and no duplicate pointers);
    the PCM join {!union} is partial and returns [None] on domain
    overlap. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val singleton : Ptr.t -> Value.t -> t
(** Raises [Invalid_argument] on [null]. *)

val mem : Ptr.t -> t -> bool
val find : Ptr.t -> t -> Value.t option
val find_exn : Ptr.t -> t -> Value.t
val dom : t -> Ptr.t list
val dom_set : t -> Ptr.Set.t

val add : Ptr.t -> Value.t -> t -> t
(** [add p v h] binds [p] to [v], overwriting any previous binding.
    Raises [Invalid_argument] on [null]. *)

val update : Ptr.t -> Value.t -> t -> t
(** Like {!add} but requires [p] to be already bound. *)

val free : Ptr.t -> t -> t
(** Deallocation; the paper's [free x h]. *)

val disjoint : t -> t -> bool

val union : t -> t -> t option
(** Disjoint union — the heap PCM join; [None] when domains overlap. *)

val union_exn : t -> t -> t

val subheap : t -> t -> bool
(** [subheap h1 h2]: [h1]'s bindings all occur in [h2]. *)

val diff : t -> t -> t
(** [diff h1 h2] removes [h2]'s domain from [h1]. *)

val restrict : (Ptr.t -> bool) -> t -> t
(** Keep only cells whose pointer satisfies the predicate; used by hide
    decorations to select the donated subheap. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Canonical: equal heaps hash equally regardless of construction
    order.  Consistent with {!equal}; used by memoized exploration.
    O(1): the hash is a XOR of per-cell mixed words maintained
    incrementally by every operation, so hashing a heap on the
    scheduler's hot path costs a field read. *)

val of_list : (Ptr.t * Value.t) list -> t
(** Raises [Invalid_argument] on duplicate or null pointers. *)

val bindings : t -> (Ptr.t * Value.t) list
val fold : (Ptr.t -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Ptr.t -> Value.t -> unit) -> t -> unit
val for_all : (Ptr.t -> Value.t -> bool) -> t -> bool
val exists : (Ptr.t -> Value.t -> bool) -> t -> bool
val filter : (Ptr.t -> Value.t -> bool) -> t -> t

val fresh_ptr : t -> Ptr.t
(** A pointer strictly greater than everything allocated in the heap. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
