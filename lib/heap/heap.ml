(* Heaps: finite maps from non-null pointers to dynamic values, forming a
   partial commutative monoid under disjoint union (paper, Section 2.2.1).

   Unlike the Coq development — where invalid heaps are an explicit
   "undefined" element of the PCM — we keep heaps valid by construction
   and make the PCM join partial ([union] returns [None] on overlap).
   The [Undef] case of the paper's heap PCM is recovered in the [Pcm]
   layer by option-lifting. *)

(* The canonical hash rides along with the map, Zobrist-style: each
   cell contributes one avalanche-mixed word and the heap hash is their
   XOR, so every operation patches the hash in O(1) per touched cell
   and [hash] is a field read.  The scheduler's incremental
   configuration fingerprint re-hashes the joint heap at every touched
   label of every executed move; an O(n) fold there shows up directly
   in exploration wall-clock.  XOR of per-cell words is canonical
   (order-insensitive) and consistent with [equal]: equal heaps hold
   the same cells.  A cell can occur at most once (it's a map), so
   self-cancellation is impossible; cross-cell cancellations are
   ordinary hash collisions, resolved by the semantic equality every
   hash consumer falls back on. *)
type t = { m : Value.t Ptr.Map.t; h : int }

(* splitmix-style avalanche so nearby pointers/values spread over the
   whole word before they meet the XOR *)
let avalanche x =
  let x = x lxor (x lsr 16) in
  let x = x * 0x7feb352d in
  let x = x lxor (x lsr 15) in
  let x = x * 0x846ca68b in
  (x lxor (x lsr 16)) land max_int

let cell p v = avalanche ((Ptr.hash p * 0x9e3779b1) lxor (Value.hash v * 0x85ebca77))

(* Rebuild the hash from scratch — the fallback for the filter-shaped
   operations (hide decorations), never on the scheduler's hot path. *)
let hash_of m = Ptr.Map.fold (fun p v acc -> acc lxor cell p v) m 0

let empty : t = { m = Ptr.Map.empty; h = 0 }
let is_empty t = Ptr.Map.is_empty t.m
let cardinal t = Ptr.Map.cardinal t.m

let singleton p v =
  if Ptr.is_null p then invalid_arg "Heap.singleton: null pointer"
  else { m = Ptr.Map.singleton p v; h = cell p v }

let mem p (h : t) = Ptr.Map.mem p h.m
let find p (h : t) = Ptr.Map.find_opt p h.m

let find_exn p (h : t) =
  match Ptr.Map.find_opt p h.m with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Heap.find_exn: %a unbound" Ptr.pp p)

(* Domain as a list/set, folding over the keys directly: no intermediate
   bindings list. *)
let dom (h : t) = List.rev (Ptr.Map.fold (fun p _ acc -> p :: acc) h.m [])

let dom_set (h : t) =
  Ptr.Map.fold (fun p _ s -> Ptr.Set.add p s) h.m Ptr.Set.empty

let add p v (h : t) =
  if Ptr.is_null p then invalid_arg "Heap.add: null pointer"
  else
    let dropped =
      match Ptr.Map.find_opt p h.m with Some v0 -> cell p v0 | None -> 0
    in
    { m = Ptr.Map.add p v h.m; h = h.h lxor dropped lxor cell p v }

let update p v (h : t) =
  match Ptr.Map.find_opt p h.m with
  | Some v0 ->
    { m = Ptr.Map.add p v h.m; h = h.h lxor cell p v0 lxor cell p v }
  | None -> invalid_arg (Fmt.str "Heap.update: %a unbound" Ptr.pp p)

(* [free p h] deallocates [p]; the paper's [free x h] (Section 3.2). *)
let free p (h : t) =
  match Ptr.Map.find_opt p h.m with
  | Some v0 -> { m = Ptr.Map.remove p h.m; h = h.h lxor cell p v0 }
  | None -> h

(* Disjointness and union iterate the smaller of the two maps: membership
   tests and inserts into the larger map are logarithmic, so scanning the
   smaller side wins whenever the sizes are lopsided (the common case:
   a one-cell action footprint against a large private heap). *)
let disjoint (h1 : t) (h2 : t) =
  let small, big =
    if cardinal h1 <= cardinal h2 then (h1.m, h2.m) else (h2.m, h1.m)
  in
  Ptr.Map.for_all (fun p _ -> not (Ptr.Map.mem p big)) small

(* Disjoint union: the heap PCM join.  [None] when domains overlap.
   Disjointness makes the hash of the union the XOR of the hashes. *)
let union (h1 : t) (h2 : t) : t option =
  if disjoint h1 h2 then
    let small, big =
      if cardinal h1 <= cardinal h2 then (h1.m, h2.m) else (h2.m, h1.m)
    in
    Some { m = Ptr.Map.fold Ptr.Map.add small big; h = h1.h lxor h2.h }
  else None

let union_exn h1 h2 =
  match union h1 h2 with
  | Some h -> h
  | None -> invalid_arg "Heap.union_exn: overlapping domains"

(* [subheap h1 h2] holds when [h1] is a subheap of [h2] (same values on
   [h1]'s domain). *)
let subheap (h1 : t) (h2 : t) =
  Ptr.Map.for_all
    (fun p v -> match find p h2 with Some w -> Value.equal v w | None -> false)
    h1.m

(* [diff h1 h2] removes [h2]'s domain from [h1]: the frame left after
   carving out [h2]. *)
let diff (h1 : t) (h2 : t) =
  let m = Ptr.Map.filter (fun p _ -> not (mem p h2)) h1.m in
  { m; h = hash_of m }

(* [restrict dom h] keeps only the cells of [h] whose pointer satisfies
   [dom]; used by hide decorations to select the donated subheap. *)
let restrict pred (h : t) =
  let m = Ptr.Map.filter (fun p _ -> pred p) h.m in
  { m; h = hash_of m }

let hash (h : t) = h.h

let equal (h1 : t) (h2 : t) =
  h1 == h2 || (h1.h = h2.h && Ptr.Map.equal Value.equal h1.m h2.m)

let compare (h1 : t) (h2 : t) =
  if h1 == h2 then 0 else Ptr.Map.compare Value.compare h1.m h2.m

let of_list bindings =
  List.fold_left
    (fun h (p, v) ->
      if mem p h then invalid_arg "Heap.of_list: duplicate pointer"
      else add p v h)
    empty bindings

let bindings (h : t) = Ptr.Map.bindings h.m
let fold f (h : t) acc = Ptr.Map.fold f h.m acc
let iter f (h : t) = Ptr.Map.iter f h.m
let for_all f (h : t) = Ptr.Map.for_all f h.m
let exists f (h : t) = Ptr.Map.exists f h.m

let filter f (h : t) =
  let m = Ptr.Map.filter f h.m in
  { m; h = hash_of m }

(* A fresh pointer strictly greater than everything allocated in [h]. *)
let fresh_ptr (h : t) =
  let top = fold (fun p _ acc -> max acc (Ptr.to_int p)) h 0 in
  Ptr.of_int (top + 1)

let pp ppf (h : t) =
  let pp_cell ppf (p, v) = Fmt.pf ppf "%a :-> %a" Ptr.pp p Value.pp v in
  if is_empty h then Fmt.string ppf "emp"
  else Fmt.pf ppf "@[<hv>%a@]" Fmt.(list ~sep:(any " \\+@ ") pp_cell) (bindings h)

let to_string h = Fmt.str "%a" pp h
