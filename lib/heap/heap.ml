(* Heaps: finite maps from non-null pointers to dynamic values, forming a
   partial commutative monoid under disjoint union (paper, Section 2.2.1).

   Unlike the Coq development — where invalid heaps are an explicit
   "undefined" element of the PCM — we keep heaps valid by construction
   and make the PCM join partial ([union] returns [None] on overlap).
   The [Undef] case of the paper's heap PCM is recovered in the [Pcm]
   layer by option-lifting. *)

type t = Value.t Ptr.Map.t

let empty : t = Ptr.Map.empty
let is_empty = Ptr.Map.is_empty
let cardinal = Ptr.Map.cardinal

let singleton p v =
  if Ptr.is_null p then invalid_arg "Heap.singleton: null pointer"
  else Ptr.Map.singleton p v

let mem p (h : t) = Ptr.Map.mem p h
let find p (h : t) = Ptr.Map.find_opt p h

let find_exn p (h : t) =
  match Ptr.Map.find_opt p h with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Heap.find_exn: %a unbound" Ptr.pp p)

(* Domain as a list/set, folding over the keys directly: no intermediate
   bindings list. *)
let dom (h : t) = List.rev (Ptr.Map.fold (fun p _ acc -> p :: acc) h [])
let dom_set (h : t) = Ptr.Map.fold (fun p _ s -> Ptr.Set.add p s) h Ptr.Set.empty

let add p v (h : t) =
  if Ptr.is_null p then invalid_arg "Heap.add: null pointer"
  else Ptr.Map.add p v h

let update p v (h : t) =
  if Ptr.Map.mem p h then Ptr.Map.add p v h
  else invalid_arg (Fmt.str "Heap.update: %a unbound" Ptr.pp p)

(* [free p h] deallocates [p]; the paper's [free x h] (Section 3.2). *)
let free p (h : t) = Ptr.Map.remove p h

(* Disjointness and union iterate the smaller of the two maps: membership
   tests and inserts into the larger map are logarithmic, so scanning the
   smaller side wins whenever the sizes are lopsided (the common case:
   a one-cell action footprint against a large private heap). *)
let disjoint (h1 : t) (h2 : t) =
  let small, big = if cardinal h1 <= cardinal h2 then (h1, h2) else (h2, h1) in
  Ptr.Map.for_all (fun p _ -> not (Ptr.Map.mem p big)) small

(* Disjoint union: the heap PCM join.  [None] when domains overlap. *)
let union (h1 : t) (h2 : t) : t option =
  if disjoint h1 h2 then
    let small, big = if cardinal h1 <= cardinal h2 then (h1, h2) else (h2, h1) in
    Some (Ptr.Map.fold Ptr.Map.add small big)
  else None

let union_exn h1 h2 =
  match union h1 h2 with
  | Some h -> h
  | None -> invalid_arg "Heap.union_exn: overlapping domains"

(* [subheap h1 h2] holds when [h1] is a subheap of [h2] (same values on
   [h1]'s domain). *)
let subheap (h1 : t) (h2 : t) =
  Ptr.Map.for_all
    (fun p v -> match find p h2 with Some w -> Value.equal v w | None -> false)
    h1

(* [diff h1 h2] removes [h2]'s domain from [h1]: the frame left after
   carving out [h2]. *)
let diff (h1 : t) (h2 : t) = Ptr.Map.filter (fun p _ -> not (mem p h2)) h1

(* [restrict dom h] keeps only the cells of [h] whose pointer satisfies
   [dom]; used by hide decorations to select the donated subheap. *)
let restrict pred (h : t) = Ptr.Map.filter (fun p _ -> pred p) h

let equal (h1 : t) (h2 : t) = Ptr.Map.equal Value.equal h1 h2

let compare (h1 : t) (h2 : t) = Ptr.Map.compare Value.compare h1 h2

(* Canonical: folds in ascending pointer order, so equal heaps hash
   equally regardless of how they were built. *)
let hash (h : t) =
  Ptr.Map.fold
    (fun p v acc -> (((acc * 33) lxor Ptr.hash p) * 33) lxor Value.hash v)
    h 5381

let of_list bindings =
  List.fold_left
    (fun h (p, v) ->
      if mem p h then invalid_arg "Heap.of_list: duplicate pointer"
      else add p v h)
    empty bindings

let bindings (h : t) = Ptr.Map.bindings h
let fold f (h : t) acc = Ptr.Map.fold f h acc
let iter f (h : t) = Ptr.Map.iter f h
let for_all f (h : t) = Ptr.Map.for_all f h
let exists f (h : t) = Ptr.Map.exists f h
let filter f (h : t) = Ptr.Map.filter f h

(* A fresh pointer strictly greater than everything allocated in [h]. *)
let fresh_ptr (h : t) =
  let top = fold (fun p _ acc -> max acc (Ptr.to_int p)) h 0 in
  Ptr.of_int (top + 1)

let pp ppf (h : t) =
  let pp_cell ppf (p, v) = Fmt.pf ppf "%a :-> %a" Ptr.pp p Value.pp v in
  if is_empty h then Fmt.string ppf "emp"
  else Fmt.pf ppf "@[<hv>%a@]" Fmt.(list ~sep:(any " \\+@ ") pp_cell) (bindings h)

let to_string h = Fmt.str "%a" pp h
