(* Dynamic values stored in heap cells.  FCSL heaps are heterogeneous
   (each cell may store a value of a different type); in the absence of
   dependent types we reproduce this with a closed universe of runtime
   values, sufficient for every structure in the paper's case-study suite
   (graph nodes, stack nodes, lock bits, tickets, snapshot cells). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Ptr of Ptr.t
  | Pair of t * t
  | Triple of t * t * t

let unit = Unit
let bool b = Bool b
let int n = Int n
let ptr p = Ptr p
let pair a b = Pair (a, b)
let triple a b c = Triple (a, b, c)

(* A graph node is the triple (marked-bit, left successor, right
   successor) of Section 2.1. *)
let node ~marked ~left ~right = Triple (Bool marked, Ptr left, Ptr right)

let rec equal v w =
  match (v, w) with
  | Unit, Unit -> true
  | Bool a, Bool b -> Bool.equal a b
  | Int a, Int b -> Int.equal a b
  | Ptr a, Ptr b -> Ptr.equal a b
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | Triple (a1, a2, a3), Triple (b1, b2, b3) ->
    equal a1 b1 && equal a2 b2 && equal a3 b3
  | (Unit | Bool _ | Int _ | Ptr _ | Pair _ | Triple _), _ -> false

let rec compare v w =
  let tag = function
    | Unit -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Ptr _ -> 3
    | Pair _ -> 4
    | Triple _ -> 5
  in
  match (v, w) with
  | Unit, Unit -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Ptr a, Ptr b -> Ptr.compare a b
  | Pair (a1, a2), Pair (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Triple (a1, a2, a3), Triple (b1, b2, b3) ->
    let c = compare a1 b1 in
    if c <> 0 then c
    else
      let c = compare a2 b2 in
      if c <> 0 then c else compare a3 b3
  | (Unit | Bool _ | Int _ | Ptr _ | Pair _ | Triple _), _ ->
    Int.compare (tag v) (tag w)

let rec hash = function
  | Unit -> 7
  | Bool false -> 11
  | Bool true -> 13
  | Int n -> (17 * 33) lxor n
  | Ptr p -> (19 * 33) lxor Ptr.hash p
  | Pair (a, b) -> (((23 * 33) lxor hash a) * 33) lxor hash b
  | Triple (a, b, c) ->
    (((((29 * 33) lxor hash a) * 33) lxor hash b) * 33) lxor hash c

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Ptr p -> Ptr.pp ppf p
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | Triple (a, b, c) -> Fmt.pf ppf "(%a, %a, %a)" pp a pp b pp c

let to_string v = Fmt.str "%a" pp v

(* Checked projections: verification code uses these to state that a cell
   has the expected shape; a [None] result signals a shape violation. *)

let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Int n -> Some n | _ -> None
let as_ptr = function Ptr p -> Some p | _ -> None
let as_pair = function Pair (a, b) -> Some (a, b) | _ -> None
let as_triple = function Triple (a, b, c) -> Some (a, b, c) | _ -> None

let as_node = function
  | Triple (Bool m, Ptr l, Ptr r) -> Some (m, l, r)
  | _ -> None
