(* The PCM instances used across the paper's case studies (Section 6):
   natural numbers with addition (CG increment), mutual exclusion
   (locks, flat combiner), disjoint pointer sets (spanning tree, FC,
   ticketed lock), heaps (thread-local state), products and lifting
   (client-provided compositions). *)

open Fcsl_heap

(* Natural numbers under addition; join is total. *)
module Nat : sig
  include Pcm.S with type t = int

  val of_int : int -> t
end = struct
  type t = int

  let unit = 0
  let of_int n = if n < 0 then invalid_arg "Nat.of_int: negative" else n
  let join a b = Some (a + b)
  let equal = Int.equal
  let pp = Fmt.int
end

(* Mutual-exclusion PCM: [Own] joins only with [Not_own]. *)
module Mutex : sig
  type t = Own | Not_own

  include Pcm.S with type t := t

  val compare : t -> t -> int
end = struct
  type t = Own | Not_own

  let unit = Not_own

  let join a b =
    match (a, b) with
    | Own, Own -> None
    | Own, Not_own | Not_own, Own -> Some Own
    | Not_own, Not_own -> Some Not_own

  let equal a b =
    match (a, b) with
    | Own, Own | Not_own, Not_own -> true
    | Own, Not_own | Not_own, Own -> false

  let compare a b =
    match (a, b) with
    | Own, Own | Not_own, Not_own -> 0
    | Not_own, Own -> -1
    | Own, Not_own -> 1

  let pp ppf = function
    | Own -> Fmt.string ppf "Own"
    | Not_own -> Fmt.string ppf "NotOwn"
end

(* Finite pointer sets under disjoint union: the PCM of marked nodes in
   the spanning-tree proof. *)
module Ptr_set : sig
  include Pcm.S with type t = Ptr.Set.t

  val singleton : Ptr.t -> t
  val of_list : Ptr.t list -> t
end = struct
  type t = Ptr.Set.t

  let unit = Ptr.Set.empty

  let join a b =
    if Ptr.Set.is_empty (Ptr.Set.inter a b) then Some (Ptr.Set.union a b)
    else None

  let equal = Ptr.Set.equal
  let singleton = Ptr.Set.singleton
  let of_list ps = Ptr.Set.of_list ps
  let pp = Ptr.Set.pp
end

(* Heaps under disjoint union: thread-private state (the Priv
   concurroid). *)
module Heap_pcm : Pcm.S with type t = Heap.t = struct
  type t = Heap.t

  let unit = Heap.empty
  let join = Heap.union
  let equal = Heap.equal
  let pp = Heap.pp
end

(* Binary product, join componentwise. *)
module Prod (A : Pcm.S) (B : Pcm.S) : Pcm.S with type t = A.t * B.t = struct
  type t = A.t * B.t

  let unit = (A.unit, B.unit)

  let join (a1, b1) (a2, b2) =
    match (A.join a1 a2, B.join b1 b2) with
    | Some a, Some b -> Some (a, b)
    | None, _ | _, None -> None

  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let pp ppf (a, b) = Fmt.pf ppf "(%a, %a)" A.pp a B.pp b
end

(* Lifting: adjoins an explicit undefined element, making join total on
   the lifted carrier.  This recovers the Coq development's heaps-with-
   [Undef] presentation. *)
module Lift (A : Pcm.S) : sig
  type t = Def of A.t | Undef

  include Pcm.S with type t := t
end = struct
  type t = Def of A.t | Undef

  let unit = Def A.unit

  let join a b =
    match (a, b) with
    | Def x, Def y -> (
      match A.join x y with Some z -> Some (Def z) | None -> Some Undef)
    | Undef, _ | _, Undef -> Some Undef

  let equal a b =
    match (a, b) with
    | Def x, Def y -> A.equal x y
    | Undef, Undef -> true
    | Def _, Undef | Undef, Def _ -> false

  let pp ppf = function
    | Def x -> A.pp ppf x
    | Undef -> Fmt.string ppf "Undef"
end

(* The trivial PCM. *)
module Unit : Pcm.S with type t = unit = struct
  type t = unit

  let unit = ()
  let join () () = Some ()
  let equal () () = true
  let pp ppf () = Fmt.string ppf "tt"
end
