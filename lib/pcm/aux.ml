(* The universal auxiliary-state PCM.

   In the Coq development each concurroid fixes its own PCM type and
   dependent records keep the states well-typed.  OCaml states flow
   through one interpreter, so auxiliary values are drawn from this
   closed sum of all the PCMs used by the case-study suite.  It is
   itself a PCM: [Unit] is the shared unit, same-sort joins delegate to
   the underlying instance, and cross-sort joins are undefined — exactly
   the coproduct of PCMs with units identified. *)

open Fcsl_heap

type t =
  | Unit
  | Nat of int
  | Mutex of Instances.Mutex.t
  | Set of Ptr.Set.t
  | Heap of Heap.t
  | Hist of Hist.t
  | Pair of t * t

let unit = Unit
let nat n = Nat (Instances.Nat.of_int n)
let own = Mutex Instances.Mutex.Own
let not_own = Mutex Instances.Mutex.Not_own
let set s = Set s
let set_of_list ps = Set (Ptr.Set.of_list ps)
let singleton p = Set (Ptr.Set.singleton p)
let heap h = Heap h
let hist h = Hist h
let pair a b = Pair (a, b)

let rec join a b =
  match (a, b) with
  | Unit, x | x, Unit -> Some x
  | Nat m, Nat n -> Option.map (fun k -> Nat k) (Instances.Nat.join m n)
  | Mutex m, Mutex n ->
    Option.map (fun k -> Mutex k) (Instances.Mutex.join m n)
  | Set s, Set t -> Option.map (fun u -> Set u) (Instances.Ptr_set.join s t)
  | Heap h, Heap k -> Option.map (fun u -> Heap u) (Heap.union h k)
  | Hist h, Hist k -> Option.map (fun u -> Hist u) (Hist.join h k)
  | Pair (a1, a2), Pair (b1, b2) -> (
    match (join a1 b1, join a2 b2) with
    | Some c1, Some c2 -> Some (Pair (c1, c2))
    | None, _ | _, None -> None)
  | (Nat _ | Mutex _ | Set _ | Heap _ | Hist _ | Pair _), _ -> None

let join_exn a b =
  match join a b with
  | Some c -> c
  | None -> invalid_arg "Aux.join_exn: undefined join"

let defined a b = Option.is_some (join a b)

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Nat m, Nat n -> Instances.Nat.equal m n
  | Mutex m, Mutex n -> Instances.Mutex.equal m n
  | Set s, Set t -> Instances.Ptr_set.equal s t
  | Heap h, Heap k -> Heap.equal h k
  | Hist h, Hist k -> Hist.equal h k
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Unit | Nat _ | Mutex _ | Set _ | Heap _ | Hist _ | Pair _), _ -> false

(* Total order and hash, both semantic: Set/Heap/Hist delegate to the
   canonical comparisons of the underlying maps, never to polymorphic
   compare (balanced-tree shapes differ between equal values built in
   different orders — exactly what happens when exploration reaches one
   configuration along two schedules). *)
let rec compare a b =
  let tag = function
    | Unit -> 0
    | Nat _ -> 1
    | Mutex _ -> 2
    | Set _ -> 3
    | Heap _ -> 4
    | Hist _ -> 5
    | Pair _ -> 6
  in
  match (a, b) with
  | Unit, Unit -> 0
  | Nat m, Nat n -> Int.compare m n
  | Mutex m, Mutex n -> Instances.Mutex.compare m n
  | Set s, Set t -> Ptr.Set.compare s t
  | Heap h, Heap k -> Heap.compare h k
  | Hist h, Hist k -> Hist.compare h k
  | Pair (a1, a2), Pair (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | (Unit | Nat _ | Mutex _ | Set _ | Heap _ | Hist _ | Pair _), _ ->
    Int.compare (tag a) (tag b)

let rec hash = function
  | Unit -> 31
  | Nat n -> (37 * 33) lxor n
  | Mutex Instances.Mutex.Not_own -> 41
  | Mutex Instances.Mutex.Own -> 43
  | Set s -> Ptr.Set.fold (fun p acc -> (acc * 33) lxor Ptr.hash p) s 47
  | Heap h -> (53 * 33) lxor Heap.hash h
  | Hist h -> (59 * 33) lxor Hist.hash h
  | Pair (a, b) -> (((61 * 33) lxor hash a) * 33) lxor hash b

(* Sort-aware unit test: [Nat 0], [Set ∅], etc. all count as units. *)
let rec is_unit = function
  | Unit -> true
  | Nat n -> n = 0
  | Mutex m -> Instances.Mutex.equal m Instances.Mutex.Not_own
  | Set s -> Ptr.Set.is_empty s
  | Heap h -> Heap.is_empty h
  | Hist h -> Hist.is_empty h
  | Pair (a, b) -> is_unit a && is_unit b

(* Checked projections, used by concurroid coherence predicates to pin
   the sort of their auxiliary components. *)

let as_nat = function Nat n -> Some n | Unit -> Some 0 | _ -> None

let as_mutex = function
  | Mutex m -> Some m
  | Unit -> Some Instances.Mutex.Not_own
  | _ -> None

let as_set = function
  | Set s -> Some s
  | Unit -> Some Ptr.Set.empty
  | _ -> None

let as_heap = function Heap h -> Some h | Unit -> Some Heap.empty | _ -> None
let as_hist = function Hist h -> Some h | Unit -> Some Hist.empty | _ -> None

let as_pair = function
  | Pair (a, b) -> Some (a, b)
  | Unit -> Some (Unit, Unit)
  | _ -> None

(* All two-way splits of an element: pairs [(a, b)] with [a • b = x].
   Used to check the fork-join closure law of concurroid state spaces.
   Set/heap/history splits are exponential, so they are capped; law
   checking only ever runs on small enumerated states. *)
let splits ?(cap = 12) x =
  let subsets xs =
    List.fold_left
      (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
      [ [] ] xs
  in
  let rec go x =
    match x with
    | Unit -> [ (Unit, Unit) ]
    | Nat n -> List.init (n + 1) (fun i -> (Nat i, Nat (n - i)))
    | Mutex Instances.Mutex.Not_own -> [ (not_own, not_own) ]
    | Mutex Instances.Mutex.Own -> [ (own, not_own); (not_own, own) ]
    | Set s ->
      let elems = Ptr.Set.elements s in
      if List.length elems > cap then
        [ (Set s, Set Ptr.Set.empty); (Set Ptr.Set.empty, Set s) ]
      else
        List.map
          (fun sub ->
            let sub = Ptr.Set.of_list sub in
            (Set sub, Set (Ptr.Set.diff s sub)))
          (subsets elems)
    | Heap h ->
      let cells = Heap.bindings h in
      if List.length cells > cap then
        [ (Heap h, Heap Heap.empty); (Heap Heap.empty, Heap h) ]
      else
        List.map
          (fun sub ->
            let sub = Heap.of_list sub in
            (Heap sub, Heap (Heap.diff h sub)))
          (subsets cells)
    | Hist h ->
      let stamps = Hist.timestamps h in
      if List.length stamps > cap then
        [ (Hist h, Hist Hist.empty); (Hist Hist.empty, Hist h) ]
      else
        List.map
          (fun sub ->
            let mem ts = List.mem ts sub in
            ( Hist (Hist.filter (fun ts _ -> mem ts) h),
              Hist (Hist.filter (fun ts _ -> not (mem ts)) h) ))
          (subsets stamps)
    | Pair (a, b) ->
      List.concat_map
        (fun (a1, a2) ->
          List.map (fun (b1, b2) -> (Pair (a1, b1), Pair (a2, b2))) (go b))
        (go a)
  in
  go x

let rec pp ppf = function
  | Unit -> Fmt.string ppf "tt"
  | Nat n -> Fmt.pf ppf "%d" n
  | Mutex m -> Instances.Mutex.pp ppf m
  | Set s -> Ptr.Set.pp ppf s
  | Heap h -> Fmt.pf ppf "[%a]" Heap.pp h
  | Hist h -> Fmt.pf ppf "hist<%d>" (Hist.cardinal h)
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b

let to_string a = Fmt.str "%a" pp a

module Pcm_instance : Pcm.S with type t = t = struct
  type nonrec t = t

  let unit = unit
  let join = join
  let equal = equal
  let pp = pp
end
