(** The universal auxiliary-state PCM.

    In the Coq development each concurroid fixes its own PCM type;
    OCaml states flow through one interpreter, so auxiliary values are
    drawn from this closed sum of all the PCMs used by the case-study
    suite.  It is itself a PCM: [Unit] is the shared unit, same-sort
    joins delegate to the underlying instance, and cross-sort joins are
    undefined — the coproduct of PCMs with units identified. *)

open Fcsl_heap

type t =
  | Unit
  | Nat of int
  | Mutex of Instances.Mutex.t
  | Set of Ptr.Set.t
  | Heap of Heap.t
  | Hist of Hist.t
  | Pair of t * t

val unit : t
val nat : int -> t
val own : t
val not_own : t
val set : Ptr.Set.t -> t
val set_of_list : Ptr.t list -> t
val singleton : Ptr.t -> t
val heap : Heap.t -> t
val hist : Hist.t -> t
val pair : t -> t -> t

val join : t -> t -> t option
(** The PCM join; [None] on incompatible sorts or incompatible values. *)

val join_exn : t -> t -> t
val defined : t -> t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Semantic total order: delegates to the canonical comparisons of the
    underlying sorts (never polymorphic compare, which is unsound on the
    balanced trees inside sets/heaps/histories). *)

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val is_unit : t -> bool
(** Sort-aware: [Nat 0], empty sets/heaps/histories all count. *)

(** {1 Checked projections}

    Used by coherence predicates to pin the sort of a component;
    [Unit] projects to every sort's unit. *)

val as_nat : t -> int option
val as_mutex : t -> Instances.Mutex.t option
val as_set : t -> Ptr.Set.t option
val as_heap : t -> Heap.t option
val as_hist : t -> Hist.t option
val as_pair : t -> (t * t) option

val splits : ?cap:int -> t -> (t * t) list
(** All two-way splits [(a, b)] with [a • b = x]; used to check the
    fork-join closure law.  Set/heap/history splits are capped. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Pcm_instance : Pcm.S with type t = t
