(** Time-stamped action histories (Sergey et al., ESOP 2015): the PCM
    used to specify the pair snapshot, Treiber stack and
    producer/consumer "in the spirit of linearizability" (paper,
    Section 6).

    A history maps strictly positive timestamps to entries; the join is
    disjoint union of timestamp domains.  A thread's [self] history
    records the operations it performed; [self • other] is the complete
    linear history of the shared structure. *)

open Fcsl_heap

(** One abstract operation: name, argument, result, and the abstract
    state of the structure just after it. *)
type entry = { op : string; arg : Value.t; res : Value.t; state : Value.t }

val entry : ?arg:Value.t -> ?res:Value.t -> ?state:Value.t -> string -> entry
val entry_equal : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val add : int -> entry -> t -> t
(** Raises [Invalid_argument] on a non-positive or taken timestamp. *)

val find : int -> t -> entry option
val mem : int -> t -> bool
val timestamps : t -> int list
val entries : t -> entry list
val bindings : t -> (int * entry) list
val last_ts : t -> int

val fresh_ts : t -> int
(** The next free timestamp of [h]; with [h = self • other] this is the
    linearization point a new operation claims. *)

val disjoint : t -> t -> bool

val join : t -> t -> t option
(** The PCM join: disjoint union of stamped entries. *)

val join_exn : t -> t -> t
val unit : t
val equal : t -> t -> bool
val entry_compare : entry -> entry -> int
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}; used by memoized exploration. *)

val continuous : t -> bool
(** Timestamps form the contiguous range 1..n — the invariant of a
    complete history. *)

val subhist : t -> t -> bool
val fold : (int -> entry -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (int -> entry -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Pcm_instance : Pcm.S with type t = t
