(* Time-stamped action histories (Sergey et al., ESOP 2015), the PCM used
   to specify the pair snapshot, Treiber stack and producer/consumer case
   studies "in the spirit of linearizability" (paper, Section 6).

   A history is a finite map from strictly positive timestamps to
   entries; the join is disjoint union of timestamp domains.  A thread's
   [self] history records the operations it performed; [self • other] is
   the complete linear history of the shared structure. *)

open Fcsl_heap

module Int_map = Map.Make (Int)

(* An entry records one abstract operation: its name, argument, result,
   and the abstract state of the structure just after the operation. *)
type entry = {
  op : string;
  arg : Value.t;
  res : Value.t;
  state : Value.t;
}

let entry ?(arg = Value.unit) ?(res = Value.unit) ?(state = Value.unit) op =
  { op; arg; res; state }

let entry_equal e1 e2 =
  String.equal e1.op e2.op
  && Value.equal e1.arg e2.arg
  && Value.equal e1.res e2.res
  && Value.equal e1.state e2.state

let pp_entry ppf e =
  Fmt.pf ppf "%s(%a) = %a @@ %a" e.op Value.pp e.arg Value.pp e.res Value.pp
    e.state

type t = entry Int_map.t

let empty : t = Int_map.empty
let is_empty = Int_map.is_empty
let cardinal = Int_map.cardinal

let add ts e (h : t) =
  if ts <= 0 then invalid_arg "Hist.add: timestamps are positive"
  else if Int_map.mem ts h then invalid_arg "Hist.add: timestamp taken"
  else Int_map.add ts e h

let find ts (h : t) = Int_map.find_opt ts h
let mem ts (h : t) = Int_map.mem ts h
let timestamps (h : t) = List.map fst (Int_map.bindings h)
let entries (h : t) = List.map snd (Int_map.bindings h)
let bindings (h : t) = Int_map.bindings h

let last_ts (h : t) =
  match Int_map.max_binding_opt h with Some (ts, _) -> ts | None -> 0

(* The smallest timestamp not yet used in [h]; with [h = self • other]
   this is the linearization point a new operation claims. *)
let fresh_ts (h : t) = last_ts h + 1

let disjoint (h1 : t) (h2 : t) =
  Int_map.for_all (fun ts _ -> not (Int_map.mem ts h2)) h1

let join (h1 : t) (h2 : t) =
  if disjoint h1 h2 then
    Some (Int_map.union (fun _ e _ -> Some e) h1 h2)
  else None

let join_exn h1 h2 =
  match join h1 h2 with
  | Some h -> h
  | None -> invalid_arg "Hist.join_exn: overlapping timestamps"

let unit = empty
let equal (h1 : t) (h2 : t) = Int_map.equal entry_equal h1 h2

let entry_compare e1 e2 =
  let c = String.compare e1.op e2.op in
  if c <> 0 then c
  else
    let c = Value.compare e1.arg e2.arg in
    if c <> 0 then c
    else
      let c = Value.compare e1.res e2.res in
      if c <> 0 then c else Value.compare e1.state e2.state

let compare (h1 : t) (h2 : t) = Int_map.compare entry_compare h1 h2

(* Canonical: folds in ascending timestamp order, consistent with
   {!equal}. *)
let hash (h : t) =
  Int_map.fold
    (fun ts e acc ->
      let he =
        (((((Hashtbl.hash e.op * 33) lxor Value.hash e.arg) * 33)
         lxor Value.hash e.res)
         * 33)
        lxor Value.hash e.state
      in
      (((acc * 33) lxor ts) * 33) lxor he)
    h 5381

(* [continuous h]: the timestamps of [h] form the contiguous range
   1..n — the invariant of a complete history [self • other]. *)
let continuous (h : t) =
  let n = cardinal h in
  let rec go i = i > n || (Int_map.mem i h && go (i + 1)) in
  go 1

(* [subhist h1 h2]: every stamped entry of [h1] occurs in [h2]. *)
let subhist (h1 : t) (h2 : t) =
  Int_map.for_all
    (fun ts e ->
      match Int_map.find_opt ts h2 with
      | Some e' -> entry_equal e e'
      | None -> false)
    h1

let fold f (h : t) acc = Int_map.fold f h acc

let filter f (h : t) = Int_map.filter f h

let pp ppf (h : t) =
  let pp_binding ppf (ts, e) = Fmt.pf ppf "%d: %a" ts pp_entry e in
  if is_empty h then Fmt.string ppf "<empty history>"
  else Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_binding) (bindings h)

let to_string h = Fmt.str "%a" pp h

(* The PCM instance packaging. *)
module Pcm_instance : Pcm.S with type t = t = struct
  type nonrec t = t

  let unit = unit
  let join = join
  let equal = equal
  let pp = pp
end
