(* The concurrent spanning-tree construction of the paper's running
   example (Sections 2 and 3): the [SpanTree] concurroid, the [trymark],
   [read_child] and [nullify] atomic actions, the [span] procedure of
   Figure 3 with its spec [span_tp] of Figure 4, and the closed-world
   [span_root] obtained by hiding (Section 3.5).

   Source regions are tagged for the Table 1 line-count reproduction:
   Libs / Conc / Acts / Stab / Main. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux

(*!Libs*)
(* Graph-theory support specific to this proof: the bulk lives in
   [Fcsl_heap.Graph] (trees, fronts, maximality, subgraphs) and
   [Graph_catalog]. *)

let graph_of_slice s = Graph.of_heap (Slice.joint s)

let self_set s = Aux.as_set (Slice.self s)
let other_set s = Aux.as_set (Slice.other s)

(* The set of nodes freshly marked between two slices: self f minus
   self i. *)
let fresh_marks i f =
  match (self_set i, self_set f) with
  | Some si, Some sf when Ptr.Set.subset si sf -> Some (Ptr.Set.diff sf si)
  | _ -> None
(*!Conc*)

(* The SpanTree concurroid (Section 3.3), parametrised by its label.
   Coherence: the joint heap is graph-shaped, self/other are disjoint
   pointer sets, and a node is in self • other iff it is marked. *)

let coh s =
  match (graph_of_slice s, self_set s, other_set s) with
  | Some g, Some slf, Some oth ->
    Ptr.Set.is_empty (Ptr.Set.inter slf oth)
    && Ptr.Set.subset slf (Graph.dom_set g)
    && Ptr.Set.subset oth (Graph.dom_set g)
    && List.for_all
         (fun x ->
           Graph.mark g x = Ptr.Set.mem x (Ptr.Set.union slf oth))
         (Graph.dom g)
  | _ -> false

(* marknode_trans: physically mark an unmarked node and simultaneously
   add it to self. *)
let marknode_trans : Concurroid.transition =
  {
    tr_name = "marknode";
    tr_external = false;
    tr_step =
      (fun s ->
        match (graph_of_slice s, self_set s) with
        | Some g, Some slf ->
          Graph.unmarked_nodes g
          |> List.map (fun x ->
                 Slice.make
                   ~self:(Aux.set (Ptr.Set.add x slf))
                   ~joint:(Graph.to_heap (Graph.mark_node g x))
                   ~other:(Slice.other s))
        | _ -> []);
  }

(* nullify_trans: a thread that owns the marking of [x] may sever one of
   its out-edges. *)
let nullify_trans : Concurroid.transition =
  {
    tr_name = "nullify";
    tr_external = false;
    tr_step =
      (fun s ->
        match (graph_of_slice s, self_set s) with
        | Some g, Some slf ->
          Ptr.Set.elements slf
          |> List.concat_map (fun x ->
                 List.filter_map
                   (fun side ->
                     if Ptr.is_null (Graph.child g side x) then None
                     else
                       Some
                         (Slice.make ~self:(Slice.self s)
                            ~joint:(Graph.to_heap (Graph.null_edge g side x))
                            ~other:(Slice.other s)))
                   [ Graph.Left; Graph.Right ])
        | _ -> []);
  }

(* The concurroid, with the catalogue of small graphs as its law- and
   stability-checking universe. *)
let concurroid ?(max_nodes = 3) label =
  Concurroid.make ~label ~name:"SpanTree" ~coh
    ~transitions:[ marknode_trans; nullify_trans ]
    ~enum:(fun () -> Graph_catalog.all_slices ~max_nodes ())
    ()
(*!Acts*)

(* Atomic actions (Sections 2.2.2 and 3.4). *)

let slice_at sp st = State.find_exn sp st

(* trymark: erases to CAS on the node's cell; logically takes
   marknode_trans on success and idle on failure. *)
let trymark sp x : bool Action.t =
  Action.make ~name:(Fmt.str "trymark(%a)" Ptr.pp x)
    ~fp:(Footprint.cases sp)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s -> (
        match graph_of_slice s with
        | Some g -> Graph.mem x g
        | None -> false)
      | None -> false)
    ~step:(fun st ->
      let s = slice_at sp st in
      let g = Option.get (graph_of_slice s) in
      if Graph.mark g x then (false, st)
      else
        let slf = Option.get (self_set s) in
        let s' =
          Slice.make
            ~self:(Aux.set (Ptr.Set.add x slf))
            ~joint:(Graph.to_heap (Graph.mark_node g x))
            ~other:(Slice.other s)
        in
        (true, State.add sp s' st))
    ~phys:(fun st ->
      let s = slice_at sp st in
      let g = Option.get (graph_of_slice s) in
      let _, l, r = Graph.cont g x in
      Action.Cas
        {
          loc = x;
          expect = Value.node ~marked:false ~left:l ~right:r;
          replace = Value.node ~marked:true ~left:l ~right:r;
        })
    ()

(* read_child: erases to a read; logically idle.  Requires x ∈ self so
   the result is stable (nobody else may nullify x's edges). *)
let read_child sp x side : Ptr.t Action.t =
  Action.make ~name:(Fmt.str "read_child(%a,%a)" Ptr.pp x Graph.pp_side side)
    ~fp:(Footprint.reads sp)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s -> (
        match (graph_of_slice s, self_set s) with
        | Some g, Some slf -> Graph.mem x g && Ptr.Set.mem x slf
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = slice_at sp st in
      let g = Option.get (graph_of_slice s) in
      (Graph.child g side x, st))
    ~phys:(fun _ -> Action.Read x)
    ()

(* nullify: erases to a write of the node's cell; logically takes
   nullify_trans.  Requires x ∈ self. *)
let nullify sp x side : unit Action.t =
  Action.make ~name:(Fmt.str "nullify(%a,%a)" Ptr.pp x Graph.pp_side side)
    ~fp:(Footprint.writes sp)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s -> (
        match (graph_of_slice s, self_set s) with
        | Some g, Some slf -> Graph.mem x g && Ptr.Set.mem x slf
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = slice_at sp st in
      let g = Option.get (graph_of_slice s) in
      let s' = Slice.with_joint (Graph.to_heap (Graph.null_edge g side x)) s in
      ((), State.add sp s' st))
    ~phys:(fun st ->
      let s = slice_at sp st in
      let g = Option.get (graph_of_slice s) in
      let m, l, r = Graph.cont g x in
      let l, r =
        match side with
        | Graph.Left -> (Ptr.null, r)
        | Graph.Right -> (l, Ptr.null)
      in
      Action.Write (x, Value.node ~marked:m ~left:l ~right:r))
    ()
(*!Stab*)

(* Stability lemmas (Section 3.2's subgraph_steps and friends), packaged
   as named assertions whose stability the test suite checks over the
   SpanTree universe. *)

(* Membership in the joint graph is stable: interference never adds or
   removes nodes. *)
let assert_in_dom sp x st =
  match State.find sp st with
  | Some s -> (
    match graph_of_slice s with Some g -> Graph.mem x g | None -> false)
  | None -> false

(* Membership in self is stable: the environment cannot steal marks. *)
let assert_in_self sp x st =
  match State.find sp st with
  | Some s -> (
    match self_set s with Some slf -> Ptr.Set.mem x slf | None -> false)
  | None -> false

(* A marked node stays marked. *)
let assert_marked sp x st =
  match State.find sp st with
  | Some s -> (
    match graph_of_slice s with Some g -> Graph.mark g x | None -> false)
  | None -> false

(* Out-edges of a self-owned node are stable: only their owner nullifies
   them. *)
let assert_edges_of_owned sp x (l, r) st =
  match State.find sp st with
  | Some s -> (
    match (graph_of_slice s, self_set s) with
    | Some g, Some slf ->
      Ptr.Set.mem x slf
      && Ptr.equal (Graph.edgl g x) l
      && Ptr.equal (Graph.edgr g x) r
    | _ -> false)
  | None -> false

(* The subgraph_steps lemma: environment stepping only refines the graph
   (checked over env-step closures by the test suite). *)
let subgraph_steps_holds c s =
  match graph_of_slice s with
  | None -> true
  | Some g1 ->
    List.for_all
      (fun s' ->
        match graph_of_slice s' with
        | Some g2 -> Graph.subgraph g1 g2
        | None -> false)
      (Concurroid.env_steps_closure c s)
(*!Main*)

(* The span procedure of Figure 3. *)

let span sp (root : Ptr.t) : bool Prog.t =
  let open Prog in
  let body loop x =
    if Ptr.is_null x then ret false
    else
      let* b = act (trymark sp x) in
      if b then
        let* xl = act (read_child sp x Graph.Left) in
        let* xr = act (read_child sp x Graph.Right) in
        let* rs = par (loop xl) (loop xr) in
        let* () = if not (fst rs) then act (nullify sp x Graph.Left) else ret () in
        let* () = if not (snd rs) then act (nullify sp x Graph.Right) else ret () in
        ret true
      else ret false
  in
  (* [ffix] is opaque to the footprint spine; declare the envelope the
     body's actions establish (the monitor checks it at exploration). *)
  Prog.annot (Footprint.touches sp) (Prog.ffix body root)

(* The spec span_tp of Figure 4, as executable pre/post predicates. *)

(* The subgraph relation of Section 3.2, on full slices: node set fixed,
   self/other only grow, unmarked nodes untouched, edges only
   nullified. *)
let subjective_subgraph i f =
  match
    ( graph_of_slice i, graph_of_slice f,
      self_set i, self_set f, other_set i, other_set f )
  with
  | Some g1, Some g2, Some si, Some sf, Some oi, Some off ->
    Graph.subgraph g1 g2 && Ptr.Set.subset si sf && Ptr.Set.subset oi off
  | _ -> false

let span_spec sp (x : Ptr.t) : bool Spec.t =
  Spec.with_fp (Footprint.touches sp)
  @@ Spec.make
    ~name:(Fmt.str "span_tp(%a)" Ptr.pp x)
    ~pre:(fun st ->
      match State.find sp st with
      | Some s -> coh s && (Ptr.is_null x || assert_in_dom sp x st)
      | None -> false)
    ~post:(fun r st_i st_f ->
      match (State.find sp st_i, State.find sp st_f) with
      | Some i, Some f -> (
        subjective_subgraph i f
        &&
        match (graph_of_slice f, graph_of_slice i) with
        | Some g2, Some g1 -> (
          if r then
            (not (Ptr.is_null x))
            &&
            match (fresh_marks i f, self_set f, other_set f) with
            | Some t, Some sf, Some off ->
              Graph.tree g2 x t && Graph.maximal g2 t
              && Graph.front g1 t (Ptr.Set.union sf off)
            | _ -> false
          else
            (Ptr.is_null x || Graph.mark g2 x)
            &&
            match fresh_marks i f with
            | Some t -> Ptr.Set.is_empty t
            | None -> false)
        | _ -> false)
      | _ -> false)

(* The closed-world wrapper (Section 3.5): install a SpanTree concurroid
   over the whole private heap, run span, tear it down. *)

let span_root ~pv ~sp (x : Ptr.t) : bool Prog.t =
  let hs : Prog.hide_spec =
    {
      hs_priv = pv;
      hs_conc = concurroid sp;
      hs_decor = (fun h -> h); (* donate the whole private graph heap *)
      hs_init = Aux.set Ptr.Set.empty;
      hs_jaux = Aux.Unit;
    }
  in
  Prog.hide hs (span sp x)

(* span_root_tp: from a private, unmarked, connected-from-x graph heap,
   the final private heap is a spanning tree of it rooted at x. *)
let span_root_spec ~pv (x : Ptr.t) : bool Spec.t =
  Spec.make
    ~name:(Fmt.str "span_root_tp(%a)" Ptr.pp x)
    ~pre:(fun st ->
      match State.find pv st with
      | Some s -> (
        match Graph.of_heap (Priv.pv_self pv st) with
        | Some g1 ->
          Heap.is_empty (Slice.joint s)
          && Graph.mem x g1
          && List.for_all (fun y -> not (Graph.mark g1 y)) (Graph.dom g1)
          && Graph.connected g1 x
        | None -> false)
      | None -> false)
    ~post:(fun r st_i st_f ->
      match
        ( Graph.of_heap (Priv.pv_self pv st_i),
          Graph.of_heap (Priv.pv_self pv st_f) )
      with
      | Some g1, Some g2 ->
        r
        && Graph.spanning g1 g2 x (Graph.dom_set g2)
      | _ -> false)

(* Verification drivers. *)

let sp_label = Label.make "span"
let pv_label = Label.make "span_priv"

let world ?(max_nodes = 3) () = World.of_list [ concurroid ~max_nodes sp_label ]

(* Initial open-world states: every catalogue slice (partially marked
   graphs with arbitrary subjective splits). *)
let init_states ?(max_nodes = 3) () =
  List.map
    (fun s -> State.singleton sp_label s)
    (Graph_catalog.all_slices ~max_nodes ())

(* Check span_tp for every root choice over every catalogue state,
   exhaustively, under full interference. *)
let verify_span ?(max_nodes = 3) ?(fuel = 24) ?(max_outcomes = 60_000) () :
    Verify.report list =
  let w = world ~max_nodes () in
  let states = init_states ~max_nodes () in
  let roots =
    Ptr.null :: List.map (fun n -> Ptr.of_int n) [ 1; 2; 3 ]
  in
  List.map
    (fun x ->
      Verify.check_triple ~fuel ~max_outcomes ~world:w ~init:states
        (span sp_label x) (span_spec sp_label x))
    roots

(* Check span_root_tp on the unmarked catalogue graphs (closed world:
   only Priv is ambient; interference cannot touch the hidden graph). *)
let verify_span_root ?(max_nodes = 3) ?(fuel = 32) ?(max_outcomes = 120_000) ()
    : Verify.report list =
  let priv = Priv.make pv_label in
  let w = World.of_list [ priv ] in
  List.filter_map
    (fun (name, g) ->
      let x = Ptr.of_int 1 in
      if not (Graph.connected g x) then None
      else
        let st =
          State.singleton pv_label
            (Slice.make
               ~self:(Aux.heap (Graph.to_heap g))
               ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
        in
        let report =
          Verify.check_triple ~fuel ~max_outcomes ~interference:false ~world:w
            ~init:[ st ]
            (span_root ~pv:pv_label ~sp:sp_label x)
            (span_root_spec ~pv:pv_label x)
        in
        Some { report with Verify.spec_name = report.Verify.spec_name ^ " on " ^ name })
    (Graph_catalog.initial_graphs ~max_nodes ())
(*!End*)
