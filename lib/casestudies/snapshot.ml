(* The atomic pair snapshot (paper, Section 6, Table 1 row "Pair
   snapshot"; Qadeer et al.'s verioned-cells algorithm): two shared
   cells, each paired with a version counter bumped on every write.
   [read_pair] reads x, then y, then re-reads x's version; if the
   version is unchanged, the two values were simultaneously present.

   Specs are given via a PCM of time-stamped histories (Section 6): each
   write is an entry recording the pair of values it produced; the
   postcondition of [read_pair] says the returned pair occurs as some
   history state between the call's start and finish. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

(*!Libs*)
let x_cell = Ptr.of_int 70
let y_cell = Ptr.of_int 71

let value_domain = [ 0; 1 ]

let cell_of joint p =
  Option.bind (Heap.find p joint) (fun v ->
      match Value.as_pair v with
      | Some (Value.Int contents, Value.Int version) -> Some (contents, version)
      | _ -> None)

let pack_cell contents version =
  Value.pair (Value.int contents) (Value.int version)

let pair_state cx cy = Value.pair (Value.int cx) (Value.int cy)

let hist_of a = Aux.as_hist a

(* The pair state recorded by a history entry. *)
let entry_pair e =
  match Value.as_pair e.Hist.state with
  | Some (Value.Int a, Value.Int b) -> Some (a, b)
  | _ -> None

(* Count the writes to a given cell in a history. *)
let writes_to op h =
  Hist.fold (fun _ e n -> if String.equal e.Hist.op op then n + 1 else n) h 0
(*!Conc*)

(* Coherence: both cells are (value, version) pairs; self/other are
   histories; the combined history is continuous, its per-cell write
   counts equal the version counters, and its last recorded pair equals
   the current cell contents. *)
let coh s =
  match
    (cell_of (Slice.joint s) x_cell, cell_of (Slice.joint s) y_cell,
     hist_of (Slice.self s), hist_of (Slice.other s))
  with
  | Some (cx, vx), Some (cy, vy), Some hs, Some ho -> (
    Slice.valid s
    &&
    match Hist.join hs ho with
    | Some total ->
      Hist.continuous total
      && writes_to "wx" total = vx
      && writes_to "wy" total = vy
      && (Hist.is_empty total
         ||
         match Hist.find (Hist.last_ts total) total with
         | Some e -> (
           match entry_pair e with
           | Some (a, b) -> a = cx && b = cy
           | None -> false)
         | None -> false)
      && (not (Hist.is_empty total) || (cx = 0 && cy = 0))
    | None -> false)
  | _ -> false

(* A write to one of the cells: bump the version, stamp a history entry
   recording the produced pair. *)
let write_tr name cell op other_cell : Concurroid.transition =
  {
    tr_name = name;
    tr_external = false;
    tr_step =
      (fun s ->
        match
          (cell_of (Slice.joint s) cell, cell_of (Slice.joint s) other_cell,
           hist_of (Slice.self s), hist_of (Slice.other s))
        with
        | Some (_, ver), Some (co, _), Some hs, Some ho ->
          let total_last =
            match Hist.join hs ho with
            | Some t -> Hist.last_ts t
            | None -> -1
          in
          if total_last < 0 then []
          else
            List.map
              (fun v ->
                let state =
                  if String.equal op "wx" then pair_state v co
                  else pair_state co v
                in
                let entry = Hist.entry ~arg:(Value.int v) ~state op in
                s
                |> Slice.with_joint
                     (Heap.update cell (pack_cell v (ver + 1)) (Slice.joint s))
                |> Slice.with_self (Aux.hist (Hist.add (total_last + 1) entry hs)))
              value_domain
        | _ -> []);
  }

let write_x_tr = write_tr "write_x" x_cell "wx" y_cell
let write_y_tr = write_tr "write_y" y_cell "wy" x_cell

(* Enumeration: all runs of at most [depth] writes from the all-zero
   state, with every split of the resulting history. *)
let enum ?(depth = 2) () =
  let base =
    Slice.make ~self:(Aux.hist Hist.empty)
      ~joint:
        (Heap.of_list [ (x_cell, pack_cell 0 0); (y_cell, pack_cell 0 0) ])
      ~other:(Aux.hist Hist.empty)
  in
  let rec run k frontier acc =
    if k = 0 then acc
    else
      let next =
        List.concat_map
          (fun s ->
            List.map snd
              (List.concat_map
                 (fun tr ->
                   List.map (fun s' -> ((), s')) (tr.Concurroid.tr_step s))
                 [ write_x_tr; write_y_tr ]))
          frontier
      in
      run (k - 1) next (next @ acc)
  in
  let reachable = base :: run depth [ base ] [] in
  (* All history splits of every reachable state. *)
  List.concat_map
    (fun s ->
      match hist_of (Slice.self s) with
      | Some h ->
        List.filter_map
          (fun (a, b) ->
            match (a, b) with
            | Aux.Hist ha, Aux.Hist hb ->
              Some
                (s |> Slice.with_self (Aux.hist ha)
               |> Slice.with_other (Aux.hist hb))
            | Aux.Unit, Aux.Hist hb ->
              Some
                (s
                |> Slice.with_self (Aux.hist Hist.empty)
                |> Slice.with_other (Aux.hist hb))
            | Aux.Hist ha, Aux.Unit ->
              Some
                (s |> Slice.with_self (Aux.hist ha)
               |> Slice.with_other (Aux.hist Hist.empty))
            | _ -> None)
          (Aux.splits (Aux.hist h))
      | None -> [])
    reachable

let concurroid ?(depth = 2) label =
  Concurroid.make ~label ~name:"ReadPair" ~coh
    ~transitions:[ write_x_tr; write_y_tr ]
    ~enum:(fun () -> enum ~depth ())
    ()
(*!Acts*)

(* read_cell: idle read of (value, version). *)
let read_cell sp cell : (int * int) Action.t =
  Action.make
    ~name:(Fmt.str "read_cell(%a)" Ptr.pp cell)
    ~fp:(Footprint.reads sp)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s -> Option.is_some (cell_of (Slice.joint s) cell)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn sp st in
      (Option.get (cell_of (Slice.joint s) cell), st))
    ~phys:(fun _ -> Action.Read cell)
    ()

(* write_cell: the versioned write, taking the write transition and
   stamping the entry into the writer's self history. *)
let write_cell sp cell v : unit Action.t =
  let op = if Ptr.equal cell x_cell then "wx" else "wy" in
  let other_cell = if Ptr.equal cell x_cell then y_cell else x_cell in
  Action.make
    ~name:(Fmt.str "write_cell(%a,%d)" Ptr.pp cell v)
    ~fp:(Footprint.writes sp)
    ~safe:(fun st ->
      match State.find sp st with
      | Some s ->
        Option.is_some (cell_of (Slice.joint s) cell)
        && Option.is_some (cell_of (Slice.joint s) other_cell)
        && Option.is_some (hist_of (Slice.self s))
        && Option.is_some (hist_of (Slice.other s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn sp st in
      let _, ver = Option.get (cell_of (Slice.joint s) cell) in
      let co, _ = Option.get (cell_of (Slice.joint s) other_cell) in
      let hs = Option.get (hist_of (Slice.self s)) in
      let ho = Option.get (hist_of (Slice.other s)) in
      let ts = Hist.last_ts (Hist.join_exn hs ho) + 1 in
      let state =
        if String.equal op "wx" then pair_state v co else pair_state co v
      in
      let entry = Hist.entry ~arg:(Value.int v) ~state op in
      let s' =
        s
        |> Slice.with_joint
             (Heap.update cell (pack_cell v (ver + 1)) (Slice.joint s))
        |> Slice.with_self (Aux.hist (Hist.add ts entry hs))
      in
      ((), State.add sp s' st))
    ~phys:(fun st ->
      let s = State.find_exn sp st in
      let _, ver = Option.get (cell_of (Slice.joint s) cell) in
      Action.Write (cell, pack_cell v (ver + 1)))
    ()
(*!Stab*)

(* Version counters only grow — the stability backbone of the re-check
   argument. *)
let assert_version_at_least sp cell n st =
  match State.find sp st with
  | Some s -> (
    match cell_of (Slice.joint s) cell with
    | Some (_, ver) -> ver >= n
    | None -> false)
  | None -> false

(* A cell with its version pins its value: if the version is still [n],
   the value is still [v].  This is what makes the double-read sound. *)
let assert_version_pins sp cell (v, n) st =
  match State.find sp st with
  | Some s -> (
    match cell_of (Slice.joint s) cell with
    | Some (c, ver) -> ver > n || (ver = n && c = v)
    | None -> false)
  | None -> false

(* History growth: the combined history only gains entries. *)
let assert_hist_extends sp h0 st =
  match State.find sp st with
  | Some s -> (
    match (hist_of (Slice.self s), hist_of (Slice.other s)) with
    | Some hs, Some ho -> (
      match Hist.join hs ho with
      | Some total -> Hist.subhist h0 total
      | None -> false)
    | _ -> false)
  | None -> false
(*!Main*)

(* read_pair (the paper's Figure for [43]): double-collect with version
   re-check. *)
let read_pair sp : (int * int) Prog.t =
  let open Prog in
  Prog.annot (Footprint.reads sp)
    (Prog.ffix
       (fun loop () ->
         let* vx, tx = act (read_cell sp x_cell) in
         let* vy, _ = act (read_cell sp y_cell) in
         let* _, tx' = act (read_cell sp x_cell) in
         if tx = tx' then ret (vx, vy) else loop ())
       ())

(* The broken variant for failure injection: no version re-check. *)
let read_pair_unchecked sp : (int * int) Prog.t =
  let open Prog in
  Prog.annot (Footprint.reads sp)
    (let* vx, _ = act (read_cell sp x_cell) in
     let* vy, _ = act (read_cell sp y_cell) in
     ret (vx, vy))

(* The snapshot spec: the returned pair occurs as a simultaneous state
   of the combined history somewhere between call and return (including
   the state at entry). *)
let read_pair_spec sp : (int * int) Spec.t =
  Spec.with_fp (Footprint.reads sp)
  @@ Spec.make ~name:"read_pair"
    ~pre:(fun st ->
      match State.find sp st with Some s -> coh s | None -> false)
    ~post:(fun (a, b) st_i st_f ->
      match (State.find sp st_i, State.find sp st_f) with
      | Some i, Some f -> (
        match
          ( cell_of (Slice.joint i) x_cell, cell_of (Slice.joint i) y_cell,
            hist_of (Slice.self i), hist_of (Slice.other i),
            hist_of (Slice.self f), hist_of (Slice.other f) )
        with
        | Some (cx, _), Some (cy, _), Some hsi, Some hoi, Some hsf, Some hof
          -> (
          match (Hist.join hsi hoi, Hist.join hsf hof) with
          | Some hi, Some hf ->
            let entry_states =
              Hist.fold
                (fun ts e acc ->
                  if ts > Hist.last_ts hi then
                    match entry_pair e with
                    | Some p -> p :: acc
                    | None -> acc
                  else acc)
                hf []
            in
            List.exists (fun (a', b') -> a = a' && b = b') ((cx, cy) :: entry_states)
          | _ -> false)
        | _ -> false)
      | _ -> false)

(* A writer's spec: its history gains exactly its own write. *)
let write_spec sp cell v : unit Spec.t =
  let op = if Ptr.equal cell x_cell then "wx" else "wy" in
  Spec.with_fp (Footprint.writes sp)
  @@ Spec.make
       ~name:(Fmt.str "write_%s(%d)" op v)
    ~pre:(fun st ->
      match State.find sp st with
      | Some s -> coh s && Aux.is_unit (Slice.self s)
      | None -> false)
    ~post:(fun () _i st_f ->
      match State.find sp st_f with
      | Some f -> (
        match hist_of (Slice.self f) with
        | Some hs ->
          Hist.cardinal hs = 1
          && List.for_all
               (fun e ->
                 String.equal e.Hist.op op
                 && Value.equal e.Hist.arg (Value.int v))
               (Hist.entries hs)
        | None -> false)
      | None -> false)

(* Verification drivers. *)

let sp_label = Label.make "snapshot"

let world () = World.of_list [ concurroid sp_label ]

let init_states () =
  List.map (fun s -> State.singleton sp_label s) (enum ~depth:1 ())

let verify ?(fuel = 18) ?(env_budget = 2) ?(max_outcomes = 400_000) () :
    Verify.report list =
  let w = world () in
  let init = init_states () in
  [
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (read_pair sp_label) (read_pair_spec sp_label);
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (Prog.act (write_cell sp_label x_cell 1))
      (write_spec sp_label x_cell 1);
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (Prog.par (read_pair sp_label)
         (Prog.act (write_cell sp_label y_cell 1)))
      (Spec.make ~name:"read_pair || write_y"
         ~pre:(Spec.pre (read_pair_spec sp_label))
         ~post:(fun ((a, b), ()) i f ->
           Spec.post (read_pair_spec sp_label) (a, b) i f));
  ]

(* The injected bug must be refuted. *)
let refute_unchecked ?(fuel = 18) ?(env_budget = 2) () : Verify.report =
  Verify.check_triple ~fuel ~env_budget ~world:(world ()) ~init:(init_states ())
    (read_pair_unchecked sp_label)
    (read_pair_spec sp_label)
(*!End*)
