(* The coarse-grained memory allocator (paper, Sections 4.1 and 6,
   Table 1 row "CG allocator"): a lock-protected pool of free cells.
   [alloc] logically transfers a pointer from the allocator's concurroid
   into the caller's private heap, so the whole procedure runs in the
   entangled world [Priv pv ⋈ ALock al] — the paper's example of
   concurroid composition, and the demonstration that allocation is
   definable rather than primitive.

   Like CG increment, the allocator is a functor over the abstract lock
   interface (Table 1: no new concurroid/actions/stability sections). *)

open Fcsl_heap
open Fcsl_core
open Lock_intf
module Aux = Fcsl_pcm.Aux

module Make (L : LOCK) = struct
  (*!Main*)
  let pool_cells = List.map Ptr.of_int [ 60; 61; 62 ]

  let subsets xs =
    List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] xs

  (* The pool resource: any subset of the pool cells, no invariant, no
     client ghost. *)
  let resource =
    {
      r_name = "pool";
      r_inv = (fun _ _ -> true);
      r_heaps =
        (fun () ->
          List.map
            (fun cells ->
              List.fold_left
                (fun h p -> Heap.add p (Value.int 0) h)
                Heap.empty cells)
            (subsets pool_cells));
      r_ghosts = (fun () -> [ Aux.Unit ]);
    }

  let cfg = L.default_config
  let concurroid ~label = L.concurroid ~label cfg resource

  (* peek_pool: an idle action observing a free cell (the freelist head);
     requires holding the lock, so the observation is stable. *)
  let peek_pool al : Ptr.t option Action.t =
    Action.make ~name:"peek_pool"
      ~fp:(Footprint.reads al)
      ~safe:(fun st -> L.holds cfg al st)
      ~step:(fun st ->
        let s = State.find_exn al st in
        let pool =
          Heap.filter
            (fun p _ -> List.exists (Ptr.equal p) pool_cells)
            (Slice.joint s)
        in
        (List.nth_opt (Heap.dom pool) 0, st))
      ~phys:(fun _ -> Action.Id)
      ()

  (* take_cell: the communicating action transferring one pool cell from
     the allocator's joint heap into the caller's private heap.
     Physically a no-op (ownership transfer); the global footprint is
     preserved. *)
  let take_cell al pv p : unit Action.t =
    Action.make ~communicating:true
      ~name:(Fmt.str "take_cell(%a)" Ptr.pp p)
      ~fp:(Footprint.join (Footprint.writes al) (Footprint.writes pv))
      ~safe:(fun st ->
        L.holds cfg al st
        && Heap.mem p (State.joint al st)
        && List.exists (Ptr.equal p) pool_cells
        && Option.is_some (Aux.as_heap (State.self pv st)))
      ~step:(fun st ->
        let v = Heap.find_exn p (State.joint al st) in
        let priv = Option.get (Aux.as_heap (State.self pv st)) in
        let st =
          st
          |> State.with_joint al (Heap.free p (State.joint al st))
          |> State.with_self pv (Aux.heap (Heap.add p v priv))
        in
        ((), st))
      ~phys:(fun _ -> Action.Id)
      ()

  (* put_cell: the reverse transfer, used by [dealloc]. *)
  let put_cell al pv p : unit Action.t =
    Action.make ~communicating:true
      ~name:(Fmt.str "put_cell(%a)" Ptr.pp p)
      ~fp:(Footprint.join (Footprint.writes al) (Footprint.writes pv))
      ~safe:(fun st ->
        L.holds cfg al st
        && (match Aux.as_heap (State.self pv st) with
           | Some h -> Heap.mem p h
           | None -> false)
        && List.exists (Ptr.equal p) pool_cells)
      ~step:(fun st ->
        let priv = Option.get (Aux.as_heap (State.self pv st)) in
        let st =
          st
          |> State.with_joint al
               (Heap.add p (Value.int 0) (State.joint al st))
          |> State.with_self pv (Aux.heap (Heap.free p priv))
        in
        ((), st))
      ~phys:(fun _ -> Action.Id)
      ()

  (* try_alloc: lock; hand over a free cell if any; unlock. *)
  let try_alloc al pv : Ptr.t option Prog.t =
    let open Prog in
    let* () = L.lock al cfg in
    let* free = act (peek_pool al) in
    match free with
    | Some p ->
      let* () = act (take_cell al pv p) in
      let* () = L.unlock al cfg resource ~delta:Aux.Unit in
      ret (Some p)
    | None ->
      let* () = L.unlock al cfg resource ~delta:Aux.Unit in
      ret None

  (* alloc: the paper's spin loop over try_alloc (Section 4.1). *)
  let alloc al pv : Ptr.t Prog.t =
    Prog.ffix
      (fun loop () ->
        Prog.bind (try_alloc al pv) (fun res ->
            match res with Some r -> Prog.ret r | None -> loop ()))
      ()

  (* dealloc: return a cell to the pool. *)
  let dealloc al pv p : unit Prog.t =
    let open Prog in
    let* () = L.lock al cfg in
    let* () = act (put_cell al pv p) in
    L.unlock al cfg resource ~delta:Aux.Unit

  (* The paper's alloc spec: the private heap grows by exactly one
     pointer storing some value. *)
  let alloc_spec pv al : Ptr.t Spec.t =
    Spec.make
      ~name:(Fmt.str "%s_alloc" L.impl_name)
      ~pre:(fun st ->
        (not (L.holds cfg al st))
        && Option.is_some (Aux.as_heap (State.self pv st)))
      ~post:(fun r i f ->
        match
          (Aux.as_heap (State.self pv i), Aux.as_heap (State.self pv f))
        with
        | Some hi, Some hf ->
          (not (Heap.mem r hi))
          && Heap.mem r hf
          && Heap.equal (Heap.free r hf) hi
        | _ -> false)

  (* Allocate then deallocate: the private heap is restored. *)
  let alloc_dealloc al pv : unit Prog.t =
    Prog.bind (alloc al pv) (fun p -> dealloc al pv p)

  let alloc_dealloc_spec pv al : unit Spec.t =
    Spec.make
      ~name:(Fmt.str "%s_alloc;dealloc" L.impl_name)
      ~pre:(fun st ->
        (not (L.holds cfg al st))
        && Option.is_some (Aux.as_heap (State.self pv st)))
      ~post:(fun () i f ->
        match
          (Aux.as_heap (State.self pv i), Aux.as_heap (State.self pv f))
        with
        | Some hi, Some hf -> Heap.equal hi hf
        | _ -> false)

  let al_label = Label.make (L.impl_name ^ "_alloc")
  let pv_label = Label.make (L.impl_name ^ "_alloc_priv")

  let world () =
    World.of_list [ Priv.make pv_label; concurroid ~label:al_label ]

  let init_states () = World.enum (world ())

  let verify ?(fuel = 20) ?(env_budget = 2) ?(max_outcomes = 400_000) () :
      Verify.report list =
    let w = world () in
    let init = init_states () in
    [
      Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
        (alloc al_label pv_label)
        (alloc_spec pv_label al_label);
      Verify.check_triple ~fuel ~env_budget:(env_budget - 1) ~max_outcomes
        ~world:w ~init
        (alloc_dealloc al_label pv_label)
        (alloc_dealloc_spec pv_label al_label);
    ]
  (*!End*)
end

module Cas = Make (Caslock)
module Ticketed = Make (Ticketlock)
