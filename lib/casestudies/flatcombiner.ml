(* The flat combiner of Hendler et al. (paper, Section 4.2, Table 1 row
   "Flat combiner"): a universal construction turning a sequential
   object into a concurrent one.  Threads publish requests into
   per-thread slots; whichever thread acquires the combiner lock
   executes *all* pending requests — the helping pattern: a thread's
   operation may be performed by another thread, yet its effect is
   ascribed to the requester.

   Ascription works exactly as in FCSL: the combiner stamps the helped
   operation's history entry into a *joint auxiliary* pending map (one
   cell per slot); the requester later claims the entry into its own
   [self] history.  Slot ownership is a token (the slot pointer) in the
   owner's self, so nobody can claim somebody else's effect.

   The construction is generic over a sequential object [seq_object];
   [Fc_stack] instantiates it with a stack, obtaining the same
   subjective-history spec as the Treiber stack. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex
module Hist = Fcsl_pcm.Hist

(*!Libs*)
(* The sequential object a flat combiner wraps. *)
type seq_object = {
  so_name : string;
  so_init : Value.t; (* initial abstract state *)
  so_apply : string -> Value.t -> Value.t -> (Value.t * Value.t) option;
      (* op -> arg -> state -> (result, new state) *)
  so_ops : (string * Value.t list) list; (* operation/argument universe *)
}

type config = {
  lk : Ptr.t; (* combiner lock bit *)
  slots : Ptr.t list; (* request slots, one per client thread *)
  obj : Ptr.t; (* the sequential object's state cell *)
}

let default_config =
  {
    lk = Ptr.of_int 120;
    slots = [ Ptr.of_int 121; Ptr.of_int 122 ];
    obj = Ptr.of_int 123;
  }

(* Slot cell encoding. *)
let slot_empty = Value.int 0
let slot_request code arg = Value.triple (Value.int 1) (Value.int code) arg
let slot_done res = Value.pair (Value.int 2) res

let decode_slot v =
  match v with
  | Value.Int 0 -> Some `Empty
  | Value.Triple (Value.Int 1, Value.Int code, arg) -> Some (`Request (code, arg))
  | Value.Pair (Value.Int 2, res) -> Some (`Done res)
  | _ -> None

let op_code so op =
  let rec go i = function
    | [] -> None
    | (o, _) :: rest -> if String.equal o op then Some i else go (i + 1) rest
  in
  go 0 so.so_ops

let op_of_code so code = Option.map fst (List.nth_opt so.so_ops code)

(* Ghost projections: self = (mutex, (slot tokens, history)). *)
let split_aux a =
  match Aux.as_pair a with
  | Some (m, rest) -> (
    match (Aux.as_mutex m, Aux.as_pair rest) with
    | Some mx, Some (t, h) -> (
      match (Aux.as_set t, Aux.as_hist h) with
      | Some tokens, Some hist -> Some (mx, tokens, hist)
      | _ -> None)
    | _ -> None)
  | None -> None

let pack_aux mx tokens hist =
  Aux.pair (Aux.Mutex mx) (Aux.pair (Aux.set tokens) (Aux.hist hist))

(* Joint auxiliary: the pending map, one history per slot. *)
let rec pendings_of cfg jaux =
  ignore cfg;
  match jaux with
  | Aux.Unit -> Some []
  | Aux.Pair (Aux.Hist h, rest) ->
    Option.map (fun r -> h :: r) (pendings_of cfg rest)
  | Aux.Hist h -> Some [ h ]
  | _ -> None

let pack_pendings hs =
  List.fold_right (fun h acc -> Aux.pair (Aux.hist h) acc) hs Aux.Unit

let pending_at cfg jaux i =
  Option.bind (pendings_of cfg jaux) (fun ps -> List.nth_opt ps i)

let set_pending cfg jaux i h =
  Option.map
    (fun ps -> pack_pendings (List.mapi (fun j p -> if j = i then h else p) ps))
    (pendings_of cfg jaux)

let lock_bit cfg joint = Option.bind (Heap.find cfg.lk joint) Value.as_bool

let slot_state cfg joint i =
  Option.bind
    (Option.bind (List.nth_opt cfg.slots i) (fun p -> Heap.find p joint))
    decode_slot

let obj_state cfg joint = Heap.find cfg.obj joint

(* Replay the combined history through the sequential object. *)
let replay so total =
  let rec go ts state =
    if ts > Hist.last_ts total then Some state
    else
      match Hist.find ts total with
      | None -> None
      | Some e -> (
        match so.so_apply e.Hist.op e.Hist.arg state with
        | Some (res, state') when Value.equal res e.Hist.res
                                  && Value.equal state' e.Hist.state ->
          go (ts + 1) state'
        | Some _ | None -> None)
  in
  if Hist.continuous total then go 1 so.so_init else None
(*!Conc*)

(* Coherence. *)
let coh so cfg s =
  match
    ( lock_bit cfg (Slice.joint s), obj_state cfg (Slice.joint s),
      split_aux (Slice.self s), split_aux (Slice.other s),
      pendings_of cfg (Slice.jaux s) )
  with
  | Some b, Some obj, Some (ms, ts, hs), Some (mo, tos, hos), Some pendings
    -> (
    Slice.valid s
    && List.length pendings = List.length cfg.slots
    && b = (ms = Mutex.Own || mo = Mutex.Own)
    (* every slot token is owned by exactly one side *)
    && Ptr.Set.equal (Ptr.Set.union ts tos) (Ptr.Set.of_list cfg.slots)
    && Ptr.Set.is_empty (Ptr.Set.inter ts tos)
    (* pending entries: at most one per slot, matching the slot cell *)
    && List.for_all2
         (fun i p ->
           Hist.cardinal p <= 1
           &&
           match slot_state cfg (Slice.joint s) i with
           | Some (`Done res) -> (
             match Hist.entries p with
             | [ e ] -> Value.equal e.Hist.res res
             | _ -> false)
           | Some (`Request _) ->
             (* applied-but-unresponded only exists while combining *)
             if b then Hist.cardinal p <= 1 else Hist.is_empty p
           | Some `Empty -> Hist.is_empty p
           | None -> false)
         (List.init (List.length cfg.slots) Fun.id)
         pendings
    &&
    (* the combined history replays to the current object state *)
    match
      List.fold_left
        (fun acc p -> Option.bind acc (Hist.join p))
        (Hist.join hs hos) pendings
    with
    | Some total -> (
      match replay so total with
      | Some state -> Value.equal state obj
      | None -> false)
    | None -> false)
  | _ -> false

(* Transitions. *)

let fresh_ts cfg s =
  match
    (split_aux (Slice.self s), split_aux (Slice.other s),
     pendings_of cfg (Slice.jaux s))
  with
  | Some (_, _, hs), Some (_, _, hos), Some pendings -> (
    match
      List.fold_left
        (fun acc p -> Option.bind acc (Hist.join p))
        (Hist.join hs hos) pendings
    with
    | Some total -> Some (Hist.last_ts total + 1)
    | None -> None)
  | _ -> None

(* publish: a token holder posts a request into its empty slot. *)
let publish_tr so cfg : Concurroid.transition =
  Concurroid.internal ~name:"publish" (fun s ->
      match split_aux (Slice.self s) with
      | Some (_, tokens, _) ->
        List.concat_map
          (fun i ->
            let slot = List.nth cfg.slots i in
            if
              Ptr.Set.mem slot tokens
              && slot_state cfg (Slice.joint s) i = Some `Empty
            then
              List.concat_map
                (fun (op, args) ->
                  match op_code so op with
                  | None -> []
                  | Some code ->
                    List.map
                      (fun arg ->
                        Slice.with_joint
                          (Heap.update slot (slot_request code arg)
                             (Slice.joint s))
                          s)
                      args)
                so.so_ops
            else [])
          (List.init (List.length cfg.slots) Fun.id)
      | None -> [])

let lock_tr cfg : Concurroid.transition =
  Concurroid.internal ~name:"fc_lock" (fun s ->
      match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
      | Some false, Some (Mutex.Not_own, tokens, hist) ->
        [
          s
          |> Slice.with_joint
               (Heap.update cfg.lk (Value.bool true) (Slice.joint s))
          |> Slice.with_self (pack_aux Mutex.Own tokens hist);
        ]
      | _ -> [])

(* A combiner may release only once its pass is finished: no slot is
   applied-but-unresponded. *)
let pass_finished cfg s =
  List.for_all
    (fun i ->
      match (slot_state cfg (Slice.joint s) i, pending_at cfg (Slice.jaux s) i) with
      | Some (`Request _), Some p -> Hist.is_empty p
      | Some (`Done _), Some p -> Hist.cardinal p = 1
      | Some `Empty, Some p -> Hist.is_empty p
      | _ -> false)
    (List.init (List.length cfg.slots) Fun.id)

let unlock_tr cfg : Concurroid.transition =
  Concurroid.internal ~name:"fc_unlock" (fun s ->
      match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
      | Some true, Some (Mutex.Own, tokens, hist) when pass_finished cfg s ->
        [
          s
          |> Slice.with_joint
               (Heap.update cfg.lk (Value.bool false) (Slice.joint s))
          |> Slice.with_self (pack_aux Mutex.Not_own tokens hist);
        ]
      | _ -> [])

(* apply: the combiner executes a pending request — the linearization
   point; the entry is stamped into the slot's pending cell. *)
let apply_tr so cfg : Concurroid.transition =
  Concurroid.internal ~name:"fc_apply" (fun s ->
      match (split_aux (Slice.self s), obj_state cfg (Slice.joint s)) with
      | Some (Mutex.Own, _, _), Some obj ->
        List.filter_map
          (fun i ->
            match
              (slot_state cfg (Slice.joint s) i,
               pending_at cfg (Slice.jaux s) i, fresh_ts cfg s)
            with
            | Some (`Request (code, arg)), Some pending, Some ts
              when Hist.is_empty pending -> (
              match op_of_code so code with
              | None -> None
              | Some op -> (
                match so.so_apply op arg obj with
                | None -> None
                | Some (res, state') ->
                  let entry = Hist.entry ~arg ~res ~state:state' op in
                  Option.map
                    (fun jaux ->
                      s
                      |> Slice.with_joint
                           (Heap.update cfg.obj state' (Slice.joint s))
                      |> Slice.with_jaux jaux)
                    (set_pending cfg (Slice.jaux s) i
                       (Hist.add ts entry Hist.empty))))
            | _ -> None)
          (List.init (List.length cfg.slots) Fun.id)
      | _ -> [])

(* respond: the combiner publishes the result into the slot. *)
let respond_tr cfg : Concurroid.transition =
  Concurroid.internal ~name:"fc_respond" (fun s ->
      match split_aux (Slice.self s) with
      | Some (Mutex.Own, _, _) ->
        List.filter_map
          (fun i ->
            match
              (slot_state cfg (Slice.joint s) i, pending_at cfg (Slice.jaux s) i)
            with
            | Some (`Request _), Some pending -> (
              match Hist.entries pending with
              | [ e ] ->
                Some
                  (Slice.with_joint
                     (Heap.update (List.nth cfg.slots i) (slot_done e.Hist.res)
                        (Slice.joint s))
                     s)
              | _ -> None)
            | _ -> None)
          (List.init (List.length cfg.slots) Fun.id)
      | _ -> [])

(* claim: the slot owner collects its result; the helped entry moves
   from the pending map into the owner's self history — the ascription
   step of the helping pattern. *)
let claim_tr cfg : Concurroid.transition =
  Concurroid.internal ~name:"fc_claim" (fun s ->
      match split_aux (Slice.self s) with
      | Some (mx, tokens, hist) ->
        List.filter_map
          (fun i ->
            let slot = List.nth cfg.slots i in
            match
              (slot_state cfg (Slice.joint s) i, pending_at cfg (Slice.jaux s) i)
            with
            | Some (`Done _), Some pending when Ptr.Set.mem slot tokens -> (
              match (Hist.bindings pending, Hist.join hist pending) with
              | [ _ ], Some hist' ->
                Option.map
                  (fun jaux ->
                    s
                    |> Slice.with_joint
                         (Heap.update slot slot_empty (Slice.joint s))
                    |> Slice.with_jaux jaux
                    |> Slice.with_self (pack_aux mx tokens hist'))
                  (set_pending cfg (Slice.jaux s) i Hist.empty)
              | _ -> None)
            | _ -> None)
          (List.init (List.length cfg.slots) Fun.id)
      | None -> [])

(* Enumeration: transition runs from the base state, with ghost splits
   (mutex-respecting, token subsets, history splits). *)
let base_slice so cfg =
  Slice.make_jaux
    ~self:(pack_aux Mutex.Not_own (Ptr.Set.of_list cfg.slots) Hist.empty)
    ~joint:
      (Heap.of_list
         ((cfg.lk, Value.bool false) :: (cfg.obj, so.so_init)
         :: List.map (fun p -> (p, slot_empty)) cfg.slots))
    ~jaux:(pack_pendings (List.map (fun _ -> Hist.empty) cfg.slots))
    ~other:(pack_aux Mutex.Not_own Ptr.Set.empty Hist.empty)

let transitions so cfg =
  [
    publish_tr so cfg; lock_tr cfg; unlock_tr cfg; apply_tr so cfg;
    respond_tr cfg; claim_tr cfg;
  ]

let enum so cfg ?(depth = 3) () =
  let rec run k frontier acc =
    if k = 0 then acc
    else
      let next =
        List.concat_map
          (fun s ->
            List.concat_map
              (fun tr -> tr.Concurroid.tr_step s)
              (transitions so cfg))
          frontier
      in
      run (k - 1) next (next @ acc)
  in
  let reachable = base_slice so cfg :: run depth [ base_slice so cfg ] [] in
  (* split the reachable selves between self and other *)
  List.concat_map
    (fun s ->
      List.filter_map
        (fun (a, b) ->
          match Aux.join b (Slice.other s) with
          | Some other -> Some (s |> Slice.with_self a |> Slice.with_other other)
          | None -> None)
        (Aux.splits (Slice.self s)))
    reachable

let concurroid so cfg ?(depth = 3) label =
  Concurroid.make ~label ~name:"FlatCombine" ~coh:(coh so cfg)
    ~lock:
      {
        Concurroid.li_held =
          (fun s ->
            match split_aux (Slice.self s) with
            | Some (Mutex.Own, _, _) -> true
            | Some ((Mutex.Not_own : Mutex.t), _, _) | None -> false);
        li_acquires = [ "fc_try_lock" ];
        li_releases = [ "fc_unlock" ];
      }
    ~transitions:(transitions so cfg)
    ~enum:(fun () -> enum so cfg ~depth ())
    ()
(*!Acts*)

let find_slice fc st = State.find fc st

(* publish_act: post my request (erases to a slot write). *)
let publish_act so cfg fc ~slot op arg : unit Action.t =
  let slot_ptr = List.nth cfg.slots slot in
  Action.make
    ~name:(Fmt.str "fc_publish(%d,%s)" slot op)
    ~fp:(Footprint.writes fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match split_aux (Slice.self s) with
        | Some (_, tokens, _) ->
          Ptr.Set.mem slot_ptr tokens
          && slot_state cfg (Slice.joint s) slot = Some `Empty
          && Option.is_some (op_code so op)
        | None -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      let code = Option.get (op_code so op) in
      ( (),
        State.add fc
          (Slice.with_joint
             (Heap.update slot_ptr (slot_request code arg) (Slice.joint s))
             s)
          st ))
    ~phys:(fun _ ->
      Action.Write (slot_ptr, slot_request (Option.value (op_code so op) ~default:0) arg))
    ()

(* poll: read my slot; blocks until either my result is ready or the
   combiner lock is free (so progress is always possible). *)
let poll_act cfg fc ~slot : [ `Done of Value.t | `Pending ] Action.t =
  let slot_ptr = List.nth cfg.slots slot in
  Action.make
    ~name:(Fmt.str "fc_poll(%d)" slot)
    ~fp:(Footprint.reads fc)
    ~enabled:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match (slot_state cfg (Slice.joint s) slot, lock_bit cfg (Slice.joint s)) with
        | Some (`Done _), _ -> true
        | _, Some false -> true
        | _ -> false)
      | None -> true)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> Option.is_some (slot_state cfg (Slice.joint s) slot)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      match slot_state cfg (Slice.joint s) slot with
      | Some (`Done res) -> (`Done res, st)
      | _ -> (`Pending, st))
    ~phys:(fun _ -> Action.Read slot_ptr)
    ()

(* try_lock / unlock. *)
let try_lock_act cfg fc : bool Action.t =
  Action.make ~name:"fc_try_lock" ~fp:(Footprint.cases fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s ->
        Option.is_some (lock_bit cfg (Slice.joint s))
        && Option.is_some (split_aux (Slice.self s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
      | Some true, _ -> (false, st)
      | Some false, Some (_, tokens, hist) ->
        ( true,
          State.add fc
            (s
            |> Slice.with_joint
                 (Heap.update cfg.lk (Value.bool true) (Slice.joint s))
            |> Slice.with_self (pack_aux Mutex.Own tokens hist))
            st )
      | _ -> assert false)
    ~phys:(fun _ ->
      Action.Cas
        { loc = cfg.lk; expect = Value.bool false; replace = Value.bool true })
    ()

let unlock_act cfg fc : unit Action.t =
  Action.make ~name:"fc_unlock" ~fp:(Footprint.writes fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
        | Some true, Some (Mutex.Own, _, _) -> pass_finished cfg s
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      let _, tokens, hist = Option.get (split_aux (Slice.self s)) in
      ( (),
        State.add fc
          (s
          |> Slice.with_joint
               (Heap.update cfg.lk (Value.bool false) (Slice.joint s))
          |> Slice.with_self (pack_aux Mutex.Not_own tokens hist))
          st ))
    ~phys:(fun _ -> Action.Write (cfg.lk, Value.bool false))
    ()

(* read_slot (combiner side): idle. *)
let read_slot_act cfg fc i :
    [ `Empty | `Request of int * Value.t | `Done of Value.t ] Action.t =
  Action.make
    ~name:(Fmt.str "fc_read_slot(%d)" i)
    ~fp:(Footprint.reads fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> Option.is_some (slot_state cfg (Slice.joint s) i)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      (Option.get (slot_state cfg (Slice.joint s) i), st))
    ~phys:(fun _ -> Action.Read (List.nth cfg.slots i))
    ()

(* apply_act: execute slot [i]'s request on the object (the helped
   linearization point); erases to the object-cell write. *)
let apply_act so cfg fc i : unit Action.t =
  Action.make
    ~name:(Fmt.str "fc_apply(%d)" i)
    ~fp:(Footprint.writes fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match
          ( split_aux (Slice.self s), slot_state cfg (Slice.joint s) i,
            pending_at cfg (Slice.jaux s) i, obj_state cfg (Slice.joint s),
            fresh_ts cfg s )
        with
        | Some (Mutex.Own, _, _), Some (`Request (code, arg)), Some pending,
          Some obj, Some _ -> (
          Hist.is_empty pending
          &&
          match op_of_code so code with
          | Some op -> Option.is_some (so.so_apply op arg obj)
          | None -> false)
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      let (`Request (code, arg)) =
        match slot_state cfg (Slice.joint s) i with
        | Some (`Request _ as r) -> r
        | _ -> assert false
      in
      let op = Option.get (op_of_code so code) in
      let obj = Option.get (obj_state cfg (Slice.joint s)) in
      let res, state' = Option.get (so.so_apply op arg obj) in
      let ts = Option.get (fresh_ts cfg s) in
      let entry = Hist.entry ~arg ~res ~state:state' op in
      let jaux =
        Option.get
          (set_pending cfg (Slice.jaux s) i (Hist.add ts entry Hist.empty))
      in
      ( (),
        State.add fc
          (s
          |> Slice.with_joint (Heap.update cfg.obj state' (Slice.joint s))
          |> Slice.with_jaux jaux)
          st ))
    ~phys:(fun st ->
      let s = State.find_exn fc st in
      match slot_state cfg (Slice.joint s) i with
      | Some (`Request (code, arg)) ->
        let op = Option.get (op_of_code so code) in
        let obj = Option.get (obj_state cfg (Slice.joint s)) in
        let _, state' = Option.get (so.so_apply op arg obj) in
        Action.Write (cfg.obj, state')
      | _ -> Action.Id)
    ()

(* respond_act: write the pending result into the slot. *)
let respond_act cfg fc i : unit Action.t =
  Action.make
    ~name:(Fmt.str "fc_respond(%d)" i)
    ~fp:(Footprint.writes fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match
          (split_aux (Slice.self s), slot_state cfg (Slice.joint s) i,
           pending_at cfg (Slice.jaux s) i)
        with
        | Some (Mutex.Own, _, _), Some (`Request _), Some pending ->
          Hist.cardinal pending = 1
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      let pending = Option.get (pending_at cfg (Slice.jaux s) i) in
      let e = List.hd (Hist.entries pending) in
      ( (),
        State.add fc
          (Slice.with_joint
             (Heap.update (List.nth cfg.slots i) (slot_done e.Hist.res)
                (Slice.joint s))
             s)
          st ))
    ~phys:(fun st ->
      let s = State.find_exn fc st in
      let pending = Option.get (pending_at cfg (Slice.jaux s) i) in
      match Hist.entries pending with
      | [ e ] -> Action.Write (List.nth cfg.slots i, slot_done e.Hist.res)
      | _ -> Action.Id)
    ()

(* claim_act: collect my result and the ascribed history entry. *)
let claim_act cfg fc ~slot : Value.t Action.t =
  let slot_ptr = List.nth cfg.slots slot in
  Action.make
    ~name:(Fmt.str "fc_claim(%d)" slot)
    ~fp:(Footprint.writes fc)
    ~safe:(fun st ->
      match find_slice fc st with
      | Some s -> (
        match
          (split_aux (Slice.self s), slot_state cfg (Slice.joint s) slot,
           pending_at cfg (Slice.jaux s) slot)
        with
        | Some (_, tokens, _), Some (`Done _), Some pending ->
          Ptr.Set.mem slot_ptr tokens && Hist.cardinal pending = 1
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn fc st in
      let mx, tokens, hist = Option.get (split_aux (Slice.self s)) in
      let pending = Option.get (pending_at cfg (Slice.jaux s) slot) in
      let res =
        match slot_state cfg (Slice.joint s) slot with
        | Some (`Done r) -> r
        | _ -> assert false
      in
      let jaux = Option.get (set_pending cfg (Slice.jaux s) slot Hist.empty) in
      ( res,
        State.add fc
          (s
          |> Slice.with_joint (Heap.update slot_ptr slot_empty (Slice.joint s))
          |> Slice.with_jaux jaux
          |> Slice.with_self
               (pack_aux mx tokens (Hist.join_exn hist pending)))
          st ))
    ~phys:(fun _ -> Action.Write (slot_ptr, slot_empty))
    ()
(*!Stab*)

(* My slot token is mine forever. *)
let assert_token fc cfg ~slot st =
  match State.find fc st with
  | Some s -> (
    match split_aux (Slice.self s) with
    | Some (_, tokens, _) -> Ptr.Set.mem (List.nth cfg.slots slot) tokens
    | None -> false)
  | None -> false

(* Once my slot is Done with my pending entry, nobody else can take it:
   Done(res) with a pending entry stays until I claim. *)
let assert_done_preserved fc cfg ~slot res st =
  match State.find fc st with
  | Some s -> (
    match slot_state cfg (Slice.joint s) slot with
    | Some (`Done r) -> Value.equal r res
    | _ -> false)
  | None -> false

(* My claimed history entries are permanent. *)
let assert_hist_owned fc h0 st =
  match State.find fc st with
  | Some s -> (
    match split_aux (Slice.self s) with
    | Some (_, _, hist) -> Hist.subhist h0 hist
    | None -> false)
  | None -> false
(*!Main*)

(* One combiner pass over a slot. *)
let combine_slot so cfg fc i : unit Prog.t =
  let open Prog in
  let* st = act (read_slot_act cfg fc i) in
  match st with
  | `Request _ ->
    let* () = act (apply_act so cfg fc i) in
    act (respond_act cfg fc i)
  | `Empty | `Done _ -> ret ()

(* flat_combine (Section 4.2): publish, then either collect a helped
   result or become the combiner and run everybody's requests. *)
let flat_combine so cfg fc ~slot op arg : Value.t Prog.t =
  let open Prog in
  let* () = act (publish_act so cfg fc ~slot op arg) in
  Prog.ffix
    (fun loop () ->
      let* status = act (poll_act cfg fc ~slot) in
      match status with
      | `Done _ -> act (claim_act cfg fc ~slot)
      | `Pending ->
        let* got = act (try_lock_act cfg fc) in
        if got then
          let* () =
            List.fold_left
              (fun acc i -> seq acc (combine_slot so cfg fc i))
              (ret ())
              (List.init (List.length cfg.slots) Fun.id)
          in
          let* () = act (unlock_act cfg fc) in
          loop ()
        else loop ())
    ()

(* The paper's flat_combine spec (Section 4.2, weak form): from an empty
   self history, the call returns w with the self history gaining
   exactly one entry (op, arg, w) — regardless of who executed it. *)
let flat_combine_spec so cfg fc ~slot op arg : Value.t Spec.t =
  ignore so;
  Spec.make
    ~name:(Fmt.str "flat_combine(%s@%d)" op slot)
    ~pre:(fun st ->
      match State.find fc st with
      | Some s -> (
        match split_aux (Slice.self s) with
        | Some (Mutex.Not_own, tokens, hist) ->
          Ptr.Set.mem (List.nth cfg.slots slot) tokens
          && Hist.is_empty hist
          && slot_state cfg (Slice.joint s) slot = Some `Empty
        | _ -> false)
      | None -> false)
    ~post:(fun w _i f ->
      match State.find fc f with
      | Some s -> (
        match split_aux (Slice.self s) with
        | Some (_, _, hist) -> (
          match Hist.entries hist with
          | [ e ] ->
            String.equal e.Hist.op op
            && Value.equal e.Hist.arg arg
            && Value.equal e.Hist.res w
          | _ -> false)
        | None -> false)
      | None -> false)
(*!End*)
