(* Treiber's non-blocking stack (paper, Section 6, Table 1 row "Treiber
   stack"): a [top] pointer CAS-swung over a linked list of nodes.
   Popped nodes are retired in place (they stay in the joint heap as
   garbage), which is what rules out ABA in the algorithm.

   Specs use the PCM of time-stamped histories: each successful push or
   pop stamps an entry, owned by the thread that performed it, recording
   the operation and the abstract stack contents it produced; coherence
   forces the combined history to be a legal LIFO run whose last state
   matches the physical list. *)

open Fcsl_heap
open Fcsl_core
module Aux = Fcsl_pcm.Aux
module Hist = Fcsl_pcm.Hist

(*!Libs*)
let top_cell = Ptr.of_int 80

(* Pointers the environment may use for its own pushed nodes during
   interference. *)
let env_node_cells = List.map Ptr.of_int [ 85; 86 ]

(* Abstract stack contents encoded as a Value list. *)
let rec encode_stack = function
  | [] -> Value.Unit
  | v :: rest -> Value.Pair (Value.int v, encode_stack rest)

let rec decode_stack v =
  match v with
  | Value.Unit -> Some []
  | Value.Pair (Value.Int x, rest) ->
    Option.map (fun r -> x :: r) (decode_stack rest)
  | _ -> None

let node_of joint p =
  Option.bind (Heap.find p joint) (fun v ->
      match Value.as_pair v with
      | Some (Value.Int x, Value.Ptr next) -> Some (x, next)
      | _ -> None)

let pack_node v next = Value.pair (Value.int v) (Value.ptr next)

(* Walk the physical list from [top]; [None] if it is broken or cyclic. *)
let list_from joint top =
  let rec go seen p acc =
    if Ptr.is_null p then Some (List.rev acc)
    else if List.exists (Ptr.equal p) seen then None
    else
      match node_of joint p with
      | Some (v, next) -> go (p :: seen) next ((p, v) :: acc)
      | None -> None
  in
  go [] top []

let top_of joint = Option.bind (Heap.find top_cell joint) Value.as_ptr

let contents joint =
  Option.bind (top_of joint) (fun t ->
      Option.map (List.map snd) (list_from joint t))

(* Replay a history from the empty stack, checking LIFO legality.
   Returns the final abstract contents. *)
let replay total =
  let rec go ts stack =
    if ts > Hist.last_ts total then Some stack
    else
      match Hist.find ts total with
      | None -> None
      | Some e -> (
        match (e.Hist.op, decode_stack e.Hist.state) with
        | "push", Some st' ->
          if st' = (match Value.as_int e.Hist.arg with
                    | Some v -> v :: stack
                    | None -> [ -1 ])
          then go (ts + 1) st'
          else None
        | "pop", Some st' -> (
          match (stack, Value.as_int e.Hist.res) with
          | v :: rest, Some r when v = r && st' = rest -> go (ts + 1) st'
          | _ -> None)
        | _ -> None)
  in
  if Hist.continuous total then go 1 [] else None

let hist_of a = Aux.as_hist a
(*!Conc*)

(* Coherence: [top] heads a well-formed null-terminated list; the
   combined history is a legal LIFO run from the empty stack whose final
   contents are exactly the physical list.  Non-list cells in the joint
   heap are retired garbage. *)
let coh s =
  match
    (contents (Slice.joint s), hist_of (Slice.self s), hist_of (Slice.other s))
  with
  | Some phys, Some hs, Some ho -> (
    Slice.valid s
    &&
    match Hist.join hs ho with
    | Some total -> (
      match replay total with
      | Some abstract -> abstract = phys
      | None -> false)
    | None -> false)
  | _ -> false

(* Environment push: a new node (from the reserved env pool) swung onto
   the stack — an external transition acquiring heap from the
   environment's private state. *)
let push_tr : Concurroid.transition =
  Concurroid.external_ ~name:"push" (fun s ->
      match
        ( top_of (Slice.joint s), contents (Slice.joint s),
          hist_of (Slice.self s), hist_of (Slice.other s) )
      with
      | Some top, Some phys, Some hs, Some ho ->
        let ts =
          match Hist.join hs ho with
          | Some total -> Hist.last_ts total + 1
          | None -> -1
        in
        if ts < 0 then []
        else
          List.concat_map
            (fun p ->
              if Heap.mem p (Slice.joint s) then []
              else
                List.map
                  (fun v ->
                    let entry =
                      Hist.entry ~arg:(Value.int v)
                        ~state:(encode_stack (v :: phys))
                        "push"
                    in
                    s
                    |> Slice.with_joint
                         (Heap.add p (pack_node v top)
                            (Heap.update top_cell (Value.ptr p) (Slice.joint s)))
                    |> Slice.with_self (Aux.hist (Hist.add ts entry hs)))
                  [ 0; 1 ])
            env_node_cells
      | _ -> [])

(* Pop: unlink the top node; the node remains in the joint heap as
   garbage (internal transition, footprint preserved). *)
let pop_tr : Concurroid.transition =
  Concurroid.internal ~name:"pop" (fun s ->
      match
        ( top_of (Slice.joint s), hist_of (Slice.self s),
          hist_of (Slice.other s) )
      with
      | Some top, Some hs, Some ho when not (Ptr.is_null top) -> (
        match (node_of (Slice.joint s) top, contents (Slice.joint s)) with
        | Some (v, next), Some (_ :: rest) ->
          let ts =
            match Hist.join hs ho with
            | Some total -> Hist.last_ts total + 1
            | None -> -1
          in
          if ts < 0 then []
          else
            let entry =
              Hist.entry ~res:(Value.int v) ~state:(encode_stack rest) "pop"
            in
            [
              s
              |> Slice.with_joint
                   (Heap.update top_cell (Value.ptr next) (Slice.joint s))
              |> Slice.with_self (Aux.hist (Hist.add ts entry hs));
            ]
        | _ -> [])
      | _ -> [])

(* Enumeration: runs of up to [depth] push/pop transitions from the
   empty stack, with every history split. *)
let enum ?(depth = 2) () =
  let base =
    Slice.make ~self:(Aux.hist Hist.empty)
      ~joint:(Heap.singleton top_cell (Value.ptr Ptr.null))
      ~other:(Aux.hist Hist.empty)
  in
  let rec run k frontier acc =
    if k = 0 then acc
    else
      let next =
        List.concat_map
          (fun s ->
            List.concat_map
              (fun tr -> tr.Concurroid.tr_step s)
              [ push_tr; pop_tr ])
          frontier
      in
      run (k - 1) next (next @ acc)
  in
  let reachable = base :: run depth [ base ] [] in
  List.concat_map
    (fun s ->
      match hist_of (Slice.self s) with
      | Some h ->
        List.filter_map
          (fun (a, b) ->
            match (Aux.as_hist a, Aux.as_hist b) with
            | Some ha, Some hb ->
              Some
                (s |> Slice.with_self (Aux.hist ha)
               |> Slice.with_other (Aux.hist hb))
            | _ -> None)
          (Aux.splits (Aux.hist h))
      | None -> [])
    reachable

let concurroid ?(depth = 2) label =
  Concurroid.make ~label ~name:"Treiber" ~coh
    ~transitions:[ push_tr; pop_tr ]
    ~enum:(fun () -> enum ~depth ())
    ()
(*!Acts*)

(* read_top: idle. *)
let read_top tb : Ptr.t Action.t =
  Action.make ~name:"read_top" ~fp:(Footprint.reads tb)
    ~safe:(fun st ->
      match State.find tb st with
      | Some s -> Option.is_some (top_of (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn tb st in
      (Option.get (top_of (Slice.joint s)), st))
    ~phys:(fun _ -> Action.Read top_cell)
    ()

(* read_top_nonempty: the blocking variant used by consumers that wait
   for an element. *)
let read_top_nonempty tb : Ptr.t Action.t =
  Action.make ~name:"read_top_nonempty" ~fp:(Footprint.reads tb)
    ~enabled:(fun st ->
      match State.find tb st with
      | Some s -> (
        match top_of (Slice.joint s) with
        | Some t -> not (Ptr.is_null t)
        | None -> true)
      | None -> true)
    ~safe:(fun st ->
      match State.find tb st with
      | Some s -> Option.is_some (top_of (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn tb st in
      (Option.get (top_of (Slice.joint s)), st))
    ~phys:(fun _ -> Action.Read top_cell)
    ()

(* read_node: idle; nodes are never deallocated, so reading a retired
   node is safe (that is exactly why Treiber's stack tolerates stale
   pointers). *)
let read_node tb p : (int * Ptr.t) Action.t =
  Action.make
    ~name:(Fmt.str "read_node(%a)" Ptr.pp p)
    ~fp:(Footprint.reads tb)
    ~safe:(fun st ->
      match State.find tb st with
      | Some s -> Option.is_some (node_of (Slice.joint s) p)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn tb st in
      (Option.get (node_of (Slice.joint s) p), st))
    ~phys:(fun _ -> Action.Read p)
    ()

(* set_node: prepare a private cell as a node (a write to the thread's
   own heap — Priv business, invisible to the stack protocol). *)
let set_node pv p v next : unit Action.t =
  Action.make
    ~name:(Fmt.str "set_node(%a)" Ptr.pp p)
    ~fp:(Footprint.writes pv)
    ~safe:(fun st ->
      match Aux.as_heap (State.self pv st) with
      | Some h -> Heap.mem p h
      | None -> false)
    ~step:(fun st ->
      let h = Option.get (Aux.as_heap (State.self pv st)) in
      ((), State.with_self pv (Aux.heap (Heap.update p (pack_node v next) h)) st))
    ~phys:(fun _ -> Action.Write (p, pack_node v next))
    ()

(* cas_push: the publishing CAS.  On success the node cell migrates from
   the thread's private heap into the stack's joint heap (communicating
   action) and the push is stamped into the thread's history. *)
let cas_push tb pv p v expected : bool Action.t =
  Action.make ~communicating:true
    ~name:(Fmt.str "cas_push(%a)" Ptr.pp p)
    ~fp:
      (Footprint.of_list
         [ (tb, [ Footprint.Read; Write; Cas ]); (pv, [ Footprint.Read; Write ]) ])
    ~safe:(fun st ->
      match (State.find tb st, Aux.as_heap (State.self pv st)) with
      | Some s, Some priv -> (
        Option.is_some (top_of (Slice.joint s))
        && Heap.mem p priv
        && (match Heap.find p priv with
           | Some cell -> Value.equal cell (pack_node v expected)
           | None -> false)
        && Option.is_some (hist_of (Slice.self s))
        && Option.is_some (hist_of (Slice.other s)))
      | _ -> false)
    ~step:(fun st ->
      let s = State.find_exn tb st in
      let top = Option.get (top_of (Slice.joint s)) in
      if not (Ptr.equal top expected) then (false, st)
      else
        let priv = Option.get (Aux.as_heap (State.self pv st)) in
        let phys = Option.value (contents (Slice.joint s)) ~default:[] in
        let hs = Option.get (hist_of (Slice.self s)) in
        let ho = Option.get (hist_of (Slice.other s)) in
        let ts = Hist.last_ts (Hist.join_exn hs ho) + 1 in
        let entry =
          Hist.entry ~arg:(Value.int v) ~state:(encode_stack (v :: phys)) "push"
        in
        let s' =
          s
          |> Slice.with_joint
               (Heap.add p (pack_node v expected)
                  (Heap.update top_cell (Value.ptr p) (Slice.joint s)))
          |> Slice.with_self (Aux.hist (Hist.add ts entry hs))
        in
        let st =
          st |> State.add tb s'
          |> State.with_self pv (Aux.heap (Heap.free p priv))
        in
        (true, st))
    ~phys:(fun _ ->
      Action.Cas
        { loc = top_cell; expect = Value.ptr expected; replace = Value.ptr p })
    ()

(* cas_pop: unlink the expected top node; it stays in the joint heap as
   garbage; the pop is stamped. *)
let cas_pop tb expected next : bool Action.t =
  Action.make
    ~name:(Fmt.str "cas_pop(%a)" Ptr.pp expected)
    ~fp:(Footprint.of_list [ (tb, [ Footprint.Read; Write; Cas ]) ])
    ~safe:(fun st ->
      match State.find tb st with
      | Some s ->
        Option.is_some (top_of (Slice.joint s))
        && Option.is_some (node_of (Slice.joint s) expected)
        && Option.is_some (hist_of (Slice.self s))
        && Option.is_some (hist_of (Slice.other s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn tb st in
      let top = Option.get (top_of (Slice.joint s)) in
      if not (Ptr.equal top expected) then (false, st)
      else
        let v, _ = Option.get (node_of (Slice.joint s) expected) in
        let phys = Option.value (contents (Slice.joint s)) ~default:[] in
        let rest = match phys with [] -> [] | _ :: r -> r in
        let hs = Option.get (hist_of (Slice.self s)) in
        let ho = Option.get (hist_of (Slice.other s)) in
        let ts = Hist.last_ts (Hist.join_exn hs ho) + 1 in
        let entry =
          Hist.entry ~res:(Value.int v) ~state:(encode_stack rest) "pop"
        in
        let s' =
          s
          |> Slice.with_joint
               (Heap.update top_cell (Value.ptr next) (Slice.joint s))
          |> Slice.with_self (Aux.hist (Hist.add ts entry hs))
        in
        (true, State.add tb s' st))
    ~phys:(fun _ ->
      Action.Cas
        {
          loc = top_cell;
          expect = Value.ptr expected;
          replace = Value.ptr next;
        })
    ()
(*!Stab*)

(* Retired and live nodes are never mutated or removed: any published
   node's contents are stable. *)
let assert_node_pinned tb p (v, next) st =
  match State.find tb st with
  | Some s -> (
    match node_of (Slice.joint s) p with
    | Some (v', next') -> v = v' && Ptr.equal next next'
    | None -> false)
  | None -> false

(* My stamped entries remain in the combined history forever. *)
let assert_hist_owned tb h0 st =
  match State.find tb st with
  | Some s -> (
    match hist_of (Slice.self s) with
    | Some hs -> Hist.subhist h0 hs
    | None -> false)
  | None -> false

(* History timestamps only grow. *)
let assert_ts_at_least tb n st =
  match State.find tb st with
  | Some s -> (
    match (hist_of (Slice.self s), hist_of (Slice.other s)) with
    | Some hs, Some ho -> (
      match Hist.join hs ho with
      | Some total -> Hist.last_ts total >= n
      | None -> false)
    | _ -> false)
  | None -> false
(*!Main*)

(* push: retry loop re-reading the top and re-pointing the private node
   until the CAS lands.  Retries are bounded by interference (the CAS
   only fails when somebody else succeeded) — the lock-free progress
   property, visible here as bounded exploration. *)
let push tb pv p v : unit Prog.t =
  let open Prog in
  Prog.ffix
    (fun loop () ->
      let* t = act (read_top tb) in
      let* () = act (set_node pv p v t) in
      let* ok = act (cas_push tb pv p v t) in
      if ok then ret () else loop ())
    ()

(* pop: retry loop; [None] on an empty stack. *)
let pop tb : int option Prog.t =
  let open Prog in
  Prog.ffix
    (fun loop () ->
      let* t = act (read_top tb) in
      if Ptr.is_null t then ret None
      else
        let* _, next = act (read_node tb t) in
        let* ok = act (cas_pop tb t next) in
        if ok then
          let* v, _ = act (read_node tb t) in
          ret (Some v)
        else loop ())
    ()

(* pop_wait: block (rather than return None) while the stack is empty —
   the consumer side of the producer/consumer client. *)
let pop_wait tb : int Prog.t =
  let open Prog in
  Prog.ffix
    (fun loop () ->
      let* t = act (read_top_nonempty tb) in
      if Ptr.is_null t then loop ()
      else
        let* _, next = act (read_node tb t) in
        let* ok = act (cas_pop tb t next) in
        if ok then
          let* v, _ = act (read_node tb t) in
          ret v
        else loop ())
    ()

(* Specs: subjective histories.  A thread that pushed owns exactly the
   new entry; the entry is stamped after everything in the initial
   history. *)

let self_hist tb st =
  match State.find tb st with
  | Some s -> Option.value (hist_of (Slice.self s)) ~default:Hist.empty
  | None -> Hist.empty

let total_hist tb st =
  match State.find tb st with
  | Some s -> (
    match (hist_of (Slice.self s), hist_of (Slice.other s)) with
    | Some hs, Some ho -> Option.value (Hist.join hs ho) ~default:Hist.empty
    | _ -> Hist.empty)
  | None -> Hist.empty

let push_spec tb pv p v : unit Spec.t =
  Spec.make
    ~name:(Fmt.str "push(%a,%d)" Ptr.pp p v)
    ~pre:(fun st ->
      Hist.is_empty (self_hist tb st)
      && (match Aux.as_heap (State.self pv st) with
         | Some h -> Heap.mem p h
         | None -> false))
    ~post:(fun () i f ->
      let hi = total_hist tb i in
      let hs = self_hist tb f in
      Hist.cardinal hs = 1
      && List.for_all
           (fun (ts, e) ->
             ts > Hist.last_ts hi
             && String.equal e.Hist.op "push"
             && Value.equal e.Hist.arg (Value.int v))
           (Hist.bindings hs)
      &&
      match Aux.as_heap (State.self pv f) with
      | Some h -> not (Heap.mem p h)
      | None -> false)

let pop_spec tb : int option Spec.t =
  Spec.make ~name:"pop"
    ~pre:(fun st -> Hist.is_empty (self_hist tb st))
    ~post:(fun r i f ->
      let hi = total_hist tb i in
      let hs = self_hist tb f in
      match r with
      | None -> Hist.is_empty hs
      | Some v ->
        Hist.cardinal hs = 1
        && List.for_all
             (fun (ts, e) ->
               ts > Hist.last_ts hi
               && String.equal e.Hist.op "pop"
               && Value.equal e.Hist.res (Value.int v))
             (Hist.bindings hs))

(* Verification drivers. *)

let tb_label = Label.make "treiber"
let pv_label = Label.make "treiber_priv"

(* Private heaps holding candidate node cells. *)
let priv_enum () =
  let cells = List.map Ptr.of_int [ 95; 96 ] in
  List.map
    (fun sub ->
      let h =
        List.fold_left (fun h p -> Heap.add p (Value.int 0) h) Heap.empty sub
      in
      Slice.make ~self:(Aux.heap h) ~joint:Heap.empty
        ~other:(Aux.heap Heap.empty))
    [ []; [ List.nth cells 0 ]; cells ]

let world ?(depth = 2) () =
  World.of_list
    [ Priv.make ~enum:priv_enum pv_label; concurroid ~depth tb_label ]

let init_states ?(depth = 1) () =
  List.concat_map
    (fun ts ->
      List.map
        (fun ps ->
          State.empty |> State.add tb_label ts |> State.add pv_label ps)
        (priv_enum ()))
    (enum ~depth ())

let node1 = Ptr.of_int 95
let node2 = Ptr.of_int 96

let verify ?(fuel = 20) ?(env_budget = 2) ?(max_outcomes = 400_000) () :
    Verify.report list =
  let w = world () in
  let init = init_states () in
  [
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (push tb_label pv_label node1 1)
      (push_spec tb_label pv_label node1 1);
    Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
      (pop tb_label) (pop_spec tb_label);
  ]

(* push || pop: the history stamps compose. *)
let verify_push_pop ?(fuel = 24) ?(env_budget = 1) ?(max_outcomes = 400_000) ()
    : Verify.report =
  let w = world () in
  let init = init_states () in
  let spec =
    Spec.make ~name:"push || pop"
      ~pre:(fun st ->
        Hist.is_empty (self_hist tb_label st)
        &&
        match Aux.as_heap (State.self pv_label st) with
        | Some h -> Heap.mem node1 h
        | None -> false)
      ~post:(fun ((), r) _i f ->
        let hs = self_hist tb_label f in
        let pushes =
          List.filter (fun e -> String.equal e.Hist.op "push") (Hist.entries hs)
        in
        let pops =
          List.filter (fun e -> String.equal e.Hist.op "pop") (Hist.entries hs)
        in
        List.length pushes = 1
        && List.length pops = (match r with Some _ -> 1 | None -> 0))
  in
  Verify.check_triple ~fuel ~env_budget ~max_outcomes ~world:w ~init
    (Prog.par_split
       (Prog.split_cells ~pv:pv_label ~to_left:[ node1 ] ~to_right:[])
       (push tb_label pv_label node1 1)
       (pop tb_label))
    spec
(*!End*)
