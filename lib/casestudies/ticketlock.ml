(* The ticketed lock (paper, Section 6, Table 1 row "Ticketed lock").

   Layout: two cells, [next] (the ticket dispenser) and [owner] (the
   ticket currently being served).  Auxiliary state: self = (set of
   tickets this thread has drawn and not yet retired, client ghost).
   A thread holds the lock exactly when the [owner] ticket is in its
   ticket set.  Tickets are encoded as pointers (the ticket number). *)

open Fcsl_heap
open Fcsl_core
open Lock_intf
module Aux = Fcsl_pcm.Aux

let impl_name = "Ticketed lock"

type config = { next : Ptr.t; owner : Ptr.t }

let default_config = { next = Ptr.of_int 91; owner = Ptr.of_int 92 }
let config_cells cfg = [ cfg.next; cfg.owner ]

(*!Libs*)
let ticket n = Ptr.of_int n

let cell_int p joint = Option.bind (Heap.find p joint) Value.as_int

let next_of cfg joint = cell_int cfg.next joint
let owner_of cfg joint = cell_int cfg.owner joint

let protected_heap cfg joint = Heap.free cfg.next (Heap.free cfg.owner joint)

let split_aux a =
  match Aux.as_pair a with
  | Some (t, g) -> Option.map (fun s -> (s, g)) (Aux.as_set t)
  | None -> None

let pack_aux tickets g = Aux.pair (Aux.set tickets) g

let holds cfg l st =
  match State.find l st with
  | Some s -> (
    match (owner_of cfg (Slice.joint s), split_aux (Slice.self s)) with
    | Some o, Some (tickets, _) -> Ptr.Set.mem (ticket o) tickets
    | _ -> false)
  | None -> false
(*!Conc*)

(* Coherence: owner ≤ next; the live tickets [owner, next) are exactly
   the disjoint union of the threads' ticket sets; when no live ticket
   exists the lock is free and the invariant holds. *)
let coh cfg resource s =
  match
    (next_of cfg (Slice.joint s), owner_of cfg (Slice.joint s),
     split_aux (Slice.self s), split_aux (Slice.other s))
  with
  | Some n, Some o, Some (ts, gs), Some (tos, go) -> (
    Slice.valid s && 1 <= o && o <= n
    && Ptr.Set.is_empty (Ptr.Set.inter ts tos)
    &&
    let live = Ptr.Set.of_list (List.init (n - o) (fun i -> ticket (o + i))) in
    Ptr.Set.equal (Ptr.Set.union ts tos) live
    &&
    match Aux.join gs go with
    | Some total ->
      if o = n then resource.r_inv (protected_heap cfg (Slice.joint s)) total
      else true
    | None -> false)
  | _ -> false

(* Draw a ticket: bump [next], add the drawn ticket to self. *)
let take_ticket_tr cfg : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "take_ticket";
    tr_step =
      (fun s ->
        match (next_of cfg (Slice.joint s), split_aux (Slice.self s)) with
        | Some n, Some (ts, g) ->
          [
            s
            |> Slice.with_joint
                 (Heap.update cfg.next (Value.int (n + 1)) (Slice.joint s))
            |> Slice.with_self (pack_aux (Ptr.Set.add (ticket n) ts) g);
          ]
        | _ -> []);
  }

(* Retire the served ticket: bump [owner], drop the ticket, credit a
   ghost delta restoring the invariant (the next holder assumes it). *)
let unlock_tr cfg resource : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "unlock";
    tr_step =
      (fun s ->
        match
          (owner_of cfg (Slice.joint s), split_aux (Slice.self s),
           split_aux (Slice.other s))
        with
        | Some o, Some (ts, g), Some (_, go) when Ptr.Set.mem (ticket o) ts ->
          let prot = protected_heap cfg (Slice.joint s) in
          List.filter_map
            (fun delta ->
              match Aux.join g delta with
              | Some g' -> (
                match Aux.join g' go with
                | Some total when resource.r_inv prot total ->
                  Some
                    (s
                    |> Slice.with_joint
                         (Heap.update cfg.owner (Value.int (o + 1))
                            (Slice.joint s))
                    |> Slice.with_self
                         (pack_aux (Ptr.Set.remove (ticket o) ts) g'))
                | Some _ | None -> None)
              | None -> None)
            (Aux.Unit :: resource.r_ghosts ())
        | _ -> []);
  }

(* The holder mutates the protected cells (same footprint). *)
let mutate_tr cfg resource : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "mutate";
    tr_step =
      (fun s ->
        match (owner_of cfg (Slice.joint s), split_aux (Slice.self s)) with
        | Some o, Some (ts, _) when Ptr.Set.mem (ticket o) ts ->
          let prot = protected_heap cfg (Slice.joint s) in
          resource.r_heaps ()
          |> List.filter (fun h ->
                 (not (Heap.equal h prot))
                 && Ptr.Set.equal (Heap.dom_set h) (Heap.dom_set prot))
          |> List.map (fun h ->
                 Slice.with_joint
                   (Heap.add cfg.next
                      (Value.int (Option.get (next_of cfg (Slice.joint s))))
                      (Heap.add cfg.owner (Value.int o) h))
                   s)
        | _ -> []);
  }

let enum cfg resource () =
  List.concat_map
    (fun o ->
      List.concat_map
        (fun waiting ->
          let n = o + waiting in
          let free = o = n in
          List.concat_map
            (fun (prot, total) ->
              let joint =
                Heap.add cfg.next (Value.int n)
                  (Heap.add cfg.owner (Value.int o) prot)
              in
              let live =
                Ptr.Set.of_list (List.init (n - o) (fun i -> ticket (o + i)))
              in
              List.concat_map
                (fun (gs, go) ->
                  List.filter_map
                    (fun (ts, tos) ->
                      match (ts, tos) with
                      | Aux.Set ts, Aux.Set tos ->
                        Some
                          (Slice.make ~self:(pack_aux ts gs) ~joint
                             ~other:(pack_aux tos go))
                      | _ -> None)
                    (Aux.splits (Aux.set live)))
                (ghost_splits total))
            (protected_states resource ~free))
        [ 0; 1; 2 ])
    [ 1; 2 ]

let concurroid ~label cfg resource =
  Concurroid.make ~label ~name:"TLock" ~coh:(coh cfg resource)
    ~lock:
      {
        Concurroid.li_held =
          (fun s ->
            match (owner_of cfg (Slice.joint s), split_aux (Slice.self s)) with
            | Some o, Some (tickets, _) -> Ptr.Set.mem (ticket o) tickets
            | _ -> false);
        li_acquires = [ "take_ticket("; "read_owner(" ];
        li_releases = [ "tl_unlock(" ];
      }
    ~transitions:
      [ take_ticket_tr cfg; unlock_tr cfg resource; mutate_tr cfg resource ]
    ~enum:(enum cfg resource) ()
(*!Acts*)

let slice_shape_ok cfg st l =
  match State.find l st with
  | Some s ->
    Option.is_some (next_of cfg (Slice.joint s))
    && Option.is_some (owner_of cfg (Slice.joint s))
    && Option.is_some (split_aux (Slice.self s))
  | None -> false

(* take_ticket: erases to FAA(next, 1); takes take_ticket_tr. *)
let take_ticket l cfg : int Action.t =
  Action.make
    ~name:(Fmt.str "take_ticket(%a)" Ptr.pp cfg.next)
    ~fp:(Footprint.writes l)
    ~safe:(fun st -> slice_shape_ok cfg st l)
    ~step:(fun st ->
      let s = State.find_exn l st in
      let n = Option.get (next_of cfg (Slice.joint s)) in
      let ts, g = Option.get (split_aux (Slice.self s)) in
      let s' =
        s
        |> Slice.with_joint
             (Heap.update cfg.next (Value.int (n + 1)) (Slice.joint s))
        |> Slice.with_self (pack_aux (Ptr.Set.add (ticket n) ts) g)
      in
      (n, State.add l s' st))
    ~phys:(fun _ -> Action.Faa { loc = cfg.next; incr = 1 })
    ()

(* read_owner: idle read of the serving counter.  With [awaiting], the
   read is only scheduled once the counter reaches that ticket — the
   blocking reduction of the wait loop. *)
let read_owner ?awaiting l cfg : int Action.t =
  Action.make
    ~enabled:(fun st ->
      match awaiting with
      | None -> true
      | Some t -> (
        match State.find l st with
        | Some s -> owner_of cfg (Slice.joint s) = Some t
        | None -> true))
    ~name:(Fmt.str "read_owner(%a)" Ptr.pp cfg.owner)
    ~fp:(Footprint.reads l)
    ~safe:(fun st -> slice_shape_ok cfg st l)
    ~step:(fun st ->
      let s = State.find_exn l st in
      (Option.get (owner_of cfg (Slice.joint s)), st))
    ~phys:(fun _ -> Action.Read cfg.owner)
    ()

(* unlock: erases to a write of owner+1; takes unlock_tr. *)
let unlock_act l cfg resource ~delta : unit Action.t =
  Action.make
    ~name:(Fmt.str "tl_unlock(%a)" Ptr.pp cfg.owner)
    ~fp:(Footprint.writes l)
    ~safe:(fun st ->
      holds cfg l st
      &&
      match State.find l st with
      | Some s -> (
        let _, g = Option.get (split_aux (Slice.self s)) in
        match split_aux (Slice.other s) with
        | Some (_, go) -> (
          match Option.bind (Aux.join g delta) (Aux.join go) with
          | Some total ->
            resource.r_inv (protected_heap cfg (Slice.joint s)) total
          | None -> false)
        | None -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      let o = Option.get (owner_of cfg (Slice.joint s)) in
      let ts, g = Option.get (split_aux (Slice.self s)) in
      let s' =
        s
        |> Slice.with_joint
             (Heap.update cfg.owner (Value.int (o + 1)) (Slice.joint s))
        |> Slice.with_self
             (pack_aux (Ptr.Set.remove (ticket o) ts) (Aux.join_exn g delta))
      in
      ((), State.add l s' st))
    ~phys:(fun st ->
      let s = State.find_exn l st in
      let o = Option.get (owner_of cfg (Slice.joint s)) in
      Action.Write (cfg.owner, Value.int (o + 1)))
    ()

(* Protected-cell access, holder only. *)
let read l cfg p : Value.t Action.t =
  Action.make
    ~name:(Fmt.str "tl_read(%a)" Ptr.pp p)
    ~fp:(Footprint.reads l)
    ~safe:(fun st ->
      holds cfg l st
      &&
      match State.find l st with
      | Some s -> Heap.mem p (protected_heap cfg (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      (Heap.find_exn p (Slice.joint s), st))
    ~phys:(fun _ -> Action.Read p)
    ()

let write l cfg p v : unit Action.t =
  Action.make
    ~name:(Fmt.str "tl_write(%a)" Ptr.pp p)
    ~fp:(Footprint.writes l)
    ~safe:(fun st ->
      holds cfg l st
      &&
      match State.find l st with
      | Some s -> Heap.mem p (protected_heap cfg (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      ((), State.add l (Slice.with_joint (Heap.update p v (Slice.joint s)) s) st))
    ~phys:(fun _ -> Action.Write (p, v))
    ()
(*!Stab*)

(* Stability lemmas. *)

(* A drawn ticket stays mine until I retire it. *)
let assert_ticket_owned cfg l t st =
  match State.find l st with
  | Some s -> (
    ignore cfg;
    match split_aux (Slice.self s) with
    | Some (ts, _) -> Ptr.Set.mem (ticket t) ts
    | None -> false)
  | None -> false

(* The serving counter only grows. *)
let assert_owner_at_least cfg l n st =
  match State.find l st with
  | Some s -> (
    match owner_of cfg (Slice.joint s) with
    | Some o -> o >= n
    | None -> false)
  | None -> false

(* Once the counter reaches my ticket, it stays there until I retire:
   the ticket-lock handoff discipline. *)
let assert_being_served cfg l t st =
  match State.find l st with
  | Some s -> (
    match (owner_of cfg (Slice.joint s), split_aux (Slice.self s)) with
    | Some o, Some (ts, _) -> o = t && Ptr.Set.mem (ticket t) ts
    | _ -> false)
  | None -> false

(* While served, the protected heap is pinned. *)
let assert_protected_pinned cfg l h st =
  holds cfg l st
  &&
  match State.find l st with
  | Some s -> Heap.equal (protected_heap cfg (Slice.joint s)) h
  | None -> false
(*!Main*)

(* Acquire: draw a ticket, spin until served. *)
let lock l cfg : unit Prog.t =
  let open Prog in
  let* t = act (take_ticket l cfg) in
  Prog.ffix
    (fun loop () ->
      let* o = act (read_owner ~awaiting:t l cfg) in
      if o = t then ret () else loop ())
    ()

let unlock l cfg resource ~delta : unit Prog.t =
  Prog.act (unlock_act l cfg resource ~delta)

let self_ghost _cfg l st =
  match State.find l st with
  | Some s -> (
    match split_aux (Slice.self s) with Some (_, g) -> g | None -> Aux.Unit)
  | None -> Aux.Unit

let initial_slice cfg _resource prot total =
  Slice.make
    ~self:(pack_aux Ptr.Set.empty Aux.Unit)
    ~joint:
      (Heap.add cfg.next (Value.int 1)
         (Heap.add cfg.owner (Value.int 1) prot))
    ~other:(pack_aux Ptr.Set.empty total)
(*!End*)
