(* The CAS-based spinlock (paper, Section 6, Table 1 row "CAS-lock").

   Layout: one cell [lk] storing a boolean.  Auxiliary state: the mutual
   exclusion PCM paired with a client-chosen ghost PCM,
   self = (Own | NotOwn, client contribution).

   Source regions tagged for the Table 1 reproduction. *)

open Fcsl_heap
open Fcsl_core
open Lock_intf
module Aux = Fcsl_pcm.Aux
module Mutex = Fcsl_pcm.Instances.Mutex

let impl_name = "CAS-lock"

type config = { lk : Ptr.t }

let default_config = { lk = Ptr.of_int 90 }
let config_cells cfg = [ cfg.lk ]

(*!Libs*)
(* Projections of the lock's state shape. *)

let lock_bit cfg joint =
  Option.bind (Heap.find cfg.lk joint) Value.as_bool

let protected_heap cfg joint = Heap.free cfg.lk joint

let split_aux a =
  match Aux.as_pair a with
  | Some (m, g) -> Option.map (fun m -> (m, g)) (Aux.as_mutex m)
  | None -> None

let mutex_of a = Option.map fst (split_aux a)
let ghost_of a = Option.map snd (split_aux a)

let pack_aux m g = Aux.pair (Aux.Mutex m) g

let holds _cfg l st =
  match State.find l st with
  | Some s -> (
    match mutex_of (Slice.self s) with
    | Some Mutex.Own -> true
    | Some Mutex.Not_own | None -> false)
  | None -> false

let self_ghost _cfg l st =
  match State.find l st with
  | Some s -> (
    match ghost_of (Slice.self s) with Some g -> g | None -> Aux.Unit)
  | None -> Aux.Unit
(*!Conc*)

(* Coherence: the joint heap is the lock bit plus the protected cells;
   self/other are (mutex, ghost) pairs; the lock is physically taken iff
   somebody owns the mutex; and when free, the resource invariant ties
   the protected heap to the total ghost. *)
let coh cfg resource s =
  match
    (lock_bit cfg (Slice.joint s), split_aux (Slice.self s),
     split_aux (Slice.other s))
  with
  | Some b, Some (ms, gs), Some (mo, go) -> (
    Slice.valid s
    && b = (ms = Mutex.Own || mo = Mutex.Own)
    &&
    match Aux.join gs go with
    | Some total ->
      if b then true
      else resource.r_inv (protected_heap cfg (Slice.joint s)) total
    | None -> false)
  | _ -> false

(* Acquisition: flip the bit, take the mutex. *)
let lock_tr cfg : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "lock";
    tr_step =
      (fun s ->
        match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
        | Some false, Some (Mutex.Not_own, g) ->
          [
            s
            |> Slice.with_joint
                 (Heap.update cfg.lk (Value.bool true) (Slice.joint s))
            |> Slice.with_self (pack_aux Mutex.Own g);
          ]
        | _ -> []);
  }

(* Release: flip the bit back, surrender the mutex, credit a ghost delta
   restoring the invariant. *)
let unlock_tr cfg resource : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "unlock";
    tr_step =
      (fun s ->
        match
          (lock_bit cfg (Slice.joint s), split_aux (Slice.self s),
           ghost_of (Slice.other s))
        with
        | Some true, Some (Mutex.Own, g), Some go ->
          let prot = protected_heap cfg (Slice.joint s) in
          List.filter_map
            (fun delta ->
              match Aux.join g delta with
              | Some g' -> (
                match Aux.join g' go with
                | Some total when resource.r_inv prot total ->
                  Some
                    (s
                    |> Slice.with_joint
                         (Heap.update cfg.lk (Value.bool false) (Slice.joint s))
                    |> Slice.with_self (pack_aux Mutex.Not_own g'))
                | Some _ | None -> None)
              | None -> None)
            (Aux.Unit :: resource.r_ghosts ())
        | _ -> []);
  }

(* The holder mutates the protected cells (same footprint). *)
let mutate_tr cfg resource : Concurroid.transition =
  {
    tr_external = false;
    tr_name = "mutate";
    tr_step =
      (fun s ->
        match (lock_bit cfg (Slice.joint s), mutex_of (Slice.self s)) with
        | Some true, Some Mutex.Own ->
          let prot = protected_heap cfg (Slice.joint s) in
          resource.r_heaps ()
          |> List.filter (fun h ->
                 (not (Heap.equal h prot))
                 && Ptr.Set.equal (Heap.dom_set h) (Heap.dom_set prot))
          |> List.map (fun h ->
                 Slice.with_joint
                   (Heap.add cfg.lk (Value.bool true) h)
                   s)
        | _ -> []);
  }

let enum cfg resource () =
  List.concat_map
    (fun b ->
      List.concat_map
        (fun (prot, total) ->
          let joint = Heap.add cfg.lk (Value.bool b) prot in
          List.concat_map
            (fun (gs, go) ->
              let mutexes =
                if b then [ (Mutex.Own, Mutex.Not_own); (Mutex.Not_own, Mutex.Own) ]
                else [ (Mutex.Not_own, Mutex.Not_own) ]
              in
              List.map
                (fun (ms, mo) ->
                  Slice.make ~self:(pack_aux ms gs) ~joint
                    ~other:(pack_aux mo go))
                mutexes)
            (ghost_splits total))
        (protected_states resource ~free:(not b)))
    [ false; true ]

let concurroid ~label cfg resource =
  Concurroid.make ~label ~name:"CLock" ~coh:(coh cfg resource)
    ~lock:
      {
        Concurroid.li_held =
          (fun s ->
            match mutex_of (Slice.self s) with
            | Some Mutex.Own -> true
            | Some Mutex.Not_own | None -> false);
        li_acquires = [ "try_lock(" ];
        li_releases = [ "unlock(" ];
      }
    ~transitions:[ lock_tr cfg; unlock_tr cfg resource; mutate_tr cfg resource ]
    ~enum:(enum cfg resource) ()
(*!Acts*)

(* try_lock: erases to CAS(lk, false, true); takes lock_tr on success.
   With [await], the action is only scheduled when it will succeed —
   the blocking reduction of the spin loop (see Sched). *)
let try_lock ?(await = false) l cfg : bool Action.t =
  Action.make
    ~enabled:(fun st ->
      (not await)
      ||
      match State.find l st with
      | Some s -> lock_bit cfg (Slice.joint s) = Some false
      | None -> true)
    ~name:(Fmt.str "try_lock(%a)" Ptr.pp cfg.lk)
    ~fp:(Footprint.cases l)
    ~safe:(fun st ->
      match State.find l st with
      | Some s -> (
        match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
        | Some _, Some _ -> true
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      match (lock_bit cfg (Slice.joint s), split_aux (Slice.self s)) with
      | Some true, _ -> (false, st)
      | Some false, Some (_, g) ->
        let s' =
          s
          |> Slice.with_joint
               (Heap.update cfg.lk (Value.bool true) (Slice.joint s))
          |> Slice.with_self (pack_aux Mutex.Own g)
        in
        (true, State.add l s' st)
      | _ -> assert false)
    ~phys:(fun _ ->
      Action.Cas
        { loc = cfg.lk; expect = Value.bool false; replace = Value.bool true })
    ()

(* unlock: erases to a plain write of false; takes unlock_tr. *)
let unlock_act l cfg resource ~delta : unit Action.t =
  Action.make
    ~name:(Fmt.str "unlock(%a)" Ptr.pp cfg.lk)
    ~fp:(Footprint.writes l)
    ~safe:(fun st ->
      match State.find l st with
      | Some s -> (
        match
          (lock_bit cfg (Slice.joint s), split_aux (Slice.self s),
           ghost_of (Slice.other s))
        with
        | Some true, Some (Mutex.Own, g), Some go -> (
          match Option.bind (Aux.join g delta) (Aux.join go) with
          | Some total ->
            resource.r_inv (protected_heap cfg (Slice.joint s)) total
          | None -> false)
        | _ -> false)
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      let _, g = Option.get (split_aux (Slice.self s)) in
      let s' =
        s
        |> Slice.with_joint
             (Heap.update cfg.lk (Value.bool false) (Slice.joint s))
        |> Slice.with_self (pack_aux Mutex.Not_own (Aux.join_exn g delta))
      in
      ((), State.add l s' st))
    ~phys:(fun _ -> Action.Write (cfg.lk, Value.bool false))
    ()

(* Protected-cell access, holder only. *)
let read l cfg p : Value.t Action.t =
  Action.make
    ~name:(Fmt.str "locked_read(%a)" Ptr.pp p)
    ~fp:(Footprint.reads l)
    ~safe:(fun st ->
      holds cfg l st
      &&
      match State.find l st with
      | Some s -> Heap.mem p (protected_heap cfg (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      (Heap.find_exn p (Slice.joint s), st))
    ~phys:(fun _ -> Action.Read p)
    ()

let write l cfg p v : unit Action.t =
  Action.make
    ~name:(Fmt.str "locked_write(%a)" Ptr.pp p)
    ~fp:(Footprint.writes l)
    ~safe:(fun st ->
      holds cfg l st
      &&
      match State.find l st with
      | Some s -> Heap.mem p (protected_heap cfg (Slice.joint s))
      | None -> false)
    ~step:(fun st ->
      let s = State.find_exn l st in
      ((), State.add l (Slice.with_joint (Heap.update p v (Slice.joint s)) s) st))
    ~phys:(fun _ -> Action.Write (p, v))
    ()
(*!Stab*)

(* Stability lemmas for client reasoning. *)

(* Holding the lock is stable: no environment transition can take Own
   out of my self. *)
let assert_holds cfg l st = holds cfg l st

(* While I hold the lock, the protected heap is pinned: only the holder
   mutates it. *)
let assert_protected_pinned cfg l h st =
  holds cfg l st
  &&
  match State.find l st with
  | Some s -> Heap.equal (protected_heap cfg (Slice.joint s)) h
  | None -> false

(* My ghost contribution can only be changed by me. *)
let assert_ghost_is cfg l g st = Fcsl_pcm.Aux.equal (self_ghost cfg l st) g

(* NOT stable (negative control): the lock being free — the environment
   may acquire it at any time. *)
let assert_free cfg l st =
  match State.find l st with
  | Some s -> lock_bit cfg (Slice.joint s) = Some false
  | None -> false
(*!Main*)

(* The spin-lock loop and release. *)
let lock l cfg : unit Prog.t =
  let open Prog in
  Prog.ffix
    (fun loop () ->
      let* b = act (try_lock ~await:true l cfg) in
      if b then ret () else loop ())
    ()

let unlock l cfg resource ~delta : unit Prog.t =
  Prog.act (unlock_act l cfg resource ~delta)

let initial_slice cfg _resource prot total =
  Slice.make
    ~self:(pack_aux Mutex.Not_own Aux.Unit)
    ~joint:(Heap.add cfg.lk (Value.bool false) prot)
    ~other:(pack_aux Mutex.Not_own total)
(*!End*)
