(* Failure injection: three deliberately broken variants of verified
   case studies, each of which the analyzer must flag — the positive
   half of the analyzer's contract ({!Cases} is the negative half: zero
   findings on the genuine Table 1 rows).

   - [span_nocas]: Figure 1's spanning-tree walk with the marking CAS
     replaced by a read and a plain write.  The static race detector
     must flag the write/write (and read/write) conflicts between the
     two arms of the recursive [par].
   - [ticket skip]: a client action that writes the ticketed lock's
     protected cell without checking it holds the lock (the "skipped
     ticket check").  The action lint must report that no TLock
     transition justifies the step.
   - [ABA stack]: a Treiber-stack concurroid extended with a [free]
     transition that deallocates retired nodes — exactly what Treiber's
     retire-in-place discipline forbids, and what makes ABA reorderings
     observable.  The concurroid lint must flag the footprint violation,
     and the [assert_node_pinned] stability lemma the pop proof leans on
     must come back unstable. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies

(* 1. Spanning tree without the CAS. *)

let span_nocas_source =
  {|
span_nocas (x : ptr) : bool {
  if x == null then return false
  else {
    b <- x->m;
    if b then return true
    else {
      x->m := true;
      (rl, rr) <- (span_nocas(x->l) || span_nocas(x->r));
      if !rl then x->l := null;
      if !rr then x->r := null;
      return true
    }
  }
}
|}

let span_nocas_findings () : Diag.finding list =
  match Surface.analyze_source ~name:"span_nocas" span_nocas_source with
  | Ok fs -> fs
  | Error msg -> [ Diag.error ~rule:"parse-error" ~loc:"span_nocas" msg ]

(* 2. Writing the lock-protected cell without holding the lock. *)

let counter_cell = Ptr.of_int 50 (* the cell of Laws.counter_resource *)

let ticket_skip_findings () : Diag.finding list =
  let tl = Label.make "an_tlock_skip" in
  let cfg = Ticketlock.default_config in
  let resource = Fcsl_report.Laws.counter_resource in
  let conc = Ticketlock.concurroid ~label:tl cfg resource in
  let w = World.of_list [ conc ] in
  let states = List.map (State.singleton tl) (Concurroid.enum conc) in
  (* [Ticketlock.write] insists on [holds]; this variant does not — it
     barges into the critical section without awaiting its ticket. *)
  let barging_write : unit Action.t =
    Action.make ~name:"write_skipping_ticket_check"
      ~fp:(Footprint.writes tl)
      ~safe:(fun st -> Heap.mem counter_cell (State.joint tl st))
      ~step:(fun st ->
        ( (),
          State.with_joint tl
            (Heap.update counter_cell (Value.int 7) (State.joint tl st))
            st ))
      ~phys:(fun _ -> Action.Write (counter_cell, Value.int 7))
      ()
  in
  Lint.action_lint w barging_write ~states

(* 3. The ABA-prone Treiber stack. *)

let aba_concurroid label : Concurroid.t =
  (* One extra internal transition: deallocate any retired node (present
     in the joint heap but unreachable from [top]).  Real Treiber
     retires nodes in place precisely so that a reused address can never
     fool a pop's CAS. *)
  let free_tr =
    Concurroid.internal ~name:"free_retired" (fun s ->
        let joint = Slice.joint s in
        match Treiber.top_of joint with
        | None -> []
        | Some top ->
          let reachable =
            match Treiber.list_from joint top with
            | Some nodes -> List.map fst nodes
            | None -> []
          in
          Heap.dom joint
          |> List.filter (fun p ->
                 (not (Ptr.equal p Treiber.top_cell))
                 && not (List.exists (Ptr.equal p) reachable))
          |> List.map (fun p -> Slice.with_joint (Heap.free p joint) s))
  in
  Concurroid.make ~label ~name:"TreiberABA" ~coh:Treiber.coh
    ~transitions:[ Treiber.push_tr; Treiber.pop_tr; free_tr ]
    ~enum:(fun () -> Treiber.enum ())
    ()

(* A state in which some node is retired, with its contents — the
   configuration whose pinning the pop proof relies on. *)
let retired_node_in (l : Label.t) (st : State.t) : (Ptr.t * (int * Ptr.t)) option
    =
  let joint = State.joint l st in
  match Treiber.top_of joint with
  | None -> None
  | Some top ->
    let reachable =
      match Treiber.list_from joint top with
      | Some nodes -> List.map fst nodes
      | None -> []
    in
    List.find_map
      (fun p ->
        if Ptr.equal p Treiber.top_cell || List.exists (Ptr.equal p) reachable
        then None
        else
          Option.map (fun node -> (p, node)) (Treiber.node_of joint p))
      (Heap.dom joint)

let aba_findings () : Diag.finding list =
  let l = Label.make "an_treiber_aba" in
  let c = aba_concurroid l in
  let laws = Lint.concurroid_lint c in
  let w = World.of_list [ c ] in
  let states = List.map (State.singleton l) (Concurroid.enum c) in
  let pinned =
    match List.find_map (fun st -> retired_node_in l st) states with
    | None -> [] (* no retired node in the universe: nothing to destabilize *)
    | Some (p, (v, nxt)) -> (
      match
        Stability.check w ~states (Treiber.assert_node_pinned l p (v, nxt))
      with
      | Stability.Stable -> []
      | Stability.Unstable { state; step; after } ->
        [
          Diag.error ~rule:"unstable-assertion"
            ~loc:(Fmt.str "assert_node_pinned %a" Ptr.pp p)
            "the pinned-node lemma of the pop proof is unstable once \
             retired nodes can be freed (the ABA window)"
            ~detail:
              [
                Fmt.str "holds in:  %a" State.pp state;
                Fmt.str "env step:  %s" step;
                Fmt.str "fails in:  %a" State.pp after;
              ];
        ])
  in
  laws @ pinned

(* 4 & 5. Deadlock injections: an AB/BA lock inversion and a leaked
   lock (a path returning past its release).

   Both scenarios live over the same two-spinlock world: CLock "A"
   guarding cell 95 and CLock "B" guarding cell 96.  Each scenario is
   declared ONCE, as {!Deadlock.script}s; the static findings come from
   analyzing the scripts, and the dynamic programs are compiled from
   the very same scripts ({!prog_of_script}) — so the static claim and
   the executed behavior cannot drift.  The differential tests then
   demand that the scheduler's stuck-state witness names the same locks
   the static cycle (resp. must-release path) does. *)

module Aux = Fcsl_pcm.Aux

let lock_a_label = Label.make "A"
let lock_b_label = Label.make "B"
let lock_a_cfg : Caslock.config = { lk = Ptr.of_int 93 }
let lock_b_cfg : Caslock.config = { lk = Ptr.of_int 94 }
let cell_a = Ptr.of_int 95
let cell_b = Ptr.of_int 96
let resource_a = Lock_intf.cell_resource cell_a
let resource_b = Lock_intf.cell_resource cell_b

let deadlock_world () =
  World.of_list
    [
      Caslock.concurroid ~label:lock_a_label lock_a_cfg resource_a;
      Caslock.concurroid ~label:lock_b_label lock_b_cfg resource_b;
    ]

let deadlock_init_state () =
  let slice cfg res cell =
    Caslock.initial_slice cfg res (Heap.singleton cell (Value.int 0)) Aux.Unit
  in
  State.add lock_b_label
    (slice lock_b_cfg resource_b cell_b)
    (State.singleton lock_a_label (slice lock_a_cfg resource_a cell_a))

let lock_of_name = function
  | "A" -> (lock_a_label, lock_a_cfg, resource_a)
  | "B" -> (lock_b_label, lock_b_cfg, resource_b)
  | n -> invalid_arg ("Injected.lock_of_name: unknown lock " ^ n)

(* Compile one script thread to the DSL: acquire = the CLock spin loop,
   release = the invariant-restoring unlock. *)
let prog_of_script (sc : Deadlock.script) : unit Prog.t =
  List.fold_left
    (fun acc step ->
      let p =
        match step with
        | Deadlock.S_acquire n ->
          let l, cfg, _ = lock_of_name n in
          Caslock.lock l cfg
        | Deadlock.S_release n ->
          let l, cfg, res = lock_of_name n in
          Caslock.unlock l cfg res ~delta:Aux.Unit
      in
      Prog.seq acc p)
    (Prog.ret ()) sc.Deadlock.sc_steps

type deadlock_scenario = {
  dl_name : string;
  dl_scripts : Deadlock.script list; (* exactly two threads *)
  dl_expect_locks : string list;
      (* lock names both layers must report: the static cycle's (resp.
         leaked lock's) names, and the dynamic witness's held+awaited
         set *)
}

let lock_inversion_scenario =
  {
    dl_name = "lock inversion";
    dl_scripts =
      [
        {
          Deadlock.sc_thread = "left";
          sc_steps =
            [
              Deadlock.S_acquire "A";
              S_acquire "B";
              S_release "B";
              S_release "A";
            ];
          sc_exit = Deadlock.Returns;
        };
        {
          Deadlock.sc_thread = "right";
          sc_steps =
            [
              Deadlock.S_acquire "B";
              S_acquire "A";
              S_release "A";
              S_release "B";
            ];
          sc_exit = Deadlock.Returns;
        };
      ];
    dl_expect_locks = [ "A"; "B" ];
  }

let leaked_lock_scenario =
  {
    dl_name = "leaked lock";
    dl_scripts =
      [
        (* the leaker returns still holding A — the must-release
           violation ... *)
        {
          Deadlock.sc_thread = "leaker";
          sc_steps = [ Deadlock.S_acquire "A" ];
          sc_exit = Deadlock.Returns;
        };
        (* ... which starves the well-behaved neighbour for good. *)
        {
          Deadlock.sc_thread = "neighbour";
          sc_steps = [ Deadlock.S_acquire "A"; S_release "A" ];
          sc_exit = Deadlock.Returns;
        };
      ];
    dl_expect_locks = [ "A" ];
  }

let deadlock_verdict (sc : deadlock_scenario) : Deadlock.verdict =
  Deadlock.analyze_scripts ~case:sc.dl_name
    ~locks:(Deadlock.locks_of_world (deadlock_world ()))
    sc.dl_scripts

let lock_inversion_findings () : Diag.finding list =
  (deadlock_verdict lock_inversion_scenario).Deadlock.v_findings

let leaked_lock_findings () : Diag.finding list =
  (deadlock_verdict leaked_lock_scenario).Deadlock.v_findings

(* Run a scenario's compiled program under exhaustive exploration (no
   environment interference: the two threads ARE the whole system) and
   return the stuck-state witnesses the scheduler found. *)
let explore_scenario ?(fuel = 64) (sc : deadlock_scenario) : Crash.t list =
  let w = deadlock_world () in
  let st = deadlock_init_state () in
  let genv, mine = Sched.genv_of_state w st in
  let prog =
    match sc.dl_scripts with
    | [ a; b ] -> Prog.par (prog_of_script a) (prog_of_script b)
    | _ -> invalid_arg "Injected.explore_scenario: expected two threads"
  in
  let outcomes, _complete = Sched.explore ~fuel ~dedup:true genv mine prog in
  List.filter_map
    (function
      | Sched.Crashed c when Crash.kind c = Crash.Deadlock -> Some c
      | _ -> None)
    outcomes

(* All five, keyed for the CLI's self-test section and the tests. *)
let all_variants () : (string * Diag.finding list) list =
  [
    ("span without CAS", span_nocas_findings ());
    ("skipped ticket check", ticket_skip_findings ());
    ("ABA stack", aba_findings ());
    ("lock inversion", lock_inversion_findings ());
    ("leaked lock", leaked_lock_findings ());
  ]
