(* Failure injection: three deliberately broken variants of verified
   case studies, each of which the analyzer must flag — the positive
   half of the analyzer's contract ({!Cases} is the negative half: zero
   findings on the genuine Table 1 rows).

   - [span_nocas]: Figure 1's spanning-tree walk with the marking CAS
     replaced by a read and a plain write.  The static race detector
     must flag the write/write (and read/write) conflicts between the
     two arms of the recursive [par].
   - [ticket skip]: a client action that writes the ticketed lock's
     protected cell without checking it holds the lock (the "skipped
     ticket check").  The action lint must report that no TLock
     transition justifies the step.
   - [ABA stack]: a Treiber-stack concurroid extended with a [free]
     transition that deallocates retired nodes — exactly what Treiber's
     retire-in-place discipline forbids, and what makes ABA reorderings
     observable.  The concurroid lint must flag the footprint violation,
     and the [assert_node_pinned] stability lemma the pop proof leans on
     must come back unstable. *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies

(* 1. Spanning tree without the CAS. *)

let span_nocas_source =
  {|
span_nocas (x : ptr) : bool {
  if x == null then return false
  else {
    b <- x->m;
    if b then return true
    else {
      x->m := true;
      (rl, rr) <- (span_nocas(x->l) || span_nocas(x->r));
      if !rl then x->l := null;
      if !rr then x->r := null;
      return true
    }
  }
}
|}

let span_nocas_findings () : Diag.finding list =
  match Surface.analyze_source ~name:"span_nocas" span_nocas_source with
  | Ok fs -> fs
  | Error msg -> [ Diag.error ~rule:"parse-error" ~loc:"span_nocas" msg ]

(* 2. Writing the lock-protected cell without holding the lock. *)

let counter_cell = Ptr.of_int 50 (* the cell of Laws.counter_resource *)

let ticket_skip_findings () : Diag.finding list =
  let tl = Label.make "an_tlock_skip" in
  let cfg = Ticketlock.default_config in
  let resource = Fcsl_report.Laws.counter_resource in
  let conc = Ticketlock.concurroid ~label:tl cfg resource in
  let w = World.of_list [ conc ] in
  let states = List.map (State.singleton tl) (Concurroid.enum conc) in
  (* [Ticketlock.write] insists on [holds]; this variant does not — it
     barges into the critical section without awaiting its ticket. *)
  let barging_write : unit Action.t =
    Action.make ~name:"write_skipping_ticket_check"
      ~fp:(Footprint.writes tl)
      ~safe:(fun st -> Heap.mem counter_cell (State.joint tl st))
      ~step:(fun st ->
        ( (),
          State.with_joint tl
            (Heap.update counter_cell (Value.int 7) (State.joint tl st))
            st ))
      ~phys:(fun _ -> Action.Write (counter_cell, Value.int 7))
      ()
  in
  Lint.action_lint w barging_write ~states

(* 3. The ABA-prone Treiber stack. *)

let aba_concurroid label : Concurroid.t =
  (* One extra internal transition: deallocate any retired node (present
     in the joint heap but unreachable from [top]).  Real Treiber
     retires nodes in place precisely so that a reused address can never
     fool a pop's CAS. *)
  let free_tr =
    Concurroid.internal ~name:"free_retired" (fun s ->
        let joint = Slice.joint s in
        match Treiber.top_of joint with
        | None -> []
        | Some top ->
          let reachable =
            match Treiber.list_from joint top with
            | Some nodes -> List.map fst nodes
            | None -> []
          in
          Heap.dom joint
          |> List.filter (fun p ->
                 (not (Ptr.equal p Treiber.top_cell))
                 && not (List.exists (Ptr.equal p) reachable))
          |> List.map (fun p -> Slice.with_joint (Heap.free p joint) s))
  in
  Concurroid.make ~label ~name:"TreiberABA" ~coh:Treiber.coh
    ~transitions:[ Treiber.push_tr; Treiber.pop_tr; free_tr ]
    ~enum:(fun () -> Treiber.enum ())
    ()

(* A state in which some node is retired, with its contents — the
   configuration whose pinning the pop proof relies on. *)
let retired_node_in (l : Label.t) (st : State.t) : (Ptr.t * (int * Ptr.t)) option
    =
  let joint = State.joint l st in
  match Treiber.top_of joint with
  | None -> None
  | Some top ->
    let reachable =
      match Treiber.list_from joint top with
      | Some nodes -> List.map fst nodes
      | None -> []
    in
    List.find_map
      (fun p ->
        if Ptr.equal p Treiber.top_cell || List.exists (Ptr.equal p) reachable
        then None
        else
          Option.map (fun node -> (p, node)) (Treiber.node_of joint p))
      (Heap.dom joint)

let aba_findings () : Diag.finding list =
  let l = Label.make "an_treiber_aba" in
  let c = aba_concurroid l in
  let laws = Lint.concurroid_lint c in
  let w = World.of_list [ c ] in
  let states = List.map (State.singleton l) (Concurroid.enum c) in
  let pinned =
    match List.find_map (fun st -> retired_node_in l st) states with
    | None -> [] (* no retired node in the universe: nothing to destabilize *)
    | Some (p, (v, nxt)) -> (
      match
        Stability.check w ~states (Treiber.assert_node_pinned l p (v, nxt))
      with
      | Stability.Stable -> []
      | Stability.Unstable { state; step; after } ->
        [
          Diag.error ~rule:"unstable-assertion"
            ~loc:(Fmt.str "assert_node_pinned %a" Ptr.pp p)
            "the pinned-node lemma of the pop proof is unstable once \
             retired nodes can be freed (the ABA window)"
            ~detail:
              [
                Fmt.str "holds in:  %a" State.pp state;
                Fmt.str "env step:  %s" step;
                Fmt.str "fails in:  %a" State.pp after;
              ];
        ])
  in
  laws @ pinned

(* All three, keyed for the CLI's self-test section and the tests. *)
let all_variants () : (string * Diag.finding list) list =
  [
    ("span without CAS", span_nocas_findings ());
    ("skipped ticket check", ticket_skip_findings ());
    ("ABA stack", aba_findings ());
  ]
