(* The spec/concurroid lint pass: executable versions of the obligations
   a careless instance or spec gets wrong — unstable assertions,
   concurroids violating the metatheory laws, dead labels, and [hide]
   scopes colliding with or ignoring their installed label. *)

open Fcsl_core

(* Assertions whose footprint spans an interferable component need a
   stability witness; [Assrt.check_auto] IS the witness search (fast
   path by footprint, semantic check otherwise), so an [Unstable]
   verdict is exactly "spans an interferable component without a
   witness" — reported with the destabilizing environment step. *)
let assertion_stability (w : World.t) ~states (assrts : Assrt.t list) :
    Diag.finding list =
  List.concat_map
    (fun a ->
      match Assrt.check_auto w ~states a with
      | Assrt.Stable_by_footprint | Assrt.Stable_checked -> []
      | Assrt.Unstable (Stability.Unstable { state; step; after }) ->
        [
          Diag.error ~rule:"unstable-assertion" ~loc:(Assrt.name a)
            (Fmt.str
               "assertion footprint spans an interferable component and no \
                stability witness exists")
            ~detail:
              [
                Fmt.str "holds in:  %a" State.pp state;
                Fmt.str "env step:  %s" step;
                Fmt.str "fails in:  %a" State.pp after;
              ];
        ]
      | Assrt.Unstable Stability.Stable -> [] (* not constructible *))
    assrts

(* Concurroid metatheory laws as lint findings: other-fixity, footprint
   preservation (for internal transitions), coherence preservation,
   fork-join closure — [Concurroid.check_laws] run over the instance's
   own enumeration. *)
let concurroid_lint (c : Concurroid.t) : Diag.finding list =
  List.map
    (fun (v : Concurroid.violation) ->
      Diag.error ~rule:"concurroid-law"
        ~loc:(Fmt.str "concurroid %s" (Concurroid.name c))
        v.Concurroid.law
        ~detail:[ "witness: " ^ v.Concurroid.witness ])
    (Concurroid.check_laws c)

(* Action metatheory laws, same shape. *)
let action_lint (w : World.t) (a : 'a Action.t) ~states : Diag.finding list =
  List.map
    (fun (v : Action.violation) ->
      Diag.error ~rule:"action-law"
        ~loc:(Fmt.str "action %s" (Action.name a))
        v.Action.law
        ~detail:[ "witness: " ^ v.Action.witness ])
    (Action.check_laws w a ~states)

(* Dead labels: world labels no supplied program/spec footprint ever
   touches — harmless, but every env step at them is pure exploration
   cost (exactly what the pruning oracle skips). *)
let dead_labels (w : World.t) ~(used : Footprint.t) : Diag.finding list =
  match Footprint.labels used with
  | None -> [] (* unknown footprint: nothing provable *)
  | Some touched ->
    List.filter_map
      (fun l ->
        if Label.Set.mem l touched then None
        else
          Some
            (Diag.warning ~rule:"dead-label"
               ~loc:(Fmt.str "label %a" Label.pp l)
               "no supplied program or spec footprint touches this world \
                label; interference at it only burns exploration budget"))
      (World.labels w)

(* [hide] hygiene over a program's visible spine: an installed label
   colliding with an ambient one is the entanglement leak (installation
   would crash at runtime; statically it means the hidden scope captures
   interference meant for the ambient label), and a hidden label the
   body's visible footprint never touches is a useless installation. *)
let hide_lints ~loc (w : World.t) (p : 'a Prog.t) : Diag.finding list =
  let ambient = Label.Set.of_list (World.labels w) in
  let rec go : type a. Label.Set.t -> a Prog.t -> Diag.finding list =
   fun scope p ->
    match p with
    | Prog.Ret _ | Prog.Act _ | Prog.Ffix (_, _) -> []
    | Prog.Bind (q, _) -> go scope q
    | Prog.Par (q, r) -> go scope q @ go scope r
    | Prog.ParSplit (_, q, r) -> go scope q @ go scope r
    | Prog.Annot (_, q) -> go scope q
    | Prog.Hide (hs, body) ->
      let l = Concurroid.label hs.Prog.hs_conc in
      let collision =
        if Label.Set.mem l scope then
          [
            Diag.error ~rule:"hide-label-collision" ~loc
              (Fmt.str
                 "hide installs label %a, which is already present in the \
                  enclosing scope — the hidden concurroid would entangle \
                  with (and leak through) the ambient one"
                 Label.pp l);
          ]
        else []
      in
      let unused =
        let fp = Prog.footprint body in
        if (not (Footprint.is_top fp)) && not (Footprint.mem fp l) then
          [
            Diag.warning ~rule:"hide-unused-label" ~loc
              (Fmt.str
                 "hide installs label %a but the body's visible footprint %a \
                  never touches it"
                 Label.pp l Footprint.pp fp);
          ]
        else []
      in
      collision @ unused @ go (Label.Set.add l scope) body
  in
  go ambient p
