(* Static deadlock & progress analysis (docs/ANALYSIS.md, §Deadlock).

   Lock-shaped concurroids self-declare as locks ({!Fcsl_core.Concurroid.lock_info}:
   a dynamic holding observer plus the action-name prefixes that acquire
   and release them).  From that census this pass classifies every
   schedulable move of a case — reusing the per-case inventories of
   {!Independence} and the declared {!Fcsl_core.Footprint} metadata
   (CAS-guardedness, blocking guards) — into lock-acquisition events,
   assembles per-thread acquisition paths, folds them into a global
   lock-order graph, and reports:

   (a) potential deadlocks, as located cycles with the witnessing
       acquisition paths;
   (b) must-release violations: a path that exits a scope (a plain
       return, a [hide] scope exit, or an exceptional crash exit) still
       holding a lock;
   (c) a certified total lock order when the graph is acyclic — the
       artifact downstream two-phase-locking scenarios consume from
       [fcsl analyze --json].

   Soundness envelope.  Acquisition paths come from two sources.  The
   [Prog] AST walk sees the visible spine only: continuations of [Bind]
   and bodies of [Ffix] are opaque OCaml closures, so a path crossing
   one is marked incomplete — incomplete paths still contribute their
   visible order edges, but are exempt from must-release checking (no
   false positives from invisible releases).  Declared scripts
   ({!script}) are complete by fiat; the registry-wide static/dynamic
   differential (test/test_deadlock.ml) and the scheduler's stuck-state
   detector keep both sources honest: a statically clean case must
   never produce a {!Fcsl_core.Crash.Deadlock} witness dynamically, and
   the injected lock-inversion/leaked-lock scenarios must be flagged by
   both layers with matching lock names.  For the Table 1 rows the
   per-case inventory census additionally carries a structural
   argument: each row's world contains at most one lock-shaped
   concurroid, so no multi-lock acquisition order exists to invert, and
   the (trivial) total order is certifiable from the census alone. *)

open Fcsl_core
module Registry = Fcsl_report.Registry

let rule_cycle = "lock-cycle"
let rule_must_release = "must-release"
let rule_no_release = "lock-no-release"
let rule_order_unknown = "lock-order-unknown"

(* --- lock census ---------------------------------------------------- *)

type lock = {
  lk_label : Label.t;
  lk_name : string; (* Label.name, the cross-layer identifier *)
  lk_conc : string; (* concurroid name, e.g. "CLock" *)
  lk_acquires : string list;
  lk_releases : string list;
}

let locks_of_world w =
  List.filter_map
    (fun c ->
      match Concurroid.lock_info c with
      | None -> None
      | Some li ->
        let l = Concurroid.label c in
        Some
          {
            lk_label = l;
            lk_name = Label.name l;
            lk_conc = Concurroid.name c;
            lk_acquires = li.Concurroid.li_acquires;
            lk_releases = li.Concurroid.li_releases;
          })
    (World.concurroids w)

(* --- event classification ------------------------------------------- *)

type event =
  | Acquire of {
      e_lock : string;
      e_loc : string;
      e_blocking : bool; (* the action has a scheduling guard *)
      e_cas : bool; (* the declared footprint CASes the lock label *)
    }
  | Release of { e_lock : string; e_loc : string }

let event_lock = function Acquire a -> a.e_lock | Release r -> r.e_lock

let pp_event ppf = function
  | Acquire a ->
    Fmt.pf ppf "acquire %s%s%s" a.e_lock
      (if a.e_blocking then " (blocking)" else "")
      (if a.e_cas then " (CAS-guarded)" else "")
  | Release r -> Fmt.pf ppf "release %s" r.e_lock

let prefixed ~prefix name =
  String.length name >= String.length prefix
  && String.equal (String.sub name 0 (String.length prefix)) prefix

(* Classify one schedulable action against the lock census: an acquire
   if its name carries a lock's declared acquire prefix, a release for
   a release prefix, [None] for lock-unrelated moves.  The declared
   footprint corroborates: CAS-guardedness is read off the access kinds
   at the lock's label, blocking off the action's scheduling guard. *)
let classify ~locks ~loc (Independence.Any a) : event option =
  let name = Action.name a in
  let fp = Action.footprint a in
  let find sel =
    List.find_opt
      (fun lk -> List.exists (fun prefix -> prefixed ~prefix name) (sel lk))
      locks
  in
  match find (fun lk -> lk.lk_acquires) with
  | Some lk ->
    Some
      (Acquire
         {
           e_lock = lk.lk_name;
           e_loc = loc;
           e_blocking = Action.blocking a;
           e_cas = List.mem Footprint.Cas (Footprint.accesses fp lk.lk_label);
         })
  | None -> (
    match find (fun lk -> lk.lk_releases) with
    | Some lk -> Some (Release { e_lock = lk.lk_name; e_loc = loc })
    | None -> None)

(* --- acquisition paths ---------------------------------------------- *)

type exit_kind = Returns | Hide_exit | Crash_exit

let exit_name = function
  | Returns -> "return"
  | Hide_exit -> "hide scope exit"
  | Crash_exit -> "crash exit"

type path = {
  th_name : string;
  th_events : event list; (* in program order *)
  th_complete : bool;
      (* [false] when the walk crossed an opaque continuation: the
         visible prefix still contributes order edges, but must-release
         is not judged on it *)
  th_exit : exit_kind;
}

(* The visible-spine walk over the Prog AST.  [Par] forks one path per
   arm; [Bind] continuations and [Ffix] bodies are opaque, so anything
   sequenced after them is invisible and the path is marked
   incomplete.  [Hide] marks its arms as exiting a hide scope. *)
let paths_of_prog ~locks ~name (prog : 'a Prog.t) : path list =
  let rec go : type a. string -> exit_kind -> a Prog.t -> path list =
   fun tname exit p ->
    match p with
    | Prog.Ret _ ->
      [ { th_name = tname; th_events = []; th_complete = true; th_exit = exit } ]
    | Prog.Act a ->
      let loc = Fmt.str "%s: %s" tname (Action.name a) in
      [
        {
          th_name = tname;
          th_events = Option.to_list (classify ~locks ~loc (Independence.Any a));
          th_complete = true;
          th_exit = exit;
        };
      ]
    | Prog.Bind (q, _) ->
      (* the continuation is an opaque closure: keep the visible
         prefix, surrender completeness *)
      List.map
        (fun pth -> { pth with th_complete = false })
        (go tname exit q)
    | Prog.Par (q, r) -> go (tname ^ ".L") exit q @ go (tname ^ ".R") exit r
    | Prog.ParSplit (_, q, r) ->
      go (tname ^ ".L") exit q @ go (tname ^ ".R") exit r
    | Prog.Ffix (_, _) ->
      [ { th_name = tname; th_events = []; th_complete = false; th_exit = exit } ]
    | Prog.Hide (_, body) -> go tname Hide_exit body
    | Prog.Annot (_, q) -> go tname exit q
  in
  go name Returns prog

(* --- declared acquisition scripts ----------------------------------- *)

(* The explicit-path source: a script declares one thread's lock events
   in order, with the kind of scope exit its last step reaches.  The
   injected scenarios build both their static paths and their dynamic
   programs from one script value, so the two layers cannot drift. *)
type step = S_acquire of string | S_release of string

type script = {
  sc_thread : string;
  sc_steps : step list;
  sc_exit : exit_kind;
}

let path_of_script sc =
  let events =
    List.mapi
      (fun i st ->
        let loc = Fmt.str "%s, step %d" sc.sc_thread (i + 1) in
        match st with
        | S_acquire l ->
          Acquire { e_lock = l; e_loc = loc; e_blocking = true; e_cas = true }
        | S_release l -> Release { e_lock = l; e_loc = loc })
      sc.sc_steps
  in
  {
    th_name = sc.sc_thread;
    th_events = events;
    th_complete = true;
    th_exit = sc.sc_exit;
  }

let paths_of_scripts scs = List.map path_of_script scs

(* --- the lock-order graph ------------------------------------------- *)

type edge = {
  ed_from : string; (* holding this lock ... *)
  ed_to : string; (* ... a thread acquires this one *)
  ed_via : string; (* the witnessing acquisition step *)
}

type graph = { g_locks : string list; g_edges : edge list }

(* Simulate one path's held set (a stack of (lock, acquisition loc));
   an acquire while holding adds one order edge per held lock —
   including a self-edge on re-acquiring a held lock, the length-1
   cycle of a non-reentrant self-deadlock. *)
let fold_path_edges path =
  let edges = ref [] in
  let held =
    List.fold_left
      (fun held ev ->
        match ev with
        | Acquire a ->
          List.iter
            (fun (h, hloc) ->
              edges :=
                {
                  ed_from = h;
                  ed_to = a.e_lock;
                  ed_via =
                    Fmt.str "%s: holds %s (acquired at %s), acquires %s at %s"
                      path.th_name h hloc a.e_lock a.e_loc;
                }
                :: !edges)
            held;
          (a.e_lock, a.e_loc) :: held
        | Release r ->
          let rec drop = function
            | [] -> [] (* releasing an unheld lock: judged elsewhere *)
            | (h, _) :: tl when String.equal h r.e_lock -> tl
            | pair :: tl -> pair :: drop tl
          in
          drop held)
      [] path.th_events
  in
  (List.rev !edges, held)

let graph_of_paths ~locks paths =
  let names =
    List.sort_uniq String.compare
      (List.map (fun lk -> lk.lk_name) locks
      @ List.concat_map
          (fun p -> List.map event_lock p.th_events)
          paths)
  in
  let edges =
    List.concat_map (fun p -> fst (fold_path_edges p)) paths
  in
  (* one edge per (from, to), first witness kept *)
  let edges =
    List.fold_left
      (fun acc e ->
        if
          List.exists
            (fun e' ->
              String.equal e.ed_from e'.ed_from
              && String.equal e.ed_to e'.ed_to)
            acc
        then acc
        else e :: acc)
      [] edges
    |> List.rev
  in
  { g_locks = names; g_edges = edges }

let succs g n =
  List.filter_map
    (fun e -> if String.equal e.ed_from n then Some e.ed_to else None)
    g.g_edges

(* All simple cycles up to rotation (lock graphs here are tiny).  Each
   cycle is reported in its lexicographically-least rotation. *)
let cycles g : string list list =
  let rotate_min cyc =
    let n = List.length cyc in
    let arr = Array.of_list cyc in
    let rotation i = List.init n (fun j -> arr.((i + j) mod n)) in
    let best = ref (rotation 0) in
    for i = 1 to n - 1 do
      let r = rotation i in
      if compare r !best < 0 then best := r
    done;
    !best
  in
  let found = ref [] in
  let rec dfs start node path =
    List.iter
      (fun m ->
        if String.equal m start then begin
          let c = rotate_min (List.rev path) in
          if not (List.mem c !found) then found := c :: !found
        end
        else if not (List.mem m path) then dfs start m (m :: path))
      (succs g node)
  in
  List.iter (fun n -> dfs n n [ n ]) g.g_locks;
  List.rev !found

(* Kahn's topological sort with name-sorted tie-breaking: the
   deterministic certified order.  [None] when the graph is cyclic. *)
let total_order g : string list option =
  let rec kahn placed remaining =
    if remaining = [] then Some (List.rev placed)
    else
      let ready =
        List.filter
          (fun n ->
            not
              (List.exists
                 (fun e ->
                   String.equal e.ed_to n && List.mem e.ed_from remaining)
                 g.g_edges))
          remaining
      in
      match List.sort String.compare ready with
      | [] -> None (* every remaining node sits on a cycle *)
      | n :: _ ->
        kahn (n :: placed) (List.filter (fun m -> not (String.equal m n)) remaining)
  in
  kahn [] (List.sort String.compare g.g_locks)

(* --- verdicts -------------------------------------------------------- *)

type verdict = {
  v_case : string;
  v_locks : string list;
  v_order : string list option; (* certified total order when acyclic *)
  v_cycles : string list list;
  v_findings : Diag.finding list;
}

let clean v = not (Diag.has_errors v.v_findings)

let cycle_findings ~case g cyclist =
  List.map
    (fun cyc ->
      let closed = cyc @ [ List.hd cyc ] in
      let witnesses =
        List.concat_map
          (fun (a, b) ->
            List.filter_map
              (fun e ->
                if String.equal e.ed_from a && String.equal e.ed_to b then
                  Some e.ed_via
                else None)
              g.g_edges)
          (List.combine cyc (List.tl closed))
      in
      Diag.error ~rule:rule_cycle ~loc:case
        (Fmt.str "potential deadlock: lock-order cycle %s"
           (String.concat " -> " closed))
        ~detail:witnesses)
    cyclist

let must_release_findings ~case paths =
  List.concat_map
    (fun p ->
      if not p.th_complete then []
      else
        let _, leaked = fold_path_edges p in
        List.map
          (fun (h, hloc) ->
            Diag.error ~rule:rule_must_release
              ~loc:(Fmt.str "%s, thread %s" case p.th_name)
              (Fmt.str "path exits its scope (%s) still holding lock %s"
                 (exit_name p.th_exit) h)
              ~detail:
                [ Fmt.str "acquired at %s and never released on this path" hloc ])
          (List.rev leaked))
    paths

let analyze_paths ~case ~locks paths : verdict =
  let g = graph_of_paths ~locks paths in
  let cyclist = cycles g in
  let findings =
    cycle_findings ~case g cyclist @ must_release_findings ~case paths
  in
  {
    v_case = case;
    v_locks = g.g_locks;
    v_order = (if cyclist = [] then total_order g else None);
    v_cycles = cyclist;
    v_findings = findings;
  }

let analyze_scripts ~case ~locks scripts =
  analyze_paths ~case ~locks (paths_of_scripts scripts)

(* --- registry-wide analysis ----------------------------------------- *)

(* One Table 1 row, through its {!Independence} inventory: census the
   world's locks, classify the schedulable actions, and apply the
   structural argument — at most one lock-shaped concurroid per row
   world, so no multi-lock order exists to invert and the census alone
   certifies the (trivial) total order.  A lock whose inventory
   acquires but never releases is flagged; a multi-lock world without
   path summaries refuses to certify instead of guessing. *)
let analyze_case name : verdict option =
  match Independence.inventory_of_case name with
  | None -> None
  | Some inv ->
    let locks = locks_of_world inv.Independence.i_world in
    let classified =
      List.filter_map
        (fun (Independence.Any a as any) ->
          classify ~locks
            ~loc:(Fmt.str "%s: %s" name (Action.name a))
            any)
        inv.Independence.i_actions
    in
    let no_release =
      List.filter_map
        (fun lk ->
          let acq =
            List.exists
              (function
                | Acquire a -> String.equal a.e_lock lk.lk_name
                | Release _ -> false)
              classified
          and rel =
            List.exists
              (function
                | Release r -> String.equal r.e_lock lk.lk_name
                | Acquire _ -> false)
              classified
          in
          if acq && not rel then
            Some
              (Diag.warning ~rule:rule_no_release ~loc:name
                 (Fmt.str
                    "lock %s has acquiring moves but no releasing move in \
                     the case's inventory"
                    lk.lk_name))
          else None)
        locks
    in
    let names = List.sort String.compare (List.map (fun lk -> lk.lk_name) locks) in
    let multi =
      if List.length locks <= 1 then []
      else
        [
          Diag.info ~rule:rule_order_unknown ~loc:name
            (Fmt.str
               "world has %d lock-shaped concurroids but no acquisition-path \
                summaries: order not certified from the census"
               (List.length locks));
        ]
    in
    Some
      {
        v_case = name;
        v_locks = names;
        v_order = (if List.length locks <= 1 then Some names else None);
        v_cycles = [];
        v_findings = no_release @ multi;
      }

let analyze_all () : verdict list =
  List.filter_map
    (fun (c : Registry.case) -> analyze_case c.Registry.c_name)
    Registry.all

(* --- the dynamic witness, parsed back ------------------------------- *)

(* The scheduler's stuck-state crash message has a load-bearing shape
   (see [deadlock_message] in lib/core/sched.ml):

     ... held locks: {A, B}; blocked: [try_lock(x93) awaiting B, ...]

   These parsers recover the located lock names so the differential
   tests can compare them with the static verdicts by name. *)

let split_commas s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> not (String.equal x ""))

let delimited ~after ~opening ~closing msg =
  let rec find i =
    if i + String.length after > String.length msg then None
    else if String.equal (String.sub msg i (String.length after)) after then
      Some (i + String.length after)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> (
    match String.index_from_opt msg i opening with
    | None -> None
    | Some o -> (
      match String.index_from_opt msg o closing with
      | None -> None
      | Some c -> Some (String.sub msg (o + 1) (c - o - 1))))

let held_of_witness (c : Crash.t) : string list =
  if Crash.kind c <> Crash.Deadlock then []
  else
    match
      delimited ~after:"held locks:" ~opening:'{' ~closing:'}'
        (Crash.message c)
    with
    | None -> []
    | Some inner -> split_commas inner

let awaited_of_witness (c : Crash.t) : string list =
  if Crash.kind c <> Crash.Deadlock then []
  else
    match
      delimited ~after:"blocked:" ~opening:'[' ~closing:']' (Crash.message c)
    with
    | None -> []
    | Some inner ->
      List.filter_map
        (fun entry ->
          match String.index_opt entry ' ' with
          | None -> None
          | Some _ -> (
            let marker = " awaiting " in
            let rec find i =
              if i + String.length marker > String.length entry then None
              else if
                String.equal (String.sub entry i (String.length marker)) marker
              then Some (String.sub entry (i + String.length marker)
                           (String.length entry - i - String.length marker))
              else find (i + 1)
            in
            find 0))
        (split_commas inner)
      |> List.sort_uniq String.compare

let witness_locks (c : Crash.t) : string list =
  List.sort_uniq String.compare (held_of_witness c @ awaited_of_witness c)

(* --- rendering ------------------------------------------------------- *)

let pp_verdict ppf v =
  let status =
    if clean v then
      match v.v_order with
      | Some order when order <> [] ->
        Fmt.str "clean (certified order: %s)" (String.concat " < " order)
      | _ -> "clean (no locks)"
    else "FLAGGED"
  in
  Fmt.pf ppf "@[<v2>%s: %s@ locks: %s%a@]" v.v_case status
    (if v.v_locks = [] then "-" else String.concat ", " v.v_locks)
    Fmt.(list ~sep:nop (fun ppf f -> Fmt.pf ppf "@ %a" Diag.pp f))
    v.v_findings

let json_string_list xs =
  "[" ^ String.concat ", " (List.map (fun x -> "\"" ^ Diag.json_escape x ^ "\"") xs)
  ^ "]"

let verdict_to_json v =
  Printf.sprintf
    "{\"case\": \"%s\", \"locks\": %s, \"clean\": %b, \"order\": %s, \
     \"cycles\": [%s], \"findings\": [%s]}"
    (Diag.json_escape v.v_case)
    (json_string_list v.v_locks)
    (clean v)
    (match v.v_order with
    | None -> "null"
    | Some order -> json_string_list order)
    (String.concat ", " (List.map json_string_list v.v_cycles))
    (String.concat ", " (List.map Diag.finding_to_json v.v_findings))
