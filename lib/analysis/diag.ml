(* Structured diagnostics shared by every analyzer pass: a finding names
   the rule that fired, where, what went wrong, and the supporting
   detail (both access paths of a race, the violated law's witness) as
   separate lines, so the CLI, the tests and CI all consume the same
   shape. *)

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

type finding = {
  f_rule : string; (* e.g. "par-race", "concurroid-law", "unstable-assertion" *)
  f_severity : severity;
  f_loc : string; (* where: a proc, a case name, a concurroid *)
  f_msg : string; (* the one-line diagnosis *)
  f_detail : string list; (* supporting lines: access paths, witnesses *)
}

let make ?(detail = []) ~rule ~severity ~loc msg =
  { f_rule = rule; f_severity = severity; f_loc = loc; f_msg = msg;
    f_detail = detail }

let error ?detail ~rule ~loc msg = make ?detail ~rule ~severity:Error ~loc msg
let warning ?detail ~rule ~loc msg =
  make ?detail ~rule ~severity:Warning ~loc msg
let info ?detail ~rule ~loc msg = make ?detail ~rule ~severity:Info ~loc msg

let errors fs = List.filter (fun f -> f.f_severity = Error) fs
let has_errors fs = errors fs <> []

let pp ppf f =
  Fmt.pf ppf "@[<v2>%a[%s] %s: %s%a@]" pp_severity f.f_severity f.f_rule
    f.f_loc f.f_msg
    Fmt.(list ~sep:nop (fun ppf d -> Fmt.pf ppf "@ - %s" d))
    f.f_detail

let pp_list ppf = function
  | [] -> Fmt.string ppf "no findings"
  | fs -> Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) fs

(* JSON rendering, for [fcsl analyze --json] and the CI baseline diff.
   The shape is part of the tool's contract: stable keys, rule ids
   stable across releases, cases and findings in analyzer order (which
   is deterministic), no timestamps — so [diff] against a committed
   baseline is meaningful. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let finding_to_json f =
  Printf.sprintf
    "{\"rule\": \"%s\", \"severity\": \"%s\", \"loc\": \"%s\", \"msg\": \
     \"%s\", \"detail\": [%s]}"
    (json_escape f.f_rule)
    (severity_string f.f_severity)
    (json_escape f.f_loc) (json_escape f.f_msg)
    (String.concat ", "
       (List.map (fun d -> Printf.sprintf "\"%s\"" (json_escape d)) f.f_detail))

(* One object per analyzed unit (case study, file, injected variant):
   {"schema_version": 2, "cases": [{"case": NAME, "findings": [...]},
   ...], "deadlock": ...}.  The [cases] array is byte-identical to the
   schema-1 payload, so baseline diff logic scoped to the untouched
   sections keeps passing; [deadlock] (when supplied, as pre-rendered
   JSON — see {!Deadlock.verdict_to_json}) carries the lock-order
   verdicts.  [schema_version] bumps whenever a consumer could need to
   dispatch: 1 = the bare {"cases"} object, 2 = this shape. *)
let schema_version = 2

let results_to_json ?deadlock (results : (string * finding list) list) : string
    =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema_version\": %d, \"cases\": [" schema_version);
  List.iteri
    (fun i (name, fs) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"case\": \"%s\", \"findings\": [%s]}"
           (json_escape name)
           (String.concat ", " (List.map finding_to_json fs))))
    results;
  Buffer.add_string b "]";
  Option.iter
    (fun dl ->
      Buffer.add_string b ", \"deadlock\": ";
      Buffer.add_string b dl)
    deadlock;
  Buffer.add_string b "}";
  Buffer.contents b
