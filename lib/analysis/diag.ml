(* Structured diagnostics shared by every analyzer pass: a finding names
   the rule that fired, where, what went wrong, and the supporting
   detail (both access paths of a race, the violated law's witness) as
   separate lines, so the CLI, the tests and CI all consume the same
   shape. *)

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

type finding = {
  f_rule : string; (* e.g. "par-race", "concurroid-law", "unstable-assertion" *)
  f_severity : severity;
  f_loc : string; (* where: a proc, a case name, a concurroid *)
  f_msg : string; (* the one-line diagnosis *)
  f_detail : string list; (* supporting lines: access paths, witnesses *)
}

let make ?(detail = []) ~rule ~severity ~loc msg =
  { f_rule = rule; f_severity = severity; f_loc = loc; f_msg = msg;
    f_detail = detail }

let error ?detail ~rule ~loc msg = make ?detail ~rule ~severity:Error ~loc msg
let warning ?detail ~rule ~loc msg =
  make ?detail ~rule ~severity:Warning ~loc msg
let info ?detail ~rule ~loc msg = make ?detail ~rule ~severity:Info ~loc msg

let errors fs = List.filter (fun f -> f.f_severity = Error) fs
let has_errors fs = errors fs <> []

let pp ppf f =
  Fmt.pf ppf "@[<v2>%a[%s] %s: %s%a@]" pp_severity f.f_severity f.f_rule
    f.f_loc f.f_msg
    Fmt.(list ~sep:nop (fun ppf d -> Fmt.pf ppf "@ - %s" d))
    f.f_detail

let pp_list ppf = function
  | [] -> Fmt.string ppf "no findings"
  | fs -> Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) fs
