(** Fault-injection harness for the verification engine (the [fcsl
    chaos] command; see docs/ROBUSTNESS.md).

    Each {!mode} injects one class of fault — worker exceptions
    (transient and persistent), exceptions deep inside exploration,
    budget starvation, spurious CAS failures, transiently-unsafe
    actions, environment-interference bursts — and asserts that
    verdicts and accounting survive it: verdicts identical to the
    fault-free baseline where soundness demands it (transient faults
    are absorbed by the supervised pool's retry), explicit structured
    degradation where it does not (persistent faults quarantine,
    starvation reports a {!Verify.tier} below exhaustive), and never a
    hang or an escaped exception. *)

type mode =
  | Pool_transient
      (** one [Crash.Injected] raised inside the first exploration of
          each case: the pool's retry must absorb it — verdicts equal
          the baseline *)
  | Pool_persistent
      (** every tick raises: both attempts of every worker die — each
          report must carry quarantined [worker_crashes] and the run
          must exit with code 3, not an exception *)
  | Mid_explore
      (** one exception raised deep inside exploration (after 50
          ticks): retry absorbs it — verdicts equal the baseline *)
  | Budget_starve
      (** a tiny state/deadline budget: every report must terminate
          with either a sound verdict or explicit degradation (a
          recorded tier, budget stats, and a seed when sampled) *)
  | Spurious_cas
      (** the lock-acquisition CAS of a spin-lock increment fails
          spuriously: the retry loop must still verify under sampling *)
  | Transient_unsafe
      (** an action transiently reports unsafe: the engine must record
          structured [Unsafe_action] failures, never crash *)
  | Env_burst
      (** randomized runs with environment-interference bursts: the
          interference-robust snapshot spec must still verify *)
  | Kill9_midrun
      (** crash-recovery across process death: fork a verification child
          journaling to a write-ahead journal, SIGKILL it at a
          randomized exploration tick, resume, repeat — the journal's
          durable-unit count must grow monotonically across the kills
          and the eventually-completed run's verdicts must equal the
          uninterrupted baseline's (see {!Journal}) *)
  | Service_client_kill
      (** a daemon client killed mid-stream: the orphaned job must be
          cancelled through the budget's cancel probe, settled in the
          job ledger as cancelled (never as a memoizable verdict), and
          a fresh resubmission must re-explore to exactly the baseline
          verdict *)
  | Service_torn_frames
      (** torn and malformed wire frames fed to the daemon: every
          garbage line must be answered with a structured
          [Crash.Protocol_error] frame — never a hang, a dropped
          connection or a daemon crash — and the same connection must
          keep serving well-formed traffic with unchanged verdicts *)
  | Service_kill9
      (** kill -9 of the daemon itself mid-run, then a resumed restart:
          canonical wire verdicts must equal the baseline, durable
          units must stay monotone across the death, and a repeat
          submission pass must be served entirely from the journal memo
          (zero fresh units).  Forks a real daemon process, so — like
          [Kill9_midrun] — it reports skipped wherever a domain was
          already spawned (the test binary) *)
  | Service_supervisor_kill
      (** kill -9 the daemon under [Supervisor.run], twice: the
          supervisor must restart a resumed child within its backoff
          budget each time, verdicts must stay baseline-identical
          across both deaths, and a SIGTERM to the supervisor must
          drain the child gracefully and propagate the clean exit.
          A second scenario spawns a crash-looping child (dead on
          arrival, every time) and asserts the supervisor gives up
          with its stable exit code once the sliding failure window
          fills, instead of restarting forever.  Forks real
          processes, so it reports skipped wherever a domain was
          already spawned (the test binary) *)
  | Service_overload_flood
      (** saturate a small-queue daemon past its high watermark:
          bronze submissions must shed with a structured reason,
          gold must be admitted but demoted one QoS rung (verdict
          marked [degraded]), the memo fast lane must never be shed,
          shed decisions must be journaled and surfaced in health,
          and a post-flood gold resubmission must re-explore at full
          QoS to the baseline verdict — a demoted verdict is never a
          memo hit (no phantom full-QoS verdicts) *)
  | Journal_enospc
      (** syscall-level faults injected through {!Journal.io} —
          ENOSPC and EIO mid-append, fsync failures, short writes,
          a rename failure during compaction: every fault must leave
          the journal wounded with a structured [Crash.Io_fault]
          (short writes wound nothing), later appends must be disk
          no-ops that never raise, in-memory lookups must keep
          answering, and a real-io reopen must recover a verbatim
          prefix — lost records re-verify, none ever flips *)
  | Client_retry_partition
      (** a proxy severs the client's connection mid-stream exactly
          after the server journaled the verdict but before the
          client heard it: [Client.submit_retry] must reconnect with
          backoff and be served from the journal memo — idempotent
          resubmission on the params digest, verdict identical to
          the baseline, one exploration total *)

val all_modes : mode list

val mode_name : mode -> string
(** Stable kebab-case name, e.g. ["pool-transient"]. *)

val mode_of_name : string -> mode option
val pp_mode : Format.formatter -> mode -> unit

type outcome = {
  o_mode : mode;
  o_case : string;  (** registry row or bespoke scenario name *)
  o_passed : bool;
  o_detail : string;  (** what was asserted, or how it failed *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run : ?cases:string list -> ?seed:int -> mode -> outcome list
(** Run one injection mode.  Registry-wide modes ([Pool_transient],
    [Pool_persistent], [Mid_explore], [Budget_starve]) run over every
    Table 1 registry row (restricted to [cases] when given, by row
    name); action-level modes run their bespoke scenarios; service
    modes default to a small case subset (each outcome stands up a
    whole daemon) unless [cases] overrides it.  [seed] (default 1)
    seeds every randomized component.  Never raises: an exception
    escaping the engine is itself a failed outcome. *)

val run_all : ?cases:string list -> ?seed:int -> unit -> outcome list
(** {!run} every mode of {!all_modes}, in order. *)
