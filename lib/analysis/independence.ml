(* Static independence analysis: derive, per Table 1 case study, which
   pairs of schedulable moves commute — the relation Sched's sleep-set
   partial-order reduction consumes (lib/core/por.ml carries it into the
   scheduler; docs/ANALYSIS.md §POR documents the trust model).

   Three rules, in the order they are tried:

   1. indep-fp — disjoint (or jointly read-only) declared footprints:
      [Footprint.commutes].  Purely syntactic, and dynamically guarded:
      with POR on, the scheduler cross-checks every executed move's
      mutations against its declared envelope and demotes the whole
      exploration to full expansion on a violation.

   2. indep-pcm — algebraic commutation for same-label pairs the
      footprint rule cannot see: both actions contribute into the same
      concurroid's state, but their composed effects are
      order-insensitive by the laws of the PCMs involved (disjoint heap
      cells, commutative Nat addition, disjoint ptr-set unions, ...).
      A certificate is only emitted when BOTH hold: every PCM sort the
      pair touches has an entry in the law table below, and an
      exhaustive step-commutation check over the case's enumerated
      coherent states finds at least [min_witnesses] states where both
      actions run and never finds a state where the two orders disagree
      (in final state, in either result, or in enabledness).  The
      deterministic enumeration lives here; test/test_por.ml adds the
      QCheck property over random coherent states, and the registry-wide
      POR-vs-full differential is the end-to-end backstop — rule-2
      claims are not runtime-monitored (the envelope monitor checks
      footprints, not values), so they lean on this battery, exactly the
      trust model of the analyzer's read-footprint claims.

   3. indep-env — environment transitions at distinct labels.  An env
      step at label [l] rewrites the slice at [l] and nothing else
      (other-fixity, a lint-checked concurroid law), so its envelope is
      [Footprint.touches l] by construction and distinct-label pairs
      fall out of the same commutation check as rule 1; the rule id is
      kept separate because the justification is the concurroid law,
      not a declared footprint. *)

open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux

(* Rule ids are stable: CI baselines and the JSON consumers key on
   them. *)
let rule_fp = "indep-fp"
let rule_pcm = "indep-pcm"
let rule_env = "indep-env"

type any_action = Any : 'a Action.t -> any_action

type move = {
  m_name : string;
  m_fp : Footprint.t;
  m_env : Label.t option; (* [Some l] for an environment transition *)
}

type verdict =
  | Independent of { rule : string; why : string }
  | Dependent of { why : string }

type pair = { p_a : string; p_b : string; p_verdict : verdict }

type matrix = {
  x_case : string;
  x_moves : move list;
  x_pairs : pair list; (* unordered pairs of distinct moves *)
  x_certs : (string * string) list; (* the rule-2 certified name pairs *)
}

(* --- The PCM law-certificate table -----------------------------------

   One entry per Aux sort: the algebraic fact that makes same-sort
   contributions order-insensitive when their joins are defined.  A sort
   missing here (a user PCM grafted into Aux) gets no rule-2
   certificates — sampling alone is not a certificate. *)

let sort_name : Aux.t -> string = function
  | Aux.Unit -> "unit"
  | Aux.Nat _ -> "nat"
  | Aux.Mutex _ -> "mutex"
  | Aux.Set _ -> "set"
  | Aux.Heap _ -> "heap"
  | Aux.Hist _ -> "hist"
  | Aux.Pair _ -> "pair"

let pcm_laws =
  [
    ("unit", "unit PCM: trivially commutative");
    ("nat", "Nat under addition: x + y = y + x");
    ("mutex", "Mutex: Own joins only with Not_own, and that join commutes");
    ("set", "disjoint ptr-set union is commutative");
    ("heap", "disjoint-domain heap union is commutative");
    ("hist", "disjoint-timestamp history union is commutative");
    ("pair", "product PCM: commutes componentwise");
  ]

(* --- Sampled step commutation (rule 2's dynamic half) ---------------- *)

let min_witnesses = 3

type sample = Pass | Skip | Refuted of string

let runnable p st =
  match p with Any a -> Action.enabled a st && Action.safe a st

let poly_eq x y = try Stdlib.compare x y = 0 with _ -> false

(* Run the pair in both orders from [st] and compare final states and
   both results.  Results are compared with polymorphic compare —
   action results are scalar values (pointers, ints, bools, Values) —
   and a compare that raises is treated as a mismatch, the conservative
   direction.  A run that faults mid-way (the second action disabled or
   unsafe after the first) counts as "that order not runnable". *)
let commute_sample (pa : any_action) (pb : any_action) st : sample =
  if not (runnable pa st && runnable pb st) then Skip
  else
    match (pa, pb) with
    | Any a, Any b -> (
      let run1 x st = try Some (Action.step_exn x st) with _ -> None in
      let seq x y =
        match run1 x st with
        | Some (rx, st') ->
          if Action.enabled y st' && Action.safe y st' then
            Option.map (fun (ry, st'') -> (rx, ry, st'')) (run1 y st')
          else None
        | None -> None
      in
      match (seq a b, seq b a) with
      | Some (ra, rb, st_ab), Some (rb', ra', st_ba) ->
        if not (State.equal st_ab st_ba) then
          Refuted (Fmt.str "orders diverge from %a" State.pp st)
        else if not (poly_eq ra ra' && poly_eq rb rb') then
          Refuted (Fmt.str "results depend on order from %a" State.pp st)
        else Pass
      | None, None -> Skip
      | _ ->
        Refuted (Fmt.str "enabledness depends on order from %a" State.pp st))

(* The Aux sorts a pair may interact through: the self-contribution
   sorts at every label both footprints declare, over the sampled
   states. *)
let shared_sorts (states : State.t list) fp_a fp_b =
  match (Footprint.labels fp_a, Footprint.labels fp_b) with
  | Some la, Some lb ->
    let shared = Label.Set.inter la lb in
    let sorts = Hashtbl.create 7 in
    List.iter
      (fun st ->
        Label.Set.iter
          (fun l ->
            match State.find l st with
            | Some s -> Hashtbl.replace sorts (sort_name (Slice.self s)) ()
            | None -> ())
          shared)
      states;
    Some (Hashtbl.fold (fun k () acc -> k :: acc) sorts [] |> List.sort compare)
  | _ -> None

(* Rule 2 for one action pair: law-table coverage plus exhaustive
   sampled commutation. *)
let pcm_certificate (states : State.t list) (na, fpa, pa) (nb, fpb, pb) :
    verdict option =
  match shared_sorts states fpa fpb with
  | None -> None (* an unknown envelope certifies nothing *)
  | Some sorts ->
    let laws =
      List.filter_map (fun s -> Option.map (fun l -> (s, l)) (List.assoc_opt s pcm_laws)) sorts
    in
    if List.length laws < List.length sorts then None
    else
      let witnesses = ref 0 in
      let refutation = ref None in
      List.iter
        (fun st ->
          if !refutation = None then
            match commute_sample pa pb st with
            | Pass -> incr witnesses
            | Skip -> ()
            | Refuted w -> refutation := Some w)
        states;
      match !refutation with
      | Some w ->
        Some (Dependent { why = Fmt.str "%s and %s: %s" na nb w })
      | None ->
        if !witnesses < min_witnesses then None
        else
          Some
            (Independent
               {
                 rule = rule_pcm;
                 why =
                   Fmt.str
                     "same-label contributions commute: %s (%d/%d sampled \
                      states witness both orders agree)"
                     (String.concat "; "
                        (List.map (fun (s, l) -> s ^ " — " ^ l) laws))
                     !witnesses (List.length states);
               })

(* --- The per-pair decision ------------------------------------------- *)

let decide a b : verdict =
  let fp_rule, fp_why =
    match (a.m_env, b.m_env) with
    | Some la, Some lb when not (Label.equal la lb) ->
      ( rule_env,
        Fmt.str
          "environment transitions at distinct labels %a and %a rewrite \
           disjoint slices (other-fixity)"
          Label.pp la Label.pp lb )
    | _ ->
      ( rule_fp,
        Fmt.str "declared footprints %a and %a commute" Footprint.pp a.m_fp
          Footprint.pp b.m_fp )
  in
  if Footprint.commutes a.m_fp b.m_fp then
    Independent { rule = fp_rule; why = fp_why }
  else
    Dependent
      {
        why =
          Fmt.str "footprints %a and %a overlap with writes" Footprint.pp
            a.m_fp Footprint.pp b.m_fp;
      }

(* --- Per-case inventories --------------------------------------------

   The moves each case's programs schedule: the action instances its
   drivers build (with the same labels and parameters), plus one env
   move per (concurroid, transition).  Kept in one place so the matrix,
   the POR certificates and the differential tests all see the same
   inventory. *)

type inventory = {
  i_world : World.t;
  i_states : State.t list;
  i_actions : any_action list;
}

let env_moves_of_world (w : World.t) : move list =
  List.concat_map
    (fun c ->
      let l = Concurroid.label c in
      List.map
        (fun n ->
          {
            m_name = Fmt.str "env@%a:%s" Label.pp l n;
            m_fp = Footprint.touches l;
            m_env = Some l;
          })
        (Concurroid.transition_names c))
    (World.concurroids w)

let treiber_actions tb pv n1 : any_action list =
  [
    Any (Treiber.read_top tb);
    Any (Treiber.read_top_nonempty tb);
    Any (Treiber.read_node tb n1);
    Any (Treiber.set_node pv n1 1 Fcsl_heap.Ptr.null);
    Any (Treiber.cas_push tb pv n1 1 Fcsl_heap.Ptr.null);
    Any (Treiber.cas_pop tb n1 Fcsl_heap.Ptr.null);
  ]

let caslock_incr_inventory () =
  let module C = Cg_incr.Cas in
  {
    i_world = C.world ();
    i_states = C.init_states ();
    i_actions =
      [
        Any (Caslock.try_lock C.label C.cfg);
        Any (Caslock.unlock_act C.label C.cfg C.resource ~delta:(Aux.nat 1));
        Any (Caslock.read C.label C.cfg C.x_cell);
        Any (Caslock.write C.label C.cfg C.x_cell (Fcsl_heap.Value.int 1));
      ];
  }

let ticketlock_incr_inventory () =
  let module T = Cg_incr.Ticketed in
  {
    i_world = T.world ();
    i_states = T.init_states ();
    i_actions =
      [
        Any (Ticketlock.take_ticket T.label T.cfg);
        Any (Ticketlock.read_owner T.label T.cfg);
        Any (Ticketlock.unlock_act T.label T.cfg T.resource ~delta:(Aux.nat 1));
        Any (Ticketlock.read T.label T.cfg T.x_cell);
        Any (Ticketlock.write T.label T.cfg T.x_cell (Fcsl_heap.Value.int 1));
      ];
  }

let cg_alloc_inventory () =
  let module A = Cg_alloc.Cas in
  let p = List.hd A.pool_cells in
  {
    i_world = A.world ();
    i_states = A.init_states ();
    i_actions =
      [
        Any (Caslock.try_lock A.al_label A.cfg);
        Any (Caslock.unlock_act A.al_label A.cfg A.resource ~delta:Aux.unit);
        Any (A.peek_pool A.al_label);
        Any (A.take_cell A.al_label A.pv_label p);
        Any (A.put_cell A.al_label A.pv_label p);
      ];
  }

let snapshot_inventory () =
  let sp = Snapshot.sp_label in
  {
    i_world = Snapshot.world ();
    i_states = Snapshot.init_states ();
    i_actions =
      [
        Any (Snapshot.read_cell sp Snapshot.x_cell);
        Any (Snapshot.read_cell sp Snapshot.y_cell);
        Any (Snapshot.write_cell sp Snapshot.x_cell 1);
        Any (Snapshot.write_cell sp Snapshot.y_cell 2);
      ];
  }

let treiber_inventory () =
  {
    i_world = Treiber.world ();
    i_states = Treiber.init_states ();
    i_actions = treiber_actions Treiber.tb_label Treiber.pv_label Treiber.node1;
  }

let span_inventory () =
  let sp = Span.sp_label in
  let a = List.assoc "a" Graph_catalog.fig2_nodes in
  let b = List.assoc "b" Graph_catalog.fig2_nodes in
  {
    i_world = Span.world ~max_nodes:2 ();
    i_states = Span.init_states ~max_nodes:2 ();
    i_actions =
      [
        Any (Span.trymark sp a);
        Any (Span.trymark sp b);
        Any (Span.read_child sp a Fcsl_heap.Graph.Left);
        Any (Span.nullify sp a Fcsl_heap.Graph.Left);
      ];
  }

let flatcombiner_inventory () =
  let fc = Fc_stack.fc_label in
  let so = Fc_stack.seq_stack in
  let cfg = Fc_stack.cfg in
  {
    i_world = Fc_stack.world ();
    i_states = Fc_stack.init_states ();
    i_actions =
      [
        Any (Flatcombiner.publish_act so cfg fc ~slot:0 "push" (Fcsl_heap.Value.int 1));
        Any (Flatcombiner.publish_act so cfg fc ~slot:1 "pop" Fcsl_heap.Value.unit);
        Any (Flatcombiner.poll_act cfg fc ~slot:0);
        Any (Flatcombiner.poll_act cfg fc ~slot:1);
        Any (Flatcombiner.try_lock_act cfg fc);
        Any (Flatcombiner.unlock_act cfg fc);
        Any (Flatcombiner.read_slot_act cfg fc 0);
        Any (Flatcombiner.read_slot_act cfg fc 1);
        Any (Flatcombiner.apply_act so cfg fc 0);
        Any (Flatcombiner.respond_act cfg fc 0);
        Any (Flatcombiner.claim_act cfg fc ~slot:0);
        Any (Flatcombiner.claim_act cfg fc ~slot:1);
      ];
  }

let stack_clients_inventory () =
  {
    i_world = Stack_clients.world ();
    i_states = Stack_clients.init_states ();
    i_actions =
      treiber_actions Stack_clients.tb_label Stack_clients.pv_label
        Stack_clients.n1;
  }

let inventory_of_case (name : string) : inventory option =
  match name with
  | "CAS-lock" | "CG increment" -> Some (caslock_incr_inventory ())
  | "Ticketed lock" -> Some (ticketlock_incr_inventory ())
  | "CG allocator" -> Some (cg_alloc_inventory ())
  | "Pair snapshot" -> Some (snapshot_inventory ())
  | "Treiber stack" -> Some (treiber_inventory ())
  | "Spanning tree" -> Some (span_inventory ())
  | "Flat combiner" | "FC-stack" -> Some (flatcombiner_inventory ())
  | "Seq. stack" | "Prod/Cons" -> Some (stack_clients_inventory ())
  | _ -> None

(* --- The matrix ------------------------------------------------------ *)

let analyze_inventory ~case (inv : inventory) : matrix =
  let states = List.filter (World.coh inv.i_world) inv.i_states in
  let act_moves =
    List.map
      (function
        | Any a ->
          { m_name = Action.name a; m_fp = Action.footprint a; m_env = None })
      inv.i_actions
  in
  let moves = act_moves @ env_moves_of_world inv.i_world in
  let actions =
    List.map
      (function
        | Any a as any -> (Action.name a, Action.footprint a, any))
      inv.i_actions
  in
  let pairs = ref [] in
  let certs = ref [] in
  let rec go = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          let v =
            match decide a b with
            | Independent _ as v -> v
            | Dependent _ as dep -> (
              (* rule 2 only applies to program-action pairs *)
              match (a.m_env, b.m_env) with
              | None, None -> (
                let find n =
                  List.find_opt (fun (n', _, _) -> String.equal n n') actions
                in
                match (find a.m_name, find b.m_name) with
                | Some pa, Some pb -> (
                  match pcm_certificate states pa pb with
                  | Some (Independent _ as v) ->
                    certs := (a.m_name, b.m_name) :: !certs;
                    v
                  | Some (Dependent _ as v) -> v
                  | None -> dep)
                | _ -> dep)
              | _ -> dep)
          in
          pairs := { p_a = a.m_name; p_b = b.m_name; p_verdict = v } :: !pairs)
        rest;
      go rest
  in
  go moves;
  {
    x_case = case;
    x_moves = moves;
    x_pairs = List.rev !pairs;
    x_certs = List.rev !certs;
  }

let analyze_case (name : string) : matrix option =
  Option.map (fun inv -> analyze_inventory ~case:name inv)
    (inventory_of_case name)

let analyze_all () : matrix list =
  List.filter_map (fun c -> analyze_case c.Fcsl_report.Registry.c_name)
    Fcsl_report.Registry.all

(* Certificate tables are stored symmetrically closed — both (a, b) and
   (b, a) are inserted at build time — so a query is a single probe.
   The analyzer emits each certified pair once, in enumeration order;
   independence is symmetric, so closing at build time changes no
   verdict and halves the lookups the POR oracle's bitmap
   precomputation performs. *)
let cert_table pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace tbl (a, b) ();
      Hashtbl.replace tbl (b, a) ())
    pairs;
  tbl

(* The POR oracle's [extra] hook for one case: the rule-2 certified name
   pairs (rule 1 and 3 are recomputed from footprints inside the
   scheduler, so only the algebraic certificates need carrying). *)
let certs (name : string) : string -> string -> bool =
  match analyze_case name with
  | None -> fun _ _ -> false
  | Some m ->
    let tbl = cert_table m.x_certs in
    fun a b -> Hashtbl.mem tbl (a, b)

(* The registry-wide certificate table the CLI installs as the engine
   default (one immutable closure shared by all verification workers, so
   parallel [fcsl verify -j N --por] needs no per-case engine rescoping).
   Intersection semantics: a name pair counts as certified only when it
   is rule-2 certified in EVERY case whose move inventory mentions both
   names — several cases share action names (the lock configs are
   reused across rows at different labels), and certification in one
   world must not license a reduction in another where the same names
   denote different-label instances.  Pairs outside every inventory are
   never certified (conservative).  Lazy: nothing is analyzed until the
   first query, i.e. never unless POR is actually on. *)
let certs_all : unit -> string -> string -> bool =
 fun () ->
  let build () =
    List.map
      (fun m ->
        let names = Hashtbl.create 16 in
        List.iter (fun mv -> Hashtbl.replace names mv.m_name ()) m.x_moves;
        (names, cert_table m.x_certs))
      (analyze_all ())
  in
  (* Laziness keeps [--por]-less runs free, but the closure is shared
     across verification domains, and concurrently forcing an
     unevaluated [lazy] raises [CamlinternalLazy.Undefined] on OCaml 5
     — so the first computation is serialized through a mutex and
     published via an atomic, after which reads are lock-free. *)
  let cache = Atomic.make None in
  let building = Mutex.create () in
  let tables () =
    match Atomic.get cache with
    | Some t -> t
    | None ->
      Mutex.lock building;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock building)
        (fun () ->
          match Atomic.get cache with
          | Some t -> t
          | None ->
            let t = build () in
            Atomic.set cache (Some t);
            t)
  in
  fun a b ->
    let relevant =
      List.filter
        (fun (names, _) -> Hashtbl.mem names a && Hashtbl.mem names b)
        (tables ())
    in
    relevant <> []
    && List.for_all (fun (_, certed) -> Hashtbl.mem certed (a, b)) relevant

(* --- Rendering ------------------------------------------------------- *)

let independent_count m =
  List.length
    (List.filter
       (fun p -> match p.p_verdict with Independent _ -> true | _ -> false)
       m.x_pairs)

let pp_verdict ppf = function
  | Independent { rule; why } -> Fmt.pf ppf "independent [%s] %s" rule why
  | Dependent { why } -> Fmt.pf ppf "dependent: %s" why

let pp_matrix ppf (m : matrix) =
  Fmt.pf ppf "@[<v2>%s: %d moves, %d/%d pairs independent" m.x_case
    (List.length m.x_moves) (independent_count m) (List.length m.x_pairs);
  List.iter
    (fun p -> Fmt.pf ppf "@ %s × %s: %a" p.p_a p.p_b pp_verdict p.p_verdict)
    m.x_pairs;
  Fmt.pf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let matrix_to_json (m : matrix) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"case\": \"%s\", \"moves\": [" (json_escape m.x_case));
  List.iteri
    (fun i mv ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape mv.m_name)))
    m.x_moves;
  Buffer.add_string b "], \"pairs\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      let indep, rule, why =
        match p.p_verdict with
        | Independent { rule; why } -> (true, rule, why)
        | Dependent { why } -> (false, "dep", why)
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"a\": \"%s\", \"b\": \"%s\", \"independent\": %b, \"rule\": \
            \"%s\", \"why\": \"%s\"}"
           (json_escape p.p_a) (json_escape p.p_b) indep (json_escape rule)
           (json_escape why)))
    m.x_pairs;
  Buffer.add_string b "]}";
  Buffer.contents b
