(* The analyzer run over the registered Table 1 case studies: for every
   registry row, lint the concurroid instances it uses (directly, per
   [Registry.c_uses]) and, where the case ships a surface-language
   source, run the static race detector over it.  All eleven rows must
   come back clean — the analyzer's "no false positives" contract, the
   counterpart of the failure-injection tests in {!Injected}. *)

open Fcsl_core
open Fcsl_casestudies
open Fcsl_report

(* Fresh instances per concurroid kind, mirroring the law registry
   (lib/report/laws.ml) — shared where the registry shares them. *)
let instance_findings : (Registry.concurroid_use * (unit -> Diag.finding list)) list =
  let once f =
    let r = ref None in
    fun () ->
      match !r with
      | Some v -> v
      | None ->
        let v = f () in
        r := Some v;
        v
  in
  let priv = once (fun () -> Lint.concurroid_lint (Priv.make (Label.make "an_priv"))) in
  let clock =
    once (fun () ->
        Lint.concurroid_lint
          (Caslock.concurroid ~label:(Label.make "an_clock")
             Caslock.default_config Laws.counter_resource))
  in
  let tlock =
    once (fun () ->
        Lint.concurroid_lint
          (Ticketlock.concurroid ~label:(Label.make "an_tlock")
             Ticketlock.default_config Laws.counter_resource))
  in
  let snap =
    once (fun () -> Lint.concurroid_lint (Snapshot.concurroid (Label.make "an_snap")))
  in
  let treiber =
    once (fun () -> Lint.concurroid_lint (Treiber.concurroid (Label.make "an_treiber")))
  in
  let span =
    once (fun () -> Lint.concurroid_lint (Span.concurroid (Label.make "an_span")))
  in
  let fc =
    once (fun () ->
        Lint.concurroid_lint
          (Flatcombiner.concurroid Fc_stack.seq_stack Fc_stack.cfg
             (Label.make "an_fc")))
  in
  let lock_intf () = clock () @ tlock () in
  [
    (Registry.Priv, priv);
    (Registry.CLock, clock);
    (Registry.TLock, tlock);
    (Registry.Lock_interface, lock_intf);
    (Registry.Read_pair, snap);
    (Registry.Treiber, treiber);
    (Registry.Span_tree, span);
    (Registry.Flat_combine, fc);
  ]

(* Surface sources attached to case rows (the spanning tree is the one
   Table 1 row with a Figure 1 concrete-syntax program). *)
let surface_sources (c : Registry.case) : (string * string) list =
  match c.Registry.c_name with
  | "Spanning tree" -> [ ("span.fcsl", Fcsl_lang.Examples.span_source) ]
  | _ -> []

let analyze_case (c : Registry.case) : Diag.finding list =
  let concs =
    List.concat_map
      (fun u ->
        match List.assoc_opt u instance_findings with
        | Some f -> f ()
        | None -> [])
      c.Registry.c_uses
  in
  let surface =
    List.concat_map
      (fun (name, src) ->
        match Surface.analyze_source ~name src with
        | Ok fs -> fs
        | Error msg -> [ Diag.error ~rule:"parse-error" ~loc:name msg ])
      (surface_sources c)
  in
  concs @ surface

let analyze_all () : (string * Diag.finding list) list =
  List.map (fun c -> (c.Registry.c_name, analyze_case c)) Registry.all

let all_clean () =
  List.for_all (fun (_, fs) -> fs = []) (analyze_all ())
