(* Effect analysis over the embedded DSL (lib/core/prog.ml).

   Inference proper is [Prog.footprint] — action leaves carry declared
   envelopes, [par]/[hide] spines combine them, and the opaque closures
   of [Bind]/[Ffix] are [Top] unless an [Annot] declares otherwise.
   What the analyzer adds here is the lint that keeps declarations
   coherent: wherever an [Annot]'s subterm has a statically visible
   footprint, the declaration must subsume it (the dynamic envelope
   monitor covers the invisible parts at exploration time). *)

open Fcsl_core

let infer : 'a Prog.t -> Footprint.t = Prog.footprint

(* The footprint of an [Annot]'s subterm as the spine shows it, NOT
   short-circuited by the annotation itself — what we compare the
   declaration against. *)
let rec visible : type a. a Prog.t -> Footprint.t = function
  | Prog.Annot (_, p) -> visible p
  | p -> Prog.footprint p

let rec check_annots : type a. loc:string -> a Prog.t -> Diag.finding list =
 fun ~loc p ->
  match p with
  | Prog.Ret _ | Prog.Act _ | Prog.Ffix (_, _) -> []
  | Prog.Bind (p, _) -> check_annots ~loc p
  | Prog.Par (p, q) -> check_annots ~loc p @ check_annots ~loc q
  | Prog.ParSplit (_, p, q) -> check_annots ~loc p @ check_annots ~loc q
  | Prog.Hide (_, p) -> check_annots ~loc p
  | Prog.Annot (fp, p) ->
    let vis = visible p in
    (if (not (Footprint.is_top vis)) && not (Footprint.subsumes fp vis) then
       [
         Diag.error ~rule:"annot-narrowing" ~loc
           (Fmt.str
              "declared footprint %a does not cover the subterm's visible \
               footprint %a"
              Footprint.pp fp Footprint.pp vis)
           ~detail:
             [ Fmt.str "subterm: %a" Prog.pp p ];
       ]
     else [])
    @ check_annots ~loc p
