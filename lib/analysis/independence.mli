(** Static independence analysis (docs/ANALYSIS.md, §POR): derive, per
    Table 1 case study, which pairs of schedulable moves commute.  The
    relation feeds {!Fcsl_core.Por} / [Sched.explore ?por]'s sleep-set
    partial-order reduction, and is printed (or rendered as JSON) by
    [fcsl analyze --independence].

    Three justification rules, each with a stable id:
    - {!rule_fp} ["indep-fp"]: declared footprints commute
      ({!Fcsl_core.Footprint.commutes}) — dynamically guarded by the
      scheduler's envelope monitor when POR is on;
    - {!rule_pcm} ["indep-pcm"]: same-label pairs whose contributions
      commute by the laws of the PCMs involved, certified by the law
      table plus an exhaustive step-commutation check over the case's
      enumerated coherent states;
    - {!rule_env} ["indep-env"]: environment transitions at distinct
      labels (other-fixity confines each to its own slice). *)

open Fcsl_core

val rule_fp : string
val rule_pcm : string
val rule_env : string

type any_action = Any : 'a Action.t -> any_action

type move = {
  m_name : string;
  m_fp : Footprint.t;
  m_env : Label.t option;  (** [Some l] for an environment transition *)
}

type verdict =
  | Independent of { rule : string; why : string }
  | Dependent of { why : string }

type pair = { p_a : string; p_b : string; p_verdict : verdict }

type matrix = {
  x_case : string;
  x_moves : move list;
  x_pairs : pair list;  (** unordered pairs of distinct moves *)
  x_certs : (string * string) list;
      (** the rule-2 (PCM) certified name pairs *)
}

(** {1 The sampled commutation check (rule 2's dynamic half)} *)

type sample =
  | Pass  (** both orders ran and agreed on final state and results *)
  | Skip  (** the pair is not jointly runnable from this state *)
  | Refuted of string  (** a located counterexample to commutation *)

val commute_sample : any_action -> any_action -> State.t -> sample
(** Run the pair in both orders from one state and compare.  Exposed so
    test_por.ml can QCheck the certified pairs on random coherent
    states. *)

val min_witnesses : int
(** How many [Pass] states a rule-2 certificate requires (sampling with
    no witnesses certifies nothing). *)

(** {1 Per-case inventories and analysis} *)

type inventory = {
  i_world : World.t;
  i_states : State.t list;
  i_actions : any_action list;
}

val inventory_of_case : string -> inventory option
(** The moves a Table 1 row's programs schedule — the action instances
    its drivers build, with the drivers' labels and parameters.  [None]
    for names not in the registry. *)

val analyze_case : string -> matrix option
val analyze_all : unit -> matrix list
(** One matrix per registry row with an inventory (rows sharing a
    driver share an inventory and produce identical matrices). *)

val independent_count : matrix -> int
val pp_matrix : Format.formatter -> matrix -> unit

val matrix_to_json : matrix -> string
(** Stable shape for CI: {["{\"case\": .., \"moves\": [..], \"pairs\":
    [{\"a\", \"b\", \"independent\", \"rule\", \"why\"}]}"]}. *)

(** {1 POR certificate hooks} *)

val certs : string -> string -> string -> bool
(** [certs case] is the [Por.make ~extra] hook for one case: exactly its
    rule-2 certified name pairs (rules 1 and 3 are recomputed from
    footprints inside the scheduler). *)

val certs_all : unit -> string -> string -> bool
(** The registry-wide table the CLI installs as the engine default
    ({!Fcsl_core.Verify.set_default_por_certs}) — one immutable closure
    shared by all verification workers.  Intersection semantics: a name
    pair counts only when certified in {e every} case whose inventory
    mentions both names, so certification in one world never licenses a
    reduction in another.  Lazy: nothing is analyzed until the first
    query. *)
