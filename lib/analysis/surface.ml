(* Footprint/effect inference and static race detection over the
   surface language (lib/lang).

   Heap accesses are abstracted to regions [base->field], where a base
   is a formal parameter of the enclosing procedure, the summary node
   [Reach p] ("some node reachable from p through at least one field
   dereference" — the depth-1 collapse that keeps recursive procedures
   finite), or [Unknown].  Two regions may alias iff their fields match
   and their bases are equal (or either is [Unknown]); [Param p] and
   [Reach p] are kept apart, the tree-shaped-reachability assumption the
   paper's spanning-tree example lives by.

   Protection follows the trymark ownership discipline of Figure 1: an
   access is CAS-guarded when it is dominated by the positive branch of
   [if b] where [b] was bound by a CAS — winning the CAS confers
   ownership of the node, so everything inside the branch is mediated by
   the concurroid transition the CAS took.  A pair of cross-arm accesses
   at a [par] is protected iff both are CAS operations themselves or
   both are CAS-guarded; a conflicting unprotected pair (same region,
   at least one plain write) is a race.

   Procedure summaries are computed by a call-graph fixpoint: a call
   imports the callee's summary with the callee's formals substituted by
   the abstract bases of the arguments (collapsing through [Reach]).
   The abstract domain is finite, substitution and joins are monotone,
   so the iteration converges. *)

open Fcsl_lang

module SM = Map.Make (String)
module SS = Set.Make (String)

type base = Param of string | Reach of string | Unknown

let pp_base ppf = function
  | Param p -> Fmt.string ppf p
  | Reach p -> Fmt.pf ppf "%s->…" p
  | Unknown -> Fmt.string ppf "?"

let base_equal a b =
  match (a, b) with
  | Param p, Param q | Reach p, Reach q -> String.equal p q
  | Unknown, Unknown -> true
  | (Param _ | Reach _ | Unknown), _ -> false

type region = { rg_base : base; rg_field : Ast.field }

let pp_region ppf r = Fmt.pf ppf "%a->%a" pp_base r.rg_base Ast.pp_field r.rg_field

let regions_may_alias a b =
  a.rg_field = b.rg_field
  && (match (a.rg_base, b.rg_base) with
     | Unknown, _ | _, Unknown -> true
     | x, y -> base_equal x y)

type kind = Read | Write | Cas

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Cas -> Fmt.string ppf "CAS"

type access = {
  ac_region : region;
  ac_kind : kind;
  ac_guarded : bool; (* dominated by a CAS-won branch *)
  ac_path : string; (* concrete access path, for diagnostics *)
}

let access_same a b =
  regions_may_alias a.ac_region b.ac_region
  && base_equal a.ac_region.rg_base b.ac_region.rg_base
  && a.ac_kind = b.ac_kind && a.ac_guarded = b.ac_guarded

let dedup accs =
  List.fold_left
    (fun acc a -> if List.exists (access_same a) acc then acc else a :: acc)
    [] accs
  |> List.rev

(* A procedure summary: formals (for substitution at call sites) and the
   deduplicated access set of the whole body, transitively through
   calls. *)
type summary = { sm_params : string list; sm_accesses : access list }

let summary_accesses s = s.sm_accesses

(* Abstract pointer evaluation.  [env] maps in-scope variables to
   bases. *)
let rec base_of_expr env (e : Ast.expr) : base =
  match e with
  | Var x -> Option.value (SM.find_opt x env) ~default:Unknown
  | Field (e', _) -> (
    match base_of_expr env e' with
    | Param p | Reach p -> Reach p
    | Unknown -> Unknown)
  | Pair_fst e' | Pair_snd e' -> base_of_expr env e'
  | Null | Bool _ | Int _ | Eq _ | Not _ | And _ | Or _ -> Unknown

let path_of e = Fmt.str "%a" Pp.pp_expr e

(* Every field dereference in an expression is a read access. *)
let rec expr_accesses env ~guarded (e : Ast.expr) : access list =
  match e with
  | Field (e', f) ->
    {
      ac_region = { rg_base = base_of_expr env e'; rg_field = f };
      ac_kind = Read;
      ac_guarded = guarded;
      ac_path = path_of e;
    }
    :: expr_accesses env ~guarded e'
  | Eq (a, b) | And (a, b) | Or (a, b) ->
    expr_accesses env ~guarded a @ expr_accesses env ~guarded b
  | Not e' | Pair_fst e' | Pair_snd e' -> expr_accesses env ~guarded e'
  | Null | Bool _ | Int _ | Var _ -> []

(* Substitute a callee access into the caller's frame: the callee's
   formals become the abstract bases of the arguments, with anything
   already behind a dereference collapsing into [Reach]. *)
let subst_base bindings b =
  match b with
  | Unknown -> Unknown
  | Param p -> Option.value (List.assoc_opt p bindings) ~default:Unknown
  | Reach p -> (
    match List.assoc_opt p bindings with
    | Some (Param q) | Some (Reach q) -> Reach q
    | Some Unknown | None -> Unknown)

let subst_access callee bindings ~guarded a =
  {
    a with
    ac_region = { a.ac_region with rg_base = subst_base bindings a.ac_region.rg_base };
    ac_guarded = a.ac_guarded || guarded;
    ac_path = Fmt.str "%s: %s" callee a.ac_path;
  }

let rec rhs_accesses summaries env ~guarded (r : Ast.rhs) : access list =
  match r with
  | Expr e -> expr_accesses env ~guarded e
  | Cas (e, f, older, newer) ->
    {
      ac_region = { rg_base = base_of_expr env e; rg_field = f };
      ac_kind = Cas;
      ac_guarded = guarded;
      ac_path = Fmt.str "CAS(%s->%a, _, _)" (path_of e) Ast.pp_field f;
    }
    :: (expr_accesses env ~guarded e
       @ expr_accesses env ~guarded older
       @ expr_accesses env ~guarded newer)
  | Call (f, args) ->
    let arg_accs = List.concat_map (expr_accesses env ~guarded) args in
    let callee_accs =
      match SM.find_opt f summaries with
      | None -> [] (* unknown procedure: no summary to import *)
      | Some s ->
        let bindings =
          try List.combine s.sm_params (List.map (base_of_expr env) args)
          with Invalid_argument _ -> []
        in
        List.map (subst_access f bindings ~guarded) s.sm_accesses
    in
    arg_accs @ callee_accs
  | Par (a, b) ->
    rhs_accesses summaries env ~guarded a @ rhs_accesses summaries env ~guarded b

(* Command traversal.  [cas_bound] is the set of booleans bound by a
   CAS; entering the positive branch of [if b] for such a [b] sets the
   guard. *)
let rec cmd_accesses summaries env cas_bound ~guarded (c : Ast.cmd) :
    access list =
  match c with
  | Skip -> []
  | Return e -> expr_accesses env ~guarded e
  | Seq (a, b) ->
    cmd_accesses summaries env cas_bound ~guarded a
    @ cmd_accesses summaries env cas_bound ~guarded b
  | Assign (e, f, v) ->
    {
      ac_region = { rg_base = base_of_expr env e; rg_field = f };
      ac_kind = Write;
      ac_guarded = guarded;
      ac_path = Fmt.str "%s->%a := %s" (path_of e) Ast.pp_field f (path_of v);
    }
    :: (expr_accesses env ~guarded e @ expr_accesses env ~guarded v)
  | If (cond, t, f) ->
    let t_guarded =
      guarded
      || (match cond with Var b -> SS.mem b cas_bound | _ -> false)
    in
    expr_accesses env ~guarded cond
    @ cmd_accesses summaries env cas_bound ~guarded:t_guarded t
    @ cmd_accesses summaries env cas_bound ~guarded f
  | BindCmd (pat, r, k) ->
    let accs = rhs_accesses summaries env ~guarded r in
    let env, cas_bound =
      match (pat, r) with
      | Ast.Pvar x, Ast.Cas _ -> (SM.add x Unknown env, SS.add x cas_bound)
      | Ast.Pvar x, Ast.Expr e -> (SM.add x (base_of_expr env e) env, cas_bound)
      | Ast.Pvar x, (Ast.Call _ | Ast.Par _) -> (SM.add x Unknown env, cas_bound)
      | Ast.Ppair (a, b), _ ->
        (SM.add a Unknown (SM.add b Unknown env), cas_bound)
    in
    accs @ cmd_accesses summaries env cas_bound ~guarded k

let initial_env (p : Ast.proc) =
  List.fold_left
    (fun env (x, _ty) -> SM.add x (Param x) env)
    SM.empty p.p_params

(* The call-graph fixpoint over procedure summaries. *)
let infer_program (prog : Ast.program) : summary SM.t =
  let params p = List.map fst p.Ast.p_params in
  let init =
    List.fold_left
      (fun m p -> SM.add p.Ast.p_name { sm_params = params p; sm_accesses = [] } m)
      SM.empty prog
  in
  let step summaries =
    List.fold_left
      (fun m p ->
        let accs =
          dedup
            (cmd_accesses summaries (initial_env p) SS.empty ~guarded:false
               p.Ast.p_body)
        in
        SM.add p.Ast.p_name { sm_params = params p; sm_accesses = accs } m)
      summaries prog
  in
  let same a b =
    SM.equal
      (fun x y ->
        List.length x.sm_accesses = List.length y.sm_accesses
        && List.for_all2 access_same x.sm_accesses y.sm_accesses)
      a b
  in
  (* The domain is finite (bases per proc: its formals, their Reach
     summaries, Unknown), so the fixpoint converges; the bound is a
     safety net. *)
  let rec iterate n s =
    let s' = step s in
    if same s s' || n = 0 then s' else iterate (n - 1) s'
  in
  iterate 16 init

let pp_summary ppf (name, s) =
  let by k = List.filter (fun a -> a.ac_kind = k) s.sm_accesses in
  let regions accs =
    List.fold_left
      (fun acc a ->
        if List.exists (fun r -> regions_may_alias r a.ac_region
                                 && base_equal r.rg_base a.ac_region.rg_base) acc
        then acc
        else a.ac_region :: acc)
      [] accs
    |> List.rev
  in
  Fmt.pf ppf "@[<v2>%s:@ reads:  %a@ writes: %a@ cas:    %a@]" name
    Fmt.(list ~sep:(any ", ") pp_region) (regions (by Read))
    Fmt.(list ~sep:(any ", ") pp_region) (regions (by Write))
    Fmt.(list ~sep:(any ", ") pp_region) (regions (by Cas))

(* Race detection proper: at every [par], cross the access sets of the
   two arms and flag conflicting unprotected pairs. *)

let pair_protected a b =
  (a.ac_kind = Cas && b.ac_kind = Cas) || (a.ac_guarded && b.ac_guarded)

let conflicting a b =
  regions_may_alias a.ac_region b.ac_region
  && (a.ac_kind = Write || b.ac_kind = Write)
  && not (pair_protected a b)

let describe a =
  Fmt.str "%s of %a via `%s`%s" (Fmt.str "%a" pp_kind a.ac_kind)
    pp_region a.ac_region a.ac_path
    (if a.ac_guarded then " (CAS-guarded)" else "")

let missing_protection a b =
  if a.ac_kind = Cas || b.ac_kind = Cas then
    "only one side is a CAS; the other mutates the region directly"
  else if a.ac_guarded || b.ac_guarded then
    "only one side is inside a CAS-won critical branch"
  else "neither side is CAS-mediated or inside a CAS-won critical branch"

let race_findings_of_par ~proc summaries env cas_bound ~guarded (l : Ast.rhs)
    (r : Ast.rhs) : Diag.finding list =
  ignore cas_bound;
  let left = dedup (rhs_accesses summaries env ~guarded l) in
  let right = dedup (rhs_accesses summaries env ~guarded r) in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if conflicting a b then Some (a, b) else None)
          right)
      left
  in
  (* One finding per region: the first conflicting pair is the
     diagnostic witness. *)
  let seen = ref [] in
  List.filter_map
    (fun (a, b) ->
      if
        List.exists
          (fun r ->
            regions_may_alias r a.ac_region
            && base_equal r.rg_base a.ac_region.rg_base)
          !seen
      then None
      else begin
        seen := a.ac_region :: !seen;
        Some
          (Diag.error ~rule:"par-race"
             ~loc:(Fmt.str "proc %s, (%a || %a)" proc Pp.pp_rhs l Pp.pp_rhs r)
             (Fmt.str "possible race on %a between the two arms of the par"
                pp_region a.ac_region)
             ~detail:
               [
                 "left arm:  " ^ describe a;
                 "right arm: " ^ describe b;
                 "missing protection: " ^ missing_protection a b;
               ])
      end)
    pairs

(* Walk a procedure body, firing the race check at every [par] (also
   nested ones), threading the same env/guard context the access
   inference uses. *)
let race_findings (prog : Ast.program) : Diag.finding list =
  let summaries = infer_program prog in
  let rec in_rhs ~proc env cas_bound ~guarded (r : Ast.rhs) =
    match r with
    | Expr _ | Cas _ | Call _ -> []
    | Par (a, b) ->
      race_findings_of_par ~proc summaries env cas_bound ~guarded a b
      @ in_rhs ~proc env cas_bound ~guarded a
      @ in_rhs ~proc env cas_bound ~guarded b
  in
  let rec in_cmd ~proc env cas_bound ~guarded (c : Ast.cmd) =
    match c with
    | Skip | Return _ | Assign _ -> []
    | Seq (a, b) ->
      in_cmd ~proc env cas_bound ~guarded a
      @ in_cmd ~proc env cas_bound ~guarded b
    | If (cond, t, f) ->
      let t_guarded =
        guarded
        || (match cond with Var b -> SS.mem b cas_bound | _ -> false)
      in
      in_cmd ~proc env cas_bound ~guarded:t_guarded t
      @ in_cmd ~proc env cas_bound ~guarded f
    | BindCmd (pat, r, k) ->
      let here = in_rhs ~proc env cas_bound ~guarded r in
      let env, cas_bound =
        match (pat, r) with
        | Ast.Pvar x, Ast.Cas _ -> (SM.add x Unknown env, SS.add x cas_bound)
        | Ast.Pvar x, Ast.Expr e ->
          (SM.add x (base_of_expr env e) env, cas_bound)
        | Ast.Pvar x, (Ast.Call _ | Ast.Par _) -> (SM.add x Unknown env, cas_bound)
        | Ast.Ppair (a, b), _ ->
          (SM.add a Unknown (SM.add b Unknown env), cas_bound)
      in
      here @ in_cmd ~proc env cas_bound ~guarded k
  in
  List.concat_map
    (fun p ->
      in_cmd ~proc:p.Ast.p_name (initial_env p) SS.empty ~guarded:false
        p.Ast.p_body)
    prog

let analyze (prog : Ast.program) : Diag.finding list = race_findings prog

let analyze_source ~name (src : string) : (Diag.finding list, string) result =
  match Parser.parse_program src with
  | prog -> Ok (analyze prog)
  | exception Parser.Parse_error msg ->
    Error (Fmt.str "%s: parse error: %s" name msg)
  | exception Failure msg -> Error (Fmt.str "%s: %s" name msg)
