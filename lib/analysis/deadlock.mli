(** Static deadlock & progress analysis: lock-order graphs,
    must-release checking, and parsing of the scheduler's dynamic
    stuck-state witness (docs/ANALYSIS.md, §Deadlock).

    Locks are censused from {!Fcsl_core.Concurroid.lock_info}
    self-declarations; events are classified by declared acquire/release
    name prefixes, corroborated by the action's scheduling guard
    ({!Fcsl_core.Action.blocking}) and CAS accesses in its declared
    footprint.  Acquisition paths — from a visible-spine [Prog] walk or
    from declared {!script}s — fold into a global lock-order graph;
    cycles are reported as located potential deadlocks, and an acyclic
    graph yields a certified total order.  Complete paths are
    additionally checked for must-release: exiting a scope (return,
    [hide] exit, or crash exit) still holding a lock is an error.

    The soundness envelope and the registry-wide static/dynamic
    differential that keeps the declarations honest are documented at
    the top of the implementation and in docs/ANALYSIS.md. *)

open Fcsl_core

val rule_cycle : string
(** "lock-cycle": a cycle in the global lock-order graph. *)

val rule_must_release : string
(** "must-release": a complete path exits its scope holding a lock. *)

val rule_no_release : string
(** "lock-no-release": a case's inventory acquires a lock but contains
    no releasing move. *)

val rule_order_unknown : string
(** "lock-order-unknown": a multi-lock world with no acquisition-path
    summaries — the order cannot be certified from the census alone. *)

(** {1 Lock census} *)

type lock = {
  lk_label : Label.t;
  lk_name : string;  (** [Label.name], the cross-layer identifier *)
  lk_conc : string;  (** concurroid name, e.g. "CLock" *)
  lk_acquires : string list;  (** acquiring-action name prefixes *)
  lk_releases : string list;  (** releasing-action name prefixes *)
}

val locks_of_world : World.t -> lock list
(** Every lock-shaped concurroid of the world, per its
    {!Fcsl_core.Concurroid.lock_info} self-declaration. *)

(** {1 Events and acquisition paths} *)

type event =
  | Acquire of {
      e_lock : string;
      e_loc : string;
      e_blocking : bool;  (** the action has a scheduling guard *)
      e_cas : bool;  (** the declared footprint CASes the lock label *)
    }
  | Release of { e_lock : string; e_loc : string }

val event_lock : event -> string
val pp_event : Format.formatter -> event -> unit

val classify : locks:lock list -> loc:string -> Independence.any_action -> event option
(** Classify one schedulable action against the census: acquire or
    release by declared name prefix, [None] for lock-unrelated moves. *)

type exit_kind = Returns | Hide_exit | Crash_exit

val exit_name : exit_kind -> string

type path = {
  th_name : string;
  th_events : event list;  (** in program order *)
  th_complete : bool;
      (** [false] when the walk crossed an opaque continuation; the
          visible prefix still contributes order edges but is exempt
          from must-release checking *)
  th_exit : exit_kind;
}

val paths_of_prog : locks:lock list -> name:string -> 'a Prog.t -> path list
(** The visible-spine walk: one path per [par] arm; [Bind]
    continuations and [Ffix] bodies are opaque closures, so paths
    crossing them are marked incomplete. *)

(** {1 Declared acquisition scripts}

    A script declares one thread's lock events explicitly.  The
    injected scenarios build both their static paths and their dynamic
    programs from one script value, so the layers cannot drift. *)

type step = S_acquire of string | S_release of string

type script = {
  sc_thread : string;
  sc_steps : step list;
  sc_exit : exit_kind;
}

val path_of_script : script -> path
val paths_of_scripts : script list -> path list

(** {1 The lock-order graph} *)

type edge = {
  ed_from : string;  (** holding this lock ... *)
  ed_to : string;  (** ... a thread acquires this one *)
  ed_via : string;  (** the witnessing acquisition step *)
}

type graph = { g_locks : string list; g_edges : edge list }

val graph_of_paths : locks:lock list -> path list -> graph
val cycles : graph -> string list list
(** All simple cycles, each in its lexicographically least rotation;
    a self-edge (non-reentrant re-acquisition) is a length-1 cycle. *)

val total_order : graph -> string list option
(** Kahn's topological sort with name-sorted tie-breaking: the
    deterministic certified order, or [None] when cyclic. *)

(** {1 Verdicts} *)

type verdict = {
  v_case : string;
  v_locks : string list;
  v_order : string list option;
      (** the certified total lock order, when the graph is acyclic *)
  v_cycles : string list list;
  v_findings : Diag.finding list;
}

val clean : verdict -> bool
(** No error-severity findings. *)

val analyze_paths : case:string -> locks:lock list -> path list -> verdict
val analyze_scripts : case:string -> locks:lock list -> script list -> verdict

val analyze_case : string -> verdict option
(** One Table 1 row, through its {!Independence} inventory: census the
    locks, classify the schedulable moves, flag acquired-never-released
    locks, and certify the (trivial) order when the world has at most
    one lock. *)

val analyze_all : unit -> verdict list
(** {!analyze_case} over every registry row that has an inventory. *)

(** {1 The dynamic witness, parsed back}

    The scheduler's stuck-state message has a load-bearing shape
    ("... held locks: \{A, B\}; blocked: \[m awaiting B\]"); these
    parsers recover the located lock names so the differential tests
    compare static verdicts and dynamic witnesses by name. *)

val held_of_witness : Crash.t -> string list
val awaited_of_witness : Crash.t -> string list
val witness_locks : Crash.t -> string list
(** Held and awaited lock names, sorted and deduplicated; empty for
    non-deadlock crashes. *)

(** {1 Rendering} *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_json : verdict -> string
